package bpomdp

import (
	"testing"
)

// TestFacadeEndToEnd drives the public API exactly as the README shows:
// build the EMN model, prepare it, bootstrap, and recover from a zombie.
func TestFacadeEndToEnd(t *testing.T) {
	compiled, err := BuildEMN(EMNConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rm := compiled.Recovery
	if rm.POMDP.NumStates() != 14 {
		t.Fatalf("EMN states = %d", rm.POMDP.NumStates())
	}

	prep, err := Prepare(rm, PrepareOptions{OperatorResponseTime: 6 * 3600})
	if err != nil {
		t.Fatal(err)
	}
	if prep.Regime != RegimeTermination {
		t.Fatalf("regime = %v", prep.Regime)
	}
	if _, err := prep.Bootstrap(5, VariantAverage, 1, NewRNG(1)); err != nil {
		t.Fatal(err)
	}

	ctrl, err := prep.NewController(ControllerConfig{Depth: 1, ImproveOnline: true})
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(rm, 0)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := prep.InitialBelief()
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.RunEpisode(ctrl, initial, compiled.StateIndex["zombie:S1"], NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Error("facade episode terminated before recovery")
	}
	if res.Cost <= 0 || res.RecoveryTime <= 0 {
		t.Errorf("metrics: cost=%v recovery=%v", res.Cost, res.RecoveryTime)
	}
}

// TestFacadeModelBuilder builds a custom POMDP through the facade.
func TestFacadeModelBuilder(t *testing.T) {
	b := NewModelBuilder()
	b.Transition("ok", "noop", "ok", 1)
	b.Transition("bad", "noop", "bad", 1)
	b.Reward("bad", "noop", -1)
	b.Observe("ok", "noop", "clear", 1)
	b.Observe("bad", "noop", "alarm", 1)
	model, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if model.NumStates() != 2 || model.NumObservations() != 2 {
		t.Fatalf("shape %d/%d", model.NumStates(), model.NumObservations())
	}
}
