// Remote recovery: run the controller as a service and drive it over HTTP.
//
// This example boots the recovery daemon in-process (the same server
// cmd/recoverd serves), starts an episode through the typed HTTP client,
// and lets the fault-injection simulator play the system side — monitors
// post observations, the service answers with recovery actions. Because
// the client's Episode implements the same Controller interface as the
// in-process controllers, the simulator cannot tell the difference.
//
// Run with:
//
//	go run ./examples/remote-recovery
package main

import (
	"fmt"
	"net/http/httptest"
	"os"

	"bpomdp/internal/client"
	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/emn"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/server"
	"bpomdp/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "remote-recovery:", err)
		os.Exit(1)
	}
}

func run() error {
	// Server side: prepare the EMN model and expose bounded controllers.
	compiled, err := emn.Build(emn.Config{})
	if err != nil {
		return err
	}
	prep, err := core.Prepare(compiled.Recovery, core.PrepareOptions{
		OperatorResponseTime: emn.OperatorResponseTime,
	})
	if err != nil {
		return err
	}
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 2, rng.New(1)); err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Model: prep.Model,
		NewController: func() (controller.Controller, pomdp.Belief, error) {
			ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1, ImproveOnline: true})
			if err != nil {
				return nil, nil, err
			}
			initial, err := prep.InitialBelief()
			return ctrl, initial, err
		},
	})
	if err != nil {
		return err
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	fmt.Printf("recovery service listening on %s\n", hs.URL)

	// Client side: the simulator drives recovery through the HTTP API.
	c, err := client.New(hs.URL, hs.Client())
	if err != nil {
		return err
	}
	if err := c.Healthy(); err != nil {
		return err
	}
	model, err := c.Model()
	if err != nil {
		return err
	}
	fmt.Printf("remote model: %d states, %d actions\n\n", len(model.States), len(model.Actions))

	runner, err := sim.NewRunner(compiled.Recovery, 500)
	if err != nil {
		return err
	}
	root := rng.New(7)
	faults := []string{"zombie:S1", "zombie:DB", "crash:HG"}
	for i, faultName := range faults {
		fault := compiled.StateIndex[faultName]
		ep, err := c.StartEpisode()
		if err != nil {
			return err
		}
		res, err := runner.RunEpisode(ep, nil, fault, root.SplitN("ep", i))
		if err != nil {
			return err
		}
		fmt.Printf("episode %d (%s): recovered=%v cost=%.1f actions=%d monitorCalls=%d httpRoundTrips≈%d\n",
			ep.ID(), faultName, res.Recovered, res.Cost, res.Actions, res.MonitorCalls,
			2*res.MonitorCalls+1)
	}
	return nil
}
