// Operator tradeoff: sweep the operator response time t_op.
//
// t_op is the paper's designer-friendly knob for systems without recovery
// notification: the terminate action is priced at r̄(s)·t_op, so a larger
// t_op makes the controller more aggressive about verifying recovery before
// handing the system back (more monitor calls, lower risk), while a small
// t_op makes it terminate quickly and lean on the human operator. This
// example quantifies that tradeoff on the EMN model.
//
// Run with:
//
//	go run ./examples/operator-tradeoff
package main

import (
	"fmt"
	"os"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/emn"
	"bpomdp/internal/rng"
	"bpomdp/internal/sim"
	"bpomdp/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "operator-tradeoff:", err)
		os.Exit(1)
	}
}

func run() error {
	const episodes = 150
	tops := []float64{60, 600, 3600, 6 * 3600, 24 * 3600}

	table := stats.NewTable("t_op(s)", "Cost", "RecoveryTime(s)", "MonitorCalls", "Recovered")
	for _, top := range tops {
		compiled, err := emn.Build(emn.Config{})
		if err != nil {
			return err
		}
		prep, err := core.Prepare(compiled.Recovery, core.PrepareOptions{OperatorResponseTime: top})
		if err != nil {
			return err
		}
		if _, err := prep.Bootstrap(10, controller.VariantAverage, 2, rng.New(5).Split("boot")); err != nil {
			return err
		}
		ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1, ImproveOnline: true})
		if err != nil {
			return err
		}
		initial, err := prep.InitialBelief()
		if err != nil {
			return err
		}
		runner, err := sim.NewRunner(compiled.Recovery, 2000)
		if err != nil {
			return err
		}
		res, err := runner.RunCampaign(ctrl, initial, compiled.ZombieStates, episodes, rng.New(11))
		if err != nil {
			return err
		}
		table.AddRow(
			fmt.Sprintf("%.0f", top),
			fmt.Sprintf("%.2f", res.Cost.Mean()),
			fmt.Sprintf("%.2f", res.RecoveryTime.Mean()),
			fmt.Sprintf("%.2f", res.MonitorCalls.Mean()),
			fmt.Sprintf("%d/%d", res.Recovered, res.Episodes),
		)
	}
	fmt.Printf("bounded controller vs operator response time (%d zombie injections each):\n\n%s", episodes, table.String())
	fmt.Println("\nsmall t_op: terminate early and lean on the operator; large t_op: verify recovery thoroughly before stopping.")
	return nil
}
