// Quickstart: the paper's Figure 1(a) example, end to end.
//
// Two redundant servers a and b; a noisy monitor that localizes the fault
// 90% of the time with 5% false positives. We build the recovery POMDP,
// verify the paper's Conditions 1 and 2, let the framework pick the
// convergence regime (no recovery notification here, so the terminate
// action a_T is added), compute the RA-Bound, bootstrap it, and drive one
// recovery episode with the bounded controller.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Build the Figure 1(a) model.
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		return err
	}
	rm := &core.RecoveryModel{
		POMDP:           ts.Model,
		NullStates:      ts.NullStates,
		RateRewards:     ts.RateRewards,
		Durations:       []float64{1, 1, 0}, // restart-a, restart-b, observe (seconds)
		MonitorAction:   ts.ActionObserve,
		MonitorDuration: 0.1,
	}

	// 2. Verify recovery-model conditions and classify the regime.
	if err := rm.Validate(); err != nil {
		return err
	}
	hasNotif, err := rm.HasRecoveryNotification()
	if err != nil {
		return err
	}
	fmt.Printf("recovery notification: %v (the monitor has false negatives and positives)\n", hasNotif)

	// 3. Prepare: transform for convergence and compute the RA-Bound.
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		return err
	}
	fmt.Printf("regime: %s\n", prep.Regime)
	fmt.Println("RA-Bound hyperplane (lower bound on the value of each state):")
	for s, v := range prep.RA {
		fmt.Printf("  V⁻(%s) = %.3f\n", prep.Model.M.StateName(s), v)
	}

	// 4. Bootstrap: tighten the bound with simulated recovery episodes.
	stats, err := prep.Bootstrap(10, controller.VariantAverage, 1, rng.New(7))
	if err != nil {
		return err
	}
	first, last := stats[0], stats[len(stats)-1]
	fmt.Printf("bootstrap: bound at the uniform belief improved %.3f -> %.3f over %d iterations (%d vectors)\n",
		first.BoundAtUniform, last.BoundAtUniform, len(stats), last.Vectors)

	// 5. Drive one fault episode: inject fault-a and let the bounded
	// controller recover the system.
	ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1, ImproveOnline: true})
	if err != nil {
		return err
	}
	runner, err := sim.NewRunner(rm, 100)
	if err != nil {
		return err
	}
	initial, err := prep.InitialBelief()
	if err != nil {
		return err
	}
	res, err := runner.RunEpisode(ctrl, initial, ts.StateFaultA, rng.New(99))
	if err != nil {
		return err
	}
	fmt.Printf("episode: injected %s\n", ts.Model.M.StateName(res.Injected))
	fmt.Printf("  recovered: %v\n", res.Recovered)
	fmt.Printf("  recovery actions: %d, monitor calls: %d\n", res.Actions, res.MonitorCalls)
	fmt.Printf("  cost: %.3f, recovery time: %.2fs, residual time: %.2fs\n",
		res.Cost, res.RecoveryTime, res.ResidualTime)

	// The belief-state machinery is available directly, too.
	sc := pomdp.NewScratch(ts.Model)
	post, err := ts.Model.Update(sc, pomdp.UniformBelief(3), ts.ActionObserve, ts.ObsAFailed)
	if err != nil {
		return err
	}
	fmt.Printf("Bayes: uniform belief + \"a failed\" observation -> P(fault-a) = %.3f\n", post[ts.StateFaultA])
	return nil
}
