// EMN recovery: one fully traced episode on the paper's 3-tier e-commerce
// system (Figure 4).
//
// A zombie fault is injected into EMN server S1: it keeps answering the
// component monitors' pings while silently dropping the half of the
// traffic routed through it. Only the path monitors can see it, and each
// of them only with probability 1/2 per sweep. Watch the bounded controller
// narrow the diagnosis from monitor outputs, restart the right component,
// verify, and terminate.
//
// Run with:
//
//	go run ./examples/emn-recovery
//	go run ./examples/emn-recovery -fault zombie:DB -seed 3
package main

import (
	"flag"
	"fmt"
	"os"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/emn"
	"bpomdp/internal/rng"
	"bpomdp/internal/sim"
	"bpomdp/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "emn-recovery:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		faultName = flag.String("fault", "zombie:S1", "fault state to inject")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		depth     = flag.Int("depth", 1, "bounded controller tree depth")
	)
	flag.Parse()

	compiled, err := emn.Build(emn.Config{})
	if err != nil {
		return err
	}
	fault, ok := compiled.StateIndex[*faultName]
	if !ok {
		return fmt.Errorf("unknown fault state %q (try zombie:S1, crash:DB, hostdown:HostA, ...)", *faultName)
	}

	fmt.Println("preparing the EMN recovery model (RA-Bound + 10 bootstrap episodes)...")
	prep, err := core.Prepare(compiled.Recovery, core.PrepareOptions{
		OperatorResponseTime: emn.OperatorResponseTime,
	})
	if err != nil {
		return err
	}
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 2, rng.New(*seed).Split("bootstrap")); err != nil {
		return err
	}
	ctrl, err := prep.NewController(core.ControllerConfig{Depth: *depth, ImproveOnline: true})
	if err != nil {
		return err
	}

	traced := trace.Wrap(ctrl, &trace.Tracer{
		W:          os.Stdout,
		Model:      prep.Model,
		ShowBelief: true,
	})

	runner, err := sim.NewRunner(compiled.Recovery, 500)
	if err != nil {
		return err
	}
	initial, err := prep.InitialBelief()
	if err != nil {
		return err
	}
	fmt.Printf("\ninjecting %s and starting recovery:\n\n", *faultName)
	res, err := runner.RunEpisode(traced, initial, fault, rng.New(*seed).Split("episode"))
	if err != nil {
		return err
	}

	fmt.Printf("\nper-fault metrics (one Table 1 sample):\n")
	fmt.Printf("  recovered:      %v\n", res.Recovered)
	fmt.Printf("  cost:           %.2f dropped request-seconds\n", res.Cost)
	fmt.Printf("  recovery time:  %.1fs (residual %.1fs)\n", res.RecoveryTime, res.ResidualTime)
	fmt.Printf("  decisions took: %v\n", res.AlgoTime)
	fmt.Printf("  actions: %d, monitor calls: %d\n", res.Actions, res.MonitorCalls)
	return nil
}
