// Custom system: model your own architecture with the declarative builder.
//
// This example builds a system the paper never saw — a content-delivery
// stack with a load balancer, three web servers behind it (unequal
// weights), a cache, and a database on separate hosts — compiles it into a
// recovery POMDP, and compares the bounded controller against the
// most-likely baseline on a small fault-injection campaign.
//
// It demonstrates that nothing in the framework is EMN-specific: describe
// hosts, components, request paths and monitors, and the compiler derives
// states, actions, observation probabilities and reward structure.
//
// Run with:
//
//	go run ./examples/custom-system
package main

import (
	"fmt"
	"os"

	"bpomdp/internal/arch"
	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/sim"
	"bpomdp/internal/stats"
)

func webFarm() *arch.System {
	return &arch.System{
		Name: "web-farm",
		Hosts: []arch.Host{
			{Name: "edge", RebootDuration: 180},
			{Name: "web", RebootDuration: 240},
			{Name: "data", RebootDuration: 300},
		},
		Components: []arch.Component{
			{Name: "lb", Host: "edge", RestartDuration: 30},
			{Name: "web1", Host: "web", RestartDuration: 45},
			{Name: "web2", Host: "web", RestartDuration: 45},
			{Name: "web3", Host: "web", RestartDuration: 45},
			{Name: "cache", Host: "data", RestartDuration: 20},
			{Name: "db", Host: "data", RestartDuration: 200},
		},
		Paths: []arch.Path{
			{
				// Cache hits: 70% of requests stop at the cache.
				Name:         "cached",
				TrafficShare: 0.7,
				Stages: []arch.Stage{
					{{Component: "lb", Weight: 1}},
					{{Component: "web1", Weight: 2}, {Component: "web2", Weight: 1}, {Component: "web3", Weight: 1}},
					{{Component: "cache", Weight: 1}},
				},
			},
			{
				// Cache misses continue to the database.
				Name:         "uncached",
				TrafficShare: 0.3,
				Stages: []arch.Stage{
					{{Component: "lb", Weight: 1}},
					{{Component: "web1", Weight: 2}, {Component: "web2", Weight: 1}, {Component: "web3", Weight: 1}},
					{{Component: "cache", Weight: 1}},
					{{Component: "db", Weight: 1}},
				},
			},
		},
		ComponentMonitors: []arch.ComponentMonitor{
			{Name: "lbMon", Target: "lb"},
			{Name: "w1Mon", Target: "web1"},
			{Name: "w2Mon", Target: "web2"},
			{Name: "w3Mon", Target: "web3"},
			{Name: "cacheMon", Target: "cache"},
			{Name: "dbMon", Target: "db"},
		},
		PathMonitors: []arch.PathMonitor{
			{Name: "cachedProbe", Path: "cached"},
			{Name: "uncachedProbe", Path: "uncached"},
		},
		MonitorDuration: 2,
		MonitorCost:     1,
		CrashFaults:     true,
		ZombieFaults:    true,
		HostFaults:      true,
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "custom-system:", err)
		os.Exit(1)
	}
}

func run() error {
	compiled, err := webFarm().Compile()
	if err != nil {
		return err
	}
	rm := compiled.Recovery
	fmt.Printf("compiled %q: %d states, %d actions, %d observations\n",
		"web-farm", rm.POMDP.NumStates(), rm.POMDP.NumActions(), rm.POMDP.NumObservations())

	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 3600})
	if err != nil {
		return err
	}
	fmt.Printf("regime: %s; RA-Bound computed over %d states\n\n", prep.Regime, len(prep.RA))
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 2, rng.New(1)); err != nil {
		return err
	}

	bounded, err := prep.NewController(core.ControllerConfig{Depth: 1, ImproveOnline: true})
	if err != nil {
		return err
	}
	boundedInit, err := prep.InitialBelief()
	if err != nil {
		return err
	}
	ml, err := controller.NewMostLikely(rm.POMDP, controller.MostLikelyConfig{
		NullStates:             rm.NullStates,
		TerminationProbability: 0.9999,
	})
	if err != nil {
		return err
	}

	runner, err := sim.NewRunner(rm, 1000)
	if err != nil {
		return err
	}
	// Inject zombie faults — the hardest class to localize.
	const episodes = 100
	table := stats.NewTable(sim.TableHeaders()...)
	for _, entry := range []struct {
		ctrl    controller.Controller
		initial pomdp.Belief
	}{
		{bounded, boundedInit},
		{ml, pomdp.UniformBelief(rm.POMDP.NumStates())},
	} {
		res, err := runner.RunCampaign(entry.ctrl, entry.initial, compiled.ZombieStates, episodes,
			rng.New(42).Split(entry.ctrl.Name()))
		if err != nil {
			return err
		}
		table.AddRow(res.Row()...)
	}
	fmt.Printf("zombie-fault campaign (%d injections each):\n\n%s", episodes, table.String())
	return nil
}
