// Package bpomdp is a from-scratch Go implementation of "Automatic Recovery
// Using Bounded Partially Observable Markov Decision Processes" (Joshi,
// Hiltunen, Sanders, Schlichting — DSN 2006): model-based automatic recovery
// for distributed systems whose monitors give imprecise, probabilistic fault
// information.
//
// The root package is a thin facade over the implementation packages; see
// the README for the architecture and the examples directory for runnable
// walkthroughs:
//
//   - internal/pomdp — POMDPs, beliefs, Bayes updates, the belief-MDP
//     operator L_p, and the Section 3.1 convergence transforms;
//   - internal/bounds — the RA-Bound with its undiscounted convergence
//     machinery, the BI-POMDP/blind-policy comparison bounds, incremental
//     improvement, and a QMDP upper bound;
//   - internal/controller — the bounded online controller, the paper's
//     baselines, and the bootstrapping phase;
//   - internal/core — the recovery framework (Conditions 1 & 2, regimes,
//     model → bound → bootstrap → controller pipeline);
//   - internal/arch and internal/emn — the declarative system-model
//     compiler and the paper's EMN e-commerce deployment;
//   - internal/sim and internal/experiments — the fault-injection
//     simulator and the harnesses regenerating Table 1 and Figure 5.
package bpomdp
