// Package core assembles the paper's recovery framework end to end: it
// couples a POMDP with recovery semantics (null-fault states, cost rates,
// action durations), verifies the paper's Conditions 1 and 2 and diagnoses
// Property 1(a), applies the regime-appropriate convergence transform
// (Section 3.1), computes the RA-Bound, and produces bootstrapped bounded
// controllers with provable termination.
//
// The typical pipeline is:
//
//	rm := &core.RecoveryModel{...}
//	prep, _ := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 6 * 3600})
//	prep.Bootstrap(10, stream)          // optional: tighten the bound
//	ctrl, _ := prep.NewController(...)  // drive recovery
package core

import (
	"errors"
	"fmt"

	"bpomdp/internal/bounds"
	"bpomdp/internal/controller"
	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// ErrCondition1 marks violations of the paper's Condition 1: recovery models
// must have a non-empty set of null-fault states Sφ reachable from every
// state.
var ErrCondition1 = errors.New("core: Condition 1 violated (Sφ empty or unreachable)")

// ErrCondition2 marks violations of Condition 2: all single-step rewards
// must be non-positive.
var ErrCondition2 = errors.New("core: Condition 2 violated (positive reward)")

// RecoveryModel couples an untransformed POMDP with the recovery semantics
// the framework needs.
type RecoveryModel struct {
	// POMDP is the recovery model before any convergence transform.
	POMDP *pomdp.POMDP
	// NullStates is Sφ, the states in which the system is free of activated
	// faults.
	NullStates []int
	// RateRewards[s] = r̄(s) ≤ 0 is the reward (cost) rate accrued per unit
	// time in state s; it prices the terminate action via r(s,a_T)=r̄(s)·t_op.
	RateRewards linalg.Vector
	// Durations[a] = t_a is the execution time of action a in seconds, used
	// by simulators and reporting (rewards in POMDP already fold durations
	// in via r = r̄·t_a + r̂).
	Durations []float64
	// MonitorAction is the index of the passive observe action, used to
	// sample the initial monitor output of an episode.
	MonitorAction int
	// MonitorDuration is the time of one monitor sweep in seconds; a sweep
	// follows every action. Rewards in POMDP already include it; simulators
	// use it for the time metrics.
	MonitorDuration float64
}

// Validate checks structural well-formedness plus the paper's Condition 1
// (null states exist and are reachable from everywhere) and Condition 2
// (non-positive rewards).
func (m *RecoveryModel) Validate() error {
	if m.POMDP == nil {
		return fmt.Errorf("core: nil POMDP")
	}
	if err := m.POMDP.Validate(); err != nil {
		return err
	}
	n := m.POMDP.NumStates()
	if len(m.NullStates) == 0 {
		return fmt.Errorf("%w: no null states given", ErrCondition1)
	}
	for _, s := range m.NullStates {
		if s < 0 || s >= n {
			return fmt.Errorf("core: null state %d out of range [0,%d)", s, n)
		}
	}
	reach := m.POMDP.M.CanReach(m.NullStates)
	for s, ok := range reach {
		if !ok {
			return fmt.Errorf("%w: state %s cannot reach Sφ", ErrCondition1, m.POMDP.M.StateName(s))
		}
	}
	if !m.POMDP.M.AllRewardsNonPositive() {
		return fmt.Errorf("%w", ErrCondition2)
	}
	if len(m.RateRewards) != n {
		return fmt.Errorf("core: rate rewards length %d, want %d", len(m.RateRewards), n)
	}
	for s, r := range m.RateRewards {
		if r > 0 {
			return fmt.Errorf("%w: rate reward %v at state %s", ErrCondition2, r, m.POMDP.M.StateName(s))
		}
	}
	if len(m.Durations) != m.POMDP.NumActions() {
		return fmt.Errorf("core: durations length %d, want %d actions", len(m.Durations), m.POMDP.NumActions())
	}
	for a, d := range m.Durations {
		if d < 0 {
			return fmt.Errorf("core: negative duration %v for action %s", d, m.POMDP.M.ActionName(a))
		}
	}
	if m.MonitorAction < 0 || m.MonitorAction >= m.POMDP.NumActions() {
		return fmt.Errorf("core: monitor action %d out of range [0,%d)", m.MonitorAction, m.POMDP.NumActions())
	}
	if m.MonitorDuration < 0 {
		return fmt.Errorf("core: negative monitor duration %v", m.MonitorDuration)
	}
	return nil
}

// FaultStates returns all states outside Sφ, in index order.
func (m *RecoveryModel) FaultStates() []int {
	isNull := make(map[int]bool, len(m.NullStates))
	for _, s := range m.NullStates {
		isNull[s] = true
	}
	out := make([]int, 0, m.POMDP.NumStates()-len(isNull))
	for s := 0; s < m.POMDP.NumStates(); s++ {
		if !isNull[s] {
			out = append(out, s)
		}
	}
	return out
}

// FreeAction identifies a zero-reward (state, action) pair outside Sφ — a
// violation of Property 1(a)'s "no free actions" precondition.
type FreeAction struct {
	State, Action int
}

// FreeActions lists the Property 1(a) violations of the model. The bounded
// controller tolerates them via its terminate tie-break, but models without
// free actions carry the paper's unconditional termination guarantee.
func (m *RecoveryModel) FreeActions() []FreeAction {
	isNull := make(map[int]bool, len(m.NullStates))
	for _, s := range m.NullStates {
		isNull[s] = true
	}
	var out []FreeAction
	for a := 0; a < m.POMDP.NumActions(); a++ {
		for s := 0; s < m.POMDP.NumStates(); s++ {
			if !isNull[s] && m.POMDP.M.Reward[a][s] == 0 {
				out = append(out, FreeAction{State: s, Action: a})
			}
		}
	}
	return out
}

// HasRecoveryNotification reports whether the model's observation function
// certifies recovery (Section 3.1's classification).
func (m *RecoveryModel) HasRecoveryNotification() (bool, error) {
	return pomdp.HasRecoveryNotification(m.POMDP, m.NullStates)
}

// Regime is the convergence regime of Section 3.1.
type Regime int

const (
	// RegimeNotification covers systems with recovery notification: Sφ is
	// made absorbing and the controller stops on certainty of Sφ.
	RegimeNotification Regime = iota + 1
	// RegimeTermination covers systems without recovery notification: the
	// terminate action a_T and state s_T are added, priced by t_op.
	RegimeTermination
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case RegimeNotification:
		return "recovery-notification"
	case RegimeTermination:
		return "termination"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// PrepareOptions configures Prepare.
type PrepareOptions struct {
	// OperatorResponseTime is t_op (same time unit as Durations); required
	// when the termination regime applies.
	OperatorResponseTime float64
	// ForceRegime overrides automatic regime detection when non-zero.
	ForceRegime Regime
	// Bounds tunes the RA-Bound solve and subsequent updates.
	Bounds bounds.Options
	// BoundCapacity, when positive, caps the hyperplane set with least-used
	// eviction (Section 4.3's finite-storage strategy).
	BoundCapacity int
}

// Prepared is a recovery model readied for control: transformed for
// convergence, with its RA-Bound computed.
type Prepared struct {
	// Source is the original recovery model.
	Source *RecoveryModel
	// Model is the transformed POMDP the controller runs on.
	Model *pomdp.POMDP
	// Regime records which Section 3.1 transform was applied.
	Regime Regime
	// Terminate holds the a_T/s_T indices (termination regime only;
	// Terminate.Action is -1 under recovery notification).
	Terminate pomdp.TerminationIndices
	// RA is the RA-Bound hyperplane V_m⁻.
	RA linalg.Vector
	// Set is the improvable bound set, seeded with RA.
	Set *bounds.Set
	// Upper is the sawtooth upper bound paired with Set by RefineBounds; nil
	// until refinement runs (the tree and FSC consume only Set, so serving
	// never depends on it).
	Upper *bounds.UpperBound

	opts PrepareOptions
}

// Prepare validates the recovery model, picks (or honours) the regime,
// applies the matching transform, and computes the RA-Bound.
func Prepare(m *RecoveryModel, opts PrepareOptions) (*Prepared, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	regime := opts.ForceRegime
	if regime == 0 {
		hasNotif, err := m.HasRecoveryNotification()
		if err != nil {
			return nil, err
		}
		if hasNotif {
			regime = RegimeNotification
		} else {
			regime = RegimeTermination
		}
	}

	prep := &Prepared{
		Source:    m,
		Regime:    regime,
		Terminate: pomdp.TerminationIndices{State: -1, Action: -1, Observation: -1},
		opts:      opts,
	}
	switch regime {
	case RegimeNotification:
		mod, err := pomdp.AbsorbNullStates(m.POMDP, m.NullStates)
		if err != nil {
			return nil, err
		}
		prep.Model = mod
	case RegimeTermination:
		if opts.OperatorResponseTime <= 0 {
			return nil, fmt.Errorf("core: termination regime requires a positive operator response time (t_op)")
		}
		mod, idx, err := pomdp.WithTermination(m.POMDP, pomdp.TerminationConfig{
			NullStates:           m.NullStates,
			OperatorResponseTime: opts.OperatorResponseTime,
			RateReward:           m.RateRewards,
		})
		if err != nil {
			return nil, err
		}
		prep.Model = mod
		prep.Terminate = idx
	default:
		return nil, fmt.Errorf("core: unknown regime %v", regime)
	}

	ra, err := bounds.RA(prep.Model, opts.Bounds)
	if err != nil {
		return nil, fmt.Errorf("core: RA-Bound: %w", err)
	}
	prep.RA = ra
	set, err := bounds.NewSet(prep.Model.NumStates(), ra)
	if err != nil {
		return nil, err
	}
	if opts.BoundCapacity > 0 {
		set.SetCapacity(opts.BoundCapacity)
	}
	prep.Set = set
	return prep, nil
}

// Bootstrap runs n bound-improvement episodes with the given variant and
// tree depth before real faults occur (Section 4.1), returning the
// per-iteration Figure 5 series.
func (p *Prepared) Bootstrap(n int, variant controller.BootstrapVariant, depth int, stream *rng.Stream) ([]controller.IterationStats, error) {
	b, err := p.NewBootstrapper(variant, depth, stream)
	if err != nil {
		return nil, err
	}
	return b.Run(n)
}

// NewBootstrapper builds a bootstrapper sharing this Prepared's bound set.
func (p *Prepared) NewBootstrapper(variant controller.BootstrapVariant, depth int, stream *rng.Stream) (*controller.Bootstrapper, error) {
	return controller.NewBootstrapper(p.Model, p.Set, controller.BootstrapConfig{
		Variant:                  variant,
		Depth:                    depth,
		Beta:                     p.opts.Bounds.Beta,
		FaultStates:              p.Source.FaultStates(),
		NullStates:               p.Source.NullStates,
		TerminateAction:          p.Terminate.Action,
		InitialObservationAction: p.Source.MonitorAction,
	}, stream)
}

// ControllerConfig trims the bounded-controller knobs exposed at this level.
type ControllerConfig struct {
	// Depth is the Max-Avg expansion depth (default 1, as in the paper's
	// evaluation).
	Depth int
	// ImproveOnline refines the bound at beliefs visited during real
	// recovery.
	ImproveOnline bool
	// CheckConsistency verifies Property 1(b) at every visited belief.
	CheckConsistency bool
	// CollectStats records per-decision DecisionStats (bound gap, belief
	// entropy, expansion work) for structured tracing and campaign
	// aggregation. Off by default; the decision path is unchanged when off.
	CollectStats bool
}

// NewController builds the bounded recovery controller over the prepared
// model, sharing (and with ImproveOnline refining) the prepared bound set.
func (p *Prepared) NewController(cfg ControllerConfig) (*controller.Bounded, error) {
	return controller.NewBounded(p.Model, p.Set, controller.BoundedConfig{
		Depth:            cfg.Depth,
		Beta:             p.opts.Bounds.Beta,
		TerminateAction:  p.Terminate.Action,
		NullStates:       p.Source.NullStates,
		ImproveOnline:    cfg.ImproveOnline,
		CheckConsistency: cfg.CheckConsistency,
		CollectStats:     cfg.CollectStats,
	})
}

// FSCConfig trims the FSC-compiler knobs exposed at this level.
type FSCConfig struct {
	// Depth is the Max-Avg expansion depth decisions are compiled with
	// (default 1). It must match the fallback controller's depth for exact
	// decision parity.
	Depth int
	// MaxNodes caps the compiled table; zero means the compiler default.
	MaxNodes int
	// Improve runs an incremental bound update at every compiled belief
	// (mutates the prepared set; see controller.FSCCompileConfig.Improve).
	Improve bool
}

// CompileFSC compiles a finite-state controller over the prepared model
// from the episode initial belief, against the current (typically
// bootstrapped) bound set.
func (p *Prepared) CompileFSC(cfg FSCConfig) (*controller.FSC, error) {
	initial, err := p.InitialBelief()
	if err != nil {
		return nil, err
	}
	return controller.CompileFSC(p.Model, p.Set, []pomdp.Belief{initial}, controller.FSCCompileConfig{
		Depth:                    cfg.Depth,
		Beta:                     p.opts.Bounds.Beta,
		TerminateAction:          p.Terminate.Action,
		NullStates:               p.Source.NullStates,
		InitialObservationAction: p.Source.MonitorAction,
		MaxNodes:                 cfg.MaxNodes,
		Improve:                  cfg.Improve,
	})
}

// NewFSCDecider builds the tiered FSC-then-tree decider: table lookups for
// beliefs the compiled FSC covers within gapThreshold, a bounded controller
// built from cfg for everything else.
func (p *Prepared) NewFSCDecider(fsc *controller.FSC, cfg ControllerConfig, gapThreshold float64) (*controller.FSCDecider, error) {
	fallback, err := p.NewController(cfg)
	if err != nil {
		return nil, err
	}
	return controller.NewFSCDecider(fsc, fallback, controller.FSCDeciderConfig{
		GapThreshold: gapThreshold,
		CollectStats: cfg.CollectStats,
	})
}

// InitialBelief constructs the episode-start belief the paper's controller
// uses: all faults (and the null state) equally likely over the original
// state space, with no mass on s_T.
func (p *Prepared) InitialBelief() (pomdp.Belief, error) {
	n := p.Model.NumStates()
	orig := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if s != p.Terminate.State {
			orig = append(orig, s)
		}
	}
	return pomdp.UniformOver(n, orig)
}
