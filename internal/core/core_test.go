package core

import (
	"errors"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/linalg"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

func twoServerModel(t *testing.T, coverage, fp float64) *RecoveryModel {
	t.Helper()
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: coverage, FalsePositive: fp})
	if err != nil {
		t.Fatal(err)
	}
	return &RecoveryModel{
		POMDP:         ts.Model,
		NullStates:    ts.NullStates,
		RateRewards:   ts.RateRewards,
		Durations:     []float64{1, 1, 0.1},
		MonitorAction: ts.ActionObserve,
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := twoServerModel(t, 0.9, 0.05).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCondition1(t *testing.T) {
	m := twoServerModel(t, 0.9, 0.05)
	m.NullStates = nil
	if err := m.Validate(); !errors.Is(err, ErrCondition1) {
		t.Errorf("empty Sφ: %v", err)
	}

	// Build a model with an unrecoverable trap state.
	b := pomdp.NewBuilder()
	b.Transition("null", "go", "null", 1)
	b.Transition("trap", "go", "trap", 1)
	b.Reward("trap", "go", -1)
	b.Observe("null", "go", "o", 1)
	b.Observe("trap", "go", "o", 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m2 := &RecoveryModel{
		POMDP: p, NullStates: []int{0},
		RateRewards: linalg.Vector{0, -1}, Durations: []float64{1}, MonitorAction: 0,
	}
	if err := m2.Validate(); !errors.Is(err, ErrCondition1) {
		t.Errorf("trap state: %v", err)
	}
}

func TestValidateCondition2(t *testing.T) {
	m := twoServerModel(t, 0.9, 0.05)
	m.POMDP.M.Reward[0][1] = 0.5
	if err := m.Validate(); !errors.Is(err, ErrCondition2) {
		t.Errorf("positive reward: %v", err)
	}

	m2 := twoServerModel(t, 0.9, 0.05)
	m2.RateRewards = linalg.Vector{0, 0.5, -0.5}
	if err := m2.Validate(); !errors.Is(err, ErrCondition2) {
		t.Errorf("positive rate: %v", err)
	}
}

func TestValidateShapeErrors(t *testing.T) {
	m := twoServerModel(t, 0.9, 0.05)
	m.Durations = []float64{1}
	if err := m.Validate(); err == nil {
		t.Error("short durations accepted")
	}
	m = twoServerModel(t, 0.9, 0.05)
	m.Durations = []float64{1, 1, -2}
	if err := m.Validate(); err == nil {
		t.Error("negative duration accepted")
	}
	m = twoServerModel(t, 0.9, 0.05)
	m.MonitorAction = 99
	if err := m.Validate(); err == nil {
		t.Error("bad monitor action accepted")
	}
	m = twoServerModel(t, 0.9, 0.05)
	m.RateRewards = linalg.Vector{0}
	if err := m.Validate(); err == nil {
		t.Error("short rate rewards accepted")
	}
	m = twoServerModel(t, 0.9, 0.05)
	m.NullStates = []int{42}
	if err := m.Validate(); err == nil {
		t.Error("out-of-range null state accepted")
	}
	if err := (&RecoveryModel{}).Validate(); err == nil {
		t.Error("nil POMDP accepted")
	}
}

func TestFaultStatesAndFreeActions(t *testing.T) {
	m := twoServerModel(t, 0.9, 0.05)
	fs := m.FaultStates()
	if len(fs) != 2 || fs[0] != 1 || fs[1] != 2 {
		t.Errorf("FaultStates = %v", fs)
	}
	// The two-server model has no free actions in fault states (observe
	// costs 0.5 there); the only zero rewards are in Sφ.
	if free := m.FreeActions(); len(free) != 0 {
		t.Errorf("FreeActions = %v, want none", free)
	}
	// Zero out one fault action reward to create a violation.
	m.POMDP.M.Reward[2][1] = 0
	free := m.FreeActions()
	if len(free) != 1 || free[0].State != 1 || free[0].Action != 2 {
		t.Errorf("FreeActions = %v", free)
	}
}

func TestPrepareAutoDetectsRegime(t *testing.T) {
	noisy := twoServerModel(t, 0.9, 0.05)
	prep, err := Prepare(noisy, PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if prep.Regime != RegimeTermination {
		t.Errorf("noisy model regime = %v, want termination", prep.Regime)
	}
	if prep.Terminate.Action < 0 {
		t.Error("termination indices missing")
	}
	if prep.Model.NumStates() != 4 {
		t.Errorf("transformed states = %d, want 4", prep.Model.NumStates())
	}

	perfect := twoServerModel(t, 1, 0)
	prep2, err := Prepare(perfect, PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prep2.Regime != RegimeNotification {
		t.Errorf("perfect model regime = %v, want notification", prep2.Regime)
	}
	if prep2.Terminate.Action != -1 {
		t.Errorf("notification regime has terminate action %d", prep2.Terminate.Action)
	}
	if prep2.Model.NumStates() != 3 {
		t.Errorf("transformed states = %d, want 3", prep2.Model.NumStates())
	}
}

func TestPrepareRegimeOverride(t *testing.T) {
	// Force the termination transform onto a model with notification.
	perfect := twoServerModel(t, 1, 0)
	prep, err := Prepare(perfect, PrepareOptions{
		ForceRegime:          RegimeTermination,
		OperatorResponseTime: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prep.Regime != RegimeTermination || prep.Terminate.Action < 0 {
		t.Errorf("override failed: %v / %+v", prep.Regime, prep.Terminate)
	}
}

func TestPrepareRequiresTop(t *testing.T) {
	noisy := twoServerModel(t, 0.9, 0.05)
	if _, err := Prepare(noisy, PrepareOptions{}); err == nil {
		t.Error("termination regime without t_op accepted")
	}
}

func TestPrepareRAValues(t *testing.T) {
	// Same closed forms as the bounds tests: [-1, -4, -4, 0] with t_op=10.
	noisy := twoServerModel(t, 0.9, 0.05)
	prep, err := Prepare(noisy, PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, -4, -4, 0}
	for s, w := range want {
		if d := prep.RA[s] - w; d > 1e-6 || d < -1e-6 {
			t.Errorf("RA[%d] = %v, want %v", s, prep.RA[s], w)
		}
	}
	if prep.Set.Size() != 1 {
		t.Errorf("initial set size = %d, want 1", prep.Set.Size())
	}
}

func TestPreparedPipelineEndToEnd(t *testing.T) {
	noisy := twoServerModel(t, 0.9, 0.05)
	prep, err := Prepare(noisy, PrepareOptions{OperatorResponseTime: 10, BoundCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := prep.Bootstrap(5, controller.VariantAverage, 1, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 5 {
		t.Fatalf("bootstrap iterations = %d", len(stats))
	}
	ctrl, err := prep.NewController(ControllerConfig{Depth: 1, CheckConsistency: true})
	if err != nil {
		t.Fatal(err)
	}
	initial, err := prep.InitialBelief()
	if err != nil {
		t.Fatal(err)
	}
	if initial[prep.Terminate.State] != 0 {
		t.Errorf("initial belief has mass on s_T")
	}
	if err := ctrl.Reset(initial); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Decide(); err != nil {
		t.Fatal(err)
	}
}

func TestRegimeString(t *testing.T) {
	if RegimeNotification.String() == "" || RegimeTermination.String() == "" || Regime(9).String() == "" {
		t.Error("empty regime strings")
	}
}
