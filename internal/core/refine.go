package core

import (
	"fmt"

	"bpomdp/internal/bounds"
)

// RefineConfig trims the HSVI refiner knobs exposed at this level.
type RefineConfig struct {
	// Epsilon is the target root bound gap; zero means the bounds-package
	// default (1e-6).
	Epsilon float64
	// MaxTrials bounds the number of exploration trials (0 = default).
	MaxTrials int
	// MaxDepth caps each trial's forward-exploration depth (0 = default).
	MaxDepth int
}

// RefineBounds runs HSVI-style offline bound refinement from the episode
// initial belief: it pairs the prepared lower-bound set with a sawtooth
// upper bound (QMDP corner when the MDP solve converges, the trivial zero
// bound of Condition 2 otherwise — both valid), explores beliefs by the
// gap-weighted forward rule, and backs both bounds up at every visited
// point. The refined planes land in p.Set in place, so controllers, the FSC
// compiler, and deciders built from this Prepared — before or after the
// call — consume them through the unchanged Set interface; the upper bound
// is retained on p.Upper for gap telemetry and later Runs. Refinement
// composes with Bootstrap: a bootstrapped set just starts the run with a
// smaller initial gap.
func (p *Prepared) RefineBounds(cfg RefineConfig) (bounds.RefineReport, error) {
	if p.Upper == nil {
		corner, err := bounds.QMDP(p.Model, p.opts.Bounds)
		if err != nil {
			// QMDP can fail to converge off the happy path (e.g. a forced
			// regime on a model violating Condition 1); the zero bound is
			// always valid under Condition 2 and keeps refinement available.
			if corner, err = bounds.TrivialUpper(p.Model); err != nil {
				return bounds.RefineReport{}, fmt.Errorf("core: refine upper corner: %w", err)
			}
		}
		up, err := bounds.NewUpperBound(corner)
		if err != nil {
			return bounds.RefineReport{}, err
		}
		p.Upper = up
	}
	r, err := bounds.NewRefiner(p.Model, p.Set, p.Upper, bounds.RefineConfig{
		Beta:      p.opts.Bounds.Beta,
		Epsilon:   cfg.Epsilon,
		MaxTrials: cfg.MaxTrials,
		MaxDepth:  cfg.MaxDepth,
	})
	if err != nil {
		return bounds.RefineReport{}, err
	}
	initial, err := p.InitialBelief()
	if err != nil {
		return bounds.RefineReport{}, err
	}
	return r.Run(initial)
}
