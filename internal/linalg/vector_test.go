package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestVectorBasics(t *testing.T) {
	v := NewVector(4)
	if len(v) != 4 {
		t.Fatalf("NewVector(4) length = %d", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("entry %d = %v, want 0", i, x)
		}
	}
	v.Fill(2.5)
	if got := v.Sum(); !almostEqual(got, 10, 1e-12) {
		t.Errorf("Sum after Fill(2.5) = %v, want 10", got)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Errorf("Clone aliases original: v[0] = %v", v[0])
	}
}

func TestVectorDot(t *testing.T) {
	tests := []struct {
		name string
		v, w Vector
		want float64
	}{
		{"simple", Vector{1, 2, 3}, Vector{4, 5, 6}, 32},
		{"zero", Vector{0, 0}, Vector{1, 1}, 0},
		{"negative", Vector{-1, 2}, Vector{3, -4}, -11},
		{"empty", Vector{}, Vector{}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Dot(tt.w); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dot = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVectorDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths did not panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorAddScaledAndScale(t *testing.T) {
	v := Vector{1, 2, 3}
	v.AddScaled(2, Vector{1, 1, 1})
	want := Vector{3, 4, 5}
	for i := range want {
		if !almostEqual(v[i], want[i], 1e-12) {
			t.Errorf("AddScaled[%d] = %v, want %v", i, v[i], want[i])
		}
	}
	v.Scale(-1)
	if v[0] != -3 || v[2] != -5 {
		t.Errorf("Scale(-1) = %v", v)
	}
}

func TestVectorMaxMin(t *testing.T) {
	v := Vector{3, -1, 7, 7, 2}
	if m, i := v.Max(); m != 7 || i != 2 {
		t.Errorf("Max = (%v, %d), want (7, 2)", m, i)
	}
	if m, i := v.Min(); m != -1 || i != 1 {
		t.Errorf("Min = (%v, %d), want (-1, 1)", m, i)
	}
	if m, i := (Vector{}).Max(); !math.IsInf(m, -1) || i != -1 {
		t.Errorf("empty Max = (%v, %d)", m, i)
	}
	if m, i := (Vector{}).Min(); !math.IsInf(m, 1) || i != -1 {
		t.Errorf("empty Min = (%v, %d)", m, i)
	}
}

func TestVectorNorms(t *testing.T) {
	v := Vector{1, -4, 2}
	if got := v.InfNorm(); got != 4 {
		t.Errorf("InfNorm = %v, want 4", got)
	}
	w := Vector{0, -1, 5}
	if got := v.InfNormDiff(w); got != 3 {
		t.Errorf("InfNormDiff = %v, want 3", got)
	}
}

func TestVectorIsFinite(t *testing.T) {
	if !(Vector{1, 2}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vector{1, math.NaN()}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vector{math.Inf(1)}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestVectorNormalize(t *testing.T) {
	v := Vector{1, 3}
	if !v.Normalize() {
		t.Fatal("Normalize failed on positive vector")
	}
	if !almostEqual(v.Sum(), 1, 1e-12) {
		t.Errorf("normalized sum = %v", v.Sum())
	}
	z := Vector{0, 0}
	if z.Normalize() {
		t.Error("Normalize succeeded on zero vector")
	}
	n := Vector{math.NaN()}
	if n.Normalize() {
		t.Error("Normalize succeeded on NaN vector")
	}
}

// Property: dot product is symmetric and linear in its first argument.
func TestVectorDotProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		v, w := Vector(raw[:n]), Vector(raw[n:2*n])
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		if !almostEqual(v.Dot(w), w.Dot(v), 1e-6) {
			return false
		}
		v2 := v.Clone().Scale(2)
		return almostEqual(v2.Dot(w), 2*v.Dot(w), 1e-6*(1+math.Abs(v.Dot(w))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
