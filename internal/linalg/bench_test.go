package linalg

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// randomChain builds an n-state absorbing chain with ~branch non-zeros per
// row, shaped like the transition structure of recovery models.
func randomChain(b *testing.B, n, branch int) (*CSR, Vector) {
	b.Helper()
	r := rand.New(rand.NewPCG(1, uint64(n)))
	bl := NewBuilder(n, n)
	reward := NewVector(n)
	for s := 0; s < n-1; s++ {
		up := s + 1 + r.IntN(n-s-1)
		bl.Add(s, up, 0.4)
		rest := 0.6
		for k := 0; k < branch-1; k++ {
			w := rest
			if k < branch-2 {
				w = rest * r.Float64()
			}
			bl.Add(s, r.IntN(n), w)
			rest -= w
		}
		reward[s] = -r.Float64()
	}
	bl.Add(n-1, n-1, 1)
	m, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	return m, reward
}

func BenchmarkCSRMulVec(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m, _ := randomChain(b, n, 4)
			x, dst := NewVector(n), NewVector(n)
			x.Fill(1.0 / float64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MulVec(dst, x)
			}
		})
	}
}

func BenchmarkCSRMulVecT(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m, _ := randomChain(b, n, 4)
			x, dst := NewVector(n), NewVector(n)
			x.Fill(1.0 / float64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MulVecT(dst, x)
			}
		})
	}
}

func BenchmarkSolveFixedPoint(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m, reward := randomChain(b, n, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := SolveFixedPoint(m, 1, reward, FixedPointOptions{Omega: 1.1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolveLU(b *testing.B) {
	for _, n := range []int{16, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m, reward := randomChain(b, n, 4)
			dense := m.Dense()
			a := make([][]float64, n)
			for s := 0; s < n; s++ {
				a[s] = make([]float64, n)
				for c := 0; c < n; c++ {
					a[s][c] = -dense[s][c]
				}
				a[s][s] += 1
			}
			// Pin the absorbing row.
			a[n-1][n-1] = 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SolveLU(a, reward); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
