package linalg

import (
	"math/rand/v2"
	"testing"
)

func TestNewCSRBasics(t *testing.T) {
	m, err := NewCSR(2, 3, []Entry{
		{0, 0, 1}, {0, 2, 2}, {1, 1, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 || m.NNZ() != 3 {
		t.Fatalf("shape/nnz = %dx%d/%d", m.Rows(), m.Cols(), m.NNZ())
	}
	wantAt := []struct {
		r, c int
		v    float64
	}{
		{0, 0, 1}, {0, 1, 0}, {0, 2, 2}, {1, 0, 0}, {1, 1, 3}, {1, 2, 0},
	}
	for _, w := range wantAt {
		if got := m.At(w.r, w.c); got != w.v {
			t.Errorf("At(%d,%d) = %v, want %v", w.r, w.c, got, w.v)
		}
	}
}

func TestNewCSRDuplicatesSum(t *testing.T) {
	m, err := NewCSR(1, 1, []Entry{{0, 0, 1}, {0, 0, 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 0); got != 3.5 {
		t.Errorf("duplicate sum = %v, want 3.5", got)
	}
}

func TestNewCSRDropsExplicitZeros(t *testing.T) {
	m, err := NewCSR(1, 2, []Entry{{0, 0, 1}, {0, 1, 0}, {0, 0, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 0 {
		t.Errorf("NNZ = %d, want 0 (zeros dropped)", m.NNZ())
	}
}

func TestNewCSRRejectsOutOfRange(t *testing.T) {
	tests := []Entry{
		{Row: -1, Col: 0, Val: 1},
		{Row: 2, Col: 0, Val: 1},
		{Row: 0, Col: 3, Val: 1},
	}
	for _, e := range tests {
		if _, err := NewCSR(2, 3, []Entry{e}); err == nil {
			t.Errorf("entry %+v accepted out of range", e)
		}
	}
	if _, err := NewCSR(-1, 1, nil); err == nil {
		t.Error("negative rows accepted")
	}
}

func TestCSRMulVec(t *testing.T) {
	// [1 2 0; 0 0 3] * [1 1 1]ᵀ = [3 3]ᵀ
	m, err := NewCSR(2, 3, []Entry{{0, 0, 1}, {0, 1, 2}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	dst := m.MulVec(NewVector(2), Vector{1, 1, 1})
	if dst[0] != 3 || dst[1] != 3 {
		t.Errorf("MulVec = %v, want [3 3]", dst)
	}
}

func TestCSRMulVecT(t *testing.T) {
	// mᵀ * [1 1]ᵀ for m = [1 2 0; 0 0 3] is [1 2 3]ᵀ.
	m, err := NewCSR(2, 3, []Entry{{0, 0, 1}, {0, 1, 2}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	dst := m.MulVecT(NewVector(3), Vector{1, 1})
	want := Vector{1, 2, 3}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("MulVecT = %v, want %v", dst, want)
			break
		}
	}
}

func TestCSRRowIterationAndSums(t *testing.T) {
	m, err := NewCSR(2, 2, []Entry{{0, 0, 0.25}, {0, 1, 0.75}, {1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	var cols []int
	m.Row(0, func(c int, v float64) { cols = append(cols, c) })
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 1 {
		t.Errorf("Row(0) cols = %v", cols)
	}
	sums := m.RowSums()
	if !almostEqual(sums[0], 1, 1e-12) || !almostEqual(sums[1], 1, 1e-12) {
		t.Errorf("RowSums = %v, want [1 1]", sums)
	}
}

func TestCSRDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const n, nnz = 8, 20
	entries := make([]Entry, 0, nnz)
	for i := 0; i < nnz; i++ {
		entries = append(entries, Entry{
			Row: rng.IntN(n), Col: rng.IntN(n), Val: rng.Float64() - 0.5,
		})
	}
	m, err := NewCSR(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Dense()
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if !almostEqual(d[r][c], m.At(r, c), 1e-12) {
				t.Fatalf("Dense[%d][%d] = %v, At = %v", r, c, d[r][c], m.At(r, c))
			}
		}
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 0.5)
	b.Add(0, 1, 0.5)
	b.Add(1, 0, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 1); got != 1 {
		t.Errorf("builder accumulated At(0,1) = %v, want 1", got)
	}
}

// Property: MulVec agrees with the dense expansion on random sparse matrices.
func TestCSRMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.IntN(10), 1+rng.IntN(10)
		nnz := rng.IntN(rows * cols)
		entries := make([]Entry, 0, nnz)
		for i := 0; i < nnz; i++ {
			entries = append(entries, Entry{Row: rng.IntN(rows), Col: rng.IntN(cols), Val: rng.NormFloat64()})
		}
		m, err := NewCSR(rows, cols, entries)
		if err != nil {
			t.Fatal(err)
		}
		x := NewVector(cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulVec(NewVector(rows), x)
		d := m.Dense()
		for r := 0; r < rows; r++ {
			var want float64
			for c := 0; c < cols; c++ {
				want += d[r][c] * x[c]
			}
			if !almostEqual(got[r], want, 1e-9) {
				t.Fatalf("trial %d row %d: MulVec = %v, dense = %v", trial, r, got[r], want)
			}
		}
	}
}
