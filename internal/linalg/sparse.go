package linalg

import (
	"fmt"
	"sort"
)

// Entry is a single coordinate-format matrix entry, used while assembling a
// sparse matrix before conversion to CSR.
type Entry struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row matrix. It is immutable after construction;
// build one with NewCSR or via a Builder.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// NewCSR assembles a CSR matrix of the given shape from coordinate entries.
// Duplicate (row, col) entries are summed. Entries out of range are an error.
func NewCSR(rows, cols int, entries []Entry) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("linalg: invalid shape %dx%d", rows, cols)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("linalg: entry (%d,%d) out of range for %dx%d matrix",
				e.Row, e.Col, rows, cols)
		}
	}
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})

	m := &CSR{
		rows:   rows,
		cols:   cols,
		rowPtr: make([]int, rows+1),
		colIdx: make([]int, 0, len(sorted)),
		vals:   make([]float64, 0, len(sorted)),
	}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		if v != 0 {
			m.colIdx = append(m.colIdx, sorted[i].Col)
			m.vals = append(m.vals, v)
			m.rowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored (non-zero) entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns the entry at (r, c). It is O(log nnz(row)) and intended for
// tests and diagnostics, not hot loops.
func (m *CSR) At(r, c int) float64 {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("linalg: At(%d,%d) out of range for %dx%d", r, c, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	i := sort.SearchInts(m.colIdx[lo:hi], c) + lo
	if i < hi && m.colIdx[i] == c {
		return m.vals[i]
	}
	return 0
}

// MulVec computes dst = m * x. dst must have length m.Rows() and x length
// m.Cols(); dst is returned for chaining. dst and x must not alias.
func (m *CSR) MulVec(dst, x Vector) Vector {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch: matrix %dx%d, x %d, dst %d",
			m.rows, m.cols, len(x), len(dst)))
	}
	for r := 0; r < m.rows; r++ {
		var s float64
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			s += m.vals[i] * x[m.colIdx[i]]
		}
		dst[r] = s
	}
	return dst
}

// MulVecT computes dst = mᵀ * x (x has length Rows, dst length Cols).
// This lets callers store a transition matrix row-major by source state and
// still push probability mass forward. dst and x must not alias.
func (m *CSR) MulVecT(dst, x Vector) Vector {
	if len(x) != m.rows || len(dst) != m.cols {
		panic(fmt.Sprintf("linalg: MulVecT shape mismatch: matrix %dx%d, x %d, dst %d",
			m.rows, m.cols, len(x), len(dst)))
	}
	dst.Fill(0)
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			dst[m.colIdx[i]] += m.vals[i] * xr
		}
	}
	return dst
}

// Row calls fn(col, val) for every stored entry of row r.
func (m *CSR) Row(r int, fn func(col int, val float64)) {
	for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
		fn(m.colIdx[i], m.vals[i])
	}
}

// RowSlice returns row r's stored entries as parallel column-index and value
// slices, sorted by column. The slices alias the matrix's internal storage
// and must not be modified; this is the zero-allocation accessor the hot
// loops (episode sampling, belief updates) iterate instead of the
// closure-based Row.
func (m *CSR) RowSlice(r int) (cols []int, vals []float64) {
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// RowSums returns the vector of per-row sums, useful for validating that a
// stochastic matrix's rows sum to one.
func (m *CSR) RowSums() Vector {
	out := NewVector(m.rows)
	for r := 0; r < m.rows; r++ {
		var s float64
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			s += m.vals[i]
		}
		out[r] = s
	}
	return out
}

// Dense expands m to a dense row-major matrix, for tests and the LU
// reference solver.
func (m *CSR) Dense() [][]float64 {
	out := make([][]float64, m.rows)
	flat := make([]float64, m.rows*m.cols)
	for r := 0; r < m.rows; r++ {
		out[r] = flat[r*m.cols : (r+1)*m.cols]
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			out[r][m.colIdx[i]] = m.vals[i]
		}
	}
	return out
}

// Builder incrementally accumulates coordinate entries for a CSR matrix.
// The zero value is not usable; create one with NewBuilder.
type Builder struct {
	rows, cols int
	entries    []Entry
}

// NewBuilder returns a Builder for a rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Add accumulates v at (r, c). Adding to the same coordinate twice sums.
func (b *Builder) Add(r, c int, v float64) {
	b.entries = append(b.entries, Entry{Row: r, Col: c, Val: v})
}

// Build finalizes the builder into an immutable CSR matrix.
func (b *Builder) Build() (*CSR, error) {
	return NewCSR(b.rows, b.cols, b.entries)
}
