package linalg

import (
	"math/rand/v2"
	"testing"
)

// naiveSweep is a direct transcription of the pre-kernel Gauss-Seidel/SOR
// sweep over a CSR matrix, branching on the diagonal inside the inner loop.
// SORKernel.Sweep must reproduce it bit-for-bit: same off-diagonal visit
// order, same arithmetic, same absorbing-row pinning.
func naiveSweep(p *CSR, v, r Vector, beta, omega float64) float64 {
	n := p.Rows()
	var maxDelta float64
	for s := 0; s < n; s++ {
		var sum, selfW float64
		cols, vals := p.RowSlice(s)
		for k, c := range cols {
			if c == s {
				selfW = vals[k]
				continue
			}
			sum += vals[k] * v[c]
		}
		denom := 1 - beta*selfW
		if denom < 1e-14 {
			v[s] = 0
			continue
		}
		gs := (r[s] + beta*sum) / denom
		next := (1-omega)*v[s] + omega*gs
		delta := next - v[s]
		if delta < 0 {
			delta = -delta
		}
		if delta > maxDelta {
			maxDelta = delta
		}
		v[s] = next
	}
	return maxDelta
}

func randomStochasticCSR(t *testing.T, rnd *rand.Rand, n int, absorbing map[int]bool) *CSR {
	t.Helper()
	b := NewBuilder(n, n)
	for s := 0; s < n; s++ {
		if absorbing[s] {
			b.Add(s, s, 1)
			continue
		}
		k := 1 + rnd.IntN(4)
		weights := make([]float64, 0, k+1)
		targets := make([]int, 0, k+1)
		var total float64
		for j := 0; j < k; j++ {
			w := rnd.Float64()
			weights = append(weights, w)
			targets = append(targets, rnd.IntN(n))
			total += w
		}
		// Include a self-loop with some probability so diagonal handling is
		// exercised on non-absorbing rows too.
		if rnd.Float64() < 0.5 {
			w := rnd.Float64() * 0.5
			weights = append(weights, w)
			targets = append(targets, s)
			total += w
		}
		for j, tgt := range targets {
			b.Add(s, tgt, weights[j]/total)
		}
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSORKernelSweepMatchesNaive pins the kernel's bit-for-bit equivalence
// with the branching reference sweep across random chains, relaxation
// factors, and absorbing structure.
func TestSORKernelSweepMatchesNaive(t *testing.T) {
	rnd := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rnd.IntN(12)
		absorbing := map[int]bool{0: true}
		if rnd.Float64() < 0.3 {
			absorbing[n-1] = true
		}
		p := randomStochasticCSR(t, rnd, n, absorbing)
		r := make(Vector, n)
		for s := range r {
			if !absorbing[s] {
				r[s] = -rnd.Float64() * 10
			}
		}
		beta := []float64{1, 0.99}[rnd.IntN(2)]
		omega := []float64{0.8, 1.0, 1.3}[rnd.IntN(3)]

		kernel := NewSORKernel(p)
		vk := make(Vector, n)
		vn := make(Vector, n)
		for sweep := 0; sweep < 5; sweep++ {
			dk := kernel.Sweep(vk, r, beta, omega)
			dn := naiveSweep(p, vn, r, beta, omega)
			if dk != dn {
				t.Fatalf("trial %d sweep %d: maxDelta %v != naive %v", trial, sweep, dk, dn)
			}
			for s := range vk {
				if vk[s] != vn[s] {
					t.Fatalf("trial %d sweep %d: v[%d] = %v, naive %v (not bit-identical)", trial, sweep, s, vk[s], vn[s])
				}
			}
		}
	}
}

func TestNewSORKernelRejectsNonSquare(t *testing.T) {
	b := NewBuilder(2, 3)
	b.Add(0, 0, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-square matrix accepted")
		}
	}()
	NewSORKernel(m)
}
