package linalg

import (
	"errors"
	"math"
	"testing"
)

func TestSolveLPTextbookMax(t *testing.T) {
	// maximize 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 — the classic
	// Wyndor Glass problem; optimum (2, 6) value 36.
	res, err := SolveLP(LP{
		Objective: Vector{3, 5},
		Constraints: []Constraint{
			{Coeffs: Vector{1, 0}, Op: LE, Rhs: 4},
			{Coeffs: Vector{0, 2}, Op: LE, Rhs: 12},
			{Coeffs: Vector{3, 2}, Op: LE, Rhs: 18},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Value, 36, 1e-8) {
		t.Errorf("value = %v, want 36", res.Value)
	}
	if !almostEqual(res.X[0], 2, 1e-8) || !almostEqual(res.X[1], 6, 1e-8) {
		t.Errorf("x = %v, want (2, 6)", res.X)
	}
}

func TestSolveLPWithEqualityAndGE(t *testing.T) {
	// maximize x + y s.t. x + y = 1 (simplex!), x ≥ 0.25. Optimum value 1,
	// any feasible split; x must honor the GE row.
	res, err := SolveLP(LP{
		Objective: Vector{1, 1},
		Constraints: []Constraint{
			{Coeffs: Vector{1, 1}, Op: EQ, Rhs: 1},
			{Coeffs: Vector{1, 0}, Op: GE, Rhs: 0.25},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Value, 1, 1e-8) {
		t.Errorf("value = %v, want 1", res.Value)
	}
	if res.X[0] < 0.25-1e-8 {
		t.Errorf("x = %v violates x ≥ 0.25", res.X)
	}
	if !almostEqual(res.X.Sum(), 1, 1e-8) {
		t.Errorf("x sums to %v", res.X.Sum())
	}
}

func TestSolveLPNegativeRHS(t *testing.T) {
	// maximize -x s.t. -x ≤ -2 (i.e. x ≥ 2): optimum x = 2, value -2.
	res, err := SolveLP(LP{
		Objective:   Vector{-1},
		Constraints: []Constraint{{Coeffs: Vector{-1}, Op: LE, Rhs: -2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.X[0], 2, 1e-8) || !almostEqual(res.Value, -2, 1e-8) {
		t.Errorf("x = %v value %v, want 2/-2", res.X, res.Value)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	_, err := SolveLP(LP{
		Objective: Vector{1},
		Constraints: []Constraint{
			{Coeffs: Vector{1}, Op: LE, Rhs: 1},
			{Coeffs: Vector{1}, Op: GE, Rhs: 2},
		},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveLPUnbounded(t *testing.T) {
	_, err := SolveLP(LP{
		Objective:   Vector{1},
		Constraints: []Constraint{{Coeffs: Vector{-1}, Op: LE, Rhs: 0}},
	})
	if !errors.Is(err, ErrLPUnbounded) {
		t.Errorf("err = %v, want ErrLPUnbounded", err)
	}
}

func TestSolveLPValidation(t *testing.T) {
	if _, err := SolveLP(LP{}); err == nil {
		t.Error("no variables accepted")
	}
	if _, err := SolveLP(LP{
		Objective:   Vector{1},
		Constraints: []Constraint{{Coeffs: Vector{1, 2}, Op: LE, Rhs: 1}},
	}); err == nil {
		t.Error("coefficient length mismatch accepted")
	}
	if _, err := SolveLP(LP{
		Objective:   Vector{1},
		Constraints: []Constraint{{Coeffs: Vector{1}, Op: 0, Rhs: 1}},
	}); err == nil {
		t.Error("invalid op accepted")
	}
}

func TestSolveLPDegenerate(t *testing.T) {
	// Degenerate vertex (three constraints through one point in 2D); Bland's
	// rule must still terminate at the optimum (1,1), value 2.
	res, err := SolveLP(LP{
		Objective: Vector{1, 1},
		Constraints: []Constraint{
			{Coeffs: Vector{1, 0}, Op: LE, Rhs: 1},
			{Coeffs: Vector{0, 1}, Op: LE, Rhs: 1},
			{Coeffs: Vector{1, 1}, Op: LE, Rhs: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Value, 2, 1e-8) {
		t.Errorf("value = %v, want 2", res.Value)
	}
}

func TestSolveLPMatchesBruteForceOnRandomSimplexLPs(t *testing.T) {
	// Domination-shaped LPs: maximize δ s.t. π·g_k ≥ δ over the probability
	// simplex. The optimum is max over vertices? No — it is the value of the
	// max-min over the simplex, which for a single g is max_s g(s) and in
	// general is the optimal mixed strategy value; brute-force over a fine
	// grid lower-bounds it. Use 2-state problems where the answer is exact:
	// max_π min_k π·g_k with π = (p, 1-p) is a 1-D piecewise-linear concave
	// maximization solvable by scanning breakpoints.
	cases := [][]Vector{
		{{1, -1}, {-1, 1}},           // value 0 at p = 0.5
		{{2, 0}, {0, 1}},             // crossing at p = 1/3: value 2/3
		{{-1, -2}},                   // single plane: max at p = 1 → -1
		{{1, 1}, {0.5, 3}, {2, 0.5}}, // all positive
	}
	for ci, gs := range cases {
		n := 2
		// Variables: π_0, π_1, δ⁺, δ⁻.
		obj := Vector{0, 0, 1, -1}
		cons := []Constraint{
			{Coeffs: Vector{1, 1, 0, 0}, Op: EQ, Rhs: 1},
		}
		for _, g := range gs {
			cons = append(cons, Constraint{
				Coeffs: Vector{-g[0], -g[1], 1, -1}, Op: LE, Rhs: 0,
			})
		}
		res, err := SolveLP(LP{Objective: obj, Constraints: cons})
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		// Brute force over p.
		best := math.Inf(-1)
		for p := 0.0; p <= 1.0000001; p += 1e-4 {
			worst := math.Inf(1)
			for _, g := range gs {
				v := p*g[0] + (1-p)*g[1]
				if v < worst {
					worst = v
				}
			}
			if worst > best {
				best = worst
			}
		}
		if !almostEqual(res.Value, best, 1e-3) {
			t.Errorf("case %d: LP %v vs brute force %v (n=%d)", ci, res.Value, best, n)
		}
	}
}
