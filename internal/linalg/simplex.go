package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible is returned when a linear program has no feasible point.
var ErrInfeasible = errors.New("linalg: linear program is infeasible")

// ErrLPUnbounded is returned when a linear program's objective is unbounded
// above.
var ErrLPUnbounded = errors.New("linalg: linear program is unbounded")

// ConstraintOp is the relation of one linear constraint.
type ConstraintOp int

// Constraint relations.
const (
	LE ConstraintOp = iota + 1 // Σ a_j x_j ≤ rhs
	GE                         // Σ a_j x_j ≥ rhs
	EQ                         // Σ a_j x_j = rhs
)

// Constraint is one row of a linear program.
type Constraint struct {
	// Coeffs are the coefficients over the decision variables.
	Coeffs Vector
	// Op relates the linear form to Rhs.
	Op ConstraintOp
	// Rhs is the right-hand side.
	Rhs float64
}

// LP is the problem: maximize Objective·x subject to the Constraints and
// x ≥ 0. (Free variables must be split by the caller as x = x⁺ − x⁻.)
type LP struct {
	Objective   Vector
	Constraints []Constraint
}

// LPResult is an optimal solution.
type LPResult struct {
	// X is the optimizer (length = number of decision variables).
	X Vector
	// Value is the optimal objective value.
	Value float64
}

// SolveLP solves the linear program by the two-phase primal simplex method
// with Bland's anti-cycling rule. It is a dense implementation sized for
// the hyperplane-domination LPs of this repository (tens of variables and
// constraints), not a general-purpose LP library.
func SolveLP(lp LP) (LPResult, error) {
	n := len(lp.Objective)
	if n == 0 {
		return LPResult{}, fmt.Errorf("linalg: LP with no variables")
	}
	m := len(lp.Constraints)
	for i, c := range lp.Constraints {
		if len(c.Coeffs) != n {
			return LPResult{}, fmt.Errorf("linalg: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), n)
		}
		if c.Op != LE && c.Op != GE && c.Op != EQ {
			return LPResult{}, fmt.Errorf("linalg: constraint %d has invalid op %d", i, c.Op)
		}
	}

	// Normalize to equality form with slack/surplus variables and b ≥ 0,
	// adding artificial variables where the canonical basis is missing.
	//
	// Column layout: [x (n)] [slack/surplus (m, one per row; zero column
	// for EQ)] [artificial (as needed)].
	type rowInfo struct {
		slackCol int // -1 if none
		artCol   int // -1 if none
	}
	rows := make([]rowInfo, m)
	cols := n + m // artificials appended after
	a := make([][]float64, m)
	b := make([]float64, m)
	for i, c := range lp.Constraints {
		a[i] = make([]float64, cols) // grown later for artificials
		copy(a[i], c.Coeffs)
		b[i] = c.Rhs
		sign := 1.0
		if b[i] < 0 {
			// Multiply the row by -1 so b ≥ 0; flips the relation.
			sign = -1
			for j := 0; j < n; j++ {
				a[i][j] = -a[i][j]
			}
			b[i] = -b[i]
		}
		op := c.Op
		if sign < 0 {
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		rows[i] = rowInfo{slackCol: -1, artCol: -1}
		switch op {
		case LE:
			a[i][n+i] = 1 // slack enters the basis
			rows[i].slackCol = n + i
		case GE:
			a[i][n+i] = -1 // surplus; needs an artificial
			rows[i].slackCol = n + i
		case EQ:
			// needs an artificial
		}
	}
	// Append artificial columns.
	var artCols []int
	for i := range rows {
		op := lp.Constraints[i].Op
		negated := lp.Constraints[i].Rhs < 0
		if negated {
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		if op == GE || op == EQ {
			col := cols
			cols++
			for k := 0; k < m; k++ {
				a[k] = append(a[k], 0)
			}
			a[i][col] = 1
			rows[i].artCol = col
			artCols = append(artCols, col)
		}
	}

	basis := make([]int, m)
	for i := range rows {
		if rows[i].artCol >= 0 {
			basis[i] = rows[i].artCol
		} else {
			basis[i] = rows[i].slackCol
		}
	}

	// Phase 1: minimize the sum of artificials (maximize its negation).
	if len(artCols) > 0 {
		phase1 := make([]float64, cols)
		for _, c := range artCols {
			phase1[c] = -1
		}
		if err := simplexIterate(a, b, basis, phase1); err != nil {
			return LPResult{}, err
		}
		var artSum float64
		for i, col := range basis {
			if isArtificial(col, artCols) {
				artSum += b[i]
			}
		}
		if artSum > 1e-8 {
			return LPResult{}, ErrInfeasible
		}
		// Drive any residual (degenerate) artificials out of the basis.
		for i, col := range basis {
			if !isArtificial(col, artCols) {
				continue
			}
			pivoted := false
			for j := 0; j < n+m; j++ {
				if math.Abs(a[i][j]) > 1e-9 && !isArtificial(j, artCols) {
					pivot(a, b, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; harmless to leave (b[i] is 0).
				_ = i
			}
		}
	}

	// Phase 2: the real objective, with artificial columns forbidden.
	obj := make([]float64, cols)
	copy(obj, lp.Objective)
	for _, c := range artCols {
		obj[c] = math.Inf(-1) // never price an artificial back in
	}
	if err := simplexIterate(a, b, basis, obj); err != nil {
		return LPResult{}, err
	}

	x := NewVector(n)
	for i, col := range basis {
		if col < n {
			x[col] = b[i]
		}
	}
	return LPResult{X: x, Value: Vector(lp.Objective).Dot(x)}, nil
}

func isArtificial(col int, artCols []int) bool {
	for _, c := range artCols {
		if c == col {
			return true
		}
	}
	return false
}

// simplexIterate runs primal simplex on the tableau (a, b) with the given
// basis, maximizing obj. Bland's rule guarantees termination.
func simplexIterate(a [][]float64, b []float64, basis []int, obj []float64) error {
	m := len(a)
	if m == 0 {
		return nil
	}
	cols := len(a[0])
	const tol = 1e-9
	// y holds the reduced costs.
	for iter := 0; iter < 10000*(cols+m); iter++ {
		// Reduced cost: c_j - c_B·B⁻¹A_j. With the tableau kept in
		// canonical form, compute via the basis rows.
		entering := -1
		for j := 0; j < cols; j++ {
			if math.IsInf(obj[j], -1) {
				continue
			}
			cj := obj[j]
			for i, col := range basis {
				if !math.IsInf(obj[col], -1) {
					cj -= obj[col] * a[i][j]
				}
			}
			if cj > tol {
				entering = j // Bland: first improving column
				break
			}
		}
		if entering < 0 {
			return nil // optimal
		}
		// Ratio test (Bland: smallest basis index on ties).
		leaving := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if a[i][entering] > tol {
				ratio := b[i] / a[i][entering]
				if ratio < best-tol || (ratio < best+tol && (leaving < 0 || basis[i] < basis[leaving])) {
					best = ratio
					leaving = i
				}
			}
		}
		if leaving < 0 {
			return ErrLPUnbounded
		}
		pivot(a, b, basis, leaving, entering)
	}
	return fmt.Errorf("linalg: simplex iteration limit reached")
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the basis.
func pivot(a [][]float64, b []float64, basis []int, row, col int) {
	m := len(a)
	inv := 1 / a[row][col]
	for j := range a[row] {
		a[row][j] *= inv
	}
	b[row] *= inv
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		f := a[i][col]
		if f == 0 {
			continue
		}
		for j := range a[i] {
			a[i][j] -= f * a[row][j]
		}
		b[i] -= f * b[row]
	}
	basis[row] = col
}
