package linalg

import (
	"fmt"
	"math"
)

// PlaneUseful reports whether hyperplane v attains a strictly higher value
// than max over `others` somewhere on the probability simplex — the exact
// (LP-based) usefulness test behind "hyperplanes that are not better in at
// least some regions of the probability simplex can be discarded".
//
// The quantity decided is the matrix-game value
//
//	V = max_{π ∈ simplex} min_b π·(v − b),
//
// with v useful iff V > tol. Rather than solving that primal directly
// (whose simplex-equality row needs artificial variables and is prone to
// degenerate phase-1 stalling on the near-duplicate constraint sets the
// cross-sum DP produces), we solve the shifted DUAL game LP
//
//	maximize Σ_b w_b   s.t.  Σ_b w_b·g'_b(s) ≤ 1 ∀s,  w ≥ 0,
//
// where g'_b = (v − b) + M entrywise, with M chosen so g' ≥ 1. The dual has
// only ≤-rows with non-negative right-hand sides, so the all-slack basis is
// immediately feasible (single-phase simplex), and strong duality gives
// V = 1/Σw* − M exactly.
func PlaneUseful(v Vector, others []Vector, tol float64) (bool, error) {
	if len(others) == 0 {
		return true, nil
	}
	n := len(v)
	if n == 0 {
		return false, fmt.Errorf("linalg: empty plane")
	}
	if tol <= 0 {
		tol = 1e-9
	}
	k := len(others)
	// g_b = v − b, then shifted by M so every entry is ≥ 1.
	g := make([]Vector, k)
	maxAbs := 0.0
	for bi, b := range others {
		if len(b) != n {
			return false, fmt.Errorf("linalg: plane length %d, want %d", len(b), n)
		}
		g[bi] = NewVector(n)
		for s := 0; s < n; s++ {
			d := v[s] - b[s]
			if math.IsNaN(d) || math.IsInf(d, 0) {
				return false, fmt.Errorf("linalg: non-finite plane difference")
			}
			g[bi][s] = d
			if a := math.Abs(d); a > maxAbs {
				maxAbs = a
			}
		}
	}
	shift := maxAbs + 1
	// Dual variables: w_b ≥ 0; one ≤-constraint per state s.
	obj := NewVector(k)
	obj.Fill(1)
	cons := make([]Constraint, n)
	for s := 0; s < n; s++ {
		row := NewVector(k)
		for bi := 0; bi < k; bi++ {
			row[bi] = g[bi][s] + shift
		}
		cons[s] = Constraint{Coeffs: row, Op: LE, Rhs: 1}
	}
	res, err := SolveLP(LP{Objective: obj, Constraints: cons})
	if err != nil {
		return false, fmt.Errorf("linalg: usefulness LP: %w", err)
	}
	if res.Value <= 0 {
		// Σw* = 0 would mean an infinite shifted game value, impossible
		// with g' ≥ 1; treat defensively as useful (never drop a plane on a
		// numerical fluke).
		return true, nil
	}
	gameValue := 1/res.Value - shift
	return gameValue > tol, nil
}

// FilterUselessPlanes removes every plane that is nowhere strictly above
// the maximum of the remaining planes, leaving the pointwise-max function
// unchanged. Removal is one at a time, which is sound: deleting a useless
// plane never changes the max, so later tests remain valid.
func FilterUselessPlanes(planes []Vector, tol float64) ([]Vector, error) {
	kept := append([]Vector(nil), planes...)
	for i := 0; i < len(kept); {
		others := make([]Vector, 0, len(kept)-1)
		others = append(others, kept[:i]...)
		others = append(others, kept[i+1:]...)
		useful, err := PlaneUseful(kept[i], others, tol)
		if err != nil {
			return nil, err
		}
		if useful {
			i++
			continue
		}
		kept = append(kept[:i], kept[i+1:]...)
	}
	return kept, nil
}
