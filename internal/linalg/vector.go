// Package linalg provides the small, dependency-free linear-algebra kernel
// used by the MDP and POMDP solvers: dense vectors, compressed sparse row
// (CSR) matrices, and iterative linear-system solvers (Gauss-Seidel with
// successive over-relaxation, Jacobi) together with a dense LU reference
// solver used for cross-checking.
//
// The package is deliberately minimal: the models in this repository have at
// most a few hundred thousand states with very sparse transition structure,
// which is exactly the regime the paper targets ("standard, numerically
// stable linear system solvers for models with up to hundreds of thousands
// of states", §4.3).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when operands have incompatible shapes.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every entry of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Dot returns the inner product of v and w.
// It panics if the lengths differ; callers validate shapes at model-build
// time so a mismatch here is a programming error.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(dotMismatch(len(v), len(w)))
	}
	return dotKernel(v, w)
}

func dotMismatch(a, b int) string {
	return fmt.Sprintf("linalg: Dot length mismatch %d != %d", a, b)
}

// AddScaled sets v = v + alpha*w in place and returns v.
func (v Vector) AddScaled(alpha float64, w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: AddScaled length mismatch %d != %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
	return v
}

// Scale multiplies every entry of v by alpha in place and returns v.
func (v Vector) Scale(alpha float64) Vector {
	for i := range v {
		v[i] *= alpha
	}
	return v
}

// Sum returns the sum of the entries of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the maximum entry of v and its index.
// For an empty vector it returns -Inf and -1.
func (v Vector) Max() (float64, int) {
	best, arg := math.Inf(-1), -1
	for i, x := range v {
		if x > best {
			best, arg = x, i
		}
	}
	return best, arg
}

// Min returns the minimum entry of v and its index.
// For an empty vector it returns +Inf and -1.
func (v Vector) Min() (float64, int) {
	best, arg := math.Inf(1), -1
	for i, x := range v {
		if x < best {
			best, arg = x, i
		}
	}
	return best, arg
}

// InfNormDiff returns max_i |v[i]-w[i]|, the sup-norm distance between v and w.
func (v Vector) InfNormDiff(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: InfNormDiff length mismatch %d != %d", len(v), len(w)))
	}
	var m float64
	for i := range v {
		if d := math.Abs(v[i] - w[i]); d > m {
			m = d
		}
	}
	return m
}

// InfNorm returns max_i |v[i]|.
func (v Vector) InfNorm() float64 {
	var m float64
	for _, x := range v {
		if d := math.Abs(x); d > m {
			m = d
		}
	}
	return m
}

// IsFinite reports whether every entry of v is finite (no NaN or ±Inf).
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Normalize scales v in place so its entries sum to 1 and reports whether
// that was possible (the sum must be positive and finite).
func (v Vector) Normalize() bool {
	s := v.Sum()
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return false
	}
	v.Scale(1 / s)
	return true
}
