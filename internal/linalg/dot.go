package linalg

// dotKernel is the shared inner-product kernel behind Vector.Dot and the
// hyperplane-slab scans in package bounds: a 4-wide unrolled loop feeding a
// SINGLE accumulator. Unrolling with one accumulator keeps the floating-point
// addition sequence identical to the naive loop — term i is always added
// after term i-1 — so results are bit-for-bit the same as before, while the
// unrolled body amortizes loop overhead and lets the compiler eliminate three
// of every four bound checks.
//
// Callers are responsible for length checking; x and y must be the same
// length.
func dotKernel(x, y []float64) float64 {
	var s float64
	i := 0
	y = y[:len(x)] // hoist the bound proof for the unrolled body
	for ; i+4 <= len(x); i += 4 {
		s += x[i] * y[i]
		s += x[i+1] * y[i+1]
		s += x[i+2] * y[i+2]
		s += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// DotUnrolled computes the inner product of two equal-length slices with the
// unrolled single-accumulator kernel. It is exported for the packed
// structure-of-arrays scans (bounds.Set) that hold their planes as raw
// []float64 rows rather than Vectors. It panics on length mismatch, like
// Vector.Dot.
func DotUnrolled(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(dotMismatch(len(x), len(y)))
	}
	return dotKernel(x, y)
}
