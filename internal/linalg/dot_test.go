package linalg

import (
	"testing"

	"bpomdp/internal/rng"
)

// naiveDot is the reference single-accumulator loop DotUnrolled must
// reproduce bit-for-bit: the unrolled kernel keeps one accumulator and adds
// products in index order, so the floating-point operation sequence is
// identical.
func naiveDot(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func TestDotUnrolledBitIdentical(t *testing.T) {
	stream := rng.New(31)
	// Every length from 0 through 33 covers all tail residues of the 4-wide
	// unroll several times over.
	for n := 0; n <= 33; n++ {
		for trial := 0; trial < 8; trial++ {
			x := make([]float64, n)
			y := make([]float64, n)
			for i := range x {
				x[i] = stream.Float64()*2e3 - 1e3
				y[i] = stream.Float64()*2e3 - 1e3
			}
			want, got := naiveDot(x, y), DotUnrolled(x, y)
			if want != got {
				t.Fatalf("n=%d trial %d: DotUnrolled %v != naive %v", n, trial, got, want)
			}
			if v := Vector(x).Dot(Vector(y)); v != want {
				t.Fatalf("n=%d trial %d: Vector.Dot %v != naive %v", n, trial, v, want)
			}
		}
	}
}

func TestDotUnrolledMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	DotUnrolled([]float64{1, 2}, []float64{1})
}
