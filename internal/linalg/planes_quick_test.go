package linalg

import (
	"errors"
	"math/rand/v2"
	"testing"
)

func TestPlaneUsefulNeverInfeasibleRandom(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + r.IntN(4)
		k := 1 + r.IntN(6)
		scale := []float64{1, 10, 100, 1000}[r.IntN(4)]
		v := NewVector(n)
		for i := range v {
			v[i] = (r.Float64() - 0.7) * scale
		}
		others := make([]Vector, k)
		for j := range others {
			others[j] = NewVector(n)
			for i := range others[j] {
				others[j][i] = (r.Float64() - 0.7) * scale
			}
			if r.IntN(4) == 0 {
				copy(others[j], v) // duplicates
			}
		}
		_, err := PlaneUseful(v, others, 0)
		if errors.Is(err, ErrInfeasible) {
			t.Fatalf("trial %d (n=%d k=%d scale=%v): infeasible\nv=%v\nothers=%v", trial, n, k, scale, v, others)
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
