package linalg

import "testing"

func TestPlaneUsefulBasicGeometry(t *testing.T) {
	a := Vector{1, 0}
	b := Vector{0, 1}
	// Each of the crossing planes is useful against the other.
	for _, pair := range [][2]Vector{{a, b}, {b, a}} {
		useful, err := PlaneUseful(pair[0], []Vector{pair[1]}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !useful {
			t.Errorf("crossing plane %v reported useless vs %v", pair[0], pair[1])
		}
	}
	// A plane below the max of a and b everywhere is useless even though no
	// single plane pointwise-dominates it.
	mid := Vector{0.4, 0.4} // max(a,b) at any π is ≥ 0.5
	useful, err := PlaneUseful(mid, []Vector{a, b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if useful {
		t.Errorf("plane %v under the upper envelope reported useful", mid)
	}
	// Raising it above the envelope's valley (0.5 at π = (0.5, 0.5)) makes
	// it useful again.
	high := Vector{0.6, 0.6}
	useful, err = PlaneUseful(high, []Vector{a, b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !useful {
		t.Errorf("plane %v above the envelope valley reported useless", high)
	}
}

func TestPlaneUsefulEmptyOthersAndErrors(t *testing.T) {
	useful, err := PlaneUseful(Vector{1}, nil, 0)
	if err != nil || !useful {
		t.Errorf("empty others: %v %v", useful, err)
	}
	if _, err := PlaneUseful(Vector{}, []Vector{{1}}, 0); err == nil {
		t.Error("empty plane accepted")
	}
	if _, err := PlaneUseful(Vector{1}, []Vector{{1, 2}}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFilterUselessPlanes(t *testing.T) {
	planes := []Vector{
		{1, 0},
		{0, 1},
		{0.4, 0.4},   // under the envelope: removed
		{0.7, 0.7},   // above the valley: kept
		{1, 0},       // exact duplicate: one copy removed
		{0.2, -0.25}, // pointwise-dominated: removed
	}
	kept, err := FilterUselessPlanes(planes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 3 {
		t.Fatalf("kept %d planes, want 3: %v", len(kept), kept)
	}
	// The max function must be unchanged on a grid of beliefs.
	for p := 0.0; p <= 1.00001; p += 0.01 {
		pi := Vector{p, 1 - p}
		var before, after float64
		before, after = -1e18, -1e18
		for _, v := range planes {
			if x := pi.Dot(v); x > before {
				before = x
			}
		}
		for _, v := range kept {
			if x := pi.Dot(v); x > after {
				after = x
			}
		}
		if !almostEqual(before, after, 1e-9) {
			t.Fatalf("max changed at p=%v: %v -> %v", p, before, after)
		}
	}
}
