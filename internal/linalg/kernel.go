package linalg

import "math"

// SORKernel is the precomputed Gauss-Seidel/SOR sweep kernel shared by the
// fixed-point solvers (the RA-Bound Equation 5 solve, fixed-policy bounds,
// and the MDP value solver). Building one strips the diagonal out of the
// matrix once, so every sweep is a branch-free fused multiply-add walk over
// the off-diagonal CSR entries instead of re-testing `col == row` on every
// entry of every sweep and re-searching for diagonal entries.
//
// The kernel preserves the exact floating-point semantics of the naive
// sweep: off-diagonal entries are visited in the same (ascending-column)
// order, so iterates are bit-for-bit identical to the pre-kernel solver.
type SORKernel struct {
	n      int
	rowPtr []int
	cols   []int
	vals   []float64
	diag   Vector
}

// NewSORKernel builds the sweep kernel for the square matrix p.
// It panics if p is not square; callers validate shapes first.
func NewSORKernel(p *CSR) *SORKernel {
	n := p.Rows()
	if p.Cols() != n {
		panic("linalg: NewSORKernel needs a square matrix")
	}
	k := &SORKernel{
		n:      n,
		rowPtr: make([]int, n+1),
		cols:   make([]int, 0, p.NNZ()),
		vals:   make([]float64, 0, p.NNZ()),
		diag:   NewVector(n),
	}
	for r := 0; r < n; r++ {
		cols, vals := p.RowSlice(r)
		for i, c := range cols {
			if c == r {
				k.diag[r] = vals[i]
				continue
			}
			k.cols = append(k.cols, c)
			k.vals = append(k.vals, vals[i])
		}
		k.rowPtr[r+1] = len(k.cols)
	}
	return k
}

// N returns the kernel's dimension.
func (k *SORKernel) N() int { return k.n }

// Diag returns the matrix diagonal extracted at build time. The slice
// aliases kernel storage and must not be modified.
func (k *SORKernel) Diag() Vector { return k.diag }

// Sweep performs one in-place Gauss-Seidel/SOR sweep of
//
//	v[s] ← (1-omega)·v[s] + omega·(r[s] + beta·Σ_{c≠s} P[s,c]·v[c]) / (1 - beta·P[s,s])
//
// over all rows in order, skipping rows whose denominator 1-beta·P[s,s] is
// (numerically) zero — absorbing states, whose value is pinned to 0 by the
// callers. It returns the sup-norm change of the sweep.
func (k *SORKernel) Sweep(v, r Vector, beta, omega float64) (maxDelta float64) {
	for s := 0; s < k.n; s++ {
		denom := 1 - beta*k.diag[s]
		if denom < 1e-14 {
			// Absorbing with zero reward: value pinned to 0.
			v[s] = 0
			continue
		}
		var acc float64
		for i := k.rowPtr[s]; i < k.rowPtr[s+1]; i++ {
			acc += k.vals[i] * v[k.cols[i]]
		}
		gs := (r[s] + beta*acc) / denom
		next := (1-omega)*v[s] + omega*gs
		if d := math.Abs(next - v[s]); d > maxDelta {
			maxDelta = d
		}
		v[s] = next
	}
	return maxDelta
}
