package linalg

import "math"

// SORKernel is the precomputed Gauss-Seidel/SOR sweep kernel shared by the
// fixed-point solvers (the RA-Bound Equation 5 solve, fixed-policy bounds,
// and the MDP value solver). Building one strips the diagonal out of the
// matrix once, so every sweep is a branch-free fused multiply-add walk over
// the off-diagonal CSR entries instead of re-testing `col == row` on every
// entry of every sweep and re-searching for diagonal entries.
//
// The kernel preserves the exact floating-point semantics of the naive
// sweep: off-diagonal entries are visited in the same (ascending-column)
// order, so iterates are bit-for-bit identical to the pre-kernel solver.
type SORKernel struct {
	n      int
	rowPtr []int
	cols   []int
	vals   []float64
	diag   Vector

	// Per-beta sweep plane, rebuilt lazily when beta changes: the row
	// denominators 1−beta·diag[s] and the pinned-row flags they imply. A
	// fixed-point solve sweeps the same beta hundreds of times, so hoisting
	// the denominator computation and the pin test out of the sweep turns
	// the row prologue into two contiguous array loads. The cached values
	// are computed with exactly the sweep's original expression, so iterates
	// stay bit-for-bit identical.
	denomBeta  float64
	denomValid bool
	denom      Vector
	pinned     []bool
}

// NewSORKernel builds the sweep kernel for the square matrix p.
// It panics if p is not square; callers validate shapes first.
func NewSORKernel(p *CSR) *SORKernel {
	n := p.Rows()
	if p.Cols() != n {
		panic("linalg: NewSORKernel needs a square matrix")
	}
	k := &SORKernel{
		n:      n,
		rowPtr: make([]int, n+1),
		cols:   make([]int, 0, p.NNZ()),
		vals:   make([]float64, 0, p.NNZ()),
		diag:   NewVector(n),
	}
	for r := 0; r < n; r++ {
		cols, vals := p.RowSlice(r)
		for i, c := range cols {
			if c == r {
				k.diag[r] = vals[i]
				continue
			}
			k.cols = append(k.cols, c)
			k.vals = append(k.vals, vals[i])
		}
		k.rowPtr[r+1] = len(k.cols)
	}
	return k
}

// N returns the kernel's dimension.
func (k *SORKernel) N() int { return k.n }

// Diag returns the matrix diagonal extracted at build time. The slice
// aliases kernel storage and must not be modified.
func (k *SORKernel) Diag() Vector { return k.diag }

// prepare (re)builds the per-beta denominator plane. The expressions match
// the pre-cache sweep prologue exactly, so caching cannot change a single
// bit of any iterate.
func (k *SORKernel) prepare(beta float64) {
	if k.denom == nil {
		k.denom = NewVector(k.n)
		k.pinned = make([]bool, k.n)
	}
	for s := 0; s < k.n; s++ {
		d := 1 - beta*k.diag[s]
		k.denom[s] = d
		k.pinned[s] = d < 1e-14
	}
	k.denomBeta = beta
	k.denomValid = true
}

// Sweep performs one in-place Gauss-Seidel/SOR sweep of
//
//	v[s] ← (1-omega)·v[s] + omega·(r[s] + beta·Σ_{c≠s} P[s,c]·v[c]) / (1 - beta·P[s,s])
//
// over all rows in order, skipping rows whose denominator 1-beta·P[s,s] is
// (numerically) zero — absorbing states, whose value is pinned to 0 by the
// callers. It returns the sup-norm change of the sweep.
//
// The denominators and pin flags are cached per beta (a solve sweeps one
// beta repeatedly), and the off-diagonal gather is 4-wide unrolled into a
// single accumulator like the hyperplane-slab dot kernel — same addition
// order, so iterates are bit-for-bit identical to the plain loop. Sweeping
// mutates the cache bookkeeping, so a kernel must not be shared across
// goroutines (its callers never did).
func (k *SORKernel) Sweep(v, r Vector, beta, omega float64) (maxDelta float64) {
	if !k.denomValid || k.denomBeta != beta {
		k.prepare(beta)
	}
	cols, vals := k.cols, k.vals
	for s := 0; s < k.n; s++ {
		if k.pinned[s] {
			// Absorbing with zero reward: value pinned to 0.
			v[s] = 0
			continue
		}
		var acc float64
		i, end := k.rowPtr[s], k.rowPtr[s+1]
		for ; i+4 <= end; i += 4 {
			acc += vals[i] * v[cols[i]]
			acc += vals[i+1] * v[cols[i+1]]
			acc += vals[i+2] * v[cols[i+2]]
			acc += vals[i+3] * v[cols[i+3]]
		}
		for ; i < end; i++ {
			acc += vals[i] * v[cols[i]]
		}
		gs := (r[s] + beta*acc) / k.denom[s]
		next := (1-omega)*v[s] + omega*gs
		if d := math.Abs(next - v[s]); d > maxDelta {
			maxDelta = d
		}
		v[s] = next
	}
	return maxDelta
}
