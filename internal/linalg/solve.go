package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solver fails to reach the
// requested tolerance within its iteration budget. For the bound computations
// in this repository this is a *signal*, not merely a failure: the paper
// proves that the BI-POMDP and blind-policy bounds diverge on undiscounted
// recovery models, and callers detect that divergence by matching this error.
var ErrNoConvergence = errors.New("linalg: iterative solver did not converge")

// ErrSingular is returned by the dense LU solver when the matrix is
// (numerically) singular.
var ErrSingular = errors.New("linalg: singular matrix")

// FixedPointOptions configure the iterative fixed-point solvers.
type FixedPointOptions struct {
	// Tol is the sup-norm convergence tolerance between successive iterates.
	// Zero means the default of 1e-10.
	Tol float64
	// MaxIter bounds the number of sweeps. Zero means the default of 100000.
	MaxIter int
	// Omega is the successive-over-relaxation factor in (0, 2). Zero means
	// 1.0 (plain Gauss-Seidel). The paper's implementation uses Gauss-Seidel
	// with successive over-relaxation (§3.1).
	Omega float64
	// DivergeAbove aborts with ErrNoConvergence as soon as the iterate's
	// sup-norm exceeds this value, catching geometric blow-up early.
	// Zero means the default of 1e12.
	DivergeAbove float64
}

func (o FixedPointOptions) withDefaults() FixedPointOptions {
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100000
	}
	if o.Omega == 0 {
		o.Omega = 1.0
	}
	if o.DivergeAbove == 0 {
		o.DivergeAbove = 1e12
	}
	return o
}

// FixedPointResult reports how a fixed-point solve went.
type FixedPointResult struct {
	// Iterations is the number of sweeps performed.
	Iterations int
	// Residual is the final sup-norm change between successive iterates.
	Residual float64
}

// SolveFixedPoint solves v = r + beta·P·v by Gauss-Seidel sweeps with
// successive over-relaxation, starting from v = 0.
//
// P must be square (n×n) and substochastic row-wise; r has length n. The
// equation is the expected-total-reward equation of an absorbing Markov
// chain (Equation 5 of the paper once the uniform-random-action chain has
// been formed). A unique finite solution exists iff every state with a
// non-zero reward (directly or transitively) reaches an absorbing set with
// probability 1; when that fails the iteration grows without bound and the
// solver returns ErrNoConvergence.
//
// Rows whose diagonal is 1 with beta == 1 (absorbing states) keep
// v[s] = r[s]/(1-beta·P[s,s]) undefined; for those rows the solver fixes
// v[s] to r[s] == 0 and returns an error if r[s] != 0, since an absorbing
// state with non-zero reward accumulates infinite reward.
func SolveFixedPoint(p *CSR, beta float64, r Vector, opts FixedPointOptions) (Vector, FixedPointResult, error) {
	o := opts.withDefaults()
	n := p.Rows()
	if p.Cols() != n {
		return nil, FixedPointResult{}, fmt.Errorf("linalg: SolveFixedPoint needs square matrix, got %dx%d", p.Rows(), p.Cols())
	}
	if len(r) != n {
		return nil, FixedPointResult{}, fmt.Errorf("linalg: SolveFixedPoint reward length %d != %d states: %w", len(r), n, ErrDimensionMismatch)
	}
	if beta <= 0 || beta > 1 {
		return nil, FixedPointResult{}, fmt.Errorf("linalg: discount beta=%v outside (0,1]", beta)
	}
	if o.Omega <= 0 || o.Omega >= 2 {
		return nil, FixedPointResult{}, fmt.Errorf("linalg: SOR omega=%v outside (0,2)", o.Omega)
	}

	kernel := NewSORKernel(p)
	diag := kernel.Diag()
	for s := 0; s < n; s++ {
		if 1-beta*diag[s] < 1e-14 && math.Abs(r[s]) > 1e-14 {
			return nil, FixedPointResult{}, fmt.Errorf(
				"linalg: state %d is absorbing with non-zero reward %v: infinite accumulated reward: %w",
				s, r[s], ErrNoConvergence)
		}
	}

	v := NewVector(n)
	res := FixedPointResult{}
	for it := 0; it < o.MaxIter; it++ {
		maxDelta := kernel.Sweep(v, r, beta, o.Omega)
		res.Iterations = it + 1
		res.Residual = maxDelta
		if maxDelta < o.Tol {
			if !v.IsFinite() {
				return nil, res, fmt.Errorf("linalg: non-finite solution: %w", ErrNoConvergence)
			}
			return v, res, nil
		}
		if v.InfNorm() > o.DivergeAbove {
			return nil, res, fmt.Errorf("linalg: iterate norm %g exceeded divergence threshold %g after %d sweeps: %w",
				v.InfNorm(), o.DivergeAbove, it+1, ErrNoConvergence)
		}
	}
	return nil, res, fmt.Errorf("linalg: residual %g > tol %g after %d sweeps: %w",
		res.Residual, o.Tol, o.MaxIter, ErrNoConvergence)
}

// SolveLU solves the dense system A·x = b by LU decomposition with partial
// pivoting. A is row-major and is not modified. It is the O(n³) reference
// solver used to cross-check the iterative solvers in tests and for small
// models.
func SolveLU(a [][]float64, b Vector) (Vector, error) {
	n := len(a)
	if n == 0 {
		return Vector{}, nil
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: SolveLU b length %d != %d: %w", len(b), n, ErrDimensionMismatch)
	}
	// Working copy.
	lu := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("linalg: SolveLU row %d length %d != %d: %w", i, len(a[i]), n, ErrDimensionMismatch)
		}
		lu[i] = append([]float64(nil), a[i]...)
	}
	x := b.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}

	for k := 0; k < n; k++ {
		// Partial pivot.
		pivot, pv := k, math.Abs(lu[k][k])
		for i := k + 1; i < n; i++ {
			if av := math.Abs(lu[i][k]); av > pv {
				pivot, pv = i, av
			}
		}
		if pv < 1e-14 {
			return nil, fmt.Errorf("linalg: pivot %g at column %d: %w", pv, k, ErrSingular)
		}
		if pivot != k {
			lu[k], lu[pivot] = lu[pivot], lu[k]
			x[k], x[pivot] = x[pivot], x[k]
			perm[k], perm[pivot] = perm[pivot], perm[k]
		}
		inv := 1 / lu[k][k]
		for i := k + 1; i < n; i++ {
			f := lu[i][k] * inv
			if f == 0 {
				continue
			}
			lu[i][k] = f
			for j := k + 1; j < n; j++ {
				lu[i][j] -= f * lu[k][j]
			}
			x[i] -= f * x[k]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= lu[i][j] * x[j]
		}
		x[i] = s / lu[i][i]
	}
	return x, nil
}

// SolveAbsorbingLU solves v = r + beta·P·v exactly via dense LU, pinning the
// value of absorbing states (diagonal 1 under beta == 1) to zero by replacing
// their equation with v[s] = 0. It mirrors SolveFixedPoint's handling so the
// two can be compared directly in tests.
func SolveAbsorbingLU(p *CSR, beta float64, r Vector) (Vector, error) {
	n := p.Rows()
	if p.Cols() != n || len(r) != n {
		return nil, fmt.Errorf("linalg: SolveAbsorbingLU shapes P %dx%d, r %d: %w",
			p.Rows(), p.Cols(), len(r), ErrDimensionMismatch)
	}
	a := make([][]float64, n)
	b := NewVector(n)
	dense := p.Dense()
	for s := 0; s < n; s++ {
		a[s] = make([]float64, n)
		if 1-beta*dense[s][s] < 1e-14 {
			if math.Abs(r[s]) > 1e-14 {
				return nil, fmt.Errorf("linalg: absorbing state %d has reward %v: %w", s, r[s], ErrNoConvergence)
			}
			a[s][s] = 1
			b[s] = 0
			continue
		}
		for c := 0; c < n; c++ {
			a[s][c] = -beta * dense[s][c]
		}
		a[s][s] += 1
		b[s] = r[s]
	}
	return SolveLU(a, b)
}
