package linalg

import (
	"errors"
	"math/rand/v2"
	"testing"
)

// chain builds the transition matrix of a 3-state chain:
// state 0 -> {0 w.p. 1-p, 1 w.p. p}, state 1 -> 2, state 2 absorbing.
func chain(t *testing.T, p float64) *CSR {
	t.Helper()
	m, err := NewCSR(3, 3, []Entry{
		{0, 0, 1 - p}, {0, 1, p},
		{1, 2, 1},
		{2, 2, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSolveFixedPointAbsorbingChain(t *testing.T) {
	// Expected total reward with r = [-1, -1, 0]:
	// v2 = 0; v1 = -1; v0 = -1 + (1-p)v0 + p*v1  =>  v0 = (-1 - p)/p.
	p := 0.5
	m := chain(t, p)
	v, res, err := SolveFixedPoint(m, 1, Vector{-1, -1, 0}, FixedPointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want0 := (-1 - p) / p
	if !almostEqual(v[0], want0, 1e-8) || !almostEqual(v[1], -1, 1e-8) || v[2] != 0 {
		t.Errorf("v = %v, want [%v -1 0] (res %+v)", v, want0, res)
	}
}

func TestSolveFixedPointMatchesLU(t *testing.T) {
	for _, p := range []float64{0.1, 0.3, 0.9} {
		m := chain(t, p)
		r := Vector{-2, -0.5, 0}
		vi, _, err := SolveFixedPoint(m, 1, r, FixedPointOptions{})
		if err != nil {
			t.Fatal(err)
		}
		vd, err := SolveAbsorbingLU(m, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		if d := vi.InfNormDiff(vd); d > 1e-7 {
			t.Errorf("p=%v: Gauss-Seidel vs LU differ by %g: %v vs %v", p, d, vi, vd)
		}
	}
}

func TestSolveFixedPointSOROmegaSweep(t *testing.T) {
	m := chain(t, 0.2)
	r := Vector{-1, -1, 0}
	base, _, err := SolveFixedPoint(m, 1, r, FixedPointOptions{Omega: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, omega := range []float64{0.5, 1.2, 1.5, 1.9} {
		v, _, err := SolveFixedPoint(m, 1, r, FixedPointOptions{Omega: omega})
		if err != nil {
			t.Fatalf("omega=%v: %v", omega, err)
		}
		if d := v.InfNormDiff(base); d > 1e-7 {
			t.Errorf("omega=%v solution differs by %g", omega, d)
		}
	}
}

func TestSolveFixedPointRejectsBadParams(t *testing.T) {
	m := chain(t, 0.5)
	r := Vector{-1, -1, 0}
	if _, _, err := SolveFixedPoint(m, 0, r, FixedPointOptions{}); err == nil {
		t.Error("beta=0 accepted")
	}
	if _, _, err := SolveFixedPoint(m, 1.5, r, FixedPointOptions{}); err == nil {
		t.Error("beta=1.5 accepted")
	}
	if _, _, err := SolveFixedPoint(m, 1, r, FixedPointOptions{Omega: 2.5}); err == nil {
		t.Error("omega=2.5 accepted")
	}
	if _, _, err := SolveFixedPoint(m, 1, Vector{-1}, FixedPointOptions{}); err == nil {
		t.Error("short reward vector accepted")
	}
	rect, err := NewCSR(2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SolveFixedPoint(rect, 1, Vector{0, 0}, FixedPointOptions{}); err == nil {
		t.Error("rectangular matrix accepted")
	}
}

func TestSolveFixedPointAbsorbingWithRewardDiverges(t *testing.T) {
	// Absorbing state with non-zero reward accumulates infinite reward.
	m, err := NewCSR(1, 1, []Entry{{0, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = SolveFixedPoint(m, 1, Vector{-1}, FixedPointOptions{})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestSolveFixedPointDetectsRecurrentRewardDivergence(t *testing.T) {
	// Two states cycling with reward -1 each step: no absorbing set, value -inf.
	m, err := NewCSR(2, 2, []Entry{{0, 1, 1}, {1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = SolveFixedPoint(m, 1, Vector{-1, -1}, FixedPointOptions{MaxIter: 5000})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestSolveFixedPointDiscountedRecurrentConverges(t *testing.T) {
	// Same cycle but discounted: v = -1/(1-beta).
	m, err := NewCSR(2, 2, []Entry{{0, 1, 1}, {1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	beta := 0.9
	v, _, err := SolveFixedPoint(m, beta, Vector{-1, -1}, FixedPointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := -1 / (1 - beta)
	if !almostEqual(v[0], want, 1e-6) || !almostEqual(v[1], want, 1e-6) {
		t.Errorf("v = %v, want [%v %v]", v, want, want)
	}
}

func TestSolveLUKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1},
		{1, 3},
	}
	x, err := SolveLU(a, Vector{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 => x=1, y=3.
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 3, 1e-10) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveLUSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, err := SolveLU(a, Vector{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLUShapeErrors(t *testing.T) {
	if _, err := SolveLU([][]float64{{1, 2}}, Vector{1}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := SolveLU([][]float64{{1}}, Vector{1, 2}); err == nil {
		t.Error("b length mismatch accepted")
	}
	if x, err := SolveLU(nil, Vector{}); err != nil || len(x) != 0 {
		t.Errorf("empty system: x=%v err=%v", x, err)
	}
}

// Property: on random absorbing chains, Gauss-Seidel+SOR agrees with dense LU.
func TestSolveFixedPointMatchesLURandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 24))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.IntN(10)
		b := NewBuilder(n, n)
		r := NewVector(n)
		// Last state absorbing with zero reward; every other state sends at
		// least some mass "toward" higher-numbered states so absorption is
		// guaranteed.
		for s := 0; s < n-1; s++ {
			pUp := 0.2 + 0.8*rng.Float64()
			up := s + 1 + rng.IntN(n-s-1)
			b.Add(s, up, pUp)
			if pUp < 1 {
				b.Add(s, rng.IntN(s+1), 1-pUp)
			}
			r[s] = -rng.Float64()
		}
		b.Add(n-1, n-1, 1)
		m, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		vi, _, err := SolveFixedPoint(m, 1, r, FixedPointOptions{Omega: 1.1})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		vd, err := SolveAbsorbingLU(m, 1, r)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := vi.InfNormDiff(vd); d > 1e-6 {
			t.Errorf("trial %d (n=%d): iterative vs LU differ by %g", trial, n, d)
		}
	}
}
