package tracestats

import (
	"fmt"
	"strings"
	"time"
)

func ms(nanos int64) string {
	return fmt.Sprintf("%.3fms", float64(nanos)/float64(time.Millisecond))
}

func pct(part, whole int64) string {
	if whole <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

// Render formats one episode's stitched timeline for reading: every span on
// its own line with the offset from first activity, the emitting node, and
// the span's story (tier, status, attempt numbers, redirect targets), then
// the wall-clock attribution.
func (tl *Timeline) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "episode %s", tl.TraceID)
	if tl.Episode != 0 {
		fmt.Fprintf(&sb, " (id %d)", tl.Episode)
	}
	fmt.Fprintf(&sb, " — nodes %s, %d hops, %d redirects, %d failovers, wall %s\n",
		strings.Join(tl.Nodes, "→"), tl.Hops, tl.Redirects, tl.Failovers, ms(tl.WallNanos))

	t0 := tl.Spans[0].Start
	for i := range tl.Spans {
		sp := &tl.Spans[i]
		var detail []string
		if sp.Op != "" {
			detail = append(detail, sp.Op)
		}
		if sp.Tier != "" {
			detail = append(detail, "tier="+sp.Tier)
		}
		if sp.Status != 0 {
			detail = append(detail, fmt.Sprintf("status=%d", sp.Status))
		}
		if sp.Attempt != 0 {
			detail = append(detail, fmt.Sprintf("attempt=%d", sp.Attempt))
		}
		if sp.Target != "" {
			detail = append(detail, "→"+sp.Target)
		}
		if sp.Source != "" {
			detail = append(detail, "from="+sp.Source)
		}
		if sp.Err != "" {
			detail = append(detail, "err="+sp.Err)
		}
		fmt.Fprintf(&sb, "  +%-12s %-8s %-18s %-10s %s\n",
			ms(sp.Start-t0), sp.Node, sp.Kind, ms(sp.Duration), strings.Join(detail, " "))
		for _, ev := range sp.Events {
			fmt.Fprintf(&sb, "  +%-12s %-8s   · %s %s\n", ms(ev.At-t0), sp.Node, ev.Name, ev.Detail)
		}
	}

	b, w := tl.Buckets, tl.WallNanos
	fmt.Fprintf(&sb, "  attribution: decide %s (%s), observe %s, start %s, other %s, checkpoint %s (%s), adopt %s, redirect %s, backoff %s, network %s (%s), client %s; background %s\n",
		ms(b.DecideNanos), pct(b.DecideNanos, w), ms(b.ObserveNanos), ms(b.StartNanos),
		ms(b.OtherServerNanos), ms(b.CheckpointNanos), pct(b.CheckpointNanos, w),
		ms(b.AdoptNanos), ms(b.RedirectNanos), ms(b.RetryBackoffNanos),
		ms(b.NetworkNanos), pct(b.NetworkNanos, w), ms(b.ClientNanos), ms(b.BackgroundNanos))
	fmt.Fprintf(&sb, "  accounted: %s of %s wall (%s)\n", ms(b.AccountedNanos()), ms(w), pct(b.AccountedNanos(), w))
	if len(tl.Orphans) == 0 {
		sb.WriteString("  orphans: none\n")
	} else {
		for _, o := range tl.Orphans {
			fmt.Fprintf(&sb, "  ORPHAN: %s\n", o)
		}
	}
	return sb.String()
}

// Render formats the fleet-level aggregate.
func (s Summary) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d episodes, %d spans, %d cross-node, %d orphaned edges\n",
		s.Episodes, s.Spans, s.CrossNode, s.Orphans)
	fmt.Fprintf(&sb, "wall: p50 %s  p95 %s  p99 %s  max %s\n",
		ms(s.WallP50Nanos), ms(s.WallP95Nanos), ms(s.WallP99Nanos), ms(s.WallMaxNanos))
	b, w := s.Totals, s.TotalWallNanos
	rows := []struct {
		name string
		v    int64
	}{
		{"decide", b.DecideNanos},
		{"observe", b.ObserveNanos},
		{"start", b.StartNanos},
		{"other-server", b.OtherServerNanos},
		{"checkpoint", b.CheckpointNanos},
		{"adopt", b.AdoptNanos},
		{"redirect", b.RedirectNanos},
		{"retry-backoff", b.RetryBackoffNanos},
		{"network", b.NetworkNanos},
		{"client", b.ClientNanos},
	}
	fmt.Fprintf(&sb, "attribution of %s total wall:\n", ms(w))
	for _, row := range rows {
		fmt.Fprintf(&sb, "  %-14s %12s  %s\n", row.name, ms(row.v), pct(row.v, w))
	}
	fmt.Fprintf(&sb, "  %-14s %12s  (outside client calls; excluded from wall)\n", "background", ms(b.BackgroundNanos))
	return sb.String()
}
