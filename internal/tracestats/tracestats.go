// Package tracestats stitches bpomdp.span/v1 streams from every node of a
// recovery fleet (and its clients) back into one causal timeline per
// episode, then attributes each episode's wall-clock to where it actually
// went: controller decisions, checkpoint fsyncs, redirect hops, retry
// backoff, and the network in between.
//
// The stitching key is the episode's clientKey — every span of one recovery
// carries it as TraceID, whichever process emitted it. Files from any number
// of nodes can be concatenated in any order; spans are re-sorted by their
// wall-clock anchors (the in-process chaos fleet shares one clock; real
// deployments need NTP-close nodes).
package tracestats

import (
	"fmt"
	"os"
	"sort"

	"bpomdp/internal/obs"
)

// Load reads and concatenates span files from any number of nodes.
func Load(paths ...string) ([]obs.SpanRecord, error) {
	var all []obs.SpanRecord
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		spans, err := obs.DecodeSpans(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		all = append(all, spans...)
	}
	return all, nil
}

// Buckets attributes an episode's wall-clock. The client/network/server
// split is exact by construction: ClientNanos and NetworkNanos are residuals
// of enclosing spans, so for a fully-stitched episode
//
//	Wall = Client + RetryBackoff + Network
//	     + Decide + Observe + Start + OtherServer
//	     + Checkpoint + Adopt + Redirect
//
// holds to the nanosecond. A shortfall means spans were lost (severed
// streams, clock skew); an excess means double-counted overlap. Background
// is server work outside any client call — eager adoption after a kill,
// tombstone replication, handler time on severed requests — and is excluded
// from the identity.
type Buckets struct {
	// Server handler self-time (inner checkpoint/adopt spans subtracted),
	// split by handler.
	DecideNanos      int64 `json:"decideNanos"`
	ObserveNanos     int64 `json:"observeNanos"`
	StartNanos       int64 `json:"startNanos"`
	OtherServerNanos int64 `json:"otherServerNanos"`

	// CheckpointNanos is durable-store write time (fsync); AdoptNanos is
	// episode/tombstone adoption minus its nested checkpoints;
	// RedirectNanos is time spent answering 307 hops.
	CheckpointNanos int64 `json:"checkpointNanos"`
	AdoptNanos      int64 `json:"adoptNanos"`
	RedirectNanos   int64 `json:"redirectNanos"`

	// RetryBackoffNanos is client sleep between attempts; NetworkNanos is
	// attempt time not accounted to any server handler; ClientNanos is
	// call time outside every attempt (marshaling, local bookkeeping).
	RetryBackoffNanos int64 `json:"retryBackoffNanos"`
	NetworkNanos      int64 `json:"networkNanos"`
	ClientNanos       int64 `json:"clientNanos"`

	BackgroundNanos int64 `json:"backgroundNanos"`
}

// AccountedNanos sums every bucket inside the wall-clock identity
// (Background excluded).
func (b Buckets) AccountedNanos() int64 {
	return b.DecideNanos + b.ObserveNanos + b.StartNanos + b.OtherServerNanos +
		b.CheckpointNanos + b.AdoptNanos + b.RedirectNanos +
		b.RetryBackoffNanos + b.NetworkNanos + b.ClientNanos
}

// Timeline is one episode's stitched cross-node story.
type Timeline struct {
	TraceID string `json:"traceId"`
	// Episode is the server-assigned id (0 if only client spans were seen).
	Episode uint64 `json:"episode,omitempty"`
	// Spans is every span of the trace, time-sorted.
	Spans []obs.SpanRecord `json:"spans"`
	// Nodes lists the server nodes that touched the episode, in first-touch
	// order.
	Nodes []string `json:"nodes"`
	// Hops counts node changes along the time-sorted server spans; a
	// single-owner episode has 0.
	Hops      int `json:"hops"`
	Redirects int `json:"redirects"`
	Failovers int `json:"failovers"`

	// WallNanos is the episode's client-observed wall-clock: the sum of its
	// client.call spans, or the stitched extent when no client spans exist.
	WallNanos int64   `json:"wallNanos"`
	Buckets   Buckets `json:"buckets"`

	// Orphans lists causal edges that point at missing spans: a redirect
	// whose target node never shows the episode, an adoption whose source
	// node has no prior span, a successful replication with no matching
	// accept. Empty means the timeline is causally connected.
	Orphans []string `json:"orphans,omitempty"`
}

// contains reports whether inner lies entirely within outer.
func contains(outer, inner *obs.SpanRecord) bool {
	return outer.Start <= inner.Start && inner.End() <= outer.End()
}

// handlerKind reports a server span that times one HTTP handler.
func handlerKind(kind string) bool {
	switch kind {
	case obs.SpanServerStart, obs.SpanServerStatus, obs.SpanServerDecide,
		obs.SpanServerObserve, obs.SpanServerBelief, obs.SpanServerDelete,
		obs.SpanServerAccept:
		return true
	}
	return false
}

// Stitch groups spans by trace and builds one Timeline per episode, ordered
// by first activity.
func Stitch(spans []obs.SpanRecord) []*Timeline {
	byTrace := make(map[string][]obs.SpanRecord)
	var order []string
	for _, sp := range spans {
		if _, seen := byTrace[sp.TraceID]; !seen {
			order = append(order, sp.TraceID)
		}
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	out := make([]*Timeline, 0, len(order))
	for _, id := range order {
		out = append(out, buildTimeline(id, byTrace[id]))
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Spans[0].Start < out[j].Spans[0].Start
	})
	return out
}

func buildTimeline(id string, spans []obs.SpanRecord) *Timeline {
	// Sort by start; ties put the longer span first so parents precede
	// children.
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Duration > spans[j].Duration
	})
	tl := &Timeline{TraceID: id, Spans: spans}

	var calls, attempts, backoffs []*obs.SpanRecord
	var handlers, inners, replicates []*obs.SpanRecord
	lastNode := ""
	for i := range spans {
		sp := &spans[i]
		if sp.Episode > tl.Episode {
			tl.Episode = sp.Episode
		}
		switch sp.Kind {
		case obs.SpanClientCall:
			calls = append(calls, sp)
		case obs.SpanClientAttempt:
			attempts = append(attempts, sp)
		case obs.SpanClientBackoff:
			backoffs = append(backoffs, sp)
		case obs.SpanClientFailover:
			tl.Failovers++
		case obs.SpanServerCheckpoint, obs.SpanServerAdopt:
			inners = append(inners, sp)
		case obs.SpanServerReplicate:
			replicates = append(replicates, sp)
		default:
			handlers = append(handlers, sp)
			if sp.Status == 307 {
				tl.Redirects++
			}
		}
		if sp.Kind != obs.SpanClientCall && sp.Kind != obs.SpanClientAttempt &&
			sp.Kind != obs.SpanClientBackoff && sp.Kind != obs.SpanClientFailover {
			if !nodeSeen(tl.Nodes, sp.Node) {
				tl.Nodes = append(tl.Nodes, sp.Node)
			}
			if lastNode != "" && sp.Node != lastNode {
				tl.Hops++
			}
			lastNode = sp.Node
		}
	}

	tl.attribute(calls, attempts, backoffs, handlers, inners, replicates)
	tl.findOrphans(handlers, inners, replicates)
	return tl
}

func nodeSeen(nodes []string, n string) bool {
	for _, have := range nodes {
		if have == n {
			return true
		}
	}
	return false
}

// attribute fills WallNanos and Buckets; see the Buckets doc for the
// wall-clock identity the residual computation guarantees.
func (tl *Timeline) attribute(calls, attempts, backoffs, handlers, inners, replicates []*obs.SpanRecord) {
	b := &tl.Buckets

	var sumCalls, sumAttempts int64
	for _, sp := range calls {
		sumCalls += sp.Duration
	}
	for _, sp := range attempts {
		sumAttempts += sp.Duration
	}
	for _, sp := range backoffs {
		b.RetryBackoffNanos += sp.Duration
	}

	// A handler span is inside the identity only when some client attempt
	// interval contains it; handler time on severed requests (the client
	// gave up, or never called — pure server-side traffic) is Background.
	// With no client spans at all this is a server-only view: count every
	// handler and fall back to the stitched extent for the wall.
	serverOnly := len(calls) == 0 && len(attempts) == 0
	contained := make(map[*obs.SpanRecord]bool, len(handlers))
	var sumContained int64
	for _, h := range handlers {
		ok := serverOnly
		for _, at := range attempts {
			if contains(at, h) {
				ok = true
				break
			}
		}
		contained[h] = ok
		if ok {
			sumContained += h.Duration
		}
	}

	// Inner spans (checkpoint fsyncs, adoptions) nest: an adoption persists
	// via the checkpointer, so its span contains a checkpoint span. Self-time
	// everywhere: each span's duration minus its direct children, so nothing
	// is double-counted.
	parentInner := make(map[*obs.SpanRecord]*obs.SpanRecord, len(inners))
	childSum := make(map[*obs.SpanRecord]int64, len(inners))
	for _, in := range inners {
		var parent *obs.SpanRecord
		for _, cand := range inners {
			if cand == in || cand.Node != in.Node || !contains(cand, in) {
				continue
			}
			if parent == nil || cand.Duration < parent.Duration {
				parent = cand
			}
		}
		if parent != nil {
			parentInner[in] = parent
			childSum[parent] += in.Duration
		}
	}
	// ownerHandler maps each top-level inner span to the handler whose time
	// it should be carved out of.
	ownerHandler := make(map[*obs.SpanRecord]*obs.SpanRecord, len(inners))
	handlerInnerSum := make(map[*obs.SpanRecord]int64, len(handlers))
	for _, in := range inners {
		if parentInner[in] != nil {
			continue
		}
		for _, h := range handlers {
			if h.Node == in.Node && contains(h, in) {
				ownerHandler[in] = h
				handlerInnerSum[h] += in.Duration
				break
			}
		}
	}
	for _, in := range inners {
		// The handler context of an inner span is its own, or its parent's.
		top := in
		if p := parentInner[in]; p != nil {
			top = p
		}
		owner := ownerHandler[top]
		self := in.Duration - childSum[in]
		switch {
		case owner != nil && contained[owner]:
			if in.Kind == obs.SpanServerCheckpoint {
				b.CheckpointNanos += self
			} else {
				b.AdoptNanos += self
			}
		case owner != nil:
			// Covered by the handler's Background accounting below.
		default:
			// No handler at all: eager adoption during member-down
			// processing, and its nested persists.
			b.BackgroundNanos += self
		}
	}

	for _, h := range handlers {
		if !contained[h] {
			b.BackgroundNanos += h.Duration
			continue
		}
		self := h.Duration - handlerInnerSum[h]
		switch {
		case h.Status == 307:
			b.RedirectNanos += self
		case h.Kind == obs.SpanServerDecide:
			b.DecideNanos += self
		case h.Kind == obs.SpanServerObserve:
			b.ObserveNanos += self
		case h.Kind == obs.SpanServerStart:
			b.StartNanos += self
		default:
			b.OtherServerNanos += self
		}
	}
	for _, r := range replicates {
		b.BackgroundNanos += r.Duration
	}

	if serverOnly {
		first, last := tl.Spans[0].Start, int64(0)
		for i := range tl.Spans {
			if end := tl.Spans[i].End(); end > last {
				last = end
			}
		}
		tl.WallNanos = last - first
		return
	}
	tl.WallNanos = sumCalls
	b.NetworkNanos = sumAttempts - sumContained
	b.ClientNanos = sumCalls - sumAttempts - b.RetryBackoffNanos
}

// findOrphans checks every cross-node causal edge for its far end.
func (tl *Timeline) findOrphans(handlers, inners, replicates []*obs.SpanRecord) {
	spanOn := func(node string, test func(*obs.SpanRecord) bool) bool {
		for i := range tl.Spans {
			sp := &tl.Spans[i]
			if sp.Node == node && test(sp) {
				return true
			}
		}
		return false
	}
	for _, h := range handlers {
		if h.Status != 307 || h.Target == "" {
			continue
		}
		// A redirect must be followed by the episode showing up on the
		// member it pointed at.
		if !spanOn(h.Target, func(sp *obs.SpanRecord) bool { return sp.Start >= h.Start }) {
			tl.Orphans = append(tl.Orphans,
				fmt.Sprintf("redirect on %s to %s has no later span on %s", h.Node, h.Target, h.Target))
		}
	}
	for _, in := range inners {
		if in.Kind != obs.SpanServerAdopt || in.Source == "" {
			continue
		}
		// An adoption pulls state the source must have written earlier.
		if !spanOn(in.Source, func(sp *obs.SpanRecord) bool { return sp.Start <= in.End() }) {
			tl.Orphans = append(tl.Orphans,
				fmt.Sprintf("adoption on %s from %s has no earlier span on %s", in.Node, in.Source, in.Source))
		}
	}
	for _, r := range replicates {
		if r.Err != "" || r.Target == "" {
			continue
		}
		// A successful replication must have landed as an accept on the
		// successor.
		if !spanOn(r.Target, func(sp *obs.SpanRecord) bool { return sp.Kind == obs.SpanServerAccept }) {
			tl.Orphans = append(tl.Orphans,
				fmt.Sprintf("replication on %s to %s has no accept span on %s", r.Node, r.Target, r.Target))
		}
	}
}

// Summary aggregates a batch of timelines.
type Summary struct {
	Episodes int `json:"episodes"`
	Spans    int `json:"spans"`
	// Orphans counts broken causal edges across every episode.
	Orphans int `json:"orphans"`
	// CrossNode counts episodes whose spans touch more than one server node.
	CrossNode int `json:"crossNode"`

	// Wall-clock tail across episodes, in nanoseconds.
	WallP50Nanos int64 `json:"wallP50Nanos"`
	WallP95Nanos int64 `json:"wallP95Nanos"`
	WallP99Nanos int64 `json:"wallP99Nanos"`
	WallMaxNanos int64 `json:"wallMaxNanos"`

	// TotalWallNanos and Totals sum the per-episode walls and buckets.
	TotalWallNanos int64   `json:"totalWallNanos"`
	Totals         Buckets `json:"totals"`
}

// Summarize aggregates timelines into fleet-level statistics.
func Summarize(tls []*Timeline) Summary {
	var s Summary
	s.Episodes = len(tls)
	walls := make([]int64, 0, len(tls))
	for _, tl := range tls {
		s.Spans += len(tl.Spans)
		s.Orphans += len(tl.Orphans)
		if len(tl.Nodes) > 1 {
			s.CrossNode++
		}
		walls = append(walls, tl.WallNanos)
		s.TotalWallNanos += tl.WallNanos
		b, t := tl.Buckets, &s.Totals
		t.DecideNanos += b.DecideNanos
		t.ObserveNanos += b.ObserveNanos
		t.StartNanos += b.StartNanos
		t.OtherServerNanos += b.OtherServerNanos
		t.CheckpointNanos += b.CheckpointNanos
		t.AdoptNanos += b.AdoptNanos
		t.RedirectNanos += b.RedirectNanos
		t.RetryBackoffNanos += b.RetryBackoffNanos
		t.NetworkNanos += b.NetworkNanos
		t.ClientNanos += b.ClientNanos
		t.BackgroundNanos += b.BackgroundNanos
	}
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	s.WallP50Nanos = percentile(walls, 0.50)
	s.WallP95Nanos = percentile(walls, 0.95)
	s.WallP99Nanos = percentile(walls, 0.99)
	if n := len(walls); n > 0 {
		s.WallMaxNanos = walls[n-1]
	}
	return s
}

// percentile reads the nearest-rank percentile from an ascending slice.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
