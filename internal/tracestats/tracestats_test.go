package tracestats

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bpomdp/internal/obs"
)

const msN = int64(time.Millisecond)

// span builds a test record; start/dur in milliseconds for readability.
func span(trace, node, kind string, startMs, durMs int64) obs.SpanRecord {
	return obs.SpanRecord{
		Schema: obs.SpanSchema, TraceID: trace, Node: node, Kind: kind,
		Start: startMs * msN, Duration: durMs * msN,
	}
}

// TestStitchSingleNodeAttribution checks the residual identity on a simple
// one-node story: one call, one attempt, a decide handler containing a
// checkpoint span.
func TestStitchSingleNodeAttribution(t *testing.T) {
	call := span("ck", "client", obs.SpanClientCall, 0, 100)
	attempt := span("ck", "client", obs.SpanClientAttempt, 5, 90)
	decide := span("ck", "n1", obs.SpanServerDecide, 10, 60)
	decide.Status = 200
	decide.Tier = "fsc"
	decide.Episode = 7
	checkpoint := span("ck", "n1", obs.SpanServerCheckpoint, 20, 30)
	checkpoint.Op = obs.SpanOpSave

	tls := Stitch([]obs.SpanRecord{checkpoint, call, decide, attempt})
	if len(tls) != 1 {
		t.Fatalf("%d timelines, want 1", len(tls))
	}
	tl := tls[0]
	if tl.Episode != 7 {
		t.Errorf("episode %d, want 7", tl.Episode)
	}
	if tl.WallNanos != 100*msN {
		t.Errorf("wall %d, want %d", tl.WallNanos, 100*msN)
	}
	b := tl.Buckets
	if b.DecideNanos != 30*msN { // 60 handler - 30 checkpoint
		t.Errorf("decide %d, want %d", b.DecideNanos, 30*msN)
	}
	if b.CheckpointNanos != 30*msN {
		t.Errorf("checkpoint %d, want %d", b.CheckpointNanos, 30*msN)
	}
	if b.NetworkNanos != 30*msN { // 90 attempt - 60 handler
		t.Errorf("network %d, want %d", b.NetworkNanos, 30*msN)
	}
	if b.ClientNanos != 10*msN { // 100 call - 90 attempt
		t.Errorf("client %d, want %d", b.ClientNanos, 10*msN)
	}
	if got := b.AccountedNanos(); got != tl.WallNanos {
		t.Errorf("accounted %d != wall %d", got, tl.WallNanos)
	}
	if len(tl.Orphans) != 0 {
		t.Errorf("orphans: %v", tl.Orphans)
	}
	if len(tl.Nodes) != 1 || tl.Nodes[0] != "n1" || tl.Hops != 0 {
		t.Errorf("nodes %v hops %d", tl.Nodes, tl.Hops)
	}
}

// TestStitchRedirectAndRetry covers a cross-node episode: a 307 hop inside
// the first attempt, a backoff, then the real owner serving the request —
// plus nested adopt>checkpoint subtraction.
func TestStitchRedirectAndRetry(t *testing.T) {
	call := span("ck", "client", obs.SpanClientCall, 0, 200)
	a0 := span("ck", "client", obs.SpanClientAttempt, 0, 60)
	a0.Attempt = 0
	redirect := span("ck", "n1", obs.SpanServerStart, 10, 20)
	redirect.Status = 307
	redirect.Target = "n2"
	serve := span("ck", "n2", obs.SpanServerStart, 35, 20)
	serve.Status = 200
	backoff := span("ck", "client", obs.SpanClientBackoff, 60, 40)
	backoff.Attempt = 1
	a1 := span("ck", "client", obs.SpanClientAttempt, 100, 100)
	a1.Attempt = 1
	decide := span("ck", "n2", obs.SpanServerDecide, 110, 80)
	decide.Status = 200
	adopt := span("ck", "n2", obs.SpanServerAdopt, 120, 40)
	adopt.Op = obs.SpanOpEpisode
	adopt.Source = "n1"
	ckpt := span("ck", "n2", obs.SpanServerCheckpoint, 130, 10)
	ckpt.Op = obs.SpanOpSave

	tls := Stitch([]obs.SpanRecord{call, a0, redirect, serve, backoff, a1, decide, adopt, ckpt})
	tl := tls[0]
	if tl.Redirects != 1 {
		t.Errorf("redirects %d, want 1", tl.Redirects)
	}
	if len(tl.Nodes) != 2 || tl.Hops == 0 {
		t.Errorf("nodes %v hops %d", tl.Nodes, tl.Hops)
	}
	b := tl.Buckets
	if b.RedirectNanos != 20*msN {
		t.Errorf("redirect %d, want %d", b.RedirectNanos, 20*msN)
	}
	if b.RetryBackoffNanos != 40*msN {
		t.Errorf("backoff %d, want %d", b.RetryBackoffNanos, 40*msN)
	}
	if b.AdoptNanos != 30*msN { // 40 adopt - 10 nested checkpoint
		t.Errorf("adopt %d, want %d", b.AdoptNanos, 30*msN)
	}
	if b.CheckpointNanos != 10*msN {
		t.Errorf("checkpoint %d, want %d", b.CheckpointNanos, 10*msN)
	}
	if b.DecideNanos != 40*msN { // 80 - 40 adopt subtree
		t.Errorf("decide %d, want %d", b.DecideNanos, 40*msN)
	}
	// network: attempts 160 - handlers (20 redirect + 20 serve + 80 decide)
	if b.NetworkNanos != 40*msN {
		t.Errorf("network %d, want %d", b.NetworkNanos, 40*msN)
	}
	if got := b.AccountedNanos(); got != tl.WallNanos {
		t.Errorf("accounted %d != wall %d", got, tl.WallNanos)
	}
	if len(tl.Orphans) != 0 {
		t.Errorf("orphans: %v", tl.Orphans)
	}
}

// TestStitchOrphanDetection: a redirect into the void, an adoption from a
// node that never spoke, and a successful replication without an accept all
// must surface as orphans.
func TestStitchOrphanDetection(t *testing.T) {
	redirect := span("ck", "n1", obs.SpanServerStart, 0, 10)
	redirect.Status = 307
	redirect.Target = "n9"
	adopt := span("ck", "n2", obs.SpanServerAdopt, 20, 10)
	adopt.Source = "n8"
	rep := span("ck", "n2", obs.SpanServerReplicate, 40, 10)
	rep.Target = "n7"

	tl := Stitch([]obs.SpanRecord{redirect, adopt, rep})[0]
	if len(tl.Orphans) != 3 {
		t.Fatalf("orphans %v, want 3", tl.Orphans)
	}
	// A failed replication is not an orphan edge — nothing should have
	// landed.
	repFail := rep
	repFail.Err = "aborted by shutdown"
	tl = Stitch([]obs.SpanRecord{span("ck", "n8", obs.SpanServerStart, 0, 5), adopt, repFail})[0]
	if len(tl.Orphans) != 0 {
		t.Errorf("orphans %v, want none", tl.Orphans)
	}
}

// TestStitchServerOnlyFallback: with no client spans the wall falls back to
// the stitched extent and every handler counts.
func TestStitchServerOnlyFallback(t *testing.T) {
	d1 := span("ck", "n1", obs.SpanServerDecide, 0, 10)
	d2 := span("ck", "n1", obs.SpanServerObserve, 30, 20)
	tl := Stitch([]obs.SpanRecord{d1, d2})[0]
	if tl.WallNanos != 50*msN {
		t.Errorf("wall %d, want extent %d", tl.WallNanos, 50*msN)
	}
	if tl.Buckets.DecideNanos != 10*msN || tl.Buckets.ObserveNanos != 20*msN {
		t.Errorf("buckets %+v", tl.Buckets)
	}
}

// TestStitchSeveredHandlerIsBackground: a handler span not contained in any
// client attempt (the client gave up before the server finished) must land
// in Background, keeping the identity intact.
func TestStitchSeveredHandlerIsBackground(t *testing.T) {
	call := span("ck", "client", obs.SpanClientCall, 0, 50)
	attempt := span("ck", "client", obs.SpanClientAttempt, 0, 50)
	severed := span("ck", "n1", obs.SpanServerDecide, 40, 100) // outlives the attempt
	tl := Stitch([]obs.SpanRecord{call, attempt, severed})[0]
	if tl.Buckets.BackgroundNanos != 100*msN {
		t.Errorf("background %d, want %d", tl.Buckets.BackgroundNanos, 100*msN)
	}
	if tl.Buckets.DecideNanos != 0 {
		t.Errorf("decide %d, want 0", tl.Buckets.DecideNanos)
	}
	if got := tl.Buckets.AccountedNanos(); got != tl.WallNanos {
		t.Errorf("accounted %d != wall %d", got, tl.WallNanos)
	}
}

// TestLoadAndSummarize round-trips span files through Load and checks the
// aggregate view.
func TestLoadAndSummarize(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, recs ...obs.SpanRecord) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := obs.NewSpanWriter(f)
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
		return path
	}
	p1 := write("n1.spans",
		span("a", "client", obs.SpanClientCall, 0, 100),
		span("a", "client", obs.SpanClientAttempt, 0, 100),
		span("a", "n1", obs.SpanServerDecide, 10, 50))
	p2 := write("n2.spans",
		span("b", "client", obs.SpanClientCall, 0, 300),
		span("b", "client", obs.SpanClientAttempt, 0, 300),
		span("b", "n2", obs.SpanServerDecide, 10, 200))

	spans, err := Load(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	tls := Stitch(spans)
	if len(tls) != 2 {
		t.Fatalf("%d timelines, want 2", len(tls))
	}
	s := Summarize(tls)
	if s.Episodes != 2 || s.Spans != 6 || s.Orphans != 0 {
		t.Errorf("summary %+v", s)
	}
	if s.WallMaxNanos != 300*msN || s.WallP50Nanos != 100*msN {
		t.Errorf("wall p50 %d max %d", s.WallP50Nanos, s.WallMaxNanos)
	}
	if out := s.Render(); !strings.Contains(out, "2 episodes") {
		t.Errorf("summary render:\n%s", out)
	}
	if out := tls[0].Render(); !strings.Contains(out, "episode a") || !strings.Contains(out, "orphans: none") {
		t.Errorf("timeline render:\n%s", out)
	}
}
