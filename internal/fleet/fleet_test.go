package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("episode-key-%d", i)
	}
	return out
}

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a, err := NewRing([]string{"n0", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n2", "n0", "n1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(500) {
		oa, ok := a.OwnerOf(k)
		if !ok {
			t.Fatal("empty ring?")
		}
		ob, _ := b.OwnerOf(k)
		if oa != ob {
			t.Fatalf("owner of %q differs by member order: %q vs %q", k, oa, ob)
		}
		// And stable across repeated queries.
		if again, _ := a.OwnerOf(k); again != oa {
			t.Fatalf("owner of %q unstable: %q vs %q", k, oa, again)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty member id accepted")
	}
	if _, err := NewRing([]string{"a"}, -1); err == nil {
		t.Error("negative vnodes accepted")
	}
	empty, err := NewRing(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := empty.OwnerOf("k"); ok {
		t.Error("empty ring returned an owner")
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"n0", "n1", "n2", "n3"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 20000
	for _, k := range keys(n) {
		o, _ := r.OwnerOf(k)
		counts[o]++
	}
	want := n / len(members)
	for _, m := range members {
		if c := counts[m]; c < want/2 || c > want*2 {
			t.Errorf("member %s owns %d of %d keys (expected around %d)", m, c, n, want)
		}
	}
}

// TestRingMinimalMovement is the consistent-hashing property the handoff
// design rests on: removing one member moves only that member's keys.
func TestRingMinimalMovement(t *testing.T) {
	full, err := NewRing([]string{"n0", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"n0", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(5000) {
		before, _ := full.OwnerOf(k)
		after, _ := reduced.OwnerOf(k)
		if before != "n1" && after != before {
			t.Fatalf("key %q moved from surviving member %q to %q", k, before, after)
		}
		if before == "n1" && after == "n1" {
			t.Fatalf("key %q still owned by removed member", k)
		}
	}
}

func TestMembershipFlipsRebuildRing(t *testing.T) {
	members := []Member{
		{ID: "a", Addr: "http://127.0.0.1:1"},
		{ID: "b", Addr: "http://127.0.0.1:2"},
		{ID: "c", Addr: "http://127.0.0.1:3"},
	}
	m, err := NewMembership(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Version(); v != 0 {
		t.Errorf("fresh version %d", v)
	}

	// Find a key owned by b, then kill b: the key must move, and keys owned
	// by a and c must not.
	var bKey string
	owners := map[string]string{}
	for _, k := range keys(2000) {
		o, ok := m.Owner(k)
		if !ok {
			t.Fatal("no owner")
		}
		owners[k] = o.ID
		if o.ID == "b" && bKey == "" {
			bKey = k
		}
	}
	if bKey == "" {
		t.Fatal("no key landed on member b")
	}

	changed, err := m.MarkDown("b")
	if err != nil || !changed {
		t.Fatalf("MarkDown = %v, %v", changed, err)
	}
	if changed, _ := m.MarkDown("b"); changed {
		t.Error("second MarkDown reported a change")
	}
	if !m.IsDown("b") {
		t.Error("b not down")
	}
	if got := m.DownMembers(); len(got) != 1 || got[0].ID != "b" {
		t.Errorf("DownMembers = %+v", got)
	}
	if o, ok := m.Owner(bKey); !ok || o.ID == "b" {
		t.Errorf("key still owned by down member: %+v ok=%v", o, ok)
	}
	for k, before := range owners {
		o, _ := m.Owner(k)
		if before != "b" && o.ID != before {
			t.Fatalf("key %q moved from live member %q to %q on b's failure", k, before, o.ID)
		}
	}

	if _, err := m.MarkDown("nope"); err == nil {
		t.Error("unknown member marked down")
	}

	// Recovery restores the original assignment exactly.
	if changed, err := m.MarkUp("b"); err != nil || !changed {
		t.Fatalf("MarkUp = %v, %v", changed, err)
	}
	for k, before := range owners {
		if o, _ := m.Owner(k); o.ID != before {
			t.Fatalf("key %q owned by %q after recovery, was %q", k, o.ID, before)
		}
	}
	if v := m.Version(); v != 2 {
		t.Errorf("version after two flips = %d", v)
	}

	st := m.Snapshot()
	if len(st) != 3 || !st[0].Up || st[0].ID != "a" {
		t.Errorf("snapshot %+v", st)
	}
	if idx, ok := m.Index("b"); !ok || idx != 1 {
		t.Errorf("Index(b) = %d, %v", idx, ok)
	}
	if _, ok := m.Index("zz"); ok {
		t.Error("Index of unknown member ok")
	}
}

func TestMembershipAllDown(t *testing.T) {
	m, err := NewMembership([]Member{{ID: "only", Addr: "x"}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.MarkDown("only"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Owner("k"); ok {
		t.Error("owner returned with every member down")
	}
}

func TestParsePeers(t *testing.T) {
	got, err := ParsePeers("a=http://h1:1, b=h2:2 ,c=https://h3:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{
		{ID: "a", Addr: "http://h1:1"},
		{ID: "b", Addr: "http://h2:2"},
		{ID: "c", Addr: "https://h3:3"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParsePeers = %+v, want %+v", got, want)
	}
	for _, bad := range []string{"", "  ", "a", "=x", "a=", "a=b=c,"} {
		if _, err := ParsePeers(bad); err == nil && bad != "a=b=c," {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}
