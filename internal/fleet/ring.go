// Package fleet provides the coordination-free building blocks for running
// several recoverd instances as one recovery fleet: a consistent-hash ring
// that assigns every episode key a deterministic owner, and a membership
// view that tracks which members are up and rebuilds the ring as members
// are marked down or up.
//
// The design is deliberately coordinator-free: every node (and every
// client) computes ownership locally from the same member list, the same
// virtual-node count, and the same hash function, so two parties with the
// same view of liveness always agree on who owns a key. Stale views are
// corrected by the server's owner redirects (307 + X-Bpomdp-Owner) and by
// clients marking members down when connections are refused.
//
// Durability composes with ownership: an episode's owner checkpoints it
// locally, and when the episode terminates the owner replicates a terminal
// tombstone to the key's ring successor (Ring.SuccessorOf) — the member that
// will own the key if the owner dies — so a client whose final read was cut
// off by the owner's death can retry against the new owner and receive the
// original terminal decision byte-for-byte.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member virtual-node count used when none
// is configured. 64 points per member keeps the largest/smallest key-range
// ratio within a few tens of percent for small fleets while keeping ring
// rebuilds trivially cheap.
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over member IDs. Build one with
// NewRing; ownership queries are read-only and safe for concurrent use.
type Ring struct {
	points []ringPoint
}

// ringPoint is one virtual node: the hash of "memberID#vnodeIndex" and the
// member it maps back to.
type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over the given member IDs with vnodes virtual nodes
// per member (0 means DefaultVirtualNodes). The ring is deterministic in
// the member *set* — input order does not matter — so every party that
// knows the same members builds the identical ring.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes == 0 {
		vnodes = DefaultVirtualNodes
	}
	if vnodes < 0 {
		return nil, fmt.Errorf("fleet: negative virtual-node count %d", vnodes)
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("fleet: empty member id")
		}
		if seen[m] {
			return nil, fmt.Errorf("fleet: duplicate member id %q", m)
		}
		seen[m] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(m + "#" + strconv.Itoa(v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash collisions between virtual nodes are broken by member id so
		// the ring stays deterministic in the member set.
		return a.member < b.member
	})
	return r, nil
}

// Size returns the number of virtual nodes on the ring.
func (r *Ring) Size() int { return len(r.points) }

// OwnerOf returns the member owning key: the first virtual node at or after
// the key's hash, wrapping around the ring. ok is false on an empty ring.
func (r *Ring) OwnerOf(key string) (member string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member, true
}

// SuccessorOf returns the key's owner and the first *distinct* member whose
// virtual node follows the owning one, wrapping around the ring. The
// successor is exactly the member that would own the key if the owner were
// removed from the ring — which makes it the natural replica target for
// per-key state: after the owner dies, the key hashes straight to the member
// already holding the copy. ok is false on an empty or single-member ring.
func (r *Ring) SuccessorOf(key string) (owner, successor string, ok bool) {
	if len(r.points) == 0 {
		return "", "", false
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	owner = r.points[i].member
	for step := 1; step < len(r.points); step++ {
		p := r.points[(i+step)%len(r.points)]
		if p.member != owner {
			return owner, p.member, true
		}
	}
	return owner, "", false
}

// hashKey is the ring's hash function: 64-bit FNV-1a finished with a
// Murmur3-style avalanche. Bare FNV-1a mixes a trailing byte into the low
// bits only, which clusters a member's virtual nodes ("n1#0".."n1#63") on
// one arc of the ring; the finalizer spreads them uniformly. The function
// only needs to be fast, stable across processes, and well-spread; it is
// not a security boundary (episode keys are client-generated random
// tokens).
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
