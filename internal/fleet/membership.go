package fleet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Member is one fleet node: a stable ID (the hash-ring identity) and the
// base URL its recovery API is served on.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// MemberStatus is a Member plus its liveness in one membership view.
type MemberStatus struct {
	Member
	Up bool `json:"up"`
}

// Membership is one node's (or client's) local view of the fleet: the
// static member list plus which members are currently considered up. The
// ownership ring is built over the up members only, so marking a member
// down reassigns exactly its key ranges to the survivors (consistent
// hashing moves no other keys). Safe for concurrent use.
//
// Views are deliberately local — there is no gossip or consensus here.
// Divergent views are reconciled by the server's owner redirects and the
// client's failover-on-refusal, both of which converge on whoever actually
// has the episode's checkpoints.
type Membership struct {
	mu      sync.RWMutex
	members map[string]Member
	order   []string // member IDs, sorted — the basis for Index
	down    map[string]bool
	vnodes  int
	ring    *Ring // over up members only
	version uint64
}

// NewMembership builds a view over the given members, all initially up,
// with vnodes virtual nodes per member (0 means DefaultVirtualNodes).
func NewMembership(members []Member, vnodes int) (*Membership, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet: empty member list")
	}
	m := &Membership{
		members: make(map[string]Member, len(members)),
		down:    make(map[string]bool),
		vnodes:  vnodes,
	}
	for _, mem := range members {
		if mem.ID == "" {
			return nil, fmt.Errorf("fleet: member with empty id (addr %q)", mem.Addr)
		}
		if _, ok := m.members[mem.ID]; ok {
			return nil, fmt.Errorf("fleet: duplicate member id %q", mem.ID)
		}
		m.members[mem.ID] = mem
		m.order = append(m.order, mem.ID)
	}
	sort.Strings(m.order)
	if err := m.rebuildLocked(); err != nil {
		return nil, err
	}
	return m, nil
}

// rebuildLocked rebuilds the ring over the up members. Caller holds m.mu.
func (m *Membership) rebuildLocked() error {
	up := make([]string, 0, len(m.order))
	for _, id := range m.order {
		if !m.down[id] {
			up = append(up, id)
		}
	}
	ring, err := NewRing(up, m.vnodes)
	if err != nil {
		return err
	}
	m.ring = ring
	return nil
}

// Owner returns the up member owning key. ok is false when every member is
// down.
func (m *Membership) Owner(key string) (Member, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	id, ok := m.ring.OwnerOf(key)
	if !ok {
		return Member{}, false
	}
	return m.members[id], true
}

// Successor returns the up member that would own key if its current owner
// were marked down — the ring-successor, the natural target for replicating
// per-key state ahead of an owner failure. ok is false when fewer than two
// members are up.
func (m *Membership) Successor(key string) (Member, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, succ, ok := m.ring.SuccessorOf(key)
	if !ok {
		return Member{}, false
	}
	return m.members[succ], true
}

// Member looks a member up by ID, regardless of liveness.
func (m *Membership) Member(id string) (Member, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	mem, ok := m.members[id]
	return mem, ok
}

// Index returns the member's position in the sorted member list — the basis
// for carving out disjoint episode-ID ranges per member.
func (m *Membership) Index(id string) (int, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	i := sort.SearchStrings(m.order, id)
	if i < len(m.order) && m.order[i] == id {
		return i, true
	}
	return 0, false
}

// IsDown reports whether the member is currently marked down in this view.
func (m *Membership) IsDown(id string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.down[id]
}

// MarkDown flips the member to down and rebuilds the ring. It returns
// whether the view changed; unknown members are an error.
func (m *Membership) MarkDown(id string) (bool, error) {
	return m.setDown(id, true)
}

// MarkUp flips the member back to up and rebuilds the ring. Note that a
// returning member does not automatically reclaim episodes handed off while
// it was down; with static membership that rebalance is the operator's
// (or a future PR's) problem.
func (m *Membership) MarkUp(id string) (bool, error) {
	return m.setDown(id, false)
}

func (m *Membership) setDown(id string, down bool) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.members[id]; !ok {
		return false, fmt.Errorf("fleet: unknown member %q", id)
	}
	if m.down[id] == down {
		return false, nil
	}
	if down {
		m.down[id] = true
	} else {
		delete(m.down, id)
	}
	if err := m.rebuildLocked(); err != nil {
		// Roll the flip back so the view and ring stay consistent.
		if down {
			delete(m.down, id)
		} else {
			m.down[id] = true
		}
		_ = m.rebuildLocked()
		return false, err
	}
	m.version++
	return true, nil
}

// DownMembers returns the members currently marked down, sorted by ID.
func (m *Membership) DownMembers() []Member {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []Member
	for _, id := range m.order {
		if m.down[id] {
			out = append(out, m.members[id])
		}
	}
	return out
}

// Snapshot returns every member with its liveness, sorted by ID.
func (m *Membership) Snapshot() []MemberStatus {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]MemberStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, MemberStatus{Member: m.members[id], Up: !m.down[id]})
	}
	return out
}

// Version counts liveness flips, so pollers can cheaply detect change.
func (m *Membership) Version() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}

// ParsePeers parses a -fleet-peers specification: a comma-separated list of
// id=addr pairs, e.g. "a=http://10.0.0.1:7947,b=http://10.0.0.2:7947".
// Addresses without a scheme get http://.
func ParsePeers(spec string) ([]Member, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("fleet: empty peer list")
	}
	var out []Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("fleet: bad peer %q (want id=addr)", part)
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		out = append(out, Member{ID: id, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fleet: empty peer list")
	}
	return out, nil
}
