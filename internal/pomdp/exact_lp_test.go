package pomdp

import (
	"testing"

	"bpomdp/internal/rng"
)

func TestExactSolveLPPruneMatchesPlainAndShrinksSets(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	r := rng.New(71)
	for _, horizon := range []int{2, 3, 4} {
		plain, err := ExactSolve(p, ExactOptions{Beta: 1, Horizon: horizon})
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := ExactSolve(p, ExactOptions{Beta: 1, Horizon: horizon, LPPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(pruned) > len(plain) {
			t.Errorf("horizon %d: LP prune grew the set %d -> %d", horizon, len(plain), len(pruned))
		}
		for trial := 0; trial < 15; trial++ {
			pi := make(Belief, p.NumStates())
			for i := range pi {
				pi[i] = r.Float64()
			}
			if !pi.Vec().Normalize() {
				continue
			}
			a, b := ValueOfVectorSet(plain, pi), ValueOfVectorSet(pruned, pi)
			if !almostEqual(a, b, 1e-7) {
				t.Errorf("horizon %d trial %d: plain %v != pruned %v", horizon, trial, a, b)
			}
		}
	}
}

func TestExactSolveLPPruneReachesDeeperHorizons(t *testing.T) {
	// Dominance-only pruning explodes past horizon ~5 on this model; LP
	// pruning keeps the parsimonious set so horizon 6 finishes quickly.
	p := twoServer(t, 0.9, 0.05)
	vs, err := ExactSolve(p, ExactOptions{Beta: 1, Horizon: 6, MaxVectors: 5000, LPPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("horizon-6 parsimonious set: %d α-vectors", len(vs))
	// The horizon-6 value still upper-bounds the horizon-7 value (negative
	// model monotonicity) — quick sanity on a belief.
	pi := UniformBelief(3)
	v6 := ValueOfVectorSet(vs, pi)
	vs7, err := ExactSolve(p, ExactOptions{Beta: 1, Horizon: 7, MaxVectors: 5000, LPPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if v7 := ValueOfVectorSet(vs7, pi); v7 > v6+1e-9 {
		t.Errorf("horizon-7 value %v above horizon-6 value %v", v7, v6)
	}
}
