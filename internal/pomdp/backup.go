package pomdp

import (
	"fmt"
	"math"
)

// ValueFn evaluates a (bound on a) POMDP value function at a belief.
type ValueFn interface {
	Value(pi Belief) float64
}

// ValueFunc adapts a plain function to the ValueFn interface.
type ValueFunc func(pi Belief) float64

// Value implements ValueFn.
func (f ValueFunc) Value(pi Belief) float64 { return f(pi) }

// BackupResult is the outcome of one application of the belief-MDP operator.
type BackupResult struct {
	// Value is (L_p f)(π) = max_a [π·r(a) + β Σ_o γ(o)·f(π^{π,a,o})].
	Value float64
	// Action is the maximizing action.
	Action int
	// QValues[a] is the bracketed expression for each action a.
	QValues []float64
}

// Backup applies the belief-MDP dynamic-programming operator L_p of
// Equation 2 once at belief π, using leaf to evaluate the successor beliefs.
// It is the depth-one building block of the controller's Max-Avg recursion
// tree and of the Property 1(b) check V_B⁻ ≤ L_p V_B⁻.
func Backup(p *POMDP, sc *Scratch, pi Belief, beta float64, leaf ValueFn) (BackupResult, error) {
	return BackupInto(p, sc, pi, beta, leaf, nil)
}

// BackupInto is Backup with a caller-supplied QValues buffer, grown when its
// capacity is insufficient; the returned BackupResult aliases it. Callers
// that back up in a loop (the HSVI bound refiner's exploration trials) reuse
// one buffer across calls instead of allocating a fresh Q-vector each time.
// Results are bit-identical to Backup.
func BackupInto(p *POMDP, sc *Scratch, pi Belief, beta float64, leaf ValueFn, q []float64) (BackupResult, error) {
	if len(pi) != p.NumStates() {
		return BackupResult{}, fmt.Errorf("pomdp: belief length %d, want %d", len(pi), p.NumStates())
	}
	if beta <= 0 || beta > 1 {
		return BackupResult{}, fmt.Errorf("pomdp: discount beta=%v outside (0,1]", beta)
	}
	if cap(q) < p.NumActions() {
		q = make([]float64, p.NumActions())
	}
	res := BackupResult{
		Value:   math.Inf(-1),
		Action:  -1,
		QValues: q[:p.NumActions()],
	}
	for a := 0; a < p.NumActions(); a++ {
		q := p.ExpectedReward(pi, a)
		for _, succ := range p.Successors(sc, pi, a) {
			q += beta * succ.Prob * leaf.Value(succ.Belief)
		}
		res.QValues[a] = q
		if q > res.Value {
			res.Value, res.Action = q, a
		}
	}
	return res, nil
}
