package pomdp

import (
	"fmt"
	"math"

	"bpomdp/internal/linalg"
)

// Belief is a probability distribution over the POMDP's states — a point in
// the |S|-dimensional probability simplex Π.
type Belief linalg.Vector

// UniformBelief returns the belief in which all n states are equally likely
// — the paper's starting belief {1/|S|}.
func UniformBelief(n int) Belief {
	b := make(Belief, n)
	inv := 1 / float64(n)
	for i := range b {
		b[i] = inv
	}
	return b
}

// UniformOver returns the belief uniform over the given state subset.
func UniformOver(n int, states []int) (Belief, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("pomdp: UniformOver with empty state set")
	}
	b := make(Belief, n)
	inv := 1 / float64(len(states))
	for _, s := range states {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("pomdp: state %d out of range [0,%d)", s, n)
		}
		b[s] += inv
	}
	return b, nil
}

// PointBelief returns the belief concentrated on state s.
func PointBelief(n, s int) Belief {
	b := make(Belief, n)
	b[s] = 1
	return b
}

// Clone returns a deep copy of b.
func (b Belief) Clone() Belief {
	return Belief(linalg.Vector(b).Clone())
}

// Vec views the belief as a linalg.Vector without copying.
func (b Belief) Vec() linalg.Vector { return linalg.Vector(b) }

// IsDistribution reports whether b is a valid probability distribution:
// non-negative entries summing to 1 within tolerance.
func (b Belief) IsDistribution() bool {
	var sum float64
	for _, x := range b {
		if x < -stochasticTol || math.IsNaN(x) {
			return false
		}
		sum += x
	}
	return math.Abs(sum-1) <= 1e-6
}

// Mass returns the total probability the belief assigns to the state set.
func (b Belief) Mass(states []int) float64 {
	var m float64
	for _, s := range states {
		if s >= 0 && s < len(b) {
			m += b[s]
		}
	}
	return m
}

// Entropy returns the Shannon entropy of the belief in nats: −Σ π(s)·ln π(s)
// with 0·ln 0 = 0. It is maximal (ln n) at the uniform belief and zero at a
// vertex of the simplex — the decision-trace layer records it as a measure
// of how much diagnostic ambiguity the controller decided under.
func (b Belief) Entropy() float64 {
	var h float64
	for _, p := range b {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// MostLikely returns the state with maximum probability and that probability.
func (b Belief) MostLikely() (state int, prob float64) {
	p, s := linalg.Vector(b).Max()
	return s, p
}

// Predict computes, in place into dst, the one-step-ahead state distribution
// pred(s) = Σ_s' p(s|s',a)·π(s') of Equation 3's inner sum.
func (p *POMDP) Predict(dst linalg.Vector, pi Belief, a int) linalg.Vector {
	return p.M.Trans[a].MulVecT(dst, linalg.Vector(pi))
}

// Gamma computes γ^{π,a}(o) for every observation o (Equation 3): the
// probability that observation o is generated when action a is chosen in
// belief π. The result is written into scratch and remains valid until the
// next call using the same Scratch.
func (p *POMDP) Gamma(sc *Scratch, pi Belief, a int) linalg.Vector {
	p.Predict(sc.pred, pi, a)
	// γ(o) = Σ_s pred(s)·q(o|s,a)  =  (Obs[a]ᵀ · pred)(o)
	return p.Obs[a].MulVecT(sc.gamma, sc.pred)
}

// Update performs the Bayes belief update of Equation 4, returning the next
// belief π^{π,a,o} given that action a was chosen in belief π and
// observation o was received. It returns ErrImpossibleObservation when
// γ^{π,a}(o) = 0.
func (p *POMDP) Update(sc *Scratch, pi Belief, a, o int) (Belief, error) {
	return p.UpdateInto(sc, nil, pi, a, o)
}

// UpdateInto is Update with a caller-supplied destination buffer: the next
// belief is written into dst and returned, so a filter that only needs the
// latest belief can ping-pong two buffers and perform zero allocations per
// step. dst may alias pi (the prior is consumed before dst is written); a
// nil dst allocates a fresh belief, which is exactly Update.
func (p *POMDP) UpdateInto(sc *Scratch, dst Belief, pi Belief, a, o int) (Belief, error) {
	if a < 0 || a >= p.NumActions() {
		return nil, fmt.Errorf("pomdp: action %d out of range [0,%d)", a, p.NumActions())
	}
	if o < 0 || o >= p.NumObservations() {
		return nil, fmt.Errorf("pomdp: observation %d out of range [0,%d)", o, p.NumObservations())
	}
	n := p.NumStates()
	if dst == nil {
		dst = make(Belief, n)
	} else if len(dst) != n {
		return nil, fmt.Errorf("pomdp: destination belief length %d, want %d", len(dst), n)
	}
	p.Predict(sc.pred, pi, a)
	col := sc.obsColumns(p, a)[o]
	linalg.Vector(dst).Fill(0)
	var norm float64
	for k, s := range col.states {
		v := sc.pred[s] * col.vals[k]
		dst[s] = v
		norm += v
	}
	if norm <= 0 {
		return nil, fmt.Errorf("pomdp: action %s observation %s: %w",
			p.M.ActionName(a), p.ObsName(o), ErrImpossibleObservation)
	}
	linalg.Vector(dst).Scale(1 / norm)
	return dst, nil
}

// Successor couples one observation's probability with the belief that
// results from it.
type Successor struct {
	Obs    int
	Prob   float64
	Belief Belief
}

// Successors enumerates, for action a taken in belief π, every observation
// with positive probability together with its posterior belief. This is the
// branching step of the Max-Avg recursion tree (Figure 1(b)) and of the
// incremental bound update (Equation 7).
func (p *POMDP) Successors(sc *Scratch, pi Belief, a int) []Successor {
	p.Predict(sc.pred, pi, a)
	n, no := p.NumStates(), p.NumObservations()

	// weights[o][s] = pred(s)·q(o|s,a); built sparsely by walking Obs rows.
	gamma := sc.gamma
	gamma.Fill(0)
	posts := make([]linalg.Vector, no)
	for s := 0; s < n; s++ {
		ps := sc.pred[s]
		if ps == 0 {
			continue
		}
		p.Obs[a].Row(s, func(o int, q float64) {
			w := ps * q
			if w == 0 {
				return
			}
			if posts[o] == nil {
				posts[o] = linalg.NewVector(n)
			}
			posts[o][s] += w
			gamma[o] += w
		})
	}
	out := make([]Successor, 0, no)
	for o := 0; o < no; o++ {
		if gamma[o] <= 0 || posts[o] == nil {
			continue
		}
		posts[o].Scale(1 / gamma[o])
		out = append(out, Successor{Obs: o, Prob: gamma[o], Belief: Belief(posts[o])})
	}
	return out
}

// ExpectedReward returns π·r(a), the immediate expected reward of choosing
// action a in belief π.
func (p *POMDP) ExpectedReward(pi Belief, a int) float64 {
	return linalg.Vector(pi).Dot(p.M.Reward[a])
}
