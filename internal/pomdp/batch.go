package pomdp

import "fmt"

// BatchValueFn is a ValueFn that can additionally evaluate many beliefs in
// one pass. Implementations must make ValueBatch agree bit-for-bit with
// per-belief Value calls — batched evaluation is an amortization, never an
// approximation — so callers may freely substitute one for the other.
type BatchValueFn interface {
	ValueFn
	// ValueBatch writes Value(pis[j]) into out[j] for every j, growing out
	// if its capacity is insufficient, and returns it.
	ValueBatch(pis []Belief, out []float64) []float64
}

// SuccessorBuf accumulates the successor beliefs of many (belief, action)
// expansions into one contiguous arena, so a batched Max-Avg engine can
// enumerate a whole frontier without per-successor allocations and then hand
// the frontier to a BatchValueFn in a single call.
//
// The posts/gamma scratch is kept dense (|O|·|S| and |O|) and re-zeroed
// after every expansion, which keeps AppendSuccessors allocation-free and
// its arithmetic identical to Successors'. A SuccessorBuf may be reused
// across calls but not concurrently.
type SuccessorBuf struct {
	n     int
	posts []float64 // |O|·|S| dense scratch; rows zeroed after use
	gamma []float64 // |O| scratch; zeroed after use
	arena []float64 // normalized posterior beliefs, back to back
	probs []float64 // observation probability per appended successor
	pis   []Belief  // lazily rebuilt views into arena
}

// NewSuccessorBuf returns a SuccessorBuf sized for model p.
func NewSuccessorBuf(p *POMDP) *SuccessorBuf {
	n, no := p.NumStates(), p.NumObservations()
	return &SuccessorBuf{
		n:     n,
		posts: make([]float64, no*n),
		gamma: make([]float64, no),
	}
}

// Reset discards the accumulated successors, keeping the arena capacity.
func (b *SuccessorBuf) Reset() {
	b.arena = b.arena[:0]
	b.probs = b.probs[:0]
}

// Len returns the number of accumulated successors.
func (b *SuccessorBuf) Len() int { return len(b.probs) }

// Probs returns the observation probabilities γ(o) of the accumulated
// successors, in append order. The slice is valid until the next Reset.
func (b *SuccessorBuf) Probs() []float64 { return b.probs }

// Beliefs returns the accumulated successor beliefs as views into the
// arena, in append order. The headers are rebuilt on each call (appending
// may have moved the arena), so call it after the expansions, not before.
// The beliefs are valid until the next Reset.
func (b *SuccessorBuf) Beliefs() []Belief {
	m := len(b.probs)
	if cap(b.pis) < m {
		b.pis = make([]Belief, m)
	}
	b.pis = b.pis[:m]
	for i := range b.pis {
		b.pis[i] = Belief(b.arena[i*b.n : (i+1)*b.n])
	}
	return b.pis
}

// AppendSuccessors enumerates the successors of (pi, a) exactly as
// Successors does — same observation order, same floating-point operation
// sequence, so the appended beliefs and probabilities are bit-identical to
// Successors' — but appends them to buf instead of allocating a fresh slice
// per call. It returns the number of successors appended.
func (p *POMDP) AppendSuccessors(sc *Scratch, buf *SuccessorBuf, pi Belief, a int) int {
	if buf.n != p.NumStates() {
		panic(fmt.Sprintf("pomdp: successor buffer over %d states, model has %d", buf.n, p.NumStates()))
	}
	p.Predict(sc.pred, pi, a)
	n, no := p.NumStates(), p.NumObservations()

	// weights[o][s] = pred(s)·q(o|s,a); built sparsely by walking Obs rows.
	// buf.posts and buf.gamma are zero on entry (the invariant below).
	posts, gamma := buf.posts, buf.gamma
	for s := 0; s < n; s++ {
		ps := sc.pred[s]
		if ps == 0 {
			continue
		}
		p.Obs[a].Row(s, func(o int, q float64) {
			w := ps * q
			if w == 0 {
				return
			}
			posts[o*n+s] += w
			gamma[o] += w
		})
	}
	added := 0
	for o := 0; o < no; o++ {
		if gamma[o] <= 0 {
			continue
		}
		row := posts[o*n : (o+1)*n]
		inv := 1 / gamma[o]
		start := len(buf.arena)
		buf.arena = append(buf.arena, row...)
		dst := buf.arena[start:]
		for i := range dst {
			dst[i] *= inv
		}
		buf.probs = append(buf.probs, gamma[o])
		// Restore the zero invariant for the next expansion.
		for i := range row {
			row[i] = 0
		}
		gamma[o] = 0
		added++
	}
	return added
}
