package pomdp

import (
	"errors"
	"testing"

	"bpomdp/internal/rng"
)

// lpK evaluates (L_p^k 0)(π) by recursive expansion — an independent
// implementation of the k-horizon value used to cross-validate the exact
// vector-set solver.
func lpK(t *testing.T, p *POMDP, pi Belief, k int) float64 {
	t.Helper()
	if k == 0 {
		return 0
	}
	sc := NewScratch(p)
	res, err := Backup(p, sc, pi, 1, ValueFunc(func(b Belief) float64 {
		return lpK(t, p, b, k-1)
	}))
	if err != nil {
		t.Fatal(err)
	}
	return res.Value
}

func TestExactFiniteHorizonMatchesRecursiveExpansion(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	r := rng.New(31)
	for k := 0; k <= 3; k++ {
		vs, err := ExactFiniteHorizon(p, 1, k, 0)
		if err != nil {
			t.Fatalf("horizon %d: %v", k, err)
		}
		if len(vs) == 0 {
			t.Fatalf("horizon %d: empty vector set", k)
		}
		for trial := 0; trial < 10; trial++ {
			pi := make(Belief, 3)
			for i := range pi {
				pi[i] = r.Float64()
			}
			if !pi.Vec().Normalize() {
				continue
			}
			exact := ValueOfVectorSet(vs, pi)
			recursive := lpK(t, p, pi, k)
			if !almostEqual(exact, recursive, 1e-9) {
				t.Errorf("horizon %d trial %d: vector-set %v != recursion %v", k, trial, exact, recursive)
			}
		}
	}
}

func TestExactFiniteHorizonMonotoneForNegativeModels(t *testing.T) {
	// With non-positive rewards the k-horizon values decrease in k toward
	// the infinite-horizon value function.
	p := twoServer(t, 0.9, 0.05)
	pi := UniformBelief(3)
	prev := 0.0
	for k := 1; k <= 4; k++ {
		vs, err := ExactFiniteHorizon(p, 1, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		v := ValueOfVectorSet(vs, pi)
		if v > prev+1e-9 {
			t.Errorf("horizon %d: value %v increased above %v", k, v, prev)
		}
		prev = v
	}
}

func TestExactFiniteHorizonDiscounted(t *testing.T) {
	p := twoServer(t, 1, 0)
	vs, err := ExactFiniteHorizon(p, 0.9, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// At the fault-a point belief, the best two-step plan is restart-a then
	// anything free: value -0.5 (immediate) + 0.9·0 = -0.5.
	got := ValueOfVectorSet(vs, PointBelief(3, 1))
	if !almostEqual(got, -0.5, 1e-9) {
		t.Errorf("two-step value at fault-a = %v, want -0.5", got)
	}
}

func TestExactFiniteHorizonVectorBudget(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	_, err := ExactFiniteHorizon(p, 1, 4, 3)
	if !errors.Is(err, ErrTooManyVectors) {
		t.Errorf("err = %v, want ErrTooManyVectors", err)
	}
}

func TestExactFiniteHorizonValidation(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	if _, err := ExactFiniteHorizon(p, 0, 1, 0); err == nil {
		t.Error("beta=0 accepted")
	}
	if _, err := ExactFiniteHorizon(p, 1, -1, 0); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestValueOfVectorSetEmpty(t *testing.T) {
	if v := ValueOfVectorSet(nil, UniformBelief(2)); v > -1e300 {
		t.Errorf("empty set value = %v", v)
	}
}
