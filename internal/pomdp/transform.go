package pomdp

import (
	"fmt"
	"sort"

	"bpomdp/internal/linalg"
	"bpomdp/internal/mdp"
)

// TerminateActionName is the label given to the terminate action a_T added
// by WithTermination.
const TerminateActionName = "terminate"

// TerminatedStateName is the label given to the absorbing state s_T added by
// WithTermination.
const TerminatedStateName = "terminated"

// TerminatedObsName is the label of the observation deterministically
// emitted from s_T, keeping the transformed observation function stochastic.
const TerminatedObsName = "obs:terminated"

// AbsorbNullStates returns a copy of the model in which every action taken
// in a null-fault state s ∈ Sφ loops back to s with probability 1 and reward
// 0 — the paper's Section 3.1 modification for systems WITH recovery
// notification. With Condition 1 it makes all of Sφ absorbing and zero-
// reward so the RA-Bound chain converges. Observations from Sφ states are
// left untouched. The input model is not modified.
func AbsorbNullStates(p *POMDP, nullStates []int) (*POMDP, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.NumStates()
	isNull, err := stateSet(n, nullStates)
	if err != nil {
		return nil, err
	}
	out := &POMDP{
		M: &mdp.MDP{
			Trans:       make([]*linalg.CSR, p.NumActions()),
			Reward:      make([]linalg.Vector, p.NumActions()),
			StateNames:  append([]string(nil), p.M.StateNames...),
			ActionNames: append([]string(nil), p.M.ActionNames...),
		},
		Obs:      append([]*linalg.CSR(nil), p.Obs...),
		ObsNames: append([]string(nil), p.ObsNames...),
	}
	for a := 0; a < p.NumActions(); a++ {
		b := linalg.NewBuilder(n, n)
		for s := 0; s < n; s++ {
			if isNull[s] {
				b.Add(s, s, 1)
				continue
			}
			p.M.Trans[a].Row(s, func(c int, v float64) { b.Add(s, c, v) })
		}
		tr, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("pomdp: absorb null states: %w", err)
		}
		out.M.Trans[a] = tr
		r := p.M.Reward[a].Clone()
		for s := 0; s < n; s++ {
			if isNull[s] {
				r[s] = 0
			}
		}
		out.M.Reward[a] = r
	}
	return out, nil
}

// TerminationConfig parameterizes WithTermination.
type TerminationConfig struct {
	// NullStates is Sφ; termination from these states is free.
	NullStates []int
	// OperatorResponseTime is t_op, the designer-friendly time a human
	// operator needs to respond to a fault that the controller abandoned.
	OperatorResponseTime float64
	// RateReward[s] is r̄(s) ≤ 0, the reward (cost) rate the system accrues
	// per unit time while in state s with no recovery in progress. The
	// termination reward is r(s, a_T) = r̄(s)·t_op for s ∉ Sφ.
	RateReward linalg.Vector
}

// WithTermination returns a copy of the model extended with the absorbing
// state s_T and the terminate action a_T of Section 3.1 (systems WITHOUT
// recovery notification):
//
//   - s_T: ∀a, r(s_T, a) = 0 and p(s_T|s_T, a) = 1;
//   - a_T: ∀s, p(s_T|s, a_T) = 1, with reward r(s, a_T) = r̄(s)·t_op for
//     s ∉ Sφ and 0 for s ∈ Sφ.
//
// A fresh deterministic observation is emitted from s_T so the observation
// function stays stochastic; the controller halts when it picks a_T, so the
// observation is never consulted. The indices of the new state, action and
// observation are returned alongside the new model.
func WithTermination(p *POMDP, cfg TerminationConfig) (*POMDP, TerminationIndices, error) {
	var idx TerminationIndices
	if err := p.Validate(); err != nil {
		return nil, idx, err
	}
	n := p.NumStates()
	isNull, err := stateSet(n, cfg.NullStates)
	if err != nil {
		return nil, idx, err
	}
	if cfg.OperatorResponseTime < 0 {
		return nil, idx, fmt.Errorf("pomdp: negative operator response time %v", cfg.OperatorResponseTime)
	}
	if len(cfg.RateReward) != n {
		return nil, idx, fmt.Errorf("pomdp: rate reward length %d, want %d", len(cfg.RateReward), n)
	}
	for s, r := range cfg.RateReward {
		if r > 0 {
			return nil, idx, fmt.Errorf("pomdp: rate reward %v > 0 at state %s violates Condition 2",
				r, p.M.StateName(s))
		}
	}

	nNew := n + 1
	sT := n
	aT := p.NumActions()
	oT := p.NumObservations()
	noNew := oT + 1

	out := &POMDP{
		M: &mdp.MDP{
			Trans:       make([]*linalg.CSR, aT+1),
			Reward:      make([]linalg.Vector, aT+1),
			StateNames:  append(append([]string(nil), p.M.StateNames...), TerminatedStateName),
			ActionNames: append(append([]string(nil), p.M.ActionNames...), TerminateActionName),
		},
		Obs:      make([]*linalg.CSR, aT+1),
		ObsNames: append(append([]string(nil), p.ObsNames...), TerminatedObsName),
	}
	// Existing actions: same dynamics, s_T absorbs with reward 0.
	for a := 0; a < aT; a++ {
		tb := linalg.NewBuilder(nNew, nNew)
		for s := 0; s < n; s++ {
			p.M.Trans[a].Row(s, func(c int, v float64) { tb.Add(s, c, v) })
		}
		tb.Add(sT, sT, 1)
		tr, err := tb.Build()
		if err != nil {
			return nil, idx, fmt.Errorf("pomdp: with termination: %w", err)
		}
		out.M.Trans[a] = tr

		r := linalg.NewVector(nNew)
		copy(r, p.M.Reward[a])
		out.M.Reward[a] = r

		ob := linalg.NewBuilder(nNew, noNew)
		for s := 0; s < n; s++ {
			p.Obs[a].Row(s, func(o int, v float64) { ob.Add(s, o, v) })
		}
		ob.Add(sT, oT, 1)
		om, err := ob.Build()
		if err != nil {
			return nil, idx, fmt.Errorf("pomdp: with termination observations: %w", err)
		}
		out.Obs[a] = om
	}
	// Terminate action a_T: every state jumps to s_T.
	tb := linalg.NewBuilder(nNew, nNew)
	rT := linalg.NewVector(nNew)
	for s := 0; s < nNew; s++ {
		tb.Add(s, sT, 1)
	}
	for s := 0; s < n; s++ {
		if !isNull[s] {
			rT[s] = cfg.RateReward[s] * cfg.OperatorResponseTime
		}
	}
	tr, err := tb.Build()
	if err != nil {
		return nil, idx, fmt.Errorf("pomdp: terminate action: %w", err)
	}
	out.M.Trans[aT] = tr
	out.M.Reward[aT] = rT

	ob := linalg.NewBuilder(nNew, noNew)
	for s := 0; s < nNew; s++ {
		ob.Add(s, oT, 1)
	}
	om, err := ob.Build()
	if err != nil {
		return nil, idx, fmt.Errorf("pomdp: terminate observations: %w", err)
	}
	out.Obs[aT] = om

	idx = TerminationIndices{State: sT, Action: aT, Observation: oT}
	return out, idx, nil
}

// TerminationIndices reports where WithTermination placed the new state,
// action, and observation.
type TerminationIndices struct {
	State       int // s_T
	Action      int // a_T
	Observation int // the deterministic "terminated" observation
}

// HasRecoveryNotification implements the check the paper leaves to future
// work ("we believe that it is possible to automatically determine whether a
// system has recovery notification by examining the observation function q",
// §3.1). The system has recovery notification with respect to Sφ when every
// observation unambiguously reveals which side of the Sφ boundary the system
// is on: no observation o is generated with positive probability both from
// some state inside Sφ and from some state outside it (under any action).
// When that holds, seeing any observation tells the controller definitively
// whether the system has recovered.
func HasRecoveryNotification(p *POMDP, nullStates []int) (bool, error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	n := p.NumStates()
	isNull, err := stateSet(n, nullStates)
	if err != nil {
		return false, err
	}
	no := p.NumObservations()
	fromNull := make([]bool, no)
	fromFault := make([]bool, no)
	for a := 0; a < p.NumActions(); a++ {
		for s := 0; s < n; s++ {
			p.Obs[a].Row(s, func(o int, q float64) {
				if q <= 0 {
					return
				}
				if isNull[s] {
					fromNull[o] = true
				} else {
					fromFault[o] = true
				}
			})
		}
	}
	for o := 0; o < no; o++ {
		if fromNull[o] && fromFault[o] {
			return false, nil
		}
	}
	return true, nil
}

func stateSet(n int, states []int) ([]bool, error) {
	set := make([]bool, n)
	for _, s := range states {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("pomdp: state %d out of range [0,%d)", s, n)
		}
		set[s] = true
	}
	return set, nil
}

// SortedStates returns a sorted copy of states with duplicates removed,
// used to canonicalize Sφ sets.
func SortedStates(states []int) []int {
	out := append([]int(nil), states...)
	sort.Ints(out)
	w := 0
	for i, s := range out {
		if i == 0 || s != out[i-1] {
			out[w] = s
			w++
		}
	}
	return out[:w]
}
