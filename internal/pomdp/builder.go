package pomdp

import (
	"fmt"

	"bpomdp/internal/linalg"
	"bpomdp/internal/mdp"
)

// Builder assembles a POMDP incrementally. It wraps an mdp.Builder for the
// (S, A, p, r) part and adds the observation function q.
type Builder struct {
	m       *mdp.Builder
	obsIdx  map[string]int
	obs     []string
	entries map[int][]obsEntry // action -> (state, obs, prob)
}

type obsEntry struct {
	state, obs int
	prob       float64
}

// NewBuilder returns an empty POMDP builder.
func NewBuilder() *Builder {
	return &Builder{
		m:       mdp.NewBuilder(),
		obsIdx:  make(map[string]int),
		entries: make(map[int][]obsEntry),
	}
}

// State interns a state name and returns its index.
func (b *Builder) State(name string) int { return b.m.State(name) }

// Action interns an action name and returns its index.
func (b *Builder) Action(name string) int { return b.m.Action(name) }

// Observation interns an observation name and returns its index.
func (b *Builder) Observation(name string) int {
	if i, ok := b.obsIdx[name]; ok {
		return i
	}
	i := len(b.obs)
	b.obsIdx[name] = i
	b.obs = append(b.obs, name)
	return i
}

// Transition adds p(to|from, action) += prob.
func (b *Builder) Transition(from, action, to string, prob float64) {
	b.m.Transition(from, action, to, prob)
}

// Reward sets r(state, action).
func (b *Builder) Reward(state, action string, r float64) {
	b.m.Reward(state, action, r)
}

// Observe adds q(obs | state, action) += prob: the probability of seeing obs
// when the system lands in state as a result of action.
func (b *Builder) Observe(state, action, obs string, prob float64) {
	a := b.Action(action)
	b.entries[a] = append(b.entries[a], obsEntry{
		state: b.State(state),
		obs:   b.Observation(obs),
		prob:  prob,
	})
}

// Build finalizes and validates the POMDP. Every (state, action) pair must
// have an observation row summing to one.
func (b *Builder) Build() (*POMDP, error) {
	m, err := b.m.Build()
	if err != nil {
		return nil, err
	}
	n, na, no := m.NumStates(), m.NumActions(), len(b.obs)
	if no == 0 {
		return nil, fmt.Errorf("%w: no observations", ErrInvalidModel)
	}
	p := &POMDP{
		M:        m,
		Obs:      make([]*linalg.CSR, na),
		ObsNames: append([]string(nil), b.obs...),
	}
	for a := 0; a < na; a++ {
		ob := linalg.NewBuilder(n, no)
		for _, e := range b.entries[a] {
			ob.Add(e.state, e.obs, e.prob)
		}
		om, err := ob.Build()
		if err != nil {
			return nil, fmt.Errorf("pomdp: build observations for %q: %w", m.ActionName(a), err)
		}
		p.Obs[a] = om
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
