package pomdp

import (
	"encoding/json"
	"fmt"
)

// modelJSON is the interchange representation of a POMDP: a sparse,
// name-based encoding that is stable under state/action reordering and easy
// to inspect or hand-edit.
type modelJSON struct {
	States       []string          `json:"states"`
	Actions      []string          `json:"actions"`
	Observations []string          `json:"observations"`
	Transitions  []transitionJSON  `json:"transitions"`
	ObsProbs     []observationJSON `json:"observationProbs"`
	Rewards      []rewardJSON      `json:"rewards"`
}

type transitionJSON struct {
	Action string  `json:"action"`
	From   string  `json:"from"`
	To     string  `json:"to"`
	Prob   float64 `json:"prob"`
}

type observationJSON struct {
	Action string  `json:"action"`
	State  string  `json:"state"`
	Obs    string  `json:"obs"`
	Prob   float64 `json:"prob"`
}

type rewardJSON struct {
	Action string  `json:"action"`
	State  string  `json:"state"`
	Reward float64 `json:"reward"`
}

// MarshalModel encodes a validated POMDP as JSON.
func MarshalModel(p *POMDP) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, na, no := p.NumStates(), p.NumActions(), p.NumObservations()
	mj := modelJSON{
		States:       make([]string, n),
		Actions:      make([]string, na),
		Observations: make([]string, no),
	}
	for s := 0; s < n; s++ {
		mj.States[s] = p.M.StateName(s)
	}
	for a := 0; a < na; a++ {
		mj.Actions[a] = p.M.ActionName(a)
	}
	for o := 0; o < no; o++ {
		mj.Observations[o] = p.ObsName(o)
	}
	for a := 0; a < na; a++ {
		for s := 0; s < n; s++ {
			p.M.Trans[a].Row(s, func(c int, v float64) {
				mj.Transitions = append(mj.Transitions, transitionJSON{
					Action: mj.Actions[a], From: mj.States[s], To: mj.States[c], Prob: v,
				})
			})
			p.Obs[a].Row(s, func(o int, v float64) {
				mj.ObsProbs = append(mj.ObsProbs, observationJSON{
					Action: mj.Actions[a], State: mj.States[s], Obs: mj.Observations[o], Prob: v,
				})
			})
			if r := p.M.Reward[a][s]; r != 0 {
				mj.Rewards = append(mj.Rewards, rewardJSON{
					Action: mj.Actions[a], State: mj.States[s], Reward: r,
				})
			}
		}
	}
	return json.MarshalIndent(mj, "", "  ")
}

// UnmarshalModel decodes and validates a POMDP from its JSON representation.
func UnmarshalModel(data []byte) (*POMDP, error) {
	var mj modelJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return nil, fmt.Errorf("pomdp: decode model: %w", err)
	}
	b := NewBuilder()
	// Intern in declared order so indices round-trip.
	for _, s := range mj.States {
		b.State(s)
	}
	for _, a := range mj.Actions {
		b.Action(a)
	}
	for _, o := range mj.Observations {
		b.Observation(o)
	}
	known := func(kind, name string, names []string) error {
		for _, n := range names {
			if n == name {
				return nil
			}
		}
		return fmt.Errorf("pomdp: decode model: unknown %s %q", kind, name)
	}
	for _, tr := range mj.Transitions {
		if err := known("action", tr.Action, mj.Actions); err != nil {
			return nil, err
		}
		if err := known("state", tr.From, mj.States); err != nil {
			return nil, err
		}
		if err := known("state", tr.To, mj.States); err != nil {
			return nil, err
		}
		b.Transition(tr.From, tr.Action, tr.To, tr.Prob)
	}
	for _, op := range mj.ObsProbs {
		if err := known("action", op.Action, mj.Actions); err != nil {
			return nil, err
		}
		if err := known("state", op.State, mj.States); err != nil {
			return nil, err
		}
		if err := known("observation", op.Obs, mj.Observations); err != nil {
			return nil, err
		}
		b.Observe(op.State, op.Action, op.Obs, op.Prob)
	}
	for _, rw := range mj.Rewards {
		if err := known("action", rw.Action, mj.Actions); err != nil {
			return nil, err
		}
		if err := known("state", rw.State, mj.States); err != nil {
			return nil, err
		}
		b.Reward(rw.State, rw.Action, rw.Reward)
	}
	return b.Build()
}
