package pomdp

import (
	"testing"
)

// FuzzUnmarshalModel ensures the model decoder never panics and that any
// model it accepts actually validates — the decoder is the trust boundary
// for user-supplied model files (modelinfo/recoverd -model file.json).
func FuzzUnmarshalModel(f *testing.F) {
	valid := `{"states":["null","bad"],"actions":["fix"],"observations":["o"],
		"transitions":[{"action":"fix","from":"null","to":"null","prob":1},
		               {"action":"fix","from":"bad","to":"null","prob":1}],
		"observationProbs":[{"action":"fix","state":"null","obs":"o","prob":1},
		                    {"action":"fix","state":"bad","obs":"o","prob":1}],
		"rewards":[{"action":"fix","state":"bad","reward":-1}]}`
	f.Add([]byte(valid))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"states":["s"],"actions":["a"],"observations":["o"]}`))
	f.Add([]byte(`{"states":["s"],"actions":["a"],"observations":["o"],
		"transitions":[{"action":"a","from":"s","to":"s","prob":0.5}],
		"observationProbs":[{"action":"a","state":"s","obs":"o","prob":1}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"states":["s","s"],"actions":["a"],"observations":["o"]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalModel(data)
		if err != nil {
			return
		}
		// Anything the decoder accepts must be a fully valid model.
		if vErr := p.Validate(); vErr != nil {
			t.Fatalf("decoder accepted an invalid model: %v\ninput: %q", vErr, data)
		}
		// And it must round-trip.
		out, err := MarshalModel(p)
		if err != nil {
			t.Fatalf("accepted model failed to marshal: %v", err)
		}
		if _, err := UnmarshalModel(out); err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
	})
}
