// Package pomdp implements partially observable Markov decision processes:
// the model tuple (S, A, O, p, q, r) of Section 2 of the paper, belief
// states with Bayes updates (Equations 3–4), the belief-MDP dynamic-
// programming operator L_p (Equation 2), and the model transforms the paper
// uses to make undiscounted recovery models well-behaved (absorbing
// null-fault states for systems with recovery notification; the terminate
// action a_T and state s_T for systems without).
package pomdp

import (
	"errors"
	"fmt"
	"math"

	"bpomdp/internal/linalg"
	"bpomdp/internal/mdp"
)

// ErrInvalidModel is wrapped by all validation failures.
var ErrInvalidModel = errors.New("pomdp: invalid model")

// ErrImpossibleObservation is returned by belief updates when the given
// observation has probability zero under the current belief and action.
var ErrImpossibleObservation = errors.New("pomdp: observation has zero probability under belief")

const stochasticTol = 1e-9

// POMDP is a finite partially observable MDP. The underlying MDP supplies
// S, A, p and r; Obs supplies the observation function q.
type POMDP struct {
	// M is the underlying (fully observable) MDP.
	M *mdp.MDP
	// Obs[a] is the |S|×|O| observation matrix for action a:
	// Obs[a].At(s, o) = q(o|s, a), the probability of observing o when the
	// system transitions INTO state s as a result of action a.
	Obs []*linalg.CSR
	// ObsNames are optional labels for observations.
	ObsNames []string
}

// NumStates returns |S|.
func (p *POMDP) NumStates() int { return p.M.NumStates() }

// NumActions returns |A|.
func (p *POMDP) NumActions() int { return p.M.NumActions() }

// NumObservations returns |O|.
func (p *POMDP) NumObservations() int {
	if len(p.Obs) == 0 {
		return 0
	}
	return p.Obs[0].Cols()
}

// ObsName returns the label of observation o, falling back to "o<idx>".
func (p *POMDP) ObsName(o int) string {
	if o >= 0 && o < len(p.ObsNames) && p.ObsNames[o] != "" {
		return p.ObsNames[o]
	}
	return fmt.Sprintf("o%d", o)
}

// Validate checks that the underlying MDP is valid and that the observation
// matrices have the right shape with stochastic rows: for every action a and
// state s, Σ_o q(o|s,a) = 1 and all q ≥ 0.
func (p *POMDP) Validate() error {
	if p.M == nil {
		return fmt.Errorf("%w: nil MDP", ErrInvalidModel)
	}
	if err := p.M.Validate(); err != nil {
		return err
	}
	if len(p.Obs) != p.M.NumActions() {
		return fmt.Errorf("%w: %d observation matrices for %d actions",
			ErrInvalidModel, len(p.Obs), p.M.NumActions())
	}
	n := p.M.NumStates()
	no := p.NumObservations()
	if no == 0 {
		return fmt.Errorf("%w: no observations", ErrInvalidModel)
	}
	for a, om := range p.Obs {
		if om.Rows() != n || om.Cols() != no {
			return fmt.Errorf("%w: action %s observation matrix is %dx%d, want %dx%d",
				ErrInvalidModel, p.M.ActionName(a), om.Rows(), om.Cols(), n, no)
		}
		sums := om.RowSums()
		for s, sum := range sums {
			if math.Abs(sum-1) > stochasticTol {
				return fmt.Errorf("%w: action %s state %s observation row sums to %v, want 1",
					ErrInvalidModel, p.M.ActionName(a), p.M.StateName(s), sum)
			}
		}
		neg := false
		for s := 0; s < n; s++ {
			om.Row(s, func(_ int, v float64) {
				if v < 0 {
					neg = true
				}
			})
		}
		if neg {
			return fmt.Errorf("%w: action %s has negative observation probability",
				ErrInvalidModel, p.M.ActionName(a))
		}
	}
	if len(p.ObsNames) != 0 && len(p.ObsNames) != no {
		return fmt.Errorf("%w: %d observation names for %d observations",
			ErrInvalidModel, len(p.ObsNames), no)
	}
	return nil
}

// Scratch holds preallocated buffers for the belief operations, so the hot
// decision loop of the controller performs no per-step allocations beyond
// the successor beliefs it must return. A Scratch may be reused across calls
// but not concurrently.
//
// The Scratch also memoizes, per action, the observation matrix in
// column-major form (one sparse column per observation), which turns the
// Bayes update's per-state q(o|s,a) lookups — a binary search each — into a
// single walk over the observation's nonzero column. Columns are built
// lazily on first use and invalidated automatically when the Scratch is used
// with a different model (matrix identity is checked per call).
type Scratch struct {
	pred  linalg.Vector // Σ_s' p(s|s',a) π(s'): forward-pushed belief
	gamma linalg.Vector // per-observation probability

	cols    [][]obsColumn // [action][observation] sparse columns of Obs[a]
	colsSrc []*linalg.CSR // the matrix each cached column set was built from
}

// obsColumn is one observation's sparse column of an observation matrix:
// the states s with q(o|s,a) > 0 (ascending) and the matching probabilities.
type obsColumn struct {
	states []int
	vals   []float64
}

// NewScratch returns a Scratch sized for model p.
func NewScratch(p *POMDP) *Scratch {
	return &Scratch{
		pred:  linalg.NewVector(p.NumStates()),
		gamma: linalg.NewVector(p.NumObservations()),
	}
}

// obsColumns returns the memoized column-major view of p.Obs[a], building
// (or rebuilding, if the Scratch last saw a different model) it on demand.
func (sc *Scratch) obsColumns(p *POMDP, a int) []obsColumn {
	if len(sc.cols) != p.NumActions() {
		sc.cols = make([][]obsColumn, p.NumActions())
		sc.colsSrc = make([]*linalg.CSR, p.NumActions())
	}
	if sc.colsSrc[a] != p.Obs[a] {
		sc.cols[a] = buildObsColumns(p.Obs[a])
		sc.colsSrc[a] = p.Obs[a]
	}
	return sc.cols[a]
}

// buildObsColumns transposes a CSR observation matrix into per-observation
// sparse columns, in two passes over the stored entries.
func buildObsColumns(m *linalg.CSR) []obsColumn {
	no := m.Cols()
	counts := make([]int, no)
	nnz := 0
	for s := 0; s < m.Rows(); s++ {
		cols, _ := m.RowSlice(s)
		for _, o := range cols {
			counts[o]++
		}
		nnz += len(cols)
	}
	states := make([]int, nnz)
	vals := make([]float64, nnz)
	out := make([]obsColumn, no)
	offset := 0
	for o := 0; o < no; o++ {
		out[o] = obsColumn{states: states[offset : offset : offset+counts[o]], vals: vals[offset : offset : offset+counts[o]]}
		offset += counts[o]
	}
	for s := 0; s < m.Rows(); s++ {
		cols, rowVals := m.RowSlice(s)
		for i, o := range cols {
			c := &out[o]
			c.states = append(c.states, s)
			c.vals = append(c.vals, rowVals[i])
		}
	}
	return out
}
