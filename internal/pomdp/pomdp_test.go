package pomdp

import (
	"errors"
	"math"
	"testing"

	"bpomdp/internal/rng"
)

// twoServer builds the paper's Figure 1(a) example extended with a noisy
// monitor: two redundant servers a and b, restart actions, and a passive
// observe action. With coverage < 1 or false positives > 0 the model lacks
// recovery notification.
func twoServer(t *testing.T, coverage, falsePositive float64) *POMDP {
	t.Helper()
	b := NewBuilder()
	states := []string{"null", "fault-a", "fault-b"}
	actions := []string{"restart-a", "restart-b", "observe"}
	for _, s := range states {
		b.State(s)
	}
	for _, a := range actions {
		b.Action(a)
	}
	b.Observation("obs-clear")
	b.Observation("obs-a-failed")
	b.Observation("obs-b-failed")

	// Dynamics: restarting the faulty server fixes it; anything else is a
	// no-op on the fault state.
	for _, a := range actions {
		b.Transition("null", a, "null", 1)
	}
	b.Transition("fault-a", "restart-a", "null", 1)
	b.Transition("fault-a", "restart-b", "fault-a", 1)
	b.Transition("fault-a", "observe", "fault-a", 1)
	b.Transition("fault-b", "restart-b", "null", 1)
	b.Transition("fault-b", "restart-a", "fault-b", 1)
	b.Transition("fault-b", "observe", "fault-b", 1)

	// Costs (negative rewards): restarts cost 0.5; a restart that misses the
	// fault costs 1 (fault persists and a healthy server went down);
	// observing a faulty system costs 0.5; observing a healthy one is free.
	b.Reward("null", "restart-a", -0.5)
	b.Reward("null", "restart-b", -0.5)
	b.Reward("fault-a", "restart-a", -0.5)
	b.Reward("fault-b", "restart-b", -0.5)
	b.Reward("fault-a", "restart-b", -1)
	b.Reward("fault-b", "restart-a", -1)
	b.Reward("fault-a", "observe", -0.5)
	b.Reward("fault-b", "observe", -0.5)

	// Monitor: in a fault state it localizes the fault w.p. coverage and
	// reports all-clear otherwise; in the null state it reports all-clear
	// except for symmetric false positives.
	for _, a := range actions {
		b.Observe("null", a, "obs-clear", 1-2*falsePositive)
		if falsePositive > 0 {
			b.Observe("null", a, "obs-a-failed", falsePositive)
			b.Observe("null", a, "obs-b-failed", falsePositive)
		}
		b.Observe("fault-a", a, "obs-a-failed", coverage)
		b.Observe("fault-b", a, "obs-b-failed", coverage)
		if coverage < 1 {
			b.Observe("fault-a", a, "obs-clear", 1-coverage)
			b.Observe("fault-b", a, "obs-clear", 1-coverage)
		}
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBuilderBuildsValidModel(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 3 || p.NumActions() != 3 || p.NumObservations() != 3 {
		t.Errorf("shape = %d/%d/%d", p.NumStates(), p.NumActions(), p.NumObservations())
	}
	if p.ObsName(0) != "obs-clear" || p.ObsName(99) != "o99" {
		t.Errorf("obs names: %q %q", p.ObsName(0), p.ObsName(99))
	}
}

func TestBuilderRejectsMissingObservations(t *testing.T) {
	b := NewBuilder()
	b.Transition("s", "go", "s", 1)
	b.Observation("o")
	// No Observe rows at all: row sums are 0, not 1.
	if _, err := b.Build(); !errors.Is(err, ErrInvalidModel) {
		t.Errorf("err = %v, want ErrInvalidModel", err)
	}
}

func TestBuilderRejectsNoObservationAlphabet(t *testing.T) {
	b := NewBuilder()
	b.Transition("s", "go", "s", 1)
	if _, err := b.Build(); !errors.Is(err, ErrInvalidModel) {
		t.Errorf("err = %v, want ErrInvalidModel", err)
	}
}

func TestValidateNonStochasticObservations(t *testing.T) {
	b := NewBuilder()
	b.Transition("s", "go", "s", 1)
	b.Observe("s", "go", "o", 0.5) // sums to 0.5
	if _, err := b.Build(); !errors.Is(err, ErrInvalidModel) {
		t.Errorf("err = %v, want ErrInvalidModel", err)
	}
}

func TestBeliefConstructors(t *testing.T) {
	u := UniformBelief(4)
	if !u.IsDistribution() {
		t.Error("uniform belief not a distribution")
	}
	for _, x := range u {
		if !almostEqual(x, 0.25, 1e-12) {
			t.Errorf("uniform entry %v", x)
		}
	}
	pb := PointBelief(3, 1)
	if s, p := pb.MostLikely(); s != 1 || p != 1 {
		t.Errorf("point belief most likely = (%d, %v)", s, p)
	}
	uo, err := UniformOver(5, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if uo[1] != 0.5 || uo[3] != 0.5 || uo[0] != 0 {
		t.Errorf("UniformOver = %v", uo)
	}
	if _, err := UniformOver(5, nil); err == nil {
		t.Error("empty UniformOver accepted")
	}
	if _, err := UniformOver(5, []int{9}); err == nil {
		t.Error("out-of-range UniformOver accepted")
	}
}

func TestBeliefHelpers(t *testing.T) {
	b := Belief{0.2, 0.3, 0.5}
	if !b.IsDistribution() {
		t.Error("valid belief rejected")
	}
	if (Belief{0.5, 0.6}).IsDistribution() {
		t.Error("over-mass belief accepted")
	}
	if (Belief{-0.1, 1.1}).IsDistribution() {
		t.Error("negative belief accepted")
	}
	if got := b.Mass([]int{0, 2}); !almostEqual(got, 0.7, 1e-12) {
		t.Errorf("Mass = %v", got)
	}
	if got := b.Mass([]int{-1, 99}); got != 0 {
		t.Errorf("Mass of bogus states = %v", got)
	}
	c := b.Clone()
	c[0] = 9
	if b[0] != 0.2 {
		t.Error("Clone aliases")
	}
}

func TestGammaIsDistribution(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	sc := NewScratch(p)
	pi := UniformBelief(3)
	for a := 0; a < p.NumActions(); a++ {
		g := p.Gamma(sc, pi, a)
		if !almostEqual(g.Sum(), 1, 1e-9) {
			t.Errorf("action %d: gamma sums to %v", a, g.Sum())
		}
		for o, x := range g {
			if x < 0 {
				t.Errorf("gamma[%d] = %v < 0", o, x)
			}
		}
	}
}

func TestUpdateBayesHandExample(t *testing.T) {
	// Perfect-coverage monitor, no false positives: observing "obs-a-failed"
	// after "observe" from the uniform belief must put all mass on fault-a.
	p := twoServer(t, 1.0, 0)
	sc := NewScratch(p)
	pi := UniformBelief(3)
	aObserve := 2
	oAFailed := 1
	next, err := p.Update(sc, pi, aObserve, oAFailed)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(next[1], 1, 1e-12) {
		t.Errorf("posterior = %v, want mass 1 on fault-a", next)
	}
}

func TestUpdateNoisyPosterior(t *testing.T) {
	// coverage 0.9, fp 0.05. Observe from uniform prior; see obs-a-failed.
	// posterior ∝ [1/3*0.05, 1/3*0.9, 0] (observe leaves state unchanged).
	p := twoServer(t, 0.9, 0.05)
	sc := NewScratch(p)
	next, err := p.Update(sc, UniformBelief(3), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantNull := 0.05 / 0.95
	wantA := 0.9 / 0.95
	if !almostEqual(next[0], wantNull, 1e-9) || !almostEqual(next[1], wantA, 1e-9) || !almostEqual(next[2], 0, 1e-12) {
		t.Errorf("posterior = %v, want [%v %v 0]", next, wantNull, wantA)
	}
}

func TestUpdateImpossibleObservation(t *testing.T) {
	p := twoServer(t, 1.0, 0)
	sc := NewScratch(p)
	// From a point belief on null with perfect monitor, obs-a-failed is
	// impossible.
	_, err := p.Update(sc, PointBelief(3, 0), 2, 1)
	if !errors.Is(err, ErrImpossibleObservation) {
		t.Errorf("err = %v, want ErrImpossibleObservation", err)
	}
}

func TestUpdateRangeErrors(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	sc := NewScratch(p)
	if _, err := p.Update(sc, UniformBelief(3), 99, 0); err == nil {
		t.Error("bad action accepted")
	}
	if _, err := p.Update(sc, UniformBelief(3), 0, 99); err == nil {
		t.Error("bad observation accepted")
	}
}

func TestSuccessorsConsistentWithUpdate(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	sc := NewScratch(p)
	sc2 := NewScratch(p)
	pi := Belief{0.1, 0.6, 0.3}
	for a := 0; a < p.NumActions(); a++ {
		succs := p.Successors(sc, pi, a)
		var total float64
		for _, s := range succs {
			total += s.Prob
			if !s.Belief.IsDistribution() {
				t.Errorf("successor belief not a distribution: %v", s.Belief)
			}
			upd, err := p.Update(sc2, pi, a, s.Obs)
			if err != nil {
				t.Fatalf("Update for successor obs %d: %v", s.Obs, err)
			}
			for i := range upd {
				if !almostEqual(upd[i], s.Belief[i], 1e-9) {
					t.Errorf("action %d obs %d: Successors %v != Update %v", a, s.Obs, s.Belief, upd)
					break
				}
			}
		}
		if !almostEqual(total, 1, 1e-9) {
			t.Errorf("action %d successor probs sum to %v", a, total)
		}
	}
}

func TestExpectedReward(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	pi := Belief{0.5, 0.5, 0}
	// restart-a: 0.5*(-0.5) + 0.5*(-0.5) = -0.5.
	if got := p.ExpectedReward(pi, 0); !almostEqual(got, -0.5, 1e-12) {
		t.Errorf("ExpectedReward = %v, want -0.5", got)
	}
}

func TestBackupZeroLeafIsMaxImmediateReward(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	sc := NewScratch(p)
	pi := Belief{0, 1, 0} // fault-a for sure
	res, err := Backup(p, sc, pi, 1, ValueFunc(func(Belief) float64 { return 0 }))
	if err != nil {
		t.Fatal(err)
	}
	// Immediate rewards: restart-a -0.5, restart-b -1, observe -0.5 — the max
	// is -0.5 (tie between restart-a and observe).
	if !almostEqual(res.Value, -0.5, 1e-12) {
		t.Errorf("Backup value = %v, want -0.5", res.Value)
	}
	if len(res.QValues) != 3 {
		t.Fatalf("QValues len = %d", len(res.QValues))
	}
	if !almostEqual(res.QValues[1], -1, 1e-12) {
		t.Errorf("Q(restart-b) = %v, want -1", res.QValues[1])
	}
}

func TestBackupValidation(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	sc := NewScratch(p)
	zero := ValueFunc(func(Belief) float64 { return 0 })
	if _, err := Backup(p, sc, Belief{1}, 1, zero); err == nil {
		t.Error("short belief accepted")
	}
	if _, err := Backup(p, sc, UniformBelief(3), 1.5, zero); err == nil {
		t.Error("beta=1.5 accepted")
	}
}

// Property: Bayes updates stay on the probability simplex for random
// beliefs, actions, and reachable observations.
func TestUpdateStaysOnSimplex(t *testing.T) {
	p := twoServer(t, 0.8, 0.1)
	sc := NewScratch(p)
	r := rng.New(99)
	for trial := 0; trial < 500; trial++ {
		raw := []float64{r.Float64(), r.Float64(), r.Float64()}
		pi := Belief(raw)
		if !pi.Vec().Normalize() {
			continue
		}
		a := r.IntN(p.NumActions())
		succs := p.Successors(sc, pi, a)
		if len(succs) == 0 {
			t.Fatalf("no successors for belief %v action %d", pi, a)
		}
		idx := r.IntN(len(succs))
		next, err := p.Update(sc, pi, a, succs[idx].Obs)
		if err != nil {
			t.Fatal(err)
		}
		if !next.IsDistribution() {
			t.Fatalf("update left simplex: %v", next)
		}
	}
}

func TestBeliefEntropy(t *testing.T) {
	if got := PointBelief(4, 2).Entropy(); got != 0 {
		t.Errorf("point-belief entropy = %v, want 0", got)
	}
	if got, want := UniformBelief(8).Entropy(), math.Log(8); math.Abs(got-want) > 1e-12 {
		t.Errorf("uniform entropy = %v, want ln 8 = %v", got, want)
	}
	// Mixed belief: −Σ p ln p computed by hand.
	b := Belief{0.5, 0.25, 0.25, 0}
	want := -(0.5*math.Log(0.5) + 2*0.25*math.Log(0.25))
	if got := b.Entropy(); math.Abs(got-want) > 1e-12 {
		t.Errorf("entropy = %v, want %v", got, want)
	}
}
