package pomdp

import (
	"fmt"

	"bpomdp/internal/linalg"
)

// ErrTooManyVectors is returned when the exact solver's vector set exceeds
// the caller's budget — the expected outcome on all but small models, since
// exact POMDP solution is intractable in general (and undecidable to
// certify in the infinite-horizon undiscounted case, per the Madani et al.
// result the paper cites).
var ErrTooManyVectors = fmt.Errorf("pomdp: exact solver exceeded the vector budget")

// ExactFiniteHorizon computes the exact k-horizon value function of the
// POMDP as a set of α-vectors (hyperplanes over the belief simplex), via
// Monahan-style exhaustive cross-sum dynamic programming with pointwise-
// dominance pruning:
//
//	Γ_0     = {0}
//	Γ_{t+1} = prune( ⋃_a { r(a) + β Σ_o backproject_{a,o}(α_o) } )
//
// where backproject_{a,o}(α)(s) = Σ_s' p(s'|s,a)·q(o|s',a)·α(s') and the
// union ranges over every |O|-tuple of vectors from Γ_t. The k-horizon
// value at belief π is max_α π·α.
//
// The cross-sum is exponential in |O|; maxVectors (0 means 100000) guards
// against blow-up with ErrTooManyVectors. Intended for ground-truth
// verification of bounds and tree expansions on small models, exactly the
// role exact solvers play in the paper's related work.
func ExactFiniteHorizon(p *POMDP, beta float64, horizon, maxVectors int) ([]linalg.Vector, error) {
	return ExactSolve(p, ExactOptions{Beta: beta, Horizon: horizon, MaxVectors: maxVectors})
}

// ExactOptions configures ExactSolve.
type ExactOptions struct {
	// Beta is the discount factor in (0, 1].
	Beta float64
	// Horizon is the number of DP stages (k ≥ 0).
	Horizon int
	// MaxVectors guards against blow-up (0 means 100000).
	MaxVectors int
	// LPPrune enables exact LP-based usefulness filtering between stages
	// (in addition to pointwise-dominance pruning). Each LP costs O(set²)
	// pivots but the set sizes stay minimal, which is what makes horizons
	// beyond ~5 tractable on small models.
	LPPrune bool
}

// ExactSolve is ExactFiniteHorizon with configurable pruning.
func ExactSolve(p *POMDP, opts ExactOptions) ([]linalg.Vector, error) {
	beta, horizon, maxVectors := opts.Beta, opts.Horizon, opts.MaxVectors
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("pomdp: beta %v outside (0,1]", beta)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("pomdp: negative horizon %d", horizon)
	}
	if maxVectors == 0 {
		maxVectors = 100000
	}
	n, na, no := p.NumStates(), p.NumActions(), p.NumObservations()

	gamma := []linalg.Vector{linalg.NewVector(n)} // Γ_0 = {0}
	for t := 0; t < horizon; t++ {
		var next []linalg.Vector
		for a := 0; a < na; a++ {
			// Back-project every vector through every observation channel.
			proj := make([][]linalg.Vector, no)
			for o := 0; o < no; o++ {
				proj[o] = make([]linalg.Vector, len(gamma))
				for i, alpha := range gamma {
					proj[o][i] = backproject(p, a, o, alpha)
				}
			}
			// Cross-sum over observations, pruning dominated partial sums
			// to keep the frontier small.
			partial := []linalg.Vector{p.M.Reward[a].Clone()}
			for o := 0; o < no; o++ {
				grown := make([]linalg.Vector, 0, len(partial)*len(proj[o]))
				for _, base := range partial {
					for _, pr := range proj[o] {
						v := base.Clone().AddScaled(beta, pr)
						grown = append(grown, v)
					}
				}
				partial = pruneDominated(grown)
				if opts.LPPrune && len(partial) > 16 {
					filtered, err := linalg.FilterUselessPlanes(partial, 1e-9)
					if err != nil {
						return nil, fmt.Errorf("pomdp: cross-sum LP prune: %w", err)
					}
					partial = filtered
				}
				if len(partial) > maxVectors {
					return nil, fmt.Errorf("pomdp: horizon %d action %d: %d vectors: %w",
						t+1, a, len(partial), ErrTooManyVectors)
				}
			}
			next = append(next, partial...)
		}
		gamma = pruneDominated(next)
		if opts.LPPrune {
			filtered, err := linalg.FilterUselessPlanes(gamma, 1e-9)
			if err != nil {
				return nil, fmt.Errorf("pomdp: horizon %d LP prune: %w", t+1, err)
			}
			gamma = filtered
		}
		if len(gamma) > maxVectors {
			return nil, fmt.Errorf("pomdp: horizon %d: %d vectors: %w", t+1, len(gamma), ErrTooManyVectors)
		}
	}
	return gamma, nil
}

// backproject computes g(s) = Σ_s' p(s'|s,a)·q(o|s',a)·α(s').
func backproject(p *POMDP, a, o int, alpha linalg.Vector) linalg.Vector {
	n := p.NumStates()
	// weighted(s') = q(o|s',a)·α(s'), then g = P(a)·weighted.
	weighted := linalg.NewVector(n)
	for s := 0; s < n; s++ {
		if q := p.Obs[a].At(s, o); q != 0 {
			weighted[s] = q * alpha[s]
		}
	}
	return p.M.Trans[a].MulVec(linalg.NewVector(n), weighted)
}

// pruneDominated removes vectors pointwise-dominated by another (a sound
// but incomplete reduction: some kept vectors may still be useless at every
// belief, but no useful vector is ever dropped, so the max is unchanged).
func pruneDominated(vs []linalg.Vector) []linalg.Vector {
	const tol = 1e-12
	out := make([]linalg.Vector, 0, len(vs))
	for i, v := range vs {
		dominated := false
		for j, w := range vs {
			if i == j {
				continue
			}
			if pointwiseGE(w, v, tol) && (j < i || !pointwiseGE(v, w, tol)) {
				// w ≥ v everywhere; break exact ties by keeping the earlier
				// vector only.
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, v)
		}
	}
	return out
}

func pointwiseGE(a, b linalg.Vector, tol float64) bool {
	for i := range a {
		if a[i] < b[i]-tol {
			return false
		}
	}
	return true
}

// ValueOfVectorSet evaluates max_α π·α over a vector set, -Inf for empty.
func ValueOfVectorSet(vs []linalg.Vector, pi Belief) float64 {
	best := 0.0
	set := false
	x := linalg.Vector(pi)
	for _, v := range vs {
		val := x.Dot(v)
		if !set || val > best {
			best, set = val, true
		}
	}
	if !set {
		return negativeInfinity
	}
	return best
}

const negativeInfinity = -1e308
