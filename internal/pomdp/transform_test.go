package pomdp

import (
	"testing"

	"bpomdp/internal/linalg"
)

func TestAbsorbNullStates(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	mod, err := AbsorbNullStates(p, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.Validate(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < mod.NumActions(); a++ {
		if got := mod.M.Trans[a].At(0, 0); got != 1 {
			t.Errorf("action %d: null self-loop = %v, want 1", a, got)
		}
		if got := mod.M.Reward[a][0]; got != 0 {
			t.Errorf("action %d: null reward = %v, want 0", a, got)
		}
	}
	// Fault-state dynamics untouched.
	if got := mod.M.Trans[0].At(1, 0); got != 1 {
		t.Errorf("restart-a from fault-a = %v, want 1", got)
	}
	// Original unmodified (restart-a costs 0.5 in null).
	if got := p.M.Reward[0][0]; got != -0.5 {
		t.Errorf("original mutated: reward = %v", got)
	}
}

func TestAbsorbNullStatesRejectsBadStates(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	if _, err := AbsorbNullStates(p, []int{99}); err == nil {
		t.Error("out-of-range null state accepted")
	}
}

func TestWithTermination(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	top := 10.0
	rates := linalg.Vector{0, -0.5, -0.5} // cost rate while faulty
	mod, idx, err := WithTermination(p, TerminationConfig{
		NullStates:           []int{0},
		OperatorResponseTime: top,
		RateReward:           rates,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.Validate(); err != nil {
		t.Fatal(err)
	}
	if mod.NumStates() != 4 || mod.NumActions() != 4 || mod.NumObservations() != 4 {
		t.Fatalf("shape = %d/%d/%d", mod.NumStates(), mod.NumActions(), mod.NumObservations())
	}
	if idx.State != 3 || idx.Action != 3 || idx.Observation != 3 {
		t.Fatalf("indices = %+v", idx)
	}
	if mod.M.StateName(idx.State) != TerminatedStateName ||
		mod.M.ActionName(idx.Action) != TerminateActionName ||
		mod.ObsName(idx.Observation) != TerminatedObsName {
		t.Errorf("names: %q %q %q", mod.M.StateName(idx.State), mod.M.ActionName(idx.Action), mod.ObsName(idx.Observation))
	}
	// a_T from any state goes to s_T.
	for s := 0; s < 4; s++ {
		if got := mod.M.Trans[idx.Action].At(s, idx.State); got != 1 {
			t.Errorf("p(sT|%d,aT) = %v, want 1", s, got)
		}
	}
	// Termination rewards: 0 in Sφ, r̄·t_op elsewhere, 0 in s_T.
	rT := mod.M.Reward[idx.Action]
	if rT[0] != 0 || rT[3] != 0 {
		t.Errorf("terminate reward in null/sT = %v/%v, want 0/0", rT[0], rT[3])
	}
	if !almostEqual(rT[1], -5, 1e-12) || !almostEqual(rT[2], -5, 1e-12) {
		t.Errorf("terminate rewards = %v, want -5 in fault states", rT)
	}
	// s_T is absorbing with zero reward under every action.
	for a := 0; a < 4; a++ {
		if got := mod.M.Trans[a].At(idx.State, idx.State); got != 1 {
			t.Errorf("action %d: sT self-loop = %v", a, got)
		}
		if got := mod.M.Reward[a][idx.State]; got != 0 {
			t.Errorf("action %d: r(sT) = %v", a, got)
		}
	}
	// Old dynamics preserved.
	if got := mod.M.Trans[0].At(1, 0); got != 1 {
		t.Errorf("restart-a from fault-a = %v", got)
	}
}

func TestWithTerminationValidation(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	if _, _, err := WithTermination(p, TerminationConfig{
		NullStates: []int{0}, OperatorResponseTime: -1, RateReward: linalg.Vector{0, -1, -1},
	}); err == nil {
		t.Error("negative t_op accepted")
	}
	if _, _, err := WithTermination(p, TerminationConfig{
		NullStates: []int{0}, OperatorResponseTime: 1, RateReward: linalg.Vector{0, -1},
	}); err == nil {
		t.Error("short rate vector accepted")
	}
	if _, _, err := WithTermination(p, TerminationConfig{
		NullStates: []int{0}, OperatorResponseTime: 1, RateReward: linalg.Vector{0, +1, -1},
	}); err == nil {
		t.Error("positive rate reward accepted (violates Condition 2)")
	}
	if _, _, err := WithTermination(p, TerminationConfig{
		NullStates: []int{9}, OperatorResponseTime: 1, RateReward: linalg.Vector{0, -1, -1},
	}); err == nil {
		t.Error("out-of-range null state accepted")
	}
}

func TestHasRecoveryNotification(t *testing.T) {
	// Perfect monitor: observations never straddle the Sφ boundary.
	perfect := twoServer(t, 1.0, 0)
	got, err := HasRecoveryNotification(perfect, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("perfect monitor: want recovery notification")
	}
	// Imperfect coverage: obs-clear is emitted both from null and from fault
	// states, so an all-clear does not certify recovery.
	noisy := twoServer(t, 0.9, 0)
	got, err = HasRecoveryNotification(noisy, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("noisy monitor: want no recovery notification")
	}
	// False positives alone also break notification.
	fp := twoServer(t, 1.0, 0.05)
	got, err = HasRecoveryNotification(fp, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("false-positive monitor: want no recovery notification")
	}
	if _, err := HasRecoveryNotification(perfect, []int{42}); err == nil {
		t.Error("out-of-range state accepted")
	}
}

func TestSortedStates(t *testing.T) {
	got := SortedStates([]int{3, 1, 3, 2, 1})
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("SortedStates = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedStates = %v, want %v", got, want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := twoServer(t, 0.9, 0.05)
	data, err := MarshalModel(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumStates() != p.NumStates() || q.NumActions() != p.NumActions() || q.NumObservations() != p.NumObservations() {
		t.Fatalf("round-trip shape mismatch")
	}
	for a := 0; a < p.NumActions(); a++ {
		for s := 0; s < p.NumStates(); s++ {
			for c := 0; c < p.NumStates(); c++ {
				if !almostEqual(p.M.Trans[a].At(s, c), q.M.Trans[a].At(s, c), 1e-12) {
					t.Fatalf("transition (%d,%d,%d) mismatch", a, s, c)
				}
			}
			for o := 0; o < p.NumObservations(); o++ {
				if !almostEqual(p.Obs[a].At(s, o), q.Obs[a].At(s, o), 1e-12) {
					t.Fatalf("observation (%d,%d,%d) mismatch", a, s, o)
				}
			}
			if !almostEqual(p.M.Reward[a][s], q.M.Reward[a][s], 1e-12) {
				t.Fatalf("reward (%d,%d) mismatch", a, s)
			}
		}
	}
}

func TestUnmarshalModelErrors(t *testing.T) {
	if _, err := UnmarshalModel([]byte("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	bad := `{"states":["s"],"actions":["go"],"observations":["o"],
		"transitions":[{"action":"zap","from":"s","to":"s","prob":1}],
		"observationProbs":[{"action":"go","state":"s","obs":"o","prob":1}],
		"rewards":[]}`
	if _, err := UnmarshalModel([]byte(bad)); err == nil {
		t.Error("unknown action name accepted")
	}
	badState := `{"states":["s"],"actions":["go"],"observations":["o"],
		"transitions":[{"action":"go","from":"mystery","to":"s","prob":1}],
		"observationProbs":[{"action":"go","state":"s","obs":"o","prob":1}],
		"rewards":[]}`
	if _, err := UnmarshalModel([]byte(badState)); err == nil {
		t.Error("unknown state name accepted")
	}
	badObs := `{"states":["s"],"actions":["go"],"observations":["o"],
		"transitions":[{"action":"go","from":"s","to":"s","prob":1}],
		"observationProbs":[{"action":"go","state":"s","obs":"phantom","prob":1}],
		"rewards":[]}`
	if _, err := UnmarshalModel([]byte(badObs)); err == nil {
		t.Error("unknown observation name accepted")
	}
}
