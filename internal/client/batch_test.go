package client

import (
	"net/http/httptest"
	"reflect"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/server"
	"bpomdp/internal/sim"
	"bpomdp/internal/stats"
)

// statsAcc zeroes the wall-clock-derived AlgoTimeMs accumulator before
// bit-for-bit campaign comparison.
type statsAcc = stats.Accumulator

// batchHarness is harness plus the batch-decide endpoint, returning the
// Prepared so tests can build twin local controllers.
func batchHarness(t *testing.T) (*Client, *core.Prepared, *core.RecoveryModel) {
	t.Helper()
	prep, rm := twoServerPrep(t)
	srv, err := server.New(server.Config{
		Model:         prep.Model,
		NewController: boundedFactory(prep),
		NewBatchDecider: func() (controller.BatchDecider, error) {
			return prep.NewController(core.ControllerConfig{Depth: 1})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	c, err := New(hs.URL, hs.Client())
	if err != nil {
		t.Fatal(err)
	}
	return c, prep, rm
}

// TestClientDecideBatchRoundTrip: remote batch decisions equal a twin local
// controller's, through JSON and back.
func TestClientDecideBatchRoundTrip(t *testing.T) {
	c, prep, _ := batchHarness(t)
	n := prep.Model.NumStates()
	stream := rng.New(37)
	beliefs := make([]pomdp.Belief, 7)
	for i := range beliefs {
		pi := make(pomdp.Belief, n)
		sum := 0.0
		for s := range pi {
			pi[s] = stream.Float64()
			sum += pi[s]
		}
		for s := range pi {
			pi[s] /= sum
		}
		beliefs[i] = pi
	}
	got, err := c.DecideBatch(beliefs)
	if err != nil {
		t.Fatal(err)
	}

	local, err := prep.NewController(core.ControllerConfig{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]controller.Decision, len(beliefs))
	if err := local.DecideBatch(beliefs, want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("remote batch decisions diverge from local:\nremote: %+v\nlocal:  %+v", got, want)
	}

	if _, err := c.DecideBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

// TestRemoteBatchedCampaign drives the campaign engine's batched stepping
// mode through the remote daemon: the BatchDecider adapter (with the
// transformed model attached for the belief filters) must reproduce the
// local batched campaign exactly — the endpoint is stateless and the local
// and remote deciders share the same bootstrapped bound.
func TestRemoteBatchedCampaign(t *testing.T) {
	c, prep, rm := batchHarness(t)
	runner, err := sim.NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := prep.InitialBelief()
	if err != nil {
		t.Fatal(err)
	}
	faults := []int{1, 2}
	const episodes = 24

	localCtrl, err := prep.NewController(core.ControllerConfig{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	local, err := runner.RunCampaignOpts(localCtrl, initial, faults, episodes, rng.New(47), sim.CampaignOptions{
		Workers: 1, BatchSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := runner.RunCampaignOpts(nil, initial, faults, episodes, rng.New(47), sim.CampaignOptions{
		Workers: 1, BatchSize: 8,
		BatchDecider: c.BatchDecider().WithModel(prep.Model),
	})
	if err != nil {
		t.Fatal(err)
	}
	local.Name, remote.Name = "", ""
	local.AlgoTimeMs, remote.AlgoTimeMs = statsAcc{}, statsAcc{}
	if !reflect.DeepEqual(local, remote) {
		t.Errorf("remote batched campaign diverges from local:\nlocal:  %+v\nremote: %+v", local, remote)
	}
}
