package client

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"time"
)

// DefaultRetryBudget is the default cumulative-backoff budget per call. It
// is exported because the server derives a safety floor from it: a terminal
// tombstone must out-live the longest a client could still be retrying its
// final GET, so recoverd refuses tombstone TTLs below the configured client
// retry budget (see the -tombstone-ttl / -client-retry-budget flags).
const DefaultRetryBudget = 15 * time.Second

// RetryPolicy configures the client's retry loop: capped exponential
// backoff with full jitter, a per-call retry budget, and a per-attempt
// timeout. The zero value means defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per call, including the
	// first (0 means 8; 1 disables retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (0 means 25ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (0 means 1s).
	MaxDelay time.Duration
	// Budget caps the cumulative backoff sleep per call; once spent, the
	// last error is returned even if attempts remain (0 means 15s).
	Budget time.Duration
	// PerTryTimeout bounds each attempt via context.Context (0 means 10s).
	PerTryTimeout time.Duration

	// Rand returns a uniform value in [0,1) for jitter; nil means
	// math/rand/v2. Injectable for deterministic tests.
	Rand func() float64
	// Sleep replaces time.Sleep in tests.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is the policy used when none is configured.
func DefaultRetryPolicy() RetryPolicy { return RetryPolicy{}.withDefaults() }

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 8
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = time.Second
	}
	if p.Budget == 0 {
		p.Budget = DefaultRetryBudget
	}
	if p.PerTryTimeout == 0 {
		p.PerTryTimeout = 10 * time.Second
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// backoff returns the sleep before retry number attempt (attempt 0 is the
// first retry): a uniform draw from [0, min(MaxDelay, BaseDelay·2^attempt)),
// i.e. capped exponential backoff with full jitter.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	ceil := p.MaxDelay
	// BaseDelay << attempt, saturating instead of overflowing.
	if attempt < 62 {
		if d := p.BaseDelay << uint(attempt); d < ceil && d > 0 {
			ceil = d
		}
	}
	if ceil <= 0 {
		return 0
	}
	return time.Duration(p.Rand() * float64(ceil))
}

// idempotency classifies how aggressively a request may be retried.
type idempotency int

const (
	// idemSafe marks requests that are safe to retry after any failure:
	// GETs, DELETEs, and POSTs carrying a dedupe key the server honours
	// (clientKey on starts, stepIndex on observations).
	idemSafe idempotency = iota
	// idemConnOnly marks non-idempotent requests, retried only when the
	// connection could not be established at all (the server never saw the
	// request) or the server explicitly refused it with 429.
	idemConnOnly
)

// statusError is an HTTP-level failure, preserving the code for retry
// classification and any Retry-After hint the server sent.
type statusError struct {
	method, path string
	code         int
	message      string
	retryAfter   time.Duration
}

func (e *statusError) Error() string {
	if e.message != "" {
		return fmt.Sprintf("client: %s %s: status %d: %s", e.method, e.path, e.code, e.message)
	}
	return fmt.Sprintf("client: %s %s: status %d", e.method, e.path, e.code)
}

// RetryExhaustedError reports a call that ran out of retries: every attempt
// failed, or the cumulative backoff budget was spent first. It carries the
// retry loop's full story — attempts made, the HTTP status behind the last
// failure (0 for transport-level errors such as a refused connection), and
// wall-clock time burned — so callers can distinguish "the server keeps
// saying no" from "nobody is answering" without parsing error strings. It
// unwraps to the last attempt's error.
type RetryExhaustedError struct {
	// Method and Path identify the call.
	Method, Path string
	// Attempts is how many attempts were made before giving up.
	Attempts int
	// LastStatus is the HTTP status of the last failure, 0 when the failure
	// never produced a response (dial refused, timeout, reset).
	LastStatus int
	// Elapsed is wall-clock time from the first attempt to giving up.
	Elapsed time.Duration
	// BudgetExhausted is true when the backoff budget ran out with attempts
	// to spare; Budget is the configured cap in that case.
	BudgetExhausted bool
	Budget          time.Duration
	// Err is the last attempt's error.
	Err error
}

func (e *RetryExhaustedError) Error() string {
	if e.BudgetExhausted {
		return fmt.Sprintf("client: retry budget %v exhausted after %d attempts: %v", e.Budget, e.Attempts, e.Err)
	}
	return fmt.Sprintf("client: %d attempts failed: %v", e.Attempts, e.Err)
}

func (e *RetryExhaustedError) Unwrap() error { return e.Err }

// StatusCode extracts the HTTP status behind err, or 0 for transport-level
// failures.
func StatusCode(err error) int {
	var se *statusError
	if errors.As(err, &se) {
		return se.code
	}
	return 0
}

// retryable decides whether err warrants another attempt under the given
// idempotency class, and any server-mandated delay before it.
func retryable(err error, idem idempotency) (bool, time.Duration) {
	if err == nil {
		return false, 0
	}
	var se *statusError
	if errors.As(err, &se) {
		switch {
		case se.code == http.StatusTooManyRequests:
			// The server refused before doing any work; always safe.
			return true, se.retryAfter
		case se.code >= 500:
			return idem == idemSafe, se.retryAfter
		default:
			return false, 0
		}
	}
	if idem == idemSafe {
		// Any transport error: timeout, reset, refused — the request is
		// safe to re-send.
		return true, 0
	}
	return isConnError(err), 0
}

// isConnError reports whether err happened before the request could have
// reached the server (dial failure), making even non-idempotent requests
// safe to retry.
func isConnError(err error) bool {
	var op *net.OpError
	if errors.As(err, &op) {
		return op.Op == "dial"
	}
	return false
}

func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
