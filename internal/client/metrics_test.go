package client

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bpomdp/internal/obs"
)

// TestWithMetricsCountsAttempts: an instrumented client must account every
// attempt — a call that fails once and succeeds on retry is two requests,
// one retry, one error, and two latency observations.
func TestWithMetricsCountsAttempts(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if hits.Add(1) == 1 {
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"episodeId":3}`)
	}))
	defer hs.Close()

	reg := obs.NewRegistry()
	c, err := New(hs.URL, hs.Client(),
		WithMetrics(reg),
		WithRetryPolicy(RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   time.Microsecond,
			MaxDelay:    time.Microsecond,
			Sleep:       func(time.Duration) {},
		}))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := c.StartEpisode()
	if err != nil {
		t.Fatal(err)
	}
	if ep.ID() != 3 {
		t.Errorf("episode id %d", ep.ID())
	}

	g := reg.Gather()
	want := map[string]float64{
		"recoverd_client_requests_total":                 2,
		"recoverd_client_retries_total":                  1,
		"recoverd_client_errors_total":                   1,
		"recoverd_client_request_duration_seconds_count": 2,
	}
	for series, v := range want {
		if g[series] != v {
			t.Errorf("%s = %v, want %v", series, g[series], v)
		}
	}
}

// TestWithMetricsNilRegistryIsNoOp: WithMetrics(nil) must leave the client
// uninstrumented and fully functional.
func TestWithMetricsNilRegistryIsNoOp(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"episodeId":1}`)
	}))
	defer hs.Close()

	c, err := New(hs.URL, hs.Client(), WithMetrics(nil))
	if err != nil {
		t.Fatal(err)
	}
	if c.metrics != nil {
		t.Fatal("nil registry installed metrics")
	}
	if _, err := c.StartEpisode(); err != nil {
		t.Fatal(err)
	}
}
