package client

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/server"
	"bpomdp/internal/sim"
)

// twoServerPrep prepares the two-server recovery model with a bootstrapped
// bound set shared by every controller the tests build.
func twoServerPrep(t *testing.T) (*core.Prepared, *core.RecoveryModel) {
	t.Helper()
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rm := &core.RecoveryModel{
		POMDP:           ts.Model,
		NullStates:      ts.NullStates,
		RateRewards:     ts.RateRewards,
		Durations:       []float64{1, 1, 0},
		MonitorAction:   ts.ActionObserve,
		MonitorDuration: 0.1,
	}
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 1, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	return prep, rm
}

func boundedFactory(prep *core.Prepared) server.Factory {
	return func() (controller.Controller, pomdp.Belief, error) {
		ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1})
		if err != nil {
			return nil, nil, err
		}
		initial, err := prep.InitialBelief()
		return ctrl, initial, err
	}
}

// harness spins up an in-process recovery service over the two-server model
// and returns a client plus the recovery model for simulation.
func harness(t *testing.T) (*Client, *core.RecoveryModel) {
	t.Helper()
	prep, rm := twoServerPrep(t)
	srv, err := server.New(server.Config{
		Model:         prep.Model,
		NewController: boundedFactory(prep),
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	c, err := New(hs.URL, hs.Client())
	if err != nil {
		t.Fatal(err)
	}
	return c, rm
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", nil); err == nil {
		t.Error("empty base URL accepted")
	}
}

func TestHealthyAndModel(t *testing.T) {
	c, _ := harness(t)
	if err := c.Healthy(); err != nil {
		t.Fatal(err)
	}
	m, err := c.Model()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.States) != 4 || len(m.Actions) != 4 {
		t.Errorf("model summary %d states %d actions", len(m.States), len(m.Actions))
	}
	if m.States[0] != "null" || m.Actions[3] != pomdp.TerminateActionName {
		t.Errorf("model names: %v / %v", m.States, m.Actions)
	}
}

func TestEpisodeLifecycle(t *testing.T) {
	c, _ := harness(t)
	ep, err := c.StartEpisode()
	if err != nil {
		t.Fatal(err)
	}
	if ep.ID() == 0 {
		t.Error("zero episode id")
	}
	if err := ep.Reset(nil); err != nil {
		t.Errorf("same-episode Reset should be a no-op: %v", err)
	}
	b := ep.Belief()
	if !b.IsDistribution() {
		t.Errorf("remote belief %v", b)
	}
	d, err := ep.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if d.Terminate {
		t.Fatal("terminated immediately from the uniform prior")
	}
	if err := ep.ObserveNamed("observe", "obs-a-failed"); err != nil {
		t.Fatal(err)
	}
	if err := ep.Abandon(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Reset(nil); err == nil {
		t.Error("Reset after Abandon accepted")
	}
	if _, err := ep.Decide(); err == nil {
		t.Error("decision on abandoned episode accepted")
	}
}

// TestSimulatorDrivesRemoteDaemon is the headline integration test: the
// fault-injection simulator runs entire recovery episodes against the HTTP
// service through the client's Controller implementation — the exact loop a
// production deployment would run, minus the network being loopback.
func TestSimulatorDrivesRemoteDaemon(t *testing.T) {
	c, rm := harness(t)
	runner, err := sim.NewRunner(rm, 200)
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(17)
	for i := 0; i < 5; i++ {
		ep, err := c.StartEpisode()
		if err != nil {
			t.Fatal(err)
		}
		stream := root.SplitN("ep", i)
		fault := 1 + stream.IntN(2)
		res, err := runner.RunEpisode(ep, nil, fault, stream)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Recovered {
			t.Errorf("episode %d: remote controller terminated before recovery", i)
		}
		if res.MonitorCalls < 1 || res.Cost <= 0 {
			t.Errorf("episode %d: implausible metrics %+v", i, res)
		}
	}
}

func TestObserveImpossibleObservation(t *testing.T) {
	c, _ := harness(t)
	ep, err := c.StartEpisode()
	if err != nil {
		t.Fatal(err)
	}
	// The terminated observation can never follow an observe action from
	// the initial belief (no mass on s_T).
	if err := ep.ObserveNamed("observe", pomdp.TerminatedObsName); err == nil {
		t.Error("impossible observation accepted")
	}
}

// TestServerErrorMessageSurfaced checks that HTTP failures carry the
// server's JSON error message, not just a bare status code.
func TestServerErrorMessageSurfaced(t *testing.T) {
	c, _ := harness(t)
	ep, err := c.StartEpisode()
	if err != nil {
		t.Fatal(err)
	}
	err = ep.ObserveNamed("launch-missiles", "obs-clear")
	if err == nil {
		t.Fatal("unknown action accepted")
	}
	if !strings.Contains(err.Error(), "unknown action") {
		t.Errorf("error %v lost the server's message", err)
	}
	if StatusCode(err) != http.StatusBadRequest {
		t.Errorf("StatusCode = %d", StatusCode(err))
	}
}

// TestNonJSONErrorBodySurfaced checks the fallback path: a non-JSON error
// body is drained, closed, and surfaced as text.
func TestNonJSONErrorBodySurfaced(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "short and stout", http.StatusTeapot)
	}))
	defer hs.Close()
	c, err := New(hs.URL, hs.Client())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Model()
	if err == nil {
		t.Fatal("teapot accepted")
	}
	if !strings.Contains(err.Error(), "short and stout") || !strings.Contains(err.Error(), "418") {
		t.Errorf("error %v lost the body or status", err)
	}
}

// TestCrashRestartIdenticalActionSequence is the crash-restart acceptance
// test: an episode that loses its daemon mid-recovery finishes — through a
// checkpoint-restored server — with the exact action sequence an
// uninterrupted, checkpoint-free run produces.
func TestCrashRestartIdenticalActionSequence(t *testing.T) {
	prep, _ := twoServerPrep(t)
	sc := pomdp.NewScratch(prep.Model)
	// Deterministic environment: the observation after each action is the
	// first possible successor observation under the decider's own belief.
	nextObs := func(b pomdp.Belief, action int) int {
		t.Helper()
		succs := prep.Model.Successors(sc, b, action)
		if len(succs) == 0 {
			t.Fatalf("no successor observations for action %d", action)
		}
		return succs[0].Obs
	}

	// Baseline: a local in-process controller, no HTTP anywhere.
	var baseline []int
	{
		ctrl, initial, err := boundedFactory(prep)()
		if err != nil {
			t.Fatal(err)
		}
		if err := ctrl.Reset(initial); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 50; step++ {
			d, err := ctrl.Decide()
			if err != nil {
				t.Fatal(err)
			}
			baseline = append(baseline, d.Action)
			if d.Terminate {
				break
			}
			if err := ctrl.Observe(d.Action, nextObs(ctrl.Belief(), d.Action)); err != nil {
				t.Fatal(err)
			}
		}
	}
	const crashAfter = 2
	if len(baseline) <= crashAfter {
		t.Fatalf("baseline episode too short to crash mid-way: %v", baseline)
	}

	cp, err := server.NewDirCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	newServer := func() *server.Server {
		t.Helper()
		srv, err := server.New(server.Config{
			Model:         prep.Model,
			NewController: boundedFactory(prep),
			Checkpointer:  cp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	srv1 := newServer()
	hs1 := httptest.NewServer(srv1)
	c1, err := New(hs1.URL, hs1.Client())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := c1.StartEpisode()
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for i := 0; i < crashAfter; i++ {
		d, err := ep.Decide()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, d.Action)
		if d.Terminate {
			t.Fatalf("terminated before the crash point: %v", got)
		}
		if err := ep.Observe(d.Action, nextObs(ep.Belief(), d.Action)); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the daemon. Nothing was flushed on purpose: the write-ahead
	// per-observation checkpoints must be enough.
	hs1.Close()

	srv2 := newServer()
	if rep := srv2.Restored(); rep.Resumed != 1 || len(rep.Failed) != 0 {
		t.Fatalf("restore report %+v", rep)
	}
	hs2 := httptest.NewServer(srv2)
	defer hs2.Close()
	c2, err := New(hs2.URL, hs2.Client())
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := c2.Resume(ep.ID())
	if err != nil {
		t.Fatal(err)
	}
	if ep2.Steps() != crashAfter {
		t.Fatalf("resumed at step %d, want %d", ep2.Steps(), crashAfter)
	}
	for step := crashAfter; step < 50; step++ {
		d, err := ep2.Decide()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, d.Action)
		if d.Terminate {
			break
		}
		if err := ep2.Observe(d.Action, nextObs(ep2.Belief(), d.Action)); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, baseline) {
		t.Errorf("action sequence diverged across crash-restart:\n got %v\nwant %v", got, baseline)
	}
}
