package client

import (
	"net/http/httptest"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/server"
	"bpomdp/internal/sim"
)

// harness spins up an in-process recovery service over the two-server model
// and returns a client plus the recovery model for simulation.
func harness(t *testing.T) (*Client, *core.RecoveryModel) {
	t.Helper()
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rm := &core.RecoveryModel{
		POMDP:           ts.Model,
		NullStates:      ts.NullStates,
		RateRewards:     ts.RateRewards,
		Durations:       []float64{1, 1, 0},
		MonitorAction:   ts.ActionObserve,
		MonitorDuration: 0.1,
	}
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 1, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Model: prep.Model,
		NewController: func() (controller.Controller, pomdp.Belief, error) {
			ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1})
			if err != nil {
				return nil, nil, err
			}
			initial, err := prep.InitialBelief()
			return ctrl, initial, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	c, err := New(hs.URL, hs.Client())
	if err != nil {
		t.Fatal(err)
	}
	return c, rm
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", nil); err == nil {
		t.Error("empty base URL accepted")
	}
}

func TestHealthyAndModel(t *testing.T) {
	c, _ := harness(t)
	if err := c.Healthy(); err != nil {
		t.Fatal(err)
	}
	m, err := c.Model()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.States) != 4 || len(m.Actions) != 4 {
		t.Errorf("model summary %d states %d actions", len(m.States), len(m.Actions))
	}
	if m.States[0] != "null" || m.Actions[3] != pomdp.TerminateActionName {
		t.Errorf("model names: %v / %v", m.States, m.Actions)
	}
}

func TestEpisodeLifecycle(t *testing.T) {
	c, _ := harness(t)
	ep, err := c.StartEpisode()
	if err != nil {
		t.Fatal(err)
	}
	if ep.ID() == 0 {
		t.Error("zero episode id")
	}
	if err := ep.Reset(nil); err != nil {
		t.Errorf("same-episode Reset should be a no-op: %v", err)
	}
	b := ep.Belief()
	if !b.IsDistribution() {
		t.Errorf("remote belief %v", b)
	}
	d, err := ep.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if d.Terminate {
		t.Fatal("terminated immediately from the uniform prior")
	}
	if err := ep.ObserveNamed("observe", "obs-a-failed"); err != nil {
		t.Fatal(err)
	}
	if err := ep.Abandon(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Reset(nil); err == nil {
		t.Error("Reset after Abandon accepted")
	}
	if _, err := ep.Decide(); err == nil {
		t.Error("decision on abandoned episode accepted")
	}
}

// TestSimulatorDrivesRemoteDaemon is the headline integration test: the
// fault-injection simulator runs entire recovery episodes against the HTTP
// service through the client's Controller implementation — the exact loop a
// production deployment would run, minus the network being loopback.
func TestSimulatorDrivesRemoteDaemon(t *testing.T) {
	c, rm := harness(t)
	runner, err := sim.NewRunner(rm, 200)
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(17)
	for i := 0; i < 5; i++ {
		ep, err := c.StartEpisode()
		if err != nil {
			t.Fatal(err)
		}
		stream := root.SplitN("ep", i)
		fault := 1 + stream.IntN(2)
		res, err := runner.RunEpisode(ep, nil, fault, stream)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Recovered {
			t.Errorf("episode %d: remote controller terminated before recovery", i)
		}
		if res.MonitorCalls < 1 || res.Cost <= 0 {
			t.Errorf("episode %d: implausible metrics %+v", i, res)
		}
	}
}

func TestObserveImpossibleObservation(t *testing.T) {
	c, _ := harness(t)
	ep, err := c.StartEpisode()
	if err != nil {
		t.Fatal(err)
	}
	// The terminated observation can never follow an observe action from
	// the initial belief (no mass on s_T).
	if err := ep.ObserveNamed("observe", pomdp.TerminatedObsName); err == nil {
		t.Error("impossible observation accepted")
	}
}
