// Package client is the typed HTTP client for the recovery service
// (internal/server). Its Episode type implements controller.Controller, so
// anything that can drive a local controller — including the
// fault-injection simulator — can drive a remote recovery daemon
// unchanged.
//
// The client is built for lossy networks: every call runs under a
// RetryPolicy (capped exponential backoff with full jitter, a per-call
// retry budget, and a per-attempt timeout), and every request the client
// issues is idempotent on the wire — episode starts carry a
// client-generated clientKey and observation POSTs carry a stepIndex, both
// of which the server deduplicates — so a retried request never corrupts an
// episode. Requests without a dedupe key are retried only when the
// connection could not be established at all.
package client

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/obs"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/server"
)

// maxErrorBody caps how much of an error response body is read when
// surfacing the server's message.
const maxErrorBody = 64 << 10

// Option customizes a Client.
type Option func(*Client)

// WithRetryPolicy replaces the default retry policy.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Client) { c.policy = p.withDefaults() }
}

// Client talks to one recovery service. It is safe for concurrent use as
// long as the underlying http.Client is.
type Client struct {
	base    string
	http    *http.Client
	policy  RetryPolicy
	metrics *clientMetrics // nil unless WithMetrics was applied

	// spans/spanNode are set by WithSpans; nil spans means untraced.
	spans    *obs.SpanWriter
	spanNode string
}

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:7947"). httpClient nil means http.DefaultClient.
func New(baseURL string, httpClient *http.Client, opts ...Option) (*Client, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("client: empty base URL")
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{
		base:   strings.TrimRight(baseURL, "/"),
		http:   httpClient,
		policy: DefaultRetryPolicy(),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Healthy probes /healthz.
func (c *Client) Healthy() error {
	req, err := http.NewRequest(http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("client: healthz: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: healthz: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: healthz status %d", resp.StatusCode)
	}
	return nil
}

// Model fetches the model summary.
func (c *Client) Model() (server.ModelResponse, error) {
	var out server.ModelResponse
	err := c.do(http.MethodGet, "/v1/model", nil, nil, &out, idemSafe)
	return out, err
}

// StartEpisode opens a recovery episode and returns its driver. The request
// carries a fresh client-generated idempotency key, so a retried start that
// raced a lost response resumes the already-created episode instead of
// leaking a duplicate.
func (c *Client) StartEpisode() (*Episode, error) {
	return c.StartEpisodeKeyed(newClientKey())
}

// StartEpisodeKeyed opens an episode under a caller-chosen idempotency key.
// In a fleet the key doubles as the episode's routing key; restarting the
// same key on any member converges on the one episode (dedupe on the owner,
// redirect elsewhere, adoption after a handoff).
func (c *Client) StartEpisodeKeyed(key string) (*Episode, error) {
	req := server.StartRequest{ClientKey: key}
	var out server.StartResponse
	if err := c.do(http.MethodPost, "/v1/episodes", episodeKeyHeader(key), &req, &out, idemSafe); err != nil {
		return nil, err
	}
	return &Episode{c: c, id: out.EpisodeID, key: key, hdr: episodeKeyHeader(key), open: true}, nil
}

// Resume attaches to an episode already open on the server — typically one
// that survived a daemon restart via checkpointing — synchronizing the
// client's observation step counter with the server's.
func (c *Client) Resume(id uint64) (*Episode, error) {
	var st server.StatusResponse
	if err := c.do(http.MethodGet, fmt.Sprintf("/v1/episodes/%d", id), nil, nil, &st, idemSafe); err != nil {
		return nil, err
	}
	return &Episode{c: c, id: id, steps: st.Steps, open: st.Open}, nil
}

// episodeKeyHeader builds the routing-key header sent with episode-scoped
// requests so fleet members can redirect or adopt instead of 404ing. The key
// doubles as the episode's distributed trace id, so the same header set
// carries X-Bpomdp-Trace — a span-enabled server then traces the episode
// whether or not this client records its own spans. Nil for keyless
// episodes.
func episodeKeyHeader(key string) http.Header {
	if key == "" {
		return nil
	}
	return http.Header{
		server.HeaderEpisodeKey: []string{key},
		server.HeaderTrace:      []string{key},
	}
}

// newClientKey returns a 128-bit random idempotency key.
func newClientKey() string {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; an empty key just
		// downgrades the start to non-idempotent.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// Episode drives one remote recovery episode. It implements
// controller.Controller; Reset is a no-op (the server resets the episode's
// controller when the episode is created).
type Episode struct {
	c     *Client
	id    uint64
	key   string      // clientKey = fleet routing key; "" for keyless episodes
	hdr   http.Header // episode-key header sent with every request, nil if keyless
	steps int
	open  bool
}

var _ controller.Controller = (*Episode)(nil)

// ID returns the server-assigned episode id.
func (e *Episode) ID() uint64 { return e.id }

// Key returns the episode's idempotency/routing key ("" when started
// without one).
func (e *Episode) Key() string { return e.key }

// Steps returns the number of observations the client knows were applied.
func (e *Episode) Steps() int { return e.steps }

// Name implements controller.Controller.
func (e *Episode) Name() string { return fmt.Sprintf("remote-episode-%d", e.id) }

// Reset implements controller.Controller; the remote controller was reset
// at episode creation, so a same-episode Reset is a no-op and re-use after
// termination is an error.
func (e *Episode) Reset(pomdp.Belief) error {
	if !e.open {
		return fmt.Errorf("client: episode %d is closed; start a new one", e.id)
	}
	return nil
}

// Decide implements controller.Controller. The server caches the decision
// for the current step, so a retried call returns the identical decision.
func (e *Episode) Decide() (controller.Decision, error) {
	var out server.DecisionResponse
	if err := e.c.do(http.MethodGet, fmt.Sprintf("/v1/episodes/%d/decision", e.id), e.hdr, nil, &out, idemSafe); err != nil {
		return controller.Decision{}, err
	}
	if out.Terminate {
		e.open = false
	}
	return controller.Decision{Action: out.Action, Terminate: out.Terminate, Value: out.Value}, nil
}

// Observe implements controller.Controller. The request carries the
// client's step index as a dedupe key, so a retransmit after a lost
// response is acknowledged without being applied twice.
func (e *Episode) Observe(action, obs int) error {
	step := e.steps
	req := server.ObservationRequest{Action: action, Observation: obs, StepIndex: &step}
	if err := e.c.do(http.MethodPost, fmt.Sprintf("/v1/episodes/%d/observations", e.id), e.hdr, &req, nil, idemSafe); err != nil {
		return err
	}
	e.steps++
	return nil
}

// ObserveNamed reports an observation by name.
func (e *Episode) ObserveNamed(action, obs string) error {
	step := e.steps
	req := server.ObservationRequest{ActionName: action, ObservationName: obs, StepIndex: &step}
	if err := e.c.do(http.MethodPost, fmt.Sprintf("/v1/episodes/%d/observations", e.id), e.hdr, &req, nil, idemSafe); err != nil {
		return err
	}
	e.steps++
	return nil
}

// Belief implements controller.Controller by fetching the remote belief.
func (e *Episode) Belief() pomdp.Belief {
	var out server.BeliefResponse
	if err := e.c.do(http.MethodGet, fmt.Sprintf("/v1/episodes/%d/belief", e.id), e.hdr, nil, &out, idemSafe); err != nil {
		return nil
	}
	return pomdp.Belief(out.Belief)
}

// Abandon deletes the episode on the server.
func (e *Episode) Abandon() error {
	e.open = false
	return e.c.do(http.MethodDelete, fmt.Sprintf("/v1/episodes/%d", e.id), e.hdr, nil, nil, idemSafe)
}

// do performs one JSON request/response exchange under the retry policy.
// hdr, when non-nil, supplies extra request headers (e.g. the fleet episode
// key). A traced call (WithSpans applied and an episode key on the request)
// is wrapped in a client.call span covering the whole retry loop.
// Exhaustion — attempts or budget — returns a *RetryExhaustedError wrapping
// the last failure.
func (c *Client) do(method, path string, hdr http.Header, in, out any, idem idempotency) error {
	trace := c.traceID(hdr)
	if trace == "" {
		return c.doRetry(method, path, hdr, in, out, idem, "", "")
	}
	op := callOp(method, path)
	t0 := time.Now()
	err := c.doRetry(method, path, hdr, in, out, idem, trace, op)
	rec := &obs.SpanRecord{
		TraceID: trace, Kind: obs.SpanClientCall, Op: op,
		Start: t0.UnixNano(), Duration: time.Since(t0).Nanoseconds(),
	}
	if err != nil {
		rec.Err = err.Error()
		rec.Status = StatusCode(err)
	}
	c.spanEmit(rec)
	return err
}

// doRetry is the retry loop behind do. trace is empty for untraced calls;
// when set, every attempt and backoff sleep emits its own span.
func (c *Client) doRetry(method, path string, hdr http.Header, in, out any, idem idempotency, trace, op string) error {
	var payload []byte
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode %s %s: %w", method, path, err)
		}
		payload = data
	}

	var (
		lastErr error
		slept   time.Duration
		started = time.Now()
	)
	for attempt := 0; attempt < c.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := c.policy.backoff(attempt - 1)
			if hinted := retryDelayHint(lastErr); hinted > delay {
				delay = hinted
			}
			if slept+delay > c.policy.Budget {
				return &RetryExhaustedError{
					Method: method, Path: path,
					Attempts:        attempt,
					LastStatus:      StatusCode(lastErr),
					Elapsed:         time.Since(started),
					BudgetExhausted: true,
					Budget:          c.policy.Budget,
					Err:             lastErr,
				}
			}
			slept += delay
			if trace != "" {
				c.spannedSleep(trace, op, attempt, delay)
			} else {
				c.policy.Sleep(delay)
			}
			if c.metrics != nil {
				c.metrics.retries.Inc()
			}
		}
		var err error
		if trace != "" {
			err = c.spannedAttempt(trace, op, attempt, method, path, hdr, payload, out)
		} else {
			err = c.attempt(method, path, hdr, payload, out)
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if ok, _ := retryable(err, idem); !ok {
			return err
		}
	}
	return &RetryExhaustedError{
		Method: method, Path: path,
		Attempts:   c.policy.MaxAttempts,
		LastStatus: StatusCode(lastErr),
		Elapsed:    time.Since(started),
		Err:        lastErr,
	}
}

// retryDelayHint extracts a server-mandated delay (Retry-After) from err.
func retryDelayHint(err error) time.Duration {
	var se *statusError
	if errors.As(err, &se) {
		return se.retryAfter
	}
	return 0
}

// doOnce performs a single attempt. Every path — success, HTTP error,
// decode failure — drains and closes the response body so the underlying
// connection is reusable and never leaks.
func (c *Client) doOnce(method, path string, hdr http.Header, payload []byte, out any) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.policy.PerTryTimeout)
	defer cancel()
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode >= 400 {
		se := &statusError{
			method:     method,
			path:       path,
			code:       resp.StatusCode,
			retryAfter: parseRetryAfter(resp.Header),
		}
		// Surface the server's JSON error message; fall back to the raw
		// body when it is not the uniform error shape. Either way the body
		// is fully read here and drained+closed by the deferred call.
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		var apiErr server.ErrorResponse
		if jerr := json.Unmarshal(raw, &apiErr); jerr == nil && apiErr.Error != "" {
			se.message = apiErr.Error
		} else if msg := strings.TrimSpace(string(raw)); msg != "" {
			se.message = msg
		}
		return se
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decode %s %s: %w", method, path, err)
		}
	}
	return nil
}

func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	_ = body.Close()
}
