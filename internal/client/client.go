// Package client is the typed HTTP client for the recovery service
// (internal/server). Its Episode type implements controller.Controller, so
// anything that can drive a local controller — including the
// fault-injection simulator — can drive a remote recovery daemon
// unchanged.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"bpomdp/internal/controller"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/server"
)

// Client talks to one recovery service.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:7947"). httpClient nil means http.DefaultClient.
func New(baseURL string, httpClient *http.Client) (*Client, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("client: empty base URL")
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}, nil
}

// Healthy probes /healthz.
func (c *Client) Healthy() error {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return fmt.Errorf("client: healthz: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: healthz status %d", resp.StatusCode)
	}
	return nil
}

// Model fetches the model summary.
func (c *Client) Model() (server.ModelResponse, error) {
	var out server.ModelResponse
	err := c.do(http.MethodGet, "/v1/model", nil, &out)
	return out, err
}

// StartEpisode opens a recovery episode and returns its driver.
func (c *Client) StartEpisode() (*Episode, error) {
	var out server.StartResponse
	if err := c.do(http.MethodPost, "/v1/episodes", nil, &out); err != nil {
		return nil, err
	}
	return &Episode{c: c, id: out.EpisodeID, open: true}, nil
}

// Episode drives one remote recovery episode. It implements
// controller.Controller; Reset is a no-op (the server resets the episode's
// controller when the episode is created).
type Episode struct {
	c    *Client
	id   uint64
	open bool
}

var _ controller.Controller = (*Episode)(nil)

// ID returns the server-assigned episode id.
func (e *Episode) ID() uint64 { return e.id }

// Name implements controller.Controller.
func (e *Episode) Name() string { return fmt.Sprintf("remote-episode-%d", e.id) }

// Reset implements controller.Controller; the remote controller was reset
// at episode creation, so a same-episode Reset is a no-op and re-use after
// termination is an error.
func (e *Episode) Reset(pomdp.Belief) error {
	if !e.open {
		return fmt.Errorf("client: episode %d is closed; start a new one", e.id)
	}
	return nil
}

// Decide implements controller.Controller.
func (e *Episode) Decide() (controller.Decision, error) {
	var out server.DecisionResponse
	if err := e.c.do(http.MethodGet, fmt.Sprintf("/v1/episodes/%d/decision", e.id), nil, &out); err != nil {
		return controller.Decision{}, err
	}
	if out.Terminate {
		e.open = false
	}
	return controller.Decision{Action: out.Action, Terminate: out.Terminate, Value: out.Value}, nil
}

// Observe implements controller.Controller.
func (e *Episode) Observe(action, obs int) error {
	req := server.ObservationRequest{Action: action, Observation: obs}
	return e.c.do(http.MethodPost, fmt.Sprintf("/v1/episodes/%d/observations", e.id), &req, nil)
}

// ObserveNamed reports an observation by name.
func (e *Episode) ObserveNamed(action, obs string) error {
	req := server.ObservationRequest{ActionName: action, ObservationName: obs}
	return e.c.do(http.MethodPost, fmt.Sprintf("/v1/episodes/%d/observations", e.id), &req, nil)
}

// Belief implements controller.Controller by fetching the remote belief.
func (e *Episode) Belief() pomdp.Belief {
	var out server.BeliefResponse
	if err := e.c.do(http.MethodGet, fmt.Sprintf("/v1/episodes/%d/belief", e.id), nil, &out); err != nil {
		return nil
	}
	return pomdp.Belief(out.Belief)
}

// Abandon deletes the episode on the server.
func (e *Episode) Abandon() error {
	e.open = false
	return e.c.do(http.MethodDelete, fmt.Sprintf("/v1/episodes/%d", e.id), nil, nil)
}

// do performs one JSON request/response round trip.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode >= 400 {
		var apiErr server.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Error != "" {
			return fmt.Errorf("client: %s %s: status %d: %s", method, path, resp.StatusCode, apiErr.Error)
		}
		return fmt.Errorf("client: %s %s: status %d", method, path, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decode %s %s: %w", method, path, err)
		}
	}
	return nil
}

func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	_ = body.Close()
}
