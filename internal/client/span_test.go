package client

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bpomdp/internal/obs"
	"bpomdp/internal/server"
)

// traceSleepPolicy retries instantly without real sleeping.
func traceSleepPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Microsecond,
		Sleep:       func(time.Duration) {},
	}
}

// TestWithSpansEmitsCallAttemptBackoff drives one keyed call that fails once
// and succeeds on retry, and checks the span stream tells that exact story:
// one call span containing two attempts separated by one backoff, all keyed
// by the episode key and attributed to the configured node.
func TestWithSpansEmitsCallAttemptBackoff(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get(server.HeaderTrace); got != "ck-span" {
			t.Errorf("%s = %q on the wire, want ck-span", server.HeaderTrace, got)
		}
		if hits.Add(1) == 1 {
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"episodeId":3}`)
	}))
	defer hs.Close()

	var buf bytes.Buffer
	c, err := New(hs.URL, hs.Client(),
		WithSpans(obs.NewSpanWriter(&buf), "driver-1"),
		WithRetryPolicy(traceSleepPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StartEpisodeKeyed("ck-span"); err != nil {
		t.Fatal(err)
	}

	spans, err := obs.DecodeSpans(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[string][]obs.SpanRecord{}
	for _, sp := range spans {
		if sp.TraceID != "ck-span" {
			t.Errorf("span trace %q, want ck-span", sp.TraceID)
		}
		if sp.Node != "driver-1" {
			t.Errorf("span node %q, want driver-1", sp.Node)
		}
		if sp.Op != "start" {
			t.Errorf("span op %q, want start", sp.Op)
		}
		byKind[sp.Kind] = append(byKind[sp.Kind], sp)
	}
	if n := len(byKind[obs.SpanClientCall]); n != 1 {
		t.Fatalf("%d call spans, want 1", n)
	}
	if n := len(byKind[obs.SpanClientAttempt]); n != 2 {
		t.Fatalf("%d attempt spans, want 2", n)
	}
	if n := len(byKind[obs.SpanClientBackoff]); n != 1 {
		t.Fatalf("%d backoff spans, want 1", n)
	}

	first, second := byKind[obs.SpanClientAttempt][0], byKind[obs.SpanClientAttempt][1]
	if first.Attempt != 0 || second.Attempt != 1 {
		t.Errorf("attempt numbering %d, %d; want 0, 1", first.Attempt, second.Attempt)
	}
	if first.Status != http.StatusServiceUnavailable || first.Err == "" {
		t.Errorf("failed attempt span: status %d err %q", first.Status, first.Err)
	}
	if second.Status != 0 || second.Err != "" {
		t.Errorf("successful attempt span: status %d err %q", second.Status, second.Err)
	}
	if got := byKind[obs.SpanClientBackoff][0].Attempt; got != 1 {
		t.Errorf("backoff precedes attempt %d, want 1", got)
	}

	// The call span must contain its attempts.
	call := byKind[obs.SpanClientCall][0]
	if call.Err != "" {
		t.Errorf("call span error %q, want none", call.Err)
	}
	for i, at := range byKind[obs.SpanClientAttempt] {
		if at.Start < call.Start || at.End() > call.End() {
			t.Errorf("attempt %d [%d,%d] outside call [%d,%d]",
				i, at.Start, at.End(), call.Start, call.End())
		}
	}
}

// TestWithSpansKeylessAndDisabled: calls without an episode key have no
// trace id and must emit nothing; a client without WithSpans stays untraced
// entirely.
func TestWithSpansKeylessAndDisabled(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"states":["up"],"actions":["noop"],"observations":["ok"]}`)
	}))
	defer hs.Close()

	var buf bytes.Buffer
	c, err := New(hs.URL, hs.Client(), WithSpans(obs.NewSpanWriter(&buf), ""))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Model(); err != nil { // keyless call
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("keyless call emitted spans: %s", buf.String())
	}

	plain, err := New(hs.URL, hs.Client(), WithSpans(nil, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if plain.spans != nil {
		t.Error("WithSpans(nil, ...) installed a writer")
	}
}
