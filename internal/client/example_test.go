package client_test

import (
	"fmt"
	"log"
	"net/http/httptest"

	"bpomdp/internal/client"
	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/server"
)

// ExampleClient_DecideBatch decides recovery actions for many beliefs in one
// stateless round-trip: the daemon runs a single shared tree expansion over
// the whole batch and no episode state is created, so the request is
// idempotent and retried freely. The same adapter plugs into the simulator's
// batched campaign mode via c.BatchDecider().WithModel(prep.Model).
func ExampleClient_DecideBatch() {
	// A recovery daemon over the paper's two-server model (Fig. 1(a)).
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	rm := &core.RecoveryModel{
		POMDP:           ts.Model,
		NullStates:      ts.NullStates,
		RateRewards:     ts.RateRewards,
		Durations:       []float64{1, 1, 0},
		MonitorAction:   ts.ActionObserve,
		MonitorDuration: 0.1,
	}
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 1, rng.New(3)); err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Model: prep.Model,
		NewController: func() (controller.Controller, pomdp.Belief, error) {
			ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1})
			if err != nil {
				return nil, nil, err
			}
			initial, err := prep.InitialBelief()
			return ctrl, initial, err
		},
		// NewBatchDecider enables POST /v1/decide/batch; deciders are pooled
		// across requests, always with online improvement off.
		NewBatchDecider: func() (controller.BatchDecider, error) {
			return prep.NewController(core.ControllerConfig{Depth: 1})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	c, err := client.New(hs.URL, hs.Client())
	if err != nil {
		log.Fatal(err)
	}

	// One round-trip, one shared expansion: the uncertain initial belief and
	// two point beliefs where the faulty server is known.
	initial, err := prep.InitialBelief()
	if err != nil {
		log.Fatal(err)
	}
	n := prep.Model.NumStates()
	beliefs := []pomdp.Belief{
		initial,
		pomdp.PointBelief(n, ts.StateFaultA),
		pomdp.PointBelief(n, ts.StateFaultB),
	}
	decisions, err := c.DecideBatch(beliefs)
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range decisions {
		fmt.Printf("belief %d: %s\n", i, prep.Model.M.ActionName(d.Action))
	}

	// Output:
	// belief 0: observe
	// belief 1: restart-a
	// belief 2: restart-b
}
