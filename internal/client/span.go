package client

import (
	"net/http"
	"strings"
	"time"

	"bpomdp/internal/obs"
	"bpomdp/internal/server"
)

// WithSpans attaches an episode span writer to the client: every traced call
// (one carrying an episode key) emits client.call / client.attempt /
// client.backoff spans keyed by the episode's trace id, ready to be stitched
// with the servers' span streams by cmd/tracestats. node names this process
// in the emitted spans ("client" when empty). The writer is typically shared
// with other clients of the same process — SpanWriter serializes writes.
// A nil writer leaves the client untraced; an untraced client pays one nil
// check per call.
func WithSpans(sw *obs.SpanWriter, node string) Option {
	return func(c *Client) {
		if sw == nil {
			return
		}
		if node == "" {
			node = "client"
		}
		c.spans = sw
		c.spanNode = node
	}
}

// spanEmit stamps the node and writes rec, best-effort.
func (c *Client) spanEmit(rec *obs.SpanRecord) {
	rec.Node = c.spanNode
	_ = c.spans.Write(rec)
}

// callOp names the logical operation of a client call for span records, from
// the request shape ("start", "decide", "observe", "belief", "delete",
// "status").
func callOp(method, path string) string {
	switch {
	case method == http.MethodPost && path == "/v1/episodes":
		return "start"
	case strings.HasSuffix(path, "/decision"):
		return "decide"
	case strings.HasSuffix(path, "/observations"):
		return "observe"
	case strings.HasSuffix(path, "/belief"):
		return "belief"
	case method == http.MethodDelete:
		return "delete"
	default:
		return "status"
	}
}

// traceID extracts the episode trace id a call will carry on the wire.
// Empty when the call is keyless (nothing to stitch by) or spans are off.
func (c *Client) traceID(hdr http.Header) string {
	if c.spans == nil {
		return ""
	}
	return hdr.Get(server.HeaderTrace)
}

// spannedSleep is the backoff sleep of a traced call: the wait is recorded
// as a client.backoff span so tracestats can attribute it. attempt numbers
// the attempt the sleep precedes.
func (c *Client) spannedSleep(traceID, op string, attempt int, delay time.Duration) {
	t0 := time.Now()
	c.policy.Sleep(delay)
	c.spanEmit(&obs.SpanRecord{
		TraceID: traceID, Kind: obs.SpanClientBackoff, Op: op, Attempt: attempt,
		Start: t0.UnixNano(), Duration: time.Since(t0).Nanoseconds(),
	})
}

// spannedAttempt wraps one instrumented attempt in a client.attempt span.
func (c *Client) spannedAttempt(traceID, op string, attempt int, method, path string, hdr http.Header, payload []byte, out any) error {
	t0 := time.Now()
	err := c.attempt(method, path, hdr, payload, out)
	rec := &obs.SpanRecord{
		TraceID: traceID, Kind: obs.SpanClientAttempt, Op: op, Attempt: attempt,
		Start: t0.UnixNano(), Duration: time.Since(t0).Nanoseconds(),
	}
	if err != nil {
		rec.Status = StatusCode(err)
		rec.Err = err.Error()
	}
	c.spanEmit(rec)
	return err
}
