package client

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/fleet"
	"bpomdp/internal/obs"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/server"
)

// FleetClient talks to a recovery fleet without a coordinator: it computes
// each episode's owner locally from the same hash ring the servers use and
// sends requests straight to the owner. Two self-healing paths cover stale
// views:
//
//   - A member that disagrees (its view is newer or the client's is stale)
//     answers 307 + X-Bpomdp-Owner, which the underlying http.Client follows
//     transparently — requests always land somewhere correct.
//   - When a member stops answering entirely (connection refused, timeouts
//     through the whole retry policy), the client marks it down in its local
//     view, re-routes the episode key to the surviving owner, and re-binds
//     the episode by restarting its key there — the server dedupes or adopts,
//     so the episode continues under its original identity.
//
// The member list and virtual-node count must match the servers' -fleet-peers
// configuration, or client and fleet will disagree about ownership and every
// request will pay a redirect.
type FleetClient struct {
	view *fleet.Membership

	mu      sync.Mutex
	clients map[string]*Client
}

// NewFleetClient builds a client over the fleet's static member list with
// vnodes virtual nodes per member (0 means fleet.DefaultVirtualNodes; must
// match the servers). httpClient nil means http.DefaultClient; opts apply to
// every per-member client.
func NewFleetClient(members []fleet.Member, vnodes int, httpClient *http.Client, opts ...Option) (*FleetClient, error) {
	view, err := fleet.NewMembership(members, vnodes)
	if err != nil {
		return nil, err
	}
	fc := &FleetClient{view: view, clients: make(map[string]*Client, len(members))}
	for _, m := range members {
		c, err := New(m.Addr, httpClient, opts...)
		if err != nil {
			return nil, fmt.Errorf("client: fleet member %q: %w", m.ID, err)
		}
		fc.clients[m.ID] = c
	}
	return fc, nil
}

// View exposes the client's membership view, e.g. for health probes to mark
// members down ahead of the first failed request.
func (fc *FleetClient) View() *fleet.Membership { return fc.view }

func (fc *FleetClient) client(id string) *Client {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.clients[id]
}

func (fc *FleetClient) memberCount() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return len(fc.clients)
}

// syncDown reports every member this client has marked down to the given
// member's admin endpoint, best-effort. Without it a survivor whose own view
// is stale would redirect the client straight back to the dead member; with
// it the survivor flips its view and eagerly adopts the dead member's
// episodes before the client's next request.
func (fc *FleetClient) syncDown(memberID string) {
	c := fc.client(memberID)
	if c == nil {
		return
	}
	for _, m := range fc.view.DownMembers() {
		_ = c.do(http.MethodPost, "/v1/fleet/members/"+url.PathEscape(m.ID)+"/down", nil, nil, nil, idemSafe)
	}
}

// EpisodeLostError reports a failover that could not recover the episode's
// identity: re-starting the key on the new owner produced a brand-new
// episode instead of deduping into the original (no adopted checkpoint, no
// terminal tombstone). Continuing silently would replay the episode from
// scratch under a new id — mid-recovery progress gone without a trace — so
// the client surfaces it instead. The fresh episode is abandoned before the
// error is returned.
type EpisodeLostError struct {
	// Key is the episode's routing key.
	Key string
	// EpisodeID is the lost episode's id; FreshID is the new id the fleet
	// answered with (already abandoned).
	EpisodeID, FreshID uint64
	// Steps is the client-side progress that could not be recovered.
	Steps int
}

func (e *EpisodeLostError) Error() string {
	return fmt.Sprintf("client: episode %d (key %s, %d steps) lost in failover: fleet restarted it as %d",
		e.EpisodeID, e.Key, e.Steps, e.FreshID)
}

// transportExhausted reports an error that means "this member is not
// answering at all": the retry policy ran out without ever seeing an HTTP
// response. HTTP-level failures (the member answered, just unhappily) are
// not grounds for failover.
func transportExhausted(err error) bool {
	var re *RetryExhaustedError
	return errors.As(err, &re) && re.LastStatus == 0
}

// StartEpisode opens an episode on the owner of a fresh routing key,
// failing over to the next surviving owner when a member is unreachable.
func (fc *FleetClient) StartEpisode() (*FleetEpisode, error) {
	key := newClientKey()
	if key == "" {
		return nil, fmt.Errorf("client: could not generate an episode key")
	}
	var lastErr error
	for hop := 0; hop < fc.memberCount(); hop++ {
		owner, ok := fc.view.Owner(key)
		if !ok {
			return nil, fmt.Errorf("client: every fleet member is marked down")
		}
		if hop > 0 {
			fc.syncDown(owner.ID)
		}
		ep, err := fc.client(owner.ID).StartEpisodeKeyed(key)
		if err == nil {
			return &FleetEpisode{fc: fc, key: key, ownerID: owner.ID, ep: ep}, nil
		}
		lastErr = err
		if !transportExhausted(err) {
			return nil, err
		}
		_, _ = fc.view.MarkDown(owner.ID)
	}
	return nil, fmt.Errorf("client: no fleet member accepted the episode: %w", lastErr)
}

// FleetEpisode drives one episode across the fleet. It implements
// controller.Controller like Episode, adding owner failover: when the
// current owner stops answering, the episode re-binds to whoever now owns
// its key and continues — retried steps deduplicate server-side, so the
// handoff has at-most-once effect.
type FleetEpisode struct {
	fc      *FleetClient
	key     string
	ownerID string
	ep      *Episode
}

var _ controller.Controller = (*FleetEpisode)(nil)

// ID returns the server-assigned episode id (stable across failovers while
// the episode's checkpoints survive).
func (e *FleetEpisode) ID() uint64 { return e.ep.ID() }

// Key returns the episode's routing key.
func (e *FleetEpisode) Key() string { return e.key }

// Owner returns the member currently serving the episode.
func (e *FleetEpisode) Owner() string { return e.ownerID }

// Steps returns the client-side count of applied observations.
func (e *FleetEpisode) Steps() int { return e.ep.Steps() }

// Name implements controller.Controller.
func (e *FleetEpisode) Name() string { return e.ep.Name() }

// Reset implements controller.Controller (no-op, as for Episode).
func (e *FleetEpisode) Reset(b pomdp.Belief) error { return e.ep.Reset(b) }

// failover re-routes the episode after its owner stopped answering:
// mark the owner down, restart the key on the new owner (dedupe or adoption
// returns the same episode), re-bind. The client-side step counter carries
// over — it is the dedupe cursor for retransmitted observations. On a traced
// client the whole re-bind is recorded as a client.failover span whose
// Target is the owner the episode moved to.
func (e *FleetEpisode) failover() error {
	c := e.ep.c
	if c.spans == nil {
		return e.rebind()
	}
	t0 := time.Now()
	err := e.rebind()
	rec := &obs.SpanRecord{
		TraceID: e.key, Kind: obs.SpanClientFailover, Target: e.ownerID,
		Start: t0.UnixNano(), Duration: time.Since(t0).Nanoseconds(),
	}
	if err != nil {
		rec.Err = err.Error()
		rec.Target = ""
	}
	c.spanEmit(rec)
	return err
}

// rebind is failover without the span bookkeeping.
func (e *FleetEpisode) rebind() error {
	_, _ = e.fc.view.MarkDown(e.ownerID)
	var lastErr error
	for hop := 0; hop < e.fc.memberCount(); hop++ {
		owner, ok := e.fc.view.Owner(e.key)
		if !ok {
			return fmt.Errorf("client: every fleet member is marked down")
		}
		e.fc.syncDown(owner.ID)
		fresh, err := e.fc.client(owner.ID).StartEpisodeKeyed(e.key)
		if err == nil {
			if fresh.ID() != e.ep.ID() && e.ep.Steps() > 0 {
				// The fleet answered with a brand-new episode: the original's
				// checkpoints (and any terminal tombstone) are gone. Binding
				// to it would silently replay recovery from step zero.
				_ = fresh.Abandon()
				return &EpisodeLostError{Key: e.key, EpisodeID: e.ep.ID(), FreshID: fresh.ID(), Steps: e.ep.Steps()}
			}
			fresh.steps = e.ep.steps
			fresh.open = e.ep.open
			e.ownerID = owner.ID
			e.ep = fresh
			return nil
		}
		lastErr = err
		if !transportExhausted(err) {
			return err
		}
		_, _ = e.fc.view.MarkDown(owner.ID)
	}
	return fmt.Errorf("client: episode %s found no surviving owner: %w", e.key, lastErr)
}

// withFailover runs op against the current binding, failing over and
// retrying when the owner is unreachable. Each failover consumes a hop;
// at most one full sweep of the fleet is attempted.
func (e *FleetEpisode) withFailover(op func() error) error {
	var err error
	for hop := 0; hop <= e.fc.memberCount(); hop++ {
		err = op()
		if err == nil || !transportExhausted(err) {
			return err
		}
		if ferr := e.failover(); ferr != nil {
			return ferr
		}
	}
	return err
}

// Decide implements controller.Controller with owner failover. Decisions are
// cached per step server-side, so a decision retried across a handoff is
// byte-identical.
func (e *FleetEpisode) Decide() (controller.Decision, error) {
	var d controller.Decision
	err := e.withFailover(func() error {
		var derr error
		d, derr = e.ep.Decide()
		return derr
	})
	return d, err
}

// Observe implements controller.Controller with owner failover. The step
// index makes retransmits across the handoff idempotent.
func (e *FleetEpisode) Observe(action, obs int) error {
	return e.withFailover(func() error { return e.ep.Observe(action, obs) })
}

// Belief implements controller.Controller. Unlike Episode.Belief it goes
// through the failover wrapper, so a dead owner re-binds instead of
// silently returning nil.
func (e *FleetEpisode) Belief() pomdp.Belief {
	var out server.BeliefResponse
	err := e.withFailover(func() error {
		return e.ep.c.do(http.MethodGet, fmt.Sprintf("/v1/episodes/%d/belief", e.ep.id), e.ep.hdr, nil, &out, idemSafe)
	})
	if err != nil {
		return nil
	}
	return pomdp.Belief(out.Belief)
}

// Abandon deletes the episode wherever it currently lives.
func (e *FleetEpisode) Abandon() error {
	return e.withFailover(func() error { return e.ep.Abandon() })
}
