package client

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	// With Rand pinned to 0.5, the full-jitter draw is exactly half the
	// exponential ceiling, so the whole schedule is checkable.
	p := RetryPolicy{
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  80 * time.Millisecond,
		Rand:      func() float64 { return 0.5 },
	}.withDefaults()
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 5 * time.Millisecond},   // ceil = base
		{1, 10 * time.Millisecond},  // ceil = 2·base
		{2, 20 * time.Millisecond},  // ceil = 4·base
		{3, 40 * time.Millisecond},  // ceil = cap (80ms)
		{10, 40 * time.Millisecond}, // still capped
		{70, 40 * time.Millisecond}, // shift would overflow; capped
	}
	for _, tc := range cases {
		if got := p.backoff(tc.attempt); got != tc.want {
			t.Errorf("backoff(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
}

func TestBackoffJitterRange(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 64 * time.Millisecond}.withDefaults()
	for attempt := 0; attempt < 10; attempt++ {
		ceil := time.Duration(1<<uint(attempt)) * time.Millisecond
		if ceil > p.MaxDelay {
			ceil = p.MaxDelay
		}
		for i := 0; i < 200; i++ {
			d := p.backoff(attempt)
			if d < 0 || d >= ceil {
				t.Fatalf("backoff(%d) = %v outside [0, %v)", attempt, d, ceil)
			}
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	dial := &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("refused")}
	read := &net.OpError{Op: "read", Net: "tcp", Err: errors.New("reset")}
	cases := []struct {
		name string
		err  error
		idem idempotency
		want bool
	}{
		{"nil", nil, idemSafe, false},
		{"transport-idem", fmt.Errorf("wrap: %w", read), idemSafe, true},
		{"transport-connonly", fmt.Errorf("wrap: %w", read), idemConnOnly, false},
		{"dial-connonly", fmt.Errorf("wrap: %w", dial), idemConnOnly, true},
		{"429-connonly", &statusError{code: http.StatusTooManyRequests}, idemConnOnly, true},
		{"500-idem", &statusError{code: http.StatusInternalServerError}, idemSafe, true},
		{"503-idem", &statusError{code: http.StatusServiceUnavailable}, idemSafe, true},
		{"500-connonly", &statusError{code: http.StatusInternalServerError}, idemConnOnly, false},
		{"404-idem", &statusError{code: http.StatusNotFound}, idemSafe, false},
		{"409-idem", &statusError{code: http.StatusConflict}, idemSafe, false},
		{"422-idem", &statusError{code: http.StatusUnprocessableEntity}, idemSafe, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, _ := retryable(tc.err, tc.idem)
			if got != tc.want {
				t.Errorf("retryable(%v, %v) = %v, want %v", tc.err, tc.idem, got, tc.want)
			}
		})
	}
}

func TestRetryAfterHonoured(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"episodeId":7}`)
	}))
	defer hs.Close()

	var slept []time.Duration
	c, err := New(hs.URL, hs.Client(), WithRetryPolicy(RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Microsecond,
		Budget:      5 * time.Second,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := c.StartEpisode()
	if err != nil {
		t.Fatal(err)
	}
	if ep.ID() != 7 {
		t.Errorf("episode id %d", ep.ID())
	}
	if len(slept) != 1 || slept[0] != time.Second {
		t.Errorf("sleeps %v, want [1s] from Retry-After", slept)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"kaboom"}`, http.StatusInternalServerError)
	}))
	defer hs.Close()

	// Each backoff is exactly 8ms (Rand pinned to 1 is illegal; pin 0.5 of
	// a 16ms ceiling); a 20ms budget admits two retries, not three.
	var slept time.Duration
	c, err := New(hs.URL, hs.Client(), WithRetryPolicy(RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   16 * time.Millisecond,
		MaxDelay:    16 * time.Millisecond,
		Budget:      20 * time.Millisecond,
		Rand:        func() float64 { return 0.5 },
		Sleep:       func(d time.Duration) { slept += d },
	}))
	if err != nil {
		t.Fatal(err)
	}
	err = c.do(http.MethodGet, "/v1/model", nil, nil, nil, idemSafe)
	if err == nil {
		t.Fatal("budget-limited call succeeded")
	}
	if !strings.Contains(err.Error(), "retry budget") {
		t.Errorf("error %v does not mention the budget", err)
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("error %v lost the server message", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (first + two affordable retries)", got)
	}
	if slept != 16*time.Millisecond {
		t.Errorf("total sleep %v, want 16ms", slept)
	}
}

func TestNonIdempotentNotRetriedOnHTTPError(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"flaky"}`, http.StatusInternalServerError)
	}))
	defer hs.Close()
	c, err := New(hs.URL, hs.Client(), WithRetryPolicy(RetryPolicy{
		MaxAttempts: 5,
		Sleep:       func(time.Duration) {},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.do(http.MethodPost, "/x", nil, nil, nil, idemConnOnly); err == nil {
		t.Fatal("500 surfaced as success")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("non-idempotent POST attempted %d times, want 1", got)
	}
}

func TestParseRetryAfter(t *testing.T) {
	hdr := func(v string) http.Header {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return h
	}
	futureDate := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	pastDate := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	cases := []struct {
		name     string
		value    string
		min, max time.Duration
	}{
		{"absent", "", 0, 0},
		{"zero-seconds", "0", 0, 0},
		{"integer-seconds", "7", 7 * time.Second, 7 * time.Second},
		// Negative integers fail the secs >= 0 check and then fail HTTP-date
		// parsing: treated as no hint, not a negative sleep.
		{"negative-seconds", "-3", 0, 0},
		// HTTP-date form yields roughly the remaining wall-clock delta.
		{"http-date-future", futureDate, 85 * time.Second, 91 * time.Second},
		// A date in the past means "retry now", never a negative duration.
		{"http-date-past", pastDate, 0, 0},
		{"garbage", "soon-ish", 0, 0},
		{"float-seconds", "1.5", 0, 0},
		{"huge-garbage", strings.Repeat("9", 40), 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := parseRetryAfter(hdr(tc.value))
			if got < tc.min || got > tc.max {
				t.Errorf("parseRetryAfter(%q) = %v, want in [%v, %v]", tc.value, got, tc.min, tc.max)
			}
		})
	}
}

// TestRetryExhaustedErrorFields checks the structured error both exhaustion
// paths return: callers get attempts, last HTTP status, and elapsed time as
// fields, without parsing the message.
func TestRetryExhaustedErrorFields(t *testing.T) {
	t.Run("attempts-exhausted", func(t *testing.T) {
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
		}))
		defer hs.Close()
		c, err := New(hs.URL, hs.Client(), WithRetryPolicy(RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   time.Microsecond,
			MaxDelay:    time.Microsecond,
			Sleep:       func(time.Duration) {},
		}))
		if err != nil {
			t.Fatal(err)
		}
		err = c.do(http.MethodGet, "/v1/model", nil, nil, nil, idemSafe)
		var re *RetryExhaustedError
		if !errors.As(err, &re) {
			t.Fatalf("error %T is not a *RetryExhaustedError", err)
		}
		if re.Attempts != 3 || re.LastStatus != http.StatusServiceUnavailable || re.BudgetExhausted {
			t.Errorf("fields %+v, want Attempts=3 LastStatus=503 BudgetExhausted=false", re)
		}
		if re.Method != http.MethodGet || re.Path != "/v1/model" {
			t.Errorf("call identity %s %s", re.Method, re.Path)
		}
		if re.Elapsed <= 0 {
			t.Errorf("Elapsed = %v", re.Elapsed)
		}
		// Unwrap reaches the last attempt's statusError.
		if StatusCode(err) != http.StatusServiceUnavailable {
			t.Errorf("StatusCode through wrap = %d", StatusCode(err))
		}
	})
	t.Run("budget-exhausted", func(t *testing.T) {
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, `{"error":"kaboom"}`, http.StatusInternalServerError)
		}))
		defer hs.Close()
		c, err := New(hs.URL, hs.Client(), WithRetryPolicy(RetryPolicy{
			MaxAttempts: 10,
			BaseDelay:   16 * time.Millisecond,
			MaxDelay:    16 * time.Millisecond,
			Budget:      20 * time.Millisecond,
			Rand:        func() float64 { return 0.5 },
			Sleep:       func(time.Duration) {},
		}))
		if err != nil {
			t.Fatal(err)
		}
		err = c.do(http.MethodGet, "/v1/model", nil, nil, nil, idemSafe)
		var re *RetryExhaustedError
		if !errors.As(err, &re) {
			t.Fatalf("error %T is not a *RetryExhaustedError", err)
		}
		if !re.BudgetExhausted || re.Budget != 20*time.Millisecond {
			t.Errorf("budget fields %+v", re)
		}
		if re.Attempts != 3 || re.LastStatus != http.StatusInternalServerError {
			t.Errorf("fields %+v, want Attempts=3 LastStatus=500", re)
		}
	})
	t.Run("transport-level", func(t *testing.T) {
		// A listener that is immediately closed: connection refused on every
		// attempt, so LastStatus stays 0 — the fleet failover signal.
		hs := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
		url := hs.URL
		hs.Close()
		c, err := New(url, nil, WithRetryPolicy(RetryPolicy{
			MaxAttempts: 2,
			BaseDelay:   time.Microsecond,
			MaxDelay:    time.Microsecond,
			Sleep:       func(time.Duration) {},
		}))
		if err != nil {
			t.Fatal(err)
		}
		err = c.do(http.MethodGet, "/v1/model", nil, nil, nil, idemSafe)
		var re *RetryExhaustedError
		if !errors.As(err, &re) {
			t.Fatalf("error %T is not a *RetryExhaustedError", err)
		}
		if re.LastStatus != 0 || re.Attempts != 2 {
			t.Errorf("fields %+v, want LastStatus=0 Attempts=2", re)
		}
		if !transportExhausted(err) {
			t.Error("transportExhausted = false for a refused connection")
		}
	})
}

func TestMaxAttemptsExhaustion(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer hs.Close()
	c, err := New(hs.URL, hs.Client(), WithRetryPolicy(RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Microsecond,
		Sleep:       func(time.Duration) {},
	}))
	if err != nil {
		t.Fatal(err)
	}
	err = c.do(http.MethodGet, "/v1/model", nil, nil, nil, idemSafe)
	if err == nil {
		t.Fatal("always-503 call succeeded")
	}
	if !strings.Contains(err.Error(), "4 attempts") {
		t.Errorf("error %v does not report attempts", err)
	}
	if got := hits.Load(); got != 4 {
		t.Errorf("attempts = %d, want 4", got)
	}
	if StatusCode(err) != http.StatusServiceUnavailable {
		t.Errorf("StatusCode(err) = %d", StatusCode(err))
	}
}
