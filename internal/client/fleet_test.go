package client

import (
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bpomdp/internal/core"
	"bpomdp/internal/fleet"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/server"
)

// fleetTestNode is one fleet member under test: a server with its own
// membership view behind a real listener.
type fleetTestNode struct {
	id string
	hs *httptest.Server
	sv *server.Server
}

// snappyPolicy exhausts retries against a dead member in microseconds so
// failover tests don't wait out the production backoff schedule.
func snappyPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:   2,
		BaseDelay:     time.Microsecond,
		MaxDelay:      time.Microsecond,
		Budget:        time.Second,
		PerTryTimeout: 5 * time.Second,
		Sleep:         func(time.Duration) {},
	}
}

// newClientFleet builds a two-member fleet ("a", "b") with per-member stores
// under a shared root and returns a FleetClient over it.
func newClientFleet(t *testing.T) (map[string]*fleetTestNode, *FleetClient, *core.Prepared) {
	t.Helper()
	return newClientFleetHandoff(t, true)
}

// newClientFleetHandoff is newClientFleet with handoff made optional: with
// handoff false the members cannot read each other's stores (no StoreFor),
// so a dead member's episodes are unrecoverable — the setup for testing how
// the client reports a genuinely lost episode.
func newClientFleetHandoff(t *testing.T, handoff bool) (map[string]*fleetTestNode, *FleetClient, *core.Prepared) {
	t.Helper()
	prep, _ := twoServerPrep(t)
	root := t.TempDir()
	members := []fleet.Member{{ID: "a"}, {ID: "b"}}
	nodes := map[string]*fleetTestNode{}
	// Listeners first: member addresses must exist before the servers that
	// embed them in their membership views.
	for _, m := range members {
		nodes[m.ID] = &fleetTestNode{id: m.ID, hs: httptest.NewUnstartedServer(nil)}
	}
	for i := range members {
		members[i].Addr = "http://" + nodes[members[i].ID].hs.Listener.Addr().String()
	}
	storeFor := func(id string) (server.Checkpointer, error) {
		return server.NewDirCheckpointer(filepath.Join(root, id))
	}
	for _, m := range members {
		view, err := fleet.NewMembership(members, 8)
		if err != nil {
			t.Fatal(err)
		}
		own, err := storeFor(m.ID)
		if err != nil {
			t.Fatal(err)
		}
		fcfg := &server.FleetConfig{Self: m.ID, Membership: view}
		if handoff {
			fcfg.StoreFor = storeFor
		}
		srv, err := server.New(server.Config{
			Model:         prep.Model,
			NewController: boundedFactory(prep),
			Checkpointer:  own,
			Fleet:         fcfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		n := nodes[m.ID]
		n.sv = srv
		n.hs.Config.Handler = srv
		n.hs.Start()
		t.Cleanup(n.hs.Close)
	}
	fc, err := NewFleetClient(members, 8, nil, WithRetryPolicy(snappyPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	return nodes, fc, prep
}

// stepOnce drives one decide/observe round against a deterministic
// environment (first successor observation under the decider's own belief).
func stepOnce(t *testing.T, prep *core.Prepared, sc *pomdp.Scratch, e *FleetEpisode) bool {
	t.Helper()
	d, err := e.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if d.Terminate {
		return false
	}
	b := e.Belief()
	if b == nil {
		t.Fatal("nil belief from live episode")
	}
	succs := prep.Model.Successors(sc, b, d.Action)
	if len(succs) == 0 {
		t.Fatalf("no successors for action %d", d.Action)
	}
	if err := e.Observe(d.Action, succs[0].Obs); err != nil {
		t.Fatal(err)
	}
	return true
}

func TestFleetClientRoutesToOwner(t *testing.T) {
	nodes, fc, prep := newClientFleet(t)
	sc := pomdp.NewScratch(prep.Model)
	ep, err := fc.StartEpisode()
	if err != nil {
		t.Fatal(err)
	}
	owner, ok := fc.View().Owner(ep.Key())
	if !ok || owner.ID != ep.Owner() {
		t.Fatalf("episode owner %q, ring says %+v ok=%v", ep.Owner(), owner, ok)
	}
	other := "a"
	if ep.Owner() == "a" {
		other = "b"
	}
	if nodes[ep.Owner()].sv.OpenEpisodes() != 1 || nodes[other].sv.OpenEpisodes() != 0 {
		t.Errorf("episodes owner=%d other=%d", nodes[ep.Owner()].sv.OpenEpisodes(), nodes[other].sv.OpenEpisodes())
	}
	for i := 0; i < 3; i++ {
		if !stepOnce(t, prep, sc, ep) {
			break
		}
	}
	if ep.Steps() == 0 {
		t.Error("no steps applied")
	}
	if err := ep.Abandon(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetClientFailsOverMidEpisode is the client-side handoff acceptance
// test: the owner dies without warning mid-episode and the next call re-binds
// to the survivor, which adopts the episode from the dead member's store and
// continues it under the same identity.
func TestFleetClientFailsOverMidEpisode(t *testing.T) {
	nodes, fc, prep := newClientFleet(t)
	sc := pomdp.NewScratch(prep.Model)
	ep, err := fc.StartEpisode()
	if err != nil {
		t.Fatal(err)
	}
	if !stepOnce(t, prep, sc, ep) {
		t.Fatal("episode terminated before the kill point")
	}
	id, firstOwner, steps := ep.ID(), ep.Owner(), ep.Steps()

	// SIGKILL-equivalent: drop live connections, stop the listener.
	dead := nodes[firstOwner]
	dead.hs.CloseClientConnections()
	dead.hs.Close()

	// The next round must fail over transparently.
	if !stepOnce(t, prep, sc, ep) {
		t.Fatal("episode terminated on the failover step")
	}
	if ep.Owner() == firstOwner {
		t.Fatalf("still bound to dead owner %q", firstOwner)
	}
	if ep.ID() != id {
		t.Fatalf("episode id changed across failover: %d -> %d", id, ep.ID())
	}
	if ep.Steps() != steps+1 {
		t.Fatalf("steps %d after failover, want %d", ep.Steps(), steps+1)
	}
	if got := nodes[ep.Owner()].sv.OpenEpisodes(); got != 1 {
		t.Fatalf("survivor serves %d episodes, want 1", got)
	}
	// The client told the survivor about the death, so its view agrees.
	if !fc.View().IsDown(firstOwner) {
		t.Error("client view did not mark the dead owner down")
	}
	// Run the episode to completion on the survivor.
	for i := 0; i < 50; i++ {
		if !stepOnce(t, prep, sc, ep) {
			return
		}
	}
	t.Error("episode did not terminate after failover")
}

// TestFleetClientStartsOnSurvivor checks the start-time path: with one member
// already dead (and the client not yet aware), every new episode still starts
// — keys owned by the corpse fail over to the survivor.
func TestFleetClientStartsOnSurvivor(t *testing.T) {
	nodes, fc, _ := newClientFleet(t)
	nodes["a"].hs.CloseClientConnections()
	nodes["a"].hs.Close()
	sawFailover := false
	for i := 0; i < 8; i++ {
		ep, err := fc.StartEpisode()
		if err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
		if ep.Owner() != "b" {
			t.Fatalf("start %d bound to %q", i, ep.Owner())
		}
		if owner, ok := fc.View().Owner(ep.Key()); !ok || owner.ID != "b" {
			t.Fatalf("start %d: view owner %+v ok=%v", i, owner, ok)
		}
		if fc.View().IsDown("a") {
			sawFailover = true
		}
	}
	if !sawFailover {
		t.Skip("no key hashed to the dead member in 8 draws (astronomically unlikely)")
	}
}

// TestFleetClientReportsLostEpisode: when the owner dies AND its checkpoints
// are unreachable (no handoff), the fleet answers the client's keyed restart
// with a brand-new episode. Silently binding to it would replay recovery from
// step zero under the same identity — the client must instead surface a typed
// EpisodeLostError and abandon the impostor.
func TestFleetClientReportsLostEpisode(t *testing.T) {
	nodes, fc, prep := newClientFleetHandoff(t, false)
	sc := pomdp.NewScratch(prep.Model)
	ep, err := fc.StartEpisode()
	if err != nil {
		t.Fatal(err)
	}
	if !stepOnce(t, prep, sc, ep) {
		t.Fatal("episode terminated before the kill point")
	}
	id, firstOwner, steps := ep.ID(), ep.Owner(), ep.Steps()

	dead := nodes[firstOwner]
	dead.hs.CloseClientConnections()
	dead.hs.Close()

	_, err = ep.Decide()
	if err == nil {
		t.Fatal("Decide succeeded against an unrecoverable episode")
	}
	var lost *EpisodeLostError
	if !errors.As(err, &lost) {
		t.Fatalf("error is %T (%v), want *EpisodeLostError", err, err)
	}
	if lost.Key != ep.Key() || lost.EpisodeID != id || lost.Steps != steps {
		t.Errorf("EpisodeLostError %+v, want key %q id %d steps %d", lost, ep.Key(), id, steps)
	}
	if lost.FreshID == id {
		t.Errorf("fresh id %d equals the lost id — nothing was lost", lost.FreshID)
	}
	for _, part := range []string{ep.Key(), "lost in failover"} {
		if !strings.Contains(lost.Error(), part) {
			t.Errorf("error message %q missing %q", lost.Error(), part)
		}
	}
	// The impostor episode was abandoned, not leaked on the survivor.
	survivor := "a"
	if firstOwner == "a" {
		survivor = "b"
	}
	if got := nodes[survivor].sv.OpenEpisodes(); got != 0 {
		t.Errorf("survivor holds %d episodes after the abandoned impostor, want 0", got)
	}
}
