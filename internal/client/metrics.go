package client

import (
	"net/http"
	"time"

	"bpomdp/internal/obs"
)

// clientMetrics holds the client-side instruments. A Client without
// WithMetrics carries a nil *clientMetrics and pays a single nil check per
// attempt.
type clientMetrics struct {
	requests *obs.Counter
	retries  *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// WithMetrics instruments the client on reg: per-attempt request and error
// counters, a retry counter, and a per-attempt latency histogram.
// Registration is idempotent, so several clients may share one registry (and
// a registry shared with a server, since the client series carry the
// recoverd_client_ prefix). A nil registry leaves the client uninstrumented.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *Client) {
		if reg == nil {
			return
		}
		c.metrics = &clientMetrics{
			requests: reg.Counter("recoverd_client_requests_total", "HTTP attempts issued (retries counted individually)."),
			retries:  reg.Counter("recoverd_client_retries_total", "Attempts beyond the first within one call."),
			errors:   reg.Counter("recoverd_client_errors_total", "Attempts that ended in a transport or HTTP error."),
			latency: reg.Histogram("recoverd_client_request_duration_seconds",
				"Per-attempt request latency in seconds.", obs.DefLatencyBuckets),
		}
	}
}

// attempt wraps one doOnce call with the client's instruments; with no
// metrics attached it is a plain call.
func (c *Client) attempt(method, path string, hdr http.Header, payload []byte, out any) error {
	if c.metrics == nil {
		return c.doOnce(method, path, hdr, payload, out)
	}
	c.metrics.requests.Inc()
	t0 := time.Now()
	err := c.doOnce(method, path, hdr, payload, out)
	c.metrics.latency.Observe(time.Since(t0).Seconds())
	if err != nil {
		c.metrics.errors.Inc()
	}
	return err
}
