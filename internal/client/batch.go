package client

import (
	"fmt"
	"net/http"

	"bpomdp/internal/controller"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/server"
)

// DecideBatch asks the service for decisions at many beliefs in one
// POST /v1/decide/batch round-trip. The endpoint is stateless on the server
// — no episode is created or touched — so the request is naturally
// idempotent and retried under the full retry policy like every other
// idempotent call.
func (c *Client) DecideBatch(beliefs []pomdp.Belief) ([]controller.Decision, error) {
	if len(beliefs) == 0 {
		return nil, fmt.Errorf("client: empty belief batch")
	}
	req := server.BatchDecideRequest{Beliefs: make([][]float64, len(beliefs))}
	for i, b := range beliefs {
		req.Beliefs[i] = b
	}
	var out server.BatchDecideResponse
	if err := c.do(http.MethodPost, "/v1/decide/batch", nil, &req, &out, idemSafe); err != nil {
		return nil, err
	}
	if len(out.Decisions) != len(beliefs) {
		return nil, fmt.Errorf("client: batch decide returned %d decisions for %d beliefs", len(out.Decisions), len(beliefs))
	}
	decisions := make([]controller.Decision, len(out.Decisions))
	for i, d := range out.Decisions {
		decisions[i] = controller.Decision{Action: d.Action, Terminate: d.Terminate, Value: d.Value}
	}
	return decisions, nil
}

// BatchDecider adapts the client to controller.BatchDecider, so the
// campaign engine's batched stepping mode can send each round's live
// beliefs to a remote daemon: sim.CampaignOptions{BatchSize: n,
// BatchDecider: c.BatchDecider().WithModel(prep.Model)}.
type BatchDecider struct {
	c     *Client
	model *pomdp.POMDP
}

var _ controller.BatchDecider = (*BatchDecider)(nil)

// BatchDecider returns the controller.BatchDecider view of the client.
func (c *Client) BatchDecider() *BatchDecider { return &BatchDecider{c: c} }

// WithModel records the (transformed) model the remote daemon decides over,
// so the campaign engine's belief filters track the same state space the
// endpoint validates against. Returns the receiver for chaining.
func (d *BatchDecider) WithModel(p *pomdp.POMDP) *BatchDecider {
	d.model = p
	return d
}

// Model returns the model set by WithModel, or nil. The campaign engine
// consults it to size its belief filters.
func (d *BatchDecider) Model() *pomdp.POMDP { return d.model }

// Name labels campaign results driven through the remote batch endpoint.
func (d *BatchDecider) Name() string { return "remote-batch" }

// DecideBatch implements controller.BatchDecider.
func (d *BatchDecider) DecideBatch(beliefs []pomdp.Belief, out []controller.Decision) error {
	if len(out) < len(beliefs) {
		return fmt.Errorf("client: batch decision buffer length %d < %d beliefs", len(out), len(beliefs))
	}
	decisions, err := d.c.DecideBatch(beliefs)
	if err != nil {
		return err
	}
	copy(out, decisions)
	return nil
}
