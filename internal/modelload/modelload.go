// Package modelload resolves model names shared by the command-line tools:
// the built-in "emn" and "twoserver" models, or a path to a model JSON file
// (as produced by modelinfo -export / pomdp.MarshalModel).
package modelload

import (
	"fmt"
	"os"

	"bpomdp/internal/core"
	"bpomdp/internal/emn"
	"bpomdp/internal/linalg"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
)

// Load resolves name to a recovery model. For JSON files, Sφ defaults to
// the state named "null", durations to one second per action, the monitor
// action to index 0, and cost rates to -1 outside Sφ — enough for
// inspection; systems with real semantics should be built with
// internal/arch.
func Load(name string) (*core.RecoveryModel, error) {
	switch name {
	case "emn":
		c, err := emn.Build(emn.Config{})
		if err != nil {
			return nil, err
		}
		return c.Recovery, nil
	case "twoserver":
		ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
		if err != nil {
			return nil, err
		}
		return &core.RecoveryModel{
			POMDP:           ts.Model,
			NullStates:      ts.NullStates,
			RateRewards:     ts.RateRewards,
			Durations:       []float64{1, 1, 0},
			MonitorAction:   ts.ActionObserve,
			MonitorDuration: 0.1,
		}, nil
	default:
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		p, err := pomdp.UnmarshalModel(data)
		if err != nil {
			return nil, err
		}
		null := -1
		for s := 0; s < p.NumStates(); s++ {
			if p.M.StateName(s) == "null" {
				null = s
			}
		}
		if null < 0 {
			return nil, fmt.Errorf("modelload: model %s has no state named %q", name, "null")
		}
		durations := make([]float64, p.NumActions())
		for a := range durations {
			durations[a] = 1
		}
		rates := linalg.NewVector(p.NumStates())
		for s := 0; s < p.NumStates(); s++ {
			if s != null {
				rates[s] = -1
			}
		}
		return &core.RecoveryModel{
			POMDP:           p,
			NullStates:      []int{null},
			RateRewards:     rates,
			Durations:       durations,
			MonitorAction:   0,
			MonitorDuration: 1,
		}, nil
	}
}
