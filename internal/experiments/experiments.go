// Package experiments regenerates the paper's evaluation artifacts — Table 1
// and Figures 5(a)/5(b) — from the EMN model. The cmd tools, the root
// benchmark suite, and the integration tests all share these harnesses, so
// "the number in the report" and "the number in the test" cannot drift
// apart.
package experiments

import (
	"fmt"
	"strings"

	"bpomdp/internal/arch"
	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/emn"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/sim"
	"bpomdp/internal/stats"
)

// Algorithm names accepted by Table1Config.Algorithms.
const (
	AlgoMostLikely = "most-likely"
	AlgoHeuristic1 = "heuristic-1"
	AlgoHeuristic2 = "heuristic-2"
	AlgoHeuristic3 = "heuristic-3"
	AlgoBounded    = "bounded"
	AlgoOracle     = "oracle"
	AlgoRandom     = "random" // ablation extra, not in the paper's table
)

// DefaultAlgorithms is the paper's Table 1 row order.
func DefaultAlgorithms() []string {
	return []string{AlgoMostLikely, AlgoHeuristic1, AlgoHeuristic2, AlgoHeuristic3, AlgoBounded, AlgoOracle}
}

// Table1Config parameterizes the fault-injection experiment of Table 1.
type Table1Config struct {
	// Episodes is the number of fault injections per algorithm (10,000 in
	// the paper).
	Episodes int
	// Seed drives all stochastic choices; campaigns are reproducible.
	Seed uint64
	// Algorithms selects and orders the rows; nil means DefaultAlgorithms.
	Algorithms []string
	// BootstrapRuns and BootstrapDepth configure the bounded controller's
	// bootstrap phase (the paper uses 10 runs of depth 2).
	BootstrapRuns, BootstrapDepth int
	// BoundedDepth is the bounded controller's online tree depth (1 in the
	// paper).
	BoundedDepth int
	// TerminationProbability is the Sφ-mass threshold for the most-likely
	// and heuristic controllers (0.9999 in the paper).
	TerminationProbability float64
	// MaxSteps bounds each episode; zero means 1000.
	MaxSteps int
	// EMN tunes the system model; the zero value is the paper's.
	EMN emn.Config
	// AllFaults injects all 13 fault classes instead of the paper's
	// zombies-only campaign.
	AllFaults bool
}

func (c Table1Config) withDefaults() Table1Config {
	if c.Episodes == 0 {
		c.Episodes = 1000
	}
	if c.Algorithms == nil {
		c.Algorithms = DefaultAlgorithms()
	}
	if c.BootstrapRuns == 0 {
		c.BootstrapRuns = 10
	}
	if c.BootstrapDepth == 0 {
		c.BootstrapDepth = 2
	}
	if c.BoundedDepth == 0 {
		c.BoundedDepth = 1
	}
	if c.TerminationProbability == 0 {
		c.TerminationProbability = 0.9999
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 1000
	}
	return c
}

// Table1Result holds one campaign row per algorithm, in requested order.
type Table1Result struct {
	Rows []sim.CampaignResult
}

// Render formats the result like the paper's Table 1.
func (r *Table1Result) Render() string {
	t := stats.NewTable(sim.TableHeaders()...)
	for i := range r.Rows {
		t.AddRow(r.Rows[i].Row()...)
	}
	return t.String()
}

// Row returns the campaign for the named algorithm, or nil.
func (r *Table1Result) Row(name string) *sim.CampaignResult {
	for i := range r.Rows {
		if strings.HasPrefix(r.Rows[i].Name, name) || r.Rows[i].Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// Table1 runs the paper's fault-injection experiment: for each algorithm, a
// campaign of Episodes zombie-fault injections on the EMN system, reporting
// per-fault averages. Because zombie faults are the hardest to diagnose,
// the paper injects only those; set AllFaults for the full mix.
func Table1(cfg Table1Config) (*Table1Result, error) {
	c := cfg.withDefaults()
	compiled, err := emn.Build(c.EMN)
	if err != nil {
		return nil, err
	}
	rm := compiled.Recovery
	runner, err := sim.NewRunner(rm, c.MaxSteps)
	if err != nil {
		return nil, err
	}
	faults := compiled.ZombieStates
	if c.AllFaults {
		faults = rm.FaultStates()
	}
	root := rng.New(c.Seed)

	out := &Table1Result{}
	for _, name := range c.Algorithms {
		ctrl, initial, err := BuildAlgorithm(name, compiled, c, root)
		if err != nil {
			return nil, err
		}
		res, err := runner.RunCampaign(ctrl, initial, faults, c.Episodes, root.Split("campaign/"+name))
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		res.Name = name
		out.Rows = append(out.Rows, res)
	}
	return out, nil
}

// BuildAlgorithm instantiates one Table 1 row's controller with its initial
// belief; exported for the root benchmark suite.
func BuildAlgorithm(name string, compiled *arch.Compiled, c Table1Config, root *rng.Stream) (controller.Controller, pomdp.Belief, error) {
	rm := compiled.Recovery
	uniform := pomdp.UniformBelief(rm.POMDP.NumStates())
	switch name {
	case AlgoMostLikely:
		ctrl, err := controller.NewMostLikely(rm.POMDP, controller.MostLikelyConfig{
			NullStates:             rm.NullStates,
			TerminationProbability: c.TerminationProbability,
		})
		return ctrl, uniform, err
	case AlgoHeuristic1, AlgoHeuristic2, AlgoHeuristic3:
		depth := int(name[len(name)-1] - '0')
		ctrl, err := controller.NewHeuristic(rm.POMDP, controller.HeuristicConfig{
			Depth:                  depth,
			NullStates:             rm.NullStates,
			TerminationProbability: c.TerminationProbability,
		})
		return ctrl, uniform, err
	case AlgoBounded:
		prep, err := core.Prepare(rm, core.PrepareOptions{
			OperatorResponseTime: emn.OperatorResponseTime,
		})
		if err != nil {
			return nil, nil, err
		}
		if c.BootstrapRuns > 0 {
			if _, err := prep.Bootstrap(c.BootstrapRuns, controller.VariantAverage,
				c.BootstrapDepth, root.Split("bootstrap")); err != nil {
				return nil, nil, err
			}
		}
		// The paper's controller keeps improving the bound at the beliefs
		// recovery actually visits (Section 4.1), which is what lets it
		// terminate promptly near the null vertex.
		ctrl, err := prep.NewController(core.ControllerConfig{Depth: c.BoundedDepth, ImproveOnline: true})
		if err != nil {
			return nil, nil, err
		}
		initial, err := prep.InitialBelief()
		return ctrl, initial, err
	case AlgoOracle:
		ctrl, err := controller.NewOracle(rm.POMDP, rm.NullStates)
		return ctrl, uniform, err
	case AlgoRandom:
		ctrl, err := controller.NewRandom(rm.POMDP, rm.NullStates,
			c.TerminationProbability, root.Split("random-ctrl"))
		return ctrl, uniform, err
	default:
		return nil, nil, fmt.Errorf("experiments: unknown algorithm %q", name)
	}
}
