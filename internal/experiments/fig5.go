package experiments

import (
	"fmt"
	"strings"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/emn"
	"bpomdp/internal/rng"
	"bpomdp/internal/stats"
)

// Fig5Config parameterizes the bounds-improvement experiment of
// Figures 5(a) and 5(b).
type Fig5Config struct {
	// Iterations is the number of bootstrap episodes (20 in the paper).
	Iterations int
	// Seed drives fault and observation sampling.
	Seed uint64
	// Depth is the tree depth during bootstrap (1 in the paper's Figure 5).
	Depth int
	// EMN tunes the system model; the zero value is the paper's.
	EMN emn.Config
}

func (c Fig5Config) withDefaults() Fig5Config {
	if c.Iterations == 0 {
		c.Iterations = 20
	}
	if c.Depth == 0 {
		c.Depth = 1
	}
	return c
}

// Fig5Result holds both bootstrap-variant series. The paper plots
// -BoundAtUniform (an upper bound on recovery cost) for 5(a) and Vectors
// for 5(b).
type Fig5Result struct {
	Random, Average []controller.IterationStats
}

// UpperBoundOnCost converts a bound value to the paper's 5(a) y-axis.
func UpperBoundOnCost(boundAtUniform float64) float64 { return -boundAtUniform }

// Fig5 runs the bootstrapping procedure once per variant on identical
// models and returns the per-iteration series.
func Fig5(cfg Fig5Config) (*Fig5Result, error) {
	c := cfg.withDefaults()
	out := &Fig5Result{}
	for _, variant := range []controller.BootstrapVariant{controller.VariantRandom, controller.VariantAverage} {
		compiled, err := emn.Build(c.EMN)
		if err != nil {
			return nil, err
		}
		prep, err := core.Prepare(compiled.Recovery, core.PrepareOptions{
			OperatorResponseTime: emn.OperatorResponseTime,
		})
		if err != nil {
			return nil, err
		}
		b, err := prep.NewBootstrapper(variant, c.Depth, rng.New(c.Seed).Split("fig5/"+variant.String()))
		if err != nil {
			return nil, err
		}
		series, err := b.Run(c.Iterations)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5 %s: %w", variant, err)
		}
		switch variant {
		case controller.VariantRandom:
			out.Random = series
		case controller.VariantAverage:
			out.Average = series
		}
	}
	return out, nil
}

// Render formats both series as the two-figure table the paper plots:
// iteration, upper bound on cost (5a) and bound-vector count (5b) for each
// variant.
func (r *Fig5Result) Render() string {
	t := stats.NewTable("Iter",
		"UpperBoundCost(random)", "UpperBoundCost(average)",
		"Vectors(random)", "Vectors(average)")
	n := len(r.Random)
	if len(r.Average) > n {
		n = len(r.Average)
	}
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprintf("%d", i+1), "", "", "", ""}
		if i < len(r.Random) {
			row[1] = fmt.Sprintf("%.2f", UpperBoundOnCost(r.Random[i].BoundAtUniform))
			row[3] = fmt.Sprintf("%d", r.Random[i].Vectors)
		}
		if i < len(r.Average) {
			row[2] = fmt.Sprintf("%.2f", UpperBoundOnCost(r.Average[i].BoundAtUniform))
			row[4] = fmt.Sprintf("%d", r.Average[i].Vectors)
		}
		t.AddRow(row...)
	}
	return t.String()
}

// CSV renders the series as comma-separated values for plotting.
func (r *Fig5Result) CSV() string {
	var b strings.Builder
	b.WriteString("iteration,upper_bound_cost_random,upper_bound_cost_average,vectors_random,vectors_average\n")
	n := len(r.Random)
	if len(r.Average) > n {
		n = len(r.Average)
	}
	for i := 0; i < n; i++ {
		cells := []string{fmt.Sprintf("%d", i+1), "", "", "", ""}
		if i < len(r.Random) {
			cells[1] = fmt.Sprintf("%.6f", UpperBoundOnCost(r.Random[i].BoundAtUniform))
			cells[3] = fmt.Sprintf("%d", r.Random[i].Vectors)
		}
		if i < len(r.Average) {
			cells[2] = fmt.Sprintf("%.6f", UpperBoundOnCost(r.Average[i].BoundAtUniform))
			cells[4] = fmt.Sprintf("%d", r.Average[i].Vectors)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteString("\n")
	}
	return b.String()
}
