package experiments

import (
	"strings"
	"testing"

	"bpomdp/internal/controller"
)

func TestTable1SmallCampaignShape(t *testing.T) {
	if testing.Short() {
		t.Skip("EMN campaign in -short mode")
	}
	res, err := Table1(Table1Config{
		Episodes:   60,
		Seed:       1,
		Algorithms: []string{AlgoMostLikely, AlgoHeuristic1, AlgoBounded, AlgoOracle},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The paper's §5 observation: in all injections, no controller ever
		// quit without recovering the system.
		if row.Recovered != row.Episodes {
			t.Errorf("%s recovered %d/%d", row.Name, row.Recovered, row.Episodes)
		}
		if row.Cost.Mean() <= 0 {
			t.Errorf("%s cost = %v", row.Name, row.Cost.Mean())
		}
	}
	oracle := res.Row(AlgoOracle)
	bounded := res.Row(AlgoBounded)
	ml := res.Row(AlgoMostLikely)
	if oracle == nil || bounded == nil || ml == nil {
		t.Fatal("missing rows")
	}
	// Table 1 shape: oracle ≤ bounded ≤ most-likely on cost; oracle uses
	// exactly one action; bounded uses fewer actions than most-likely.
	if oracle.Cost.Mean() > bounded.Cost.Mean() {
		t.Errorf("oracle cost %v > bounded %v", oracle.Cost.Mean(), bounded.Cost.Mean())
	}
	if bounded.Cost.Mean() > ml.Cost.Mean() {
		t.Errorf("bounded cost %v > most-likely %v", bounded.Cost.Mean(), ml.Cost.Mean())
	}
	if oracle.Actions.Mean() != 1 {
		t.Errorf("oracle actions = %v", oracle.Actions.Mean())
	}
	if bounded.Actions.Mean() >= ml.Actions.Mean() {
		t.Errorf("bounded actions %v >= most-likely %v", bounded.Actions.Mean(), ml.Actions.Mean())
	}

	out := res.Render()
	if !strings.Contains(out, "Algorithm") || !strings.Contains(out, AlgoBounded) {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestTable1UnknownAlgorithm(t *testing.T) {
	if _, err := Table1(Table1Config{Episodes: 1, Algorithms: []string{"alphago"}}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestTable1RandomAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("EMN campaign in -short mode")
	}
	res, err := Table1(Table1Config{
		Episodes:   10,
		Seed:       3,
		MaxSteps:   20000,
		Algorithms: []string{AlgoRandom},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Episodes != 10 {
		t.Errorf("episodes = %d", res.Rows[0].Episodes)
	}
}

func TestFig5SeriesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("EMN bootstrap in -short mode")
	}
	res, err := Fig5(Fig5Config{Iterations: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Random) != 12 || len(res.Average) != 12 {
		t.Fatalf("series lengths %d/%d", len(res.Random), len(res.Average))
	}
	check := func(name string, series []controller.IterationStats) {
		prev := -1e18
		for i, st := range series {
			if st.BoundAtUniform < prev-1e-9 {
				t.Errorf("%s iteration %d: bound decreased", name, i+1)
			}
			prev = st.BoundAtUniform
			if UpperBoundOnCost(st.BoundAtUniform) < 0 {
				t.Errorf("%s iteration %d: negative upper bound on cost", name, i+1)
			}
			if st.Vectors < 1 {
				t.Errorf("%s iteration %d: no vectors", name, i+1)
			}
		}
	}
	check("random", res.Random)
	check("average", res.Average)

	// Figure 5(a)'s headline: the Average variant ends tighter than Random.
	last := len(res.Random) - 1
	if res.Average[last].BoundAtUniform < res.Random[last].BoundAtUniform {
		t.Errorf("average final bound %v looser than random %v",
			res.Average[last].BoundAtUniform, res.Random[last].BoundAtUniform)
	}

	csv := res.CSV()
	if !strings.HasPrefix(csv, "iteration,") || strings.Count(csv, "\n") != 13 {
		t.Errorf("CSV malformed:\n%s", csv)
	}
	if out := res.Render(); !strings.Contains(out, "Vectors(average)") {
		t.Errorf("render malformed:\n%s", out)
	}
}
