package arch

import (
	"errors"
	"math"
	"testing"

	"bpomdp/internal/pomdp"
)

// tinySystem is a 1-host, 2-component pipeline with one path monitor.
func tinySystem() *System {
	return &System{
		Name:  "tiny",
		Hosts: []Host{{Name: "h1", RebootDuration: 100}},
		Components: []Component{
			{Name: "fe", Host: "h1", RestartDuration: 10},
			{Name: "be", Host: "h1", RestartDuration: 20},
		},
		Paths: []Path{{
			Name:         "main",
			TrafficShare: 1,
			Stages: []Stage{
				{{Component: "fe", Weight: 1}},
				{{Component: "be", Weight: 1}},
			},
		}},
		ComponentMonitors: []ComponentMonitor{
			{Name: "feMon", Target: "fe"},
			{Name: "beMon", Target: "be"},
		},
		PathMonitors:    []PathMonitor{{Name: "pathMon", Path: "main"}},
		MonitorDuration: 1,
		CrashFaults:     true,
		ZombieFaults:    true,
		HostFaults:      true,
	}
}

func TestValidateAcceptsTiny(t *testing.T) {
	if err := tinySystem().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*System)
	}{
		{"no hosts", func(s *System) { s.Hosts = nil }},
		{"no components", func(s *System) { s.Components = nil }},
		{"no fault classes", func(s *System) { s.CrashFaults, s.ZombieFaults, s.HostFaults = false, false, false }},
		{"negative monitor duration", func(s *System) { s.MonitorDuration = -1 }},
		{"duplicate host", func(s *System) { s.Hosts = append(s.Hosts, Host{Name: "h1"}) }},
		{"empty host name", func(s *System) { s.Hosts[0].Name = "" }},
		{"negative reboot", func(s *System) { s.Hosts[0].RebootDuration = -1 }},
		{"duplicate component", func(s *System) { s.Components = append(s.Components, Component{Name: "fe", Host: "h1"}) }},
		{"unknown component host", func(s *System) { s.Components[0].Host = "nowhere" }},
		{"negative restart", func(s *System) { s.Components[0].RestartDuration = -5 }},
		{"traffic shares not 1", func(s *System) { s.Paths[0].TrafficShare = 0.5 }},
		{"path without stages", func(s *System) { s.Paths[0].Stages = nil }},
		{"empty stage", func(s *System) { s.Paths[0].Stages = []Stage{{}} }},
		{"unknown path component", func(s *System) { s.Paths[0].Stages[0][0].Component = "ghost" }},
		{"non-positive weight", func(s *System) { s.Paths[0].Stages[0][0].Weight = 0 }},
		{"no monitors", func(s *System) { s.ComponentMonitors, s.PathMonitors = nil, nil }},
		{"duplicate monitor", func(s *System) { s.PathMonitors[0].Name = "feMon" }},
		{"monitor unknown target", func(s *System) { s.ComponentMonitors[0].Target = "ghost" }},
		{"monitor unknown path", func(s *System) { s.PathMonitors[0].Path = "ghost" }},
		{"bad coverage", func(s *System) { s.ComponentMonitors[0].Coverage = 2 }},
		{"bad false positive", func(s *System) { s.PathMonitors[0].FalsePositive = -0.5 }},
		{"duplicate path", func(s *System) { s.Paths = append(s.Paths, s.Paths[0]) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sys := tinySystem()
			tt.mutate(sys)
			if err := sys.Validate(); !errors.Is(err, ErrInvalidSystem) {
				t.Errorf("err = %v, want ErrInvalidSystem", err)
			}
		})
	}
}

func TestCompileTinyShape(t *testing.T) {
	c, err := tinySystem().Compile()
	if err != nil {
		t.Fatal(err)
	}
	// States: null + 2 crash + 1 host + 2 zombie = 6.
	if got := c.Recovery.POMDP.NumStates(); got != 6 {
		t.Errorf("states = %d, want 6", got)
	}
	// Actions: 2 restarts + 1 reboot + observe = 4.
	if got := c.Recovery.POMDP.NumActions(); got != 4 {
		t.Errorf("actions = %d, want 4", got)
	}
	if len(c.CrashStates) != 2 || len(c.ZombieStates) != 2 || len(c.HostStates) != 1 {
		t.Errorf("fault classes = %d/%d/%d", len(c.CrashStates), len(c.ZombieStates), len(c.HostStates))
	}
	if c.Recovery.POMDP.M.StateName(c.NullState) != NullStateName {
		t.Errorf("null state mislabeled")
	}
	if c.Recovery.POMDP.M.ActionName(c.ObserveAction) != ObserveActionName {
		t.Errorf("observe action mislabeled")
	}
	if c.MonitorDuration != 1 || c.Recovery.MonitorDuration != 1 {
		t.Errorf("monitor duration not propagated")
	}
	if len(c.MonitorNames) != 3 {
		t.Errorf("monitor names = %v", c.MonitorNames)
	}
}

func TestCompileTinyDynamics(t *testing.T) {
	c, err := tinySystem().Compile()
	if err != nil {
		t.Fatal(err)
	}
	p := c.Recovery.POMDP
	st := c.StateIndex
	ac := c.ActionIndex

	// restart:fe fixes crash:fe and zombie:fe.
	if got := p.M.Trans[ac["restart:fe"]].At(st["crash:fe"], c.NullState); got != 1 {
		t.Errorf("restart:fe from crash:fe -> null = %v", got)
	}
	if got := p.M.Trans[ac["restart:fe"]].At(st["zombie:fe"], c.NullState); got != 1 {
		t.Errorf("restart:fe from zombie:fe -> null = %v", got)
	}
	// restart:fe does not fix crash:be.
	if got := p.M.Trans[ac["restart:fe"]].At(st["crash:be"], st["crash:be"]); got != 1 {
		t.Errorf("restart:fe from crash:be should be a no-op, got %v", got)
	}
	// reboot:h1 fixes everything (both components live on h1).
	for _, s := range []string{"crash:fe", "crash:be", "zombie:fe", "zombie:be", "hostdown:h1"} {
		if got := p.M.Trans[ac["reboot:h1"]].At(st[s], c.NullState); got != 1 {
			t.Errorf("reboot:h1 from %s -> null = %v", s, got)
		}
	}
	// observe is the identity.
	for s := 0; s < p.NumStates(); s++ {
		if got := p.M.Trans[c.ObserveAction].At(s, s); got != 1 {
			t.Errorf("observe from state %d not identity: %v", s, got)
		}
	}
}

func TestCompileTinyRewards(t *testing.T) {
	c, err := tinySystem().Compile()
	if err != nil {
		t.Fatal(err)
	}
	p := c.Recovery.POMDP
	st, ac := c.StateIndex, c.ActionIndex

	// Null is free to observe; restarting fe in null drops all traffic for
	// 10s (single path through fe), then all-clear during the 1s sweep.
	assertReward(t, p, st[NullStateName], c.ObserveAction, 0)
	assertReward(t, p, st[NullStateName], ac["restart:fe"], -10)
	// Observe with crash:fe: traffic fully dropped during the 1s sweep.
	assertReward(t, p, st["crash:fe"], c.ObserveAction, -1)
	// restart:fe with crash:fe: 10s down during restart, healthy sweep after.
	assertReward(t, p, st["crash:fe"], ac["restart:fe"], -10)
	// restart:fe with crash:be: 10s full drop, then still-broken 1s sweep.
	assertReward(t, p, st["crash:be"], ac["restart:fe"], -11)
	// Rate rewards: -1 (full drop) in every fault state, 0 in null.
	for s := 0; s < p.NumStates(); s++ {
		want := -1.0
		if s == c.NullState {
			want = 0
		}
		if got := c.Recovery.RateRewards[s]; math.Abs(got-want) > 1e-12 {
			t.Errorf("rate[%s] = %v, want %v", p.M.StateName(s), got, want)
		}
	}
}

func assertReward(t *testing.T, p *pomdp.POMDP, s, a int, want float64) {
	t.Helper()
	if got := p.M.Reward[a][s]; math.Abs(got-want) > 1e-9 {
		t.Errorf("r(%s, %s) = %v, want %v", p.M.StateName(s), p.M.ActionName(a), got, want)
	}
}

func TestCompileTinyObservations(t *testing.T) {
	c, err := tinySystem().Compile()
	if err != nil {
		t.Fatal(err)
	}
	p := c.Recovery.POMDP
	st := c.StateIndex

	findObs := func(name string) int {
		for o := 0; o < p.NumObservations(); o++ {
			if p.ObsName(o) == name {
				return o
			}
		}
		t.Fatalf("observation %q not found among %d", name, p.NumObservations())
		return -1
	}
	clear := findObs("obs:clear")
	// Null emits all-clear deterministically.
	if got := p.Obs[c.ObserveAction].At(st[NullStateName], clear); got != 1 {
		t.Errorf("q(clear|null) = %v", got)
	}
	// crash:fe: feMon and pathMon down deterministically (single route).
	feDown := findObs("obs:feMon+pathMon")
	if got := p.Obs[c.ObserveAction].At(st["crash:fe"], feDown); got != 1 {
		t.Errorf("q(feMon+pathMon|crash:fe) = %v", got)
	}
	// zombie:fe: pings fine, path probe fails -> only pathMon down.
	zDown := findObs("obs:pathMon")
	if got := p.Obs[c.ObserveAction].At(st["zombie:fe"], zDown); got != 1 {
		t.Errorf("q(pathMon|zombie:fe) = %v", got)
	}
	// hostdown: both pings and the path probe fail.
	hDown := findObs("obs:feMon+beMon+pathMon")
	if got := p.Obs[c.ObserveAction].At(st["hostdown:h1"], hDown); got != 1 {
		t.Errorf("q(all|hostdown:h1) = %v", got)
	}
}

func TestCompileLoadBalancedZombieRouting(t *testing.T) {
	// Two load-balanced replicas: a zombie in one gives the path monitor a
	// 50% detection probability — the paper's key source of imprecision.
	sys := &System{
		Name:  "lb",
		Hosts: []Host{{Name: "h", RebootDuration: 50}},
		Components: []Component{
			{Name: "r1", Host: "h", RestartDuration: 5},
			{Name: "r2", Host: "h", RestartDuration: 5},
		},
		Paths: []Path{{
			Name:         "p",
			TrafficShare: 1,
			Stages:       []Stage{{{Component: "r1", Weight: 0.5}, {Component: "r2", Weight: 0.5}}},
		}},
		PathMonitors:    []PathMonitor{{Name: "pm", Path: "p"}},
		MonitorDuration: 1,
		ZombieFaults:    true,
	}
	c, err := sys.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p := c.Recovery.POMDP
	st := c.StateIndex
	var clear, down int = -1, -1
	for o := 0; o < p.NumObservations(); o++ {
		switch p.ObsName(o) {
		case "obs:clear":
			clear = o
		case "obs:pm":
			down = o
		}
	}
	if clear < 0 || down < 0 {
		t.Fatalf("observations missing")
	}
	for _, s := range []string{"zombie:r1", "zombie:r2"} {
		if got := p.Obs[c.ObserveAction].At(st[s], down); math.Abs(got-0.5) > 1e-12 {
			t.Errorf("q(pm down|%s) = %v, want 0.5", s, got)
		}
		if got := p.Obs[c.ObserveAction].At(st[s], clear); math.Abs(got-0.5) > 1e-12 {
			t.Errorf("q(clear|%s) = %v, want 0.5", s, got)
		}
	}
	// Drop rate with one zombie replica is half the traffic.
	if got := c.Recovery.RateRewards[st["zombie:r1"]]; math.Abs(got-(-0.5)) > 1e-12 {
		t.Errorf("rate(zombie:r1) = %v, want -0.5", got)
	}
}

func TestObservationName(t *testing.T) {
	if got := ObservationName(nil); got != "obs:clear" {
		t.Errorf("empty = %q", got)
	}
	if got := ObservationName([]string{"a", "b"}); got != "obs:a+b" {
		t.Errorf("two = %q", got)
	}
}
