package arch

import (
	"fmt"
	"testing"

	"bpomdp/internal/bounds"
	"bpomdp/internal/core"
	"bpomdp/internal/rng"
)

// randomSystem generates a random but well-formed architecture: hosts with
// 1–3 components each, one or two load-balanced request paths, a ping
// monitor per component and a path monitor per path.
func randomSystem(r *rng.Stream) *System {
	nHosts := 1 + r.IntN(3)
	sys := &System{
		Name:            "random",
		MonitorDuration: 1 + 4*r.Float64(),
		MonitorCost:     0.1 + r.Float64(),
		CrashFaults:     true,
		ZombieFaults:    r.Bernoulli(0.7),
		HostFaults:      r.Bernoulli(0.7),
	}
	var comps []string
	for h := 0; h < nHosts; h++ {
		host := fmt.Sprintf("h%d", h)
		sys.Hosts = append(sys.Hosts, Host{Name: host, RebootDuration: 60 + 240*r.Float64()})
		for c := 0; c < 1+r.IntN(3); c++ {
			name := fmt.Sprintf("c%d_%d", h, c)
			comps = append(comps, name)
			sys.Components = append(sys.Components, Component{
				Name: name, Host: host, RestartDuration: 5 + 100*r.Float64(),
			})
		}
	}
	// One or two paths, each with 1–3 stages drawn from the components.
	nPaths := 1 + r.IntN(2)
	share := 1.0 / float64(nPaths)
	for p := 0; p < nPaths; p++ {
		path := Path{Name: fmt.Sprintf("p%d", p), TrafficShare: share}
		nStages := 1 + r.IntN(3)
		for st := 0; st < nStages; st++ {
			stage := Stage{}
			nAlts := 1 + r.IntN(2)
			for a := 0; a < nAlts; a++ {
				stage = append(stage, Alternative{
					Component: comps[r.IntN(len(comps))],
					Weight:    0.5 + r.Float64(),
				})
			}
			path.Stages = append(path.Stages, stage)
		}
		sys.Paths = append(sys.Paths, path)
		sys.PathMonitors = append(sys.PathMonitors, PathMonitor{
			Name: fmt.Sprintf("pm%d", p), Path: path.Name,
		})
	}
	for i, c := range comps {
		sys.ComponentMonitors = append(sys.ComponentMonitors, ComponentMonitor{
			Name: fmt.Sprintf("cm%d", i), Target: c,
		})
	}
	return sys
}

// TestCompileRandomSystems is the compiler's generative soundness check:
// every random well-formed architecture must compile into a recovery model
// that validates (Conditions 1 and 2, stochastic rows), prepares under the
// termination regime, and yields a convergent RA-Bound dominated by QMDP.
func TestCompileRandomSystems(t *testing.T) {
	root := rng.New(777)
	for trial := 0; trial < 15; trial++ {
		r := root.SplitN("sys", trial)
		sys := randomSystem(r)
		c, err := sys.Compile()
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		rm := c.Recovery
		if err := rm.Validate(); err != nil {
			t.Fatalf("trial %d: validate: %v", trial, err)
		}
		// Property 1(a): the positive monitor cost leaves no free actions.
		if free := rm.FreeActions(); len(free) != 0 {
			t.Errorf("trial %d: %d free actions despite monitor cost", trial, len(free))
		}
		prep, err := core.Prepare(rm, core.PrepareOptions{
			OperatorResponseTime: 1000,
			ForceRegime:          core.RegimeTermination,
		})
		if err != nil {
			t.Fatalf("trial %d: prepare: %v", trial, err)
		}
		up, err := bounds.QMDP(prep.Model, bounds.Options{})
		if err != nil {
			t.Fatalf("trial %d: QMDP: %v", trial, err)
		}
		for s := range up {
			if up[s] < prep.RA[s]-1e-6 {
				t.Errorf("trial %d state %d: QMDP %v below RA %v", trial, s, up[s], prep.RA[s])
			}
			if prep.RA[s] > 1e-9 {
				t.Errorf("trial %d state %d: RA %v above zero", trial, s, prep.RA[s])
			}
		}
	}
}
