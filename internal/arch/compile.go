package arch

import (
	"fmt"

	"bpomdp/internal/core"
	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
)

// Compiled is the result of compiling a System: the recovery model plus the
// index maps callers need to inject faults and interpret observations.
type Compiled struct {
	// Recovery is the compiled recovery model (untransformed POMDP plus
	// recovery semantics), ready for core.Prepare.
	Recovery *core.RecoveryModel
	// NullState is the index of the fault-free state.
	NullState int
	// CrashStates, ZombieStates and HostStates index the fault states by
	// class (empty for disabled classes).
	CrashStates, ZombieStates, HostStates []int
	// ObserveAction is the passive observe action's index.
	ObserveAction int
	// StateIndex and ActionIndex map names to indices.
	StateIndex, ActionIndex map[string]int
	// MonitorNames is the observation bit order (component monitors then
	// path monitors).
	MonitorNames []string
	// MonitorDuration echoes the system's monitor sweep time.
	MonitorDuration float64
}

// fault describes what is broken in a state.
type fault struct {
	kind int // 0 = none, 1 = crash, 2 = zombie, 3 = host down
	name string
}

const (
	faultNone = iota
	faultCrash
	faultZombie
	faultHost
)

func (f fault) stateName() string {
	switch f.kind {
	case faultCrash:
		return CrashStateName(f.name)
	case faultZombie:
		return ZombieStateName(f.name)
	case faultHost:
		return HostDownStateName(f.name)
	default:
		return NullStateName
	}
}

// effect describes what an action takes down while executing.
type effect struct {
	kind int // 0 = none, 1 = restart component, 2 = reboot host
	name string
}

// Compile turns the system description into a recovery POMDP. See the
// package comment for the modeling rules.
func (s *System) Compile() (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	compByName := make(map[string]Component, len(s.Components))
	for _, c := range s.Components {
		compByName[c.Name] = c
	}
	hostComps := make(map[string][]string, len(s.Hosts))
	for _, c := range s.Components {
		hostComps[c.Host] = append(hostComps[c.Host], c.Name)
	}
	pathByName := make(map[string]Path, len(s.Paths))
	for _, p := range s.Paths {
		pathByName[p.Name] = p
	}

	// Enumerate states.
	faults := []fault{{kind: faultNone}}
	if s.CrashFaults {
		for _, c := range s.Components {
			faults = append(faults, fault{kind: faultCrash, name: c.Name})
		}
	}
	if s.HostFaults {
		for _, h := range s.Hosts {
			faults = append(faults, fault{kind: faultHost, name: h.Name})
		}
	}
	if s.ZombieFaults {
		for _, c := range s.Components {
			faults = append(faults, fault{kind: faultZombie, name: c.Name})
		}
	}

	// Enumerate actions with their effects and durations.
	type actionDef struct {
		name     string
		eff      effect
		duration float64
	}
	var actions []actionDef
	for _, c := range s.Components {
		actions = append(actions, actionDef{
			name:     RestartActionName(c.Name),
			eff:      effect{kind: 1, name: c.Name},
			duration: c.RestartDuration,
		})
	}
	for _, h := range s.Hosts {
		actions = append(actions, actionDef{
			name:     RebootActionName(h.Name),
			eff:      effect{kind: 2, name: h.Name},
			duration: h.RebootDuration,
		})
	}
	actions = append(actions, actionDef{name: ObserveActionName, eff: effect{}, duration: 0})

	// unavailable returns the set of components that drop requests under
	// fault f while action effect e executes.
	unavailable := func(f fault, e effect) map[string]bool {
		u := make(map[string]bool)
		switch f.kind {
		case faultCrash, faultZombie:
			u[f.name] = true
		case faultHost:
			for _, c := range hostComps[f.name] {
				u[c] = true
			}
		}
		switch e.kind {
		case 1:
			u[e.name] = true
		case 2:
			for _, c := range hostComps[e.name] {
				u[c] = true
			}
		}
		return u
	}

	pathFail := func(p Path, unavail map[string]bool) float64 {
		ok := 1.0
		for _, st := range p.Stages {
			var total, up float64
			for _, alt := range st {
				total += alt.Weight
				if !unavail[alt.Component] {
					up += alt.Weight
				}
			}
			ok *= up / total
		}
		return 1 - ok
	}

	dropFrac := func(unavail map[string]bool) float64 {
		var d float64
		for _, p := range s.Paths {
			d += p.TrafficShare * pathFail(p, unavail)
		}
		return d
	}

	nextState := func(f fault, e effect) fault {
		switch e.kind {
		case 1: // restart component
			if (f.kind == faultCrash || f.kind == faultZombie) && f.name == e.name {
				return fault{kind: faultNone}
			}
		case 2: // reboot host
			if f.kind == faultHost && f.name == e.name {
				return fault{kind: faultNone}
			}
			if (f.kind == faultCrash || f.kind == faultZombie) && compByName[f.name].Host == e.name {
				return fault{kind: faultNone}
			}
		}
		return f
	}

	// Per-state monitor DOWN probabilities, in monitor order.
	monitorNames := make([]string, 0, len(s.ComponentMonitors)+len(s.PathMonitors))
	for _, m := range s.ComponentMonitors {
		monitorNames = append(monitorNames, m.Name)
	}
	for _, m := range s.PathMonitors {
		monitorNames = append(monitorNames, m.Name)
	}
	downProbs := func(f fault) []float64 {
		probs := make([]float64, 0, len(monitorNames))
		for _, m := range s.ComponentMonitors {
			cov, fp := defaultCoverage(m.Coverage), m.FalsePositive
			crashed := (f.kind == faultCrash && f.name == m.Target) ||
				(f.kind == faultHost && compByName[m.Target].Host == f.name)
			if crashed {
				probs = append(probs, cov)
			} else {
				probs = append(probs, fp)
			}
		}
		u := unavailable(f, effect{})
		for _, m := range s.PathMonitors {
			cov, fp := defaultCoverage(m.Coverage), m.FalsePositive
			pf := pathFail(pathByName[m.Path], u)
			probs = append(probs, cov*pf+fp*(1-pf))
		}
		return probs
	}

	b := pomdp.NewBuilder()
	// Intern states and actions in enumeration order so indices are stable.
	for _, f := range faults {
		b.State(f.stateName())
	}
	for _, a := range actions {
		b.Action(a.name)
	}

	for _, f := range faults {
		from := f.stateName()
		for _, a := range actions {
			to := nextState(f, a.eff)
			b.Transition(from, a.name, to.stateName(), 1)

			during := dropFrac(unavailable(f, a.eff))
			after := dropFrac(unavailable(to, effect{}))
			r := -(during*a.duration + after*s.MonitorDuration + s.MonitorCost)
			if r != 0 {
				b.Reward(from, a.name, r)
			}

			// Monitors run after the action lands in `to`; the observation
			// row belongs to the landing state.
		}
	}
	// Observation rows: q(o|s,a) is action-independent (monitors sample the
	// landing state), so emit the same distribution for every action.
	for _, f := range faults {
		state := f.stateName()
		combos := enumerateObservations(monitorNames, downProbs(f))
		for _, cb := range combos {
			for _, a := range actions {
				b.Observe(state, a.name, cb.name, cb.prob)
			}
		}
	}

	model, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("arch: compile %q: %w", s.Name, err)
	}

	c := &Compiled{
		StateIndex:      make(map[string]int, model.NumStates()),
		ActionIndex:     make(map[string]int, model.NumActions()),
		MonitorNames:    monitorNames,
		MonitorDuration: s.MonitorDuration,
	}
	for i := 0; i < model.NumStates(); i++ {
		c.StateIndex[model.M.StateName(i)] = i
	}
	for i := 0; i < model.NumActions(); i++ {
		c.ActionIndex[model.M.ActionName(i)] = i
	}
	c.NullState = c.StateIndex[NullStateName]
	c.ObserveAction = c.ActionIndex[ObserveActionName]
	for _, f := range faults {
		idx := c.StateIndex[f.stateName()]
		switch f.kind {
		case faultCrash:
			c.CrashStates = append(c.CrashStates, idx)
		case faultZombie:
			c.ZombieStates = append(c.ZombieStates, idx)
		case faultHost:
			c.HostStates = append(c.HostStates, idx)
		}
	}

	rates := linalg.NewVector(model.NumStates())
	durations := make([]float64, model.NumActions())
	for _, f := range faults {
		rates[c.StateIndex[f.stateName()]] = -dropFrac(unavailable(f, effect{}))
	}
	for _, a := range actions {
		durations[c.ActionIndex[a.name]] = a.duration
	}
	c.Recovery = &core.RecoveryModel{
		POMDP:           model,
		NullStates:      []int{c.NullState},
		RateRewards:     rates,
		Durations:       durations,
		MonitorAction:   c.ObserveAction,
		MonitorDuration: s.MonitorDuration,
	}
	if err := c.Recovery.Validate(); err != nil {
		return nil, fmt.Errorf("arch: compiled model invalid: %w", err)
	}
	return c, nil
}

func defaultCoverage(c float64) float64 {
	if c == 0 {
		return 1
	}
	return c
}

type obsCombo struct {
	name string
	prob float64
}

// enumerateObservations expands the joint distribution of independent
// monitor bits, pruning zero-probability branches. The observation name
// lists the DOWN monitors in monitor order.
func enumerateObservations(names []string, downProbs []float64) []obsCombo {
	var out []obsCombo
	var walk func(i int, down []string, prob float64)
	walk = func(i int, down []string, prob float64) {
		if prob == 0 {
			return
		}
		if i == len(names) {
			out = append(out, obsCombo{name: ObservationName(down), prob: prob})
			return
		}
		walk(i+1, down, prob*(1-downProbs[i]))
		walk(i+1, append(down, names[i]), prob*downProbs[i])
	}
	walk(0, nil, 1)
	return out
}
