// Package arch compiles a declarative description of a distributed system —
// hosts, components, load-balanced request paths, ping monitors and
// end-to-end path monitors — into a recovery POMDP (a core.RecoveryModel).
//
// The paper hand-builds its 14-state model of AT&T's EMN deployment
// (Figure 4); this package generalizes that construction so the EMN model
// (internal/emn) and user-defined systems come from the same, tested code
// path:
//
//   - one state per fault: component crashes, component "zombies" (alive to
//     pings but functionally dead), and host crashes, plus the null state;
//   - one action per component restart and host reboot, plus a passive
//     observe action;
//   - observations are the joint outputs of all monitors; ping monitors see
//     crashes but not zombies, path monitors see whatever their randomly
//     routed probe traverses — giving exactly the imprecise, probabilistic
//     localization the paper's controller must cope with;
//   - rewards encode dropped-request cost: requests accrue at each path's
//     traffic share and drop when their route crosses a faulty or
//     recovering component (r = r̄·t_a + r̂ folded per Section 2).
package arch

import (
	"errors"
	"fmt"
	"strings"
)

// ErrInvalidSystem is wrapped by all system-validation failures.
var ErrInvalidSystem = errors.New("arch: invalid system description")

// Host is a machine that can crash and be rebooted.
type Host struct {
	// Name identifies the host.
	Name string
	// RebootDuration is the time a reboot takes, in seconds.
	RebootDuration float64
}

// Component is a software component deployed on a host.
type Component struct {
	// Name identifies the component.
	Name string
	// Host is the name of the host the component runs on.
	Host string
	// RestartDuration is the time a restart takes, in seconds.
	RestartDuration float64
}

// Alternative is one load-balancing choice within a path stage.
type Alternative struct {
	// Component is the component name.
	Component string
	// Weight is the routing probability weight (normalized per stage).
	Weight float64
}

// Stage is one hop of a request path: the request is routed to exactly one
// of the alternatives, chosen with probability proportional to weight.
type Stage []Alternative

// Path is a class of end-to-end requests.
type Path struct {
	// Name identifies the path.
	Name string
	// TrafficShare is the fraction of total system requests on this path;
	// shares must sum to 1 across paths.
	TrafficShare float64
	// Stages are traversed in order; the request fails if any traversed
	// component is unavailable.
	Stages []Stage
}

// ComponentMonitor is a ping-style monitor of a single component: it
// detects crashes (of the component or its host) but is fooled by zombies,
// which still answer pings.
type ComponentMonitor struct {
	// Name identifies the monitor (one bit of the observation vector).
	Name string
	// Target is the monitored component.
	Target string
	// Coverage is the probability of reporting DOWN when the target (or its
	// host) has crashed. Zero means 1.
	Coverage float64
	// FalsePositive is the probability of reporting DOWN when the target is
	// up (or a zombie).
	FalsePositive float64
}

// PathMonitor probes a request path end to end with a synthetic request
// routed like real traffic; it detects any fault its probe traverses —
// including zombies — but cannot localize it.
type PathMonitor struct {
	// Name identifies the monitor (one bit of the observation vector).
	Name string
	// Path is the probed path.
	Path string
	// Coverage is the probability of reporting DOWN given the probe's route
	// crossed a fault. Zero means 1.
	Coverage float64
	// FalsePositive is the probability of reporting DOWN when the probe
	// succeeded.
	FalsePositive float64
}

// System is the declarative description compiled into a recovery POMDP.
type System struct {
	// Name labels the system in diagnostics.
	Name string
	// Hosts, Components, Paths describe the architecture.
	Hosts      []Host
	Components []Component
	Paths      []Path
	// ComponentMonitors and PathMonitors define the observation vector, in
	// order: component monitors first, then path monitors.
	ComponentMonitors []ComponentMonitor
	PathMonitors      []PathMonitor
	// MonitorDuration is the time of one monitor sweep, in seconds; a sweep
	// follows every action.
	MonitorDuration float64
	// MonitorCost is the fixed cost of one monitor sweep (the synthetic
	// probe requests consume system capacity), charged on every action's
	// reward. A positive value ensures no action is free outside Sφ —
	// Property 1(a)'s precondition for the paper's termination guarantee —
	// and is what stops an optimal controller from monitoring a healthy
	// system forever.
	MonitorCost float64
	// Fault classes to model. At least one must be enabled.
	CrashFaults  bool
	ZombieFaults bool
	HostFaults   bool
}

const (
	// NullStateName is the name of the fault-free state.
	NullStateName = "null"
	// ObserveActionName is the name of the passive observe action.
	ObserveActionName = "observe"
)

// Fault kinds used in state naming.
const (
	crashPrefix  = "crash:"
	zombiePrefix = "zombie:"
	hostPrefix   = "hostdown:"
)

// Validate checks referential integrity, probability ranges, traffic shares
// and durations.
func (s *System) Validate() error {
	if len(s.Hosts) == 0 || len(s.Components) == 0 {
		return fmt.Errorf("%w: need at least one host and one component", ErrInvalidSystem)
	}
	if !s.CrashFaults && !s.ZombieFaults && !s.HostFaults {
		return fmt.Errorf("%w: no fault classes enabled", ErrInvalidSystem)
	}
	if s.MonitorDuration < 0 {
		return fmt.Errorf("%w: negative monitor duration %v", ErrInvalidSystem, s.MonitorDuration)
	}
	if s.MonitorCost < 0 {
		return fmt.Errorf("%w: negative monitor cost %v", ErrInvalidSystem, s.MonitorCost)
	}
	hosts := make(map[string]bool, len(s.Hosts))
	for _, h := range s.Hosts {
		if h.Name == "" {
			return fmt.Errorf("%w: empty host name", ErrInvalidSystem)
		}
		if hosts[h.Name] {
			return fmt.Errorf("%w: duplicate host %q", ErrInvalidSystem, h.Name)
		}
		if h.RebootDuration < 0 {
			return fmt.Errorf("%w: host %q negative reboot duration", ErrInvalidSystem, h.Name)
		}
		hosts[h.Name] = true
	}
	comps := make(map[string]bool, len(s.Components))
	for _, c := range s.Components {
		if c.Name == "" {
			return fmt.Errorf("%w: empty component name", ErrInvalidSystem)
		}
		if comps[c.Name] {
			return fmt.Errorf("%w: duplicate component %q", ErrInvalidSystem, c.Name)
		}
		if !hosts[c.Host] {
			return fmt.Errorf("%w: component %q on unknown host %q", ErrInvalidSystem, c.Name, c.Host)
		}
		if c.RestartDuration < 0 {
			return fmt.Errorf("%w: component %q negative restart duration", ErrInvalidSystem, c.Name)
		}
		comps[c.Name] = true
	}
	var share float64
	paths := make(map[string]bool, len(s.Paths))
	for _, p := range s.Paths {
		if p.Name == "" {
			return fmt.Errorf("%w: empty path name", ErrInvalidSystem)
		}
		if paths[p.Name] {
			return fmt.Errorf("%w: duplicate path %q", ErrInvalidSystem, p.Name)
		}
		paths[p.Name] = true
		if p.TrafficShare < 0 || p.TrafficShare > 1 {
			return fmt.Errorf("%w: path %q traffic share %v outside [0,1]", ErrInvalidSystem, p.Name, p.TrafficShare)
		}
		share += p.TrafficShare
		if len(p.Stages) == 0 {
			return fmt.Errorf("%w: path %q has no stages", ErrInvalidSystem, p.Name)
		}
		for i, st := range p.Stages {
			if len(st) == 0 {
				return fmt.Errorf("%w: path %q stage %d empty", ErrInvalidSystem, p.Name, i)
			}
			var w float64
			for _, alt := range st {
				if !comps[alt.Component] {
					return fmt.Errorf("%w: path %q references unknown component %q", ErrInvalidSystem, p.Name, alt.Component)
				}
				if alt.Weight <= 0 {
					return fmt.Errorf("%w: path %q stage %d non-positive weight", ErrInvalidSystem, p.Name, i)
				}
				w += alt.Weight
			}
			if w <= 0 {
				return fmt.Errorf("%w: path %q stage %d zero total weight", ErrInvalidSystem, p.Name, i)
			}
		}
	}
	if len(s.Paths) > 0 && (share < 1-1e-9 || share > 1+1e-9) {
		return fmt.Errorf("%w: traffic shares sum to %v, want 1", ErrInvalidSystem, share)
	}
	if len(s.ComponentMonitors)+len(s.PathMonitors) == 0 {
		return fmt.Errorf("%w: no monitors", ErrInvalidSystem)
	}
	monNames := make(map[string]bool)
	for _, m := range s.ComponentMonitors {
		if m.Name == "" || monNames[m.Name] {
			return fmt.Errorf("%w: missing or duplicate monitor name %q", ErrInvalidSystem, m.Name)
		}
		monNames[m.Name] = true
		if !comps[m.Target] {
			return fmt.Errorf("%w: monitor %q targets unknown component %q", ErrInvalidSystem, m.Name, m.Target)
		}
		if err := probRange(m.Coverage, m.FalsePositive); err != nil {
			return fmt.Errorf("%w: monitor %q: %v", ErrInvalidSystem, m.Name, err)
		}
	}
	for _, m := range s.PathMonitors {
		if m.Name == "" || monNames[m.Name] {
			return fmt.Errorf("%w: missing or duplicate monitor name %q", ErrInvalidSystem, m.Name)
		}
		monNames[m.Name] = true
		if !paths[m.Path] {
			return fmt.Errorf("%w: monitor %q probes unknown path %q", ErrInvalidSystem, m.Name, m.Path)
		}
		if err := probRange(m.Coverage, m.FalsePositive); err != nil {
			return fmt.Errorf("%w: monitor %q: %v", ErrInvalidSystem, m.Name, err)
		}
	}
	return nil
}

func probRange(coverage, falsePositive float64) error {
	if coverage < 0 || coverage > 1 {
		return fmt.Errorf("coverage %v outside [0,1]", coverage)
	}
	if falsePositive < 0 || falsePositive > 1 {
		return fmt.Errorf("false positive %v outside [0,1]", falsePositive)
	}
	return nil
}

// CrashStateName returns the state name of component c's crash fault.
func CrashStateName(c string) string { return crashPrefix + c }

// ZombieStateName returns the state name of component c's zombie fault.
func ZombieStateName(c string) string { return zombiePrefix + c }

// HostDownStateName returns the state name of host h's crash fault.
func HostDownStateName(h string) string { return hostPrefix + h }

// RestartActionName returns the action name restarting component c.
func RestartActionName(c string) string { return "restart:" + c }

// RebootActionName returns the action name rebooting host h.
func RebootActionName(h string) string { return "reboot:" + h }

// ObservationName renders an observation from the DOWN-reporting monitor
// names, in monitor order; the all-clear observation is "obs:clear".
func ObservationName(down []string) string {
	if len(down) == 0 {
		return "obs:clear"
	}
	return "obs:" + strings.Join(down, "+")
}
