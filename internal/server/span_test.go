package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/obs"
	"bpomdp/internal/pomdp"
)

// spanBuffer is a goroutine-safe span sink for tests (replication goroutines
// write spans concurrently with the test's reads).
type spanBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *spanBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *spanBuffer) Spans(t *testing.T) []obs.SpanRecord {
	t.Helper()
	b.mu.Lock()
	data := b.buf.String()
	b.mu.Unlock()
	spans, err := obs.DecodeSpans(strings.NewReader(data))
	if err != nil {
		t.Fatalf("decode spans: %v", err)
	}
	return spans
}

func countKind(spans []obs.SpanRecord, kind string) int {
	n := 0
	for _, sp := range spans {
		if sp.Kind == kind {
			n++
		}
	}
	return n
}

// TestHealthzDrainsOnShutdown pins the graceful-shutdown contract: once
// BeginShutdown is called /healthz flips to 503 so load balancers stop
// routing new work here, while in-flight episode traffic keeps being served.
func TestHealthzDrainsOnShutdown(t *testing.T) {
	srv, _ := newTestServer(t)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz before shutdown: %d", got)
	}

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out StartResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	srv.BeginShutdown()
	srv.BeginShutdown() // idempotent

	if got := get("/healthz"); got != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d, want 503", got)
	}
	// Episode traffic still drains normally.
	if got := get(fmt.Sprintf("/v1/episodes/%d/decision", out.EpisodeID)); got != http.StatusOK {
		t.Errorf("decision during drain: %d, want 200", got)
	}
	if got := get("/metrics"); got != http.StatusOK {
		t.Errorf("metrics during drain: %d, want 200", got)
	}
}

// TestFleetHealthSnapshot exercises GET /v1/fleet/health on a single-node
// server: working-set sizes, per-tier decision accounting, and the draining
// flag must all reflect live server state. (Fleet mode adds the membership
// view; that path is covered by the chaos tests.)
func TestFleetHealthSnapshot(t *testing.T) {
	srv, _ := newTestServer(t)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	health := func() HealthView {
		t.Helper()
		resp, err := http.Get(hs.URL + "/v1/fleet/health")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("health status %d", resp.StatusCode)
		}
		var v HealthView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}

	v := health()
	if v.Node != "recoverd" {
		t.Errorf("node %q, want default \"recoverd\"", v.Node)
	}
	if v.Draining || v.OpenEpisodes != 0 || v.Fleet != nil {
		t.Errorf("fresh server health: %+v", v)
	}
	if v.UptimeSeconds <= 0 {
		t.Errorf("uptime %v, want > 0", v.UptimeSeconds)
	}

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out StartResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for i := 0; i < 3; i++ {
		dr, err := http.Get(hs.URL + fmt.Sprintf("/v1/episodes/%d/decision", out.EpisodeID))
		if err != nil {
			t.Fatal(err)
		}
		dr.Body.Close()
	}

	v = health()
	if v.OpenEpisodes != 1 {
		t.Errorf("openEpisodes %d, want 1", v.OpenEpisodes)
	}
	// Cached-decision retries don't recount; exactly one decision computed.
	if v.Decisions.Total != 1 {
		t.Errorf("decisions total %d, want 1", v.Decisions.Total)
	}
	var tiered uint64
	for tier, tv := range v.Decisions.ByTier {
		if tier != controller.TierFSC && tier != controller.TierTree {
			t.Errorf("unexpected tier %q", tier)
		}
		tiered += tv.Count
		if tv.Count > 0 && tv.RatePerSecond <= 0 {
			t.Errorf("tier %q: count %d with rate %v", tier, tv.Count, tv.RatePerSecond)
		}
	}
	if tiered != 1 {
		t.Errorf("per-tier counts sum to %d, want 1", tiered)
	}

	srv.BeginShutdown()
	if v = health(); !v.Draining {
		t.Error("draining not reported after BeginShutdown")
	}
}

// TestSpannedHandlersEmitSpans drives a traced episode end to end over a
// span-enabled server and checks the emitted stream: handler spans keyed by
// the trace header, the decide span carrying its serving tier, and
// checkpoint spans for the write-ahead saves and the terminal tombstone.
func TestSpannedHandlersEmitSpans(t *testing.T) {
	prep := testPrepared(t)
	sink := &spanBuffer{}
	srv, err := New(Config{
		Model:         prep.Model,
		NewController: boundedFactory(prep),
		Checkpointer:  openStore(t, "log", t.TempDir()),
		SpanTrace:     sink,
		Node:          "n-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	const trace = "ck-trace-1"
	do := func(method, path, body string) *http.Response {
		t.Helper()
		var rd *strings.Reader
		if body != "" {
			rd = strings.NewReader(body)
		} else {
			rd = strings.NewReader("")
		}
		req, err := http.NewRequest(method, hs.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(HeaderTrace, trace)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := do("POST", "/v1/episodes", `{"clientKey":"ck-trace-1"}`)
	var out StartResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp = do("GET", fmt.Sprintf("/v1/episodes/%d/decision", out.EpisodeID), "")
	var d DecisionResponse
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(HeaderTier); got != controller.TierTree && got != controller.TierFSC {
		t.Errorf("%s = %q, want a tier label", HeaderTier, got)
	}

	sc := pomdp.NewScratch(prep.Model)
	succs := prep.Model.Successors(sc, pomdp.PointBelief(prep.Model.NumStates(), 0), d.Action)
	resp = do("POST", fmt.Sprintf("/v1/episodes/%d/observations", out.EpisodeID),
		fmt.Sprintf(`{"action":%d,"observation":%d,"stepIndex":0}`, d.Action, succs[0].Obs))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("observation status %d", resp.StatusCode)
	}

	// An untraced request must leave no span behind.
	ur, err := http.Get(hs.URL + fmt.Sprintf("/v1/episodes/%d", out.EpisodeID))
	if err != nil {
		t.Fatal(err)
	}
	ur.Body.Close()

	spans := sink.Spans(t)
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}
	for i, sp := range spans {
		if sp.TraceID != trace {
			t.Errorf("span %d trace %q, want %q", i, sp.TraceID, trace)
		}
		if sp.Node != "n-test" {
			t.Errorf("span %d node %q, want n-test", i, sp.Node)
		}
		if sp.Start == 0 {
			t.Errorf("span %d has zero start", i)
		}
	}
	if n := countKind(spans, obs.SpanServerStart); n != 1 {
		t.Errorf("%d start spans, want 1", n)
	}
	if n := countKind(spans, obs.SpanServerDecide); n != 1 {
		t.Errorf("%d decide spans, want 1", n)
	}
	if n := countKind(spans, obs.SpanServerStatus); n != 0 {
		t.Errorf("%d status spans for the untraced request, want 0", n)
	}
	for _, sp := range spans {
		switch sp.Kind {
		case obs.SpanServerDecide:
			if sp.Tier != controller.TierTree && sp.Tier != controller.TierFSC {
				t.Errorf("decide span tier %q", sp.Tier)
			}
			if sp.Status != http.StatusOK {
				t.Errorf("decide span status %d", sp.Status)
			}
			if sp.Episode != out.EpisodeID {
				t.Errorf("decide span episode %d, want %d", sp.Episode, out.EpisodeID)
			}
		case obs.SpanServerObserve:
			if sp.Status != http.StatusNoContent {
				t.Errorf("observe span status %d", sp.Status)
			}
		}
	}
	// The start and the observation each checkpoint write-ahead.
	saves := 0
	for _, sp := range spans {
		if sp.Kind == obs.SpanServerCheckpoint && sp.Op == obs.SpanOpSave {
			saves++
			if sp.Episode != out.EpisodeID {
				t.Errorf("checkpoint span episode %d, want %d", sp.Episode, out.EpisodeID)
			}
		}
	}
	if saves < 2 {
		t.Errorf("%d checkpoint save spans, want >= 2 (start + observation)", saves)
	}

	// Drive the episode to its terminal decision: the tombstone fsync and
	// the episode-record delete must each appear as a checkpoint span.
	for i := 1; i < 200; i++ {
		resp = do("GET", fmt.Sprintf("/v1/episodes/%d/decision", out.EpisodeID), "")
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if d.Terminate {
			break
		}
		succs = prep.Model.Successors(sc, pomdp.PointBelief(prep.Model.NumStates(), 0), d.Action)
		resp = do("POST", fmt.Sprintf("/v1/episodes/%d/observations", out.EpisodeID),
			fmt.Sprintf(`{"action":%d,"observation":%d,"stepIndex":%d}`, d.Action, succs[0].Obs, i))
		resp.Body.Close()
	}
	if !d.Terminate {
		t.Fatal("episode never terminated")
	}
	spans = sink.Spans(t)
	var tombSpans, delSpans int
	for _, sp := range spans {
		if sp.Kind != obs.SpanServerCheckpoint {
			continue
		}
		switch sp.Op {
		case obs.SpanOpTombstone:
			tombSpans++
		case obs.SpanOpDelete:
			delSpans++
		}
	}
	if tombSpans != 1 || delSpans != 1 {
		t.Errorf("terminal checkpoint spans: %d tombstone, %d delete; want 1 and 1", tombSpans, delSpans)
	}
}

// TestSpansDisabledEmitsNothing pins the zero-cost-off contract at the
// behavior level: without Config.SpanTrace the spanned wrapper must return
// the handler unchanged and no HeaderTier must be set.
func TestSpansDisabledEmitsNothing(t *testing.T) {
	srv, _ := newTestServer(t)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	req, err := http.NewRequest("POST", hs.URL+"/v1/episodes", strings.NewReader(`{"clientKey":"k"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderTrace, "k")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out StartResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, err = http.NewRequest("GET", hs.URL+fmt.Sprintf("/v1/episodes/%d/decision", out.EpisodeID), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderTrace, "k")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(HeaderTier); got != "" {
		t.Errorf("%s = %q with spans disabled, want empty", HeaderTier, got)
	}
}
