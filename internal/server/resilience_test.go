package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/models"
	"bpomdp/internal/obs"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// panicController panics on Decide, to exercise the recovery middleware.
type panicController struct{ belief pomdp.Belief }

func (p *panicController) Reset(initial pomdp.Belief) error { p.belief = initial.Clone(); return nil }
func (p *panicController) Decide() (controller.Decision, error) {
	panic("scripted controller panic")
}
func (p *panicController) Observe(int, int) error { return nil }
func (p *panicController) Belief() pomdp.Belief   { return p.belief.Clone() }
func (p *panicController) Name() string           { return "panic" }

// testPrepared builds the shared two-server Prepared used by resilience
// tests.
func testPrepared(t *testing.T) *core.Prepared {
	t.Helper()
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rm := &core.RecoveryModel{
		POMDP:           ts.Model,
		NullStates:      ts.NullStates,
		RateRewards:     ts.RateRewards,
		Durations:       []float64{1, 1, 0},
		MonitorAction:   ts.ActionObserve,
		MonitorDuration: 0.1,
	}
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 1, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	return prep
}

func boundedFactory(prep *core.Prepared) Factory {
	return func() (controller.Controller, pomdp.Belief, error) {
		ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1})
		if err != nil {
			return nil, nil, err
		}
		initial, err := prep.InitialBelief()
		return ctrl, initial, err
	}
}

func metricsBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestPanicBecomesInternalError(t *testing.T) {
	prep := testPrepared(t)
	srv, err := New(Config{
		Model: prep.Model,
		NewController: func() (controller.Controller, pomdp.Belief, error) {
			initial, err := prep.InitialBelief()
			return &panicController{}, initial, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("start status %d", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/v1/episodes/1/decision")
	if err != nil {
		t.Fatal(err)
	}
	var apiErr ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panic status %d", resp.StatusCode)
	}
	if !strings.Contains(apiErr.Error, "panic") {
		t.Errorf("panic error body %q", apiErr.Error)
	}
	if !strings.Contains(metricsBody(t, hs.URL), "recoverd_panics_total 1") {
		t.Error("panics_total not incremented")
	}
}

func TestBodyLimit(t *testing.T) {
	prep := testPrepared(t)
	srv, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep), MaxBodyBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	huge := fmt.Sprintf(`{"action":0,"observation":0,"actionName":%q}`, strings.Repeat("x", 4096))
	resp, err = http.Post(hs.URL+"/v1/episodes/1/observations", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status %d", resp.StatusCode)
	}
}

func TestRetryAfterOnEpisodeCap(t *testing.T) {
	prep := testPrepared(t)
	srv, err := New(Config{
		Model:         prep.Model,
		NewController: boundedFactory(prep),
		MaxEpisodes:   1,
		RetryAfter:    3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After %q, want 3", got)
	}
}

func TestStartIdempotencyKey(t *testing.T) {
	prep := testPrepared(t)
	srv, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep)})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	start := func() (int, StartResponse) {
		resp, err := http.Post(hs.URL+"/v1/episodes", "application/json",
			strings.NewReader(`{"clientKey":"k-123"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out StartResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}
	code1, first := start()
	code2, second := start()
	if code1 != http.StatusCreated || code2 != http.StatusOK {
		t.Errorf("statuses %d/%d, want 201/200", code1, code2)
	}
	if first.EpisodeID != second.EpisodeID {
		t.Errorf("duplicate start created a second episode: %d vs %d", first.EpisodeID, second.EpisodeID)
	}
	if srv.OpenEpisodes() != 1 {
		t.Errorf("open episodes = %d", srv.OpenEpisodes())
	}
	if !strings.Contains(metricsBody(t, hs.URL), "recoverd_deduped_starts_total 1") {
		t.Error("deduped_starts_total not incremented")
	}
}

func TestObservationStepIndexDedupe(t *testing.T) {
	prep := testPrepared(t)
	srv, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep)})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/episodes/1/observations", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	steps := func() int {
		t.Helper()
		resp, err := http.Get(hs.URL + "/v1/episodes/1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st StatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.Steps
	}

	obs := `{"actionName":"observe","observationName":"obs-a-failed","stepIndex":0}`
	if code := post(obs); code != http.StatusNoContent {
		t.Fatalf("first observation status %d", code)
	}
	if got := steps(); got != 1 {
		t.Fatalf("steps after first observation = %d", got)
	}
	// Retransmit of step 0: acknowledged, not re-applied.
	if code := post(obs); code != http.StatusNoContent {
		t.Errorf("retransmit status %d", code)
	}
	if got := steps(); got != 1 {
		t.Errorf("steps after retransmit = %d (duplicate was applied)", got)
	}
	// A step from the future is a protocol error.
	if code := post(`{"actionName":"observe","observationName":"obs-a-failed","stepIndex":5}`); code != http.StatusConflict {
		t.Errorf("out-of-order status %d", code)
	}
	if !strings.Contains(metricsBody(t, hs.URL), "recoverd_deduped_observations_total 1") {
		t.Error("deduped_observations_total not incremented")
	}
}

func TestDecisionCachedPerStep(t *testing.T) {
	prep := testPrepared(t)
	srv, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep)})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	get := func() []byte {
		t.Helper()
		resp, err := http.Get(hs.URL + "/v1/episodes/1/decision")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := get()
	second := get()
	if string(first) != string(second) {
		t.Errorf("retried decision differs:\n%s\n%s", first, second)
	}
	if srv.m.decisions.Value() != 1 {
		t.Errorf("decisions_total = %d, want 1 (second call must be served from cache)", srv.m.decisions.Value())
	}
}

func TestTerminalDecisionSurvivesAsTombstone(t *testing.T) {
	prep := testPrepared(t)
	srv, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep)})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Drive to termination with healthy-system observations.
	model := prep.Model
	sc := pomdp.NewScratch(model)
	var final DecisionResponse
	for step := 0; step < 50; step++ {
		resp, err := http.Get(hs.URL + "/v1/episodes/1/decision")
		if err != nil {
			t.Fatal(err)
		}
		var d DecisionResponse
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if d.Terminate {
			final = d
			break
		}
		succs := model.Successors(sc, pomdp.PointBelief(model.NumStates(), 0), d.Action)
		body := fmt.Sprintf(`{"action":%d,"observation":%d}`, d.Action, succs[0].Obs)
		or, err := http.Post(hs.URL+"/v1/episodes/1/observations", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		or.Body.Close()
	}
	if !final.Terminate {
		t.Fatal("episode did not terminate")
	}
	if srv.OpenEpisodes() != 0 {
		t.Fatalf("open episodes after terminate = %d", srv.OpenEpisodes())
	}

	// A client whose terminal response was lost retries and still gets it.
	resp, err = http.Get(hs.URL + "/v1/episodes/1/decision")
	if err != nil {
		t.Fatal(err)
	}
	var replayed DecisionResponse
	if err := json.NewDecoder(resp.Body).Decode(&replayed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || replayed != final {
		t.Errorf("tombstone decision %+v (status %d), want %+v", replayed, resp.StatusCode, final)
	}
}

func TestTTLEviction(t *testing.T) {
	prep := testPrepared(t)
	// The fake clock is guarded because the eviction janitor may read it
	// concurrently with the test advancing it.
	var mu sync.Mutex
	now := time.Now()
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	srv, err := New(Config{
		Model:         prep.Model,
		NewController: boundedFactory(prep),
		EpisodeTTL:    time.Minute,
		now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if srv.OpenEpisodes() != 1 {
		t.Fatalf("open episodes = %d", srv.OpenEpisodes())
	}
	if n := srv.Sweep(); n != 0 {
		t.Fatalf("fresh episode evicted (%d)", n)
	}
	advance(2 * time.Minute)
	if n := srv.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1", n)
	}
	if srv.OpenEpisodes() != 0 {
		t.Errorf("open episodes after eviction = %d", srv.OpenEpisodes())
	}
	if !strings.Contains(metricsBody(t, hs.URL), "recoverd_episodes_evicted_total 1") {
		t.Error("episodes_evicted_total not incremented")
	}
}

// metricValue extracts one exact series value from a /metrics body.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s: unparsable value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in metrics body:\n%s", series, body)
	return 0
}

// batchBuckets parses the batch handler's latency-histogram bucket series
// from a /metrics body, in rendered (ascending-le) order.
func batchBuckets(t *testing.T, body string) []float64 {
	t.Helper()
	const prefix = `recoverd_request_duration_seconds_bucket{handler="batch",le="`
	var out []float64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		i := strings.LastIndex(line, " ")
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		t.Fatalf("no batch-handler bucket series in metrics body:\n%s", body)
	}
	return out
}

// TestMetricsConcurrentWithBatchDecides: scraping /metrics while batch
// decides hammer the registry must be race-free (this test is the -race
// probe for the shared registry), every scrape must show cumulative bucket
// counts that never move backwards across scrapes, and once the writers
// quiesce the histogram count must equal the batch request counter and the
// batch decision counter must equal requests times batch width.
func TestMetricsConcurrentWithBatchDecides(t *testing.T) {
	srv, prep := newBatchTestServer(t, nil)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	n := prep.Model.NumStates()
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1 / float64(n)
	}
	req := BatchDecideRequest{Beliefs: [][]float64{uniform, uniform, uniform}}
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	const writers, posts = 4, 12
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < posts; i++ {
				resp, err := http.Post(hs.URL+"/v1/decide/batch", "application/json", strings.NewReader(string(payload)))
				if err != nil {
					t.Errorf("batch post: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("batch status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()

	var prev []float64
scrape:
	for {
		body := metricsBody(t, hs.URL)
		got := batchBuckets(t, body)
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Fatalf("bucket counts not cumulative within a scrape: %v", got)
			}
		}
		if len(prev) == len(got) {
			for i := range got {
				if got[i] < prev[i] {
					t.Fatalf("bucket %d moved backwards across scrapes: %v -> %v", i, prev, got)
				}
			}
		}
		prev = got
		select {
		case <-done:
			break scrape
		default:
		}
	}

	body := metricsBody(t, hs.URL)
	requests := metricValue(t, body, "recoverd_batch_decide_requests_total")
	if requests != writers*posts {
		t.Errorf("batch request counter %v, want %d", requests, writers*posts)
	}
	hcount := metricValue(t, body, `recoverd_request_duration_seconds_count{handler="batch"}`)
	if hcount != requests {
		t.Errorf("batch latency histogram count %v does not match request counter %v", hcount, requests)
	}
	final := batchBuckets(t, body)
	if inf := final[len(final)-1]; inf != hcount {
		t.Errorf("le=+Inf bucket %v does not match histogram count %v", inf, hcount)
	}
	decided := metricValue(t, body, "recoverd_batch_decisions_total")
	if want := requests * float64(len(req.Beliefs)); decided != want {
		t.Errorf("batch decision counter %v, want %v", decided, want)
	}
}

// TestMetricsSeriesPreserved: the registry-rendered /metrics must keep every
// series name the hand-rolled exporter exposed, serve the open-episode count
// from the registry gauge, and expose a latency histogram per instrumented
// handler once each has served a request.
func TestMetricsSeriesPreserved(t *testing.T) {
	srv, prep := newBatchTestServer(t, nil)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// One request through each instrumented handler.
	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(hs.URL + "/v1/episodes/1/decision")
	if err != nil {
		t.Fatal(err)
	}
	var d DecisionResponse
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	model := prep.Model
	succs := model.Successors(pomdp.NewScratch(model), pomdp.PointBelief(model.NumStates(), 0), d.Action)
	body := fmt.Sprintf(`{"action":%d,"observation":%d}`, d.Action, succs[0].Obs)
	resp, err = http.Post(hs.URL+"/v1/episodes/1/observations", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	n := model.NumStates()
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1 / float64(n)
	}
	payload, err := json.Marshal(BatchDecideRequest{Beliefs: [][]float64{uniform}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(hs.URL+"/v1/decide/batch", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mb := metricsBody(t, hs.URL)
	legacy := []string{
		"recoverd_episodes_started_total",
		"recoverd_episodes_terminated_total",
		"recoverd_episodes_evicted_total",
		"recoverd_episodes_resumed_total",
		"recoverd_decisions_total",
		"recoverd_observations_total",
		"recoverd_deduped_starts_total",
		"recoverd_deduped_observations_total",
		"recoverd_batch_decide_requests_total",
		"recoverd_batch_decisions_total",
		"recoverd_panics_total",
		"recoverd_checkpoint_errors_total",
	}
	for _, name := range legacy {
		if !strings.Contains(mb, "\n"+name+" ") {
			t.Errorf("legacy series %s missing from /metrics", name)
		}
	}
	if got := metricValue(t, mb, "recoverd_episodes_open"); got != float64(srv.OpenEpisodes()) {
		t.Errorf("recoverd_episodes_open %v, want %d", got, srv.OpenEpisodes())
	}
	if !strings.Contains(mb, "# TYPE recoverd_request_duration_seconds histogram") {
		t.Error("latency histogram family missing TYPE header")
	}
	for _, h := range []string{"start", "decide", "observe", "batch"} {
		series := fmt.Sprintf(`recoverd_request_duration_seconds_count{handler=%q}`, h)
		if got := metricValue(t, mb, series); got < 1 {
			t.Errorf("handler %s latency histogram count %v, want >= 1", h, got)
		}
	}
}

// TestDecisionTraceRoundTrip: with DecisionTrace set and a stats-collecting
// controller, the server must emit one schema-tagged JSONL record per
// freshly computed decision — cached retries must not re-record — and the
// records must round-trip through obs.DecodeTrace with the bound-gap
// explanation populated.
func TestDecisionTraceRoundTrip(t *testing.T) {
	prep := testPrepared(t)
	var buf bytes.Buffer
	srv, err := New(Config{
		Model: prep.Model,
		NewController: func() (controller.Controller, pomdp.Belief, error) {
			ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1, CollectStats: true})
			if err != nil {
				return nil, nil, err
			}
			initial, err := prep.InitialBelief()
			return ctrl, initial, err
		},
		DecisionTrace: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	model := prep.Model
	sc := pomdp.NewScratch(model)
	fresh := 0
	terminated := false
	for step := 0; step < 50 && !terminated; step++ {
		var d DecisionResponse
		// Two GETs per step: the second is served from the cache and must
		// not add a trace record.
		for i := 0; i < 2; i++ {
			resp, err := http.Get(hs.URL + "/v1/episodes/1/decision")
			if err != nil {
				t.Fatal(err)
			}
			if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		fresh++
		if d.Terminate {
			terminated = true
			break
		}
		succs := model.Successors(sc, pomdp.PointBelief(model.NumStates(), 0), d.Action)
		body := fmt.Sprintf(`{"action":%d,"observation":%d}`, d.Action, succs[0].Obs)
		or, err := http.Post(hs.URL+"/v1/episodes/1/observations", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		or.Body.Close()
	}
	if !terminated {
		t.Fatal("episode did not terminate")
	}

	recs, err := obs.DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != fresh {
		t.Fatalf("%d trace records for %d fresh decisions (cached retries must not re-record)", len(recs), fresh)
	}
	na := model.NumActions()
	for i, rec := range recs {
		if rec.Episode != 1 {
			t.Errorf("record %d: episode %d, want 1", i, rec.Episode)
		}
		if rec.Step != i {
			t.Errorf("record %d: step %d, want %d", i, rec.Step, i)
		}
		if rec.BoundGap < -1e-9 {
			t.Errorf("record %d: bound gap %v < 0 violates Property 1(b)", i, rec.BoundGap)
		}
		if rec.BeliefEntropy < 0 {
			t.Errorf("record %d: negative belief entropy %v", i, rec.BeliefEntropy)
		}
		if len(rec.QValues) != na {
			t.Errorf("record %d: %d q-values, want %d", i, len(rec.QValues), na)
		}
		if rec.Action >= 0 && rec.ActionName == "" {
			t.Errorf("record %d: action %d has no name", i, rec.Action)
		}
		if !rec.Terminate && rec.TreeNodes == 0 {
			t.Errorf("record %d: non-terminal decision reports zero tree nodes", i)
		}
	}
	last := recs[len(recs)-1]
	if !last.Terminate {
		t.Error("final trace record is not the terminal decision")
	}
}
