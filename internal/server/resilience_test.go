package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// panicController panics on Decide, to exercise the recovery middleware.
type panicController struct{ belief pomdp.Belief }

func (p *panicController) Reset(initial pomdp.Belief) error { p.belief = initial.Clone(); return nil }
func (p *panicController) Decide() (controller.Decision, error) {
	panic("scripted controller panic")
}
func (p *panicController) Observe(int, int) error { return nil }
func (p *panicController) Belief() pomdp.Belief   { return p.belief.Clone() }
func (p *panicController) Name() string           { return "panic" }

// testPrepared builds the shared two-server Prepared used by resilience
// tests.
func testPrepared(t *testing.T) *core.Prepared {
	t.Helper()
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rm := &core.RecoveryModel{
		POMDP:           ts.Model,
		NullStates:      ts.NullStates,
		RateRewards:     ts.RateRewards,
		Durations:       []float64{1, 1, 0},
		MonitorAction:   ts.ActionObserve,
		MonitorDuration: 0.1,
	}
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 1, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	return prep
}

func boundedFactory(prep *core.Prepared) Factory {
	return func() (controller.Controller, pomdp.Belief, error) {
		ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1})
		if err != nil {
			return nil, nil, err
		}
		initial, err := prep.InitialBelief()
		return ctrl, initial, err
	}
}

func metricsBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestPanicBecomesInternalError(t *testing.T) {
	prep := testPrepared(t)
	srv, err := New(Config{
		Model: prep.Model,
		NewController: func() (controller.Controller, pomdp.Belief, error) {
			initial, err := prep.InitialBelief()
			return &panicController{}, initial, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("start status %d", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/v1/episodes/1/decision")
	if err != nil {
		t.Fatal(err)
	}
	var apiErr ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panic status %d", resp.StatusCode)
	}
	if !strings.Contains(apiErr.Error, "panic") {
		t.Errorf("panic error body %q", apiErr.Error)
	}
	if !strings.Contains(metricsBody(t, hs.URL), "recoverd_panics_total 1") {
		t.Error("panics_total not incremented")
	}
}

func TestBodyLimit(t *testing.T) {
	prep := testPrepared(t)
	srv, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep), MaxBodyBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	huge := fmt.Sprintf(`{"action":0,"observation":0,"actionName":%q}`, strings.Repeat("x", 4096))
	resp, err = http.Post(hs.URL+"/v1/episodes/1/observations", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status %d", resp.StatusCode)
	}
}

func TestRetryAfterOnEpisodeCap(t *testing.T) {
	prep := testPrepared(t)
	srv, err := New(Config{
		Model:         prep.Model,
		NewController: boundedFactory(prep),
		MaxEpisodes:   1,
		RetryAfter:    3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After %q, want 3", got)
	}
}

func TestStartIdempotencyKey(t *testing.T) {
	prep := testPrepared(t)
	srv, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep)})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	start := func() (int, StartResponse) {
		resp, err := http.Post(hs.URL+"/v1/episodes", "application/json",
			strings.NewReader(`{"clientKey":"k-123"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out StartResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}
	code1, first := start()
	code2, second := start()
	if code1 != http.StatusCreated || code2 != http.StatusOK {
		t.Errorf("statuses %d/%d, want 201/200", code1, code2)
	}
	if first.EpisodeID != second.EpisodeID {
		t.Errorf("duplicate start created a second episode: %d vs %d", first.EpisodeID, second.EpisodeID)
	}
	if srv.OpenEpisodes() != 1 {
		t.Errorf("open episodes = %d", srv.OpenEpisodes())
	}
	if !strings.Contains(metricsBody(t, hs.URL), "recoverd_deduped_starts_total 1") {
		t.Error("deduped_starts_total not incremented")
	}
}

func TestObservationStepIndexDedupe(t *testing.T) {
	prep := testPrepared(t)
	srv, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep)})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/episodes/1/observations", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	steps := func() int {
		t.Helper()
		resp, err := http.Get(hs.URL + "/v1/episodes/1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st StatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.Steps
	}

	obs := `{"actionName":"observe","observationName":"obs-a-failed","stepIndex":0}`
	if code := post(obs); code != http.StatusNoContent {
		t.Fatalf("first observation status %d", code)
	}
	if got := steps(); got != 1 {
		t.Fatalf("steps after first observation = %d", got)
	}
	// Retransmit of step 0: acknowledged, not re-applied.
	if code := post(obs); code != http.StatusNoContent {
		t.Errorf("retransmit status %d", code)
	}
	if got := steps(); got != 1 {
		t.Errorf("steps after retransmit = %d (duplicate was applied)", got)
	}
	// A step from the future is a protocol error.
	if code := post(`{"actionName":"observe","observationName":"obs-a-failed","stepIndex":5}`); code != http.StatusConflict {
		t.Errorf("out-of-order status %d", code)
	}
	if !strings.Contains(metricsBody(t, hs.URL), "recoverd_deduped_observations_total 1") {
		t.Error("deduped_observations_total not incremented")
	}
}

func TestDecisionCachedPerStep(t *testing.T) {
	prep := testPrepared(t)
	srv, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep)})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	get := func() []byte {
		t.Helper()
		resp, err := http.Get(hs.URL + "/v1/episodes/1/decision")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := get()
	second := get()
	if string(first) != string(second) {
		t.Errorf("retried decision differs:\n%s\n%s", first, second)
	}
	if srv.decisions.Load() != 1 {
		t.Errorf("decisions_total = %d, want 1 (second call must be served from cache)", srv.decisions.Load())
	}
}

func TestTerminalDecisionSurvivesAsTombstone(t *testing.T) {
	prep := testPrepared(t)
	srv, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep)})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Drive to termination with healthy-system observations.
	model := prep.Model
	sc := pomdp.NewScratch(model)
	var final DecisionResponse
	for step := 0; step < 50; step++ {
		resp, err := http.Get(hs.URL + "/v1/episodes/1/decision")
		if err != nil {
			t.Fatal(err)
		}
		var d DecisionResponse
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if d.Terminate {
			final = d
			break
		}
		succs := model.Successors(sc, pomdp.PointBelief(model.NumStates(), 0), d.Action)
		body := fmt.Sprintf(`{"action":%d,"observation":%d}`, d.Action, succs[0].Obs)
		or, err := http.Post(hs.URL+"/v1/episodes/1/observations", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		or.Body.Close()
	}
	if !final.Terminate {
		t.Fatal("episode did not terminate")
	}
	if srv.OpenEpisodes() != 0 {
		t.Fatalf("open episodes after terminate = %d", srv.OpenEpisodes())
	}

	// A client whose terminal response was lost retries and still gets it.
	resp, err = http.Get(hs.URL + "/v1/episodes/1/decision")
	if err != nil {
		t.Fatal(err)
	}
	var replayed DecisionResponse
	if err := json.NewDecoder(resp.Body).Decode(&replayed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || replayed != final {
		t.Errorf("tombstone decision %+v (status %d), want %+v", replayed, resp.StatusCode, final)
	}
}

func TestTTLEviction(t *testing.T) {
	prep := testPrepared(t)
	// The fake clock is guarded because the eviction janitor may read it
	// concurrently with the test advancing it.
	var mu sync.Mutex
	now := time.Now()
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	srv, err := New(Config{
		Model:         prep.Model,
		NewController: boundedFactory(prep),
		EpisodeTTL:    time.Minute,
		now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if srv.OpenEpisodes() != 1 {
		t.Fatalf("open episodes = %d", srv.OpenEpisodes())
	}
	if n := srv.Sweep(); n != 0 {
		t.Fatalf("fresh episode evicted (%d)", n)
	}
	advance(2 * time.Minute)
	if n := srv.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1", n)
	}
	if srv.OpenEpisodes() != 0 {
		t.Errorf("open episodes after eviction = %d", srv.OpenEpisodes())
	}
	if !strings.Contains(metricsBody(t, hs.URL), "recoverd_episodes_evicted_total 1") {
		t.Error("episodes_evicted_total not incremented")
	}
}
