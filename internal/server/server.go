// Package server exposes recovery controllers over HTTP — the deployable
// form of the framework. System monitors POST their outputs, the service
// replies with the next recovery action, and the episode ends when the
// controller decides to terminate.
//
// The API is JSON over HTTP:
//
//	GET    /healthz                        liveness
//	GET    /metrics                        plain-text counters
//	GET    /v1/model                       model summary (names, shapes)
//	POST   /v1/episodes                    start an episode  -> {"episodeId": ...}
//	GET    /v1/episodes/{id}               episode status (steps, open)
//	GET    /v1/episodes/{id}/decision      next action       -> Decision
//	POST   /v1/episodes/{id}/observations  report an observation
//	GET    /v1/episodes/{id}/belief        current belief
//	DELETE /v1/episodes/{id}               abandon an episode
//	POST   /v1/decide/batch                decide for many beliefs at once
//	                                       (served only with NewBatchDecider)
//
// Controllers are stateful and single-threaded, so every episode gets its
// own controller from the configured factory, and requests within an
// episode are serialized.
//
// The batch endpoint is different: it is stateless — the caller supplies
// the beliefs, the server replies with one decision per belief, and no
// episode state is created or touched — which makes it naturally idempotent
// (a retry re-computes the identical answer) and lets campaign-scale
// clients amortize one HTTP round-trip and one batched tree expansion
// across many live episodes.
//
// # Failure model
//
// The service is built to survive its own failures as well as its clients':
//
//   - Crash-restart: with a Checkpointer configured, every state-changing
//     request persists an EpisodeState snapshot (id, step count, belief,
//     full action/observation history) before the response is sent. A
//     restarted server replays each history through a fresh controller from
//     the factory and resumes all open episodes under their original ids.
//   - Retried requests: decisions are cached per step, so a retried
//     GET .../decision returns the identical bytes without re-running the
//     controller; observation POSTs carry a client-generated stepIndex and
//     duplicates are acknowledged without being applied twice; episode
//     starts carry a client-generated clientKey and duplicates return the
//     already-created episode. Terminal decisions survive as tombstones so
//     a client whose final response was lost can still learn the outcome.
//   - Abandoned monitors: episodes idle longer than EpisodeTTL are evicted
//     (counted in recoverd_episodes_evicted_total) so a hung monitor cannot
//     leak controllers forever.
//   - Hostile input: request bodies are capped with http.MaxBytesReader and
//     handler panics become 500s (counted in recoverd_panics_total) rather
//     than daemon crashes.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/obs"
	"bpomdp/internal/pomdp"
)

// Factory builds an independent controller and its initial belief for one
// episode.
type Factory func() (controller.Controller, pomdp.Belief, error)

// Config configures a Server.
type Config struct {
	// Model is the POMDP the controllers run on; used to resolve names in
	// the API. Required.
	Model *pomdp.POMDP
	// NewController builds one controller per episode. Required.
	NewController Factory
	// MaxEpisodes bounds concurrently open episodes (0 means 1024).
	MaxEpisodes int
	// Checkpointer, when non-nil, persists episode state across restarts:
	// snapshots are saved after every state-changing request and replayed
	// through fresh controllers by New.
	Checkpointer Checkpointer
	// EpisodeTTL evicts episodes idle longer than this (abandoned-monitor
	// GC). 0 disables eviction.
	EpisodeTTL time.Duration
	// TombstoneTTL evicts terminal tombstones older than this from memory
	// and the checkpoint store. 0 means EpisodeTTL governs tombstones too.
	// The effective TTL must cover ClientRetryBudget when both are set.
	TombstoneTTL time.Duration
	// ClientRetryBudget is the longest retry budget clients of this server
	// are configured with (client.RetryPolicy.Budget). When set, New rejects
	// an effective tombstone TTL below it: evicting a terminal decision
	// while a client may still be retrying its final GET re-opens the
	// lost-final-decision window the tombstones exist to close.
	ClientRetryBudget time.Duration
	// MaxBodyBytes caps request body size (0 means 1 MiB).
	MaxBodyBytes int64
	// NewBatchDecider, when non-nil, enables POST /v1/decide/batch: it
	// builds the batch decision engines served to concurrent batch
	// requests (they are pooled and reused; each must be independent, and
	// none may mutate shared state such as an online-improved bound set).
	// When nil the endpoint is not registered and returns 404.
	NewBatchDecider func() (controller.BatchDecider, error)
	// MaxBatchBeliefs caps the beliefs accepted per batch request
	// (0 means 1024).
	MaxBatchBeliefs int
	// RetryAfter is the Retry-After hint returned with 429 responses when
	// MaxEpisodes is hit (0 means 1 second).
	RetryAfter time.Duration
	// Metrics, when non-nil, is the registry the server registers its
	// instruments on — share one registry to co-expose several components on
	// one /metrics page. Nil creates a private registry.
	Metrics *obs.Registry
	// Fleet, when non-nil, runs this server as one member of a sharded
	// recovery fleet: episode keys hash to owners, unowned requests are
	// redirected, and down members' episodes are adopted. See FleetConfig.
	Fleet *FleetConfig
	// EpisodeIDBase offsets freshly assigned episode ids. In fleet mode New
	// derives it from the member's index (disjoint 48-bit ranges per member,
	// see EpisodeIDBaseFor) so adopted episodes keep their original ids
	// without colliding with the adopter's allocator. Leave 0 outside fleets.
	EpisodeIDBase uint64
	// DecisionTrace, when non-nil, receives one structured JSONL
	// obs.DecisionRecord per freshly computed decision (cached retries are
	// not re-recorded). When the episode controllers collect DecisionStats,
	// records carry the full bound-gap explanation. The writer need not be
	// synchronized; records are serialized internally.
	DecisionTrace io.Writer
	// SpanTrace, when non-nil, receives one JSONL obs.SpanRecord per traced
	// operation (handler serve, redirect hop, checkpoint write, adoption,
	// tombstone replication) for requests carrying an X-Bpomdp-Trace header.
	// Nil keeps the span layer entirely off the hot path: handlers are
	// registered unwrapped. The writer need not be synchronized.
	SpanTrace io.Writer
	// Node names this process in emitted spans. Defaults to Fleet.Self in
	// fleet mode, "recoverd" otherwise.
	Node string
	// now overrides time.Now in tests.
	now func() time.Time
}

// effectiveTombstoneTTL is the TTL actually applied to tombstones:
// TombstoneTTL, falling back to EpisodeTTL (0 disables eviction).
func (c *Config) effectiveTombstoneTTL() time.Duration {
	if c.TombstoneTTL > 0 {
		return c.TombstoneTTL
	}
	return c.EpisodeTTL
}

// Server is the HTTP recovery service. Create one with New and mount it as
// an http.Handler. Call Close on shutdown to stop the eviction janitor and
// write a final checkpoint of every open episode.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu         sync.Mutex
	episodes   map[uint64]*episode
	byKey      map[string]uint64 // clientKey -> open episode id
	tombstones map[uint64]*tombstone
	tombByKey  map[string]uint64 // clientKey -> terminated episode id
	// tombOverflow is set when the in-memory tombstone cache evicted past its
	// cap; it tells Sweep that the store may hold expired tombstones the
	// cache no longer sees.
	tombOverflow bool
	nextID       uint64
	closed       bool
	// draining flips /healthz to 503 once graceful shutdown begins, so
	// load-balancers and fleet probes stop routing new work here while
	// in-flight requests finish. Set by BeginShutdown and by Close.
	draining bool

	janitorStop chan struct{}
	janitorDone chan struct{}

	// repWG tracks in-flight tombstone replication goroutines; repStop aborts
	// their backoff sleeps on Close.
	repWG   sync.WaitGroup
	repStop chan struct{}

	// restored is written by restore() during New and read by Restored() and
	// /metrics; it shares s.mu so those reads are race-clean even when a
	// server is scraped while still restoring (e.g. a future background
	// restore) or while tests poke at the report.
	restored RestoreReport

	// m holds the registry-backed instruments behind /metrics.
	m *serverMetrics
	// trace, when non-nil, receives structured decision records.
	trace *obs.TraceWriter
	// spans, when non-nil, receives distributed episode spans; node names
	// this process in them. startAt anchors the health view's uptime.
	spans   *obs.SpanWriter
	node    string
	startAt time.Time
	// repInFlight counts tombstone replication goroutines currently running
	// (the replication backlog surfaced by /v1/fleet/health and /metrics).
	repInFlight atomic.Int64

	// batchPool recycles batch deciders across /v1/decide/batch requests so
	// the steady state builds no controllers.
	batchPool sync.Pool
}

// episode is one live episode. Its mutex serializes controller access and
// protects the mutable bookkeeping fields.
type episode struct {
	mu        sync.Mutex
	id        uint64
	ctrl      controller.Controller
	clientKey string
	steps     int
	history   []Step
	// lastDecision caches the decision computed for the current step so a
	// retried GET returns identical bytes without re-running the controller.
	// Invalidated by each applied observation.
	lastDecision *DecisionResponse
	lastActive   time.Time
}

// tombstone remembers a terminated episode's final decision so a client
// whose response was lost by the network can retry the GET and still learn
// the episode is over. The in-memory table is a write-through cache over the
// checkpoint store's durable TombstoneState records: termination persists
// the record before the episode state is deleted, so the final decision
// survives a crash, a restart, and (via replication and adoption) the death
// of the whole member.
type tombstone struct {
	final DecisionResponse
	key   string
	steps int
	at    time.Time
}

// maxTombstones caps the in-memory tombstone cache; the oldest entry is
// evicted past the cap. Cache eviction is memory-only — the durable store
// record stays until its TTL expires, and a request for an evicted id falls
// back to a store lookup.
const maxTombstones = 4096

// RestoreFailure describes one checkpoint that could not be resumed.
type RestoreFailure struct {
	EpisodeID uint64
	// Name is set for corrupt stored entries (the quarantined file or log
	// record the store reported); empty for replay failures.
	Name string
	Err  error
}

// RestoreReport summarizes checkpoint recovery performed by New.
type RestoreReport struct {
	// Resumed counts episodes successfully rebuilt by history replay.
	Resumed int
	// Tombstones counts terminal tombstones restored from the store, so
	// clients retrying a final GET across the restart still get their
	// terminal decision.
	Tombstones int
	// Failed lists episodes whose replay failed; their checkpoint files are
	// left in place for inspection but the episodes are not served.
	Failed []RestoreFailure
	// LoadErr records checkpoint files that could not be read at all.
	LoadErr error
}

var _ http.Handler = (*Server)(nil)

// New validates the configuration, restores any checkpointed episodes, and
// returns a ready-to-mount Server.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, errors.New("server: nil model")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.NewController == nil {
		return nil, errors.New("server: nil controller factory")
	}
	if cfg.MaxEpisodes == 0 {
		cfg.MaxEpisodes = 1024
	}
	if cfg.MaxEpisodes < 0 {
		return nil, fmt.Errorf("server: negative episode cap %d", cfg.MaxEpisodes)
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxBodyBytes < 0 {
		return nil, fmt.Errorf("server: negative body cap %d", cfg.MaxBodyBytes)
	}
	if cfg.EpisodeTTL < 0 {
		return nil, fmt.Errorf("server: negative episode TTL %v", cfg.EpisodeTTL)
	}
	if cfg.TombstoneTTL < 0 {
		return nil, fmt.Errorf("server: negative tombstone TTL %v", cfg.TombstoneTTL)
	}
	if cfg.ClientRetryBudget < 0 {
		return nil, fmt.Errorf("server: negative client retry budget %v", cfg.ClientRetryBudget)
	}
	if ttl := cfg.effectiveTombstoneTTL(); ttl > 0 && cfg.ClientRetryBudget > 0 && ttl < cfg.ClientRetryBudget {
		return nil, fmt.Errorf("server: tombstone TTL %v is below the client retry budget %v — a still-retrying client could lose its terminal decision", ttl, cfg.ClientRetryBudget)
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxBatchBeliefs == 0 {
		cfg.MaxBatchBeliefs = 1024
	}
	if cfg.MaxBatchBeliefs < 0 {
		return nil, fmt.Errorf("server: negative batch belief cap %d", cfg.MaxBatchBeliefs)
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if err := validateFleet(&cfg); err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if cfg.Node == "" {
		if cfg.Fleet != nil {
			cfg.Node = cfg.Fleet.Self
		} else {
			cfg.Node = "recoverd"
		}
	}
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		episodes:   make(map[uint64]*episode),
		byKey:      make(map[string]uint64),
		tombstones: make(map[uint64]*tombstone),
		tombByKey:  make(map[string]uint64),
		repStop:    make(chan struct{}),
		nextID:     cfg.EpisodeIDBase,
		m:          newServerMetrics(reg),
		node:       cfg.Node,
		startAt:    time.Now(),
	}
	if cfg.DecisionTrace != nil {
		s.trace = obs.NewTraceWriter(cfg.DecisionTrace)
	}
	if cfg.SpanTrace != nil {
		s.spans = obs.NewSpanWriter(cfg.SpanTrace)
	}
	// The open-episode gauge is computed at scrape time from the episode
	// table, so /metrics and OpenEpisodes always agree — one source.
	reg.GaugeFunc("recoverd_episodes_open", "Currently open episodes.",
		func() float64 { return float64(s.OpenEpisodes()) })
	reg.GaugeFunc("recoverd_tombstone_replication_inflight",
		"Tombstone replication sends currently in flight.",
		func() float64 { return float64(s.repInFlight.Load()) })
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/model", s.handleModel)
	s.mux.HandleFunc("GET /v1/fleet/health", s.handleFleetHealth)
	s.mux.HandleFunc("POST /v1/episodes", timed(s.m.latStart, s.spanned(obs.SpanServerStart, s.handleStart)))
	s.mux.HandleFunc("GET /v1/episodes/{id}", s.spanned(obs.SpanServerStatus, s.handleStatus))
	s.mux.HandleFunc("GET /v1/episodes/{id}/decision", timed(s.m.latDecide, s.spanned(obs.SpanServerDecide, s.handleDecision)))
	s.mux.HandleFunc("POST /v1/episodes/{id}/observations", timed(s.m.latObserve, s.spanned(obs.SpanServerObserve, s.handleObservation)))
	s.mux.HandleFunc("GET /v1/episodes/{id}/belief", s.spanned(obs.SpanServerBelief, s.handleBelief))
	s.mux.HandleFunc("DELETE /v1/episodes/{id}", s.spanned(obs.SpanServerDelete, s.handleDelete))
	if cfg.NewBatchDecider != nil {
		s.mux.HandleFunc("POST /v1/decide/batch", timed(s.m.latBatch, s.handleBatchDecide))
	}
	if cfg.Fleet != nil {
		s.mux.HandleFunc("GET /v1/fleet", s.handleFleetView)
		s.mux.HandleFunc("POST /v1/fleet/members/{id}/down", s.handleFleetDown)
		s.mux.HandleFunc("POST /v1/fleet/members/{id}/up", s.handleFleetUp)
		s.mux.HandleFunc("POST /v1/fleet/tombstones", s.spanned(obs.SpanServerAccept, s.handleTombstoneReplica))
	}
	if cfg.Checkpointer != nil {
		s.restore()
		s.m.resumed.Add(uint64(s.restored.Resumed))
	}
	if cfg.EpisodeTTL > 0 || cfg.effectiveTombstoneTTL() > 0 {
		s.janitorStop = make(chan struct{})
		s.janitorDone = make(chan struct{})
		go s.janitor()
	}
	return s, nil
}

// restore rebuilds episodes from checkpoints by replaying each recorded
// history through a fresh controller from the factory, and reloads stored
// terminal tombstones so clients retrying a final GET across the restart
// still get their terminal decision.
func (s *Server) restore() {
	states, corrupt, err := s.cfg.Checkpointer.LoadAll()
	tombs, tombCorrupt, tombErr := s.cfg.Checkpointer.LoadTombstones()
	var stale []uint64
	s.mu.Lock()
	s.restored.LoadErr = errors.Join(err, tombErr)
	for _, c := range append(corrupt, tombCorrupt...) {
		s.restored.Failed = append(s.restored.Failed, RestoreFailure{EpisodeID: c.EpisodeID, Name: c.Name, Err: c.Err})
	}
	tombed := make(map[uint64]bool, len(tombs))
	for _, ts := range tombs {
		tombed[ts.EpisodeID] = true
		s.insertTombstoneLocked(ts)
		s.restored.Tombstones++
		// Tombstoned ids must advance the allocator like live ones: a fresh
		// episode minted at a tombstoned id would shadow the terminal
		// decision and corrupt both store namespaces.
		if sameIDRange(ts.EpisodeID, s.cfg.EpisodeIDBase) && ts.EpisodeID > s.nextID {
			s.nextID = ts.EpisodeID
		}
	}
	for _, st := range states {
		if tombed[st.EpisodeID] {
			// The previous process crashed between persisting the tombstone
			// (write-ahead) and deleting the episode record: the episode is
			// over; the tombstone wins and the stale record is cleaned up.
			stale = append(stale, st.EpisodeID)
			continue
		}
		// Only ids from this member's own range advance the allocator: an
		// adopted foreign-range id must not jump nextID into another
		// member's space.
		if sameIDRange(st.EpisodeID, s.cfg.EpisodeIDBase) && st.EpisodeID > s.nextID {
			s.nextID = st.EpisodeID
		}
		ep, rerr := s.replay(st)
		if rerr != nil {
			s.restored.Failed = append(s.restored.Failed, RestoreFailure{EpisodeID: st.EpisodeID, Err: rerr})
			continue
		}
		s.episodes[st.EpisodeID] = ep
		if st.ClientKey != "" {
			s.byKey[st.ClientKey] = st.EpisodeID
		}
		s.restored.Resumed++
	}
	s.mu.Unlock()
	for _, id := range stale {
		if derr := s.cfg.Checkpointer.Delete(id); derr != nil {
			s.m.checkpointErrors.Inc()
		}
	}
}

// insertTombstoneLocked registers one tombstone in the in-memory cache.
// Caller holds s.mu.
func (s *Server) insertTombstoneLocked(ts TombstoneState) {
	at := s.cfg.now()
	if ts.TerminatedAtUnixNano > 0 {
		at = time.Unix(0, ts.TerminatedAtUnixNano)
	}
	s.tombstones[ts.EpisodeID] = &tombstone{final: ts.Final, key: ts.ClientKey, steps: ts.Steps, at: at}
	if ts.ClientKey != "" {
		s.tombByKey[ts.ClientKey] = ts.EpisodeID
	}
	s.trimTombstonesLocked()
}

// tombstoneStateOf rebuilds the durable record from a cached tombstone.
func tombstoneStateOf(id uint64, tb *tombstone) TombstoneState {
	return TombstoneState{
		EpisodeID:            id,
		ClientKey:            tb.key,
		Steps:                tb.steps,
		Final:                tb.final,
		TerminatedAtUnixNano: tb.at.UnixNano(),
	}
}

// loadStoredTombstone consults the checkpoint store for a tombstone the
// in-memory cache no longer holds (evicted past the cap). Lookups by unknown
// id are rare, so a store scan here is acceptable.
func (s *Server) loadStoredTombstone(id uint64) (TombstoneState, bool) {
	if s.cfg.Checkpointer == nil {
		return TombstoneState{}, false
	}
	tombs, _, err := s.cfg.Checkpointer.LoadTombstones()
	if err != nil {
		return TombstoneState{}, false
	}
	for _, ts := range tombs {
		if ts.EpisodeID == id {
			return ts, true
		}
	}
	return TombstoneState{}, false
}

// replay builds a fresh controller and feeds it the checkpointed history,
// verifying the resulting belief against the snapshot.
func (s *Server) replay(st EpisodeState) (*episode, error) {
	ctrl, initial, err := s.cfg.NewController()
	if err != nil {
		return nil, fmt.Errorf("controller factory: %w", err)
	}
	if err := ctrl.Reset(initial); err != nil {
		return nil, fmt.Errorf("reset: %w", err)
	}
	for i, step := range st.History {
		if err := ctrl.Observe(step.Action, step.Observation); err != nil {
			return nil, fmt.Errorf("replay step %d (action %d, obs %d): %w", i, step.Action, step.Observation, err)
		}
	}
	if len(st.Belief) > 0 {
		got := ctrl.Belief()
		if len(got) != len(st.Belief) {
			return nil, fmt.Errorf("replayed belief has %d states, checkpoint %d — model changed under the checkpoint", len(got), len(st.Belief))
		}
		for i := range got {
			if math.Abs(got[i]-st.Belief[i]) > 1e-9 {
				return nil, fmt.Errorf("replayed belief diverges from checkpoint at state %d (%v vs %v)", i, got[i], st.Belief[i])
			}
		}
	}
	return &episode{
		id:         st.EpisodeID,
		ctrl:       ctrl,
		clientKey:  st.ClientKey,
		steps:      st.Steps,
		history:    append([]Step(nil), st.History...),
		lastActive: s.cfg.now(),
	}, nil
}

// Restored reports what New recovered from the checkpointer. The returned
// report is a snapshot: its Failed slice is copied, so callers may inspect it
// without holding any server lock.
func (s *Server) Restored() RestoreReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := s.restored
	rep.Failed = append([]RestoreFailure(nil), s.restored.Failed...)
	return rep
}

// ServeHTTP implements http.Handler. Handler panics are converted into 500
// responses and counted rather than crashing the daemon.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil && rec != http.ErrAbortHandler {
			s.m.panics.Inc()
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal panic: %v", rec))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// Close stops the eviction janitor and, when a checkpointer is configured,
// writes a final snapshot of every open episode so a restart resumes them.
// It is idempotent and safe to call while requests are still draining,
// though callers should prefer http.Server.Shutdown first.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	eps := make([]*episode, 0, len(s.episodes))
	for _, ep := range s.episodes {
		eps = append(eps, ep)
	}
	s.mu.Unlock()

	if s.janitorStop != nil {
		close(s.janitorStop)
		<-s.janitorDone
	}
	// Abort replication backoff sleeps and wait for in-flight senders; the
	// closed flag (set above) stops new ones from spawning.
	close(s.repStop)
	s.repWG.Wait()
	var firstErr error
	if s.cfg.Checkpointer != nil {
		for _, ep := range eps {
			ep.mu.Lock()
			st := ep.snapshotLocked()
			ep.mu.Unlock()
			if err := s.cfg.Checkpointer.Save(st); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// janitor periodically evicts idle episodes and expired tombstones.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	shortest := s.cfg.EpisodeTTL
	if t := s.cfg.effectiveTombstoneTTL(); shortest <= 0 || (t > 0 && t < shortest) {
		shortest = t
	}
	interval := shortest / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.Sweep()
		}
	}
}

// Sweep evicts episodes idle longer than EpisodeTTL and tombstones older
// than the effective tombstone TTL, returning how many episodes were
// evicted. Tombstone eviction is store-backed: the durable record is deleted
// with the cache entry, and when the cache has overflowed its cap the store
// itself is scanned so evicted-from-memory tombstones still expire. The
// janitor calls Sweep periodically; tests may call it directly.
func (s *Server) Sweep() int {
	now := s.cfg.now()
	var expired []*episode
	var expiredTombs []uint64
	scanStore := false
	tombTTL := s.cfg.effectiveTombstoneTTL()

	s.mu.Lock()
	if s.cfg.EpisodeTTL > 0 {
		cutoff := now.Add(-s.cfg.EpisodeTTL)
		for _, ep := range s.episodes {
			ep.mu.Lock()
			idle := ep.lastActive.Before(cutoff)
			ep.mu.Unlock()
			if idle {
				expired = append(expired, ep)
				delete(s.episodes, ep.id)
				if ep.clientKey != "" {
					delete(s.byKey, ep.clientKey)
				}
			}
		}
	}
	if tombTTL > 0 {
		cutoff := now.Add(-tombTTL)
		for id, tb := range s.tombstones {
			if tb.at.Before(cutoff) {
				delete(s.tombstones, id)
				if tb.key != "" {
					delete(s.tombByKey, tb.key)
				}
				expiredTombs = append(expiredTombs, id)
			}
		}
		if s.tombOverflow {
			scanStore = true
			s.tombOverflow = len(s.tombstones) >= maxTombstones
		}
	}
	s.mu.Unlock()

	for _, ep := range expired {
		s.m.evicted.Inc()
		if s.cfg.Checkpointer != nil {
			if err := s.cfg.Checkpointer.Delete(ep.id); err != nil {
				s.m.checkpointErrors.Inc()
			}
		}
	}
	for _, id := range expiredTombs {
		s.m.tombstonesEvicted.Inc()
		if s.cfg.Checkpointer != nil {
			if err := s.cfg.Checkpointer.DeleteTombstone(id); err != nil {
				s.m.checkpointErrors.Inc()
			}
		}
	}
	if scanStore && s.cfg.Checkpointer != nil {
		// Cache overflow means the store may hold tombstones the in-memory
		// loop above never saw; expire them straight from the store.
		cutoffNano := now.Add(-tombTTL).UnixNano()
		if tombs, _, err := s.cfg.Checkpointer.LoadTombstones(); err == nil {
			for _, ts := range tombs {
				if ts.TerminatedAtUnixNano >= cutoffNano {
					continue
				}
				s.mu.Lock()
				_, cached := s.tombstones[ts.EpisodeID]
				s.mu.Unlock()
				if cached {
					continue
				}
				s.m.tombstonesEvicted.Inc()
				if err := s.cfg.Checkpointer.DeleteTombstone(ts.EpisodeID); err != nil {
					s.m.checkpointErrors.Inc()
				}
			}
		}
	}
	return len(expired)
}

// OpenEpisodes reports the number of live episodes (for tests and metrics).
func (s *Server) OpenEpisodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.episodes)
}

// API payloads.
type (
	// StartRequest is the optional body of POST /v1/episodes. ClientKey is a
	// client-generated idempotency key: starting twice with the same key
	// returns the same episode instead of creating a duplicate.
	StartRequest struct {
		ClientKey string `json:"clientKey,omitempty"`
	}
	// StartResponse is returned by POST /v1/episodes.
	StartResponse struct {
		EpisodeID uint64 `json:"episodeId"`
	}
	// StatusResponse is returned by GET /v1/episodes/{id}.
	StatusResponse struct {
		EpisodeID uint64 `json:"episodeId"`
		Steps     int    `json:"steps"`
		Open      bool   `json:"open"`
	}
	// DecisionResponse is returned by GET .../decision.
	DecisionResponse struct {
		Action     int     `json:"action"`
		ActionName string  `json:"actionName"`
		Terminate  bool    `json:"terminate"`
		Value      float64 `json:"value"`
	}
	// ObservationRequest is accepted by POST .../observations. Either the
	// numeric indices or the names may be used; names win when both are set.
	// StepIndex, when set, is the client's count of observations already
	// applied: a request with StepIndex below the server's count is a
	// retransmit and is acknowledged without being applied again.
	ObservationRequest struct {
		Action          int    `json:"action"`
		Observation     int    `json:"observation"`
		ActionName      string `json:"actionName,omitempty"`
		ObservationName string `json:"observationName,omitempty"`
		StepIndex       *int   `json:"stepIndex,omitempty"`
	}
	// BeliefResponse is returned by GET .../belief.
	BeliefResponse struct {
		Belief []float64 `json:"belief"`
	}
	// ModelResponse is returned by GET /v1/model.
	ModelResponse struct {
		States       []string `json:"states"`
		Actions      []string `json:"actions"`
		Observations []string `json:"observations"`
	}
	// ErrorResponse is the uniform error body.
	ErrorResponse struct {
		Error string `json:"error"`
	}
)

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		// 503 tells load-balancers and fleet probes to drain: new starts
		// would land on a process about to stop serving them.
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// BeginShutdown marks the server as draining: /healthz answers 503 from the
// first call on, while every other endpoint keeps serving. Call it before
// http.Server.Shutdown so balancers stop sending new episodes during the
// drain window; Close implies it. Idempotent.
func (s *Server) BeginShutdown() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.m.reg.WritePrometheus(w)
}

// Metrics returns the registry the server's instruments live on.
func (s *Server) Metrics() *obs.Registry { return s.m.reg }

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	m := s.cfg.Model
	resp := ModelResponse{
		States:       make([]string, m.NumStates()),
		Actions:      make([]string, m.NumActions()),
		Observations: make([]string, m.NumObservations()),
	}
	for i := range resp.States {
		resp.States[i] = m.M.StateName(i)
	}
	for i := range resp.Actions {
		resp.Actions[i] = m.M.ActionName(i)
	}
	for i := range resp.Observations {
		resp.Observations[i] = m.ObsName(i)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStart(w http.ResponseWriter, r *http.Request) {
	var req StartRequest
	if r.Body != nil && r.ContentLength != 0 {
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode start request: %w", err))
			return
		}
	}

	if s.fleetEnabled() && req.ClientKey != "" {
		// Route by key before anything else: a non-owner redirects, the owner
		// lazily adopts the key from down members so the dedupe below finds
		// an episode started on a now-dead member.
		if s.fleetStart(w, r, req.ClientKey) {
			return
		}
	}

	s.mu.Lock()
	if req.ClientKey != "" {
		if id, ok := s.byKey[req.ClientKey]; ok {
			s.mu.Unlock()
			s.m.dedupedStarts.Inc()
			writeJSON(w, http.StatusOK, StartResponse{EpisodeID: id})
			return
		}
		if id, ok := s.tombByKey[req.ClientKey]; ok {
			// The key's episode already terminated. Answering with the original
			// id (not a fresh episode) routes the client's retried final GET to
			// the tombstone, so the terminal decision is replayed rather than
			// recomputed.
			s.mu.Unlock()
			s.m.dedupedStarts.Inc()
			writeJSON(w, http.StatusOK, StartResponse{EpisodeID: id})
			return
		}
	}
	if len(s.episodes) >= s.cfg.MaxEpisodes {
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("episode cap %d reached", s.cfg.MaxEpisodes))
		return
	}
	s.nextID++
	id := s.nextID
	s.mu.Unlock()

	ctrl, initial, err := s.cfg.NewController()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("controller factory: %w", err))
		return
	}
	if err := ctrl.Reset(initial); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("reset: %w", err))
		return
	}
	ep := &episode{id: id, ctrl: ctrl, clientKey: req.ClientKey, lastActive: s.cfg.now()}

	s.mu.Lock()
	if req.ClientKey != "" {
		// A concurrent duplicate may have won the race while the factory ran —
		// or even terminated already, leaving only a tombstone.
		if existing, ok := s.byKey[req.ClientKey]; ok {
			s.mu.Unlock()
			s.m.dedupedStarts.Inc()
			writeJSON(w, http.StatusOK, StartResponse{EpisodeID: existing})
			return
		}
		if existing, ok := s.tombByKey[req.ClientKey]; ok {
			s.mu.Unlock()
			s.m.dedupedStarts.Inc()
			writeJSON(w, http.StatusOK, StartResponse{EpisodeID: existing})
			return
		}
		s.byKey[req.ClientKey] = id
	}
	s.episodes[id] = ep
	s.mu.Unlock()
	s.m.started.Inc()
	s.checkpoint(ep)
	writeJSON(w, http.StatusCreated, StartResponse{EpisodeID: id})
}

func (s *Server) episode(w http.ResponseWriter, r *http.Request) (uint64, *episode, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad episode id: %w", err))
		return 0, nil, false
	}
	s.mu.Lock()
	ep := s.episodes[id]
	s.mu.Unlock()
	if ep == nil {
		retry, handled := s.fleetEpisodeMiss(w, r)
		if handled {
			return 0, nil, false
		}
		if retry {
			s.mu.Lock()
			ep = s.episodes[id]
			s.mu.Unlock()
		}
	}
	if ep == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("episode %d not found", id))
		return 0, nil, false
	}
	return id, ep, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad episode id: %w", err))
		return
	}
	s.mu.Lock()
	ep := s.episodes[id]
	_, dead := s.tombstones[id]
	s.mu.Unlock()
	if ep == nil && !dead {
		retry, handled := s.fleetEpisodeMiss(w, r)
		if handled {
			return
		}
		if retry {
			s.mu.Lock()
			ep = s.episodes[id]
			_, dead = s.tombstones[id]
			s.mu.Unlock()
		}
	}
	if ep == nil {
		if !dead {
			// The cache may have evicted the tombstone past its cap; the store
			// is the source of truth.
			if ts, ok := s.loadStoredTombstone(id); ok {
				s.mu.Lock()
				s.insertTombstoneLocked(ts)
				s.mu.Unlock()
				dead = true
			}
		}
		if dead {
			writeJSON(w, http.StatusOK, StatusResponse{EpisodeID: id, Open: false})
			return
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("episode %d not found", id))
		return
	}
	ep.mu.Lock()
	steps := ep.steps
	ep.mu.Unlock()
	writeJSON(w, http.StatusOK, StatusResponse{EpisodeID: id, Steps: steps, Open: true})
}

func (s *Server) handleDecision(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad episode id: %w", err))
		return
	}
	s.mu.Lock()
	ep := s.episodes[id]
	tb := s.tombstones[id]
	s.mu.Unlock()
	if ep == nil && tb == nil {
		retry, handled := s.fleetEpisodeMiss(w, r)
		if handled {
			return
		}
		if retry {
			s.mu.Lock()
			ep = s.episodes[id]
			tb = s.tombstones[id]
			s.mu.Unlock()
		}
	}
	if ep == nil {
		if tb == nil {
			// The cache may have evicted the tombstone past its cap; fall back
			// to the durable record before declaring the episode unknown.
			if ts, ok := s.loadStoredTombstone(id); ok {
				s.mu.Lock()
				s.insertTombstoneLocked(ts)
				tb = s.tombstones[id]
				s.mu.Unlock()
			}
		}
		if tb != nil {
			// The terminal decision was already computed; the client's copy
			// was lost in transit. Re-serve it.
			writeJSON(w, http.StatusOK, tb.final)
			return
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("episode %d not found", id))
		return
	}

	ep.mu.Lock()
	if ep.lastDecision != nil {
		resp := *ep.lastDecision
		ep.lastActive = s.cfg.now()
		ep.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	t0 := time.Now()
	d, derr := ep.ctrl.Decide()
	if derr != nil {
		ep.mu.Unlock()
		writeError(w, http.StatusInternalServerError, derr)
		return
	}
	// Per-tier decision latency: the controller records which tier served
	// (an always-on constant store, unlike full stats collection).
	tier := controller.TierTree
	if tsrc, ok := ep.ctrl.(controller.TierSource); ok {
		if lt := tsrc.LastTier(); lt != "" {
			tier = lt
		}
	}
	s.m.decideLatency(tier).Observe(time.Since(t0).Seconds())
	if s.spans != nil {
		// The spanned wrapper lifts the tier off this response header onto
		// the decide span.
		w.Header().Set(HeaderTier, tier)
	}
	resp := DecisionResponse{Action: d.Action, Terminate: d.Terminate, Value: d.Value}
	if !d.Terminate || d.Action >= 0 {
		resp.ActionName = s.cfg.Model.M.ActionName(d.Action)
	}
	ep.lastDecision = &resp
	ep.lastActive = s.cfg.now()
	steps := ep.steps
	var rec *obs.DecisionRecord
	if s.trace != nil {
		// Build the record under ep.mu (the stats buffers are reused by the
		// episode's next decision) and write it after unlocking.
		rec = &obs.DecisionRecord{
			Episode:    id,
			Step:       ep.steps,
			Action:     d.Action,
			ActionName: resp.ActionName,
			Terminate:  d.Terminate,
			Value:      d.Value,
		}
		if ss, ok := ep.ctrl.(controller.StatsSource); ok && ss.StatsEnabled() {
			st := ss.DecisionStats()
			rec.Action = st.Action
			rec.QValues = append([]float64(nil), st.QValues...)
			rec.LeafBound = st.LeafBound
			rec.BoundGap = st.BoundGap
			rec.BeliefEntropy = st.BeliefEntropy
			rec.TreeNodes = st.TreeNodes
			rec.LeafEvals = st.LeafEvals
			rec.SlabPasses = st.SlabPasses
			rec.SetSize = st.SetSize
			rec.SetEvictions = st.SetEvictions
			rec.Tier = st.Tier
		}
	}
	ep.mu.Unlock()
	if rec != nil {
		_ = s.trace.Write(rec)
	}
	s.m.decisions.Inc()

	if d.Terminate {
		s.m.terminated.Inc()
		ts := TombstoneState{
			EpisodeID:            id,
			ClientKey:            ep.clientKey,
			Steps:                steps,
			Final:                resp,
			TerminatedAtUnixNano: s.cfg.now().UnixNano(),
		}
		// Write-ahead: persist the tombstone BEFORE deleting the episode
		// record. A crash between the two leaves both in the store; restore
		// and adoption resolve that in the tombstone's favor. The reverse
		// order would open a window where the final decision exists nowhere
		// durable.
		if s.cfg.Checkpointer != nil {
			ct0 := s.spanStart()
			serr := s.cfg.Checkpointer.SaveTombstone(ts)
			if serr != nil {
				s.m.checkpointErrors.Inc()
			}
			if !ct0.IsZero() {
				rec := &obs.SpanRecord{TraceID: ep.clientKey, Kind: obs.SpanServerCheckpoint,
					Op: obs.SpanOpTombstone, Episode: id,
					Start: ct0.UnixNano(), Duration: time.Since(ct0).Nanoseconds()}
				if serr != nil {
					rec.Err = serr.Error()
				}
				s.emitSpan(rec)
			}
		}
		s.mu.Lock()
		delete(s.episodes, id)
		if ep.clientKey != "" {
			delete(s.byKey, ep.clientKey)
		}
		s.insertTombstoneLocked(ts)
		s.mu.Unlock()
		if s.cfg.Checkpointer != nil {
			ct0 := s.spanStart()
			delErr := s.cfg.Checkpointer.Delete(id)
			if delErr != nil {
				s.m.checkpointErrors.Inc()
			}
			if !ct0.IsZero() {
				rec := &obs.SpanRecord{TraceID: ep.clientKey, Kind: obs.SpanServerCheckpoint,
					Op: obs.SpanOpDelete, Episode: id,
					Start: ct0.UnixNano(), Duration: time.Since(ct0).Nanoseconds()}
				if delErr != nil {
					rec.Err = delErr.Error()
				}
				s.emitSpan(rec)
			}
		}
		s.replicateTombstone(ts)
	}
	writeJSON(w, http.StatusOK, resp)
}

// trimTombstonesLocked evicts the oldest tombstones past the cap — from
// memory only; the durable records stay until their TTL, and reads fall back
// to the store. Setting tombOverflow tells Sweep that store-only tombstones
// may exist and need a store scan to expire. Caller holds s.mu.
func (s *Server) trimTombstonesLocked() {
	for len(s.tombstones) > maxTombstones {
		var (
			oldestID uint64
			oldestAt time.Time
			first    = true
		)
		for id, tb := range s.tombstones {
			if first || tb.at.Before(oldestAt) {
				oldestID, oldestAt, first = id, tb.at, false
			}
		}
		if tb := s.tombstones[oldestID]; tb != nil && tb.key != "" {
			delete(s.tombByKey, tb.key)
		}
		delete(s.tombstones, oldestID)
		s.tombOverflow = true
	}
}

func (s *Server) handleObservation(w http.ResponseWriter, r *http.Request) {
	_, ep, ok := s.episode(w, r)
	if !ok {
		return
	}
	var req ObservationRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("observation body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode observation: %w", err))
		return
	}
	action, obs := req.Action, req.Observation
	if req.ActionName != "" {
		a, err := s.lookupAction(req.ActionName)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		action = a
	}
	if req.ObservationName != "" {
		o, err := s.lookupObservation(req.ObservationName)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		obs = o
	}

	ep.mu.Lock()
	if req.StepIndex != nil {
		switch {
		case *req.StepIndex < ep.steps:
			// Retransmit of an already-applied observation: acknowledge
			// without applying it twice.
			ep.lastActive = s.cfg.now()
			ep.mu.Unlock()
			s.m.dedupedObs.Inc()
			w.WriteHeader(http.StatusNoContent)
			return
		case *req.StepIndex > ep.steps:
			have := ep.steps
			ep.mu.Unlock()
			writeError(w, http.StatusConflict,
				fmt.Errorf("observation step %d out of order (episode has %d)", *req.StepIndex, have))
			return
		}
	}
	if err := ep.ctrl.Observe(action, obs); err != nil {
		ep.mu.Unlock()
		status := http.StatusInternalServerError
		if errors.Is(err, pomdp.ErrImpossibleObservation) {
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, err)
		return
	}
	ep.steps++
	ep.history = append(ep.history, Step{Action: action, Observation: obs})
	ep.lastDecision = nil
	ep.lastActive = s.cfg.now()
	st := ep.snapshotLocked()
	ep.mu.Unlock()

	s.m.observed.Inc()
	s.checkpointState(st)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleBelief(w http.ResponseWriter, r *http.Request) {
	_, ep, ok := s.episode(w, r)
	if !ok {
		return
	}
	ep.mu.Lock()
	b := ep.ctrl.Belief()
	ep.mu.Unlock()
	writeJSON(w, http.StatusOK, BeliefResponse{Belief: b})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, ep, ok := s.episode(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	delete(s.episodes, id)
	if ep.clientKey != "" {
		delete(s.byKey, ep.clientKey)
	}
	s.mu.Unlock()
	if s.cfg.Checkpointer != nil {
		if err := s.cfg.Checkpointer.Delete(id); err != nil {
			s.m.checkpointErrors.Inc()
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// snapshotLocked captures the episode's serializable state. Caller holds
// ep.mu.
func (ep *episode) snapshotLocked() EpisodeState {
	return EpisodeState{
		EpisodeID:  ep.id,
		Controller: ep.ctrl.Name(),
		ClientKey:  ep.clientKey,
		Steps:      ep.steps,
		Belief:     ep.ctrl.Belief(),
		History:    append([]Step(nil), ep.history...),
	}
}

// checkpoint snapshots ep and persists it (best-effort; failures are
// counted, not fatal to the request).
func (s *Server) checkpoint(ep *episode) {
	if s.cfg.Checkpointer == nil {
		return
	}
	ep.mu.Lock()
	st := ep.snapshotLocked()
	ep.mu.Unlock()
	s.checkpointState(st)
}

func (s *Server) checkpointState(st EpisodeState) {
	if s.cfg.Checkpointer == nil {
		return
	}
	t0 := s.spanStart()
	err := s.cfg.Checkpointer.Save(st)
	if err != nil {
		s.m.checkpointErrors.Inc()
	}
	if !t0.IsZero() && st.ClientKey != "" {
		rec := &obs.SpanRecord{TraceID: st.ClientKey, Kind: obs.SpanServerCheckpoint,
			Op: obs.SpanOpSave, Episode: st.EpisodeID,
			Start: t0.UnixNano(), Duration: time.Since(t0).Nanoseconds()}
		if err != nil {
			rec.Err = err.Error()
		}
		s.emitSpan(rec)
	}
}

func (s *Server) lookupAction(name string) (int, error) {
	for a := 0; a < s.cfg.Model.NumActions(); a++ {
		if s.cfg.Model.M.ActionName(a) == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown action %q", name)
}

func (s *Server) lookupObservation(name string) (int, error) {
	for o := 0; o < s.cfg.Model.NumObservations(); o++ {
		if s.cfg.Model.ObsName(o) == name {
			return o, nil
		}
	}
	return 0, fmt.Errorf("unknown observation %q", name)
}

func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do.
		_ = err
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
