// Package server exposes recovery controllers over HTTP — the deployable
// form of the framework. System monitors POST their outputs, the service
// replies with the next recovery action, and the episode ends when the
// controller decides to terminate.
//
// The API is JSON over HTTP:
//
//	GET    /healthz                        liveness
//	GET    /metrics                        plain-text counters
//	GET    /v1/model                       model summary (names, shapes)
//	POST   /v1/episodes                    start an episode  -> {"episodeId": ...}
//	GET    /v1/episodes/{id}/decision      next action       -> Decision
//	POST   /v1/episodes/{id}/observations  report an observation
//	GET    /v1/episodes/{id}/belief        current belief
//	DELETE /v1/episodes/{id}               abandon an episode
//
// Controllers are stateful and single-threaded, so every episode gets its
// own controller from the configured factory, and requests within an
// episode are serialized.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"bpomdp/internal/controller"
	"bpomdp/internal/pomdp"
)

// Factory builds an independent controller and its initial belief for one
// episode.
type Factory func() (controller.Controller, pomdp.Belief, error)

// Config configures a Server.
type Config struct {
	// Model is the POMDP the controllers run on; used to resolve names in
	// the API. Required.
	Model *pomdp.POMDP
	// NewController builds one controller per episode. Required.
	NewController Factory
	// MaxEpisodes bounds concurrently open episodes (0 means 1024).
	MaxEpisodes int
}

// Server is the HTTP recovery service. Create one with New and mount it as
// an http.Handler.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu       sync.Mutex
	episodes map[uint64]*episode
	nextID   uint64

	started    atomic.Uint64
	terminated atomic.Uint64
	decisions  atomic.Uint64
	observed   atomic.Uint64
}

type episode struct {
	mu   sync.Mutex
	ctrl controller.Controller
}

var _ http.Handler = (*Server)(nil)

// New validates the configuration and returns a ready-to-mount Server.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, errors.New("server: nil model")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.NewController == nil {
		return nil, errors.New("server: nil controller factory")
	}
	if cfg.MaxEpisodes == 0 {
		cfg.MaxEpisodes = 1024
	}
	if cfg.MaxEpisodes < 0 {
		return nil, fmt.Errorf("server: negative episode cap %d", cfg.MaxEpisodes)
	}
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		episodes: make(map[uint64]*episode),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/model", s.handleModel)
	s.mux.HandleFunc("POST /v1/episodes", s.handleStart)
	s.mux.HandleFunc("GET /v1/episodes/{id}/decision", s.handleDecision)
	s.mux.HandleFunc("POST /v1/episodes/{id}/observations", s.handleObservation)
	s.mux.HandleFunc("GET /v1/episodes/{id}/belief", s.handleBelief)
	s.mux.HandleFunc("DELETE /v1/episodes/{id}", s.handleDelete)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// OpenEpisodes reports the number of live episodes (for tests and metrics).
func (s *Server) OpenEpisodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.episodes)
}

// API payloads.
type (
	// StartResponse is returned by POST /v1/episodes.
	StartResponse struct {
		EpisodeID uint64 `json:"episodeId"`
	}
	// DecisionResponse is returned by GET .../decision.
	DecisionResponse struct {
		Action     int     `json:"action"`
		ActionName string  `json:"actionName"`
		Terminate  bool    `json:"terminate"`
		Value      float64 `json:"value"`
	}
	// ObservationRequest is accepted by POST .../observations. Either the
	// numeric indices or the names may be used; names win when both are set.
	ObservationRequest struct {
		Action          int    `json:"action"`
		Observation     int    `json:"observation"`
		ActionName      string `json:"actionName,omitempty"`
		ObservationName string `json:"observationName,omitempty"`
	}
	// BeliefResponse is returned by GET .../belief.
	BeliefResponse struct {
		Belief []float64 `json:"belief"`
	}
	// ModelResponse is returned by GET /v1/model.
	ModelResponse struct {
		States       []string `json:"states"`
		Actions      []string `json:"actions"`
		Observations []string `json:"observations"`
	}
	// ErrorResponse is the uniform error body.
	ErrorResponse struct {
		Error string `json:"error"`
	}
)

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "recoverd_episodes_started_total %d\n", s.started.Load())
	fmt.Fprintf(w, "recoverd_episodes_terminated_total %d\n", s.terminated.Load())
	fmt.Fprintf(w, "recoverd_decisions_total %d\n", s.decisions.Load())
	fmt.Fprintf(w, "recoverd_observations_total %d\n", s.observed.Load())
	fmt.Fprintf(w, "recoverd_episodes_open %d\n", s.OpenEpisodes())
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	m := s.cfg.Model
	resp := ModelResponse{
		States:       make([]string, m.NumStates()),
		Actions:      make([]string, m.NumActions()),
		Observations: make([]string, m.NumObservations()),
	}
	for i := range resp.States {
		resp.States[i] = m.M.StateName(i)
	}
	for i := range resp.Actions {
		resp.Actions[i] = m.M.ActionName(i)
	}
	for i := range resp.Observations {
		resp.Observations[i] = m.ObsName(i)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStart(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	if len(s.episodes) >= s.cfg.MaxEpisodes {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("episode cap %d reached", s.cfg.MaxEpisodes))
		return
	}
	s.nextID++
	id := s.nextID
	s.mu.Unlock()

	ctrl, initial, err := s.cfg.NewController()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("controller factory: %w", err))
		return
	}
	if err := ctrl.Reset(initial); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("reset: %w", err))
		return
	}
	s.mu.Lock()
	s.episodes[id] = &episode{ctrl: ctrl}
	s.mu.Unlock()
	s.started.Add(1)
	writeJSON(w, http.StatusCreated, StartResponse{EpisodeID: id})
}

func (s *Server) episode(w http.ResponseWriter, r *http.Request) (uint64, *episode, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad episode id: %w", err))
		return 0, nil, false
	}
	s.mu.Lock()
	ep := s.episodes[id]
	s.mu.Unlock()
	if ep == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("episode %d not found", id))
		return 0, nil, false
	}
	return id, ep, true
}

func (s *Server) handleDecision(w http.ResponseWriter, r *http.Request) {
	id, ep, ok := s.episode(w, r)
	if !ok {
		return
	}
	ep.mu.Lock()
	d, err := ep.ctrl.Decide()
	ep.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.decisions.Add(1)
	resp := DecisionResponse{Action: d.Action, Terminate: d.Terminate, Value: d.Value}
	if !d.Terminate || d.Action >= 0 {
		resp.ActionName = s.cfg.Model.M.ActionName(d.Action)
	}
	if d.Terminate {
		s.terminated.Add(1)
		s.mu.Lock()
		delete(s.episodes, id)
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleObservation(w http.ResponseWriter, r *http.Request) {
	_, ep, ok := s.episode(w, r)
	if !ok {
		return
	}
	var req ObservationRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode observation: %w", err))
		return
	}
	action, obs := req.Action, req.Observation
	if req.ActionName != "" {
		a, err := s.lookupAction(req.ActionName)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		action = a
	}
	if req.ObservationName != "" {
		o, err := s.lookupObservation(req.ObservationName)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		obs = o
	}
	ep.mu.Lock()
	err := ep.ctrl.Observe(action, obs)
	ep.mu.Unlock()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, pomdp.ErrImpossibleObservation) {
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, err)
		return
	}
	s.observed.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleBelief(w http.ResponseWriter, r *http.Request) {
	_, ep, ok := s.episode(w, r)
	if !ok {
		return
	}
	ep.mu.Lock()
	b := ep.ctrl.Belief()
	ep.mu.Unlock()
	writeJSON(w, http.StatusOK, BeliefResponse{Belief: b})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, _, ok := s.episode(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	delete(s.episodes, id)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) lookupAction(name string) (int, error) {
	for a := 0; a < s.cfg.Model.NumActions(); a++ {
		if s.cfg.Model.M.ActionName(a) == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown action %q", name)
}

func (s *Server) lookupObservation(name string) (int, error) {
	for o := 0; o < s.cfg.Model.NumObservations(); o++ {
		if s.cfg.Model.ObsName(o) == name {
			return o, nil
		}
	}
	return 0, fmt.Errorf("unknown observation %q", name)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do.
		_ = err
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
