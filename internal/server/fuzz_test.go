package server

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"reflect"
	"testing"
)

// FuzzEpisodeStateDecode guards the checkpoint trust boundary: anything that
// decodes must satisfy the episode invariants and survive a re-encode
// round trip unchanged.
func FuzzEpisodeStateDecode(f *testing.F) {
	f.Add([]byte(`{"episodeId":1,"controller":"bounded(depth=1)","steps":1,"belief":[0.5,0.5],"history":[{"action":2,"observation":1}]}`))
	f.Add([]byte(`{"episodeId":9,"steps":0}`))
	f.Add([]byte(`{"episodeId":8,"steps":1,"hist`)) // torn mid-write
	f.Add([]byte(`{"episodeId":3,"steps":2,"history":[]}`))
	f.Add([]byte(`{"episodeId":4,"belief":[-1]}`))
	f.Add([]byte(`{"episodeId":5,"belief":[1e999]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeEpisodeState(data)
		if err != nil {
			return
		}
		if verr := st.validate(); verr != nil {
			t.Fatalf("accepted state fails validation: %v (%+v)", verr, st)
		}
		enc, err := json.Marshal(st)
		if err != nil {
			t.Fatalf("accepted state does not re-encode: %v", err)
		}
		again, err := DecodeEpisodeState(enc)
		if err != nil {
			t.Fatalf("re-encoded state rejected: %v (%s)", err, enc)
		}
		if !reflect.DeepEqual(st, again) {
			t.Fatalf("round trip changed state: %+v vs %+v", st, again)
		}
	})
}

// FuzzLogRecordDecode drives the checkpoint log scanner — the store's
// crash-recovery path — over arbitrary file images and checks its structural
// invariants: the valid prefix is within bounds and stable under re-scan,
// accepted states validate, and live-byte accounting never exceeds the
// prefix.
func FuzzLogRecordDecode(f *testing.F) {
	frame := func(payload string) []byte {
		buf := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE([]byte(payload)))
		copy(buf[8:], payload)
		return buf
	}
	save := frame(`{"op":"save","episodeId":1,"state":{"episodeId":1,"steps":0,"belief":[1]}}`)
	del := frame(`{"op":"delete","episodeId":1}`)
	tomb := frame(`{"op":"tomb","episodeId":1,"tomb":{"episodeId":1,"clientKey":"k","steps":2,"final":{"action":-1,"terminate":true,"value":3.5},"terminatedAtUnixNano":7}}`)
	untomb := frame(`{"op":"untomb","episodeId":1}`)
	f.Add([]byte{})
	f.Add(save)
	f.Add(append(append([]byte{}, save...), del...))
	f.Add(append(append([]byte{}, save...), save[:len(save)-3]...)) // torn tail
	f.Add(tomb)
	f.Add(append(append([]byte{}, tomb...), untomb...))
	f.Add(append(append([]byte{}, save...), tomb...))                  // both namespaces, same id
	f.Add(frame(`{"op":"tomb","episodeId":2,"tomb":{"episodeId":1}}`)) // id disagreement
	f.Add(frame(`not json`))
	f.Add(frame(`{"op":"warp"}`))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		states, tombs, liveBytes, corrupt, validLen := scanLog(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of range [0, %d]", validLen, len(data))
		}
		if liveBytes < 0 || liveBytes > validLen {
			t.Fatalf("liveBytes %d outside [0, validLen=%d]", liveBytes, validLen)
		}
		for id, st := range states {
			if id != st.EpisodeID {
				t.Fatalf("state keyed %d has id %d", id, st.EpisodeID)
			}
			if err := st.validate(); err != nil {
				t.Fatalf("live state fails validation: %v", err)
			}
		}
		for id, ts := range tombs {
			if id != ts.EpisodeID {
				t.Fatalf("tombstone keyed %d has id %d", id, ts.EpisodeID)
			}
			if err := ts.validate(); err != nil {
				t.Fatalf("live tombstone fails validation: %v", err)
			}
		}
		// Re-scanning the valid prefix is a fixed point: same states, same
		// tombstones, same accounting, nothing newly corrupt or torn.
		states2, tombs2, liveBytes2, corrupt2, validLen2 := scanLog(data[:validLen])
		if validLen2 != validLen || liveBytes2 != liveBytes ||
			len(corrupt2) != len(corrupt) || !reflect.DeepEqual(states, states2) ||
			!reflect.DeepEqual(tombs, tombs2) {
			t.Fatalf("re-scan of valid prefix diverged: len %d vs %d, live %d vs %d, corrupt %d vs %d",
				validLen, validLen2, liveBytes, liveBytes2, len(corrupt), len(corrupt2))
		}
		// And the prefix really is frame-aligned: appending a fresh valid
		// frame extends it by exactly that frame.
		extended := append(append([]byte{}, data[:validLen]...), del...)
		_, _, _, _, validLen3 := scanLog(extended)
		if want := validLen + int64(len(del)); validLen3 != want {
			t.Fatalf("appending a valid frame: validLen %d, want %d", validLen3, want)
		}
	})
}
