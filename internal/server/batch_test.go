package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// newBatchTestServer is newTestServer plus the batch-decide endpoint.
func newBatchTestServer(t *testing.T, mutate func(*Config)) (*Server, *core.Prepared) {
	t.Helper()
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rm := &core.RecoveryModel{
		POMDP:           ts.Model,
		NullStates:      ts.NullStates,
		RateRewards:     ts.RateRewards,
		Durations:       []float64{1, 1, 0},
		MonitorAction:   ts.ActionObserve,
		MonitorDuration: 0.1,
	}
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 1, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model: prep.Model,
		NewController: func() (controller.Controller, pomdp.Belief, error) {
			ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1})
			if err != nil {
				return nil, nil, err
			}
			initial, err := prep.InitialBelief()
			return ctrl, initial, err
		},
		NewBatchDecider: func() (controller.BatchDecider, error) {
			return prep.NewController(core.ControllerConfig{Depth: 1})
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, prep
}

func postBatch(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/decide/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestBatchDecideMatchesLocalController: the endpoint's decisions must equal
// a local controller's DecideBatch on the same beliefs (the endpoint is a
// transport, not a different algorithm).
func TestBatchDecideMatchesLocalController(t *testing.T) {
	srv, prep := newBatchTestServer(t, nil)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	n := prep.Model.NumStates()
	stream := rng.New(23)
	req := BatchDecideRequest{Beliefs: make([][]float64, 9)}
	for i := range req.Beliefs {
		pi := make([]float64, n)
		sum := 0.0
		for s := range pi {
			pi[s] = stream.Float64()
			sum += pi[s]
		}
		for s := range pi {
			pi[s] /= sum
		}
		req.Beliefs[i] = pi
	}

	resp, data := postBatch(t, hs.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out BatchDecideResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Decisions) != len(req.Beliefs) {
		t.Fatalf("%d decisions for %d beliefs", len(out.Decisions), len(req.Beliefs))
	}

	local, err := prep.NewController(core.ControllerConfig{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	beliefs := make([]pomdp.Belief, len(req.Beliefs))
	for i, b := range req.Beliefs {
		beliefs[i] = b
	}
	want := make([]controller.Decision, len(beliefs))
	if err := local.DecideBatch(beliefs, want); err != nil {
		t.Fatal(err)
	}
	for i, d := range out.Decisions {
		got := controller.Decision{Action: d.Action, Terminate: d.Terminate, Value: d.Value}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("decision %d: remote %+v, local %+v", i, got, want[i])
		}
		if d.ActionName == "" {
			t.Errorf("decision %d: missing action name", i)
		}
	}
}

// TestBatchDecideRouteAbsentWithoutFactory: without NewBatchDecider the
// route must not exist at all.
func TestBatchDecideRouteAbsentWithoutFactory(t *testing.T) {
	srv, _ := newBatchTestServer(t, func(cfg *Config) { cfg.NewBatchDecider = nil })
	hs := httptest.NewServer(srv)
	defer hs.Close()
	resp, _ := postBatch(t, hs.URL, BatchDecideRequest{Beliefs: [][]float64{{1, 0, 0, 0}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d without a batch factory, want 404", resp.StatusCode)
	}
}

func TestBatchDecideValidation(t *testing.T) {
	srv, prep := newBatchTestServer(t, func(cfg *Config) { cfg.MaxBatchBeliefs = 4 })
	hs := httptest.NewServer(srv)
	defer hs.Close()
	n := prep.Model.NumStates()
	good := make([]float64, n)
	good[0] = 1

	cases := []struct {
		name   string
		req    BatchDecideRequest
		status int
		want   string
	}{
		{"empty", BatchDecideRequest{}, http.StatusBadRequest, "no beliefs"},
		{"over cap", BatchDecideRequest{Beliefs: [][]float64{good, good, good, good, good}},
			http.StatusBadRequest, "over cap 4"},
		{"wrong length", BatchDecideRequest{Beliefs: [][]float64{{1, 0}}},
			http.StatusBadRequest, "has length 2"},
		{"not a distribution", BatchDecideRequest{Beliefs: [][]float64{{2, -1, 0, 0}}},
			http.StatusBadRequest, "not a distribution"},
	}
	for _, c := range cases {
		resp, data := postBatch(t, hs.URL, c.req)
		if resp.StatusCode != c.status || !strings.Contains(string(data), c.want) {
			t.Errorf("%s: status %d body %s, want %d containing %q", c.name, resp.StatusCode, data, c.status, c.want)
		}
	}
}

func TestBatchDecideOversizeBody(t *testing.T) {
	srv, _ := newBatchTestServer(t, func(cfg *Config) { cfg.MaxBodyBytes = 256 })
	hs := httptest.NewServer(srv)
	defer hs.Close()
	req := BatchDecideRequest{Beliefs: make([][]float64, 64)}
	for i := range req.Beliefs {
		req.Beliefs[i] = []float64{1, 0, 0, 0}
	}
	resp, data := postBatch(t, hs.URL, req)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d body %s, want 413", resp.StatusCode, data)
	}
}

func TestBatchDecideMetrics(t *testing.T) {
	srv, prep := newBatchTestServer(t, nil)
	hs := httptest.NewServer(srv)
	defer hs.Close()
	n := prep.Model.NumStates()
	pi := make([]float64, n)
	pi[0] = 1
	for i := 0; i < 3; i++ {
		resp, data := postBatch(t, hs.URL, BatchDecideRequest{Beliefs: [][]float64{pi, pi}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(data)
	if !strings.Contains(body, "recoverd_batch_decide_requests_total 3") {
		t.Errorf("metrics missing batch request count:\n%s", body)
	}
	if !strings.Contains(body, "recoverd_batch_decisions_total 6") {
		t.Errorf("metrics missing batch decision count:\n%s", body)
	}
}

func TestNewRejectsNegativeMaxBatchBeliefs(t *testing.T) {
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Model: &pomdp.POMDP{M: ts.Model.M, Obs: ts.Model.Obs},
		NewController: func() (controller.Controller, pomdp.Belief, error) {
			return nil, nil, nil
		},
		MaxBatchBeliefs: -1,
	})
	if err == nil {
		t.Error("negative MaxBatchBeliefs accepted")
	}
}
