package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"bpomdp/internal/fleet"
)

// fleetNode is one test member: a server with its own membership view and a
// per-member store under a shared root.
type fleetNode struct {
	id   string
	srv  *Server
	hs   *httptest.Server
	view *fleet.Membership
}

// newFleetPair builds two fleet members ("a", "b") sharing a checkpoint
// root, each with an independent membership view (as in production — views
// only converge through redirects and explicit marking).
func newFleetPair(t *testing.T) (map[string]*fleetNode, string) {
	t.Helper()
	prep := testPrepared(t)
	root := t.TempDir()
	members := []fleet.Member{{ID: "a"}, {ID: "b"}}
	nodes := map[string]*fleetNode{}
	// Addresses are needed before servers exist; create listeners first via
	// unstarted httptest servers, then fill the member addresses.
	for _, m := range members {
		nodes[m.ID] = &fleetNode{id: m.ID}
		nodes[m.ID].hs = httptest.NewUnstartedServer(nil)
	}
	for i := range members {
		members[i].Addr = "http://" + nodes[members[i].ID].hs.Listener.Addr().String()
	}
	storeFor := func(id string) (Checkpointer, error) {
		return NewDirCheckpointer(filepath.Join(root, id))
	}
	for _, m := range members {
		view, err := fleet.NewMembership(members, 8)
		if err != nil {
			t.Fatal(err)
		}
		own, err := storeFor(m.ID)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(Config{
			Model:         prep.Model,
			NewController: boundedFactory(prep),
			Checkpointer:  own,
			Fleet:         &FleetConfig{Self: m.ID, Membership: view, StoreFor: storeFor},
		})
		if err != nil {
			t.Fatal(err)
		}
		n := nodes[m.ID]
		n.srv, n.view = srv, view
		n.hs.Config.Handler = srv
		n.hs.Start()
		t.Cleanup(n.hs.Close)
	}
	return nodes, root
}

// keyOwnedBy generates a clientKey the given member owns under view.
func keyOwnedBy(t *testing.T, view *fleet.Membership, id string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("ck-%s-%d", id, i)
		if o, ok := view.Owner(k); ok && o.ID == id {
			return k
		}
	}
	t.Fatalf("no key hashed to member %s", id)
	return ""
}

// noRedirect returns a client that surfaces 307s instead of following them.
func noRedirect() *http.Client {
	return &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
}

func TestFleetRedirectsUnownedKey(t *testing.T) {
	nodes, _ := newFleetPair(t)
	a, b := nodes["a"], nodes["b"]
	key := keyOwnedBy(t, a.view, "b") // owned by b, sent to a

	resp, err := noRedirect().Post(a.hs.URL+"/v1/episodes", "application/json",
		strings.NewReader(fmt.Sprintf(`{"clientKey":%q}`, key)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("start on non-owner: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderOwner); got != "b" {
		t.Errorf("%s = %q", HeaderOwner, got)
	}
	wantLoc := b.hs.URL + "/v1/episodes"
	if got := resp.Header.Get("Location"); got != wantLoc {
		t.Errorf("Location = %q, want %q", got, wantLoc)
	}

	// A default client follows the 307 (re-sending the POST body) and lands
	// the episode on the owner.
	resp2, err := http.Post(a.hs.URL+"/v1/episodes", "application/json",
		strings.NewReader(fmt.Sprintf(`{"clientKey":%q}`, key)))
	if err != nil {
		t.Fatal(err)
	}
	var started StartResponse
	if err := json.NewDecoder(resp2.Body).Decode(&started); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("followed start: status %d", resp2.StatusCode)
	}
	if a.srv.OpenEpisodes() != 0 || b.srv.OpenEpisodes() != 1 {
		t.Errorf("episodes a=%d b=%d", a.srv.OpenEpisodes(), b.srv.OpenEpisodes())
	}
	if !sameIDRange(started.EpisodeID, EpisodeIDBaseFor(1)) {
		t.Errorf("episode id %d not in member b's range", started.EpisodeID)
	}

	// Episode-scoped requests carrying the key redirect the same way.
	req, _ := http.NewRequest("GET", a.hs.URL+fmt.Sprintf("/v1/episodes/%d/decision", started.EpisodeID), nil)
	req.Header.Set(HeaderEpisodeKey, key)
	resp3, err := noRedirect().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusTemporaryRedirect || resp3.Header.Get(HeaderOwner) != "b" {
		t.Errorf("episode miss: status %d owner %q", resp3.StatusCode, resp3.Header.Get(HeaderOwner))
	}
	// Without the key header a non-owner has nothing to go on: plain 404.
	resp4, err := http.Get(a.hs.URL + fmt.Sprintf("/v1/episodes/%d", started.EpisodeID))
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNotFound {
		t.Errorf("keyless miss: status %d", resp4.StatusCode)
	}
}

func TestFleetEagerAdoptionOnMarkDown(t *testing.T) {
	nodes, root := newFleetPair(t)
	a, b := nodes["a"], nodes["b"]
	key := keyOwnedBy(t, a.view, "a")

	resp, err := http.Post(a.hs.URL+"/v1/episodes", "application/json",
		strings.NewReader(fmt.Sprintf(`{"clientKey":%q}`, key)))
	if err != nil {
		t.Fatal(err)
	}
	var started StartResponse
	if err := json.NewDecoder(resp.Body).Decode(&started); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Kill a (no graceful close) and tell b.
	a.hs.CloseClientConnections()
	a.hs.Close()
	adopted, err := b.srv.MarkMemberDown("a")
	if err != nil {
		t.Fatal(err)
	}
	if adopted != 1 {
		t.Fatalf("adopted %d episodes, want 1", adopted)
	}
	if b.srv.OpenEpisodes() != 1 {
		t.Fatalf("open on b: %d", b.srv.OpenEpisodes())
	}
	// Same id, served by b now.
	resp, err = http.Get(b.hs.URL + fmt.Sprintf("/v1/episodes/%d", started.EpisodeID))
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Open || st.EpisodeID != started.EpisodeID {
		t.Errorf("adopted status %+v", st)
	}
	// The source record moved: a's store is empty, b's has it.
	aStore, err := NewDirCheckpointer(filepath.Join(root, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if states, _, _ := aStore.LoadAll(); len(states) != 0 {
		t.Errorf("source store still holds %+v", states)
	}
	bStore, err := NewDirCheckpointer(filepath.Join(root, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if states, _, _ := bStore.LoadAll(); len(states) != 1 || states[0].EpisodeID != started.EpisodeID {
		t.Errorf("adopter store holds %+v", states)
	}
	// Idempotent: marking down again adopts nothing new.
	if n, err := b.srv.MarkMemberDown("a"); err != nil || n != 0 {
		t.Errorf("second MarkMemberDown = %d, %v", n, err)
	}
	// Dedupe across the handoff: restarting the same key on b returns the
	// adopted episode, not a fresh one.
	resp, err = http.Post(b.hs.URL+"/v1/episodes", "application/json",
		strings.NewReader(fmt.Sprintf(`{"clientKey":%q}`, key)))
	if err != nil {
		t.Fatal(err)
	}
	var again StartResponse
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || again.EpisodeID != started.EpisodeID {
		t.Errorf("post-handoff start: status %d id %d, want 200 id %d", resp.StatusCode, again.EpisodeID, started.EpisodeID)
	}
}

func TestFleetLazyAdoptionOnStart(t *testing.T) {
	nodes, _ := newFleetPair(t)
	a, b := nodes["a"], nodes["b"]
	key := keyOwnedBy(t, a.view, "a")

	resp, err := http.Post(a.hs.URL+"/v1/episodes", "application/json",
		strings.NewReader(fmt.Sprintf(`{"clientKey":%q}`, key)))
	if err != nil {
		t.Fatal(err)
	}
	var started StartResponse
	if err := json.NewDecoder(resp.Body).Decode(&started); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	a.hs.CloseClientConnections()
	a.hs.Close()
	// b's view learns a is down, but nobody called the admin endpoint — the
	// client's re-POST of the same key must lazily pull the episode over.
	if _, err := b.view.MarkDown("a"); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(b.hs.URL+"/v1/episodes", "application/json",
		strings.NewReader(fmt.Sprintf(`{"clientKey":%q}`, key)))
	if err != nil {
		t.Fatal(err)
	}
	var again StartResponse
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || again.EpisodeID != started.EpisodeID {
		t.Errorf("lazy adoption start: status %d id %d, want 200 id %d", resp.StatusCode, again.EpisodeID, started.EpisodeID)
	}
	// And an episode-scoped request with the key also triggers adoption when
	// the episode is unknown but owned (view already updated, fresh node).
	if b.srv.OpenEpisodes() != 1 {
		t.Errorf("open on b: %d", b.srv.OpenEpisodes())
	}
}

func TestFleetAdminEndpoints(t *testing.T) {
	nodes, _ := newFleetPair(t)
	b := nodes["b"]

	var view FleetView
	resp, err := http.Get(b.hs.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.Self != "b" || len(view.Members) != 2 || !view.Members[0].Up {
		t.Errorf("fleet view %+v", view)
	}

	resp, err = http.Post(b.hs.URL+"/v1/fleet/members/a/down", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var admin fleetAdminResponse
	if err := json.NewDecoder(resp.Body).Decode(&admin); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !admin.Down || admin.Member != "a" {
		t.Errorf("down response %d %+v", resp.StatusCode, admin)
	}
	if !b.view.IsDown("a") {
		t.Error("a not down in b's view")
	}
	resp, err = http.Post(b.hs.URL+"/v1/fleet/members/a/up", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if b.view.IsDown("a") {
		t.Error("a still down after up")
	}
	// Unknown member and self-down are refused.
	resp, err = http.Post(b.hs.URL+"/v1/fleet/members/zz/down", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown member down: status %d", resp.StatusCode)
	}
	resp, err = http.Post(b.hs.URL+"/v1/fleet/members/b/down", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("self down: status %d", resp.StatusCode)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	prep := testPrepared(t)
	view, err := fleet.NewMembership([]fleet.Member{{ID: "a", Addr: "x"}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep),
		Fleet: &FleetConfig{Self: "ghost", Membership: view}}); err == nil {
		t.Error("non-member self accepted")
	}
	if _, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep),
		Fleet: &FleetConfig{Self: "a"}}); err == nil {
		t.Error("nil membership accepted")
	}
}

// TestFleetDeadMemberReturns is the partition-heal regression: a member whose
// episodes and tombstones were adopted away while it was considered down must
// not keep serving its stale in-memory copies once it is marked up again —
// that would be double ownership, with the client's view deciding which copy
// it talks to. Marking itself up must reconcile against its own (now emptied)
// store and drop everything that moved.
func TestFleetDeadMemberReturns(t *testing.T) {
	nodes, _ := newFleetPair(t)
	a, b := nodes["a"], nodes["b"]

	// Two episodes on a: one live, one driven to termination (a tombstone).
	liveKey := keyOwnedBy(t, a.view, "a")
	var deadKey string
	for i := 0; deadKey == "" && i < 10000; i++ {
		k := fmt.Sprintf("tk-a-%d", i)
		if o, ok := a.view.Owner(k); ok && o.ID == "a" {
			deadKey = k
		}
	}
	if deadKey == "" {
		t.Fatal("no terminal key hashed to a")
	}
	deadID, final := driveTerminal(t, a.hs, a.srv.cfg.Model, deadKey)
	resp, err := http.Post(a.hs.URL+"/v1/episodes", "application/json",
		strings.NewReader(fmt.Sprintf(`{"clientKey":%q}`, liveKey)))
	if err != nil {
		t.Fatal(err)
	}
	var started StartResponse
	if err := json.NewDecoder(resp.Body).Decode(&started); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Partition, not crash: a keeps running while b declares it down and
	// adopts its key range from the shared store root.
	if adopted, err := b.srv.MarkMemberDown("a"); err != nil || adopted != 1 {
		t.Fatalf("MarkMemberDown adopted %d (err=%v), want 1", adopted, err)
	}

	// The bug surface: a still answers for the adopted-away episode.
	resp, err = http.Get(a.hs.URL + fmt.Sprintf("/v1/episodes/%d", started.EpisodeID))
	if err != nil {
		t.Fatal(err)
	}
	var stale StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&stale); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !stale.Open {
		t.Fatalf("pre-heal status on a: %+v, expected the stale copy to still be served", stale)
	}

	// Heal: a marks itself up and must reconcile against its own store.
	resp, err = http.Post(a.hs.URL+"/v1/fleet/members/a/up", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var admin fleetAdminResponse
	if err := json.NewDecoder(resp.Body).Decode(&admin); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || admin.Dropped != 2 {
		t.Fatalf("self mark-up: status %d dropped %d, want 200 and 2 (episode + tombstone)", resp.StatusCode, admin.Dropped)
	}
	if a.srv.OpenEpisodes() != 0 {
		t.Errorf("a still holds %d episodes after reconcile", a.srv.OpenEpisodes())
	}
	// No double ownership: a no longer answers for either id...
	resp, err = http.Get(a.hs.URL + fmt.Sprintf("/v1/episodes/%d", started.EpisodeID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("post-heal keyless status on a: %d, want 404", resp.StatusCode)
	}
	if status, _ := getDecision(t, a.hs.URL, deadID); status != http.StatusNotFound {
		t.Errorf("post-heal tombstone decision on a: status %d, want 404", status)
	}
	// ...while b serves the adopted episode and replays the terminal decision.
	resp, err = http.Get(b.hs.URL + fmt.Sprintf("/v1/episodes/%d", started.EpisodeID))
	if err != nil {
		t.Fatal(err)
	}
	var adoptedSt StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&adoptedSt); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !adoptedSt.Open || adoptedSt.EpisodeID != started.EpisodeID {
		t.Errorf("adopted episode on b: %+v", adoptedSt)
	}
	if status, replayed := getDecision(t, b.hs.URL, deadID); status != http.StatusOK || replayed != final {
		t.Errorf("terminal replay on b: status %d decision %+v, want %+v", status, replayed, final)
	}
	// Marking up again is a clean no-op.
	if n, err := a.srv.MarkMemberUp("a"); err != nil || n != 0 {
		t.Errorf("second self mark-up dropped %d (err=%v), want 0", n, err)
	}
}
