package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"bpomdp/internal/fleet"
)

// Fleet request headers.
const (
	// HeaderOwner names the member a redirected request belongs to, so a
	// client can repair its membership view from the redirect alone.
	HeaderOwner = "X-Bpomdp-Owner"
	// HeaderEpisodeKey carries the episode's routing key (its clientKey) on
	// episode-scoped requests. Episode ids alone don't identify an owner —
	// only the key hashes onto the ring — so fleet-aware clients send it on
	// every request to let a non-owner redirect instead of 404ing.
	HeaderEpisodeKey = "X-Bpomdp-Episode-Key"
)

// FleetConfig turns a Server into one member of a recovery fleet. Episode
// ownership is decided by the shared hash ring; requests for keys this
// member does not own are redirected (307 + X-Bpomdp-Owner) to the owner,
// and when a member is marked down this member adopts the episodes it now
// owns out of the dead member's checkpoint store via the ordinary
// crash-restart replay path.
type FleetConfig struct {
	// Self is this member's id; must appear in Membership.
	Self string
	// Membership is this node's view of the fleet. It may be shared with
	// other components (health probes, admin tooling) — the server only
	// flips it through MarkMemberDown/MarkMemberUp.
	Membership *fleet.Membership
	// StoreFor opens (read-write) the checkpoint store of another member,
	// used to claim a down member's episodes. Required for handoff; when nil
	// this member redirects but never adopts.
	StoreFor func(memberID string) (Checkpointer, error)
}

// episodeIDRangeBits is how far member indices are shifted to form
// EpisodeIDBase: each member allocates ids in its own disjoint 48-bit range,
// so an adopted episode keeps its original id without ever colliding with
// the adopter's allocator.
const episodeIDRangeBits = 48

// EpisodeIDBaseFor returns the id-range base for the fleet member at the
// given sorted-membership index.
func EpisodeIDBaseFor(memberIndex int) uint64 {
	return uint64(memberIndex) << episodeIDRangeBits
}

// sameIDRange reports whether id was allocated from the range starting at
// base.
func sameIDRange(id, base uint64) bool {
	return id>>episodeIDRangeBits == base>>episodeIDRangeBits
}

// validateFleet checks the fleet configuration and derives EpisodeIDBase.
// Called by New.
func validateFleet(cfg *Config) error {
	f := cfg.Fleet
	if f == nil {
		return nil
	}
	if f.Membership == nil {
		return fmt.Errorf("server: fleet config without membership")
	}
	idx, ok := f.Membership.Index(f.Self)
	if !ok {
		return fmt.Errorf("server: fleet self %q is not a member", f.Self)
	}
	cfg.EpisodeIDBase = EpisodeIDBaseFor(idx)
	return nil
}

func (s *Server) fleetEnabled() bool { return s.cfg.Fleet != nil }

// redirectToOwner answers a request for a key this member does not own with
// a 307 to the same URI on the owner. Go's http.Client re-sends the method
// and body on a 307, so both idempotent GETs and keyed POSTs survive the
// hop.
func (s *Server) redirectToOwner(w http.ResponseWriter, r *http.Request, owner fleet.Member) {
	s.m.redirects.Inc()
	w.Header().Set(HeaderOwner, owner.ID)
	w.Header().Set("Location", strings.TrimSuffix(owner.Addr, "/")+r.URL.RequestURI())
	w.WriteHeader(http.StatusTemporaryRedirect)
}

// fleetStart routes an episode start by its clientKey. It returns true when
// it wrote the response (redirect or routing error); false means this member
// owns the key and the ordinary start path should proceed — after a lazy
// adoption attempt, so a key started on a now-dead member dedupes into the
// adopted episode instead of spawning a duplicate.
func (s *Server) fleetStart(w http.ResponseWriter, r *http.Request, key string) bool {
	owner, ok := s.cfg.Fleet.Membership.Owner(key)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no live fleet members in this view"))
		return true
	}
	if owner.ID != s.cfg.Fleet.Self {
		s.redirectToOwner(w, r, owner)
		return true
	}
	s.mu.Lock()
	_, known := s.byKey[key]
	s.mu.Unlock()
	if !known {
		s.adoptKey(key)
	}
	return false
}

// fleetEpisodeMiss handles an episode-id lookup miss. handled means a
// response was written (redirect); retry means an adoption may have brought
// the episode in and the caller should re-run its lookup. Both false: plain
// 404 territory.
func (s *Server) fleetEpisodeMiss(w http.ResponseWriter, r *http.Request) (retry, handled bool) {
	if !s.fleetEnabled() {
		return false, false
	}
	key := r.Header.Get(HeaderEpisodeKey)
	if key == "" {
		return false, false
	}
	owner, ok := s.cfg.Fleet.Membership.Owner(key)
	if !ok {
		return false, false
	}
	if owner.ID != s.cfg.Fleet.Self {
		s.redirectToOwner(w, r, owner)
		return false, true
	}
	return s.adoptKey(key) > 0, false
}

// adoptKey scans the checkpoint stores of down members for episodes with the
// given clientKey and adopts any this member now owns. Returns the number of
// episodes adopted.
func (s *Server) adoptKey(key string) int {
	return s.adoptFromDown(func(st EpisodeState) bool { return st.ClientKey == key })
}

// adoptFromDown runs adoption against every down member's store.
func (s *Server) adoptFromDown(want func(EpisodeState) bool) int {
	f := s.cfg.Fleet
	if f.StoreFor == nil {
		return 0
	}
	total := 0
	for _, down := range f.Membership.DownMembers() {
		n, err := s.adoptFromMember(down.ID, want)
		if err != nil {
			s.m.adoptErrors.Inc()
		}
		total += n
	}
	return total
}

// adoptFromMember claims matching episodes out of one (presumed down)
// member's checkpoint store: replay through a fresh controller, register
// under the original id, persist into our own store, and delete from the
// source so the member cannot resume them if it comes back — at-most-one
// serving member per episode.
func (s *Server) adoptFromMember(memberID string, want func(EpisodeState) bool) (int, error) {
	f := s.cfg.Fleet
	if f.StoreFor == nil {
		return 0, nil
	}
	store, err := f.StoreFor(memberID)
	if err != nil {
		return 0, fmt.Errorf("open store of %q: %w", memberID, err)
	}
	defer func() {
		if c, ok := store.(io.Closer); ok {
			_ = c.Close()
		}
	}()
	states, _, err := store.LoadAll()
	if err != nil {
		return 0, fmt.Errorf("load store of %q: %w", memberID, err)
	}
	adopted := 0
	var firstErr error
	for _, st := range states {
		if !want(st) {
			continue
		}
		// Only claim keys this member owns in the current view; other
		// survivors claim their own ranges.
		if st.ClientKey != "" {
			if owner, ok := f.Membership.Owner(st.ClientKey); !ok || owner.ID != f.Self {
				continue
			}
		} else {
			// Keyless episodes cannot be routed (no key, no ring position),
			// so no member can claim them without two members claiming the
			// same episode. Left for the original member's restart.
			continue
		}
		if !s.adoptOne(st) {
			continue
		}
		// Persist into our own store before removing the source record so a
		// crash between the two leaves the episode recoverable (twice is
		// fine — replay is deterministic and the duplicate loses the byKey
		// race), never zero places.
		s.checkpointState(st)
		if err := store.Delete(st.EpisodeID); err != nil && firstErr == nil {
			firstErr = err
		}
		adopted++
	}
	return adopted, firstErr
}

// adoptOne replays one foreign snapshot and registers it locally. False when
// the episode is already present (or its key is taken) or replay fails.
func (s *Server) adoptOne(st EpisodeState) bool {
	s.mu.Lock()
	_, haveID := s.episodes[st.EpisodeID]
	_, haveTomb := s.tombstones[st.EpisodeID]
	_, haveKey := s.byKey[st.ClientKey]
	s.mu.Unlock()
	if haveID || haveTomb || haveKey {
		return false
	}
	ep, err := s.replay(st)
	if err != nil {
		s.m.adoptErrors.Inc()
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check under the lock: a concurrent adoption or start may have won.
	if _, ok := s.episodes[st.EpisodeID]; ok {
		return false
	}
	if _, ok := s.byKey[st.ClientKey]; ok {
		return false
	}
	s.episodes[st.EpisodeID] = ep
	s.byKey[st.ClientKey] = st.EpisodeID
	if sameIDRange(st.EpisodeID, s.cfg.EpisodeIDBase) && st.EpisodeID > s.nextID {
		s.nextID = st.EpisodeID
	}
	s.m.adopted.Inc()
	return true
}

// MarkMemberDown flips a member down in this node's view and eagerly adopts
// every episode of its that now hashes to this member. It returns how many
// episodes were adopted. Safe to call repeatedly (health probe + admin
// endpoint may race); adoption is idempotent.
func (s *Server) MarkMemberDown(id string) (int, error) {
	f := s.cfg.Fleet
	if f == nil {
		return 0, fmt.Errorf("server: not in fleet mode")
	}
	if id == f.Self {
		return 0, fmt.Errorf("server: refusing to mark self down")
	}
	if _, err := f.Membership.MarkDown(id); err != nil {
		return 0, err
	}
	n, err := s.adoptFromMember(id, func(EpisodeState) bool { return true })
	if err != nil {
		s.m.adoptErrors.Inc()
	}
	return n, nil
}

// MarkMemberUp flips a member back up in this node's view. Episodes already
// adopted stay adopted (their source records were deleted); only keys that
// never moved flow back to the returning member.
func (s *Server) MarkMemberUp(id string) error {
	f := s.cfg.Fleet
	if f == nil {
		return fmt.Errorf("server: not in fleet mode")
	}
	_, err := f.Membership.MarkUp(id)
	return err
}

// FleetView is returned by GET /v1/fleet.
type FleetView struct {
	Self    string               `json:"self"`
	Version uint64               `json:"version"`
	Members []fleet.MemberStatus `json:"members"`
}

// fleetAdminResponse is returned by the member up/down admin endpoints.
type fleetAdminResponse struct {
	Member  string `json:"member"`
	Down    bool   `json:"down"`
	Adopted int    `json:"adopted"`
}

func (s *Server) handleFleetView(w http.ResponseWriter, _ *http.Request) {
	f := s.cfg.Fleet
	writeJSON(w, http.StatusOK, FleetView{
		Self:    f.Self,
		Version: f.Membership.Version(),
		Members: f.Membership.Snapshot(),
	})
}

func (s *Server) handleFleetDown(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	adopted, err := s.MarkMemberDown(id)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := s.cfg.Fleet.Membership.Member(id); !ok {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, fleetAdminResponse{Member: id, Down: true, Adopted: adopted})
}

func (s *Server) handleFleetUp(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.MarkMemberUp(id); err != nil {
		status := http.StatusBadRequest
		if _, ok := s.cfg.Fleet.Membership.Member(id); !ok {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, fleetAdminResponse{Member: id, Down: false})
}
