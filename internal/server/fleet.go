package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"bpomdp/internal/fleet"
	"bpomdp/internal/obs"
)

// Fleet request headers.
const (
	// HeaderOwner names the member a redirected request belongs to, so a
	// client can repair its membership view from the redirect alone.
	HeaderOwner = "X-Bpomdp-Owner"
	// HeaderEpisodeKey carries the episode's routing key (its clientKey) on
	// episode-scoped requests. Episode ids alone don't identify an owner —
	// only the key hashes onto the ring — so fleet-aware clients send it on
	// every request to let a non-owner redirect instead of 404ing.
	HeaderEpisodeKey = "X-Bpomdp-Episode-Key"
)

// FleetConfig turns a Server into one member of a recovery fleet. Episode
// ownership is decided by the shared hash ring; requests for keys this
// member does not own are redirected (307 + X-Bpomdp-Owner) to the owner,
// and when a member is marked down this member adopts the episodes it now
// owns out of the dead member's checkpoint store via the ordinary
// crash-restart replay path.
type FleetConfig struct {
	// Self is this member's id; must appear in Membership.
	Self string
	// Membership is this node's view of the fleet. It may be shared with
	// other components (health probes, admin tooling) — the server only
	// flips it through MarkMemberDown/MarkMemberUp.
	Membership *fleet.Membership
	// StoreFor opens (read-write) the checkpoint store of another member,
	// used to claim a down member's episodes. Required for handoff; when nil
	// this member redirects but never adopts.
	StoreFor func(memberID string) (Checkpointer, error)
}

// episodeIDRangeBits is how far member indices are shifted to form
// EpisodeIDBase: each member allocates ids in its own disjoint 48-bit range,
// so an adopted episode keeps its original id without ever colliding with
// the adopter's allocator.
const episodeIDRangeBits = 48

// EpisodeIDBaseFor returns the id-range base for the fleet member at the
// given sorted-membership index.
func EpisodeIDBaseFor(memberIndex int) uint64 {
	return uint64(memberIndex) << episodeIDRangeBits
}

// sameIDRange reports whether id was allocated from the range starting at
// base.
func sameIDRange(id, base uint64) bool {
	return id>>episodeIDRangeBits == base>>episodeIDRangeBits
}

// validateFleet checks the fleet configuration and derives EpisodeIDBase.
// Called by New.
func validateFleet(cfg *Config) error {
	f := cfg.Fleet
	if f == nil {
		return nil
	}
	if f.Membership == nil {
		return fmt.Errorf("server: fleet config without membership")
	}
	idx, ok := f.Membership.Index(f.Self)
	if !ok {
		return fmt.Errorf("server: fleet self %q is not a member", f.Self)
	}
	cfg.EpisodeIDBase = EpisodeIDBaseFor(idx)
	return nil
}

func (s *Server) fleetEnabled() bool { return s.cfg.Fleet != nil }

// redirectToOwner answers a request for a key this member does not own with
// a 307 to the same URI on the owner. Go's http.Client re-sends the method
// and body on a 307, so both idempotent GETs and keyed POSTs survive the
// hop.
func (s *Server) redirectToOwner(w http.ResponseWriter, r *http.Request, owner fleet.Member) {
	s.m.redirects.Inc()
	w.Header().Set(HeaderOwner, owner.ID)
	w.Header().Set("Location", strings.TrimSuffix(owner.Addr, "/")+r.URL.RequestURI())
	w.WriteHeader(http.StatusTemporaryRedirect)
}

// fleetStart routes an episode start by its clientKey. It returns true when
// it wrote the response (redirect or routing error); false means this member
// owns the key and the ordinary start path should proceed — after a lazy
// adoption attempt, so a key started on a now-dead member dedupes into the
// adopted episode instead of spawning a duplicate.
func (s *Server) fleetStart(w http.ResponseWriter, r *http.Request, key string) bool {
	owner, ok := s.cfg.Fleet.Membership.Owner(key)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no live fleet members in this view"))
		return true
	}
	if owner.ID != s.cfg.Fleet.Self {
		s.redirectToOwner(w, r, owner)
		return true
	}
	s.mu.Lock()
	_, known := s.byKey[key]
	if !known {
		// A tombstoned key is known too: handleStart's dedupe will answer
		// with the original terminated episode's id.
		_, known = s.tombByKey[key]
	}
	s.mu.Unlock()
	if !known {
		s.adoptKey(key)
	}
	return false
}

// fleetEpisodeMiss handles an episode-id lookup miss. handled means a
// response was written (redirect); retry means an adoption may have brought
// the episode in and the caller should re-run its lookup. Both false: plain
// 404 territory.
func (s *Server) fleetEpisodeMiss(w http.ResponseWriter, r *http.Request) (retry, handled bool) {
	if !s.fleetEnabled() {
		return false, false
	}
	key := r.Header.Get(HeaderEpisodeKey)
	if key == "" {
		return false, false
	}
	owner, ok := s.cfg.Fleet.Membership.Owner(key)
	if !ok {
		return false, false
	}
	if owner.ID != s.cfg.Fleet.Self {
		s.redirectToOwner(w, r, owner)
		return false, true
	}
	return s.adoptKey(key) > 0, false
}

// adoptKey scans the checkpoint stores of down members for episodes (and
// terminal tombstones) with the given clientKey and adopts any this member
// now owns. Returns the number of episodes adopted.
func (s *Server) adoptKey(key string) int {
	return s.adoptFromDown(func(k string) bool { return k == key })
}

// adoptFromDown runs adoption against every down member's store. want
// filters by episode key.
func (s *Server) adoptFromDown(want func(key string) bool) int {
	f := s.cfg.Fleet
	if f.StoreFor == nil {
		return 0
	}
	total := 0
	for _, down := range f.Membership.DownMembers() {
		n, err := s.adoptFromMember(down.ID, want)
		if err != nil {
			s.m.adoptErrors.Inc()
		}
		total += n
	}
	return total
}

// adoptFromMember claims matching episodes out of one (presumed down)
// member's checkpoint store: replay through a fresh controller, register
// under the original id, persist into our own store, and delete from the
// source so the member cannot resume them if it comes back — at-most-one
// serving member per episode.
//
// Tombstones are adopted before episodes: a terminal decision is the
// episode's durable last word, and a crash on the source between
// tombstone-write and record-delete can leave both in its store. Processing
// tombstones first makes the tombstone win — the stale episode record is
// deleted, never replayed into a live (re-decidable) episode.
func (s *Server) adoptFromMember(memberID string, want func(key string) bool) (int, error) {
	f := s.cfg.Fleet
	if f.StoreFor == nil {
		return 0, nil
	}
	store, err := f.StoreFor(memberID)
	if err != nil {
		return 0, fmt.Errorf("open store of %q: %w", memberID, err)
	}
	defer func() {
		if c, ok := store.(io.Closer); ok {
			_ = c.Close()
		}
	}()
	states, _, err := store.LoadAll()
	if err != nil {
		return 0, fmt.Errorf("load store of %q: %w", memberID, err)
	}
	tombs, _, err := store.LoadTombstones()
	if err != nil {
		// Without the tombstone view, adopting episodes could resurrect an
		// already-terminated one. Refuse the whole store.
		return 0, fmt.Errorf("load tombstones of %q: %w", memberID, err)
	}
	stale := make(map[uint64]bool, len(states))
	for _, st := range states {
		stale[st.EpisodeID] = true
	}
	var firstErr error
	tombed := make(map[uint64]bool)
	for _, ts := range tombs {
		if ts.ClientKey == "" || !want(ts.ClientKey) {
			continue
		}
		// Only claim keys this member owns in the current view; other
		// survivors claim their own ranges.
		if owner, ok := f.Membership.Owner(ts.ClientKey); !ok || owner.ID != f.Self {
			continue
		}
		tombed[ts.EpisodeID] = true
		at0 := s.spanStart()
		claimed := s.adoptTombstone(ts)
		if err := store.DeleteTombstone(ts.EpisodeID); err != nil && firstErr == nil {
			firstErr = err
		}
		if stale[ts.EpisodeID] {
			// The source crashed between tombstone-write and record-delete;
			// finish its deletion so the record cannot be adopted or resumed.
			if err := store.Delete(ts.EpisodeID); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if claimed && !at0.IsZero() {
			s.emitSpan(&obs.SpanRecord{TraceID: ts.ClientKey, Kind: obs.SpanServerAdopt,
				Op: obs.SpanOpTombstone, Episode: ts.EpisodeID, Source: memberID,
				Start: at0.UnixNano(), Duration: time.Since(at0).Nanoseconds()})
		}
	}
	adopted := 0
	for _, st := range states {
		if tombed[st.EpisodeID] {
			continue
		}
		if st.ClientKey == "" {
			// Keyless episodes cannot be routed (no key, no ring position),
			// so no member can claim them without two members claiming the
			// same episode. Left for the original member's restart.
			continue
		}
		if !want(st.ClientKey) {
			continue
		}
		if owner, ok := f.Membership.Owner(st.ClientKey); !ok || owner.ID != f.Self {
			continue
		}
		at0 := s.spanStart()
		if !s.adoptOne(st) {
			continue
		}
		adopted++
		// Persist into our own store before removing the source record so a
		// crash between the two leaves the episode recoverable (twice is
		// fine — replay is deterministic and the duplicate loses the byKey
		// race), never zero places.
		s.checkpointState(st)
		if err := store.Delete(st.EpisodeID); err != nil && firstErr == nil {
			firstErr = err
		}
		if !at0.IsZero() {
			s.emitSpan(&obs.SpanRecord{TraceID: st.ClientKey, Kind: obs.SpanServerAdopt,
				Op: obs.SpanOpEpisode, Episode: st.EpisodeID, Source: memberID,
				Start: at0.UnixNano(), Duration: time.Since(at0).Nanoseconds()})
		}
	}
	return adopted, firstErr
}

// adoptTombstone claims one foreign terminal tombstone: persist it into our
// own store, then cache it. False when this id is already tombstoned here
// (e.g. it arrived earlier via replication).
func (s *Server) adoptTombstone(ts TombstoneState) bool {
	s.mu.Lock()
	_, have := s.tombstones[ts.EpisodeID]
	s.mu.Unlock()
	if have {
		return false
	}
	if s.cfg.Checkpointer != nil {
		if err := s.cfg.Checkpointer.SaveTombstone(ts); err != nil {
			s.m.checkpointErrors.Inc()
		}
	}
	s.mu.Lock()
	s.insertTombstoneLocked(ts)
	// The terminal decision supersedes any live copy of the same episode.
	if ep, ok := s.episodes[ts.EpisodeID]; ok {
		delete(s.episodes, ts.EpisodeID)
		if ep.clientKey != "" {
			delete(s.byKey, ep.clientKey)
		}
	}
	s.mu.Unlock()
	s.m.tombstonesAdopted.Inc()
	return true
}

// adoptOne replays one foreign snapshot and registers it locally. False when
// the episode is already present (or its key is taken) or replay fails.
func (s *Server) adoptOne(st EpisodeState) bool {
	s.mu.Lock()
	_, haveID := s.episodes[st.EpisodeID]
	_, haveTomb := s.tombstones[st.EpisodeID]
	_, haveKey := s.byKey[st.ClientKey]
	_, haveTombKey := s.tombByKey[st.ClientKey]
	s.mu.Unlock()
	if haveID || haveTomb || haveKey || haveTombKey {
		return false
	}
	ep, err := s.replay(st)
	if err != nil {
		s.m.adoptErrors.Inc()
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check under the lock: a concurrent adoption or start may have won.
	if _, ok := s.episodes[st.EpisodeID]; ok {
		return false
	}
	if _, ok := s.byKey[st.ClientKey]; ok {
		return false
	}
	if _, ok := s.tombByKey[st.ClientKey]; ok {
		return false
	}
	s.episodes[st.EpisodeID] = ep
	s.byKey[st.ClientKey] = st.EpisodeID
	if sameIDRange(st.EpisodeID, s.cfg.EpisodeIDBase) && st.EpisodeID > s.nextID {
		s.nextID = st.EpisodeID
	}
	s.m.adopted.Inc()
	return true
}

// MarkMemberDown flips a member down in this node's view and eagerly adopts
// every episode of its that now hashes to this member. It returns how many
// episodes were adopted. Safe to call repeatedly (health probe + admin
// endpoint may race); adoption is idempotent.
func (s *Server) MarkMemberDown(id string) (int, error) {
	f := s.cfg.Fleet
	if f == nil {
		return 0, fmt.Errorf("server: not in fleet mode")
	}
	if id == f.Self {
		return 0, fmt.Errorf("server: refusing to mark self down")
	}
	if _, err := f.Membership.MarkDown(id); err != nil {
		return 0, err
	}
	n, err := s.adoptFromMember(id, func(string) bool { return true })
	if err != nil {
		s.m.adoptErrors.Inc()
	}
	return n, nil
}

// MarkMemberUp flips a member back up in this node's view. Episodes already
// adopted stay adopted (their source records were deleted); only keys that
// never moved flow back to the returning member.
//
// When the member being marked up is this node itself — the "dead member
// returns" path — the node first reconciles its in-memory state against its
// own checkpoint store. While it was presumed dead, survivors adopted its
// episodes and tombstones by copying them and deleting the source records;
// anything still in memory here whose record is gone now belongs to someone
// else, and serving it would mean two members owning one episode. Those
// entries are dropped; the count is returned.
func (s *Server) MarkMemberUp(id string) (int, error) {
	f := s.cfg.Fleet
	if f == nil {
		return 0, fmt.Errorf("server: not in fleet mode")
	}
	if _, err := f.Membership.MarkUp(id); err != nil {
		return 0, err
	}
	if id != f.Self {
		return 0, nil
	}
	return s.reconcileOwnership(), nil
}

// reconcileOwnership drops in-memory episodes and tombstones whose durable
// records are absent from this member's own checkpoint store — the signature
// of having been adopted away. On any store read error it drops nothing:
// serving a possibly-stale episode is recoverable (the adopter's copy wins
// the redirect), while dropping a live one is not.
func (s *Server) reconcileOwnership() int {
	if s.cfg.Checkpointer == nil {
		return 0
	}
	states, _, err := s.cfg.Checkpointer.LoadAll()
	if err != nil {
		return 0
	}
	tombs, _, err := s.cfg.Checkpointer.LoadTombstones()
	if err != nil {
		return 0
	}
	haveState := make(map[uint64]bool, len(states))
	for _, st := range states {
		haveState[st.EpisodeID] = true
	}
	haveTomb := make(map[uint64]bool, len(tombs))
	for _, ts := range tombs {
		haveTomb[ts.EpisodeID] = true
	}
	dropped := 0
	s.mu.Lock()
	for id, ep := range s.episodes {
		if haveState[id] {
			continue
		}
		delete(s.episodes, id)
		if ep.clientKey != "" {
			delete(s.byKey, ep.clientKey)
		}
		dropped++
	}
	for id, tb := range s.tombstones {
		if haveTomb[id] {
			continue
		}
		delete(s.tombstones, id)
		if tb.key != "" {
			delete(s.tombByKey, tb.key)
		}
		dropped++
	}
	s.mu.Unlock()
	s.m.staleDropped.Add(uint64(dropped))
	return dropped
}

// FleetView is returned by GET /v1/fleet.
type FleetView struct {
	Self    string               `json:"self"`
	Version uint64               `json:"version"`
	Members []fleet.MemberStatus `json:"members"`
}

// fleetAdminResponse is returned by the member up/down admin endpoints.
type fleetAdminResponse struct {
	Member  string `json:"member"`
	Down    bool   `json:"down"`
	Adopted int    `json:"adopted"`
	// Dropped counts stale in-memory episodes/tombstones discarded when a
	// returning member reconciles against its own store (self mark-up only).
	Dropped int `json:"dropped,omitempty"`
}

func (s *Server) handleFleetView(w http.ResponseWriter, _ *http.Request) {
	f := s.cfg.Fleet
	writeJSON(w, http.StatusOK, FleetView{
		Self:    f.Self,
		Version: f.Membership.Version(),
		Members: f.Membership.Snapshot(),
	})
}

func (s *Server) handleFleetDown(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	adopted, err := s.MarkMemberDown(id)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := s.cfg.Fleet.Membership.Member(id); !ok {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, fleetAdminResponse{Member: id, Down: true, Adopted: adopted})
}

func (s *Server) handleFleetUp(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	dropped, err := s.MarkMemberUp(id)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := s.cfg.Fleet.Membership.Member(id); !ok {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, fleetAdminResponse{Member: id, Down: false, Dropped: dropped})
}

// tombstoneReplicaPath is the fleet-internal endpoint terminal tombstones
// are replicated to (POST, body: one TombstoneState as JSON).
const tombstoneReplicaPath = "/v1/fleet/tombstones"

// tombstoneReplicateBackoff is the per-attempt delay schedule for tombstone
// replication. Short and bounded: replication is best-effort narrowing of
// the owner-death window, not a durability requirement — the owner's own
// store already holds the record, and adoption recovers it from there.
var tombstoneReplicateBackoff = []time.Duration{0, 50 * time.Millisecond, 200 * time.Millisecond}

// fleetHTTPClient is the shared client for fleet-internal calls. The tight
// timeout keeps a wedged peer from pinning replication goroutines.
var fleetHTTPClient = &http.Client{Timeout: 2 * time.Second}

// replicateTombstone asynchronously copies a terminal tombstone to the ring
// successor of its key. The successor is exactly the member that will own
// the key if this member dies — so when a still-retrying client fails over,
// its final GET lands on a node already holding the decision, no adoption
// round-trip needed. Fire-and-forget with bounded retries; Close aborts
// in-flight backoff sleeps.
func (s *Server) replicateTombstone(ts TombstoneState) {
	f := s.cfg.Fleet
	if f == nil || ts.ClientKey == "" {
		return
	}
	succ, ok := f.Membership.Successor(ts.ClientKey)
	if !ok || succ.ID == f.Self {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.repWG.Add(1)
	s.repInFlight.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.repWG.Done()
		defer s.repInFlight.Add(-1)
		t0 := s.spanStart()
		var events []obs.SpanEvent
		finish := func(errMsg string) {
			if t0.IsZero() {
				return
			}
			s.emitSpan(&obs.SpanRecord{TraceID: ts.ClientKey, Kind: obs.SpanServerReplicate,
				Episode: ts.EpisodeID, Target: succ.ID,
				Start: t0.UnixNano(), Duration: time.Since(t0).Nanoseconds(),
				Err: errMsg, Events: events})
		}
		for i, d := range tombstoneReplicateBackoff {
			if d > 0 {
				select {
				case <-time.After(d):
				case <-s.repStop:
					finish("aborted by shutdown")
					return
				}
			}
			err := s.postTombstone(succ, ts)
			if !t0.IsZero() {
				detail := fmt.Sprintf("attempt=%d ok", i+1)
				if err != nil {
					detail = fmt.Sprintf("attempt=%d %s", i+1, err)
				}
				events = append(events, obs.SpanEvent{Name: "attempt", At: time.Now().UnixNano(), Detail: detail})
			}
			if err == nil {
				s.m.tombstonesReplicated.Inc()
				finish("")
				return
			}
		}
		s.m.tombstoneRepErrors.Inc()
		finish("replication retries exhausted")
	}()
}

// postTombstone sends one tombstone to a peer's replica endpoint.
func (s *Server) postTombstone(to fleet.Member, ts TombstoneState) error {
	body, err := json.Marshal(ts)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, strings.TrimSuffix(to.Addr, "/")+tombstoneReplicaPath, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if ts.ClientKey != "" {
		// The replica write joins the episode's distributed trace: the
		// receiver's accept handler emits a span under the same id.
		req.Header.Set(HeaderTrace, ts.ClientKey)
	}
	resp, err := fleetHTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("tombstone replica to %q: status %d", to.ID, resp.StatusCode)
	}
	return nil
}

// handleTombstoneReplica accepts a tombstone replicated by a fleet peer.
// DecodeTombstoneState is the trust boundary: a malformed or non-terminal
// record is rejected before it can shadow a live episode.
func (s *Server) handleTombstoneReplica(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read tombstone body: %w", err))
		return
	}
	ts, err := DecodeTombstoneState(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.acceptTombstone(ts); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// acceptTombstone durably stores a replicated tombstone and caches it. The
// store write comes first: the point of the replica is surviving this
// member's own crash.
func (s *Server) acceptTombstone(ts TombstoneState) error {
	var saveErr error
	if s.cfg.Checkpointer != nil {
		if saveErr = s.cfg.Checkpointer.SaveTombstone(ts); saveErr != nil {
			s.m.checkpointErrors.Inc()
		}
	}
	s.mu.Lock()
	s.insertTombstoneLocked(ts)
	s.mu.Unlock()
	s.m.tombstonesReceived.Inc()
	return saveErr
}
