package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bpomdp/internal/pomdp"
)

// driveTerminal starts one episode (keyed when key != "") and walks it to a
// terminate decision with healthy-system observations, returning the episode
// id and the final decision body exactly as the server encoded it.
func driveTerminal(t *testing.T, hs *httptest.Server, model *pomdp.POMDP, key string) (uint64, DecisionResponse) {
	t.Helper()
	var body *strings.Reader
	if key != "" {
		body = strings.NewReader(fmt.Sprintf(`{"clientKey":%q}`, key))
	} else {
		body = strings.NewReader("")
	}
	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var started StartResponse
	if err := json.NewDecoder(resp.Body).Decode(&started); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := started.EpisodeID

	sc := pomdp.NewScratch(model)
	var final DecisionResponse
	for step := 0; step < 50; step++ {
		resp, err := http.Get(hs.URL + fmt.Sprintf("/v1/episodes/%d/decision", id))
		if err != nil {
			t.Fatal(err)
		}
		var d DecisionResponse
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if d.Terminate {
			final = d
			break
		}
		succs := model.Successors(sc, pomdp.PointBelief(model.NumStates(), 0), d.Action)
		ob := fmt.Sprintf(`{"action":%d,"observation":%d}`, d.Action, succs[0].Obs)
		or, err := http.Post(hs.URL+fmt.Sprintf("/v1/episodes/%d/observations", id), "application/json", strings.NewReader(ob))
		if err != nil {
			t.Fatal(err)
		}
		or.Body.Close()
	}
	if !final.Terminate {
		t.Fatal("episode did not terminate")
	}
	return id, final
}

func getDecision(t *testing.T, url string, id uint64) (int, DecisionResponse) {
	t.Helper()
	resp, err := http.Get(url + fmt.Sprintf("/v1/episodes/%d/decision", id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d DecisionResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, d
}

// TestTombstoneConfigValidation pins the TTL/retry-budget contract: a
// tombstone that can expire while a client is still inside its retry budget
// reopens the lost-final-decision window, so New refuses the config.
func TestTombstoneConfigValidation(t *testing.T) {
	prep := testPrepared(t)
	base := func() Config {
		return Config{Model: prep.Model, NewController: boundedFactory(prep)}
	}

	cfg := base()
	cfg.TombstoneTTL = 5 * time.Second
	cfg.ClientRetryBudget = 15 * time.Second
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Errorf("TTL below budget accepted (err=%v)", err)
	}

	// The fallback TTL (EpisodeTTL when TombstoneTTL is unset) is held to the
	// same floor.
	cfg = base()
	cfg.EpisodeTTL = 5 * time.Second
	cfg.ClientRetryBudget = 15 * time.Second
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Errorf("fallback TTL below budget accepted (err=%v)", err)
	}

	cfg = base()
	cfg.TombstoneTTL = -time.Second
	if _, err := New(cfg); err == nil {
		t.Error("negative tombstone TTL accepted")
	}
	cfg = base()
	cfg.ClientRetryBudget = -time.Second
	if _, err := New(cfg); err == nil {
		t.Error("negative retry budget accepted")
	}

	// TTL at or above the budget, or eviction disabled entirely, is fine.
	cfg = base()
	cfg.TombstoneTTL = 15 * time.Second
	cfg.ClientRetryBudget = 15 * time.Second
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("TTL == budget rejected: %v", err)
	}
	srv.Close()
	cfg = base()
	cfg.ClientRetryBudget = time.Hour // no TTL: tombstones never expire
	srv, err = New(cfg)
	if err != nil {
		t.Fatalf("budget without TTL rejected: %v", err)
	}
	srv.Close()
}

// TestTombstoneSurvivesRestart is the single-node half of the closed window:
// the terminal decision must outlive the process that computed it. A second
// server over the same store replays the decision byte-for-byte and still
// dedupes the client key to the original episode id.
func TestTombstoneSurvivesRestart(t *testing.T) {
	for _, kind := range storeKinds {
		t.Run(kind, func(t *testing.T) {
			prep := testPrepared(t)
			dir := t.TempDir()
			cp := openStore(t, kind, dir)
			srv, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep), Checkpointer: cp})
			if err != nil {
				t.Fatal(err)
			}
			hs := httptest.NewServer(srv)
			id, final := driveTerminal(t, hs, prep.Model, "ck-restart")
			hs.Close()
			srv.Close()

			cp2 := openStore(t, kind, dir)
			srv2, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep), Checkpointer: cp2})
			if err != nil {
				t.Fatal(err)
			}
			defer srv2.Close()
			hs2 := httptest.NewServer(srv2)
			defer hs2.Close()

			rep := srv2.Restored()
			if rep.Tombstones != 1 || rep.Resumed != 0 {
				t.Fatalf("restored %d tombstones, %d episodes; want 1, 0", rep.Tombstones, rep.Resumed)
			}
			status, replayed := getDecision(t, hs2.URL, id)
			if status != http.StatusOK || replayed != final {
				t.Errorf("restarted decision %+v (status %d), want %+v", replayed, status, final)
			}
			// Status reports the episode as closed, not unknown.
			resp, err := http.Get(hs2.URL + fmt.Sprintf("/v1/episodes/%d", id))
			if err != nil {
				t.Fatal(err)
			}
			var st StatusResponse
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || st.Open {
				t.Errorf("post-restart status %+v (code %d), want closed", st, resp.StatusCode)
			}
			// The idempotency key still routes to the finished episode rather
			// than starting a fresh one that would shadow the tombstone.
			resp, err = http.Post(hs2.URL+"/v1/episodes", "application/json",
				strings.NewReader(`{"clientKey":"ck-restart"}`))
			if err != nil {
				t.Fatal(err)
			}
			var again StartResponse
			if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || again.EpisodeID != id {
				t.Errorf("post-restart keyed start: status %d id %d, want 200 id %d", resp.StatusCode, again.EpisodeID, id)
			}
			if srv2.OpenEpisodes() != 0 {
				t.Errorf("open episodes after restart = %d", srv2.OpenEpisodes())
			}
			// The allocator must resume above the tombstoned id: a different
			// key minting a fresh episode at the same id would shadow the
			// terminal decision and collide in the store.
			resp, err = http.Post(hs2.URL+"/v1/episodes", "application/json",
				strings.NewReader(`{"clientKey":"ck-other"}`))
			if err != nil {
				t.Fatal(err)
			}
			var other StartResponse
			if err := json.NewDecoder(resp.Body).Decode(&other); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated || other.EpisodeID != id+1 {
				t.Errorf("fresh start after restart: status %d id %d, want 201 id %d", resp.StatusCode, other.EpisodeID, id+1)
			}
		})
	}
}

// noDeleteStore simulates a crash in the write-ahead window: the tombstone
// is persisted but the episode record's deletion never happens.
type noDeleteStore struct{ Checkpointer }

func (noDeleteStore) Delete(uint64) error { return nil }

// TestTombstoneWriteAheadRestore covers the crash between SaveTombstone and
// Delete: the store then holds both the live episode record and its
// tombstone. Restore must treat the tombstone as authoritative — the episode
// is over — and clean up the stale record.
func TestTombstoneWriteAheadRestore(t *testing.T) {
	for _, kind := range storeKinds {
		t.Run(kind, func(t *testing.T) {
			prep := testPrepared(t)
			dir := t.TempDir()
			cp := openStore(t, kind, dir)
			srv, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep),
				Checkpointer: noDeleteStore{cp}})
			if err != nil {
				t.Fatal(err)
			}
			hs := httptest.NewServer(srv)
			id, final := driveTerminal(t, hs, prep.Model, "ck-wal")
			hs.Close()
			srv.Close()

			// The crash left both records behind.
			states, _, err := cp.LoadAll()
			if err != nil || len(states) != 1 {
				t.Fatalf("pre-restore store: %d episode records (err=%v), want 1", len(states), err)
			}
			tombs, _, err := cp.LoadTombstones()
			if err != nil || len(tombs) != 1 {
				t.Fatalf("pre-restore store: %d tombstones (err=%v), want 1", len(tombs), err)
			}

			cp2 := openStore(t, kind, dir)
			srv2, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep), Checkpointer: cp2})
			if err != nil {
				t.Fatal(err)
			}
			defer srv2.Close()
			hs2 := httptest.NewServer(srv2)
			defer hs2.Close()

			rep := srv2.Restored()
			if rep.Tombstones != 1 || rep.Resumed != 0 {
				t.Fatalf("restored %d tombstones, %d episodes; want tombstone to win (1, 0)", rep.Tombstones, rep.Resumed)
			}
			if srv2.OpenEpisodes() != 0 {
				t.Errorf("stale episode resurrected: %d open", srv2.OpenEpisodes())
			}
			status, replayed := getDecision(t, hs2.URL, id)
			if status != http.StatusOK || replayed != final {
				t.Errorf("decision after write-ahead recovery %+v (status %d), want %+v", replayed, status, final)
			}
			// And the stale record was deleted, not just skipped.
			if states, _, err := cp2.LoadAll(); err != nil || len(states) != 0 {
				t.Errorf("stale episode record survives restore: %+v (err=%v)", states, err)
			}
		})
	}
}

// TestTombstoneTTLEviction drives the store-backed eviction path: once the
// TTL passes, Sweep removes the tombstone from the cache AND the durable
// store, and the decision is genuinely gone.
func TestTombstoneTTLEviction(t *testing.T) {
	prep := testPrepared(t)
	dir := t.TempDir()
	cp := openStore(t, "log", dir)
	var mu sync.Mutex
	now := time.Now()
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	srv, err := New(Config{
		Model:             prep.Model,
		NewController:     boundedFactory(prep),
		Checkpointer:      cp,
		TombstoneTTL:      time.Minute,
		ClientRetryBudget: 30 * time.Second,
		now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	id, final := driveTerminal(t, hs, prep.Model, "ck-ttl")

	// Inside the TTL the tombstone holds, in memory and on disk.
	if n := srv.Sweep(); n != 0 {
		t.Fatalf("Sweep evicted %d episodes on a fresh tombstone", n)
	}
	status, replayed := getDecision(t, hs.URL, id)
	if status != http.StatusOK || replayed != final {
		t.Fatalf("fresh tombstone: status %d decision %+v", status, replayed)
	}
	if tombs, _, err := cp.LoadTombstones(); err != nil || len(tombs) != 1 {
		t.Fatalf("store tombstones before TTL: %d (err=%v), want 1", len(tombs), err)
	}

	advance(2 * time.Minute)
	srv.Sweep()
	if status, _ := getDecision(t, hs.URL, id); status != http.StatusNotFound {
		t.Errorf("expired tombstone still served: status %d", status)
	}
	if tombs, _, err := cp.LoadTombstones(); err != nil || len(tombs) != 0 {
		t.Errorf("store still holds %d tombstones after TTL sweep (err=%v)", len(tombs), err)
	}
	if !strings.Contains(metricsBody(t, hs.URL), "recoverd_tombstones_evicted_total 1") {
		t.Error("tombstones_evicted_total not incremented")
	}
	// The key is free again: a re-start mints a fresh episode (201).
	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json",
		strings.NewReader(`{"clientKey":"ck-ttl"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("start after eviction: status %d, want 201", resp.StatusCode)
	}
}
