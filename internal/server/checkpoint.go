package server

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Step is one applied (action, observation) pair of an episode's history.
type Step struct {
	Action      int `json:"action"`
	Observation int `json:"observation"`
}

// EpisodeState is the serializable snapshot of one open episode: everything
// a restarted daemon needs to rebuild the episode's controller by replaying
// its history through a fresh controller from the configured factory.
type EpisodeState struct {
	// EpisodeID is the server-assigned episode id.
	EpisodeID uint64 `json:"episodeId"`
	// Controller is the controller's Name() at snapshot time (informational;
	// restore always uses the configured factory).
	Controller string `json:"controller"`
	// ClientKey is the client-generated idempotency key the episode was
	// started with, if any, so duplicate start requests keep deduplicating
	// across a restart. In fleet mode it doubles as the episode's routing
	// key: survivors claim a dead member's episodes by hashing this key.
	ClientKey string `json:"clientKey,omitempty"`
	// Steps is the number of observations applied so far.
	Steps int `json:"steps"`
	// Belief is the controller's belief after the recorded history; restore
	// verifies the replayed belief against it to detect model drift between
	// the checkpoint and the restarted daemon.
	Belief []float64 `json:"belief"`
	// History is the full (action, observation) sequence applied since Reset.
	History []Step `json:"history"`
}

// DecodeEpisodeState decodes and validates one stored snapshot. It is the
// trust boundary for everything read back from a checkpoint store: a
// snapshot that decodes but violates the episode invariants (id zero, step
// count disagreeing with the history, non-finite or negative belief mass,
// negative action/observation indices) is rejected here rather than fed to
// a controller replay.
func DecodeEpisodeState(data []byte) (EpisodeState, error) {
	var st EpisodeState
	if err := json.Unmarshal(data, &st); err != nil {
		return EpisodeState{}, err
	}
	if err := st.validate(); err != nil {
		return EpisodeState{}, err
	}
	return st, nil
}

func (st *EpisodeState) validate() error {
	if st.EpisodeID == 0 {
		return fmt.Errorf("episode id 0")
	}
	if st.Steps < 0 {
		return fmt.Errorf("negative step count %d", st.Steps)
	}
	if st.Steps != len(st.History) {
		return fmt.Errorf("step count %d disagrees with history length %d", st.Steps, len(st.History))
	}
	for i, p := range st.Belief {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return fmt.Errorf("belief[%d] = %v", i, p)
		}
	}
	for i, s := range st.History {
		if s.Action < 0 || s.Observation < 0 {
			return fmt.Errorf("history[%d] = (%d, %d)", i, s.Action, s.Observation)
		}
	}
	return nil
}

// TombstoneState is the durable record of a terminated episode's final
// decision: everything needed to replay the terminal response to a client
// that lost it in transit, even after the owning process (or the whole
// member) is gone. It is written to the checkpoint store *before* the
// episode's own record is deleted, and replicated to the episode key's ring
// successor, so no single crash window can lose an already-earned terminal
// decision.
type TombstoneState struct {
	// EpisodeID is the terminated episode's id.
	EpisodeID uint64 `json:"episodeId"`
	// ClientKey is the episode's routing/idempotency key, if any; a retried
	// start with this key must return EpisodeID, not a fresh episode.
	ClientKey string `json:"clientKey,omitempty"`
	// Steps is the episode's observation count at termination (the client's
	// dedupe cursor when it retries the final exchange).
	Steps int `json:"steps"`
	// Final is the terminal decision, replayed byte-identically.
	Final DecisionResponse `json:"final"`
	// TerminatedAtUnixNano is the owner's clock at termination; TTL eviction
	// counts from here so retention survives restarts and adoption.
	TerminatedAtUnixNano int64 `json:"terminatedAtUnixNano"`
}

// DecodeTombstoneState decodes and validates one stored tombstone — the
// trust boundary for tombstones read back from a store or received over the
// fleet replication endpoint.
func DecodeTombstoneState(data []byte) (TombstoneState, error) {
	var ts TombstoneState
	if err := json.Unmarshal(data, &ts); err != nil {
		return TombstoneState{}, err
	}
	if err := ts.validate(); err != nil {
		return TombstoneState{}, err
	}
	return ts, nil
}

func (ts *TombstoneState) validate() error {
	if ts.EpisodeID == 0 {
		return fmt.Errorf("tombstone episode id 0")
	}
	if ts.Steps < 0 {
		return fmt.Errorf("tombstone negative step count %d", ts.Steps)
	}
	if !ts.Final.Terminate {
		return fmt.Errorf("tombstone for a non-terminal decision")
	}
	if math.IsNaN(ts.Final.Value) || math.IsInf(ts.Final.Value, 0) {
		return fmt.Errorf("tombstone value %v", ts.Final.Value)
	}
	if ts.TerminatedAtUnixNano < 0 {
		return fmt.Errorf("tombstone terminated-at %d", ts.TerminatedAtUnixNano)
	}
	return nil
}

// CorruptCheckpoint describes one stored snapshot that could not be decoded.
// Stores quarantine such entries (a directory store renames the file, a log
// store skips the record) so one bad snapshot never blocks the rest and is
// never silently rewritten.
type CorruptCheckpoint struct {
	// Name identifies the bad entry in store terms (file name, record offset).
	Name string
	// EpisodeID is the episode the entry claimed to belong to, 0 when even
	// that could not be determined.
	EpisodeID uint64
	// Err is the decode or validation failure.
	Err error
}

// Checkpointer persists episode snapshots across daemon restarts. Save is
// called after every state-changing request (write-ahead with respect to the
// response), Delete when an episode terminates or is abandoned, and LoadAll
// once at startup. LoadAll returns the good snapshots sorted by episode id
// alongside any corrupt entries it quarantined; the error is reserved for
// store-level failures (unreadable directory, unopenable log), never for
// individual bad snapshots.
//
// Tombstones live in a separate namespace from episode snapshots:
// SaveTombstone is called on termination before Delete (write-ahead, so a
// crash between the two leaves the final decision recoverable),
// DeleteTombstone when the tombstone's TTL expires, and LoadTombstones at
// startup, on adoption, and on rare cache misses. Deleting an episode never
// touches its tombstone and vice versa.
//
// Implementations must tolerate concurrent Save/Delete calls for *different*
// episodes; calls for the same episode are serialized by the server.
type Checkpointer interface {
	Save(st EpisodeState) error
	Delete(id uint64) error
	LoadAll() ([]EpisodeState, []CorruptCheckpoint, error)
	SaveTombstone(ts TombstoneState) error
	DeleteTombstone(id uint64) error
	LoadTombstones() ([]TombstoneState, []CorruptCheckpoint, error)
}

// OpenCheckpointStore opens a checkpoint store of the named kind over dir:
// "dir" (one atomically-renamed JSON file per episode) or "log" (a single
// fsynced append-only log with CRC-framed records and compaction).
func OpenCheckpointStore(kind, dir string) (Checkpointer, error) {
	switch kind {
	case "", "dir":
		return NewDirCheckpointer(dir)
	case "log":
		return NewLogCheckpointer(dir)
	default:
		return nil, fmt.Errorf("server: unknown checkpoint store %q (want dir or log)", kind)
	}
}

// DirCheckpointer stores one JSON file per episode in a directory
// (episode-<id>.json), plus one sibling file per terminal tombstone
// (tombstone-<id>.json), each written atomically via a temp file + rename so
// a crash mid-write never corrupts an existing checkpoint.
type DirCheckpointer struct {
	dir string
}

var _ Checkpointer = (*DirCheckpointer)(nil)

// NewDirCheckpointer creates dir if needed and returns a checkpointer over
// it.
func NewDirCheckpointer(dir string) (*DirCheckpointer, error) {
	if dir == "" {
		return nil, fmt.Errorf("server: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: checkpoint dir: %w", err)
	}
	return &DirCheckpointer{dir: dir}, nil
}

// Dir returns the checkpoint directory.
func (c *DirCheckpointer) Dir() string { return c.dir }

func (c *DirCheckpointer) path(id uint64) string {
	return filepath.Join(c.dir, fmt.Sprintf("episode-%d.json", id))
}

func (c *DirCheckpointer) tombPath(id uint64) string {
	return filepath.Join(c.dir, fmt.Sprintf("tombstone-%d.json", id))
}

// writeAtomic writes data to dst via a temp file + rename.
func (c *DirCheckpointer) writeAtomic(dst string, tmpPattern string, data []byte) error {
	tmp, err := os.CreateTemp(c.dir, tmpPattern)
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, dst)
	}
	if werr != nil {
		_ = os.Remove(tmpName)
		return werr
	}
	return nil
}

// Save implements Checkpointer.
func (c *DirCheckpointer) Save(st EpisodeState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("server: encode checkpoint %d: %w", st.EpisodeID, err)
	}
	if err := c.writeAtomic(c.path(st.EpisodeID), fmt.Sprintf(".episode-%d-*.tmp", st.EpisodeID), data); err != nil {
		return fmt.Errorf("server: checkpoint %d: %w", st.EpisodeID, err)
	}
	return nil
}

// Delete implements Checkpointer. Deleting a checkpoint that does not exist
// is not an error.
func (c *DirCheckpointer) Delete(id uint64) error {
	if err := os.Remove(c.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("server: delete checkpoint %d: %w", id, err)
	}
	return nil
}

// LoadAll implements Checkpointer, returning snapshots sorted by episode id.
// A file that cannot be decoded is quarantined: renamed to
// episode-<id>.json.corrupt (so a later Save of the same episode can never
// silently overwrite the evidence, and a later LoadAll is not blocked by
// it) and reported as a CorruptCheckpoint.
func (c *DirCheckpointer) LoadAll() ([]EpisodeState, []CorruptCheckpoint, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("server: read checkpoint dir: %w", err)
	}
	var (
		out     []EpisodeState
		corrupt []CorruptCheckpoint
	)
	quarantine := func(name string, id uint64, err error) {
		if rerr := os.Rename(filepath.Join(c.dir, name), filepath.Join(c.dir, name+".corrupt")); rerr != nil {
			err = fmt.Errorf("%w (quarantine failed: %v)", err, rerr)
		}
		corrupt = append(corrupt, CorruptCheckpoint{Name: name, EpisodeID: id, Err: err})
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "episode-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		idText := strings.TrimSuffix(strings.TrimPrefix(name, "episode-"), ".json")
		id, err := strconv.ParseUint(idText, 10, 64)
		if err != nil {
			quarantine(name, 0, fmt.Errorf("bad id in file name"))
			continue
		}
		data, err := os.ReadFile(filepath.Join(c.dir, name))
		if err != nil {
			// Unreadable, not undecodable: leave the file alone and report it.
			corrupt = append(corrupt, CorruptCheckpoint{Name: name, EpisodeID: id, Err: err})
			continue
		}
		st, err := DecodeEpisodeState(data)
		if err != nil {
			quarantine(name, id, err)
			continue
		}
		if st.EpisodeID != id {
			quarantine(name, id, fmt.Errorf("id %d inside file", st.EpisodeID))
			continue
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EpisodeID < out[j].EpisodeID })
	return out, corrupt, nil
}

// SaveTombstone implements Checkpointer: tombstone-<id>.json alongside the
// episode files, written atomically.
func (c *DirCheckpointer) SaveTombstone(ts TombstoneState) error {
	if err := ts.validate(); err != nil {
		return fmt.Errorf("server: refusing to store invalid tombstone: %w", err)
	}
	data, err := json.Marshal(ts)
	if err != nil {
		return fmt.Errorf("server: encode tombstone %d: %w", ts.EpisodeID, err)
	}
	if err := c.writeAtomic(c.tombPath(ts.EpisodeID), fmt.Sprintf(".tombstone-%d-*.tmp", ts.EpisodeID), data); err != nil {
		return fmt.Errorf("server: tombstone %d: %w", ts.EpisodeID, err)
	}
	return nil
}

// DeleteTombstone implements Checkpointer. Deleting a tombstone that does
// not exist is not an error.
func (c *DirCheckpointer) DeleteTombstone(id uint64) error {
	if err := os.Remove(c.tombPath(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("server: delete tombstone %d: %w", id, err)
	}
	return nil
}

// LoadTombstones implements Checkpointer, returning stored tombstones sorted
// by episode id. Undecodable files are quarantined exactly like episode
// checkpoints.
func (c *DirCheckpointer) LoadTombstones() ([]TombstoneState, []CorruptCheckpoint, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("server: read checkpoint dir: %w", err)
	}
	var (
		out     []TombstoneState
		corrupt []CorruptCheckpoint
	)
	quarantine := func(name string, id uint64, err error) {
		if rerr := os.Rename(filepath.Join(c.dir, name), filepath.Join(c.dir, name+".corrupt")); rerr != nil {
			err = fmt.Errorf("%w (quarantine failed: %v)", err, rerr)
		}
		corrupt = append(corrupt, CorruptCheckpoint{Name: name, EpisodeID: id, Err: err})
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "tombstone-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		idText := strings.TrimSuffix(strings.TrimPrefix(name, "tombstone-"), ".json")
		id, err := strconv.ParseUint(idText, 10, 64)
		if err != nil {
			quarantine(name, 0, fmt.Errorf("bad id in file name"))
			continue
		}
		data, err := os.ReadFile(filepath.Join(c.dir, name))
		if err != nil {
			corrupt = append(corrupt, CorruptCheckpoint{Name: name, EpisodeID: id, Err: err})
			continue
		}
		ts, err := DecodeTombstoneState(data)
		if err != nil {
			quarantine(name, id, err)
			continue
		}
		if ts.EpisodeID != id {
			quarantine(name, id, fmt.Errorf("id %d inside file", ts.EpisodeID))
			continue
		}
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EpisodeID < out[j].EpisodeID })
	return out, corrupt, nil
}
