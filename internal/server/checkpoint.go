package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Step is one applied (action, observation) pair of an episode's history.
type Step struct {
	Action      int `json:"action"`
	Observation int `json:"observation"`
}

// EpisodeState is the serializable snapshot of one open episode: everything
// a restarted daemon needs to rebuild the episode's controller by replaying
// its history through a fresh controller from the configured factory.
type EpisodeState struct {
	// EpisodeID is the server-assigned episode id.
	EpisodeID uint64 `json:"episodeId"`
	// Controller is the controller's Name() at snapshot time (informational;
	// restore always uses the configured factory).
	Controller string `json:"controller"`
	// ClientKey is the client-generated idempotency key the episode was
	// started with, if any, so duplicate start requests keep deduplicating
	// across a restart.
	ClientKey string `json:"clientKey,omitempty"`
	// Steps is the number of observations applied so far.
	Steps int `json:"steps"`
	// Belief is the controller's belief after the recorded history; restore
	// verifies the replayed belief against it to detect model drift between
	// the checkpoint and the restarted daemon.
	Belief []float64 `json:"belief"`
	// History is the full (action, observation) sequence applied since Reset.
	History []Step `json:"history"`
}

// Checkpointer persists episode snapshots across daemon restarts. Save is
// called after every state-changing request (write-ahead with respect to the
// response), Delete when an episode terminates or is abandoned, and LoadAll
// once at startup.
//
// Implementations must tolerate concurrent Save/Delete calls for *different*
// episodes; calls for the same episode are serialized by the server.
type Checkpointer interface {
	Save(st EpisodeState) error
	Delete(id uint64) error
	LoadAll() ([]EpisodeState, error)
}

// DirCheckpointer stores one JSON file per episode in a directory
// (episode-<id>.json), written atomically via a temp file + rename so a
// crash mid-write never corrupts an existing checkpoint.
type DirCheckpointer struct {
	dir string
}

var _ Checkpointer = (*DirCheckpointer)(nil)

// NewDirCheckpointer creates dir if needed and returns a checkpointer over
// it.
func NewDirCheckpointer(dir string) (*DirCheckpointer, error) {
	if dir == "" {
		return nil, fmt.Errorf("server: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: checkpoint dir: %w", err)
	}
	return &DirCheckpointer{dir: dir}, nil
}

// Dir returns the checkpoint directory.
func (c *DirCheckpointer) Dir() string { return c.dir }

func (c *DirCheckpointer) path(id uint64) string {
	return filepath.Join(c.dir, fmt.Sprintf("episode-%d.json", id))
}

// Save implements Checkpointer.
func (c *DirCheckpointer) Save(st EpisodeState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("server: encode checkpoint %d: %w", st.EpisodeID, err)
	}
	tmp, err := os.CreateTemp(c.dir, fmt.Sprintf(".episode-%d-*.tmp", st.EpisodeID))
	if err != nil {
		return fmt.Errorf("server: checkpoint %d: %w", st.EpisodeID, err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, c.path(st.EpisodeID))
	}
	if werr != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("server: checkpoint %d: %w", st.EpisodeID, werr)
	}
	return nil
}

// Delete implements Checkpointer. Deleting a checkpoint that does not exist
// is not an error.
func (c *DirCheckpointer) Delete(id uint64) error {
	if err := os.Remove(c.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("server: delete checkpoint %d: %w", id, err)
	}
	return nil
}

// LoadAll implements Checkpointer, returning snapshots sorted by episode id.
// Corrupt files do not abort the load: the good snapshots are returned
// alongside an aggregate error describing the bad ones.
func (c *DirCheckpointer) LoadAll() ([]EpisodeState, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, fmt.Errorf("server: read checkpoint dir: %w", err)
	}
	var (
		out  []EpisodeState
		errs []string
	)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "episode-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		idText := strings.TrimSuffix(strings.TrimPrefix(name, "episode-"), ".json")
		id, err := strconv.ParseUint(idText, 10, 64)
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: bad id", name))
			continue
		}
		data, err := os.ReadFile(filepath.Join(c.dir, name))
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		var st EpisodeState
		if err := json.Unmarshal(data, &st); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		if st.EpisodeID != id {
			errs = append(errs, fmt.Sprintf("%s: id %d inside file", name, st.EpisodeID))
			continue
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EpisodeID < out[j].EpisodeID })
	if len(errs) > 0 {
		return out, fmt.Errorf("server: %d corrupt checkpoint(s): %s", len(errs), strings.Join(errs, "; "))
	}
	return out, nil
}
