package server

import (
	"net/http"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/obs"
)

// serverMetrics holds the server's registry-backed instruments. Every series
// the hand-rolled /metrics used to expose keeps its exact name; the registry
// adds HELP/TYPE metadata and per-handler request-latency histograms.
type serverMetrics struct {
	reg *obs.Registry

	started          *obs.Counter
	terminated       *obs.Counter
	evicted          *obs.Counter
	resumed          *obs.Counter
	decisions        *obs.Counter
	observed         *obs.Counter
	dedupedStarts    *obs.Counter
	dedupedObs       *obs.Counter
	batchRequests    *obs.Counter
	batchDecisions   *obs.Counter
	panics           *obs.Counter
	checkpointErrors *obs.Counter
	redirects        *obs.Counter
	adopted          *obs.Counter
	adoptErrors      *obs.Counter

	tombstonesReplicated *obs.Counter
	tombstoneRepErrors   *obs.Counter
	tombstonesReceived   *obs.Counter
	tombstonesAdopted    *obs.Counter
	tombstonesEvicted    *obs.Counter
	staleDropped         *obs.Counter

	latStart   *obs.Histogram
	latObserve *obs.Histogram
	latDecide  *obs.Histogram
	latBatch   *obs.Histogram

	// latDecideFSC/latDecideTree measure the controller Decide call alone
	// (no JSON, no checkpointing), labeled by the serving tier — the
	// first-class form of the fsc-vs-tree split the hit counters only count.
	latDecideFSC  *obs.Histogram
	latDecideTree *obs.Histogram
}

// newServerMetrics registers the server's instruments on reg. Registration
// is idempotent per (name, labels), so a registry shared across components
// is fine.
func newServerMetrics(reg *obs.Registry) *serverMetrics {
	lat := func(handler string) *obs.Histogram {
		return reg.Histogram("recoverd_request_duration_seconds",
			"Request latency in seconds by handler.",
			obs.DefLatencyBuckets, obs.Label{Key: "handler", Value: handler})
	}
	return &serverMetrics{
		reg:              reg,
		started:          reg.Counter("recoverd_episodes_started_total", "Episodes started."),
		terminated:       reg.Counter("recoverd_episodes_terminated_total", "Episodes ended by a terminate decision."),
		evicted:          reg.Counter("recoverd_episodes_evicted_total", "Idle episodes evicted by the TTL janitor."),
		resumed:          reg.Counter("recoverd_episodes_resumed_total", "Episodes resumed from checkpoints at startup."),
		decisions:        reg.Counter("recoverd_decisions_total", "Decisions computed (cached retries excluded)."),
		observed:         reg.Counter("recoverd_observations_total", "Observations applied."),
		dedupedStarts:    reg.Counter("recoverd_deduped_starts_total", "Duplicate episode starts answered from the idempotency key."),
		dedupedObs:       reg.Counter("recoverd_deduped_observations_total", "Retransmitted observations acknowledged without reapplying."),
		batchRequests:    reg.Counter("recoverd_batch_decide_requests_total", "Batch decide requests served."),
		batchDecisions:   reg.Counter("recoverd_batch_decisions_total", "Decisions served by the batch endpoint."),
		panics:           reg.Counter("recoverd_panics_total", "Handler panics converted to 500 responses."),
		checkpointErrors: reg.Counter("recoverd_checkpoint_errors_total", "Checkpoint save/delete failures."),
		redirects:        reg.Counter("recoverd_fleet_redirects_total", "Requests redirected to the owning fleet member."),
		adopted:          reg.Counter("recoverd_fleet_adopted_total", "Episodes adopted from down fleet members."),
		adoptErrors:      reg.Counter("recoverd_fleet_adopt_errors_total", "Episode adoption failures (store or replay)."),

		tombstonesReplicated: reg.Counter("recoverd_tombstones_replicated_total", "Terminal tombstones replicated to the ring successor."),
		tombstoneRepErrors:   reg.Counter("recoverd_tombstone_replication_errors_total", "Tombstone replications that exhausted their retries."),
		tombstonesReceived:   reg.Counter("recoverd_tombstones_received_total", "Replicated tombstones accepted from fleet peers."),
		tombstonesAdopted:    reg.Counter("recoverd_tombstones_adopted_total", "Tombstones adopted from down fleet members' stores."),
		tombstonesEvicted:    reg.Counter("recoverd_tombstones_evicted_total", "Tombstones evicted by the TTL janitor."),
		staleDropped:         reg.Counter("recoverd_fleet_stale_dropped_total", "Stale episodes/tombstones dropped on self mark-up reconcile."),
		latStart:             lat("start"),
		latObserve:           lat("observe"),
		latDecide:            lat("decide"),
		latBatch:             lat("batch"),
		latDecideFSC: reg.Histogram("recoverd_decision_duration_seconds",
			"Controller decision latency in seconds by serving tier.",
			obs.DefLatencyBuckets, obs.Label{Key: "tier", Value: controller.TierFSC}),
		latDecideTree: reg.Histogram("recoverd_decision_duration_seconds",
			"Controller decision latency in seconds by serving tier.",
			obs.DefLatencyBuckets, obs.Label{Key: "tier", Value: controller.TierTree}),
	}
}

// decideLatency picks the tier-labeled decision histogram.
func (m *serverMetrics) decideLatency(tier string) *obs.Histogram {
	if tier == controller.TierFSC {
		return m.latDecideFSC
	}
	return m.latDecideTree
}

// timed wraps a handler with a latency observation. It uses the real clock
// (not the test-injectable cfg.now), since latency is a measurement, not
// episode bookkeeping.
func timed(h *obs.Histogram, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		fn(w, r)
		h.Observe(time.Since(t0).Seconds())
	}
}
