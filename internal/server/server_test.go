package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// newTestServer builds a server over the two-server model with a
// bootstrapped bounded controller per episode.
func newTestServer(t *testing.T) (*Server, *core.Prepared) {
	t.Helper()
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rm := &core.RecoveryModel{
		POMDP:           ts.Model,
		NullStates:      ts.NullStates,
		RateRewards:     ts.RateRewards,
		Durations:       []float64{1, 1, 0},
		MonitorAction:   ts.ActionObserve,
		MonitorDuration: 0.1,
	}
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 1, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Model: prep.Model,
		NewController: func() (controller.Controller, pomdp.Belief, error) {
			ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1})
			if err != nil {
				return nil, nil, err
			}
			initial, err := prep.InitialBelief()
			return ctrl, initial, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, prep
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil model accepted")
	}
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Model: ts.Model}); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := New(Config{Model: ts.Model, NewController: func() (controller.Controller, pomdp.Belief, error) {
		return nil, nil, nil
	}, MaxEpisodes: -1}); err == nil {
		t.Error("negative cap accepted")
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv, _ := newTestServer(t)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	if !strings.Contains(string(buf[:n]), "recoverd_episodes_started_total") {
		t.Errorf("metrics missing counters:\n%s", buf[:n])
	}
}

func TestEpisodeNotFoundAndBadID(t *testing.T) {
	srv, _ := newTestServer(t)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/v1/episodes/999/decision")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing episode status %d", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/v1/episodes/bogus/decision")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status %d", resp.StatusCode)
	}
}

func TestEpisodeCap(t *testing.T) {
	srv, prep := newTestServer(t)
	srv.cfg.MaxEpisodes = 1
	_ = prep
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first episode status %d", resp.StatusCode)
	}
	resp, err = http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-cap status %d", resp.StatusCode)
	}
	if srv.OpenEpisodes() != 1 {
		t.Errorf("open episodes = %d", srv.OpenEpisodes())
	}
}

func TestObservationValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/episodes/1/observations", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{not json`); code != http.StatusBadRequest {
		t.Errorf("malformed body status %d", code)
	}
	if code := post(`{"actionName":"launch-missiles","observationName":"obs-clear"}`); code != http.StatusBadRequest {
		t.Errorf("unknown action status %d", code)
	}
	if code := post(`{"actionName":"observe","observationName":"made-up"}`); code != http.StatusBadRequest {
		t.Errorf("unknown observation status %d", code)
	}
	if code := post(`{"actionName":"observe","observationName":"obs-a-failed"}`); code != http.StatusNoContent {
		t.Errorf("valid observation status %d", code)
	}
}

func TestDecisionDrivenEpisodeLifecycle(t *testing.T) {
	srv, prep := newTestServer(t)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var start StartResponse
	if err := json.NewDecoder(resp.Body).Decode(&start); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Drive the episode to termination: repeatedly fetch the decision and
	// post the observation the model says the null state would emit after
	// that action (the system is healthy, so recovery converges quickly).
	model := prep.Model
	sc := pomdp.NewScratch(model)
	nullState := 0
	for step := 0; step < 50; step++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/episodes/%d/decision", hs.URL, start.EpisodeID))
		if err != nil {
			t.Fatal(err)
		}
		var d DecisionResponse
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if d.Terminate {
			// Terminated episodes are garbage-collected server-side.
			if srv.OpenEpisodes() != 0 {
				t.Errorf("open episodes after terminate = %d", srv.OpenEpisodes())
			}
			return
		}
		// Healthy system: next state stays null; sample its most likely
		// observation for the executed action.
		succs := model.Successors(sc, pomdp.PointBelief(model.NumStates(), nullState), d.Action)
		if len(succs) == 0 {
			t.Fatal("no successors")
		}
		body := fmt.Sprintf(`{"action":%d,"observation":%d}`, d.Action, succs[0].Obs)
		or, err := http.Post(fmt.Sprintf("%s/v1/episodes/%d/observations", hs.URL, start.EpisodeID),
			"application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		or.Body.Close()
		if or.StatusCode != http.StatusNoContent {
			t.Fatalf("observation status %d at step %d", or.StatusCode, step)
		}
	}
	t.Fatal("episode did not terminate in 50 steps on a healthy system")
}

func TestDeleteEpisodeAndBelief(t *testing.T) {
	srv, _ := newTestServer(t)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(hs.URL + "/v1/episodes/1/belief")
	if err != nil {
		t.Fatal(err)
	}
	var br BeliefResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(br.Belief) == 0 {
		t.Error("empty belief")
	}

	req, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/episodes/1", nil)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusNoContent {
		t.Errorf("delete status %d", dr.StatusCode)
	}
	if srv.OpenEpisodes() != 0 {
		t.Errorf("open episodes after delete = %d", srv.OpenEpisodes())
	}
}

func TestModelEndpoint(t *testing.T) {
	srv, prep := newTestServer(t)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	var mr ModelResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(mr.States) != prep.Model.NumStates() ||
		len(mr.Actions) != prep.Model.NumActions() ||
		len(mr.Observations) != prep.Model.NumObservations() {
		t.Errorf("model summary %d/%d/%d", len(mr.States), len(mr.Actions), len(mr.Observations))
	}
}

func TestFactoryFailureSurfaces(t *testing.T) {
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Model: ts.Model,
		NewController: func() (controller.Controller, pomdp.Belief, error) {
			return nil, nil, errors.New("factory exploded")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("factory failure status %d", resp.StatusCode)
	}
	if srv.OpenEpisodes() != 0 {
		t.Errorf("failed episode left open: %d", srv.OpenEpisodes())
	}
}

// TestMetricsConcurrentWithTraffic scrapes /metrics and calls Restored while
// episodes are being driven concurrently — the regression test (run under
// -race) for the unsynchronized s.restored read /metrics used to perform.
func TestMetricsConcurrentWithTraffic(t *testing.T) {
	srv, _ := newTestServer(t)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if g%2 == 0 {
					resp, err := http.Get(hs.URL + "/metrics")
					if err != nil {
						t.Error(err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					_ = srv.Restored()
					continue
				}
				body := strings.NewReader(fmt.Sprintf(`{"client_key":"g%d-i%d"}`, g, i))
				resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", body)
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
}
