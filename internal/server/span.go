package server

import (
	"net/http"
	"strconv"
	"time"

	"bpomdp/internal/obs"
)

// HeaderTrace carries the episode's trace id on every traced request. The
// trace id is the episode's clientKey — the same string that routes the
// episode on the fleet ring — so spans emitted by the client, the owner,
// a redirecting non-owner, an adopting survivor, and a tombstone replica
// all stitch into one timeline without any id-translation table.
const HeaderTrace = "X-Bpomdp-Trace"

// HeaderTier annotates decision responses with the serving tier ("fsc" or
// "tree"). Set only when span tracing is enabled; the spanned wrapper lifts
// it onto the decide span.
const HeaderTier = "X-Bpomdp-Tier"

// spanResponseWriter captures the status a handler writes so the span
// wrapper can record it (and detect 307 redirect hops).
type spanResponseWriter struct {
	http.ResponseWriter
	status int
}

func (w *spanResponseWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *spanResponseWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// spanned wraps an episode-scoped handler with span emission. The zero-cost
// contract: with spans disabled the handler is returned unchanged — not
// even a nil check rides the hot path — and with spans enabled, untraced
// requests (no X-Bpomdp-Trace header) pay one header lookup.
//
// The wrapper reads response headers after the handler ran: a 307 carries
// the owner in X-Bpomdp-Owner (the redirect hop's Target), and decide
// handlers stamp the serving tier into X-Bpomdp-Tier.
func (s *Server) spanned(kind string, fn http.HandlerFunc) http.HandlerFunc {
	if s.spans == nil {
		return fn
	}
	return func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get(HeaderTrace)
		if trace == "" {
			fn(w, r)
			return
		}
		sw := &spanResponseWriter{ResponseWriter: w}
		t0 := time.Now()
		fn(sw, r)
		rec := &obs.SpanRecord{
			TraceID:  trace,
			Node:     s.node,
			Kind:     kind,
			Start:    t0.UnixNano(),
			Duration: time.Since(t0).Nanoseconds(),
			Status:   sw.status,
			Tier:     sw.Header().Get(HeaderTier),
		}
		if sw.status == http.StatusTemporaryRedirect {
			rec.Target = sw.Header().Get(HeaderOwner)
		}
		if idStr := r.PathValue("id"); idStr != "" {
			if id, err := strconv.ParseUint(idStr, 10, 64); err == nil {
				rec.Episode = id
			}
		}
		_ = s.spans.Write(rec)
	}
}

// emitSpan writes one non-handler span (checkpoint, adopt, replicate,
// accept). No-op without a writer or a trace id.
func (s *Server) emitSpan(rec *obs.SpanRecord) {
	if s.spans == nil || rec.TraceID == "" {
		return
	}
	rec.Node = s.node
	_ = s.spans.Write(rec)
}

// spanStart returns the wall-clock span anchor, zero when spans are off —
// callers gate their emitSpan on !IsZero so the disabled path never reads
// the clock.
func (s *Server) spanStart() time.Time {
	if s.spans == nil {
		return time.Time{}
	}
	return time.Now()
}
