package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"bpomdp/internal/controller"
	"bpomdp/internal/pomdp"
)

// Batch-decision payloads.
type (
	// BatchDecideRequest is the body of POST /v1/decide/batch: one belief
	// (a distribution over the model's states) per decision wanted.
	BatchDecideRequest struct {
		Beliefs [][]float64 `json:"beliefs"`
	}
	// BatchDecideResponse is returned by POST /v1/decide/batch. Decision i
	// answers belief i.
	BatchDecideResponse struct {
		Decisions []DecisionResponse `json:"decisions"`
	}
)

// getBatchDecider fetches a pooled batch decider, building a fresh one from
// the factory when the pool is empty.
func (s *Server) getBatchDecider() (controller.BatchDecider, error) {
	if bd, ok := s.batchPool.Get().(controller.BatchDecider); ok {
		return bd, nil
	}
	bd, err := s.cfg.NewBatchDecider()
	if err != nil {
		return nil, fmt.Errorf("batch decider factory: %w", err)
	}
	if bd == nil {
		return nil, errors.New("batch decider factory returned nil")
	}
	return bd, nil
}

// handleBatchDecide serves POST /v1/decide/batch: decisions for many
// beliefs in one stateless request. The decider is taken from a pool, so
// repeated batches re-use the same engine scratch and the steady state
// builds no controllers.
func (s *Server) handleBatchDecide(w http.ResponseWriter, r *http.Request) {
	var req BatchDecideRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body over %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode batch decide request: %w", err))
		return
	}
	if len(req.Beliefs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no beliefs in batch"))
		return
	}
	if len(req.Beliefs) > s.cfg.MaxBatchBeliefs {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d beliefs over cap %d", len(req.Beliefs), s.cfg.MaxBatchBeliefs))
		return
	}
	n := s.cfg.Model.NumStates()
	beliefs := make([]pomdp.Belief, len(req.Beliefs))
	for i, b := range req.Beliefs {
		if len(b) != n {
			writeError(w, http.StatusBadRequest, fmt.Errorf("belief %d has length %d, want %d", i, len(b), n))
			return
		}
		pi := pomdp.Belief(b)
		if !pi.IsDistribution() {
			writeError(w, http.StatusBadRequest, fmt.Errorf("belief %d is not a distribution", i))
			return
		}
		beliefs[i] = pi
	}

	bd, err := s.getBatchDecider()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	decisions := make([]controller.Decision, len(beliefs))
	if err := bd.DecideBatch(beliefs, decisions); err != nil {
		// The decider may be mid-batch in an unknown state; drop it rather
		// than pooling it.
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.batchPool.Put(bd)

	resp := BatchDecideResponse{Decisions: make([]DecisionResponse, len(decisions))}
	for i, d := range decisions {
		dr := DecisionResponse{Action: d.Action, Terminate: d.Terminate, Value: d.Value}
		if !d.Terminate || d.Action >= 0 {
			dr.ActionName = s.cfg.Model.M.ActionName(d.Action)
		}
		resp.Decisions[i] = dr
	}
	s.m.batchRequests.Inc()
	s.m.batchDecisions.Add(uint64(len(decisions)))
	writeJSON(w, http.StatusOK, resp)
}
