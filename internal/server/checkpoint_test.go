package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bpomdp/internal/pomdp"
)

// storeKinds are the Checkpointer implementations every conformance test
// runs against; the log store must pass the exact suite the dir store does.
var storeKinds = []string{"dir", "log"}

func openStore(t *testing.T, kind, dir string) Checkpointer {
	t.Helper()
	cp, err := OpenCheckpointStore(kind, dir)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestOpenCheckpointStore(t *testing.T) {
	dir := t.TempDir()
	if cp := openStore(t, "", filepath.Join(dir, "a")); cp == nil {
		t.Fatal("nil store")
	} else if _, ok := cp.(*DirCheckpointer); !ok {
		t.Errorf("default store is %T", cp)
	}
	if cp := openStore(t, "log", filepath.Join(dir, "b")); cp == nil {
		t.Fatal("nil store")
	} else if _, ok := cp.(*LogCheckpointer); !ok {
		t.Errorf("log store is %T", cp)
	}
	if _, err := OpenCheckpointStore("zebra", dir); err == nil {
		t.Error("unknown store kind accepted")
	}
	if _, err := OpenCheckpointStore("dir", ""); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestCheckpointStoreRoundTrip(t *testing.T) {
	for _, kind := range storeKinds {
		t.Run(kind, func(t *testing.T) {
			cp := openStore(t, kind, filepath.Join(t.TempDir(), "ckpt"))
			a := EpisodeState{EpisodeID: 2, Controller: "bounded(depth=1)", Steps: 1,
				Belief: []float64{0.5, 0.5}, History: []Step{{Action: 2, Observation: 1}}}
			b := EpisodeState{EpisodeID: 1, ClientKey: "k", Steps: 0, Belief: []float64{1, 0}}
			for _, st := range []EpisodeState{a, b} {
				if err := cp.Save(st); err != nil {
					t.Fatal(err)
				}
			}
			got, corrupt, err := cp.LoadAll()
			if err != nil || len(corrupt) != 0 {
				t.Fatalf("LoadAll err=%v corrupt=%+v", err, corrupt)
			}
			if len(got) != 2 || got[0].EpisodeID != 1 || got[1].EpisodeID != 2 {
				t.Fatalf("LoadAll = %+v", got)
			}
			if !reflect.DeepEqual(got[1], a) {
				t.Errorf("round-trip mismatch: %+v vs %+v", got[1], a)
			}
			// Overwrite is atomic and idempotent.
			a.Steps = 2
			a.History = append(a.History, Step{Action: 0, Observation: 0})
			if err := cp.Save(a); err != nil {
				t.Fatal(err)
			}
			got, _, err = cp.LoadAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 2 || got[1].Steps != 2 {
				t.Fatalf("after overwrite: %+v", got)
			}
			if err := cp.Delete(2); err != nil {
				t.Fatal(err)
			}
			if err := cp.Delete(2); err != nil {
				t.Errorf("double delete: %v", err)
			}
			got, _, err = cp.LoadAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 || got[0].EpisodeID != 1 {
				t.Fatalf("after delete: %+v", got)
			}
		})
	}
}

// TestCheckpointStoreReopen: a second store over the same directory (a
// restart) sees exactly what the first persisted.
func TestCheckpointStoreReopen(t *testing.T) {
	for _, kind := range storeKinds {
		t.Run(kind, func(t *testing.T) {
			dir := t.TempDir()
			cp := openStore(t, kind, dir)
			for id := uint64(1); id <= 3; id++ {
				if err := cp.Save(EpisodeState{EpisodeID: id, Belief: []float64{1}}); err != nil {
					t.Fatal(err)
				}
			}
			if err := cp.Delete(2); err != nil {
				t.Fatal(err)
			}
			if lc, ok := cp.(*LogCheckpointer); ok {
				if err := lc.Close(); err != nil {
					t.Fatal(err)
				}
			}
			got, corrupt, err := openStore(t, kind, dir).LoadAll()
			if err != nil || len(corrupt) != 0 {
				t.Fatalf("reopen LoadAll err=%v corrupt=%+v", err, corrupt)
			}
			if len(got) != 2 || got[0].EpisodeID != 1 || got[1].EpisodeID != 3 {
				t.Fatalf("reopen state %+v", got)
			}
		})
	}
}

// TestDirCheckpointerQuarantinesCorrupt is the truncated-JSON regression
// test: one bad file must not block the others, must be renamed to .corrupt
// (never silently rewritten), and must be reported in the corrupt list.
func TestDirCheckpointerQuarantinesCorrupt(t *testing.T) {
	dir := t.TempDir()
	cp, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(EpisodeState{EpisodeID: 7, Belief: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	// A write torn mid-JSON (truncated) and a decodable-but-invalid snapshot.
	if err := os.WriteFile(filepath.Join(dir, "episode-8.json"), []byte(`{"episodeId":8,"steps":1,"hist`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "episode-9.json"), []byte(`{"episodeId":9,"steps":3,"history":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, corrupt, err := cp.LoadAll()
	if err != nil {
		t.Fatalf("store-level error for per-file corruption: %v", err)
	}
	if len(got) != 1 || got[0].EpisodeID != 7 {
		t.Errorf("good checkpoint lost: %+v", got)
	}
	if len(corrupt) != 2 {
		t.Fatalf("corrupt = %+v", corrupt)
	}
	ids := map[uint64]bool{}
	for _, c := range corrupt {
		ids[c.EpisodeID] = true
		if c.Err == nil || c.Name == "" {
			t.Errorf("corrupt entry missing detail: %+v", c)
		}
	}
	if !ids[8] || !ids[9] {
		t.Errorf("corrupt episodes %v", ids)
	}
	for _, id := range []int{8, 9} {
		name := fmt.Sprintf("episode-%d.json", id)
		if _, err := os.Stat(filepath.Join(dir, name+".corrupt")); err != nil {
			t.Errorf("quarantine file for %d: %v", id, err)
		}
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("original %s still present (err %v)", name, err)
		}
	}
	// Quarantined files no longer appear on the next load, and a fresh save
	// of the same episode does not disturb the preserved evidence.
	if err := cp.Save(EpisodeState{EpisodeID: 8, Belief: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, corrupt, err = cp.LoadAll()
	if err != nil || len(corrupt) != 0 {
		t.Fatalf("second LoadAll err=%v corrupt=%+v", err, corrupt)
	}
	if len(got) != 2 {
		t.Errorf("after requarantine: %+v", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "episode-8.json.corrupt")); err != nil {
		t.Errorf("quarantined evidence gone: %v", err)
	}
}

// appendLogFrame writes one raw framed record, optionally with a corrupted
// checksum, straight into the log file — simulating what a crash or bit rot
// leaves behind.
func appendLogFrame(t *testing.T, path string, payload []byte, breakCRC bool) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	sum := crc32.ChecksumIEEE(payload)
	if breakCRC {
		sum ^= 0xdeadbeef
	}
	binary.LittleEndian.PutUint32(buf[4:8], sum)
	copy(buf[8:], payload)
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
}

// TestLogStoreTornTail: a crash mid-append leaves a half-written frame; the
// next open must truncate it, keep everything before it, and accept new
// appends.
func TestLogStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, logFileName)
	cp, err := NewLogCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 2; id++ {
		if err := cp.Save(EpisodeState{EpisodeID: id, Belief: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	cleanSize := fileSize(t, logPath)

	tails := map[string][]byte{
		"half-header":  {0x10, 0x00},
		"half-payload": {0x40, 0x00, 0x00, 0x00, 0x11, 0x22, 0x33, 0x44, '{', '"'},
	}
	for name, tail := range tails {
		t.Run(name, func(t *testing.T) {
			f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			reopened, err := NewLogCheckpointer(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			got, corrupt, err := reopened.LoadAll()
			if err != nil || len(corrupt) != 0 {
				t.Fatalf("LoadAll err=%v corrupt=%+v", err, corrupt)
			}
			if len(got) != 2 {
				t.Fatalf("torn tail lost records: %+v", got)
			}
			if sz := fileSize(t, logPath); sz != cleanSize {
				t.Errorf("file size %d after truncation, want %d", sz, cleanSize)
			}
			// The store keeps working after truncation.
			if err := reopened.Save(EpisodeState{EpisodeID: 3, Belief: []float64{1}}); err != nil {
				t.Fatal(err)
			}
			if err := reopened.Delete(3); err != nil {
				t.Fatal(err)
			}
			if sz := fileSize(t, logPath); sz <= cleanSize {
				t.Errorf("appends after truncation did not land (size %d)", sz)
			}
			// Reset for the next subtest.
			if err := os.Truncate(logPath, cleanSize); err != nil {
				t.Fatal(err)
			}
		})
	}

	// A checksum-failing full frame is also a torn tail: everything from it
	// on is dropped.
	appendLogFrame(t, logPath, []byte(`{"op":"delete","episodeId":1}`), true)
	reopened, err := NewLogCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got, _, err := reopened.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("checksum-failing frame applied: %+v", got)
	}
}

// TestLogStoreCorruptRecord: a frame whose checksum passes but whose payload
// is not a valid record is skipped and reported, and records after it still
// apply — unlike a torn tail, it does not end the log.
func TestLogStoreCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, logFileName)
	cp, err := NewLogCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(EpisodeState{EpisodeID: 1, Belief: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	appendLogFrame(t, logPath, []byte(`not json at all`), false)
	appendLogFrame(t, logPath, []byte(`{"op":"warp","episodeId":4}`), false)
	appendLogFrame(t, logPath, []byte(`{"op":"save","episodeId":5,"state":{"episodeId":5,"steps":2,"history":[]}}`), false)
	cp2, err := NewLogCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if err := cp2.Save(EpisodeState{EpisodeID: 2, Belief: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, corrupt, err := cp2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].EpisodeID != 1 || got[1].EpisodeID != 2 {
		t.Errorf("live set %+v", got)
	}
	if len(corrupt) != 3 {
		t.Fatalf("corrupt = %+v", corrupt)
	}
	for _, c := range corrupt {
		if !strings.HasPrefix(c.Name, logFileName+"@") {
			t.Errorf("corrupt name %q lacks offset", c.Name)
		}
	}
	if corrupt[1].EpisodeID != 4 || corrupt[2].EpisodeID != 5 {
		t.Errorf("corrupt ids %+v", corrupt)
	}
}

// TestLogStoreCompaction: once dead bytes dominate, the log is rewritten to
// the live set; the rewrite survives reopen.
func TestLogStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	cp, err := NewLogCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	cp.compactMin = 4096
	st := EpisodeState{EpisodeID: 1, Belief: []float64{0.25, 0.75}}
	for i := 0; i < 200; i++ {
		st.Steps = i
		st.History = append(st.History, Step{Action: 2, Observation: 1})
		st.Steps = len(st.History)
		if err := cp.Save(st); err != nil {
			t.Fatal(err)
		}
	}
	if cp.Compactions() == 0 {
		t.Fatal("no compaction after 200 overwrites past the threshold")
	}
	if err := cp.Save(EpisodeState{EpisodeID: 2, Belief: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	got, corrupt, err := openStore(t, "log", dir).LoadAll()
	if err != nil || len(corrupt) != 0 {
		t.Fatalf("LoadAll err=%v corrupt=%+v", err, corrupt)
	}
	if len(got) != 2 || got[0].Steps != 200 || got[1].EpisodeID != 2 {
		t.Fatalf("post-compaction state %+v", got)
	}

	// Explicit compaction of a mostly-dead log shrinks the file.
	for id := uint64(10); id < 60; id++ {
		if err := cp2(t, dir).Save(EpisodeState{EpisodeID: id, Belief: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	lc := cp2(t, dir)
	for id := uint64(10); id < 60; id++ {
		if err := lc.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	before := fileSize(t, filepath.Join(dir, logFileName))
	if err := lc.Compact(); err != nil {
		t.Fatal(err)
	}
	after := fileSize(t, filepath.Join(dir, logFileName))
	if after >= before {
		t.Errorf("compaction did not shrink log: %d -> %d", before, after)
	}
	lc.Close()
}

// cp2 opens a log store over dir, registering cleanup-free (tests close the
// last one they care about explicitly).
func cp2(t *testing.T, dir string) *LogCheckpointer {
	t.Helper()
	lc, err := NewLogCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	return lc
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestCrashRestartResume kills a server mid-episode and verifies a new
// server over the same checkpoint store resumes the episode with the same
// step count and belief — for both store implementations.
func TestCrashRestartResume(t *testing.T) {
	for _, kind := range storeKinds {
		t.Run(kind, func(t *testing.T) {
			prep := testPrepared(t)
			dir := t.TempDir()
			cp := openStore(t, kind, dir)
			cfg := Config{Model: prep.Model, NewController: boundedFactory(prep), Checkpointer: cp}
			srv1, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			hs1 := httptest.NewServer(srv1)

			resp, err := http.Post(hs1.URL+"/v1/episodes", "application/json", strings.NewReader(`{"clientKey":"ck-1"}`))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()

			// One decision + observation so the checkpoint has history.
			resp, err = http.Get(hs1.URL + "/v1/episodes/1/decision")
			if err != nil {
				t.Fatal(err)
			}
			var d DecisionResponse
			if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if d.Terminate {
				t.Fatal("terminated on the first decision")
			}
			sc := pomdp.NewScratch(prep.Model)
			succs := prep.Model.Successors(sc, pomdp.PointBelief(prep.Model.NumStates(), 0), d.Action)
			body := fmt.Sprintf(`{"action":%d,"observation":%d,"stepIndex":0}`, d.Action, succs[0].Obs)
			or, err := http.Post(hs1.URL+"/v1/episodes/1/observations", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			or.Body.Close()
			if or.StatusCode != http.StatusNoContent {
				t.Fatalf("observation status %d", or.StatusCode)
			}
			var beforeBelief BeliefResponse
			resp, err = http.Get(hs1.URL + "/v1/episodes/1/belief")
			if err != nil {
				t.Fatal(err)
			}
			if err := json.NewDecoder(resp.Body).Decode(&beforeBelief); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()

			// "Crash": the first server vanishes without Close (no final
			// snapshot needed — every observation already checkpointed
			// write-ahead). The store handle is deliberately left unclosed.
			hs1.Close()

			cfg.Checkpointer = openStore(t, kind, dir)
			srv2, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep := srv2.Restored()
			if rep.Resumed != 1 || len(rep.Failed) != 0 || rep.LoadErr != nil {
				t.Fatalf("restore report %+v", rep)
			}
			hs2 := httptest.NewServer(srv2)
			defer hs2.Close()

			// Same id, same step count, same belief, and the idempotency key
			// still deduplicates.
			resp, err = http.Get(hs2.URL + "/v1/episodes/1")
			if err != nil {
				t.Fatal(err)
			}
			var st StatusResponse
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if !st.Open || st.Steps != 1 {
				t.Errorf("resumed status %+v", st)
			}
			var afterBelief BeliefResponse
			resp, err = http.Get(hs2.URL + "/v1/episodes/1/belief")
			if err != nil {
				t.Fatal(err)
			}
			if err := json.NewDecoder(resp.Body).Decode(&afterBelief); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if !reflect.DeepEqual(beforeBelief, afterBelief) {
				t.Errorf("belief changed across restart: %v vs %v", beforeBelief, afterBelief)
			}
			resp, err = http.Post(hs2.URL+"/v1/episodes", "application/json", strings.NewReader(`{"clientKey":"ck-1"}`))
			if err != nil {
				t.Fatal(err)
			}
			var again StartResponse
			if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || again.EpisodeID != 1 {
				t.Errorf("clientKey lost across restart: status %d id %d", resp.StatusCode, again.EpisodeID)
			}
		})
	}
}

// TestReplayDeterminism: the same history replayed through a fresh
// controller yields the same belief and a byte-identical decision — the
// property the restore path depends on.
func TestReplayDeterminism(t *testing.T) {
	prep := testPrepared(t)
	// Histories are generated from action sequences (restart-a=0,
	// restart-b=1, observe=2); the observation at each step is the first
	// possible successor under the current belief, so every history is
	// legal by construction.
	cases := []struct {
		name    string
		actions []int
	}{
		{"empty", nil},
		{"one-observe", []int{2}},
		{"observe-then-restart", []int{2, 0}},
		{"longer", []int{2, 0, 2, 1}},
	}
	buildHistory := func(actions []int) []Step {
		t.Helper()
		ctrl, initial, err := boundedFactory(prep)()
		if err != nil {
			t.Fatal(err)
		}
		if err := ctrl.Reset(initial); err != nil {
			t.Fatal(err)
		}
		sc := pomdp.NewScratch(prep.Model)
		var hist []Step
		for _, a := range actions {
			succs := prep.Model.Successors(sc, ctrl.Belief(), a)
			if len(succs) == 0 {
				t.Fatalf("no successors for action %d", a)
			}
			obs := succs[0].Obs
			if err := ctrl.Observe(a, obs); err != nil {
				t.Fatal(err)
			}
			hist = append(hist, Step{Action: a, Observation: obs})
		}
		return hist
	}
	run := func(history []Step) (pomdp.Belief, []byte) {
		t.Helper()
		ctrl, initial, err := boundedFactory(prep)()
		if err != nil {
			t.Fatal(err)
		}
		if err := ctrl.Reset(initial); err != nil {
			t.Fatal(err)
		}
		for i, step := range history {
			if err := ctrl.Observe(step.Action, step.Observation); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		d, err := ctrl.Decide()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(DecisionResponse{Action: d.Action, Terminate: d.Terminate, Value: d.Value})
		if err != nil {
			t.Fatal(err)
		}
		return ctrl.Belief(), data
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			history := buildHistory(tc.actions)
			b1, d1 := run(history)
			b2, d2 := run(history)
			if !reflect.DeepEqual(b1, b2) {
				t.Errorf("beliefs diverge: %v vs %v", b1, b2)
			}
			if string(d1) != string(d2) {
				t.Errorf("decisions diverge: %s vs %s", d1, d2)
			}
		})
	}
}

func TestRestoreSkipsBadCheckpoints(t *testing.T) {
	for _, kind := range storeKinds {
		t.Run(kind, func(t *testing.T) {
			prep := testPrepared(t)
			cp := openStore(t, kind, t.TempDir())
			// A checkpoint whose history is impossible under the model: replay
			// must fail, the episode must be reported, and the server must
			// still come up.
			bad := EpisodeState{EpisodeID: 5, Steps: 1, History: []Step{{Action: 2, Observation: 40}}}
			if err := cp.Save(bad); err != nil {
				t.Fatal(err)
			}
			good := EpisodeState{EpisodeID: 9, Steps: 0}
			if err := cp.Save(good); err != nil {
				t.Fatal(err)
			}
			srv, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep), Checkpointer: cp})
			if err != nil {
				t.Fatal(err)
			}
			rep := srv.Restored()
			if rep.Resumed != 1 {
				t.Errorf("resumed %d, want 1", rep.Resumed)
			}
			if len(rep.Failed) != 1 || rep.Failed[0].EpisodeID != 5 {
				t.Errorf("failed %+v", rep.Failed)
			}
			if srv.OpenEpisodes() != 1 {
				t.Errorf("open episodes = %d", srv.OpenEpisodes())
			}
			// New episodes must not collide with restored ids.
			hs := httptest.NewServer(srv)
			defer hs.Close()
			resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			var out StartResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if out.EpisodeID <= 9 {
				t.Errorf("new episode id %d collides with restored range", out.EpisodeID)
			}
		})
	}
}

// TestCheckpointStoreTombstoneRoundTrip is the tombstone conformance suite:
// both stores must round-trip tombstone records, keep the episode and
// tombstone namespaces independent, tolerate double deletes, and surface
// the same set after a reopen.
func TestCheckpointStoreTombstoneRoundTrip(t *testing.T) {
	final := DecisionResponse{Action: -1, Terminate: true, Value: 3.25}
	for _, kind := range storeKinds {
		t.Run(kind, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "ckpt")
			cp := openStore(t, kind, dir)
			a := TombstoneState{EpisodeID: 2, ClientKey: "ka", Steps: 4, Final: final, TerminatedAtUnixNano: 100}
			b := TombstoneState{EpisodeID: 1, ClientKey: "kb", Steps: 0, Final: final, TerminatedAtUnixNano: 200}
			for _, ts := range []TombstoneState{a, b} {
				if err := cp.SaveTombstone(ts); err != nil {
					t.Fatal(err)
				}
			}
			// An invalid tombstone (non-terminal final) must be refused.
			if err := cp.SaveTombstone(TombstoneState{EpisodeID: 9, Final: DecisionResponse{Action: 1}}); err == nil {
				t.Error("non-terminal tombstone accepted")
			}
			got, corrupt, err := cp.LoadTombstones()
			if err != nil || len(corrupt) != 0 {
				t.Fatalf("LoadTombstones err=%v corrupt=%+v", err, corrupt)
			}
			if len(got) != 2 || got[0].EpisodeID != 1 || got[1].EpisodeID != 2 {
				t.Fatalf("LoadTombstones = %+v", got)
			}
			if !reflect.DeepEqual(got[1], a) {
				t.Errorf("round-trip mismatch: %+v vs %+v", got[1], a)
			}

			// Episodes and tombstones are independent namespaces: the same id
			// may be live in both, and deleting in one never touches the other.
			if err := cp.Save(EpisodeState{EpisodeID: 2, ClientKey: "ka", Belief: []float64{1}}); err != nil {
				t.Fatal(err)
			}
			if err := cp.Delete(2); err != nil {
				t.Fatal(err)
			}
			if got, _, _ = cp.LoadTombstones(); len(got) != 2 {
				t.Fatalf("episode delete removed a tombstone: %+v", got)
			}
			if err := cp.Save(EpisodeState{EpisodeID: 1, Belief: []float64{1}}); err != nil {
				t.Fatal(err)
			}
			if err := cp.DeleteTombstone(1); err != nil {
				t.Fatal(err)
			}
			if err := cp.DeleteTombstone(1); err != nil {
				t.Errorf("double tombstone delete: %v", err)
			}
			if states, _, _ := cp.LoadAll(); len(states) != 1 || states[0].EpisodeID != 1 {
				t.Fatalf("tombstone delete removed an episode: %+v", states)
			}
			if got, _, _ = cp.LoadTombstones(); len(got) != 1 || got[0].EpisodeID != 2 {
				t.Fatalf("after tombstone delete: %+v", got)
			}

			// A reopen (restart) sees exactly what was persisted.
			if lc, ok := cp.(*LogCheckpointer); ok {
				if err := lc.Close(); err != nil {
					t.Fatal(err)
				}
			}
			got, corrupt, err = openStore(t, kind, dir).LoadTombstones()
			if err != nil || len(corrupt) != 0 {
				t.Fatalf("reopen LoadTombstones err=%v corrupt=%+v", err, corrupt)
			}
			if len(got) != 1 || !reflect.DeepEqual(got[0], a) {
				t.Fatalf("reopen tombstones %+v, want [%+v]", got, a)
			}
		})
	}
}

// TestLogStoreCrashMidCompaction pins down compaction's crash contract: the
// rewrite goes to a temp file and lands via atomic rename, so a SIGKILL
// between the temp write and the rename leaves the original log fully
// authoritative and readable. The on-disk state such a crash produces —
// untouched log plus a completed (or torn) .checkpoint-*.log temp — must
// reopen to the exact pre-compaction live set, with the stale temp swept.
func TestLogStoreCrashMidCompaction(t *testing.T) {
	final := DecisionResponse{Action: -1, Terminate: true, Value: 1}
	for _, tornTemp := range []bool{false, true} {
		name := "complete-temp"
		if tornTemp {
			name = "torn-temp"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cp, err := NewLogCheckpointer(dir)
			if err != nil {
				t.Fatal(err)
			}
			for id := uint64(1); id <= 3; id++ {
				if err := cp.Save(EpisodeState{EpisodeID: id, Belief: []float64{1}}); err != nil {
					t.Fatal(err)
				}
			}
			if err := cp.Delete(2); err != nil {
				t.Fatal(err)
			}
			if err := cp.SaveTombstone(TombstoneState{EpisodeID: 4, ClientKey: "k", Final: final}); err != nil {
				t.Fatal(err)
			}
			if err := cp.Close(); err != nil {
				t.Fatal(err)
			}

			// Reconstruct the instant of death: compaction built its temp file
			// (here: a payload that would change the live set if ever trusted,
			// or a torn fragment) but the process was killed before the rename.
			tmpBody := []byte("torn mid-wri")
			if !tornTemp {
				// A full, valid frame for a different episode — indistinguishable
				// from a real compaction temp except for not having been renamed.
				st := EpisodeState{EpisodeID: 99, Belief: []float64{1}}
				payload, err := json.Marshal(logRecord{Op: "save", EpisodeID: 99, State: &st})
				if err != nil {
					t.Fatal(err)
				}
				buf := make([]byte, 8+len(payload))
				binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
				binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
				copy(buf[8:], payload)
				tmpBody = buf
			}
			tmpPath := filepath.Join(dir, ".checkpoint-1234567.log")
			if err := os.WriteFile(tmpPath, tmpBody, 0o644); err != nil {
				t.Fatal(err)
			}

			// The restart: the untouched log is authoritative.
			reopened, err := NewLogCheckpointer(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			states, corrupt, err := reopened.LoadAll()
			if err != nil || len(corrupt) != 0 {
				t.Fatalf("LoadAll err=%v corrupt=%+v", err, corrupt)
			}
			if len(states) != 2 || states[0].EpisodeID != 1 || states[1].EpisodeID != 3 {
				t.Fatalf("live set after crash-restart: %+v", states)
			}
			tombs, _, err := reopened.LoadTombstones()
			if err != nil {
				t.Fatal(err)
			}
			if len(tombs) != 1 || tombs[0].EpisodeID != 4 {
				t.Fatalf("tombstones after crash-restart: %+v", tombs)
			}
			if _, err := os.Stat(tmpPath); !os.IsNotExist(err) {
				t.Errorf("stale compaction temp %s not swept on open (stat err: %v)", tmpPath, err)
			}

			// And a real compaction over the reopened store leaves exactly one
			// file — the renamed log — still holding the same live set.
			if err := reopened.Compact(); err != nil {
				t.Fatal(err)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if e.Name() != logFileName {
					t.Errorf("unexpected file after compaction: %s", e.Name())
				}
			}
			states, _, _ = reopened.LoadAll()
			tombs, _, _ = reopened.LoadTombstones()
			if len(states) != 2 || len(tombs) != 1 {
				t.Fatalf("compaction changed the live set: %d states, %d tombstones", len(states), len(tombs))
			}
		})
	}
}
