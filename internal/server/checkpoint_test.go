package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bpomdp/internal/pomdp"
)

func TestDirCheckpointerRoundTrip(t *testing.T) {
	cp, err := NewDirCheckpointer(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	a := EpisodeState{EpisodeID: 2, Controller: "bounded(depth=1)", Steps: 1,
		Belief: []float64{0.5, 0.5}, History: []Step{{Action: 2, Observation: 1}}}
	b := EpisodeState{EpisodeID: 1, ClientKey: "k", Steps: 0, Belief: []float64{1, 0}}
	for _, st := range []EpisodeState{a, b} {
		if err := cp.Save(st); err != nil {
			t.Fatal(err)
		}
	}
	got, err := cp.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].EpisodeID != 1 || got[1].EpisodeID != 2 {
		t.Fatalf("LoadAll = %+v", got)
	}
	if !reflect.DeepEqual(got[1], a) {
		t.Errorf("round-trip mismatch: %+v vs %+v", got[1], a)
	}
	// Overwrite is atomic and idempotent.
	a.Steps = 2
	a.History = append(a.History, Step{Action: 0, Observation: 0})
	if err := cp.Save(a); err != nil {
		t.Fatal(err)
	}
	got, err = cp.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Steps != 2 {
		t.Fatalf("after overwrite: %+v", got)
	}
	if err := cp.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := cp.Delete(2); err != nil {
		t.Errorf("double delete: %v", err)
	}
	got, err = cp.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].EpisodeID != 1 {
		t.Fatalf("after delete: %+v", got)
	}
}

func TestDirCheckpointerCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	cp, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(EpisodeState{EpisodeID: 7, Belief: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "episode-8.json"), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := cp.LoadAll()
	if err == nil {
		t.Error("corrupt checkpoint not reported")
	}
	if len(got) != 1 || got[0].EpisodeID != 7 {
		t.Errorf("good checkpoint lost: %+v", got)
	}
}

// TestCrashRestartResume kills a server mid-episode and verifies a new
// server over the same checkpoint directory resumes the episode with the
// same step count and belief.
func TestCrashRestartResume(t *testing.T) {
	prep := testPrepared(t)
	cp, err := NewDirCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: prep.Model, NewController: boundedFactory(prep), Checkpointer: cp}
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1)

	resp, err := http.Post(hs1.URL+"/v1/episodes", "application/json", strings.NewReader(`{"clientKey":"ck-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// One decision + observation so the checkpoint has history.
	resp, err = http.Get(hs1.URL + "/v1/episodes/1/decision")
	if err != nil {
		t.Fatal(err)
	}
	var d DecisionResponse
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d.Terminate {
		t.Fatal("terminated on the first decision")
	}
	sc := pomdp.NewScratch(prep.Model)
	succs := prep.Model.Successors(sc, pomdp.PointBelief(prep.Model.NumStates(), 0), d.Action)
	body := fmt.Sprintf(`{"action":%d,"observation":%d,"stepIndex":0}`, d.Action, succs[0].Obs)
	or, err := http.Post(hs1.URL+"/v1/episodes/1/observations", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	or.Body.Close()
	if or.StatusCode != http.StatusNoContent {
		t.Fatalf("observation status %d", or.StatusCode)
	}
	var beforeBelief BeliefResponse
	resp, err = http.Get(hs1.URL + "/v1/episodes/1/belief")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&beforeBelief); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// "Crash": the first server vanishes without Close (no final snapshot
	// needed — every observation already checkpointed write-ahead).
	hs1.Close()

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := srv2.Restored()
	if rep.Resumed != 1 || len(rep.Failed) != 0 || rep.LoadErr != nil {
		t.Fatalf("restore report %+v", rep)
	}
	hs2 := httptest.NewServer(srv2)
	defer hs2.Close()

	// Same id, same step count, same belief, and the idempotency key still
	// deduplicates.
	resp, err = http.Get(hs2.URL + "/v1/episodes/1")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Open || st.Steps != 1 {
		t.Errorf("resumed status %+v", st)
	}
	var afterBelief BeliefResponse
	resp, err = http.Get(hs2.URL + "/v1/episodes/1/belief")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&afterBelief); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !reflect.DeepEqual(beforeBelief, afterBelief) {
		t.Errorf("belief changed across restart: %v vs %v", beforeBelief, afterBelief)
	}
	resp, err = http.Post(hs2.URL+"/v1/episodes", "application/json", strings.NewReader(`{"clientKey":"ck-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	var again StartResponse
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || again.EpisodeID != 1 {
		t.Errorf("clientKey lost across restart: status %d id %d", resp.StatusCode, again.EpisodeID)
	}
}

// TestReplayDeterminism: the same history replayed through a fresh
// controller yields the same belief and a byte-identical decision — the
// property the restore path depends on.
func TestReplayDeterminism(t *testing.T) {
	prep := testPrepared(t)
	// Histories are generated from action sequences (restart-a=0,
	// restart-b=1, observe=2); the observation at each step is the first
	// possible successor under the current belief, so every history is
	// legal by construction.
	cases := []struct {
		name    string
		actions []int
	}{
		{"empty", nil},
		{"one-observe", []int{2}},
		{"observe-then-restart", []int{2, 0}},
		{"longer", []int{2, 0, 2, 1}},
	}
	buildHistory := func(actions []int) []Step {
		t.Helper()
		ctrl, initial, err := boundedFactory(prep)()
		if err != nil {
			t.Fatal(err)
		}
		if err := ctrl.Reset(initial); err != nil {
			t.Fatal(err)
		}
		sc := pomdp.NewScratch(prep.Model)
		var hist []Step
		for _, a := range actions {
			succs := prep.Model.Successors(sc, ctrl.Belief(), a)
			if len(succs) == 0 {
				t.Fatalf("no successors for action %d", a)
			}
			obs := succs[0].Obs
			if err := ctrl.Observe(a, obs); err != nil {
				t.Fatal(err)
			}
			hist = append(hist, Step{Action: a, Observation: obs})
		}
		return hist
	}
	run := func(history []Step) (pomdp.Belief, []byte) {
		t.Helper()
		ctrl, initial, err := boundedFactory(prep)()
		if err != nil {
			t.Fatal(err)
		}
		if err := ctrl.Reset(initial); err != nil {
			t.Fatal(err)
		}
		for i, step := range history {
			if err := ctrl.Observe(step.Action, step.Observation); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		d, err := ctrl.Decide()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(DecisionResponse{Action: d.Action, Terminate: d.Terminate, Value: d.Value})
		if err != nil {
			t.Fatal(err)
		}
		return ctrl.Belief(), data
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			history := buildHistory(tc.actions)
			b1, d1 := run(history)
			b2, d2 := run(history)
			if !reflect.DeepEqual(b1, b2) {
				t.Errorf("beliefs diverge: %v vs %v", b1, b2)
			}
			if string(d1) != string(d2) {
				t.Errorf("decisions diverge: %s vs %s", d1, d2)
			}
		})
	}
}

func TestRestoreSkipsBadCheckpoints(t *testing.T) {
	prep := testPrepared(t)
	cp, err := NewDirCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A checkpoint whose history is impossible under the model: replay must
	// fail, the episode must be reported, and the server must still come up.
	bad := EpisodeState{EpisodeID: 5, Steps: 1, History: []Step{{Action: 2, Observation: 40}}}
	if err := cp.Save(bad); err != nil {
		t.Fatal(err)
	}
	good := EpisodeState{EpisodeID: 9, Steps: 0}
	if err := cp.Save(good); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Model: prep.Model, NewController: boundedFactory(prep), Checkpointer: cp})
	if err != nil {
		t.Fatal(err)
	}
	rep := srv.Restored()
	if rep.Resumed != 1 {
		t.Errorf("resumed %d, want 1", rep.Resumed)
	}
	if len(rep.Failed) != 1 || rep.Failed[0].EpisodeID != 5 {
		t.Errorf("failed %+v", rep.Failed)
	}
	if srv.OpenEpisodes() != 1 {
		t.Errorf("open episodes = %d", srv.OpenEpisodes())
	}
	// New episodes must not collide with restored ids.
	hs := httptest.NewServer(srv)
	defer hs.Close()
	resp, err := http.Post(hs.URL+"/v1/episodes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out StartResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.EpisodeID <= 9 {
		t.Errorf("new episode id %d collides with restored range", out.EpisodeID)
	}
}
