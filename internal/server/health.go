package server

import (
	"net/http"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/obs"
)

// HealthView is returned by GET /v1/fleet/health: one node's full health
// snapshot, shaped so one scrape per node yields a whole-fleet picture —
// liveness view, open work, adoption/replication backlogs, and per-tier
// decision rates. The endpoint is served in every mode; Fleet is nil on a
// single-node server.
type HealthView struct {
	Node          string  `json:"node"`
	Draining      bool    `json:"draining"`
	UptimeSeconds float64 `json:"uptimeSeconds"`

	// OpenEpisodes and Tombstones are the node's live working set;
	// ReplicationInFlight is the tombstone-replication backlog.
	OpenEpisodes        int `json:"openEpisodes"`
	Tombstones          int `json:"tombstones"`
	ReplicationInFlight int `json:"replicationInFlight"`

	// Restore summarizes what New recovered from the checkpoint store.
	Restore HealthRestore `json:"restore"`
	// Decisions splits decision throughput and latency by serving tier.
	Decisions HealthDecisions `json:"decisions"`
	// Adoption and Replication are cumulative fleet-handoff counters.
	Adoption    HealthAdoption    `json:"adoption"`
	Replication HealthReplication `json:"replication"`

	// Fleet is this node's membership liveness view; nil outside fleet mode.
	Fleet *FleetView `json:"fleet,omitempty"`
}

// HealthRestore mirrors RestoreReport in scrape-friendly form.
type HealthRestore struct {
	Resumed    int `json:"resumed"`
	Tombstones int `json:"tombstones"`
	Failed     int `json:"failed"`
}

// HealthDecisions reports per-tier decision counts and mean latency.
type HealthDecisions struct {
	Total  uint64                `json:"total"`
	ByTier map[string]HealthTier `json:"byTier"`
}

// HealthTier is one serving tier's share of the decision load.
type HealthTier struct {
	Count uint64 `json:"count"`
	// RatePerSecond is Count over process uptime.
	RatePerSecond float64 `json:"ratePerSecond"`
	// MeanLatencySeconds is the tier's mean controller-decide latency.
	MeanLatencySeconds float64 `json:"meanLatencySeconds"`
}

// HealthAdoption reports cumulative episode-handoff counters.
type HealthAdoption struct {
	Episodes   uint64 `json:"episodes"`
	Tombstones uint64 `json:"tombstones"`
	Errors     uint64 `json:"errors"`
}

// HealthReplication reports cumulative tombstone-replication counters.
type HealthReplication struct {
	Sent     uint64 `json:"sent"`
	Received uint64 `json:"received"`
	Errors   uint64 `json:"errors"`
}

// tierHealth summarizes one tier histogram.
func tierHealth(h *obs.Histogram, uptime time.Duration) HealthTier {
	count, sum := h.Snapshot()
	t := HealthTier{Count: count}
	if secs := uptime.Seconds(); secs > 0 {
		t.RatePerSecond = float64(count) / secs
	}
	if count > 0 {
		t.MeanLatencySeconds = sum / float64(count)
	}
	return t
}

func (s *Server) handleFleetHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	open := len(s.episodes)
	tombs := len(s.tombstones)
	draining := s.draining
	rep := s.restored
	failed := len(rep.Failed)
	s.mu.Unlock()

	uptime := time.Since(s.startAt)
	view := HealthView{
		Node:                s.node,
		Draining:            draining,
		UptimeSeconds:       uptime.Seconds(),
		OpenEpisodes:        open,
		Tombstones:          tombs,
		ReplicationInFlight: int(s.repInFlight.Load()),
		Restore: HealthRestore{
			Resumed:    rep.Resumed,
			Tombstones: rep.Tombstones,
			Failed:     failed,
		},
		Decisions: HealthDecisions{
			Total: s.m.decisions.Value(),
			ByTier: map[string]HealthTier{
				controller.TierFSC:  tierHealth(s.m.latDecideFSC, uptime),
				controller.TierTree: tierHealth(s.m.latDecideTree, uptime),
			},
		},
		Adoption: HealthAdoption{
			Episodes:   s.m.adopted.Value(),
			Tombstones: s.m.tombstonesAdopted.Value(),
			Errors:     s.m.adoptErrors.Value(),
		},
		Replication: HealthReplication{
			Sent:     s.m.tombstonesReplicated.Value(),
			Received: s.m.tombstonesReceived.Value(),
			Errors:   s.m.tombstoneRepErrors.Value(),
		},
	}
	if f := s.cfg.Fleet; f != nil {
		view.Fleet = &FleetView{
			Self:    f.Self,
			Version: f.Membership.Version(),
			Members: f.Membership.Snapshot(),
		}
	}
	writeJSON(w, http.StatusOK, view)
}
