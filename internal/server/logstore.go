package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// logFileName is the single append-only file a LogCheckpointer writes inside
// its directory.
const logFileName = "checkpoint.log"

// maxLogRecordBytes bounds one record's payload. A length prefix above this
// cannot be a real record (episode snapshots are a few KB), so it is treated
// as a torn tail rather than an instruction to wait for 4 GiB of payload.
const maxLogRecordBytes = 16 << 20

// defaultCompactMinBytes is the log size below which compaction is never
// attempted; rewriting tiny logs is pure churn.
const defaultCompactMinBytes = 1 << 20

// logRecord is one entry in the checkpoint log: a full episode snapshot
// ("save"), an episode deletion ("delete"), a terminal tombstone ("tomb"),
// or a tombstone eviction ("untomb"). The log is a redo log, not a diff
// log — replaying records in order, last-writer-wins per id within each
// namespace (episodes and tombstones are independent), reconstructs the live
// sets exactly.
type logRecord struct {
	Op        string          `json:"op"`
	EpisodeID uint64          `json:"episodeId"`
	State     *EpisodeState   `json:"state,omitempty"`
	Tomb      *TombstoneState `json:"tomb,omitempty"`
}

// LogCheckpointer is an append-only log-structured checkpoint store: every
// Save/Delete/SaveTombstone/DeleteTombstone appends one fsynced record
// framed as
//
//	u32 payload length (LE) | u32 CRC-32 (IEEE) of payload | JSON payload
//
// On open, the log is scanned front to back; the first frame that is
// truncated or fails its checksum marks a torn tail from a crash mid-append,
// and the file is truncated there. A frame whose checksum passes but whose
// payload does not decode is a corrupt record: it is skipped and reported via
// LoadAll, never silently dropped from the file (compaction discards it
// later, once the live set is rewritten).
//
// The full live set is kept in memory (snapshots are small), so LoadAll is a
// map copy and compaction — triggered by a Save when the log has grown past a
// threshold with less than half of it live — rewrites live records to a temp
// file and atomically renames it over the log.
type LogCheckpointer struct {
	mu           sync.Mutex
	dir          string
	path         string
	f            *os.File
	size         int64
	liveBytes    int64 // framed size of the latest live save/tomb record per id
	compactMin   int64
	states       map[uint64]EpisodeState
	recBytes     map[uint64]int64
	tombs        map[uint64]TombstoneState
	tombRecBytes map[uint64]int64
	corrupt      []CorruptCheckpoint
	compactions  int
}

var _ Checkpointer = (*LogCheckpointer)(nil)

// NewLogCheckpointer opens (creating if needed) the checkpoint log inside
// dir, truncating any torn tail left by a crash mid-append.
func NewLogCheckpointer(dir string) (*LogCheckpointer, error) {
	if dir == "" {
		return nil, fmt.Errorf("server: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: checkpoint dir: %w", err)
	}
	c := &LogCheckpointer{
		dir:        dir,
		path:       filepath.Join(dir, logFileName),
		compactMin: defaultCompactMinBytes,
	}
	// A crash between compaction's temp-file write and its rename leaves a
	// stale .checkpoint-*.log temp next to the (still authoritative) log;
	// sweep such leftovers so they never accumulate or get mistaken for data.
	if stale, err := filepath.Glob(filepath.Join(dir, ".checkpoint-*.log")); err == nil {
		for _, p := range stale {
			_ = os.Remove(p)
		}
	}
	if err := c.open(); err != nil {
		return nil, err
	}
	return c, nil
}

// Dir returns the store's directory.
func (c *LogCheckpointer) Dir() string { return c.dir }

func (c *LogCheckpointer) open() error {
	data, err := os.ReadFile(c.path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("server: read checkpoint log: %w", err)
	}
	states, tombs, liveBytes, corrupt, validLen := scanLog(data)
	if validLen < int64(len(data)) {
		// Torn tail from a crash mid-append: drop it so the next append
		// starts on a clean frame boundary.
		if err := os.Truncate(c.path, validLen); err != nil {
			return fmt.Errorf("server: truncate torn checkpoint log: %w", err)
		}
	}
	f, err := os.OpenFile(c.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: open checkpoint log: %w", err)
	}
	c.f = f
	c.size = validLen
	c.liveBytes = liveBytes
	c.states = states
	c.tombs = tombs
	c.corrupt = corrupt
	c.recBytes = make(map[uint64]int64, len(states))
	c.tombRecBytes = make(map[uint64]int64, len(tombs))
	// Per-id record sizes are only needed for liveBytes upkeep; seed them
	// from a re-marshal (compaction would write exactly this).
	for id, st := range states {
		c.recBytes[id] = framedSize(logRecord{Op: "save", EpisodeID: id, State: &st})
	}
	for id, ts := range tombs {
		c.tombRecBytes[id] = framedSize(logRecord{Op: "tomb", EpisodeID: id, Tomb: &ts})
	}
	return nil
}

// framedSize returns the on-disk size of one record: 8 header bytes plus the
// JSON payload.
func framedSize(rec logRecord) int64 {
	data, err := json.Marshal(rec)
	if err != nil {
		return 8
	}
	return int64(8 + len(data))
}

// scanLog replays a checkpoint log image and returns the live episode set,
// the live tombstone set, the framed bytes of the live save/tomb records,
// any corrupt (checksum-valid but undecodable) records, and the length of
// the valid frame prefix. Bytes past validLen are a torn tail: a truncated
// or checksum-failing frame and everything after it. scanLog is pure — it is
// the fuzz target guarding the store's crash-recovery path.
func scanLog(data []byte) (states map[uint64]EpisodeState, tombs map[uint64]TombstoneState, liveBytes int64, corrupt []CorruptCheckpoint, validLen int64) {
	states = make(map[uint64]EpisodeState)
	tombs = make(map[uint64]TombstoneState)
	recBytes := make(map[uint64]int64)
	tombRecBytes := make(map[uint64]int64)
	var off int64
	for {
		rest := data[off:]
		if len(rest) < 8 {
			break // clean EOF or torn header
		}
		ln := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if ln > maxLogRecordBytes || int64(len(rest)) < 8+int64(ln) {
			break // impossible length or truncated payload: torn tail
		}
		payload := rest[8 : 8+ln]
		if crc32.ChecksumIEEE(payload) != sum {
			break // bit rot or torn write inside the payload
		}
		frame := 8 + int64(ln)
		recOff := off
		off += frame

		bad := func(id uint64, err error) {
			corrupt = append(corrupt, CorruptCheckpoint{
				Name:      fmt.Sprintf("%s@%d", logFileName, recOff),
				EpisodeID: id,
				Err:       err,
			})
		}
		var rec logRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			bad(0, err)
			continue
		}
		switch rec.Op {
		case "save":
			if rec.State == nil {
				bad(rec.EpisodeID, fmt.Errorf("save record without state"))
				continue
			}
			if err := rec.State.validate(); err != nil {
				bad(rec.EpisodeID, err)
				continue
			}
			if rec.EpisodeID != rec.State.EpisodeID {
				bad(rec.EpisodeID, fmt.Errorf("record id %d disagrees with state id %d", rec.EpisodeID, rec.State.EpisodeID))
				continue
			}
			id := rec.State.EpisodeID
			liveBytes += frame - recBytes[id]
			recBytes[id] = frame
			states[id] = *rec.State
		case "delete":
			if rec.EpisodeID == 0 {
				bad(0, fmt.Errorf("delete record without episode id"))
				continue
			}
			liveBytes -= recBytes[rec.EpisodeID]
			delete(recBytes, rec.EpisodeID)
			delete(states, rec.EpisodeID)
		case "tomb":
			if rec.Tomb == nil {
				bad(rec.EpisodeID, fmt.Errorf("tomb record without tombstone"))
				continue
			}
			if err := rec.Tomb.validate(); err != nil {
				bad(rec.EpisodeID, err)
				continue
			}
			if rec.EpisodeID != rec.Tomb.EpisodeID {
				bad(rec.EpisodeID, fmt.Errorf("record id %d disagrees with tombstone id %d", rec.EpisodeID, rec.Tomb.EpisodeID))
				continue
			}
			id := rec.Tomb.EpisodeID
			liveBytes += frame - tombRecBytes[id]
			tombRecBytes[id] = frame
			tombs[id] = *rec.Tomb
		case "untomb":
			if rec.EpisodeID == 0 {
				bad(0, fmt.Errorf("untomb record without episode id"))
				continue
			}
			liveBytes -= tombRecBytes[rec.EpisodeID]
			delete(tombRecBytes, rec.EpisodeID)
			delete(tombs, rec.EpisodeID)
		default:
			bad(rec.EpisodeID, fmt.Errorf("unknown op %q", rec.Op))
		}
	}
	return states, tombs, liveBytes, corrupt, off
}

// appendLocked frames, appends, and fsyncs one record. Caller holds c.mu.
func (c *LogCheckpointer) appendLocked(rec logRecord) (int64, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("server: encode checkpoint log record: %w", err)
	}
	if len(payload) > maxLogRecordBytes {
		return 0, fmt.Errorf("server: checkpoint log record %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	if _, err := c.f.Write(buf); err != nil {
		return 0, fmt.Errorf("server: append checkpoint log: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return 0, fmt.Errorf("server: sync checkpoint log: %w", err)
	}
	frame := int64(len(buf))
	c.size += frame
	return frame, nil
}

// Save implements Checkpointer.
func (c *LogCheckpointer) Save(st EpisodeState) error {
	if err := st.validate(); err != nil {
		return fmt.Errorf("server: refusing to checkpoint invalid state: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	frame, err := c.appendLocked(logRecord{Op: "save", EpisodeID: st.EpisodeID, State: &st})
	if err != nil {
		return err
	}
	c.liveBytes += frame - c.recBytes[st.EpisodeID]
	c.recBytes[st.EpisodeID] = frame
	c.states[st.EpisodeID] = st
	return c.maybeCompactLocked()
}

// Delete implements Checkpointer. A delete record is only appended when the
// episode is live, so repeated deletes do not grow the log.
func (c *LogCheckpointer) Delete(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.states[id]; !ok {
		return nil
	}
	if _, err := c.appendLocked(logRecord{Op: "delete", EpisodeID: id}); err != nil {
		return err
	}
	c.liveBytes -= c.recBytes[id]
	delete(c.recBytes, id)
	delete(c.states, id)
	return c.maybeCompactLocked()
}

// LoadAll implements Checkpointer, returning the live set sorted by episode
// id plus any corrupt records found when the log was opened.
func (c *LogCheckpointer) LoadAll() ([]EpisodeState, []CorruptCheckpoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EpisodeState, 0, len(c.states))
	for _, st := range c.states {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EpisodeID < out[j].EpisodeID })
	return out, append([]CorruptCheckpoint(nil), c.corrupt...), nil
}

// SaveTombstone implements Checkpointer: one fsynced "tomb" record in the
// same CRC-framed format as episode saves, compacted alongside them.
func (c *LogCheckpointer) SaveTombstone(ts TombstoneState) error {
	if err := ts.validate(); err != nil {
		return fmt.Errorf("server: refusing to store invalid tombstone: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	frame, err := c.appendLocked(logRecord{Op: "tomb", EpisodeID: ts.EpisodeID, Tomb: &ts})
	if err != nil {
		return err
	}
	c.liveBytes += frame - c.tombRecBytes[ts.EpisodeID]
	c.tombRecBytes[ts.EpisodeID] = frame
	c.tombs[ts.EpisodeID] = ts
	return c.maybeCompactLocked()
}

// DeleteTombstone implements Checkpointer. An "untomb" record is only
// appended when the tombstone is live, so repeated deletes do not grow the
// log.
func (c *LogCheckpointer) DeleteTombstone(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tombs[id]; !ok {
		return nil
	}
	if _, err := c.appendLocked(logRecord{Op: "untomb", EpisodeID: id}); err != nil {
		return err
	}
	c.liveBytes -= c.tombRecBytes[id]
	delete(c.tombRecBytes, id)
	delete(c.tombs, id)
	return c.maybeCompactLocked()
}

// LoadTombstones implements Checkpointer, returning the live tombstone set
// sorted by episode id plus any corrupt records found when the log was
// opened.
func (c *LogCheckpointer) LoadTombstones() ([]TombstoneState, []CorruptCheckpoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TombstoneState, 0, len(c.tombs))
	for _, ts := range c.tombs {
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EpisodeID < out[j].EpisodeID })
	return out, append([]CorruptCheckpoint(nil), c.corrupt...), nil
}

// maybeCompactLocked compacts when the log is big enough to matter and less
// than half of it is live data. Caller holds c.mu.
func (c *LogCheckpointer) maybeCompactLocked() error {
	if c.size < c.compactMin || c.liveBytes*2 >= c.size {
		return nil
	}
	return c.compactLocked()
}

// Compact rewrites the log down to the live set immediately, regardless of
// thresholds.
func (c *LogCheckpointer) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compactLocked()
}

func (c *LogCheckpointer) compactLocked() error {
	tmp, err := os.CreateTemp(c.dir, ".checkpoint-*.log")
	if err != nil {
		return fmt.Errorf("server: compact checkpoint log: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("server: compact checkpoint log: %w", err)
	}
	writeRec := func(rec logRecord) (int64, error) {
		payload, err := json.Marshal(rec)
		if err != nil {
			return 0, err
		}
		buf := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
		copy(buf[8:], payload)
		if _, err := tmp.Write(buf); err != nil {
			return 0, err
		}
		return int64(len(buf)), nil
	}
	ids := make([]uint64, 0, len(c.states))
	for id := range c.states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var size int64
	recBytes := make(map[uint64]int64, len(ids))
	for _, id := range ids {
		st := c.states[id]
		n, err := writeRec(logRecord{Op: "save", EpisodeID: id, State: &st})
		if err != nil {
			return fail(err)
		}
		recBytes[id] = n
		size += n
	}
	// Live tombstones are data, not garbage: compaction rewrites them so a
	// terminal decision stays replayable until its TTL eviction, not until
	// the next compaction.
	tombIDs := make([]uint64, 0, len(c.tombs))
	for id := range c.tombs {
		tombIDs = append(tombIDs, id)
	}
	sort.Slice(tombIDs, func(i, j int) bool { return tombIDs[i] < tombIDs[j] })
	tombRecBytes := make(map[uint64]int64, len(tombIDs))
	for _, id := range tombIDs {
		ts := c.tombs[id]
		n, err := writeRec(logRecord{Op: "tomb", EpisodeID: id, Tomb: &ts})
		if err != nil {
			return fail(err)
		}
		tombRecBytes[id] = n
		size += n
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("server: compact checkpoint log: %w", err)
	}
	if err := os.Rename(tmpName, c.path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("server: compact checkpoint log: %w", err)
	}
	old := c.f
	f, err := os.OpenFile(c.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: reopen compacted checkpoint log: %w", err)
	}
	_ = old.Close()
	c.f = f
	c.size = size
	c.liveBytes = size
	c.recBytes = recBytes
	c.tombRecBytes = tombRecBytes
	// Compaction rewrote the file; the corrupt records it carried are gone.
	c.corrupt = nil
	c.compactions++
	return nil
}

// Compactions returns how many compactions have run, for tests and metrics.
func (c *LogCheckpointer) Compactions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compactions
}

// Close releases the log file handle. Save/Delete after Close fail.
func (c *LogCheckpointer) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
