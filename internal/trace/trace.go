// Package trace provides structured, human-readable episode tracing: it
// wraps any recovery controller and logs every reset, decision, and
// observation — with state/action/observation names resolved against the
// model — to an io.Writer. Used by the examples and handy when debugging a
// recovery model.
package trace

import (
	"fmt"
	"io"
	"sync"

	"bpomdp/internal/controller"
	"bpomdp/internal/pomdp"
)

// Tracer renders controller activity. One Tracer may be shared by several
// traced controllers running in parallel (e.g. campaign workers): every
// write to W goes through an internal mutex, so lines never interleave
// mid-line and the writer itself need not be synchronized.
type Tracer struct {
	// W receives the trace lines.
	W io.Writer
	// Model resolves names; it must be the model the controller runs on.
	Model *pomdp.POMDP
	// ShowBelief includes the belief vector in decision lines.
	ShowBelief bool

	mu sync.Mutex // serializes writes to W
}

// printf emits one trace line under the write lock.
func (t *Tracer) printf(format string, args ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.W, format, args...)
}

// Wrap returns a Controller that forwards to ctrl while logging through t.
// The wrapper preserves StateAware: if ctrl reads the true state, so does
// the wrapper.
func Wrap(ctrl controller.Controller, t *Tracer) controller.Controller {
	return &traced{inner: ctrl, t: t}
}

type traced struct {
	inner controller.Controller
	t     *Tracer
	step  int
}

var (
	_ controller.Controller = (*traced)(nil)
	_ controller.StateAware = (*traced)(nil)
)

func (c *traced) Name() string { return c.inner.Name() }

func (c *traced) Reset(initial pomdp.Belief) error {
	c.step = 0
	err := c.inner.Reset(initial)
	if err != nil {
		c.t.printf("[%s] reset failed: %v\n", c.inner.Name(), err)
		return err
	}
	c.t.printf("[%s] reset%s\n", c.inner.Name(), c.beliefSuffix(initial))
	return nil
}

func (c *traced) Decide() (controller.Decision, error) {
	d, err := c.inner.Decide()
	if err != nil {
		c.t.printf("[%s] step %d: decide failed: %v\n", c.inner.Name(), c.step, err)
		return d, err
	}
	if d.Terminate {
		c.t.printf("[%s] step %d: TERMINATE (value %.3f)\n", c.inner.Name(), c.step, d.Value)
		return d, nil
	}
	c.t.printf("[%s] step %d: choose %s (value %.3f)%s\n",
		c.inner.Name(), c.step, c.t.Model.M.ActionName(d.Action), d.Value, c.beliefSuffix(c.inner.Belief()))
	return d, nil
}

func (c *traced) Observe(action, obs int) error {
	c.step++
	err := c.inner.Observe(action, obs)
	if err != nil {
		c.t.printf("[%s] step %d: observe %s after %s failed: %v\n",
			c.inner.Name(), c.step, c.t.Model.ObsName(obs), c.t.Model.M.ActionName(action), err)
		return err
	}
	c.t.printf("[%s] step %d: observed %s\n", c.inner.Name(), c.step, c.t.Model.ObsName(obs))
	return nil
}

func (c *traced) Belief() pomdp.Belief { return c.inner.Belief() }

// ObserveTrueState forwards the true state to state-aware controllers and
// logs it either way.
func (c *traced) ObserveTrueState(s int) {
	c.t.printf("[%s] step %d: true state is %s\n", c.inner.Name(), c.step, c.t.Model.M.StateName(s))
	if sa, ok := c.inner.(controller.StateAware); ok {
		sa.ObserveTrueState(s)
	}
}

func (c *traced) beliefSuffix(b pomdp.Belief) string {
	if !c.t.ShowBelief || b == nil {
		return ""
	}
	out := " belief={"
	first := true
	for s, p := range b {
		if p < 1e-4 {
			continue
		}
		if !first {
			out += ", "
		}
		out += fmt.Sprintf("%s:%.3f", c.t.Model.M.StateName(s), p)
		first = false
	}
	return out + "}"
}
