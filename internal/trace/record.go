package trace

import (
	"io"
	"sync"
	"sync/atomic"

	"bpomdp/internal/controller"
	"bpomdp/internal/obs"
	"bpomdp/internal/pomdp"
)

// Recorder is the structured counterpart of Tracer: it wraps controllers and
// emits one obs.DecisionRecord per decision as JSONL (schema
// obs.TraceSchema). When the wrapped controller implements
// controller.StatsSource with stats enabled, each record carries the full
// bound-gap explanation (V_B⁻, Property 1(b) slack, belief entropy, Max-Avg
// work counters, bound-set snapshot); otherwise it records just the decision
// itself.
//
// One Recorder may be shared by many wrapped controllers running in
// parallel: episode numbering is atomic and the underlying writer
// serializes, so each record lands as one intact line.
type Recorder struct {
	w     *obs.TraceWriter
	model *pomdp.POMDP // optional; resolves action names
	ep    atomic.Uint64

	mu  sync.Mutex
	err error // first write error, sticky
}

// NewRecorder builds a Recorder emitting JSONL to w. model may be nil; when
// present it resolves action names into the records.
func NewRecorder(w io.Writer, model *pomdp.POMDP) *Recorder {
	return &Recorder{w: obs.NewTraceWriter(w), model: model}
}

// Err returns the first error encountered while writing records, if any.
// Decision flow is never interrupted by trace-write failures; callers check
// Err after a run.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (r *Recorder) write(rec *obs.DecisionRecord) {
	if err := r.w.Write(rec); err != nil {
		r.mu.Lock()
		if r.err == nil {
			r.err = err
		}
		r.mu.Unlock()
	}
}

// Wrap returns a Controller forwarding to ctrl that records every decision.
// The wrapper preserves StateAware and, when ctrl collects decision stats,
// reads them through the StatsSource interface.
func (r *Recorder) Wrap(ctrl controller.Controller) controller.Controller {
	rec := &recorded{inner: ctrl, r: r}
	rec.stats, _ = ctrl.(controller.StatsSource)
	return rec
}

type recorded struct {
	inner controller.Controller
	stats controller.StatsSource // nil when inner has no stats
	r     *Recorder
	ep    uint64
	step  int
}

var (
	_ controller.Controller = (*recorded)(nil)
	_ controller.StateAware = (*recorded)(nil)
)

func (c *recorded) Name() string { return c.inner.Name() }

func (c *recorded) Reset(initial pomdp.Belief) error {
	c.ep = c.r.ep.Add(1)
	c.step = 0
	return c.inner.Reset(initial)
}

func (c *recorded) Decide() (controller.Decision, error) {
	d, err := c.inner.Decide()
	if err != nil {
		return d, err
	}
	rec := obs.DecisionRecord{
		Episode:   c.ep,
		Step:      c.step,
		Action:    d.Action,
		Terminate: d.Terminate,
		Value:     d.Value,
	}
	if c.stats != nil && c.stats.StatsEnabled() {
		st := c.stats.DecisionStats()
		rec.Action = st.Action
		rec.QValues = st.QValues
		rec.LeafBound = st.LeafBound
		rec.BoundGap = st.BoundGap
		rec.BeliefEntropy = st.BeliefEntropy
		rec.TreeNodes = st.TreeNodes
		rec.LeafEvals = st.LeafEvals
		rec.SlabPasses = st.SlabPasses
		rec.SetSize = st.SetSize
		rec.SetEvictions = st.SetEvictions
		rec.Tier = st.Tier
	}
	if c.r.model != nil && rec.Action >= 0 && rec.Action < c.r.model.NumActions() {
		rec.ActionName = c.r.model.M.ActionName(rec.Action)
	}
	c.r.write(&rec)
	return d, nil
}

func (c *recorded) Observe(action, o int) error {
	c.step++
	return c.inner.Observe(action, o)
}

func (c *recorded) Belief() pomdp.Belief { return c.inner.Belief() }

func (c *recorded) ObserveTrueState(s int) {
	if sa, ok := c.inner.(controller.StateAware); ok {
		sa.ObserveTrueState(s)
	}
}
