package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/models"
	"bpomdp/internal/obs"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/sim"
)

// recoveryFixture builds the two-server recovery model and a factory of
// independent bounded controllers (each over its own prepared bound set).
func recoveryFixture(t *testing.T, collectStats bool) (*core.RecoveryModel, func() (*controller.Bounded, pomdp.Belief)) {
	t.Helper()
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rm := &core.RecoveryModel{
		POMDP:           ts.Model,
		NullStates:      ts.NullStates,
		RateRewards:     ts.RateRewards,
		Durations:       []float64{1, 1, 0},
		MonitorAction:   ts.ActionObserve,
		MonitorDuration: 0.1,
	}
	mk := func() (*controller.Bounded, pomdp.Belief) {
		prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1, CollectStats: collectStats})
		if err != nil {
			t.Fatal(err)
		}
		initial, err := prep.InitialBelief()
		if err != nil {
			t.Fatal(err)
		}
		return ctrl, initial
	}
	return rm, mk
}

// syncBuffer is a goroutine-safe writer; the Tracer/TraceWriter mutexes
// already serialize whole lines, this only guards the underlying buffer.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTracerSharedAcrossWorkers runs one Tracer shared by the controllers
// of a Workers>1 campaign. Under -race this pins the Tracer's write lock:
// before the fix, concurrent fmt.Fprintf calls raced on W.
func TestTracerSharedAcrossWorkers(t *testing.T) {
	rm, mk := recoveryFixture(t, false)
	runner, err := sim.NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	var buf syncBuffer
	tracer := &Tracer{W: &buf, Model: rm.POMDP}
	factory := func() (controller.Controller, pomdp.Belief, error) {
		ctrl, initial := mk()
		return Wrap(ctrl, tracer), initial, nil
	}
	res, err := runner.RunCampaignOpts(nil, nil, []int{1, 2}, 24, rng.New(71), sim.CampaignOptions{
		Workers: 4, WorkerFactory: factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes != 24 {
		t.Fatalf("campaign ran %d episodes, want 24", res.Episodes)
	}
	out := buf.String()
	for _, want := range []string{"reset", "TERMINATE"} {
		if !strings.Contains(out, want) {
			t.Errorf("shared trace missing %q", want)
		}
	}
	// Every line must be intact: it starts with the controller tag, so a
	// torn write would leave a line starting elsewhere.
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "[bounded(") {
			t.Fatalf("line %d torn or interleaved: %q", i, line)
		}
	}
}

// TestRecorderStructuredCampaign drives a Workers>1 campaign of
// stats-collecting controllers through one shared Recorder and round-trips
// the JSONL: every record must carry the schema, a non-negative bound gap
// (Property 1(b)'s slack), live work counters, and a resolvable action name.
func TestRecorderStructuredCampaign(t *testing.T) {
	rm, mk := recoveryFixture(t, true)
	runner, err := sim.NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	var buf syncBuffer
	// The prepared model resolves the terminate action; use one instance.
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(&buf, prep.Model)
	factory := func() (controller.Controller, pomdp.Belief, error) {
		ctrl, initial := mk()
		return rec.Wrap(ctrl), initial, nil
	}
	const episodes = 16
	res, err := runner.RunCampaignOpts(nil, nil, []int{1, 2}, episodes, rng.New(73), sim.CampaignOptions{
		Workers: 2, WorkerFactory: factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("recorder write error: %v", err)
	}
	records, err := obs.DecodeTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no decision records emitted")
	}
	episodesSeen := map[uint64]bool{}
	terminates := 0
	for i, r := range records {
		episodesSeen[r.Episode] = true
		if r.Schema != obs.TraceSchema {
			t.Fatalf("record %d schema %q", i, r.Schema)
		}
		if r.BoundGap < -1e-9 {
			t.Errorf("record %d: negative bound gap %v", i, r.BoundGap)
		}
		if r.BeliefEntropy < 0 {
			t.Errorf("record %d: negative entropy %v", i, r.BeliefEntropy)
		}
		if r.TreeNodes == 0 && !r.Terminate {
			t.Errorf("record %d: expanding decision with zero tree nodes", i)
		}
		if r.Terminate {
			terminates++
		}
		if r.Action >= 0 && r.ActionName == "" {
			t.Errorf("record %d: action %d unresolved", i, r.Action)
		}
		if len(r.QValues) != prep.Model.NumActions() {
			t.Errorf("record %d: %d Q-values, want %d", i, len(r.QValues), prep.Model.NumActions())
		}
	}
	if len(episodesSeen) != episodes {
		t.Errorf("records span %d episodes, want %d", len(episodesSeen), episodes)
	}
	if terminates != res.Episodes {
		t.Errorf("%d terminate records for %d completed episodes", terminates, res.Episodes)
	}
}
