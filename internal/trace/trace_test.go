package trace

import (
	"strings"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
)

func fixture(t *testing.T) (*pomdp.POMDP, controller.Controller) {
	t.Helper()
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.NewMostLikely(ts.Model, controller.MostLikelyConfig{
		NullStates:             ts.NullStates,
		TerminationProbability: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ts.Model, ctrl
}

func TestWrapLogsLifecycle(t *testing.T) {
	model, ctrl := fixture(t)
	var buf strings.Builder
	traced := Wrap(ctrl, &Tracer{W: &buf, Model: model, ShowBelief: true})

	if err := traced.Reset(pomdp.UniformBelief(3)); err != nil {
		t.Fatal(err)
	}
	d, err := traced.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if d.Terminate {
		t.Fatal("unexpected terminate")
	}
	if err := traced.Observe(d.Action, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"reset", "choose", "observed", "belief={", "most-likely"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if traced.Name() != ctrl.Name() {
		t.Errorf("Name = %q", traced.Name())
	}
	if b := traced.Belief(); !b.IsDistribution() {
		t.Errorf("Belief passthrough broken: %v", b)
	}
}

func TestWrapLogsTerminate(t *testing.T) {
	model, ctrl := fixture(t)
	var buf strings.Builder
	traced := Wrap(ctrl, &Tracer{W: &buf, Model: model})
	if err := traced.Reset(pomdp.PointBelief(3, 0)); err != nil {
		t.Fatal(err)
	}
	d, err := traced.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Terminate {
		t.Fatal("expected terminate from certain-null belief")
	}
	if !strings.Contains(buf.String(), "TERMINATE") {
		t.Errorf("terminate not logged:\n%s", buf.String())
	}
}

func TestWrapPropagatesErrors(t *testing.T) {
	model, ctrl := fixture(t)
	var buf strings.Builder
	traced := Wrap(ctrl, &Tracer{W: &buf, Model: model})
	// Decide before Reset must fail and be logged.
	if _, err := traced.Decide(); err == nil {
		t.Error("Decide before Reset accepted")
	}
	if err := traced.Reset(pomdp.Belief{9}); err == nil {
		t.Error("bad belief accepted")
	}
	if !strings.Contains(buf.String(), "failed") {
		t.Errorf("errors not logged:\n%s", buf.String())
	}
}

func TestWrapForwardsTrueState(t *testing.T) {
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := controller.NewOracle(ts.Model, ts.NullStates)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	traced := Wrap(oracle, &Tracer{W: &buf, Model: ts.Model})
	if err := traced.Reset(nil); err != nil {
		t.Fatal(err)
	}
	sa, ok := traced.(controller.StateAware)
	if !ok {
		t.Fatal("wrapper lost StateAware")
	}
	sa.ObserveTrueState(ts.StateFaultA)
	d, err := traced.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if d.Terminate || d.Action != ts.ActionRestartA {
		t.Errorf("oracle through wrapper chose %+v", d)
	}
	if !strings.Contains(buf.String(), "true state is fault-a") {
		t.Errorf("true state not logged:\n%s", buf.String())
	}
}
