package chaos_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"bpomdp/internal/chaos"
	"bpomdp/internal/client"
	"bpomdp/internal/controller"
	"bpomdp/internal/obs"
	"bpomdp/internal/rng"
	"bpomdp/internal/server"
	"bpomdp/internal/sim"
	"bpomdp/internal/tracestats"
)

// TestFleetChaosSpanStreamIntegrity is the distributed-tracing acceptance
// test: a 3-member span-enabled fleet runs a campaign through a span-enabled
// client, one member is SIGKILLed while serving a live episode, and the span
// files left behind — the killed member's truncated stream included — must
// stitch into one causally connected timeline per episode:
//
//   - zero orphaned edges anywhere: every redirect points at a span on its
//     target, every adoption at an earlier span on its source, every
//     successful replication at an accept on the successor;
//   - the killed episode's timeline crosses nodes and records the handoff
//     (a client failover plus an adoption edge from the corpse);
//   - per-episode latency attribution is complete: the decide / checkpoint /
//     redirect / retry-backoff / network buckets sum to the episode's
//     client-observed wall-clock within 5%.
func TestFleetChaosSpanStreamIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet chaos campaign is slow; skipped with -short")
	}
	prep, factory, runner := twoServerFleetPrep(t)
	faults := []int{1, 2}
	const episodes = 20
	const campaignSeed = 97
	const killDuringEpisode = 7

	spanDir := t.TempDir()
	f, err := chaos.NewFleet([]string{"n1", "n2", "n3"}, t.TempDir(),
		server.Config{Model: prep.Model, NewController: factory},
		chaos.FleetOptions{VNodes: 16, StoreKind: "log", SpanDir: spanDir})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	clientSpans, err := os.Create(filepath.Join(spanDir, "client.spans"))
	if err != nil {
		t.Fatal(err)
	}
	defer clientSpans.Close()
	fc, err := client.NewFleetClient(f.Members(), 16, nil,
		client.WithSpans(obs.NewSpanWriter(clientSpans), "client"),
		client.WithRetryPolicy(client.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
			Budget:      5 * time.Second,
		}))
	if err != nil {
		t.Fatal(err)
	}

	killFired := false
	adopted := 0
	var killedKey string
	remote, err := runner.RunCampaignOpts(nil, nil, faults, episodes, rng.New(campaignSeed), sim.CampaignOptions{
		Workers:         1,
		ContinueOnError: true,
		EpisodeFactory: func(episode int) (controller.Controller, func(error), error) {
			ep, err := fc.StartEpisode()
			if err != nil {
				return nil, nil, err
			}
			if episode == killDuringEpisode {
				killedKey = ep.Key()
			}
			k := &killerEpisode{
				FleetEpisode: ep,
				f:            f,
				fired:        &killFired,
				adopted:      &adopted,
				armed:        episode == killDuringEpisode,
				afterSteps:   2,
			}
			cleanup := func(err error) {
				if err != nil {
					_ = ep.Abandon()
				}
			}
			return k, cleanup, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !killFired {
		t.Fatal("the kill never fired; the campaign was not chaotic")
	}
	if remote.Abandoned != 0 {
		t.Fatalf("%d episodes abandoned, want 0 — span assertions need a clean campaign", remote.Abandoned)
	}

	// Drain background work (tombstone replication) before reading the
	// files, as a real operator would stop the survivors before collecting.
	for _, n := range f.Survivors() {
		if err := n.Srv.Close(); err != nil {
			t.Errorf("closing survivor %s: %v", n.ID, err)
		}
	}

	paths := append(f.SpanFiles(), clientSpans.Name())
	if len(paths) != 4 {
		t.Fatalf("%d span files, want 4 (3 nodes + client)", len(paths))
	}
	spans, err := tracestats.Load(paths...)
	if err != nil {
		t.Fatal(err)
	}
	tls := tracestats.Stitch(spans)
	if len(tls) != episodes {
		t.Fatalf("stitched %d episodes, want %d", len(tls), episodes)
	}

	var killed *tracestats.Timeline
	for _, tl := range tls {
		// Causal connectivity: no orphaned redirect/adoption/replication
		// edges anywhere, kill or no kill.
		for _, o := range tl.Orphans {
			t.Errorf("episode %s: orphaned edge: %s", tl.TraceID, o)
		}
		// Attribution completeness: the buckets must reconstruct the
		// episode's client-observed wall-clock within 5%.
		wall, acc := tl.WallNanos, tl.Buckets.AccountedNanos()
		if wall <= 0 {
			t.Errorf("episode %s: non-positive wall %d", tl.TraceID, wall)
			continue
		}
		diff := wall - acc
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.05*float64(wall) {
			t.Errorf("episode %s: buckets account for %d of %d wall nanos (off by %.1f%%)\n%+v",
				tl.TraceID, acc, wall, 100*float64(diff)/float64(wall), tl.Buckets)
		}
		if tl.TraceID == killedKey {
			killed = tl
		}
	}
	if killed == nil {
		t.Fatalf("killed episode %s not in the stitched timelines", killedKey)
	}

	// The handoff must be visible in the killed episode's own timeline: the
	// episode touched more than one node, the client recorded a failover,
	// and a survivor recorded adopting it from the corpse.
	if len(killed.Nodes) < 2 {
		t.Errorf("killed episode touched nodes %v, want >= 2", killed.Nodes)
	}
	if killed.Failovers < 1 {
		t.Errorf("killed episode has %d failover spans, want >= 1", killed.Failovers)
	}
	adoptedEdge := false
	for _, sp := range killed.Spans {
		if sp.Kind == obs.SpanServerAdopt && sp.Source != "" {
			adoptedEdge = true
		}
	}
	if !adoptedEdge {
		t.Error("killed episode has no adoption span naming its source")
	}

	s := tracestats.Summarize(tls)
	if s.CrossNode < 1 {
		t.Errorf("summary reports %d cross-node episodes, want >= 1", s.CrossNode)
	}
	if s.Orphans != 0 {
		t.Errorf("summary reports %d orphans, want 0", s.Orphans)
	}
	t.Logf("span integrity: %d episodes, %d spans, %d cross-node, wall p95 %v\n%s",
		s.Episodes, s.Spans, s.CrossNode, time.Duration(s.WallP95Nanos), killed.Render())
}
