package chaos_test

import (
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bpomdp/internal/chaos"
	"bpomdp/internal/client"
	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/server"
	"bpomdp/internal/sim"
)

// TestChaosEpisodesMatchBaseline is the headline acceptance test for the
// chaos harness: a full fault-injection campaign driven through the HTTP
// client over a transport that drops 20% of requests, injects 10% 5xx,
// resets a few connections, duplicates some requests, and delays at random
// must produce exactly the per-fault mean cost of the same campaign run
// against a local in-process controller — and abandon zero episodes.
//
// Exact (not statistical) equality is the point: the controllers are
// deterministic given the shared bound set, campaign fault draws and
// observation sampling come from seeded streams, and the client/server
// idempotency protocol (clientKey, per-step decision cache, stepIndex
// dedupe, terminal tombstones) makes every retry invisible to episode
// state. Any divergence means a retry leaked into the trajectory.
func TestChaosEpisodesMatchBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign is slow; skipped with -short")
	}
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rm := &core.RecoveryModel{
		POMDP:           ts.Model,
		NullStates:      ts.NullStates,
		RateRewards:     ts.RateRewards,
		Durations:       []float64{1, 1, 0},
		MonitorAction:   ts.ActionObserve,
		MonitorDuration: 0.1,
	}
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 1, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	factory := func() (controller.Controller, pomdp.Belief, error) {
		ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1})
		if err != nil {
			return nil, nil, err
		}
		initial, err := prep.InitialBelief()
		return ctrl, initial, err
	}
	runner, err := sim.NewRunner(rm, 200)
	if err != nil {
		t.Fatal(err)
	}
	faults := []int{1, 2}
	const episodes = 20
	const campaignSeed = 97

	// Baseline: the same campaign seeds against a local controller.
	ctrl, initial, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := runner.RunCampaign(ctrl, initial, faults, episodes, rng.New(campaignSeed))
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Recovered != baseline.Episodes {
		t.Fatalf("baseline failed to recover: %d/%d", baseline.Recovered, baseline.Episodes)
	}

	// Chaotic remote: same model, same bound set, hostile transport.
	srv, err := server.New(server.Config{Model: prep.Model, NewController: factory})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	tr, err := chaos.NewTransport(hs.Client().Transport, chaos.Config{
		DropProb:  0.20,
		ErrorProb: 0.10,
		ResetProb: 0.03,
		DupProb:   0.05,
		MaxDelay:  2 * time.Millisecond,
	}, rng.New(1234).Split("chaos"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.New(hs.URL, &http.Client{Transport: tr}, client.WithRetryPolicy(client.RetryPolicy{
		MaxAttempts: 12,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		Budget:      10 * time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := runner.RunCampaignOpts(nil, nil, faults, episodes, rng.New(campaignSeed), sim.CampaignOptions{
		// Workers is pinned to 1: the exact-equality comparison against the
		// sequential baseline needs the sequential fold order, and Workers: 0
		// would auto-tune to GOMAXPROCS because an EpisodeFactory is set.
		Workers:         1,
		ContinueOnError: true,
		EpisodeFactory: func(int) (controller.Controller, func(error), error) {
			ep, err := c.StartEpisode()
			if err != nil {
				return nil, nil, err
			}
			cleanup := func(err error) {
				if err != nil {
					_ = ep.Abandon()
				}
			}
			return ep, cleanup, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if remote.Abandoned != 0 {
		t.Errorf("%d episodes abandoned under chaos, want 0", remote.Abandoned)
	}
	if remote.Episodes != baseline.Episodes || remote.Recovered != baseline.Recovered {
		t.Errorf("chaotic campaign completed %d/%d recovered, baseline %d/%d",
			remote.Recovered, remote.Episodes, baseline.Recovered, baseline.Episodes)
	}
	if diff := math.Abs(remote.Cost.Mean() - baseline.Cost.Mean()); diff > 1e-9 {
		t.Errorf("mean cost diverged by %g: chaotic %v vs baseline %v",
			diff, remote.Cost.Mean(), baseline.Cost.Mean())
	}
	if diff := math.Abs(remote.ResidualTime.Mean() - baseline.ResidualTime.Mean()); diff > 1e-9 {
		t.Errorf("mean residual time diverged by %g", diff)
	}

	// The campaign must actually have been hostile, or the test proves
	// nothing: every configured fault class (bar rare duplicates) must fire.
	cnt := &tr.Counters
	t.Logf("chaos: %d requests, %d dropped, %d injected 5xx, %d resets, %d dups, %d delayed",
		cnt.Requests.Load(), cnt.Dropped.Load(), cnt.Errors.Load(),
		cnt.Resets.Load(), cnt.Duplicate.Load(), cnt.Delayed.Load())
	if cnt.Requests.Load() < 100 {
		t.Errorf("only %d requests traversed the chaos transport", cnt.Requests.Load())
	}
	if cnt.Dropped.Load() == 0 || cnt.Errors.Load() == 0 || cnt.Delayed.Load() == 0 {
		t.Error("a configured fault class never fired; the campaign was not chaotic")
	}
}
