package chaos

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"bpomdp/internal/fleet"
	"bpomdp/internal/server"
)

// Fleet is an in-process recovery fleet under chaos control: N recoverd
// servers with independent membership views and per-member checkpoint
// stores under one shared root, each behind a real TCP listener. Its one
// fault primitive is Kill — a SIGKILL-equivalent node drop that severs live
// connections, stops the listener, and flips every survivor's membership
// view so the corpse's key range is adopted immediately. Nothing about the
// dead process is shut down gracefully; recovery must come entirely from
// the fsynced checkpoints it left behind.
type Fleet struct {
	root    string
	members []fleet.Member

	mu    sync.Mutex
	nodes map[string]*FleetNode
}

// FleetNode is one member of a chaos fleet.
type FleetNode struct {
	ID   string
	Srv  *server.Server
	HS   *httptest.Server
	View *fleet.Membership

	killed   bool
	spanFile *os.File
}

// FleetOptions tunes fleet construction.
type FleetOptions struct {
	// VNodes is the virtual-node count per member (0 means
	// fleet.DefaultVirtualNodes). Every node and every client must agree.
	VNodes int
	// StoreKind selects the per-member checkpoint store, as accepted by
	// server.OpenCheckpointStore ("" or "dir" for one-file-per-episode,
	// "log" for the append-only log).
	StoreKind string
	// SpanDir, when set, turns on distributed episode tracing: member <id>
	// writes its bpomdp.span/v1 stream to SpanDir/<id>.spans. A killed
	// member's file keeps whatever it managed to write — exactly what a
	// SIGKILLed process leaves behind — and SpanFiles lists every path for
	// stitching.
	SpanDir string
}

// NewFleet builds and starts a fleet with the given member IDs. Each node
// gets a store at root/<id>, an independent membership view, and a server
// built from base with the Checkpointer, Fleet, and EpisodeIDBase fields
// filled in per member; every other base field (Model, NewController, ...)
// is shared. Listeners are created before any server so the member
// addresses are real from the start.
func NewFleet(ids []string, root string, base server.Config, opts FleetOptions) (*Fleet, error) {
	if len(ids) < 2 {
		return nil, fmt.Errorf("chaos: fleet needs at least 2 members, got %d", len(ids))
	}
	f := &Fleet{root: root, nodes: make(map[string]*FleetNode, len(ids))}
	storeFor := func(id string) (server.Checkpointer, error) {
		return server.OpenCheckpointStore(opts.StoreKind, filepath.Join(root, id))
	}
	for _, id := range ids {
		if _, dup := f.nodes[id]; dup {
			return nil, fmt.Errorf("chaos: duplicate member id %q", id)
		}
		f.nodes[id] = &FleetNode{ID: id, HS: httptest.NewUnstartedServer(nil)}
		f.members = append(f.members, fleet.Member{ID: id})
	}
	for i := range f.members {
		f.members[i].Addr = "http://" + f.nodes[f.members[i].ID].HS.Listener.Addr().String()
	}
	for _, id := range ids {
		view, err := fleet.NewMembership(f.members, opts.VNodes)
		if err != nil {
			f.Close()
			return nil, err
		}
		own, err := storeFor(id)
		if err != nil {
			f.Close()
			return nil, err
		}
		cfg := base
		cfg.Checkpointer = own
		cfg.Fleet = &server.FleetConfig{Self: id, Membership: view, StoreFor: storeFor}
		n := f.nodes[id]
		if opts.SpanDir != "" {
			sf, err := os.Create(filepath.Join(opts.SpanDir, id+".spans"))
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("chaos: member %q span file: %w", id, err)
			}
			n.spanFile = sf
			cfg.SpanTrace = sf
			cfg.Node = id
		}
		srv, err := server.New(cfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("chaos: member %q: %w", id, err)
		}
		n.Srv, n.View = srv, view
		n.HS.Config.Handler = srv
		n.HS.Start()
	}
	return f, nil
}

// Members returns the fleet's member list (id + base URL), in construction
// order — the list a FleetClient should be built from.
func (f *Fleet) Members() []fleet.Member {
	out := make([]fleet.Member, len(f.members))
	copy(out, f.members)
	return out
}

// Node returns the named member, or nil.
func (f *Fleet) Node(id string) *FleetNode {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodes[id]
}

// Root returns the shared checkpoint root (per-member stores live at
// Root()/<id>).
func (f *Fleet) Root() string { return f.root }

// SpanFiles returns every member's span-file path in construction order, or
// nil when the fleet was built without FleetOptions.SpanDir. Killed members'
// files are included — their spans are half of any cross-node story.
func (f *Fleet) SpanFiles() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for _, m := range f.members {
		if n := f.nodes[m.ID]; n != nil && n.spanFile != nil {
			out = append(out, n.spanFile.Name())
		}
	}
	return out
}

// Kill drops the named member as a SIGKILL would: in-flight connections are
// severed mid-stream, the listener stops accepting, and no shutdown hook
// runs. Every survivor's membership view is then flipped, triggering eager
// adoption of the dead member's episodes from its checkpoint store. Returns
// the total number of episodes survivors adopted.
func (f *Fleet) Kill(id string) (int, error) {
	f.mu.Lock()
	n, ok := f.nodes[id]
	if !ok {
		f.mu.Unlock()
		return 0, fmt.Errorf("chaos: unknown member %q", id)
	}
	if n.killed {
		f.mu.Unlock()
		return 0, fmt.Errorf("chaos: member %q already killed", id)
	}
	n.killed = true
	survivors := f.liveLocked(id)
	f.mu.Unlock()

	n.HS.CloseClientConnections()
	n.HS.Close()

	adopted := 0
	var firstErr error
	for _, s := range survivors {
		got, err := s.Srv.MarkMemberDown(id)
		adopted += got
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("chaos: survivor %q: %w", s.ID, err)
		}
	}
	return adopted, firstErr
}

// Survivors returns the live members, sorted by id.
func (f *Fleet) Survivors() []*FleetNode {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.liveLocked("")
}

func (f *Fleet) liveLocked(except string) []*FleetNode {
	var out []*FleetNode
	for id, n := range f.nodes {
		if id != except && !n.killed {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DecisionBytes fetches an episode's decision straight from one member, no
// redirects followed, and returns the raw status and body bytes. Chaos tests
// use it to pin down byte-identical replay of a terminal decision across an
// owner kill — the FleetClient would decode and re-encode, hiding encoding
// drift.
func (f *Fleet) DecisionBytes(memberID string, episodeID uint64, key string) (int, []byte, error) {
	n := f.Node(memberID)
	if n == nil {
		return 0, nil, fmt.Errorf("chaos: unknown member %q", memberID)
	}
	c := &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/episodes/%d/decision", n.HS.URL, episodeID), nil)
	if err != nil {
		return 0, nil, err
	}
	if key != "" {
		req.Header.Set(server.HeaderEpisodeKey, key)
	}
	resp, err := c.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// OpenEpisodes sums open episodes across live members.
func (f *Fleet) OpenEpisodes() int {
	total := 0
	for _, n := range f.Survivors() {
		total += n.Srv.OpenEpisodes()
	}
	return total
}

// Close stops every still-live member and closes their span files.
func (f *Fleet) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.nodes {
		if !n.killed && n.HS != nil {
			n.killed = true
			n.HS.Close()
		}
		if n.spanFile != nil {
			_ = n.spanFile.Close()
			n.spanFile = nil
		}
	}
}
