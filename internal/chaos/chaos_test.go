package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bpomdp/internal/rng"
)

func countingServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if r.Body != nil {
			_, _ = io.Copy(io.Discard, r.Body)
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	t.Cleanup(hs.Close)
	return hs, &hits
}

func clientWith(t *testing.T, hs *httptest.Server, cfg Config) (*http.Client, *Transport) {
	t.Helper()
	tr, err := NewTransport(hs.Client().Transport, cfg, rng.New(11).Split("chaos"))
	if err != nil {
		t.Fatal(err)
	}
	return &http.Client{Transport: tr}, tr
}

func TestConfigValidation(t *testing.T) {
	stream := rng.New(1)
	if _, err := NewTransport(nil, Config{DropProb: 1.5}, stream); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := NewTransport(nil, Config{MaxDelay: -time.Second}, stream); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := NewTransport(nil, Config{}, nil); err == nil {
		t.Error("nil stream accepted")
	}
	if _, _, err := Middleware(nil, Config{ErrorProb: -1}, stream); err == nil {
		t.Error("middleware negative probability accepted")
	}
}

func TestTransportDrop(t *testing.T) {
	hs, hits := countingServer(t)
	hc, tr := clientWith(t, hs, Config{DropProb: 1})
	_, err := hc.Get(hs.URL)
	if err == nil {
		t.Fatal("dropped request succeeded")
	}
	if !strings.Contains(err.Error(), "injected drop") {
		t.Errorf("drop error %v", err)
	}
	if hits.Load() != 0 {
		t.Errorf("dropped request reached the server %d times", hits.Load())
	}
	if tr.Counters.Dropped.Load() != 1 {
		t.Errorf("drop counter %d", tr.Counters.Dropped.Load())
	}
}

func TestTransportInjects503(t *testing.T) {
	hs, hits := countingServer(t)
	hc, tr := clientWith(t, hs, Config{ErrorProb: 1})
	resp, err := hc.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "injected 503") {
		t.Errorf("body %q", body)
	}
	if hits.Load() != 0 {
		t.Errorf("injected 503 still reached the server %d times", hits.Load())
	}
	if tr.Counters.Errors.Load() != 1 {
		t.Errorf("error counter %d", tr.Counters.Errors.Load())
	}
}

func TestTransportReset(t *testing.T) {
	hs, hits := countingServer(t)
	hc, tr := clientWith(t, hs, Config{ResetProb: 1})
	_, err := hc.Get(hs.URL)
	if err == nil {
		t.Fatal("reset request succeeded")
	}
	if hits.Load() != 1 {
		t.Errorf("reset request reached the server %d times, want 1 (processed, response lost)", hits.Load())
	}
	if tr.Counters.Resets.Load() != 1 {
		t.Errorf("reset counter %d", tr.Counters.Resets.Load())
	}
}

func TestTransportDuplicate(t *testing.T) {
	hs, hits := countingServer(t)
	hc, tr := clientWith(t, hs, Config{DupProb: 1})
	resp, err := hc.Post(hs.URL, "application/json", strings.NewReader(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
	if hits.Load() != 2 {
		t.Errorf("duplicated request reached the server %d times, want 2", hits.Load())
	}
	if tr.Counters.Duplicate.Load() != 1 {
		t.Errorf("dup counter %d", tr.Counters.Duplicate.Load())
	}
}

func TestTransportDelayCounted(t *testing.T) {
	hs, _ := countingServer(t)
	hc, tr := clientWith(t, hs, Config{MaxDelay: time.Millisecond})
	for i := 0; i < 5; i++ {
		resp, err := hc.Get(hs.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if tr.Counters.Requests.Load() != 5 {
		t.Errorf("request counter %d", tr.Counters.Requests.Load())
	}
	if tr.Counters.Delayed.Load() == 0 {
		t.Error("no delays recorded with MaxDelay set")
	}
}

func TestMiddlewareInjects500(t *testing.T) {
	var hits atomic.Int64
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	})
	h, counters, err := Middleware(inner, Config{ErrorProb: 1}, rng.New(5).Split("mw"))
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(h)
	defer hs.Close()
	resp, err := http.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d", resp.StatusCode)
	}
	if hits.Load() != 0 {
		t.Errorf("failed request reached the handler %d times", hits.Load())
	}
	if counters.Errors.Load() != 1 {
		t.Errorf("error counter %d", counters.Errors.Load())
	}
}

func TestTransportDeterministicPerSeed(t *testing.T) {
	hs, _ := countingServer(t)
	outcomes := func() []bool {
		hc, _ := clientWith(t, hs, Config{DropProb: 0.5})
		var out []bool
		for i := 0; i < 32; i++ {
			resp, err := hc.Get(hs.URL)
			if err == nil {
				resp.Body.Close()
			}
			out = append(out, err == nil)
		}
		return out
	}
	a, b := outcomes(), outcomes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chaos schedule not reproducible at request %d", i)
		}
	}
}
