package chaos_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"

	"bpomdp/internal/chaos"
	"bpomdp/internal/client"
	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/server"
	"bpomdp/internal/sim"
)

// killerEpisode wraps a FleetEpisode and, on the armed episode after a few
// applied observations, SIGKILLs whichever fleet member is serving it. The
// controller interface is otherwise passed through untouched, so the
// campaign engine cannot tell a handoff happened.
type killerEpisode struct {
	*client.FleetEpisode
	f          *chaos.Fleet
	fired      *bool
	adopted    *int
	armed      bool
	afterSteps int
	steps      int
}

func (k *killerEpisode) Observe(action, obs int) error {
	if err := k.FleetEpisode.Observe(action, obs); err != nil {
		return err
	}
	k.steps++
	if k.armed && !*k.fired && k.steps >= k.afterSteps {
		*k.fired = true
		n, err := k.f.Kill(k.FleetEpisode.Owner())
		if err != nil {
			return err
		}
		*k.adopted = n
	}
	return nil
}

// twoServerFleetPrep builds the shared two-server recovery model for the
// fleet chaos campaigns: prepared + bootstrapped model, a controller
// factory, and a campaign runner.
func twoServerFleetPrep(t *testing.T) (*core.Prepared, func() (controller.Controller, pomdp.Belief, error), *sim.Runner) {
	t.Helper()
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rm := &core.RecoveryModel{
		POMDP:           ts.Model,
		NullStates:      ts.NullStates,
		RateRewards:     ts.RateRewards,
		Durations:       []float64{1, 1, 0},
		MonitorAction:   ts.ActionObserve,
		MonitorDuration: 0.1,
	}
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 1, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	factory := func() (controller.Controller, pomdp.Belief, error) {
		ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1})
		if err != nil {
			return nil, nil, err
		}
		initial, err := prep.InitialBelief()
		return ctrl, initial, err
	}
	runner, err := sim.NewRunner(rm, 200)
	if err != nil {
		t.Fatal(err)
	}
	return prep, factory, runner
}

// TestFleetChaosZeroAbandonedEpisodes is the fleet acceptance test: a
// 3-member fleet runs a full campaign through the coordinator-free
// FleetClient, one member is SIGKILL-dropped while it is serving a live
// episode, and the campaign must still finish with zero abandoned episodes
// and the exact per-fault mean cost of the same campaign against a local
// in-process controller. The fleet uses the append-only log checkpoint
// store, so the handoff replays from fsynced log records, not from any
// in-memory state of the dead node.
func TestFleetChaosZeroAbandonedEpisodes(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet chaos campaign is slow; skipped with -short")
	}
	prep, factory, runner := twoServerFleetPrep(t)
	faults := []int{1, 2}
	const episodes = 20
	const campaignSeed = 97
	const killDuringEpisode = 7

	// Baseline: the same campaign seeds against a local controller.
	ctrl, initial, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := runner.RunCampaign(ctrl, initial, faults, episodes, rng.New(campaignSeed))
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Recovered != baseline.Episodes {
		t.Fatalf("baseline failed to recover: %d/%d", baseline.Recovered, baseline.Episodes)
	}

	f, err := chaos.NewFleet([]string{"n1", "n2", "n3"}, t.TempDir(),
		server.Config{Model: prep.Model, NewController: factory},
		chaos.FleetOptions{VNodes: 16, StoreKind: "log"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fc, err := client.NewFleetClient(f.Members(), 16, nil, client.WithRetryPolicy(client.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Budget:      5 * time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}

	killFired := false
	adopted := 0
	remote, err := runner.RunCampaignOpts(nil, nil, faults, episodes, rng.New(campaignSeed), sim.CampaignOptions{
		// Workers pinned to 1: exact equality against the sequential baseline
		// needs the sequential fold order.
		Workers:         1,
		ContinueOnError: true,
		EpisodeFactory: func(episode int) (controller.Controller, func(error), error) {
			ep, err := fc.StartEpisode()
			if err != nil {
				return nil, nil, err
			}
			k := &killerEpisode{
				FleetEpisode: ep,
				f:            f,
				fired:        &killFired,
				adopted:      &adopted,
				armed:        episode == killDuringEpisode,
				afterSteps:   2,
			}
			cleanup := func(err error) {
				if err != nil {
					_ = ep.Abandon()
				}
			}
			return k, cleanup, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if !killFired {
		t.Fatal("the kill never fired; the campaign was not chaotic")
	}
	if adopted < 1 {
		t.Errorf("survivors adopted %d episodes at kill time, want >= 1 (the live episode)", adopted)
	}
	if remote.Abandoned != 0 {
		t.Errorf("%d episodes abandoned across the node kill, want 0", remote.Abandoned)
	}
	if remote.Episodes != baseline.Episodes || remote.Recovered != baseline.Recovered {
		t.Errorf("fleet campaign completed %d/%d recovered, baseline %d/%d",
			remote.Recovered, remote.Episodes, baseline.Recovered, baseline.Episodes)
	}
	if diff := math.Abs(remote.Cost.Mean() - baseline.Cost.Mean()); diff > 1e-9 {
		t.Errorf("mean cost diverged by %g: fleet %v vs baseline %v",
			diff, remote.Cost.Mean(), baseline.Cost.Mean())
	}
	if diff := math.Abs(remote.ResidualTime.Mean() - baseline.ResidualTime.Mean()); diff > 1e-9 {
		t.Errorf("mean residual time diverged by %g", diff)
	}
	// Every episode terminated, so nothing is left open — or checkpointed —
	// anywhere in the fleet.
	if open := f.OpenEpisodes(); open != 0 {
		t.Errorf("%d episodes still open across survivors", open)
	}
	if len(f.Survivors()) != 2 {
		t.Errorf("%d survivors, want 2", len(f.Survivors()))
	}
	t.Logf("fleet chaos: kill fired during episode %d, %d adoption(s), mean cost %v",
		killDuringEpisode, adopted, remote.Cost.Mean())
}

// lostFinalEpisode wraps a FleetEpisode to stage the lost-final-decision
// window: on the armed episode it peeks at each decision over a raw,
// redirect-free GET — exactly what the owner sends on the wire — and the
// moment that decision is terminal (so the owner has already tombstoned the
// episode and deleted its checkpoint) it SIGKILLs the owner before the
// wrapped client ever sees the response. The client's own Decide then has to
// recover the decision from the survivors.
type lostFinalEpisode struct {
	*client.FleetEpisode
	t     *testing.T
	f     *chaos.Fleet
	armed bool
	fired *bool
	// lost is the terminal decision as served by the original owner; replay
	// is the same decision re-fetched raw from the new owner after failover.
	lost, replay *[]byte
}

func (l *lostFinalEpisode) Decide() (controller.Decision, error) {
	if l.armed && !*l.fired {
		status, body, err := l.f.DecisionBytes(l.Owner(), l.ID(), l.Key())
		if err != nil {
			return controller.Decision{}, err
		}
		if status == http.StatusOK {
			var d server.DecisionResponse
			if err := json.Unmarshal(body, &d); err != nil {
				return controller.Decision{}, err
			}
			if d.Terminate {
				// The owner just checkpointed the tombstone and deleted the
				// episode; this response is now "lost in transit".
				*l.fired = true
				*l.lost = body
				if _, err := l.f.Kill(l.Owner()); err != nil {
					return controller.Decision{}, err
				}
			}
		}
	}
	d, err := l.FleetEpisode.Decide()
	if err == nil && l.armed && *l.fired && *l.replay == nil {
		// The client recovered a decision from the fleet; pin down what the
		// new owner actually serves for the same episode id.
		status, body, rerr := l.f.DecisionBytes(l.Owner(), l.ID(), l.Key())
		if rerr != nil {
			return d, rerr
		}
		if status != http.StatusOK {
			l.t.Errorf("retried final GET on new owner %q: status %d (body %s), want 200", l.Owner(), status, body)
		}
		*l.replay = body
	}
	return d, err
}

// TestFleetChaosTerminalDecisionSurvivesOwnerKill closes the loop on the
// lost-final-decision window: a 3-member fleet runs a campaign, and on one
// episode the serving member is SIGKILLed at the worst possible instant —
// after the terminal decision was computed, tombstoned, and the episode
// deleted, but before the client received the response. The client's retried
// GET must fail over and replay the original terminal decision from the
// replicated/adopted tombstone — byte-identical, same episode id, not a 409
// and not a fresh episode — and the campaign must still finish with zero
// abandoned episodes and exact mean-cost parity against the local baseline.
func TestFleetChaosTerminalDecisionSurvivesOwnerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet chaos campaign is slow; skipped with -short")
	}
	prep, factory, runner := twoServerFleetPrep(t)
	faults := []int{1, 2}
	const episodes = 20
	const campaignSeed = 97
	const killDuringEpisode = 7

	ctrl, initial, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := runner.RunCampaign(ctrl, initial, faults, episodes, rng.New(campaignSeed))
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Recovered != baseline.Episodes {
		t.Fatalf("baseline failed to recover: %d/%d", baseline.Recovered, baseline.Episodes)
	}

	f, err := chaos.NewFleet([]string{"n1", "n2", "n3"}, t.TempDir(),
		server.Config{Model: prep.Model, NewController: factory},
		chaos.FleetOptions{VNodes: 16, StoreKind: "log"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fc, err := client.NewFleetClient(f.Members(), 16, nil, client.WithRetryPolicy(client.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Budget:      5 * time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}

	killFired := false
	var lost, replay []byte
	var lostID uint64
	remote, err := runner.RunCampaignOpts(nil, nil, faults, episodes, rng.New(campaignSeed), sim.CampaignOptions{
		Workers:         1,
		ContinueOnError: true,
		EpisodeFactory: func(episode int) (controller.Controller, func(error), error) {
			ep, err := fc.StartEpisode()
			if err != nil {
				return nil, nil, err
			}
			if episode == killDuringEpisode {
				lostID = ep.ID()
			}
			l := &lostFinalEpisode{
				FleetEpisode: ep,
				t:            t,
				f:            f,
				armed:        episode == killDuringEpisode,
				fired:        &killFired,
				lost:         &lost,
				replay:       &replay,
			}
			cleanup := func(err error) {
				if err != nil {
					_ = ep.Abandon()
				}
			}
			return l, cleanup, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if !killFired {
		t.Fatal("the owner kill never fired; the terminal window was not exercised")
	}
	if lost == nil {
		t.Fatal("no terminal decision was captured before the kill")
	}
	if replay == nil {
		t.Fatal("no replayed decision was captured after failover")
	}
	if !bytes.Equal(lost, replay) {
		t.Errorf("terminal decision changed across the owner kill:\n lost:   %s\n replay: %s", lost, replay)
	}
	if remote.Abandoned != 0 {
		t.Errorf("%d episodes abandoned across the owner kill, want 0", remote.Abandoned)
	}
	if remote.Episodes != baseline.Episodes || remote.Recovered != baseline.Recovered {
		t.Errorf("fleet campaign completed %d/%d recovered, baseline %d/%d",
			remote.Recovered, remote.Episodes, baseline.Recovered, baseline.Episodes)
	}
	if diff := math.Abs(remote.Cost.Mean() - baseline.Cost.Mean()); diff > 1e-9 {
		t.Errorf("mean cost diverged by %g: fleet %v vs baseline %v",
			diff, remote.Cost.Mean(), baseline.Cost.Mean())
	}
	if diff := math.Abs(remote.ResidualTime.Mean() - baseline.ResidualTime.Mean()); diff > 1e-9 {
		t.Errorf("mean residual time diverged by %g", diff)
	}
	if open := f.OpenEpisodes(); open != 0 {
		t.Errorf("%d episodes still open across survivors", open)
	}
	t.Logf("terminal decision for episode %d survived the owner kill byte-identically: %s", lostID, lost)
}
