// Package chaos injects transport faults for resilience testing: a
// http.RoundTripper wrapper that drops, delays, duplicates, and corrupts
// client requests, and a handler middleware that injects server-side 5xx
// and latency. All randomness comes from internal/rng streams, so a chaos
// run is exactly reproducible from its seed.
//
// Fault semantics follow what a real network can do:
//
//   - Drop: the request never reaches the server; the caller sees a
//     dial-class error (safe to retry for any request).
//   - Error: a synthetic 503 is returned without reaching the server, as an
//     overloaded proxy would.
//   - Reset: the request is delivered and processed, but the response is
//     discarded and the caller sees a reset-class error — the dangerous
//     case that only idempotent requests survive.
//   - Duplicate: the request is delivered twice (retransmit); the first
//     response is discarded. Exercises server-side dedupe.
//   - Delay: a uniform random latency in [0, MaxDelay) before delivery.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bpomdp/internal/rng"
)

// Config sets independent per-request fault probabilities. Probabilities
// are evaluated in order drop, error, reset, duplicate; at most one fires
// per request. Delay is sampled independently of the rest.
type Config struct {
	// DropProb loses the request before it reaches the server.
	DropProb float64
	// ErrorProb returns a synthetic 503 without reaching the server.
	ErrorProb float64
	// ResetProb delivers the request but loses the response.
	ResetProb float64
	// DupProb delivers the request twice, returning the second response.
	DupProb float64
	// MaxDelay adds a uniform random latency in [0, MaxDelay) to every
	// delivered request (0 disables delays).
	MaxDelay time.Duration
}

func (c Config) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DropProb", c.DropProb}, {"ErrorProb", c.ErrorProb}, {"ResetProb", c.ResetProb}, {"DupProb", c.DupProb}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: %s %v outside [0,1]", p.name, p.v)
		}
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("chaos: negative MaxDelay %v", c.MaxDelay)
	}
	return nil
}

// Counters tallies injected faults, for test assertions.
type Counters struct {
	Requests  atomic.Uint64
	Dropped   atomic.Uint64
	Errors    atomic.Uint64
	Resets    atomic.Uint64
	Duplicate atomic.Uint64
	Delayed   atomic.Uint64
}

// ErrInjectedReset is the cause of reset-class transport errors.
var ErrInjectedReset = errors.New("chaos: injected connection reset (response lost)")

// errInjectedDrop is the cause of drop-class transport errors.
var errInjectedDrop = errors.New("chaos: injected drop (request lost)")

// Transport is a fault-injecting http.RoundTripper. It wraps a real
// transport and randomly drops, delays, duplicates, or fails requests per
// its Config. Safe for concurrent use.
type Transport struct {
	next http.RoundTripper
	cfg  Config

	mu     sync.Mutex
	stream *rng.Stream

	// Counters reports what was injected.
	Counters Counters
}

var _ http.RoundTripper = (*Transport)(nil)

// NewTransport wraps next (nil means http.DefaultTransport) with fault
// injection driven by stream.
func NewTransport(next http.RoundTripper, cfg Config, stream *rng.Stream) (*Transport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if stream == nil {
		return nil, fmt.Errorf("chaos: nil rng stream")
	}
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{next: next, cfg: cfg, stream: stream}, nil
}

// roll draws the per-request fault decisions under the stream lock.
type roll struct {
	drop, errInject, reset, dup bool
	delay                       time.Duration
}

func (t *Transport) roll() roll {
	t.mu.Lock()
	defer t.mu.Unlock()
	var r roll
	switch {
	case t.stream.Bernoulli(t.cfg.DropProb):
		r.drop = true
	case t.stream.Bernoulli(t.cfg.ErrorProb):
		r.errInject = true
	case t.stream.Bernoulli(t.cfg.ResetProb):
		r.reset = true
	case t.stream.Bernoulli(t.cfg.DupProb):
		r.dup = true
	}
	if t.cfg.MaxDelay > 0 {
		r.delay = time.Duration(t.stream.Float64() * float64(t.cfg.MaxDelay))
	}
	return r
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.Counters.Requests.Add(1)
	r := t.roll()
	if r.delay > 0 {
		t.Counters.Delayed.Add(1)
		select {
		case <-time.After(r.delay):
		case <-req.Context().Done():
			return nil, &net.OpError{Op: "dial", Net: "tcp", Err: req.Context().Err()}
		}
	}
	switch {
	case r.drop:
		t.Counters.Dropped.Add(1)
		// The request never left the client: a dial-class error, safe to
		// retry even for non-idempotent requests.
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errInjectedDrop}
	case r.errInject:
		t.Counters.Errors.Add(1)
		return synthetic503(req), nil
	case r.reset:
		t.Counters.Resets.Add(1)
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The server did the work; the client never sees the answer.
		discard(resp)
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: ErrInjectedReset}
	case r.dup:
		t.Counters.Duplicate.Add(1)
		first, err := t.retransmit(req)
		if err != nil {
			return nil, err
		}
		if first != nil {
			discard(first)
		}
		return t.next.RoundTrip(req)
	default:
		return t.next.RoundTrip(req)
	}
}

// retransmit sends a clone of req (re-materializing the body via GetBody)
// and returns its response; a clone that cannot be built degrades to no
// duplicate rather than an error.
func (t *Transport) retransmit(req *http.Request) (*http.Response, error) {
	clone := req.Clone(req.Context())
	if req.Body != nil {
		if req.GetBody == nil {
			return nil, nil
		}
		body, err := req.GetBody()
		if err != nil {
			return nil, nil
		}
		clone.Body = body
	}
	resp, err := t.next.RoundTrip(clone)
	if err != nil {
		// The duplicate got lost; the original still goes out.
		return nil, nil
	}
	return resp, nil
}

func discard(resp *http.Response) {
	if resp.Body != nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
}

func synthetic503(req *http.Request) *http.Response {
	return &http.Response{
		Status:     "503 Service Unavailable",
		StatusCode: http.StatusServiceUnavailable,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     http.Header{"Content-Type": []string{"text/plain"}},
		Body:       io.NopCloser(bytes.NewReader([]byte("chaos: injected 503\n"))),
		Request:    req,
	}
}

// Middleware wraps an http.Handler with server-side fault injection:
// synthetic 500s (before the real handler runs, so no state changes) and
// random latency. The returned counters tally injections.
func Middleware(next http.Handler, cfg Config, stream *rng.Stream) (http.Handler, *Counters, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if stream == nil {
		return nil, nil, fmt.Errorf("chaos: nil rng stream")
	}
	var (
		mu       sync.Mutex
		counters Counters
	)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		counters.Requests.Add(1)
		mu.Lock()
		fail := stream.Bernoulli(cfg.ErrorProb)
		var delay time.Duration
		if cfg.MaxDelay > 0 {
			delay = time.Duration(stream.Float64() * float64(cfg.MaxDelay))
		}
		mu.Unlock()
		if delay > 0 {
			counters.Delayed.Add(1)
			time.Sleep(delay)
		}
		if fail {
			counters.Errors.Add(1)
			http.Error(w, "chaos: injected 500", http.StatusInternalServerError)
			return
		}
		next.ServeHTTP(w, r)
	})
	return h, &counters, nil
}
