package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(7).Split("x").SplitN("ep", 3)
	b := New(7).Split("x").SplitN("ep", 3)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with identical paths diverged at draw %d", i)
		}
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	a := New(7)
	_ = a.Float64() // consume from parent
	childAfter := a.Split("c").Float64()

	b := New(7)
	childFresh := b.Split("c").Float64()
	if childAfter != childFresh {
		t.Error("child stream depends on parent consumption")
	}
}

func TestDifferentLabelsDiffer(t *testing.T) {
	root := New(1)
	x := root.Split("alpha")
	y := root.Split("beta")
	same := 0
	for i := 0; i < 20; i++ {
		if x.Float64() == y.Float64() {
			same++
		}
	}
	if same == 20 {
		t.Error("differently-labeled streams produced identical sequences")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	x, y := New(1), New(2)
	same := 0
	for i := 0; i < 20; i++ {
		if x.Float64() == y.Float64() {
			same++
		}
	}
	if same == 20 {
		t.Error("different seeds produced identical sequences")
	}
}

func TestPath(t *testing.T) {
	s := New(0).Split("a").SplitN("b", 2)
	if got := s.Path(); got != "/a/b[2]" {
		t.Errorf("Path = %q", got)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(9)
	for i := 0; i < 10; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(11)
	const n, p = 20000, 0.3
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-p) > 0.02 {
		t.Errorf("Bernoulli(%v) frequency = %v", p, freq)
	}
}

func TestCategoricalErrors(t *testing.T) {
	s := New(3)
	if _, err := s.Categorical(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := s.Categorical([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := s.Categorical([]float64{0, 0}); err == nil {
		t.Error("zero-sum weights accepted")
	}
}

func TestCategoricalNeverPicksZeroWeight(t *testing.T) {
	s := New(5)
	for i := 0; i < 5000; i++ {
		idx, err := s.Categorical([]float64{0, 1, 0, 2, 0})
		if err != nil {
			t.Fatal(err)
		}
		if idx != 1 && idx != 3 {
			t.Fatalf("sampled zero-weight index %d", idx)
		}
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	s := New(13)
	weights := []float64{1, 3, 6}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		idx, err := s.Categorical(weights)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("index %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	s := New(19)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Errorf("shuffle lost elements: %v (was %v)", xs, orig)
	}
}
