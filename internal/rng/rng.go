// Package rng provides deterministic, splittable random-number streams for
// reproducible simulation campaigns.
//
// Every stochastic component in the repository (fault injection, monitor
// output sampling, bootstrap belief generation, random tie-breaking) draws
// from a Stream derived from a root seed and a label path, so an entire
// 10,000-injection campaign is exactly reproducible from a single integer
// seed, and episodes are independent of evaluation order.
package rng

import (
	"fmt"
	"math/rand/v2"
	"strconv"
)

// Stream is a deterministic PRNG stream. Create the root with New and derive
// independent child streams with Split. A Stream is not safe for concurrent
// use; split per goroutine instead.
type Stream struct {
	r    *rand.Rand
	src  *rand.PCG
	seed uint64
	path []byte
}

// FNV-64a parameters; hashing is done inline over the path buffer so child
// derivation needs no hash-state or string allocations.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv64a hashes b with FNV-64a, matching hash/fnv over the same bytes.
func fnv64a(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// New returns the root stream for the given seed.
func New(seed uint64) *Stream {
	src := rand.NewPCG(seed, 0x9e3779b97f4a7c15)
	return &Stream{
		r:    rand.New(src),
		src:  src,
		seed: seed,
	}
}

// Split derives an independent child stream identified by label. Splitting
// is pure: the same (seed, path) always yields the same stream, regardless
// of how much randomness has been consumed from the parent.
func (s *Stream) Split(label string) *Stream {
	child := &Stream{seed: s.seed}
	child.path = append(append(append(child.path, s.path...), '/'), label...)
	child.src = rand.NewPCG(s.seed, fnv64a(child.path))
	child.r = rand.New(child.src)
	return child
}

// SplitN derives a child stream identified by an integer index, convenient
// for per-episode streams.
func (s *Stream) SplitN(label string, n int) *Stream {
	return s.splitNInto(nil, label, n)
}

// SplitNInto is SplitN reusing dst: the destination stream is reseeded in
// place to the exact stream SplitN(label, n) would return — same derivation
// hash, same generator state — without allocating once dst's path buffer has
// warmed up. A nil dst allocates a fresh stream, which is exactly SplitN.
// dst must not be s itself and must not be in use elsewhere.
func (s *Stream) SplitNInto(dst *Stream, label string, n int) *Stream {
	return s.splitNInto(dst, label, n)
}

func (s *Stream) splitNInto(dst *Stream, label string, n int) *Stream {
	if dst == nil {
		dst = &Stream{}
		dst.src = rand.NewPCG(0, 0)
		dst.r = rand.New(dst.src)
	}
	dst.seed = s.seed
	p := append(dst.path[:0], s.path...)
	p = append(p, '/')
	p = append(p, label...)
	p = append(p, '[')
	p = strconv.AppendInt(p, int64(n), 10)
	p = append(p, ']')
	dst.path = p
	dst.src.Seed(s.seed, fnv64a(p))
	return dst
}

// Path returns the label path of this stream (diagnostics only).
func (s *Stream) Path() string { return string(s.path) }

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand/v2 semantics.
func (s *Stream) IntN(n int) int { return s.r.IntN(n) }

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Categorical samples an index proportionally to the non-negative weights.
// Weights need not be normalized. It returns an error if the weights are
// empty, contain a negative entry, or sum to zero.
func (s *Stream) Categorical(weights []float64) (int, error) {
	if len(weights) == 0 {
		return 0, fmt.Errorf("rng: empty weight vector")
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return 0, fmt.Errorf("rng: negative weight %v at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return 0, fmt.Errorf("rng: weights sum to %v", total)
	}
	x := s.r.Float64() * total
	var acc float64
	last := 0
	for i, w := range weights {
		if w == 0 {
			continue
		}
		acc += w
		last = i
		if x < acc {
			return i, nil
		}
	}
	// Floating-point slack: fall back to the last positive-weight index.
	return last, nil
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle permutes n elements using the provided swap function.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
