package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// SpanSchema identifies the distributed episode-trace document format: one
// JSON SpanRecord per line (JSONL). Spans from every node of a fleet share
// the episode's trace id (its clientKey), so the files can be concatenated
// and re-stitched into one causal timeline per recovery episode — see
// cmd/tracestats.
const SpanSchema = "bpomdp.span/v1"

// Span kinds. Client kinds describe one side of the wire, server kinds the
// other; tracestats subtracts matched intervals to attribute wall-clock to
// network, backoff, handler work, and fsync.
const (
	// SpanClientCall is one logical client call (Decide, Observe, ...): the
	// whole retry loop, backoff included.
	SpanClientCall = "client.call"
	// SpanClientAttempt is a single HTTP attempt within a call.
	SpanClientAttempt = "client.attempt"
	// SpanClientBackoff is the sleep between attempts; Attempt numbers the
	// attempt the sleep preceded (1 = before the first retry).
	SpanClientBackoff = "client.backoff"
	// SpanClientFailover is a FleetEpisode owner re-bind after transport
	// exhaustion; Target is the new owner.
	SpanClientFailover = "client.failover"

	// Server handler spans, one per episode-scoped request actually served.
	// A Status of 307 marks a redirect hop; Target then names the owner the
	// request was bounced to.
	SpanServerStart   = "server.start"
	SpanServerStatus  = "server.status"
	SpanServerDecide  = "server.decide"
	SpanServerObserve = "server.observe"
	SpanServerBelief  = "server.belief"
	SpanServerDelete  = "server.delete"

	// SpanServerCheckpoint covers one durable store write (episode snapshot
	// or terminal tombstone; Op distinguishes). Emitted inside the handler
	// span that paid for the fsync.
	SpanServerCheckpoint = "server.checkpoint"
	// SpanServerAdopt covers adopting one episode or tombstone (Op
	// distinguishes) from a down member's store; Source names that member.
	SpanServerAdopt = "server.adopt"
	// SpanServerReplicate covers the asynchronous replication of a terminal
	// tombstone to the ring successor (Target); its Events record the
	// individual attempts.
	SpanServerReplicate = "server.replicate"
	// SpanServerAccept covers a peer's replicated tombstone landing here.
	SpanServerAccept = "server.accept"
)

// Span ops used with SpanServerCheckpoint and SpanServerAdopt.
const (
	SpanOpSave      = "save"
	SpanOpTombstone = "tombstone"
	SpanOpEpisode   = "episode"
	SpanOpDelete    = "delete"
)

// SpanEvent is a timestamped annotation within a span (e.g. one replication
// attempt).
type SpanEvent struct {
	Name string `json:"name"`
	At   int64  `json:"atUnixNano"`
	// Detail is a short free-form annotation ("status=204", "attempt=2").
	Detail string `json:"detail,omitempty"`
}

// SpanRecord is one timed interval in an episode's distributed timeline.
// Start is a wall-clock anchor (UnixNano); Duration is measured with the
// monotonic clock, so it is exact even when the wall clock steps. Stitching
// compares Start across nodes and therefore assumes roughly synchronized
// clocks (exactly true for the in-process chaos fleet; NTP-close in real
// deployments).
type SpanRecord struct {
	// Schema is always SpanSchema.
	Schema string `json:"schema"`
	// TraceID keys the span to its episode across every node: it is the
	// episode's clientKey (the fleet routing key), carried on the wire in
	// the X-Bpomdp-Trace header. Keyless episodes are not traced.
	TraceID string `json:"traceId"`
	// Node names the emitting process ("n1", or "client" for client spans).
	Node string `json:"node"`
	// Kind is one of the Span* constants above.
	Kind string `json:"kind"`
	// Start anchors the span on the wall clock (UnixNano); Duration is the
	// monotonic elapsed time in nanoseconds.
	Start    int64 `json:"startUnixNano"`
	Duration int64 `json:"durationNanos"`

	// Episode is the server-assigned episode id, when the emitter knows it
	// (server spans; client spans stitch by TraceID alone).
	Episode uint64 `json:"episode,omitempty"`
	// Op names the client call ("decide", "observe", ...) on client spans
	// and the store operation on checkpoint/adopt spans.
	Op string `json:"op,omitempty"`
	// Tier labels decide spans with the serving tier ("fsc" or "tree").
	Tier string `json:"tier,omitempty"`
	// Status is the HTTP status code (server handler spans and client
	// attempts that got a response; 0 = transport error or n/a).
	Status int `json:"status,omitempty"`
	// Attempt numbers client attempts and backoffs within one call (0-based
	// attempts; a backoff before attempt n carries Attempt=n).
	Attempt int `json:"attempt,omitempty"`
	// Target names the member a redirect, failover, or replication was
	// aimed at; Source names the member an adoption pulled from.
	Target string `json:"target,omitempty"`
	Source string `json:"source,omitempty"`
	// Err carries the failure, when the spanned operation failed.
	Err string `json:"error,omitempty"`
	// Events are timestamped annotations within the span.
	Events []SpanEvent `json:"events,omitempty"`
}

// End returns the span's wall-clock end (UnixNano).
func (r *SpanRecord) End() int64 { return r.Start + r.Duration }

// SpanWriter writes SpanRecords as JSONL. Like TraceWriter it serializes
// writes with a mutex, so one writer may be shared by every handler
// goroutine on a node; each record lands as one intact line.
type SpanWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewSpanWriter returns a SpanWriter emitting to w.
func NewSpanWriter(w io.Writer) *SpanWriter {
	return &SpanWriter{enc: json.NewEncoder(w)}
}

// Write emits one record, stamping its Schema field.
func (s *SpanWriter) Write(rec *SpanRecord) error {
	rec.Schema = SpanSchema
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(rec)
}

// DecodeSpans parses a JSONL span stream, verifying the schema and the
// required fields of every record. Files from several nodes may be
// concatenated before decoding.
func DecodeSpans(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obs: span line %d: %w", line, err)
		}
		if rec.Schema != SpanSchema {
			return nil, fmt.Errorf("obs: span line %d has schema %q, want %q", line, rec.Schema, SpanSchema)
		}
		if rec.TraceID == "" || rec.Node == "" || rec.Kind == "" {
			return nil, fmt.Errorf("obs: span line %d is missing traceId, node, or kind", line)
		}
		if rec.Duration < 0 {
			return nil, fmt.Errorf("obs: span line %d has negative duration %d", line, rec.Duration)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scan spans: %w", err)
	}
	return out, nil
}
