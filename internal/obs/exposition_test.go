package obs

import (
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestLabelValueEscaping pins the exposition-format escaping rules for label
// values: backslash, double quote, and newline must render as \\, \", and
// \n, on both plain series and histogram bucket lines.
func TestLabelValueEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "escaping", Label{Key: "path", Value: `a\b"c` + "\nd"}).Inc()
	reg.Histogram("esc_seconds", "escaping", []float64{1},
		Label{Key: "op", Value: "line1\nline2"}).Observe(0.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `esc_total{path="a\\b\"c\nd"} 1`) {
		t.Errorf("counter label not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_seconds_bucket{op="line1\nline2",le="1"} 1`) {
		t.Errorf("histogram bucket label not escaped:\n%s", out)
	}
	// A raw newline in a label value would split the series line in two;
	// every non-comment line must parse as "name{...} value" or "name value".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) < 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// TestHistogramInfNaNObservations pins where non-finite observations land:
// both +Inf and NaN fall into the +Inf bucket (NaN compares false against
// every bound), the count advances, and the sum becomes non-finite without
// breaking rendering.
func TestHistogramInfNaNObservations(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("nf_seconds", "non-finite", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(math.Inf(1))

	buckets := h.Cumulative()
	if buckets[len(buckets)-1] != 2 || buckets[0] != 1 {
		t.Fatalf("after +Inf: cumulative %v, want [1 1 2]", buckets)
	}
	count, sum := h.Snapshot()
	if count != 2 || !math.IsInf(sum, 1) {
		t.Fatalf("after +Inf: count %d sum %v", count, sum)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `nf_seconds_bucket{le="+Inf"} 2`) {
		t.Errorf("+Inf bucket line missing:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "nf_seconds_sum +Inf") {
		t.Errorf("sum did not render as +Inf:\n%s", sb.String())
	}

	h.Observe(math.NaN())
	buckets = h.Cumulative()
	if buckets[len(buckets)-1] != 3 || buckets[0] != 1 || buckets[1] != 1 {
		t.Fatalf("after NaN: cumulative %v, want NaN in the +Inf bucket only", buckets)
	}
	count, sum = h.Snapshot()
	if count != 3 || !math.IsNaN(sum) {
		t.Fatalf("after NaN: count %d sum %v", count, sum)
	}
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "nf_seconds_sum NaN") {
		t.Errorf("sum did not render as NaN:\n%s", sb.String())
	}
}

// TestWritePrometheusConcurrentUpdates scrapes the registry while counters,
// gauges, histograms, and a GaugeFunc are hammered from other goroutines.
// The assertion is the race detector plus render integrity: every scrape
// must produce structurally valid exposition text.
func TestWritePrometheusConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("cc_total", "concurrent counter")
	g := reg.Gauge("cg", "concurrent gauge")
	h := reg.Histogram("ch_seconds", "concurrent histogram", []float64{0.001, 0.01, 0.1})
	var fnVal sync.Map
	fnVal.Store("v", 0.0)
	reg.GaugeFunc("cfn", "concurrent gauge func", func() float64 {
		v, _ := fnVal.Load("v")
		return v.(float64)
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(n))
				h.Observe(float64(n%100) / 1000)
				fnVal.Store("v", float64(n))
				// New registrations during a scrape must be safe too;
				// registration is idempotent so this re-resolves.
				reg.Counter("cc_total", "concurrent counter").Inc()
			}
		}(i)
	}
	for scrape := 0; scrape < 50; scrape++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if len(strings.Fields(line)) < 2 {
				t.Fatalf("scrape %d: malformed line %q", scrape, line)
			}
		}
		// Interleave a Gather too: same locks, different path.
		_ = reg.Gather()
	}
	close(stop)
	wg.Wait()
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
}
