package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TraceSchema identifies the structured decision-trace document format: one
// JSON DecisionRecord per line (JSONL).
const TraceSchema = "bpomdp.trace/v1"

// DecisionRecord is one structured trace entry: a recovery decision together
// with the quantities that explain it — the per-action bound values backing
// the argmax, the gap between the tree-backed value and the stored
// hyperplane bound (the anytime quality signal: zero means the stored bound
// is already tight at this belief), the belief entropy at decision time, and
// the work the Max-Avg expansion performed.
type DecisionRecord struct {
	// Schema is always TraceSchema.
	Schema string `json:"schema"`
	// Episode and Step locate the decision within a run. Episode numbering
	// is writer-specific (server episode id, or a trace recorder's running
	// count).
	Episode uint64 `json:"episode"`
	Step    int    `json:"step"`

	// Action is the chosen model action (-1 when Terminate without a
	// terminate action); ActionName resolves it when a model is available.
	Action     int    `json:"action"`
	ActionName string `json:"actionName,omitempty"`
	// Terminate reports that the controller ended the episode.
	Terminate bool `json:"terminate,omitempty"`
	// Value is the root value of the Max-Avg expansion (the controller's
	// bound-backed estimate of the belief's value).
	Value float64 `json:"value"`
	// QValues are the per-action bound values at the root, indexed by
	// action. Empty when the deciding controller does not expose them.
	QValues []float64 `json:"qValues,omitempty"`

	// LeafBound is V_B⁻(π), the stored hyperplane bound at the decision
	// belief, and BoundGap = Value − LeafBound ≥ 0 is how much the tree
	// expansion improved on it (Property 1(b)'s slack).
	LeafBound float64 `json:"leafBound"`
	BoundGap  float64 `json:"boundGap"`
	// BeliefEntropy is the Shannon entropy (nats) of the decision belief.
	BeliefEntropy float64 `json:"beliefEntropy"`

	// TreeNodes counts belief nodes expanded (Backup applications) for this
	// decision, LeafEvals the leaf-bound evaluations at the frontier, and
	// SlabPasses the batched ValueBatch passes over the hyperplane slab. For
	// a batched decision these cover the whole batch, attributed evenly
	// across its expanded members.
	TreeNodes  uint64 `json:"treeNodes"`
	LeafEvals  uint64 `json:"leafEvals,omitempty"`
	SlabPasses uint64 `json:"slabPasses,omitempty"`

	// SetSize and SetEvictions snapshot the bound set at decision time.
	SetSize      int    `json:"setSize,omitempty"`
	SetEvictions uint64 `json:"setEvictions,omitempty"`

	// Tier identifies which serving tier produced the decision
	// (controller.TierFSC for a compiled table hit, controller.TierTree for a
	// Max-Avg expansion — including FSC fallbacks). Empty when the deciding
	// controller predates tier attribution.
	Tier string `json:"tier,omitempty"`
}

// TraceWriter writes DecisionRecords as JSONL. It serializes writes with a
// mutex, so one writer may be shared by many goroutines (parallel campaign
// workers, concurrent server handlers); each record lands as one intact
// line.
type TraceWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewTraceWriter returns a TraceWriter emitting to w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{enc: json.NewEncoder(w)}
}

// Write emits one record, stamping its Schema field.
func (t *TraceWriter) Write(rec *DecisionRecord) error {
	rec.Schema = TraceSchema
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enc.Encode(rec)
}

// DecodeTrace parses a JSONL decision trace, verifying the schema of every
// record.
func DecodeTrace(r io.Reader) ([]DecisionRecord, error) {
	var out []DecisionRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec DecisionRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if rec.Schema != TraceSchema {
			return nil, fmt.Errorf("obs: trace line %d has schema %q, want %q", line, rec.Schema, TraceSchema)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scan trace: %w", err)
	}
	return out, nil
}
