// Package obs is the framework's observability layer: a dependency-free
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms rendered in Prometheus text exposition format) and the
// structured decision-trace schema (DecisionRecord, JSONL) that explains
// every recovery decision with its bound gap, belief entropy, and tree
// expansion effort.
//
// The package is designed around the zero-cost-when-disabled contract:
// nothing here sits on a hot path unless a caller explicitly wires it in,
// every instrument is a plain struct of atomics with no locks on the update
// path, and disabled instruments are nil pointers the instrumented code
// skips with one branch. The proof of the contract is the committed
// benchmark gate (make bench-smoke): campaign throughput and allocations
// must be unchanged with the instrumentation compiled in but disabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key="value" pair attached to an instrument.
// Instruments in the same family (same name) are distinguished by their
// labels, e.g. a request-latency histogram per handler.
type Label struct {
	Key, Value string
}

// metric is anything the registry can render.
type metric interface {
	family() string           // metric family name (without label set)
	kind() string             // "counter", "gauge", or "histogram"
	help() string             // HELP text (may be empty)
	render(w io.Writer) error // exposition lines, no HELP/TYPE
}

// Registry holds a set of named instruments and renders them in Prometheus
// text exposition format. Instrument lookups take a lock; instrument updates
// (Counter.Add, Histogram.Observe, …) never do — callers should resolve
// instruments once at setup time and hold the pointers.
type Registry struct {
	mu    sync.RWMutex
	order []metric
	byKey map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]metric)}
}

// key uniquely identifies one instrument: family name plus rendered labels.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + renderLabels(labels) + "}"
}

// renderLabels renders a label set as k1="v1",k2="v2" with escaped values.
func renderLabels(labels []Label) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// register adds m under its key, returning the already-registered instrument
// when the key exists. It panics when the key is taken by a different
// instrument kind — that is a programming error, not a runtime condition.
func (r *Registry) register(m metric, labels []Label) metric {
	k := key(m.family(), labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byKey[k]; ok {
		if old.kind() != m.kind() {
			panic(fmt.Sprintf("obs: %s already registered as a %s, not a %s", k, old.kind(), m.kind()))
		}
		return old
	}
	r.byKey[k] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or returns the existing) monotone counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{name: name, helpText: help, labels: labels}
	return r.register(c, labels).(*Counter)
}

// Gauge registers (or returns the existing) settable gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{name: name, helpText: help, labels: labels}
	return r.register(g, labels).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time —
// the right shape for values that already live elsewhere (e.g. the size of a
// map guarded by its own lock). fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&gaugeFunc{name: name, helpText: help, labels: labels, fn: fn}, labels)
}

// CounterFunc registers a counter whose value is read by fn at scrape time —
// for monotone counts that already live elsewhere as atomics (e.g. the
// shared FSC table's hit counters), so the hot path does not pay a second
// increment just to be scrapable. fn must be monotonically non-decreasing
// and safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&counterFunc{name: name, helpText: help, labels: labels, fn: fn}, labels)
}

// Histogram registers (or returns the existing) fixed-bucket histogram. The
// bounds must be strictly increasing; an implicit +Inf bucket is appended.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly increasing at %d", name, i))
		}
	}
	h := &Histogram{
		name:     name,
		helpText: help,
		labels:   labels,
		bounds:   append([]float64(nil), bounds...),
		buckets:  make([]atomic.Uint64, len(bounds)+1),
	}
	return r.register(h, labels).(*Histogram)
}

// WritePrometheus renders every registered instrument in Prometheus text
// exposition format (version 0.0.4). Instruments render in registration
// order; HELP and TYPE headers are emitted once per family, before the
// family's first instrument.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	metrics := append([]metric(nil), r.order...)
	r.mu.RUnlock()

	headered := make(map[string]bool, len(metrics))
	for _, m := range metrics {
		if !headered[m.family()] {
			headered[m.family()] = true
			if h := m.help(); h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.family(), h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.family(), m.kind()); err != nil {
				return err
			}
		}
		if err := m.render(w); err != nil {
			return err
		}
	}
	return nil
}

// Gather returns a snapshot of every instrument's current value keyed by
// name{labels}; histograms contribute their _count and _sum series. Intended
// for tests and programmatic assertions, not for scraping.
func (r *Registry) Gather() map[string]float64 {
	r.mu.RLock()
	metrics := append([]metric(nil), r.order...)
	r.mu.RUnlock()
	out := make(map[string]float64, len(metrics))
	for _, m := range metrics {
		switch v := m.(type) {
		case *Counter:
			out[key(v.name, v.labels)] = float64(v.Value())
		case *Gauge:
			out[key(v.name, v.labels)] = v.Value()
		case *gaugeFunc:
			out[key(v.name, v.labels)] = v.fn()
		case *counterFunc:
			out[key(v.name, v.labels)] = v.fn()
		case *Histogram:
			count, sum := v.Snapshot()
			out[key(v.name+"_count", v.labels)] = float64(count)
			out[key(v.name+"_sum", v.labels)] = sum
		}
	}
	return out
}

// Counter is a monotonically increasing counter. The zero value is unusable;
// obtain counters from a Registry. All methods are safe for concurrent use.
type Counter struct {
	v        atomic.Uint64
	name     string
	helpText string
	labels   []Label
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) family() string { return c.name }
func (c *Counter) kind() string   { return "counter" }
func (c *Counter) help() string   { return c.helpText }
func (c *Counter) render(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %d\n", key(c.name, c.labels), c.Value())
	return err
}

// Gauge is a settable instantaneous value. All methods are safe for
// concurrent use.
type Gauge struct {
	bits     atomic.Uint64 // float64 bits
	name     string
	helpText string
	labels   []Label
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) family() string { return g.name }
func (g *Gauge) kind() string   { return "gauge" }
func (g *Gauge) help() string   { return g.helpText }
func (g *Gauge) render(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %s\n", key(g.name, g.labels), formatFloat(g.Value()))
	return err
}

// gaugeFunc is a gauge computed at scrape time.
type gaugeFunc struct {
	name     string
	helpText string
	labels   []Label
	fn       func() float64
}

func (g *gaugeFunc) family() string { return g.name }
func (g *gaugeFunc) kind() string   { return "gauge" }
func (g *gaugeFunc) help() string   { return g.helpText }
func (g *gaugeFunc) render(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %s\n", key(g.name, g.labels), formatFloat(g.fn()))
	return err
}

// counterFunc is a counter read from an external monotone source at scrape
// time.
type counterFunc struct {
	name     string
	helpText string
	labels   []Label
	fn       func() float64
}

func (c *counterFunc) family() string { return c.name }
func (c *counterFunc) kind() string   { return "counter" }
func (c *counterFunc) help() string   { return c.helpText }
func (c *counterFunc) render(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %s\n", key(c.name, c.labels), formatFloat(c.fn()))
	return err
}

// Histogram is a fixed-bucket histogram. Observations and scrapes are
// lock-free; every per-bucket count, the total count, and the sum are
// individually atomic, so a concurrent scrape always sees each cumulative
// bucket count monotonically non-decreasing across scrapes (counts are only
// ever incremented), though one scrape may observe a sum/count pair that is
// mid-update by less than one observation.
type Histogram struct {
	bounds   []float64
	buckets  []atomic.Uint64 // bucket i counts v <= bounds[i]; last is +Inf
	count    atomic.Uint64
	sumBits  atomic.Uint64 // float64 bits, CAS-updated
	name     string
	helpText string
	labels   []Label
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns the total observation count and sum.
func (h *Histogram) Snapshot() (count uint64, sum float64) {
	return h.count.Load(), math.Float64frombits(h.sumBits.Load())
}

// Cumulative returns the cumulative bucket counts (one per bound, plus the
// +Inf bucket last). Intended for tests.
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.buckets))
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

func (h *Histogram) family() string { return h.name }
func (h *Histogram) kind() string   { return "histogram" }
func (h *Histogram) help() string   { return h.helpText }

// render emits the cumulative bucket series, sum, and count. The +Inf bucket
// is rendered from the same per-bucket loads as the smaller buckets (not
// from h.count), so the le="+Inf" value can momentarily trail the _count
// series under concurrent observation but each series is itself monotone.
func (h *Histogram) render(w io.Writer) error {
	base := renderLabels(h.labels)
	sep := ""
	if base != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", h.name, base, sep, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", h.name, base, sep, cum); err != nil {
		return err
	}
	count, sum := h.Snapshot()
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.name, bracket(base), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", h.name, bracket(base), count)
	return err
}

func bracket(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trippable representation, integers without a trailing ".0".
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// DefLatencyBuckets are the default request-latency histogram bounds in
// seconds, tuned for decision handlers that run from tens of microseconds
// (cached decisions) to tens of milliseconds (deep tree expansions), with
// headroom for slow outliers.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}
