package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("recoverd_decisions_total", "decisions served")
	c.Add(3)
	g := r.Gauge("recoverd_queue_depth", "")
	g.Set(2.5)
	r.GaugeFunc("recoverd_episodes_open", "open episodes", func() float64 { return 7 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP recoverd_decisions_total decisions served\n",
		"# TYPE recoverd_decisions_total counter\n",
		"recoverd_decisions_total 3\n",
		"# TYPE recoverd_queue_depth gauge\n",
		"recoverd_queue_depth 2.5\n",
		"recoverd_episodes_open 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Error("re-registering the same counter returned a different instance")
	}
	h1 := r.Histogram("lat", "", DefLatencyBuckets, Label{"handler", "start"})
	h2 := r.Histogram("lat", "", DefLatencyBuckets, Label{"handler", "start"})
	if h1 != h2 {
		t.Error("re-registering the same labelled histogram returned a different instance")
	}
	h3 := r.Histogram("lat", "", DefLatencyBuckets, Label{"handler", "decide"})
	if h3 == h1 {
		t.Error("differently labelled histograms share an instance")
	}

	defer func() {
		if recover() == nil {
			t.Error("conflicting kind registration did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestHistogramBucketsAndRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", "request latency", []float64{0.01, 0.1, 1}, Label{"handler", "decide"})
	for _, v := range []float64{0.001, 0.01, 0.05, 0.5, 3} {
		h.Observe(v)
	}
	count, sum := h.Snapshot()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if math.Abs(sum-3.561) > 1e-12 {
		t.Errorf("sum = %v, want 3.561", sum)
	}
	cum := h.Cumulative()
	want := []uint64{2, 3, 4, 5} // le=0.01, le=0.1, le=1, +Inf
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], want[i])
		}
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		"# TYPE req_seconds histogram\n",
		`req_seconds_bucket{handler="decide",le="0.01"} 2` + "\n",
		`req_seconds_bucket{handler="decide",le="0.1"} 3` + "\n",
		`req_seconds_bucket{handler="decide",le="1"} 4` + "\n",
		`req_seconds_bucket{handler="decide",le="+Inf"} 5` + "\n",
		`req_seconds_count{handler="decide"} 5` + "\n",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("output missing %q:\n%s", line, out)
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines while
// scraping, asserting every scrape's cumulative buckets are monotone with
// respect to the previous scrape (the property Prometheus rate() depends
// on) and that the final counts are exact.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{0.25, 0.5, 0.75})
	const (
		workers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	scrapeErr := make(chan error, 1)
	go func() {
		prev := make([]uint64, 4)
		for {
			select {
			case <-stop:
				return
			default:
			}
			cum := h.Cumulative()
			for i := range cum {
				if cum[i] < prev[i] {
					select {
					case scrapeErr <- errNonMonotone{i, prev[i], cum[i]}:
					default:
					}
					return
				}
			}
			// Cumulative buckets must also be internally monotone.
			for i := 1; i < len(cum); i++ {
				if cum[i] < cum[i-1] {
					select {
					case scrapeErr <- errNonMonotone{i, cum[i-1], cum[i]}:
					default:
					}
					return
				}
			}
			prev = cum
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(i%100) / 100)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}
	count, _ := h.Snapshot()
	if count != workers*perW {
		t.Errorf("count = %d, want %d", count, workers*perW)
	}
	cum := h.Cumulative()
	if got := cum[len(cum)-1]; got != workers*perW {
		t.Errorf("+Inf cumulative = %d, want %d", got, workers*perW)
	}
}

type errNonMonotone struct {
	bucket   int
	old, new uint64
}

func (e errNonMonotone) Error() string {
	return "non-monotone bucket"
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	recs := []DecisionRecord{
		{Episode: 1, Step: 0, Action: 2, ActionName: "restart", Value: -4.5,
			QValues: []float64{-9, -5, -4.5}, LeafBound: -6, BoundGap: 1.5,
			BeliefEntropy: 1.9, TreeNodes: 1, LeafEvals: 12, SlabPasses: 1,
			SetSize: 11, SetEvictions: 2},
		{Episode: 1, Step: 1, Action: -1, Terminate: true, Value: 0,
			LeafBound: -0.5, BoundGap: 0.5, BeliefEntropy: 0.01, TreeNodes: 1},
	}
	for i := range recs {
		if err := tw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].Schema != TraceSchema {
			t.Errorf("record %d schema %q", i, got[i].Schema)
		}
		want := recs[i]
		want.Schema = TraceSchema
		if got[i].BoundGap != want.BoundGap || got[i].BeliefEntropy != want.BeliefEntropy ||
			got[i].TreeNodes != want.TreeNodes || got[i].Action != want.Action {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want)
		}
	}
}

func TestDecodeTraceRejectsWrongSchema(t *testing.T) {
	in := strings.NewReader(`{"schema":"bpomdp.trace/v999","episode":1}` + "\n")
	if _, err := DecodeTrace(in); err == nil {
		t.Error("wrong schema accepted")
	}
}
