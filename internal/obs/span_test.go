package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestSpanRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewSpanWriter(&buf)
	in := []SpanRecord{
		{TraceID: "k1", Node: "n1", Kind: SpanServerDecide, Start: 100, Duration: 50,
			Episode: 7, Tier: "fsc", Status: 200},
		{TraceID: "k1", Node: "client", Kind: SpanClientBackoff, Start: 160, Duration: 40,
			Op: "decide", Attempt: 1},
		{TraceID: "k2", Node: "n2", Kind: SpanServerReplicate, Start: 10, Duration: 5,
			Target: "n3", Events: []SpanEvent{{Name: "attempt", At: 11, Detail: "status=204"}}},
	}
	for i := range in {
		rec := in[i]
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	got, err := DecodeSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("decoded %d spans, want %d", len(got), len(in))
	}
	for i := range got {
		if got[i].Schema != SpanSchema {
			t.Errorf("span %d schema %q", i, got[i].Schema)
		}
		if got[i].TraceID != in[i].TraceID || got[i].Kind != in[i].Kind ||
			got[i].Start != in[i].Start || got[i].Duration != in[i].Duration {
			t.Errorf("span %d round-trip mismatch: %+v vs %+v", i, got[i], in[i])
		}
	}
	if got[0].End() != 150 {
		t.Errorf("End() = %d, want 150", got[0].End())
	}
	if len(got[2].Events) != 1 || got[2].Events[0].Detail != "status=204" {
		t.Errorf("events did not round-trip: %+v", got[2].Events)
	}
}

func TestDecodeSpansRejectsBadRecords(t *testing.T) {
	cases := map[string]string{
		"wrong schema":      `{"schema":"bpomdp.trace/v1","traceId":"k","node":"n","kind":"server.decide","startUnixNano":1,"durationNanos":1}`,
		"missing traceId":   `{"schema":"bpomdp.span/v1","node":"n","kind":"server.decide","startUnixNano":1,"durationNanos":1}`,
		"missing node":      `{"schema":"bpomdp.span/v1","traceId":"k","kind":"server.decide","startUnixNano":1,"durationNanos":1}`,
		"missing kind":      `{"schema":"bpomdp.span/v1","traceId":"k","node":"n","startUnixNano":1,"durationNanos":1}`,
		"negative duration": `{"schema":"bpomdp.span/v1","traceId":"k","node":"n","kind":"server.decide","startUnixNano":1,"durationNanos":-1}`,
		"not json":          `nope`,
	}
	for name, line := range cases {
		if _, err := DecodeSpans(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Blank lines are skipped, as for decision traces.
	got, err := DecodeSpans(strings.NewReader("\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("blank stream: %v, %d spans", err, len(got))
	}
}

func TestSpanWriterConcurrent(t *testing.T) {
	var buf syncBuffer
	w := NewSpanWriter(&buf)
	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				_ = w.Write(&SpanRecord{TraceID: "k", Node: "n", Kind: SpanServerDecide,
					Start: int64(g*each + i), Duration: 1})
			}
		}(g)
	}
	wg.Wait()
	got, err := DecodeSpans(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != goroutines*each {
		t.Fatalf("decoded %d spans, want %d", len(got), goroutines*each)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the SpanWriter serializes
// encoding, but the underlying writer must still be safe for the test's
// final read.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
