package bounds

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
)

// ErrBoundCrossing is wrapped by the refiner whenever the upper bound falls
// below the lower bound at a visited belief. Valid bound pairs can never
// cross — both backup operators preserve validity — so a crossing certifies
// corrupt input (a stale corner vector, a hand-edited bound file, a plane set
// from a different model) and the refiner refuses to emit the inverted pair.
var ErrBoundCrossing = errors.New("bounds: upper bound fell below lower bound")

// pointTol is the minimum improvement a sawtooth point must deliver at its
// own belief to be stored; matches the dominance tolerance of Set.Add.
const pointTol = 1e-12

// UpperBound is a sawtooth (point-set) upper bound on the POMDP value
// function, the dual of the hyperplane Set: a corner vector U₀ (a valid
// per-state upper bound, e.g. the QMDP vector or the trivial zero bound of
// Condition 2) plus a set of belief points with known upper-bound values.
// The bound at a belief is the sawtooth interpolation
//
//	V̄(π) = min( U₀·π, min_i U₀·π + μ_i·(v_i − U₀·c_i) ),
//	μ_i  = min_{s : c_i(s)>0} π(s)/c_i(s)
//
// which is valid by convexity of the optimal value function. Like Set, the
// points are stored structure-of-arrays style in one contiguous slab so
// Value streams it linearly.
//
// An UpperBound is not safe for concurrent mutation, but Value is safe from
// several goroutines on a bound nobody is mutating.
type UpperBound struct {
	corner   linalg.Vector
	pts      []float64 // point i is pts[i*n : (i+1)*n]
	vals     []float64 // vals[i] is the stored value at point i
	cornerAt []float64 // cornerAt[i] = U₀·c_i, precomputed at insertion
	n        int
}

// NewUpperBound creates a point-set upper bound anchored to the given corner
// vector (the per-state values U₀, which must themselves be a valid upper
// bound — QMDP or TrivialUpper).
func NewUpperBound(corner linalg.Vector) (*UpperBound, error) {
	if len(corner) == 0 {
		return nil, fmt.Errorf("bounds: empty upper-bound corner vector")
	}
	if !corner.IsFinite() {
		return nil, fmt.Errorf("bounds: upper-bound corner vector is not finite")
	}
	return &UpperBound{
		corner: append(linalg.Vector(nil), corner...),
		n:      len(corner),
	}, nil
}

// NumStates returns the dimension of the underlying belief space.
func (u *UpperBound) NumStates() int { return u.n }

// NumPoints returns the number of stored interior points.
func (u *UpperBound) NumPoints() int { return len(u.vals) }

// Corner returns (a copy of) the corner vector U₀.
func (u *UpperBound) Corner() linalg.Vector {
	return append(linalg.Vector(nil), u.corner...)
}

// Point returns (a copy of) interior point i and its stored value.
func (u *UpperBound) Point(i int) (pomdp.Belief, float64) {
	c := append(pomdp.Belief(nil), u.pts[i*u.n:(i+1)*u.n]...)
	return c, u.vals[i]
}

// Value evaluates the sawtooth upper bound at a belief. It panics on
// dimension mismatch (beliefs are validated upstream), mirroring Set.Value.
func (u *UpperBound) Value(pi pomdp.Belief) float64 {
	base := linalg.DotUnrolled(pi, u.corner)
	best := base
	for i := range u.vals {
		drop := u.vals[i] - u.cornerAt[i]
		if drop >= 0 {
			continue // the point does not improve on the corner plane
		}
		c := u.pts[i*u.n : (i+1)*u.n]
		mu := math.Inf(1)
		for s, cs := range c {
			if cs <= 0 {
				continue
			}
			if r := pi[s] / cs; r < mu {
				mu = r
				if r == 0 {
					break
				}
			}
		}
		if mu <= 0 || math.IsInf(mu, 1) {
			continue // π has no mass on some support state of c_i
		}
		if v := base + mu*drop; v < best {
			best = v
		}
	}
	return best
}

// AddPoint records that the value at belief π is at most v. A point that
// does not improve the current bound at π is discarded; a point at a belief
// bit-identical to a stored one lowers the stored value in place. Since
// stored values only ever decrease and points are only added, the bound is
// pointwise nonincreasing over the life of the set — the monotonicity the
// refiner's gap guarantee rests on. It reports whether the bound changed.
func (u *UpperBound) AddPoint(pi pomdp.Belief, v float64) (bool, error) {
	if len(pi) != u.n {
		return false, fmt.Errorf("bounds: point belief length %d, want %d", len(pi), u.n)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return false, fmt.Errorf("bounds: non-finite point value %v", v)
	}
	for i := range u.vals {
		if sameBelief(u.pts[i*u.n:(i+1)*u.n], pi) {
			if v < u.vals[i] {
				u.vals[i] = v
				return true, nil
			}
			return false, nil
		}
	}
	if v >= u.Value(pi)-pointTol {
		return false, nil
	}
	u.pts = append(u.pts, pi...)
	u.vals = append(u.vals, v)
	u.cornerAt = append(u.cornerAt, linalg.DotUnrolled(pi, u.corner))
	return true, nil
}

// sameBelief reports bit-exact equality (the equivalence the deterministic
// belief filter preserves, same notion as the FSC's belief keys).
func sameBelief(a []float64, b pomdp.Belief) bool {
	for i, x := range a {
		if math.Float64bits(x) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// The upper bound is usable directly as a leaf evaluator.
var _ pomdp.ValueFn = (*UpperBound)(nil)

// RefineConfig configures the HSVI-style bound refiner.
type RefineConfig struct {
	// Beta is the discount factor in (0, 1]; zero means 1 (undiscounted).
	Beta float64
	// Epsilon is the target root bound gap V̄(π₀) − V_B⁻(π₀) at which
	// refinement declares convergence; zero means 1e-6.
	Epsilon float64
	// MaxTrials bounds the number of forward-exploration trials; zero means
	// 256.
	MaxTrials int
	// MaxDepth caps each trial's exploration depth. Undiscounted recovery
	// models have no contraction to shrink the relevant horizon, so the cap
	// is load-bearing, not cosmetic; zero means 64.
	MaxDepth int
	// CrossTol is the numerical slack allowed before a negative gap is
	// reported as ErrBoundCrossing; zero means 1e-6.
	CrossTol float64
}

func (c RefineConfig) withDefaults() RefineConfig {
	if c.Beta == 0 {
		c.Beta = 1
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-6
	}
	if c.MaxTrials == 0 {
		c.MaxTrials = 256
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 64
	}
	if c.CrossTol == 0 {
		c.CrossTol = 1e-6
	}
	return c
}

// RefineReport summarizes one Run of the refiner.
type RefineReport struct {
	// InitialGap and FinalGap are the root bound gap before and after.
	InitialGap, FinalGap float64
	// Trials is the number of exploration trials performed.
	Trials int
	// Backups counts dual (lower+upper) point backups performed.
	Backups int
	// PointsAdded counts upper-bound sawtooth points added or lowered.
	PointsAdded int
	// PlanesAdded counts lower-bound hyperplanes kept by the set.
	PlanesAdded int
	// DeepestDepth is the deepest exploration depth any trial reached.
	DeepestDepth int
	// Converged reports whether FinalGap ≤ Epsilon.
	Converged bool
	// Wall is the wall-clock time of the Run.
	Wall time.Duration
}

// Refiner performs HSVI-style point-based refinement of a paired bound: a
// lower-bound hyperplane Set improved by the incremental backups of
// Equation 7 and a sawtooth UpperBound improved by belief-MDP backups, with
// beliefs chosen by gap-weighted forward exploration from a root belief
// (greedy action under the upper bound, successor with the largest
// probability-weighted excess gap — the IE-MAX/HSVI sampling rule, the loop
// shape of SARSOP/PBVI solvers). Both bounds tighten monotonically; the
// refined Set remains a plain Set, so the Max-Avg tree and the FSC compiler
// consume it unchanged.
type Refiner struct {
	p     *pomdp.POMDP
	lower *Updater
	upper *UpperBound
	cfg   RefineConfig
	sc    *pomdp.Scratch
	q     []float64
	path  []pomdp.Belief
}

// NewRefiner builds a refiner improving set and upper in place on model p.
func NewRefiner(p *pomdp.POMDP, set *Set, upper *UpperBound, cfg RefineConfig) (*Refiner, error) {
	cfg = cfg.withDefaults()
	if cfg.Epsilon <= 0 {
		return nil, fmt.Errorf("bounds: non-positive refine epsilon %v", cfg.Epsilon)
	}
	if cfg.MaxTrials < 0 || cfg.MaxDepth <= 0 {
		return nil, fmt.Errorf("bounds: invalid refine budget (trials %d, depth %d)", cfg.MaxTrials, cfg.MaxDepth)
	}
	if upper == nil {
		return nil, fmt.Errorf("bounds: nil upper bound")
	}
	if upper.NumStates() != p.NumStates() {
		return nil, fmt.Errorf("bounds: upper bound over %d states, model has %d", upper.NumStates(), p.NumStates())
	}
	lower, err := NewUpdater(p, set, Options{Beta: cfg.Beta})
	if err != nil {
		return nil, err
	}
	return &Refiner{
		p:     p,
		lower: lower,
		upper: upper,
		cfg:   cfg,
		sc:    pomdp.NewScratch(p),
	}, nil
}

// Set returns the lower-bound hyperplane set being refined.
func (r *Refiner) Set() *Set { return r.lower.Set() }

// Upper returns the upper bound being refined.
func (r *Refiner) Upper() *UpperBound { return r.upper }

// GapAt evaluates the bound gap V̄(π) − V_B⁻(π), clamped at zero, reading
// the lower bound through Peek so inspection cannot perturb least-used
// eviction. A gap below −CrossTol is reported as ErrBoundCrossing.
func (r *Refiner) GapAt(pi pomdp.Belief) (float64, error) {
	up := r.upper.Value(pi)
	lo := r.Set().Peek(pi)
	g := up - lo
	if g < -r.cfg.CrossTol {
		return g, fmt.Errorf("%w at belief %v: upper %.9g < lower %.9g", ErrBoundCrossing, pi, up, lo)
	}
	if g < 0 {
		g = 0
	}
	return g, nil
}

// Run refines both bounds from the given root belief until the root gap
// drops to Epsilon, the trial budget is exhausted, or a trial makes no
// progress (no plane kept, no point added, root gap unchanged — the fixpoint
// a depth-capped exploration can reach on undiscounted models). The partial
// report accompanies any error, including the bound-crossing refusal.
func (r *Refiner) Run(root pomdp.Belief) (RefineReport, error) {
	start := time.Now()
	var rep RefineReport
	done := func(err error) (RefineReport, error) {
		rep.Wall = time.Since(start)
		rep.Converged = rep.FinalGap <= r.cfg.Epsilon && rep.Trials <= r.cfg.MaxTrials
		return rep, err
	}
	if len(root) != r.p.NumStates() {
		return done(fmt.Errorf("bounds: root belief length %d, want %d", len(root), r.p.NumStates()))
	}
	if !root.IsDistribution() {
		return done(fmt.Errorf("bounds: root belief is not a distribution"))
	}
	g, err := r.GapAt(root)
	rep.InitialGap, rep.FinalGap = g, g
	if err != nil {
		return done(err)
	}
	for rep.Trials < r.cfg.MaxTrials && rep.FinalGap > r.cfg.Epsilon {
		planes, points := rep.PlanesAdded, rep.PointsAdded
		if err := r.trial(root, &rep); err != nil {
			return done(err)
		}
		rep.Trials++
		prev := rep.FinalGap
		if rep.FinalGap, err = r.GapAt(root); err != nil {
			return done(err)
		}
		if rep.PlanesAdded == planes && rep.PointsAdded == points && rep.FinalGap >= prev {
			break // a whole trial changed nothing; further trials won't either
		}
	}
	return done(nil)
}

// trial runs one forward-exploration pass: walk from root by the HSVI
// sampling rule collecting a belief path, then back up both bounds at every
// visited belief, deepest first (so shallower backups see the already-
// tightened bounds of their successors).
func (r *Refiner) trial(root pomdp.Belief, rep *RefineReport) error {
	r.path = append(r.path[:0], root)
	cur := root
	for depth := 1; depth < r.cfg.MaxDepth; depth++ {
		// Greedy action under the upper bound (IE-MAX): explore where the
		// optimistic value says the optimum might still hide.
		res, err := pomdp.BackupInto(r.p, r.sc, cur, r.cfg.Beta, r.upper, r.q)
		if err != nil {
			return err
		}
		r.q = res.QValues
		// Successor with the largest probability-weighted excess gap; stop
		// when every successor is already within epsilon.
		var next pomdp.Belief
		bestW := 0.0
		for _, succ := range r.p.Successors(r.sc, cur, res.Action) {
			g, err := r.GapAt(succ.Belief)
			if err != nil {
				return err
			}
			if w := succ.Prob * (g - r.cfg.Epsilon); w > bestW {
				bestW, next = w, succ.Belief
			}
		}
		if next == nil {
			break
		}
		r.path = append(r.path, next)
		cur = next
		if depth+1 > rep.DeepestDepth {
			rep.DeepestDepth = depth + 1
		}
	}
	for i := len(r.path) - 1; i >= 0; i-- {
		if err := r.backupAt(r.path[i], rep); err != nil {
			return err
		}
	}
	return nil
}

// backupAt tightens both bounds at one belief: an incremental hyperplane
// backup (Equation 7) for the lower bound and a belief-MDP backup evaluated
// through the sawtooth bound for the upper, then verifies the pair is still
// ordered there.
func (r *Refiner) backupAt(pi pomdp.Belief, rep *RefineReport) error {
	lres, err := r.lower.UpdateAt(pi)
	if err != nil {
		return err
	}
	if lres.Added {
		rep.PlanesAdded++
	}
	ures, err := pomdp.BackupInto(r.p, r.sc, pi, r.cfg.Beta, r.upper, r.q)
	if err != nil {
		return err
	}
	r.q = ures.QValues
	added, err := r.upper.AddPoint(pi, ures.Value)
	if err != nil {
		return err
	}
	if added {
		rep.PointsAdded++
	}
	rep.Backups++
	_, err = r.GapAt(pi)
	return err
}
