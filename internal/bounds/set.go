// Package bounds implements value-function bounds for POMDPs: the paper's
// RA-Bound (Section 3) with its convergence machinery for undiscounted
// recovery models, the two comparison lower bounds from the literature
// (BI-POMDP and the blind-policy method) whose divergence on recovery models
// the paper demonstrates, the incremental linear-function improvement scheme
// of Section 4.1, and — as the extension the paper's conclusion calls for —
// a QMDP-style upper bound usable for gap diagnostics and branch-and-bound.
//
// A lower bound is represented as a set of hyperplanes over the belief
// simplex: B = {b₁, …, b_k} with V_B⁻(π) = max_b π·b (Equation 6). The
// RA-Bound alone is the single hyperplane [V_m⁻(s)]_s.
package bounds

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
)

// ErrUnbounded is wrapped by bound computations whose value diverges to -∞
// on the given model (the failure mode of BI-POMDP and blind-policy bounds
// on undiscounted recovery models).
var ErrUnbounded = errors.New("bounds: bound diverges on this model")

// ErrEmptySet is returned when evaluating an empty hyperplane set.
var ErrEmptySet = errors.New("bounds: empty hyperplane set")

// Set is a collection of lower-bound hyperplanes over the belief simplex,
// with the max-of-hyperplanes evaluation of Equation 6, dominated-plane
// pruning, and an optional capacity with least-used eviction (the finite-
// storage strategy sketched in Section 4.3 of the paper).
//
// A Set is not safe for concurrent mutation (Add vs anything else), but
// Value/ValueArg are safe to call from several goroutines at once on a set
// nobody is mutating — the usage counters behind least-used eviction are
// updated atomically — so read-only controllers may share one set (e.g. a
// pool of campaign workers evaluating the same bootstrapped bound).
type Set struct {
	planes []linalg.Vector
	uses   []uint64 // accessed atomically in ValueArg; plainly under mutation
	maxLen int      // 0 = unlimited
	n      int      // state count
}

// NewSet creates a hyperplane set over an n-state belief space, seeded with
// the given base hyperplanes (each of length n).
func NewSet(n int, base ...linalg.Vector) (*Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bounds: non-positive state count %d", n)
	}
	s := &Set{n: n}
	for i, b := range base {
		if len(b) != n {
			return nil, fmt.Errorf("bounds: base hyperplane %d has length %d, want %d", i, len(b), n)
		}
		if !b.IsFinite() {
			return nil, fmt.Errorf("bounds: base hyperplane %d is not finite", i)
		}
		s.planes = append(s.planes, b.Clone())
		s.uses = append(s.uses, 0)
	}
	return s, nil
}

// SetCapacity bounds the number of stored hyperplanes; when an Add would
// exceed it, the least-used plane (other than the first, which is kept as
// the always-valid base) is evicted. Zero removes the limit.
func (s *Set) SetCapacity(maxLen int) { s.maxLen = maxLen }

// Size returns the number of stored hyperplanes.
func (s *Set) Size() int { return len(s.planes) }

// NumStates returns the dimension of the underlying belief space.
func (s *Set) NumStates() int { return s.n }

// Value evaluates V_B⁻(π) = max_b π·b and records a use of the maximizing
// plane. It panics on dimension mismatch (beliefs are validated upstream)
// and returns -Inf for an empty set.
func (s *Set) Value(pi pomdp.Belief) float64 {
	v, _ := s.ValueArg(pi)
	return v
}

// ValueArg is Value plus the index of the maximizing hyperplane (-1 when
// the set is empty).
func (s *Set) ValueArg(pi pomdp.Belief) (float64, int) {
	best, arg := math.Inf(-1), -1
	x := linalg.Vector(pi)
	for i, b := range s.planes {
		if v := x.Dot(b); v > best {
			best, arg = v, i
		}
	}
	if arg >= 0 {
		atomic.AddUint64(&s.uses[arg], 1)
	}
	return best, arg
}

// Plane returns (a copy of) hyperplane i.
func (s *Set) Plane(i int) linalg.Vector { return s.planes[i].Clone() }

// Add inserts a new hyperplane unless it is pointwise dominated by an
// existing one (in which case it can never be the max anywhere on the
// simplex and is discarded, per Section 4.1: "any additional bound
// hyperplanes that are not better in at least some regions of the
// probability simplex can be discarded"). It returns whether the plane was
// kept. Planes that dominate existing ones cause the dominated ones to be
// pruned. If a capacity is set, the least-used non-base plane is evicted to
// make room.
func (s *Set) Add(b linalg.Vector) (bool, error) {
	if len(b) != s.n {
		return false, fmt.Errorf("bounds: hyperplane length %d, want %d", len(b), s.n)
	}
	if !b.IsFinite() {
		return false, fmt.Errorf("bounds: non-finite hyperplane")
	}
	const tol = 1e-12
	for _, existing := range s.planes {
		if dominates(existing, b, tol) {
			return false, nil
		}
	}
	// Prune planes the newcomer dominates (never the base plane at index 0,
	// which callers rely on for the Property 1(b) guarantee).
	w := 1
	for i := 1; i < len(s.planes); i++ {
		if dominates(b, s.planes[i], tol) {
			continue
		}
		s.planes[w] = s.planes[i]
		s.uses[w] = s.uses[i]
		w++
	}
	s.planes = s.planes[:w]
	s.uses = s.uses[:w]

	if s.maxLen > 0 && len(s.planes) >= s.maxLen {
		s.evictLeastUsed()
	}
	s.planes = append(s.planes, b.Clone())
	s.uses = append(s.uses, 0)
	return true, nil
}

// dominates reports a ≥ b pointwise (within tol).
func dominates(a, b linalg.Vector, tol float64) bool {
	for i := range a {
		if a[i] < b[i]-tol {
			return false
		}
	}
	return true
}

func (s *Set) evictLeastUsed() {
	if len(s.planes) <= 1 {
		return
	}
	victim := 1
	for i := 2; i < len(s.planes); i++ {
		if s.uses[i] < s.uses[victim] {
			victim = i
		}
	}
	s.planes = append(s.planes[:victim], s.planes[victim+1:]...)
	s.uses = append(s.uses[:victim], s.uses[victim+1:]...)
}

// CompactLP removes every hyperplane that is nowhere strictly above the
// maximum of the others — the exact version of Section 4.1's "not better in
// at least some regions of the probability simplex can be discarded" test,
// implemented with the usefulness LP. The base plane (index 0) is always
// kept so the Property 1(b) guarantee anchored to it survives. V_B⁻ is
// unchanged at every belief. It returns the number of planes removed.
func (s *Set) CompactLP() (int, error) {
	removed := 0
	for i := 1; i < len(s.planes); {
		others := make([]linalg.Vector, 0, len(s.planes)-1)
		others = append(others, s.planes[:i]...)
		others = append(others, s.planes[i+1:]...)
		useful, err := linalg.PlaneUseful(s.planes[i], others, 1e-9)
		if err != nil {
			return removed, fmt.Errorf("bounds: compact: %w", err)
		}
		if useful {
			i++
			continue
		}
		s.planes = append(s.planes[:i], s.planes[i+1:]...)
		s.uses = append(s.uses[:i], s.uses[i+1:]...)
		removed++
	}
	return removed, nil
}

// AsValueFn adapts the set to the pomdp.ValueFn interface.
func (s *Set) AsValueFn() pomdp.ValueFn {
	return pomdp.ValueFunc(func(pi pomdp.Belief) float64 { return s.Value(pi) })
}
