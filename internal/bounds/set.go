// Package bounds implements value-function bounds for POMDPs: the paper's
// RA-Bound (Section 3) with its convergence machinery for undiscounted
// recovery models, the two comparison lower bounds from the literature
// (BI-POMDP and the blind-policy method) whose divergence on recovery models
// the paper demonstrates, the incremental linear-function improvement scheme
// of Section 4.1, and — as the extension the paper's conclusion calls for —
// a QMDP-style upper bound usable for gap diagnostics and branch-and-bound.
//
// A lower bound is represented as a set of hyperplanes over the belief
// simplex: B = {b₁, …, b_k} with V_B⁻(π) = max_b π·b (Equation 6). The
// RA-Bound alone is the single hyperplane [V_m⁻(s)]_s.
//
// The dual upper bound is a sawtooth point set (UpperBound): a per-state
// corner vector (QMDP or the trivial zero bound of Condition 2) plus belief
// points with known upper-bound values, interpolated by convexity. Refiner
// pairs the two and tightens both HSVI-style — gap-weighted forward
// exploration from a root belief, dual backups at every visited point —
// until the root gap closes. Both structures tighten monotonically: Set.Add
// only raises the lower envelope and UpperBound.AddPoint only lowers the
// sawtooth, so the gap is pointwise nonincreasing over a refinement run,
// and a pair that ever crosses is refused with ErrBoundCrossing. The
// refined Set stays a plain Set, consumed unchanged by the Max-Avg tree and
// the FSC compiler.
package bounds

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
)

// ErrUnbounded is wrapped by bound computations whose value diverges to -∞
// on the given model (the failure mode of BI-POMDP and blind-policy bounds
// on undiscounted recovery models).
var ErrUnbounded = errors.New("bounds: bound diverges on this model")

// ErrEmptySet is returned when evaluating an empty hyperplane set.
var ErrEmptySet = errors.New("bounds: empty hyperplane set")

// Set is a collection of lower-bound hyperplanes over the belief simplex,
// with the max-of-hyperplanes evaluation of Equation 6, dominated-plane
// pruning, and an optional capacity with least-used eviction (the finite-
// storage strategy sketched in Section 4.3 of the paper).
//
// The planes are stored structure-of-arrays style in one contiguous
// []float64 slab (plane i occupies slab[i·n : (i+1)·n]), so the
// max-of-hyperplanes scan streams a single allocation linearly and
// ValueBatch can amortize one pass over the slab across many beliefs.
//
// A Set is not safe for concurrent mutation (Add vs anything else), but
// Value/ValueArg/ValueBatch are safe to call from several goroutines at once
// on a set nobody is mutating — the usage counters behind least-used
// eviction are updated atomically — so read-only controllers may share one
// set (e.g. a pool of campaign workers evaluating the same bootstrapped
// bound).
type Set struct {
	slab      []float64 // plane i is slab[i*n : (i+1)*n]
	uses      []uint64  // accessed atomically in ValueArg/ValueBatch; plainly under mutation
	maxLen    int       // 0 = unlimited
	n         int       // state count
	argPool   sync.Pool // *[]int argmax scratch for ValueBatch
	evictions uint64    // capacity evictions performed; read atomically by Evictions
}

// NewSet creates a hyperplane set over an n-state belief space, seeded with
// the given base hyperplanes (each of length n).
func NewSet(n int, base ...linalg.Vector) (*Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bounds: non-positive state count %d", n)
	}
	s := &Set{n: n}
	for i, b := range base {
		if len(b) != n {
			return nil, fmt.Errorf("bounds: base hyperplane %d has length %d, want %d", i, len(b), n)
		}
		if !b.IsFinite() {
			return nil, fmt.Errorf("bounds: base hyperplane %d is not finite", i)
		}
		s.slab = append(s.slab, b...)
		s.uses = append(s.uses, 0)
	}
	return s, nil
}

// SetCapacity bounds the number of stored hyperplanes; when an Add would
// exceed it, the least-used plane (other than the first, which is kept as
// the always-valid base) is evicted. Zero removes the limit.
func (s *Set) SetCapacity(maxLen int) { s.maxLen = maxLen }

// Size returns the number of stored hyperplanes.
func (s *Set) Size() int { return len(s.uses) }

// NumStates returns the dimension of the underlying belief space.
func (s *Set) NumStates() int { return s.n }

// row returns plane i as a view into the slab (capped so appends cannot
// clobber the neighbouring plane).
func (s *Set) row(i int) []float64 {
	return s.slab[i*s.n : (i+1)*s.n : (i+1)*s.n]
}

// at returns entry j of plane i.
func (s *Set) at(i, j int) float64 { return s.slab[i*s.n+j] }

// Value evaluates V_B⁻(π) = max_b π·b and records a use of the maximizing
// plane. It panics on dimension mismatch (beliefs are validated upstream)
// and returns -Inf for an empty set.
func (s *Set) Value(pi pomdp.Belief) float64 {
	v, _ := s.ValueArg(pi)
	return v
}

// ValueArg is Value plus the index of the maximizing hyperplane (-1 when
// the set is empty).
func (s *Set) ValueArg(pi pomdp.Belief) (float64, int) {
	best, arg := math.Inf(-1), -1
	for i := 0; i < len(s.uses); i++ {
		if v := linalg.DotUnrolled(pi, s.row(i)); v > best {
			best, arg = v, i
		}
	}
	if arg >= 0 {
		atomic.AddUint64(&s.uses[arg], 1)
	}
	return best, arg
}

// ValueBatch evaluates V_B⁻ at every belief in pis with one linear pass over
// the plane slab (plane-outer, belief-inner), writing the values into out
// (grown if its capacity is insufficient) and returning it. Each result is
// bit-identical to Value on the same belief — the per-plane dot products use
// the same kernel and the same first-maximizer comparison — and the usage
// counter of each belief's maximizing plane is bumped exactly as ValueArg
// would, so eviction behaviour is unchanged. With a preallocated out the
// call performs no allocations in steady state.
func (s *Set) ValueBatch(pis []pomdp.Belief, out []float64) []float64 {
	m := len(pis)
	if cap(out) < m {
		out = make([]float64, m)
	}
	out = out[:m]
	argp := s.getArgs(m)
	args := *argp
	for j := range out {
		out[j] = math.Inf(-1)
		args[j] = -1
	}
	for i := 0; i < len(s.uses); i++ {
		plane := s.row(i)
		for j, pi := range pis {
			if v := linalg.DotUnrolled(pi, plane); v > out[j] {
				out[j], args[j] = v, i
			}
		}
	}
	for _, a := range args {
		if a >= 0 {
			atomic.AddUint64(&s.uses[a], 1)
		}
	}
	s.argPool.Put(argp)
	return out
}

// getArgs returns a pooled argmax scratch slice of length m.
func (s *Set) getArgs(m int) *[]int {
	p, _ := s.argPool.Get().(*[]int)
	if p == nil {
		p = new([]int)
	}
	if cap(*p) < m {
		*p = make([]int, m)
	}
	*p = (*p)[:m]
	return p
}

// Peek evaluates V_B⁻(π) without recording a use of the maximizing plane.
// Observability callers (decision stats, bound-gap traces) use it so that
// inspecting the bound cannot perturb least-used eviction and thereby change
// which planes a capacity-limited set keeps.
func (s *Set) Peek(pi pomdp.Belief) float64 {
	best := math.Inf(-1)
	for i := 0; i < len(s.uses); i++ {
		if v := linalg.DotUnrolled(pi, s.row(i)); v > best {
			best = v
		}
	}
	return best
}

// Evictions returns the number of capacity evictions performed so far. Safe
// to call concurrently with readers; like Size it may race with an Add.
func (s *Set) Evictions() uint64 { return atomic.LoadUint64(&s.evictions) }

// Plane returns (a copy of) hyperplane i.
func (s *Set) Plane(i int) linalg.Vector {
	return append(linalg.Vector(nil), s.row(i)...)
}

// Add inserts a new hyperplane unless it is pointwise dominated by an
// existing one (in which case it can never be the max anywhere on the
// simplex and is discarded, per Section 4.1: "any additional bound
// hyperplanes that are not better in at least some regions of the
// probability simplex can be discarded"). It returns whether the plane was
// kept. Planes that dominate existing ones cause the dominated ones to be
// pruned. If a capacity is set, the least-used non-base plane is evicted to
// make room.
func (s *Set) Add(b linalg.Vector) (bool, error) {
	if len(b) != s.n {
		return false, fmt.Errorf("bounds: hyperplane length %d, want %d", len(b), s.n)
	}
	if !b.IsFinite() {
		return false, fmt.Errorf("bounds: non-finite hyperplane")
	}
	const tol = 1e-12
	for i := 0; i < s.Size(); i++ {
		if dominates(s.row(i), b, tol) {
			return false, nil
		}
	}
	// Prune planes the newcomer dominates (never the base plane at index 0,
	// which callers rely on for the Property 1(b) guarantee).
	w := 1
	for i := 1; i < s.Size(); i++ {
		if dominates(b, s.row(i), tol) {
			continue
		}
		if w != i {
			copy(s.slab[w*s.n:(w+1)*s.n], s.slab[i*s.n:(i+1)*s.n])
			s.uses[w] = s.uses[i]
		}
		w++
	}
	s.slab = s.slab[:w*s.n]
	s.uses = s.uses[:w]

	if s.maxLen > 0 && s.Size() >= s.maxLen {
		s.evictLeastUsed()
	}
	s.slab = append(s.slab, b...)
	s.uses = append(s.uses, 0)
	return true, nil
}

// dominates reports a ≥ b pointwise (within tol).
func dominates(a, b []float64, tol float64) bool {
	for i := range a {
		if a[i] < b[i]-tol {
			return false
		}
	}
	return true
}

// removeAt deletes plane i from the slab and the usage counters.
func (s *Set) removeAt(i int) {
	copy(s.slab[i*s.n:], s.slab[(i+1)*s.n:])
	s.slab = s.slab[:len(s.slab)-s.n]
	s.uses = append(s.uses[:i], s.uses[i+1:]...)
}

func (s *Set) evictLeastUsed() {
	if s.Size() <= 1 {
		return
	}
	victim := 1
	for i := 2; i < s.Size(); i++ {
		if s.uses[i] < s.uses[victim] {
			victim = i
		}
	}
	s.removeAt(victim)
	atomic.AddUint64(&s.evictions, 1)
}

// CompactLP removes every hyperplane that is nowhere strictly above the
// maximum of the others — the exact version of Section 4.1's "not better in
// at least some regions of the probability simplex can be discarded" test,
// implemented with the usefulness LP. The base plane (index 0) is always
// kept so the Property 1(b) guarantee anchored to it survives. V_B⁻ is
// unchanged at every belief. It returns the number of planes removed.
func (s *Set) CompactLP() (int, error) {
	removed := 0
	for i := 1; i < s.Size(); {
		others := make([]linalg.Vector, 0, s.Size()-1)
		for k := 0; k < s.Size(); k++ {
			if k != i {
				others = append(others, linalg.Vector(s.row(k)))
			}
		}
		useful, err := linalg.PlaneUseful(linalg.Vector(s.row(i)), others, 1e-9)
		if err != nil {
			return removed, fmt.Errorf("bounds: compact: %w", err)
		}
		if useful {
			i++
			continue
		}
		s.removeAt(i)
		removed++
	}
	return removed, nil
}

// AsValueFn adapts the set to the pomdp.ValueFn interface. Note that a *Set
// already implements pomdp.ValueFn (and pomdp.BatchValueFn) directly; this
// wrapper survives for callers that want a plain ValueFunc without the
// batched fast path.
func (s *Set) AsValueFn() pomdp.ValueFn {
	return pomdp.ValueFunc(func(pi pomdp.Belief) float64 { return s.Value(pi) })
}

// The set is usable directly as a (batched) leaf evaluator.
var (
	_ pomdp.ValueFn      = (*Set)(nil)
	_ pomdp.BatchValueFn = (*Set)(nil)
)
