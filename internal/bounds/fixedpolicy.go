package bounds

import (
	"fmt"
	"math"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
)

// FixedPolicy generalizes the RA-Bound from the uniform action distribution
// to an arbitrary state-independent action distribution w: the hyperplane
// is the expected total reward of the Markov chain that plays a ~ w in
// every state,
//
//	V_w(s) = Σ_a w(a)·[ r(s,a) + β Σ_s' p(s'|s,a)·V_w(s') ].
//
// The paper's Lemma 3.1 proof only uses that the maximum over actions
// dominates any fixed convex combination of them — a property that holds
// for every state-independent w, not just the uniform one — so V_w is a
// valid POMDP lower bound under exactly the same conditions as the
// RA-Bound. (State-DEPENDENT policies do not qualify: their belief-space
// value is Σ_s π(s)·V(s) with per-state maximization, which is the QMDP
// UPPER bound.)
//
// Choosing w to favor actions that make progress from the likely faults
// yields a strictly tighter starting bound than RA on many models; the
// uniform w recovers RA exactly.
func FixedPolicy(p *pomdp.POMDP, weights []float64, opts Options) (linalg.Vector, error) {
	o := opts.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(weights) != p.NumActions() {
		return nil, fmt.Errorf("bounds: %d weights for %d actions", len(weights), p.NumActions())
	}
	var total float64
	for a, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("bounds: invalid weight %v for action %d", w, a)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("bounds: weights sum to %v", total)
	}

	n := p.NumStates()
	b := linalg.NewBuilder(n, n)
	reward := linalg.NewVector(n)
	for a := 0; a < p.NumActions(); a++ {
		w := weights[a] / total
		if w == 0 {
			continue
		}
		for s := 0; s < n; s++ {
			p.M.Trans[a].Row(s, func(c int, v float64) { b.Add(s, c, v*w) })
		}
		reward.AddScaled(w, p.M.Reward[a])
	}
	chain, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("bounds: fixed-policy chain: %w", err)
	}
	v, _, err := linalg.SolveFixedPoint(chain, o.Beta, reward, o.Solver)
	if err != nil {
		return nil, fmt.Errorf("bounds: fixed-policy solve: %w", err)
	}
	return v, nil
}
