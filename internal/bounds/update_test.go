package bounds

import (
	"testing"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

func TestNewUpdaterValidation(t *testing.T) {
	mod, _ := withoutNotification(t)
	set, err := RASet(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUpdater(mod, set, Options{Beta: 2}); err == nil {
		t.Error("beta=2 accepted")
	}
	empty, err := NewSet(mod.NumStates())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUpdater(mod, empty, Options{}); err == nil {
		t.Error("empty set accepted")
	}
	wrong, err := NewSet(2, linalg.Vector{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUpdater(mod, wrong, Options{}); err == nil {
		t.Error("wrong-dimension set accepted")
	}
}

func TestUpdateAtNeverDecreasesBound(t *testing.T) {
	mod, _ := withoutNotification(t)
	set, err := RASet(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(mod, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for trial := 0; trial < 40; trial++ {
		pi := randomBelief(r, mod.NumStates())
		res, err := u.UpdateAt(pi)
		if err != nil {
			t.Fatal(err)
		}
		if res.After < res.Before-1e-9 {
			t.Errorf("trial %d: bound decreased %v -> %v", trial, res.Before, res.After)
		}
		if res.Action < 0 || res.Action >= mod.NumActions() {
			t.Errorf("trial %d: bad action %d", trial, res.Action)
		}
	}
}

func TestUpdateImprovesAtUniformBelief(t *testing.T) {
	// The RA-Bound ignores observations entirely, so at least the first
	// backed-up plane must strictly improve the bound at the uniform belief
	// (Figure 5(a)'s rapid early tightening).
	mod, _ := withoutNotification(t)
	set, err := RASet(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(mod, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pi := pomdp.UniformBelief(mod.NumStates())
	var first, last float64
	for i := 0; i < 15; i++ {
		res, err := u.UpdateAt(pi)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Before
		}
		last = res.After
	}
	if !(last > first+1e-6) {
		t.Errorf("bound did not improve at uniform belief: %v -> %v", first, last)
	}
}

func TestUpdatedBoundsRemainValidLowerBounds(t *testing.T) {
	// After improvement, V_B must still lie below the L_p^k 0 iterates
	// (which upper-bound the true value function for non-positive rewards).
	mod, _ := withoutNotification(t)
	set, err := RASet(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(mod, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(21)
	for i := 0; i < 20; i++ {
		if _, err := u.UpdateAt(randomBelief(r, mod.NumStates())); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 8; trial++ {
		pi := randomBelief(r, mod.NumStates())
		vb := set.Value(pi)
		if upper := lpIterate(t, mod, pi, 3); vb > upper+1e-7 {
			t.Errorf("trial %d: improved bound %v exceeds L_p^3 0 = %v", trial, vb, upper)
		}
		if vb > 0+1e-9 {
			t.Errorf("trial %d: improved bound %v exceeds trivial upper bound 0", trial, vb)
		}
	}
}

func TestUpdatedBoundsStayConsistent(t *testing.T) {
	// Property 1(b) should continue to hold after incremental updates on
	// this model (the paper conjectures this for transformed recovery
	// models and verifies it experimentally).
	mod, _ := withoutNotification(t)
	set, err := RASet(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(mod, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(33)
	for i := 0; i < 25; i++ {
		if _, err := u.UpdateAt(randomBelief(r, mod.NumStates())); err != nil {
			t.Fatal(err)
		}
	}
	sc := pomdp.NewScratch(mod)
	for trial := 0; trial < 15; trial++ {
		pi := randomBelief(r, mod.NumStates())
		rep, err := CheckConsistency(mod, sc, set, pi, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Errorf("trial %d: consistency violated: V_B %v > L_p V_B %v", trial, rep.Bound, rep.Backup)
		}
	}
}

func TestUpdaterSetAccessor(t *testing.T) {
	mod, _ := withoutNotification(t)
	set, err := RASet(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(mod, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if u.Set() != set {
		t.Error("Set accessor does not return the underlying set")
	}
}

func TestUpdateAtRejectsShortBelief(t *testing.T) {
	mod, _ := withoutNotification(t)
	set, err := RASet(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(mod, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.UpdateAt(pomdp.Belief{1}); err == nil {
		t.Error("short belief accepted")
	}
}
