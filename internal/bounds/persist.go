package bounds

import (
	"encoding/json"
	"fmt"

	"bpomdp/internal/linalg"
)

// setJSON is the stable on-disk representation of a hyperplane set, so a
// bound bootstrapped offline (minutes of simulation) can be shipped with a
// deployment and loaded by the online controller at startup.
type setJSON struct {
	// States is the dimension of the belief space.
	States int `json:"states"`
	// Capacity is the optional plane cap (0 = unlimited).
	Capacity int `json:"capacity,omitempty"`
	// Planes are the bound hyperplanes, base plane first.
	Planes [][]float64 `json:"planes"`
}

// MarshalJSON encodes the set (planes and capacity; usage counters are
// transient and not persisted).
func (s *Set) MarshalJSON() ([]byte, error) {
	out := setJSON{
		States:   s.n,
		Capacity: s.maxLen,
		Planes:   make([][]float64, s.Size()),
	}
	for i := range out.Planes {
		out.Planes[i] = append([]float64(nil), s.row(i)...)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a set previously encoded with MarshalJSON,
// validating dimensions and finiteness.
func (s *Set) UnmarshalJSON(data []byte) error {
	var in setJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("bounds: decode set: %w", err)
	}
	if in.States <= 0 {
		return fmt.Errorf("bounds: decode set: non-positive state count %d", in.States)
	}
	slab := make([]float64, 0, len(in.Planes)*in.States)
	for i, p := range in.Planes {
		if len(p) != in.States {
			return fmt.Errorf("bounds: decode set: plane %d has length %d, want %d", i, len(p), in.States)
		}
		if !linalg.Vector(p).IsFinite() {
			return fmt.Errorf("bounds: decode set: plane %d is not finite", i)
		}
		slab = append(slab, p...)
	}
	s.n = in.States
	s.maxLen = in.Capacity
	s.slab = slab
	s.uses = make([]uint64, len(in.Planes))
	return nil
}
