package bounds

import (
	"encoding/json"
	"fmt"

	"bpomdp/internal/linalg"
)

// setJSON is the stable on-disk representation of a hyperplane set, so a
// bound bootstrapped offline (minutes of simulation) can be shipped with a
// deployment and loaded by the online controller at startup.
type setJSON struct {
	// States is the dimension of the belief space.
	States int `json:"states"`
	// Capacity is the optional plane cap (0 = unlimited).
	Capacity int `json:"capacity,omitempty"`
	// Planes are the bound hyperplanes, base plane first.
	Planes [][]float64 `json:"planes"`
}

// MarshalJSON encodes the set (planes and capacity; usage counters are
// transient and not persisted).
func (s *Set) MarshalJSON() ([]byte, error) {
	out := setJSON{
		States:   s.n,
		Capacity: s.maxLen,
		Planes:   make([][]float64, s.Size()),
	}
	for i := range out.Planes {
		out.Planes[i] = append([]float64(nil), s.row(i)...)
	}
	return json.Marshal(out)
}

// upperJSON is the stable on-disk representation of a sawtooth upper bound,
// the artifact cmd/boundsrefine writes next to the refined lower set.
type upperJSON struct {
	// States is the dimension of the belief space.
	States int `json:"states"`
	// Corner is the per-state corner vector U₀.
	Corner []float64 `json:"corner"`
	// Points and Values are the interior sawtooth points.
	Points [][]float64 `json:"points,omitempty"`
	Values []float64   `json:"values,omitempty"`
}

// MarshalJSON encodes the upper bound (corner and interior points).
func (u *UpperBound) MarshalJSON() ([]byte, error) {
	out := upperJSON{
		States: u.n,
		Corner: append([]float64(nil), u.corner...),
		Values: append([]float64(nil), u.vals...),
		Points: make([][]float64, u.NumPoints()),
	}
	for i := range out.Points {
		out.Points[i] = append([]float64(nil), u.pts[i*u.n:(i+1)*u.n]...)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes an upper bound previously encoded with MarshalJSON,
// validating dimensions and finiteness.
func (u *UpperBound) UnmarshalJSON(data []byte) error {
	var in upperJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("bounds: decode upper bound: %w", err)
	}
	if in.States <= 0 {
		return fmt.Errorf("bounds: decode upper bound: non-positive state count %d", in.States)
	}
	if len(in.Corner) != in.States {
		return fmt.Errorf("bounds: decode upper bound: corner length %d, want %d", len(in.Corner), in.States)
	}
	if !linalg.Vector(in.Corner).IsFinite() {
		return fmt.Errorf("bounds: decode upper bound: corner is not finite")
	}
	if len(in.Points) != len(in.Values) {
		return fmt.Errorf("bounds: decode upper bound: %d points but %d values", len(in.Points), len(in.Values))
	}
	if !linalg.Vector(in.Values).IsFinite() {
		return fmt.Errorf("bounds: decode upper bound: point values are not finite")
	}
	dec, err := NewUpperBound(in.Corner)
	if err != nil {
		return err
	}
	for i, pt := range in.Points {
		if len(pt) != in.States {
			return fmt.Errorf("bounds: decode upper bound: point %d has length %d, want %d", i, len(pt), in.States)
		}
		if !linalg.Vector(pt).IsFinite() {
			return fmt.Errorf("bounds: decode upper bound: point %d is not finite", i)
		}
		dec.pts = append(dec.pts, pt...)
		dec.vals = append(dec.vals, in.Values[i])
		dec.cornerAt = append(dec.cornerAt, linalg.DotUnrolled(pt, dec.corner))
	}
	*u = *dec
	return nil
}

// UnmarshalJSON decodes a set previously encoded with MarshalJSON,
// validating dimensions and finiteness.
func (s *Set) UnmarshalJSON(data []byte) error {
	var in setJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("bounds: decode set: %w", err)
	}
	if in.States <= 0 {
		return fmt.Errorf("bounds: decode set: non-positive state count %d", in.States)
	}
	slab := make([]float64, 0, len(in.Planes)*in.States)
	for i, p := range in.Planes {
		if len(p) != in.States {
			return fmt.Errorf("bounds: decode set: plane %d has length %d, want %d", i, len(p), in.States)
		}
		if !linalg.Vector(p).IsFinite() {
			return fmt.Errorf("bounds: decode set: plane %d is not finite", i)
		}
		slab = append(slab, p...)
	}
	s.n = in.States
	s.maxLen = in.Capacity
	s.slab = slab
	s.uses = make([]uint64, len(in.Planes))
	return nil
}
