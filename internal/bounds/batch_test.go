package bounds

import (
	"math"
	"testing"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// randomPlanes draws k random hyperplanes over n states, values in [-10, 0]
// (lower bounds on costs-to-go are non-positive in the recovery models).
func randomPlanes(stream *rng.Stream, k, n int) []linalg.Vector {
	planes := make([]linalg.Vector, k)
	for i := range planes {
		b := make(linalg.Vector, n)
		for s := range b {
			b[s] = -10 * stream.Float64()
		}
		planes[i] = b
	}
	return planes
}

// randomBeliefs draws m random points of the n-simplex.
func randomBeliefs(stream *rng.Stream, m, n int) []pomdp.Belief {
	pis := make([]pomdp.Belief, m)
	for i := range pis {
		pi := make(pomdp.Belief, n)
		sum := 0.0
		for s := range pi {
			pi[s] = stream.Float64()
			sum += pi[s]
		}
		for s := range pi {
			pi[s] /= sum
		}
		pis[i] = pi
	}
	return pis
}

// buildSet adds the given planes to a fresh set (capacity optional),
// interleaving value queries from the driver so usage counters shape
// eviction exactly as the caller scripts them.
func buildSet(t *testing.T, n, capacity int, planes []linalg.Vector) *Set {
	t.Helper()
	s, err := NewSet(n, planes[0])
	if err != nil {
		t.Fatal(err)
	}
	if capacity > 0 {
		s.SetCapacity(capacity)
	}
	for _, b := range planes[1:] {
		if _, err := s.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestValueBatchMatchesValueArg is the property test pinning ValueBatch's
// bit-identity contract: across random sets and random beliefs, the batched
// values equal the per-belief ValueArg values exactly (==, not within
// epsilon), and both paths bump identical usage counters.
func TestValueBatchMatchesValueArg(t *testing.T) {
	stream := rng.New(2024)
	for trial := 0; trial < 50; trial++ {
		n := 1 + stream.IntN(9)
		k := 1 + stream.IntN(12)
		m := 1 + stream.IntN(40)
		planes := randomPlanes(stream.SplitN("planes", trial), k, n)
		pis := randomBeliefs(stream.SplitN("beliefs", trial), m, n)

		ref := buildSet(t, n, 0, planes)
		bat := buildSet(t, n, 0, planes)

		want := make([]float64, m)
		for j, pi := range pis {
			want[j], _ = ref.ValueArg(pi)
		}
		got := bat.ValueBatch(pis, make([]float64, 0, m))
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d: belief %d: ValueBatch %v != ValueArg %v (n=%d k=%d)",
					trial, j, got[j], want[j], n, k)
			}
		}
		for i := range ref.uses {
			if ref.uses[i] != bat.uses[i] {
				t.Fatalf("trial %d: plane %d usage diverged: ValueArg %d, ValueBatch %d",
					trial, i, ref.uses[i], bat.uses[i])
			}
		}
	}
}

// TestValueBatchEvictionParity drives two identically-built capacity-capped
// twin sets — one through ValueArg, one through ValueBatch — with the same
// interleaving of queries and Adds. Identical counter bumps must produce
// identical evictions, leaving identical slabs.
func TestValueBatchEvictionParity(t *testing.T) {
	stream := rng.New(7)
	const n, capacity = 4, 5
	planes := randomPlanes(stream.SplitN("seed", 0), 2, n)
	ref := buildSet(t, n, capacity, planes)
	bat := buildSet(t, n, capacity, planes)

	out := make([]float64, 0, 16)
	for round := 0; round < 30; round++ {
		pis := randomBeliefs(stream.SplitN("q", round), 1+stream.IntN(8), n)
		for _, pi := range pis {
			ref.ValueArg(pi)
		}
		out = bat.ValueBatch(pis, out)

		b := randomPlanes(stream.SplitN("add", round), 1, n)[0]
		ka, err := ref.Add(b)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := bat.Add(append(linalg.Vector(nil), b...))
		if err != nil {
			t.Fatal(err)
		}
		if ka != kb {
			t.Fatalf("round %d: Add kept=%v on reference, %v on batch twin", round, ka, kb)
		}
	}
	if ref.Size() != bat.Size() {
		t.Fatalf("sizes diverged: %d vs %d", ref.Size(), bat.Size())
	}
	for i := 0; i < ref.Size(); i++ {
		if ref.uses[i] != bat.uses[i] {
			t.Errorf("plane %d uses: %d vs %d", i, ref.uses[i], bat.uses[i])
		}
		for j := 0; j < n; j++ {
			if ref.at(i, j) != bat.at(i, j) {
				t.Errorf("plane %d entry %d: %v vs %v", i, j, ref.at(i, j), bat.at(i, j))
			}
		}
	}
}

// TestValueBatchEmptySetAndEmptyBatch covers the degenerate shapes.
func TestValueBatchEmptySetAndEmptyBatch(t *testing.T) {
	s, err := NewSet(3)
	if err != nil {
		t.Fatal(err)
	}
	got := s.ValueBatch([]pomdp.Belief{{1, 0, 0}}, nil)
	if len(got) != 1 || !math.IsInf(got[0], -1) {
		t.Errorf("empty set ValueBatch = %v, want [-Inf]", got)
	}
	if got := s.ValueBatch(nil, nil); len(got) != 0 {
		t.Errorf("empty batch returned %v", got)
	}
}

// TestValueBatchGrowsOutput: an undersized out slice is replaced, a
// sufficient one is reused in place.
func TestValueBatchGrowsOutput(t *testing.T) {
	s, err := NewSet(2, linalg.Vector{-1, -2})
	if err != nil {
		t.Fatal(err)
	}
	pis := []pomdp.Belief{{1, 0}, {0, 1}}
	small := make([]float64, 1)
	got := s.ValueBatch(pis, small)
	if len(got) != 2 || got[0] != -1 || got[1] != -2 {
		t.Errorf("grown ValueBatch = %v, want [-1 -2]", got)
	}
	big := make([]float64, 8)
	got = s.ValueBatch(pis, big)
	if len(got) != 2 || &got[0] != &big[0] {
		t.Error("sufficient out slice was not reused in place")
	}
}

// TestSlabLayoutSurvivesMutation: row views and JSON round-trips must agree
// after interleaved Add-driven compactions and evictions.
func TestSlabLayoutSurvivesMutation(t *testing.T) {
	stream := rng.New(99)
	s := buildSet(t, 3, 4, randomPlanes(stream, 2, 3))
	for i := 0; i < 20; i++ {
		if _, err := s.Add(randomPlanes(stream.SplitN("p", i), 1, 3)[0]); err != nil {
			t.Fatal(err)
		}
		for _, pi := range randomBeliefs(stream.SplitN("b", i), 3, 3) {
			s.Value(pi)
		}
	}
	if len(s.slab) != s.Size()*s.n {
		t.Fatalf("slab length %d inconsistent with %d planes of %d states", len(s.slab), s.Size(), s.n)
	}
	if s.Size() > 4 {
		t.Fatalf("capacity 4 exceeded: %d planes", s.Size())
	}
	for i := 0; i < s.Size(); i++ {
		row := s.row(i)
		for j := range row {
			if row[j] != s.at(i, j) {
				t.Fatalf("row/at disagree at (%d,%d)", i, j)
			}
		}
	}
}
