package bounds

import (
	"fmt"
	"testing"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// randomRecoveryModel generates a random POMDP satisfying the paper's
// Conditions 1 and 2: state 0 is the null state, every other state has at
// least one action that moves it strictly "toward" recovery, all rewards
// are negative outside Sφ, and observations are noisy views of the state.
// The model is returned already transformed with the terminate action.
func randomRecoveryModel(t *testing.T, r *rng.Stream, nStates, nActions, nObs int) *pomdp.POMDP {
	t.Helper()
	b := pomdp.NewBuilder()
	name := func(s int) string {
		if s == 0 {
			return "null"
		}
		return fmt.Sprintf("fault%d", s)
	}
	for s := 0; s < nStates; s++ {
		b.State(name(s))
	}
	for a := 0; a < nActions; a++ {
		action := fmt.Sprintf("act%d", a)
		for s := 0; s < nStates; s++ {
			if s == 0 {
				b.Transition(name(s), action, name(s), 1)
			} else if a == s%nActions || a == 0 {
				// The "right" action (and action 0 as a fallback) makes
				// progress with high probability.
				pFix := 0.5 + 0.5*r.Float64()
				b.Transition(name(s), action, name(0), pFix)
				if pFix < 1 {
					b.Transition(name(s), action, name(s), 1-pFix)
				}
			} else {
				b.Transition(name(s), action, name(s), 1)
			}
			// Condition 2 + Property 1(a): strictly negative costs
			// everywhere outside Sφ; small cost in Sφ for non-null actions.
			cost := -0.1 - r.Float64()
			if s == 0 {
				cost = -0.05
			}
			b.Reward(name(s), action, cost)
		}
	}
	// Observations: each state mostly emits its own signature, with noise
	// spread over two other observations (so localization is imperfect).
	for a := 0; a < nActions; a++ {
		action := fmt.Sprintf("act%d", a)
		for s := 0; s < nStates; s++ {
			main := s % nObs
			alt := (s + 1) % nObs
			b.Observe(name(s), action, fmt.Sprintf("obs%d", main), 0.7)
			b.Observe(name(s), action, fmt.Sprintf("obs%d", alt), 0.3)
		}
	}
	base, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rates := linalg.NewVector(nStates)
	for s := 1; s < nStates; s++ {
		rates[s] = -0.2 - r.Float64()
	}
	mod, _, err := pomdp.WithTermination(base, pomdp.TerminationConfig{
		NullStates:           []int{0},
		OperatorResponseTime: 5 + 10*r.Float64(),
		RateReward:           rates,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestRABoundPropertiesOnRandomModels is the generative soundness check:
// across random recovery models, the RA-Bound must converge, stay below the
// L_p iterates (which upper-bound the true value function), satisfy
// Property 1(b), and keep all of that through incremental updates.
func TestRABoundPropertiesOnRandomModels(t *testing.T) {
	root := rng.New(2024)
	for trial := 0; trial < 12; trial++ {
		r := root.SplitN("model", trial)
		nStates := 3 + r.IntN(5)
		nActions := 2 + r.IntN(3)
		nObs := 2 + r.IntN(3)
		mod := randomRecoveryModel(t, r, nStates, nActions, nObs)

		ra, err := RA(mod, Options{})
		if err != nil {
			t.Fatalf("trial %d (%d states): RA failed: %v", trial, nStates, err)
		}
		set, err := NewSet(mod.NumStates(), ra)
		if err != nil {
			t.Fatal(err)
		}
		u, err := NewUpdater(mod, set, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sc := pomdp.NewScratch(mod)
		for step := 0; step < 8; step++ {
			pi := randomBelief(r, mod.NumStates())
			res, err := u.UpdateAt(pi)
			if err != nil {
				t.Fatal(err)
			}
			if res.After < res.Before-1e-9 {
				t.Errorf("trial %d: update decreased bound", trial)
			}
			rep, err := CheckConsistency(mod, sc, set, pi, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK {
				t.Errorf("trial %d: Property 1(b) violated after update %d", trial, step)
			}
			vb := set.Value(pi)
			if upper := lpIterate(t, mod, pi, 2); vb > upper+1e-7 {
				t.Errorf("trial %d: bound %v above L_p^2 0 = %v", trial, vb, upper)
			}
		}

		// QMDP upper bound dominates the improved lower bound statewise.
		up, err := QMDP(mod, Options{})
		if err != nil {
			t.Fatalf("trial %d: QMDP: %v", trial, err)
		}
		for s := 0; s < mod.NumStates(); s++ {
			point := pomdp.PointBelief(mod.NumStates(), s)
			if lb := set.Value(point); lb > up[s]+1e-7 {
				t.Errorf("trial %d state %d: lower %v above QMDP %v", trial, s, lb, up[s])
			}
		}
	}
}
