package bounds

import (
	"errors"
	"fmt"

	"bpomdp/internal/linalg"
	"bpomdp/internal/mdp"
	"bpomdp/internal/pomdp"
)

// BIPOMDP computes the BI-POMDP lower bound of Washington (1997): the MDP
// value function with min in place of max — the value of always choosing the
// worst action. The POMDP bound at belief π is Σ_s π(s)·V_BI(s).
//
// The paper shows this bound fails on undiscounted recovery models in both
// regimes, because the worst recovery action makes no progress while
// accruing cost; that divergence is reported as an error wrapping
// ErrUnbounded (and linalg.ErrNoConvergence).
func BIPOMDP(p *pomdp.POMDP, opts Options) (linalg.Vector, error) {
	o := opts.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res, err := mdp.MinValueIteration(p.M, mdp.SolveOptions{
		Beta:         o.Beta,
		Tol:          o.Solver.Tol,
		MaxIter:      o.Solver.MaxIter,
		DivergeAbove: o.Solver.DivergeAbove,
	})
	if err != nil {
		if errors.Is(err, linalg.ErrNoConvergence) {
			return nil, fmt.Errorf("bounds: BI-POMDP: %w: %w", ErrUnbounded, err)
		}
		return nil, fmt.Errorf("bounds: BI-POMDP: %w", err)
	}
	return res.Values, nil
}

// BlindPolicyResult reports the outcome of the blind-policy bound
// computation: one hyperplane per action whose induced chain has a finite
// expected total reward, plus the list of actions whose blind value
// diverges to -∞ (those contribute nothing to the max and are omitted).
type BlindPolicyResult struct {
	// Planes[i] is the value vector of blindly following Actions[i] forever.
	Planes []linalg.Vector
	// Actions[i] is the action index of Planes[i].
	Actions []int
	// Diverged lists the actions whose blind value is -∞ in some state.
	Diverged []int
}

// BlindPolicy computes the blind-policy lower bound of Hauskrecht (1997):
// for each action a, the value V^ba(·, a) of choosing a in every state
// forever, each a valid lower-bound hyperplane; the POMDP bound is
// max_a Σ_s π(s)·V^ba(s, a).
//
// On undiscounted recovery models with recovery notification the paper notes
// this bound is infinite for most models, since no single action makes
// progress in every state; all such actions are reported in Diverged. If
// every action diverges the returned error wraps ErrUnbounded. On models
// without recovery notification, the terminate action a_T always yields a
// finite plane, so the bound is trivially finite — exactly the paper's
// observation.
func BlindPolicy(p *pomdp.POMDP, opts Options) (BlindPolicyResult, error) {
	o := opts.withDefaults()
	var out BlindPolicyResult
	if err := p.Validate(); err != nil {
		return out, err
	}
	for a := 0; a < p.NumActions(); a++ {
		chain, reward, err := p.M.ActionChain(a)
		if err != nil {
			return out, fmt.Errorf("bounds: blind policy action %d: %w", a, err)
		}
		v, _, err := linalg.SolveFixedPoint(chain, o.Beta, reward, o.Solver)
		if err != nil {
			if errors.Is(err, linalg.ErrNoConvergence) {
				out.Diverged = append(out.Diverged, a)
				continue
			}
			return out, fmt.Errorf("bounds: blind policy action %s: %w", p.M.ActionName(a), err)
		}
		out.Planes = append(out.Planes, v)
		out.Actions = append(out.Actions, a)
	}
	if len(out.Planes) == 0 {
		return out, fmt.Errorf("bounds: blind policy: every action diverges: %w", ErrUnbounded)
	}
	return out, nil
}

// QMDP computes the QMDP-style upper bound: the value function of the fully
// observable MDP. Since knowing the state can only help, V_p*(π) ≤
// Σ_s π(s)·V_MDP(s) for every belief. The paper's conclusion lists
// "generation of upper bounds in addition to the lower bounds to facilitate
// branch and bound techniques" as future work; this implements it. On
// undiscounted recovery models satisfying Condition 1 the optimal MDP policy
// reaches Sφ (or s_T), so the solve converges.
func QMDP(p *pomdp.POMDP, opts Options) (linalg.Vector, error) {
	o := opts.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res, err := mdp.ValueIteration(p.M, mdp.SolveOptions{
		Beta:         o.Beta,
		Tol:          o.Solver.Tol,
		MaxIter:      o.Solver.MaxIter,
		DivergeAbove: o.Solver.DivergeAbove,
	})
	if err != nil {
		return nil, fmt.Errorf("bounds: QMDP: %w", err)
	}
	return res.Values, nil
}

// Gap evaluates the distance between an upper-bound hyperplane and a
// lower-bound set at a belief: upper(π) − V_B⁻(π). A gap of zero certifies
// the bound is exact at π; the paper notes no such certificate is decidable
// in general, but the gap still quantifies progress of iterative refinement.
func Gap(upper linalg.Vector, set *Set, pi pomdp.Belief) (float64, error) {
	if len(upper) != set.NumStates() {
		return 0, fmt.Errorf("bounds: upper bound length %d, want %d", len(upper), set.NumStates())
	}
	if set.Size() == 0 {
		return 0, ErrEmptySet
	}
	return linalg.Vector(pi).Dot(upper) - set.Value(pi), nil
}
