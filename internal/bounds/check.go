package bounds

import (
	"fmt"

	"bpomdp/internal/pomdp"
)

// ConsistencyReport is the outcome of a Property 1(b) check at one belief.
type ConsistencyReport struct {
	// Bound is V_B⁻(π).
	Bound float64
	// Backup is (L_p V_B⁻)(π).
	Backup float64
	// OK reports Bound ≤ Backup (+tolerance) — the precondition, together
	// with "no free actions", of the paper's Property 1 termination
	// guarantee.
	OK bool
}

// CheckConsistency verifies Property 1(b) of the paper at belief π:
// V_B⁻(π) ≤ (L_p V_B⁻)(π). The paper proves this holds when B contains only
// the RA-Bound; the bounded controller uses this check defensively when the
// set has been extended by incremental updates.
func CheckConsistency(p *pomdp.POMDP, sc *pomdp.Scratch, set *Set, pi pomdp.Belief, opts Options) (ConsistencyReport, error) {
	o := opts.withDefaults()
	if set.Size() == 0 {
		return ConsistencyReport{}, ErrEmptySet
	}
	lhs, _ := set.ValueArg(pi)
	res, err := pomdp.Backup(p, sc, pi, o.Beta, set.AsValueFn())
	if err != nil {
		return ConsistencyReport{}, fmt.Errorf("bounds: consistency backup: %w", err)
	}
	const tol = 1e-9
	return ConsistencyReport{
		Bound:  lhs,
		Backup: res.Value,
		OK:     lhs <= res.Value+tol,
	}, nil
}
