package bounds

import (
	"errors"
	"testing"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
)

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet(0); err == nil {
		t.Error("zero states accepted")
	}
	if _, err := NewSet(2, linalg.Vector{1}); err == nil {
		t.Error("short base plane accepted")
	}
	if _, err := NewSet(1, linalg.Vector{1, 2}); err == nil {
		t.Error("long base plane accepted")
	}
}

func TestSetValueMaxOfHyperplanes(t *testing.T) {
	s, err := NewSet(2, linalg.Vector{-2, 0}, linalg.Vector{0, -2})
	if err != nil {
		t.Fatal(err)
	}
	// At π = (1, 0): plane 1 gives 0, plane 0 gives -2.
	v, arg := s.ValueArg(pomdp.Belief{1, 0})
	if v != 0 || arg != 1 {
		t.Errorf("ValueArg = (%v, %d), want (0, 1)", v, arg)
	}
	// At π = (0.5, 0.5): both give -1.
	if got := s.Value(pomdp.Belief{0.5, 0.5}); got != -1 {
		t.Errorf("Value = %v, want -1", got)
	}
}

func TestSetEmptyValue(t *testing.T) {
	s, err := NewSet(2)
	if err != nil {
		t.Fatal(err)
	}
	v, arg := s.ValueArg(pomdp.Belief{1, 0})
	if arg != -1 || v > -1e300 {
		t.Errorf("empty set ValueArg = (%v, %d)", v, arg)
	}
}

func TestSetAddDiscardsDominated(t *testing.T) {
	s, err := NewSet(2, linalg.Vector{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	added, err := s.Add(linalg.Vector{-1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if added || s.Size() != 1 {
		t.Errorf("dominated plane kept: added=%v size=%d", added, s.Size())
	}
}

func TestSetAddPrunesDominatedExisting(t *testing.T) {
	s, err := NewSet(2, linalg.Vector{-10, -10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(linalg.Vector{-5, -8}); err != nil {
		t.Fatal(err)
	}
	// New plane dominates (-5,-8) but not the base.
	if _, err := s.Add(linalg.Vector{-4, -7}); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 2 {
		t.Errorf("size = %d, want 2 (base + dominating plane)", s.Size())
	}
	// Base plane never pruned even when dominated.
	if got := s.Plane(0); got[0] != -10 {
		t.Errorf("base plane = %v", got)
	}
}

func TestSetAddKeepsIncomparable(t *testing.T) {
	s, err := NewSet(2, linalg.Vector{-2, 0})
	if err != nil {
		t.Fatal(err)
	}
	added, err := s.Add(linalg.Vector{0, -2})
	if err != nil {
		t.Fatal(err)
	}
	if !added || s.Size() != 2 {
		t.Errorf("incomparable plane rejected: added=%v size=%d", added, s.Size())
	}
}

func TestSetAddValidation(t *testing.T) {
	s, err := NewSet(2, linalg.Vector{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(linalg.Vector{1}); err == nil {
		t.Error("wrong-length plane accepted")
	}
}

func TestSetCapacityEviction(t *testing.T) {
	s, err := NewSet(2, linalg.Vector{-10, -10})
	if err != nil {
		t.Fatal(err)
	}
	s.SetCapacity(3)
	// Add two incomparable planes.
	mustAdd := func(v linalg.Vector) {
		t.Helper()
		if _, err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(linalg.Vector{-1, -9})
	mustAdd(linalg.Vector{-9, -1})
	if s.Size() != 3 {
		t.Fatalf("size = %d, want 3", s.Size())
	}
	// Touch plane 1 so plane 2 is the least used.
	s.Value(pomdp.Belief{1, 0}) // maximized by plane 1 (-1)
	mustAdd(linalg.Vector{-5, -5})
	if s.Size() != 3 {
		t.Errorf("size after eviction = %d, want 3", s.Size())
	}
	// Plane (-9,-1) (least used) must be gone: value at (0,1) now comes
	// from (-5,-5) giving -5, not -1.
	if got := s.Value(pomdp.Belief{0, 1}); got != -5 {
		t.Errorf("Value after eviction = %v, want -5", got)
	}
}

func TestSetAsValueFn(t *testing.T) {
	s, err := NewSet(2, linalg.Vector{-1, -3})
	if err != nil {
		t.Fatal(err)
	}
	fn := s.AsValueFn()
	if got := fn.Value(pomdp.Belief{0.5, 0.5}); got != -2 {
		t.Errorf("AsValueFn = %v, want -2", got)
	}
}

func TestCheckConsistencyEmptySet(t *testing.T) {
	mod := withNotification(t)
	s, err := NewSet(mod.NumStates())
	if err != nil {
		t.Fatal(err)
	}
	sc := pomdp.NewScratch(mod)
	_, err = CheckConsistency(mod, sc, s, pomdp.UniformBelief(mod.NumStates()), Options{})
	if !errors.Is(err, ErrEmptySet) {
		t.Errorf("err = %v, want ErrEmptySet", err)
	}
}

// TestSetPeekMatchesValueWithoutUse: Peek must return exactly what Value
// returns while leaving the least-used eviction order untouched, so stats
// collection cannot change which planes a capacity-limited set keeps.
func TestSetPeekMatchesValueWithoutUse(t *testing.T) {
	s, err := NewSet(2, linalg.Vector{-10, -10})
	if err != nil {
		t.Fatal(err)
	}
	s.SetCapacity(3)
	mustAdd := func(v linalg.Vector) {
		t.Helper()
		if _, err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(linalg.Vector{-1, -9})
	mustAdd(linalg.Vector{-9, -1})
	for _, pi := range []pomdp.Belief{{1, 0}, {0, 1}, {0.5, 0.5}} {
		if got, want := s.Peek(pi), s.Value(pi); got != want {
			t.Errorf("Peek(%v) = %v, want Value = %v", pi, got, want)
		}
	}
	// Hammer Peek on the plane that Value-touches would protect. If Peek
	// bumped uses, plane (-9,-1) would now be the most used and survive the
	// next eviction; it must still be evicted on usage recorded by Value.
	s2, _ := NewSet(2, linalg.Vector{-10, -10})
	s2.SetCapacity(3)
	if _, err := s2.Add(linalg.Vector{-1, -9}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Add(linalg.Vector{-9, -1}); err != nil {
		t.Fatal(err)
	}
	s2.Value(pomdp.Belief{1, 0}) // one real use of plane (-1,-9)
	for i := 0; i < 100; i++ {
		s2.Peek(pomdp.Belief{0, 1}) // would bump (-9,-1) if Peek counted
	}
	if _, err := s2.Add(linalg.Vector{-5, -5}); err != nil {
		t.Fatal(err)
	}
	if got := s2.Value(pomdp.Belief{0, 1}); got != -5 {
		t.Errorf("Peek perturbed eviction: Value = %v, want -5", got)
	}
	if s2.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", s2.Evictions())
	}
}

// TestSetEvictionsCounter counts capacity evictions across several Adds.
func TestSetEvictionsCounter(t *testing.T) {
	s, err := NewSet(2, linalg.Vector{-10, -10})
	if err != nil {
		t.Fatal(err)
	}
	if s.Evictions() != 0 {
		t.Fatalf("fresh set Evictions = %d", s.Evictions())
	}
	s.SetCapacity(2)
	planes := []linalg.Vector{{-1, -9}, {-9, -1}, {-2, -8}, {-8, -2}}
	for _, p := range planes {
		if _, err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2 with a protected base: every Add after the first evicts.
	if got := s.Evictions(); got != 3 {
		t.Errorf("Evictions = %d, want 3", got)
	}
}
