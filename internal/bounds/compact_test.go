package bounds

import (
	"testing"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

func TestCompactLPRemovesEnvelopeUselessPlanes(t *testing.T) {
	// (0.4, 0.4) sits strictly under max{(1,0), (0,1)} everywhere but is
	// not pointwise-dominated by either, so Add keeps it and only the LP
	// test can discard it.
	s, err := NewSet(2, linalg.Vector{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	mustAdd := func(v linalg.Vector) {
		t.Helper()
		if _, err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(linalg.Vector{0, 1})
	mustAdd(linalg.Vector{0.4, 0.4})
	if s.Size() != 3 {
		t.Fatalf("size before compact = %d", s.Size())
	}
	removed, err := s.CompactLP()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || s.Size() != 2 {
		t.Errorf("removed %d, size %d; want 1 removed, size 2", removed, s.Size())
	}
	// Values unchanged.
	for p := 0.0; p <= 1.00001; p += 0.05 {
		pi := pomdp.Belief{p, 1 - p}
		want := p
		if 1-p > p {
			want = 1 - p
		}
		if got := s.Value(pi); !almostEqual(got, want, 1e-9) {
			t.Errorf("value at %v = %v, want %v", pi, got, want)
		}
	}
}

func TestCompactLPKeepsBasePlane(t *testing.T) {
	// Base plane strictly under another: dominance pruning spares index 0
	// by design, and so must CompactLP.
	s, err := NewSet(2, linalg.Vector{-1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(linalg.Vector{0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CompactLP(); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 2 {
		t.Errorf("size = %d, want 2 (base retained)", s.Size())
	}
	if got := s.Plane(0); got[0] != -1 {
		t.Errorf("base plane = %v", got)
	}
}

func TestCompactLPPreservesImprovedBound(t *testing.T) {
	// On a real improved set: compaction must not change V_B anywhere and
	// the compacted set must stay consistent (Property 1(b)).
	mod, _ := withoutNotification(t)
	set, err := RASet(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(mod, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(23)
	beliefs := make([]pomdp.Belief, 0, 40)
	for i := 0; i < 40; i++ {
		pi := randomBelief(r, mod.NumStates())
		beliefs = append(beliefs, pi)
		if _, err := u.UpdateAt(pi); err != nil {
			t.Fatal(err)
		}
	}
	before := make([]float64, len(beliefs))
	for i, pi := range beliefs {
		before[i] = set.Value(pi)
	}
	sizeBefore := set.Size()
	removed, err := set.CompactLP()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("compacted %d -> %d planes (%d removed)", sizeBefore, set.Size(), removed)
	for i, pi := range beliefs {
		if got := set.Value(pi); !almostEqual(got, before[i], 1e-9) {
			t.Errorf("belief %d: value changed %v -> %v", i, before[i], got)
		}
	}
	sc := pomdp.NewScratch(mod)
	for trial := 0; trial < 10; trial++ {
		pi := randomBelief(r, mod.NumStates())
		rep, err := CheckConsistency(mod, sc, set, pi, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Errorf("trial %d: consistency violated after compaction", trial)
		}
	}
}
