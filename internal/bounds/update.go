package bounds

import (
	"fmt"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
)

// Updater implements the incremental linear-function bound-improvement
// method of Hauskrecht (2000) as used in Section 4.1 (Equation 7): given a
// set B of lower-bound hyperplanes and a belief π, it constructs a new
// hyperplane
//
//	b_a(s) = r(s,a) + β Σ_o Σ_s' p(s',o|s,a) · b^{π,a,o}(s')
//	b      = argmax_{b_a} Σ_s b_a(s)·π(s)
//
// where b^{π,a,o} is the existing hyperplane that is maximal for the
// (unnormalized) successor belief of (π, a, o). Every such plane is itself a
// valid lower bound, so adding it to B preserves validity while (weakly)
// improving the bound at π.
type Updater struct {
	p    *pomdp.POMDP
	beta float64
	set  *Set

	pred  linalg.Vector   // Σ_s p(s'|s,a)·π(s)
	g     linalg.Vector   // Σ_o q(o|s',a)·b_{a,o}(s')
	cand  linalg.Vector   // candidate plane b_a
	best  linalg.Vector   // best candidate so far
	sel   []int           // chosen plane index per observation
	score []linalg.Vector // score[i][o] = Σ_s' pred(s')·q(o|s',a)·plane_i(s')
}

// NewUpdater creates an Updater that improves set in place on model p.
func NewUpdater(p *pomdp.POMDP, set *Set, opts Options) (*Updater, error) {
	o := opts.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if set.NumStates() != p.NumStates() {
		return nil, fmt.Errorf("bounds: set over %d states, model has %d", set.NumStates(), p.NumStates())
	}
	if set.Size() == 0 {
		return nil, ErrEmptySet
	}
	if o.Beta <= 0 || o.Beta > 1 {
		return nil, fmt.Errorf("bounds: beta %v outside (0,1]", o.Beta)
	}
	n, no := p.NumStates(), p.NumObservations()
	return &Updater{
		p:    p,
		beta: o.Beta,
		set:  set,
		pred: linalg.NewVector(n),
		g:    linalg.NewVector(n),
		cand: linalg.NewVector(n),
		best: linalg.NewVector(n),
		sel:  make([]int, no),
	}, nil
}

// Set returns the hyperplane set being improved.
func (u *Updater) Set() *Set { return u.set }

// UpdateResult describes one incremental update step.
type UpdateResult struct {
	// Before and After are V_B⁻(π) before and after the update.
	Before, After float64
	// Added reports whether the new hyperplane was kept (it is discarded
	// when pointwise dominated by an existing plane).
	Added bool
	// Action is the maximizing action of the backed-up plane.
	Action int
}

// Improvement returns After − Before, the bound tightening achieved at π.
func (r UpdateResult) Improvement() float64 { return r.After - r.Before }

// UpdateAt performs one incremental bound update at belief π, adding the
// backed-up hyperplane to the set if it is not dominated, and returns the
// before/after bound values at π.
func (u *Updater) UpdateAt(pi pomdp.Belief) (UpdateResult, error) {
	p := u.p
	n := p.NumStates()
	if len(pi) != n {
		return UpdateResult{}, fmt.Errorf("bounds: belief length %d, want %d", len(pi), n)
	}
	before, _ := u.set.ValueArg(pi)

	bestVal := 0.0
	bestAction := -1
	for a := 0; a < p.NumActions(); a++ {
		u.backupAction(pi, a)
		if v := linalg.Vector(pi).Dot(u.cand); bestAction < 0 || v > bestVal {
			bestVal = v
			bestAction = a
			copy(u.best, u.cand)
		}
	}

	added, err := u.set.Add(u.best)
	if err != nil {
		return UpdateResult{}, err
	}
	after, _ := u.set.ValueArg(pi)
	return UpdateResult{Before: before, After: after, Added: added, Action: bestAction}, nil
}

// backupAction computes the backed-up hyperplane for action a into u.cand.
func (u *Updater) backupAction(pi pomdp.Belief, a int) {
	p := u.p
	n, no := p.NumStates(), p.NumObservations()

	// pred(s') = Σ_s p(s'|s,a)·π(s).
	p.Predict(u.pred, pi, a)

	// Grow the per-plane score matrix lazily (the set grows over time).
	for len(u.score) < u.set.Size() {
		u.score = append(u.score, linalg.NewVector(no))
	}
	// score[i][o] = Σ_s' pred(s')·q(o|s',a)·plane_i(s').
	for i := 0; i < u.set.Size(); i++ {
		u.score[i].Fill(0)
	}
	for s := 0; s < n; s++ {
		ps := u.pred[s]
		if ps == 0 {
			continue
		}
		p.Obs[a].Row(s, func(o int, q float64) {
			w := ps * q
			if w == 0 {
				return
			}
			for i := 0; i < u.set.Size(); i++ {
				u.score[i][o] += w * u.set.at(i, s)
			}
		})
	}
	// b^{π,a,o} = argmax_i score[i][o]. For observations unreachable from π
	// the choice does not affect the value at π and any plane in B keeps the
	// result a valid bound; we use the base plane (index 0).
	for o := 0; o < no; o++ {
		u.sel[o] = 0
		best := u.score[0][o]
		for i := 1; i < u.set.Size(); i++ {
			if u.score[i][o] > best {
				best = u.score[i][o]
				u.sel[o] = i
			}
		}
	}
	// g(s') = Σ_o q(o|s',a)·b_{a,o}(s').
	u.g.Fill(0)
	for s := 0; s < n; s++ {
		p.Obs[a].Row(s, func(o int, q float64) {
			u.g[s] += q * u.set.at(u.sel[o], s)
		})
	}
	// b_a = r(a) + β·P(a)·g.
	p.M.Trans[a].MulVec(u.cand, u.g)
	u.cand.Scale(u.beta)
	u.cand.AddScaled(1, p.M.Reward[a])
}
