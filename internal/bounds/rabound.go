package bounds

import (
	"fmt"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
)

// Options configures bound computations.
type Options struct {
	// Beta is the discount factor in (0, 1]; zero means 1 (undiscounted).
	Beta float64
	// Solver tunes the underlying fixed-point solver (tolerance, iteration
	// budget, SOR relaxation factor).
	Solver linalg.FixedPointOptions
}

func (o Options) withDefaults() Options {
	if o.Beta == 0 {
		o.Beta = 1
	}
	return o
}

// RA computes the RA-Bound hyperplane V_m⁻ of Section 3.1: the expected
// total reward of the Markov chain obtained by choosing actions uniformly at
// random in the POMDP's underlying MDP (Equation 5), solved by Gauss-Seidel
// iterations with successive over-relaxation.
//
// The model must already be in one of the two convergent forms of §3.1:
// either null-fault states have been made absorbing and zero-reward
// (pomdp.AbsorbNullStates — systems with recovery notification) or the
// terminate action/state have been added (pomdp.WithTermination — systems
// without). On models satisfying Condition 1 these forms guarantee a finite
// solution; on other models the solve may diverge, reported as an error
// wrapping linalg.ErrNoConvergence.
//
// The RA-Bound for a belief π is then V_p⁻(π) = Σ_s π(s)·V_m⁻(s), a single
// hyperplane computed on the original state space — exponentially smaller
// than the belief space.
func RA(p *pomdp.POMDP, opts Options) (linalg.Vector, error) {
	o := opts.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	chain, reward, err := p.M.UniformChain()
	if err != nil {
		return nil, fmt.Errorf("bounds: RA-Bound chain: %w", err)
	}
	v, _, err := linalg.SolveFixedPoint(chain, o.Beta, reward, o.Solver)
	if err != nil {
		return nil, fmt.Errorf("bounds: RA-Bound solve: %w", err)
	}
	return v, nil
}

// RASet computes the RA-Bound and wraps it as a one-plane Set, the starting
// point for iterative improvement.
func RASet(p *pomdp.POMDP, opts Options) (*Set, error) {
	v, err := RA(p, opts)
	if err != nil {
		return nil, err
	}
	return NewSet(p.NumStates(), v)
}

// TrivialUpper returns the trivial upper bound of Condition 2: with all
// single-step rewards non-positive, the value function is bounded above by
// zero everywhere (this is the upper bound the paper's Figure 5(a) measures
// against).
func TrivialUpper(p *pomdp.POMDP) (linalg.Vector, error) {
	if !p.M.AllRewardsNonPositive() {
		return nil, fmt.Errorf("bounds: model has positive rewards; trivial zero upper bound invalid")
	}
	return linalg.NewVector(p.NumStates()), nil
}
