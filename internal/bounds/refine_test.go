package bounds

import (
	"errors"
	"testing"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

func TestUpperBoundSawtooth(t *testing.T) {
	u, err := NewUpperBound(linalg.Vector{0, -10, -20})
	if err != nil {
		t.Fatal(err)
	}
	// With no points the bound is the corner plane.
	pi := pomdp.Belief{0.5, 0.25, 0.25}
	if got, want := u.Value(pi), -10*0.25-20*0.25; !almostEqual(got, want, 1e-12) {
		t.Errorf("corner-only value %v, want %v", got, want)
	}
	// A point below the corner plane pulls the interpolation down.
	p := pomdp.Belief{0, 0.5, 0.5}
	added, err := u.AddPoint(p, -18)
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		t.Fatal("improving point not added")
	}
	// At the point itself the bound is now the stored value.
	if got := u.Value(p); !almostEqual(got, -18, 1e-12) {
		t.Errorf("value at stored point %v, want -18", got)
	}
	// Between corner and point: base + mu*(v - U0·c) with mu = 0.25/0.5.
	if got, want := u.Value(pi), (-10*0.25-20*0.25)+0.5*(-18-(-15)); !almostEqual(got, want, 1e-12) {
		t.Errorf("interpolated value %v, want %v", got, want)
	}
	// A non-improving point is discarded.
	if added, _ := u.AddPoint(p, -17); added {
		t.Error("non-improving point accepted")
	}
	if u.NumPoints() != 1 {
		t.Fatalf("points %d, want 1", u.NumPoints())
	}
	// A bit-identical belief with a lower value updates in place.
	if added, _ := u.AddPoint(p, -19); !added {
		t.Error("in-place lowering rejected")
	}
	if u.NumPoints() != 1 {
		t.Errorf("dedup failed: %d points", u.NumPoints())
	}
	if got := u.Value(p); !almostEqual(got, -19, 1e-12) {
		t.Errorf("value after in-place lowering %v, want -19", got)
	}
}

func TestUpperBoundValidation(t *testing.T) {
	if _, err := NewUpperBound(nil); err == nil {
		t.Error("empty corner accepted")
	}
	u, err := NewUpperBound(linalg.Vector{0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.AddPoint(pomdp.Belief{1}, 0); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := u.AddPoint(pomdp.Belief{0.5, 0.5}, naN()); err == nil {
		t.Error("NaN point value accepted")
	}
}

func naN() float64 { z := 0.0; return z / z }

// TestRefinerBoundCrossing is the table test for the inversion refusal: a
// refiner handed a corrupt pair — upper below lower anywhere it looks — must
// return ErrBoundCrossing rather than emit inverted bounds, whether the
// crossing is visible at the root or only at an interior point planted off
// the corner plane.
func TestRefinerBoundCrossing(t *testing.T) {
	r := rng.New(77)
	mod := randomRecoveryModel(t, r, 4, 2, 3)
	n := mod.NumStates()
	ra, err := RA(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	root := pomdp.UniformBelief(n)

	cases := []struct {
		name string
		// corrupt mutates a freshly built valid (set, upper) pair.
		corrupt   func(t *testing.T, set *Set, upper *UpperBound) *UpperBound
		wantCross bool
	}{
		{
			name: "valid pair refines cleanly",
			corrupt: func(t *testing.T, set *Set, upper *UpperBound) *UpperBound {
				return upper
			},
			wantCross: false,
		},
		{
			name: "corner below lower bound at root",
			corrupt: func(t *testing.T, set *Set, upper *UpperBound) *UpperBound {
				// A corner far below the RA plane inverts the pair everywhere.
				low := make(linalg.Vector, n)
				for s := range low {
					low[s] = ra[s] - 100
				}
				bad, err := NewUpperBound(low)
				if err != nil {
					t.Fatal(err)
				}
				return bad
			},
			wantCross: true,
		},
		{
			name: "poisoned sawtooth point below lower bound",
			corrupt: func(t *testing.T, set *Set, upper *UpperBound) *UpperBound {
				// Corner stays valid; one planted point dips below the lower
				// bound, so the crossing only surfaces at/near that belief.
				if _, err := upper.AddPoint(root, set.Peek(root)-50); err != nil {
					t.Fatal(err)
				}
				return upper
			},
			wantCross: true,
		},
		{
			name: "lower planes above the upper bound",
			corrupt: func(t *testing.T, set *Set, upper *UpperBound) *UpperBound {
				// Corrupt the lower side instead: a hyperplane above QMDP.
				high := make(linalg.Vector, n)
				for s := range high {
					high[s] = upper.Corner()[s] + 25
				}
				if _, err := set.Add(high); err != nil {
					t.Fatal(err)
				}
				return upper
			},
			wantCross: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set, err := NewSet(n, ra)
			if err != nil {
				t.Fatal(err)
			}
			corner, err := QMDP(mod, Options{})
			if err != nil {
				t.Fatal(err)
			}
			upper, err := NewUpperBound(corner)
			if err != nil {
				t.Fatal(err)
			}
			upper = tc.corrupt(t, set, upper)
			ref, err := NewRefiner(mod, set, upper, RefineConfig{MaxTrials: 32})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := ref.Run(root)
			if tc.wantCross {
				if !errors.Is(err, ErrBoundCrossing) {
					t.Fatalf("Run error = %v, want ErrBoundCrossing (report %+v)", err, rep)
				}
				return
			}
			if err != nil {
				t.Fatalf("Run on valid pair: %v", err)
			}
			if rep.FinalGap > rep.InitialGap {
				t.Errorf("root gap widened: %v -> %v", rep.InitialGap, rep.FinalGap)
			}
			if g, err := ref.GapAt(root); err != nil || g < 0 {
				t.Errorf("root gap after refinement: %v, %v", g, err)
			}
		})
	}
}

// TestRefinerMonotoneGapProperty is the generative monotonicity test: across
// random recovery models, one extra refinement pass may never widen the bound
// gap at ANY belief — not just the root — because Set.Add only raises the
// lower envelope and UpperBound.AddPoint only lowers the sawtooth. The sets
// are uncapped (no least-used eviction), which is the regime the guarantee
// holds in.
func TestRefinerMonotoneGapProperty(t *testing.T) {
	root := rng.New(9090)
	for trial := 0; trial < 8; trial++ {
		r := root.SplitN("model", trial)
		nStates := 3 + r.IntN(4)
		mod := randomRecoveryModel(t, r, nStates, 2+r.IntN(3), 2+r.IntN(3))
		n := mod.NumStates()
		ra, err := RA(mod, Options{})
		if err != nil {
			t.Fatal(err)
		}
		set, err := NewSet(n, ra)
		if err != nil {
			t.Fatal(err)
		}
		corner, err := QMDP(mod, Options{})
		if err != nil {
			t.Fatal(err)
		}
		upper, err := NewUpperBound(corner)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewRefiner(mod, set, upper, RefineConfig{MaxTrials: 1, Epsilon: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		// Fixed probe beliefs, sampled before any refinement.
		probes := make([]pomdp.Belief, 0, 16)
		probes = append(probes, pomdp.UniformBelief(n))
		for s := 0; s < n; s++ {
			probes = append(probes, pomdp.PointBelief(n, s))
		}
		for i := 0; i < 8; i++ {
			probes = append(probes, randomBelief(r, n))
		}
		gap := func(pi pomdp.Belief) float64 {
			g, err := ref.GapAt(pi)
			if err != nil {
				t.Fatalf("trial %d: gap: %v", trial, err)
			}
			return g
		}
		prev := make([]float64, len(probes))
		for i, pi := range probes {
			prev[i] = gap(pi)
		}
		start := pomdp.UniformBelief(n)
		for pass := 0; pass < 6; pass++ {
			rep, err := ref.Run(start)
			if err != nil {
				t.Fatalf("trial %d pass %d: %v (report %+v)", trial, pass, err, rep)
			}
			if rep.FinalGap > rep.InitialGap+1e-9 {
				t.Errorf("trial %d pass %d: root gap widened %v -> %v", trial, pass, rep.InitialGap, rep.FinalGap)
			}
			for i, pi := range probes {
				g := gap(pi)
				if g > prev[i]+1e-9 {
					t.Errorf("trial %d pass %d probe %d: gap widened %v -> %v", trial, pass, i, prev[i], g)
				}
				prev[i] = g
			}
		}
	}
}

// TestRefinerConvergesOnRandomModels pins that refinement with a full budget
// drives the root gap to epsilon on small random recovery models and that the
// refined lower bound still satisfies the paper's Property 1(b) consistency
// check at the root.
func TestRefinerConvergesOnRandomModels(t *testing.T) {
	root := rng.New(31337)
	for trial := 0; trial < 6; trial++ {
		r := root.SplitN("model", trial)
		mod := randomRecoveryModel(t, r, 3+r.IntN(3), 2+r.IntN(2), 2+r.IntN(2))
		n := mod.NumStates()
		ra, err := RA(mod, Options{})
		if err != nil {
			t.Fatal(err)
		}
		set, err := NewSet(n, ra)
		if err != nil {
			t.Fatal(err)
		}
		corner, err := QMDP(mod, Options{})
		if err != nil {
			t.Fatal(err)
		}
		upper, err := NewUpperBound(corner)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewRefiner(mod, set, upper, RefineConfig{Epsilon: 1e-6, MaxTrials: 512})
		if err != nil {
			t.Fatal(err)
		}
		start := pomdp.UniformBelief(n)
		rep, err := ref.Run(start)
		if err != nil {
			t.Fatalf("trial %d: %v (report %+v)", trial, err, rep)
		}
		if !rep.Converged {
			t.Errorf("trial %d: did not converge: %+v", trial, rep)
			continue
		}
		if rep.FinalGap > 1e-6 {
			t.Errorf("trial %d: final gap %v above epsilon", trial, rep.FinalGap)
		}
		sc := pomdp.NewScratch(mod)
		crep, err := CheckConsistency(mod, sc, set, start, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !crep.OK {
			t.Errorf("trial %d: refined lower bound violates Property 1(b)", trial)
		}
	}
}
