package bounds

import (
	"errors"
	"math"
	"testing"

	"bpomdp/internal/linalg"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// withNotification returns the two-server model transformed for the
// recovery-notification regime (Sφ absorbed), as in Figure 2(a).
func withNotification(t *testing.T) *pomdp.POMDP {
	t.Helper()
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := pomdp.AbsorbNullStates(ts.Model, ts.NullStates)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// withoutNotification returns the noisy two-server model extended with the
// terminate action, as in Figure 2(b), with t_op = 10.
func withoutNotification(t *testing.T) (*pomdp.POMDP, pomdp.TerminationIndices) {
	t.Helper()
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	mod, idx, err := pomdp.WithTermination(ts.Model, pomdp.TerminationConfig{
		NullStates:           ts.NullStates,
		OperatorResponseTime: 10,
		RateReward:           ts.RateRewards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mod, idx
}

func TestRAWithNotificationClosedForm(t *testing.T) {
	// Uniform random action from fault-a: restart-a (-0.5, ->null),
	// restart-b (-1, stay), observe (-0.5, stay). Mean reward -2/3, escape
	// probability 1/3, so V = -2. Null is absorbing at 0.
	mod := withNotification(t)
	v, err := RA(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v[0], 0, 1e-8) || !almostEqual(v[1], -2, 1e-6) || !almostEqual(v[2], -2, 1e-6) {
		t.Errorf("RA = %v, want [0 -2 -2]", v)
	}
}

func TestRAWithoutNotificationClosedForm(t *testing.T) {
	// Four actions, uniform: from null the mean reward is -0.25 with 3/4
	// self-loop => V(null) = -1. From a fault state: rewards
	// (-0.5, -1, -0.5, -5) => mean -7/4; transitions 1/4 null, 1/2 self,
	// 1/4 sT => V = -4. sT absorbs at 0.
	mod, idx := withoutNotification(t)
	v, err := RA(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v[0], -1, 1e-6) {
		t.Errorf("V(null) = %v, want -1", v[0])
	}
	if !almostEqual(v[1], -4, 1e-6) || !almostEqual(v[2], -4, 1e-6) {
		t.Errorf("V(fault) = %v/%v, want -4", v[1], v[2])
	}
	if !almostEqual(v[idx.State], 0, 1e-9) {
		t.Errorf("V(sT) = %v, want 0", v[idx.State])
	}
}

func TestRADivergesWithoutTransform(t *testing.T) {
	// The raw no-notification model (no absorbing states at all, every
	// action has cost somewhere, null state keeps accruing restart costs
	// under the uniform policy) has no finite RA solution.
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RA(ts.Model, Options{Solver: linalg.FixedPointOptions{MaxIter: 20000}})
	if !errors.Is(err, linalg.ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

// lpIterate evaluates (L_p^k 0)(π) by recursive expansion. Because all
// rewards are non-positive, these iterates decrease monotonically to the
// POMDP value function, so they upper-bound it — and hence any valid lower
// bound must stay below every iterate.
func lpIterate(t *testing.T, p *pomdp.POMDP, pi pomdp.Belief, k int) float64 {
	t.Helper()
	if k == 0 {
		return 0
	}
	sc := pomdp.NewScratch(p)
	res, err := pomdp.Backup(p, sc, pi, 1, pomdp.ValueFunc(func(b pomdp.Belief) float64 {
		return lpIterate(t, p, b, k-1)
	}))
	if err != nil {
		t.Fatal(err)
	}
	return res.Value
}

func randomBelief(r *rng.Stream, n int) pomdp.Belief {
	b := make(pomdp.Belief, n)
	for i := range b {
		b[i] = r.Float64()
	}
	if !b.Vec().Normalize() {
		b[0] = 1
	}
	return b
}

func TestRAIsBelowLpIterates(t *testing.T) {
	for name, build := range map[string]func() *pomdp.POMDP{
		"notification":   func() *pomdp.POMDP { return withNotification(t) },
		"noNotification": func() *pomdp.POMDP { m, _ := withoutNotification(t); return m },
	} {
		t.Run(name, func(t *testing.T) {
			mod := build()
			ra, err := RA(mod, Options{})
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(5)
			for trial := 0; trial < 10; trial++ {
				pi := randomBelief(r, mod.NumStates())
				bound := linalg.Vector(pi).Dot(ra)
				for k := 1; k <= 3; k++ {
					if upper := lpIterate(t, mod, pi, k); bound > upper+1e-7 {
						t.Errorf("trial %d k=%d: RA %v > L_p^k 0 %v at %v", trial, k, bound, upper, pi)
					}
				}
			}
		})
	}
}

func TestRAConsistencyProperty1b(t *testing.T) {
	// With B = {RA-Bound}, Property 1(b) must hold: V_B ≤ L_p V_B.
	mod, _ := withoutNotification(t)
	set, err := RASet(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := pomdp.NewScratch(mod)
	r := rng.New(17)
	for trial := 0; trial < 25; trial++ {
		pi := randomBelief(r, mod.NumStates())
		rep, err := CheckConsistency(mod, sc, set, pi, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Errorf("trial %d: V_B %v > L_p V_B %v", trial, rep.Bound, rep.Backup)
		}
	}
}

func TestBIPOMDPDivergesUndiscounted(t *testing.T) {
	// Worst action makes no progress while accruing cost in both regimes —
	// the divergence the paper demonstrates.
	mod := withNotification(t)
	if _, err := BIPOMDP(mod, Options{Solver: linalg.FixedPointOptions{MaxIter: 20000}}); !errors.Is(err, ErrUnbounded) {
		t.Errorf("notification regime: err = %v, want ErrUnbounded", err)
	}
	mod2, _ := withoutNotification(t)
	if _, err := BIPOMDP(mod2, Options{Solver: linalg.FixedPointOptions{MaxIter: 20000}}); !errors.Is(err, ErrUnbounded) {
		t.Errorf("no-notification regime: err = %v, want ErrUnbounded", err)
	}
}

func TestBIPOMDPConvergesDiscountedAndBelowRA(t *testing.T) {
	mod := withNotification(t)
	opts := Options{Beta: 0.9}
	bi, err := BIPOMDP(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := RA(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	for s := range bi {
		if bi[s] > ra[s]+1e-7 {
			t.Errorf("state %d: BI %v > RA %v (min should lower-bound the mean)", s, bi[s], ra[s])
		}
	}
}

func TestBlindPolicyDivergesWithNotification(t *testing.T) {
	// No single action recovers from both fault states, so every blind
	// chain accrues unbounded cost somewhere.
	mod := withNotification(t)
	_, err := BlindPolicy(mod, Options{Solver: linalg.FixedPointOptions{MaxIter: 20000}})
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestBlindPolicyFiniteWithoutNotification(t *testing.T) {
	// The terminate action a_T gives a trivially finite plane, exactly as
	// the paper observes.
	mod, idx := withoutNotification(t)
	res, err := BlindPolicy(mod, Options{Solver: linalg.FixedPointOptions{MaxIter: 20000}})
	if err != nil {
		t.Fatal(err)
	}
	foundAT := false
	for i, a := range res.Actions {
		if a == idx.Action {
			foundAT = true
			// Blind a_T value = termination reward, then absorbed at 0.
			want := mod.M.Reward[idx.Action]
			if d := res.Planes[i].InfNormDiff(want); d > 1e-8 {
				t.Errorf("blind a_T plane differs from termination rewards by %g", d)
			}
		}
	}
	if !foundAT {
		t.Fatalf("terminate action not among convergent blind policies: %+v", res.Actions)
	}
	if len(res.Diverged) != 3 {
		t.Errorf("diverged actions = %v, want the 3 non-terminate actions", res.Diverged)
	}
}

func TestQMDPUpperBound(t *testing.T) {
	// MDP values for the perfectly observed two-server model: the optimal
	// action in each fault state is the matching restart, cost 0.5.
	mod := withNotification(t)
	up, err := QMDP(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(up[0], 0, 1e-9) || !almostEqual(up[1], -0.5, 1e-8) || !almostEqual(up[2], -0.5, 1e-8) {
		t.Errorf("QMDP = %v, want [0 -0.5 -0.5]", up)
	}
	ra, err := RA(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := range up {
		if up[s] < ra[s]-1e-8 {
			t.Errorf("state %d: QMDP %v < RA %v", s, up[s], ra[s])
		}
	}
}

func TestTrivialUpper(t *testing.T) {
	mod := withNotification(t)
	up, err := TrivialUpper(mod)
	if err != nil {
		t.Fatal(err)
	}
	if up.InfNorm() != 0 {
		t.Errorf("trivial upper = %v, want zeros", up)
	}
	// Force a positive reward to invalidate it.
	mod.M.Reward[0][0] = 1
	if _, err := TrivialUpper(mod); err == nil {
		t.Error("positive-reward model accepted")
	}
}

func TestGap(t *testing.T) {
	mod := withNotification(t)
	set, err := RASet(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	up, err := QMDP(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pi := pomdp.UniformBelief(mod.NumStates())
	g, err := Gap(up, set, pi)
	if err != nil {
		t.Fatal(err)
	}
	if g < 0 {
		t.Errorf("gap = %v < 0", g)
	}
	if _, err := Gap(linalg.Vector{0}, set, pi); err == nil {
		t.Error("short upper bound accepted")
	}
}
