package bounds

import (
	"testing"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// TestBoundsBelowExactHorizonValues pins the lower bounds under the exact
// k-horizon value function computed by the Monahan-style vector-set solver.
// For negative models the horizon values decrease toward V*, so any valid
// lower bound must sit below them at every horizon — a much deeper check
// than the depth-3 recursive expansion used elsewhere.
func TestBoundsBelowExactHorizonValues(t *testing.T) {
	mod, _ := withoutNotification(t)
	set, err := RASet(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(mod, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	for i := 0; i < 15; i++ {
		if _, err := u.UpdateAt(randomBelief(r, mod.NumStates())); err != nil {
			t.Fatal(err)
		}
	}
	const horizon = 4
	vs, err := pomdp.ExactFiniteHorizon(mod, 1, horizon, 200000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("exact horizon-%d value function: %d α-vectors", horizon, len(vs))

	ra, err := RA(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		pi := randomBelief(r, mod.NumStates())
		exact := pomdp.ValueOfVectorSet(vs, pi)
		if raVal := linalg.Vector(pi).Dot(ra); raVal > exact+1e-7 {
			t.Errorf("trial %d: RA %v above exact horizon-%d value %v", trial, raVal, horizon, exact)
		}
		if vb := set.Value(pi); vb > exact+1e-7 {
			t.Errorf("trial %d: improved bound %v above exact horizon-%d value %v", trial, vb, horizon, exact)
		}
	}

	// The QMDP upper bound must sit above the infinite-horizon value, and
	// hence may legitimately cross below a SHORT horizon's value; but at
	// the point beliefs it must dominate every horizon's value minus the
	// remaining tail, so check only the valid direction: exact ≥ V* ≥ RA.
	up, err := QMDP(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < mod.NumStates(); s++ {
		if up[s] < ra[s]-1e-7 {
			t.Errorf("state %d: QMDP %v below RA %v", s, up[s], ra[s])
		}
	}
}
