package bounds

import (
	"testing"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

func TestFixedPolicyUniformEqualsRA(t *testing.T) {
	mod, _ := withoutNotification(t)
	uniform := make([]float64, mod.NumActions())
	for i := range uniform {
		uniform[i] = 1
	}
	fp, err := FixedPolicy(mod, uniform, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := RA(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := fp.InfNormDiff(ra); d > 1e-7 {
		t.Errorf("uniform fixed policy differs from RA by %g", d)
	}
}

func TestFixedPolicyWeightedIsValidAndCanBeTighter(t *testing.T) {
	mod, idx := withoutNotification(t)
	// Favor restarts over observing and lean on terminate to cut losses
	// quickly — on this model the tilt dominates the uniform RA policy in
	// every state. Action order: restart-a, restart-b, observe, a_T.
	weights := []float64{2, 2, 1, 3}
	fp, err := FixedPolicy(mod, weights, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := RA(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Validity: stays below the L_p iterates at random beliefs.
	r := rng.New(91)
	for trial := 0; trial < 10; trial++ {
		pi := randomBelief(r, mod.NumStates())
		val := linalg.Vector(pi).Dot(fp)
		if upper := lpIterate(t, mod, pi, 3); val > upper+1e-7 {
			t.Errorf("trial %d: fixed-policy bound %v above L_p^3 0 = %v", trial, val, upper)
		}
	}
	// Tighter than RA in the fault states (progress is more likely under
	// the tilted policy), and still 0 at s_T.
	improvedSomewhere := false
	for s := 0; s < mod.NumStates(); s++ {
		if fp[s] > ra[s]+1e-9 {
			improvedSomewhere = true
		}
	}
	if !improvedSomewhere {
		t.Errorf("tilted policy no tighter than RA anywhere: fp=%v ra=%v", fp, ra)
	}
	if fp[idx.State] != 0 {
		t.Errorf("fixed-policy value at s_T = %v", fp[idx.State])
	}

	// Property 1(b) holds for the fixed-policy plane as well.
	set, err := NewSet(mod.NumStates(), fp)
	if err != nil {
		t.Fatal(err)
	}
	sc := pomdp.NewScratch(mod)
	for trial := 0; trial < 10; trial++ {
		pi := randomBelief(r, mod.NumStates())
		rep, err := CheckConsistency(mod, sc, set, pi, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Errorf("trial %d: V_w %v > L_p V_w %v", trial, rep.Bound, rep.Backup)
		}
	}
}

func TestFixedPolicyValidation(t *testing.T) {
	mod, _ := withoutNotification(t)
	if _, err := FixedPolicy(mod, []float64{1}, Options{}); err == nil {
		t.Error("short weights accepted")
	}
	if _, err := FixedPolicy(mod, []float64{1, -1, 1, 1}, Options{}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := FixedPolicy(mod, []float64{0, 0, 0, 0}, Options{}); err == nil {
		t.Error("zero weights accepted")
	}
}

func TestFixedPolicyDegenerateIsBlindPolicy(t *testing.T) {
	// All mass on a_T reproduces the blind-terminate plane: the termination
	// rewards.
	mod, idx := withoutNotification(t)
	weights := make([]float64, mod.NumActions())
	weights[idx.Action] = 1
	fp, err := FixedPolicy(mod, weights, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := fp.InfNormDiff(mod.M.Reward[idx.Action]); d > 1e-8 {
		t.Errorf("terminate-only policy differs from termination rewards by %g", d)
	}
}

// TestCheckConsistencyRejectsUpperBoundAsLower is the negative control for
// Property 1(b): feeding the QMDP UPPER bound into the machinery as if it
// were a lower bound must be caught by the consistency check somewhere on
// the simplex (V > L_p V), which is exactly the malfunction the check
// exists to detect.
func TestCheckConsistencyRejectsUpperBoundAsLower(t *testing.T) {
	mod, _ := withoutNotification(t)
	up, err := QMDP(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet(mod.NumStates(), up)
	if err != nil {
		t.Fatal(err)
	}
	sc := pomdp.NewScratch(mod)
	r := rng.New(55)
	violated := false
	for trial := 0; trial < 50 && !violated; trial++ {
		pi := randomBelief(r, mod.NumStates())
		rep, err := CheckConsistency(mod, sc, set, pi, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			violated = true
		}
	}
	if !violated {
		t.Error("consistency check never flagged the QMDP upper bound used as a lower bound")
	}
}
