package bounds

import (
	"encoding/json"
	"testing"

	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

func TestSetJSONRoundTrip(t *testing.T) {
	mod, _ := withoutNotification(t)
	set, err := RASet(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(mod, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(12)
	for i := 0; i < 10; i++ {
		if _, err := u.UpdateAt(randomBelief(r, mod.NumStates())); err != nil {
			t.Fatal(err)
		}
	}
	set.SetCapacity(64)

	data, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	var back Set
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Size() != set.Size() || back.NumStates() != set.NumStates() {
		t.Fatalf("round trip: %d/%d planes, %d/%d states",
			back.Size(), set.Size(), back.NumStates(), set.NumStates())
	}
	for trial := 0; trial < 20; trial++ {
		pi := randomBelief(r, mod.NumStates())
		if a, b := set.Value(pi), back.Value(pi); a != b {
			t.Fatalf("value mismatch after round trip: %v vs %v", a, b)
		}
	}
	// The reloaded set remains improvable.
	u2, err := NewUpdater(mod, &back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u2.UpdateAt(pomdp.UniformBelief(mod.NumStates())); err != nil {
		t.Fatal(err)
	}
}

func TestSetUnmarshalRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"zero states":     `{"states":0,"planes":[]}`,
		"short plane":     `{"states":3,"planes":[[1,2]]}`,
		"long plane":      `{"states":1,"planes":[[1,2]]}`,
		"nan via science": `{"states":1,"planes":[[1e999]]}`,
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			var s Set
			if err := json.Unmarshal([]byte(data), &s); err == nil {
				t.Errorf("malformed set accepted: %s", data)
			}
		})
	}
}

func TestUpperBoundJSONRoundTrip(t *testing.T) {
	r := rng.New(55)
	mod := randomRecoveryModel(t, r, 4, 2, 3)
	corner, err := QMDP(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpperBound(corner)
	if err != nil {
		t.Fatal(err)
	}
	set, err := RASet(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewRefiner(mod, set, u, RefineConfig{MaxTrials: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(pomdp.UniformBelief(mod.NumStates())); err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	var back UpperBound
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumPoints() != u.NumPoints() || back.NumStates() != u.NumStates() {
		t.Fatalf("round trip: %d/%d points, %d/%d states",
			back.NumPoints(), u.NumPoints(), back.NumStates(), u.NumStates())
	}
	for trial := 0; trial < 20; trial++ {
		pi := randomBelief(r, mod.NumStates())
		if a, b := u.Value(pi), back.Value(pi); a != b {
			t.Fatalf("value mismatch after round trip: %v vs %v", a, b)
		}
	}
}

func TestUpperBoundUnmarshalRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"zero states":     `{"states":0,"corner":[]}`,
		"short corner":    `{"states":3,"corner":[1,2]}`,
		"infinite corner": `{"states":1,"corner":[1e999]}`,
		"short point":     `{"states":2,"corner":[0,-1],"points":[[1]],"values":[0]}`,
		"missing values":  `{"states":2,"corner":[0,-1],"points":[[0.5,0.5]]}`,
		"infinite value":  `{"states":2,"corner":[0,-1],"points":[[0.5,0.5]],"values":[1e999]}`,
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			var u UpperBound
			if err := json.Unmarshal([]byte(data), &u); err == nil {
				t.Errorf("malformed upper bound accepted: %s", data)
			}
		})
	}
}
