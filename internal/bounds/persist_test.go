package bounds

import (
	"encoding/json"
	"testing"

	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

func TestSetJSONRoundTrip(t *testing.T) {
	mod, _ := withoutNotification(t)
	set, err := RASet(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(mod, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(12)
	for i := 0; i < 10; i++ {
		if _, err := u.UpdateAt(randomBelief(r, mod.NumStates())); err != nil {
			t.Fatal(err)
		}
	}
	set.SetCapacity(64)

	data, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	var back Set
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Size() != set.Size() || back.NumStates() != set.NumStates() {
		t.Fatalf("round trip: %d/%d planes, %d/%d states",
			back.Size(), set.Size(), back.NumStates(), set.NumStates())
	}
	for trial := 0; trial < 20; trial++ {
		pi := randomBelief(r, mod.NumStates())
		if a, b := set.Value(pi), back.Value(pi); a != b {
			t.Fatalf("value mismatch after round trip: %v vs %v", a, b)
		}
	}
	// The reloaded set remains improvable.
	u2, err := NewUpdater(mod, &back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u2.UpdateAt(pomdp.UniformBelief(mod.NumStates())); err != nil {
		t.Fatal(err)
	}
}

func TestSetUnmarshalRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"zero states":     `{"states":0,"planes":[]}`,
		"short plane":     `{"states":3,"planes":[[1,2]]}`,
		"long plane":      `{"states":1,"planes":[[1,2]]}`,
		"nan via science": `{"states":1,"planes":[[1e999]]}`,
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			var s Set
			if err := json.Unmarshal([]byte(data), &s); err == nil {
				t.Errorf("malformed set accepted: %s", data)
			}
		})
	}
}
