// Package emn builds the paper's evaluation target: a simple deployment of
// AT&T's Enterprise Messaging Network (EMN) platform, the classic 3-tier
// e-commerce system of Figure 4.
//
// Architecture (as described in Section 5 and Figure 4):
//
//   - Front ends: an HTTP gateway (HG) and a voice gateway (VG);
//   - Middle tier: two EMN application servers (S1, S2), each receiving 50%
//     of each gateway's traffic;
//   - Back end: an Oracle database (DB);
//   - Three hosts: HostA runs HG and S1, HostB runs VG and S2, HostC runs
//     the DB (the paper's figure shows the 50/50 load-balanced links from
//     both gateways through the two EMN servers to the DB; the exact
//     host assignment is our reconstruction of the figure and is recorded
//     in DESIGN.md);
//   - Monitors: five component (ping) monitors — HGMon, VGMon, S1Mon,
//     S2Mon, DBMon — and two path monitors — HPathMon (HTTP path) and
//     VPathMon (voice path) — that issue synthetic requests routed like
//     real traffic.
//
// The model has 14 states: the null state, five component-crash states,
// three host-crash states, and five "zombie" states in which a component
// answers pings but drops the requests routed through it. Action durations
// are the paper's: 5 min host reboot, 4 min DB restart, 2 min VG restart,
// 1 min HG/S1/S2 restart, 5 s per monitor sweep. Traffic is 80% HTTP and
// 20% voice, and the operator response time t_op is 6 hours.
package emn

import (
	"fmt"

	"bpomdp/internal/arch"
)

// Paper parameters, in seconds.
const (
	// HostRebootDuration is 5 minutes.
	HostRebootDuration = 300
	// DBRestartDuration is 4 minutes.
	DBRestartDuration = 240
	// VGRestartDuration is 2 minutes.
	VGRestartDuration = 120
	// ShortRestartDuration is 1 minute (HG, S1, S2).
	ShortRestartDuration = 60
	// MonitorSweepDuration is 5 seconds.
	MonitorSweepDuration = 5
	// DefaultMonitorCost prices one monitor sweep at half a request-second
	// of capacity (the path monitors' synthetic probes displace real work).
	// The paper does not state a sweep cost, but its Property 1(a) requires
	// that no action be free outside s_T — monitoring a healthy system
	// forever must not be optimal — so the model needs a positive value.
	// 0.5 calibrates the bounded controller's verification effort to the
	// paper's observations: ~7.6 monitor calls per fault (paper: 7.69) and
	// no early termination in 10,000 injections; see DESIGN.md.
	DefaultMonitorCost = 0.5
	// OperatorResponseTime is the paper's t_op of 6 hours.
	OperatorResponseTime = 6 * 3600
	// HTTPShare and VoiceShare split the request traffic.
	HTTPShare  = 0.8
	VoiceShare = 0.2
)

// Component and host names.
const (
	HG, VG, S1, S2, DB  = "HG", "VG", "S1", "S2", "DB"
	HostA, HostB, HostC = "HostA", "HostB", "HostC"
)

// Config tunes optional aspects of the EMN model; the zero value is the
// paper's configuration.
type Config struct {
	// ComponentMonitorFP is the false-positive probability of the ping
	// monitors (0 in the paper's model).
	ComponentMonitorFP float64
	// PathMonitorFP is the false-positive probability of the path monitors
	// (0 in the paper's model; the imprecision comes from routing, not
	// noise).
	PathMonitorFP float64
	// DisableHostFaults drops the three host-crash states (used by
	// ablations; the paper's model includes them).
	DisableHostFaults bool
	// MonitorCost overrides the per-sweep capacity cost; zero means
	// DefaultMonitorCost, negative-like "free" sweeps are expressed with
	// FreeMonitors (used by the Property 1(a) ablation).
	MonitorCost float64
	// FreeMonitors sets the sweep cost to zero, deliberately violating
	// Property 1(a); used by ablation benchmarks.
	FreeMonitors bool
}

// System returns the declarative EMN architecture; Compile it (or call
// Build) to obtain the recovery model.
func System(cfg Config) *arch.System {
	return &arch.System{
		Name: "emn",
		Hosts: []arch.Host{
			{Name: HostA, RebootDuration: HostRebootDuration},
			{Name: HostB, RebootDuration: HostRebootDuration},
			{Name: HostC, RebootDuration: HostRebootDuration},
		},
		Components: []arch.Component{
			{Name: HG, Host: HostA, RestartDuration: ShortRestartDuration},
			{Name: VG, Host: HostB, RestartDuration: VGRestartDuration},
			{Name: S1, Host: HostA, RestartDuration: ShortRestartDuration},
			{Name: S2, Host: HostB, RestartDuration: ShortRestartDuration},
			{Name: DB, Host: HostC, RestartDuration: DBRestartDuration},
		},
		Paths: []arch.Path{
			{
				Name:         "http",
				TrafficShare: HTTPShare,
				Stages: []arch.Stage{
					{{Component: HG, Weight: 1}},
					{{Component: S1, Weight: 0.5}, {Component: S2, Weight: 0.5}},
					{{Component: DB, Weight: 1}},
				},
			},
			{
				Name:         "voice",
				TrafficShare: VoiceShare,
				Stages: []arch.Stage{
					{{Component: VG, Weight: 1}},
					{{Component: S1, Weight: 0.5}, {Component: S2, Weight: 0.5}},
					{{Component: DB, Weight: 1}},
				},
			},
		},
		ComponentMonitors: []arch.ComponentMonitor{
			{Name: "HGMon", Target: HG, FalsePositive: cfg.ComponentMonitorFP},
			{Name: "VGMon", Target: VG, FalsePositive: cfg.ComponentMonitorFP},
			{Name: "S1Mon", Target: S1, FalsePositive: cfg.ComponentMonitorFP},
			{Name: "S2Mon", Target: S2, FalsePositive: cfg.ComponentMonitorFP},
			{Name: "DBMon", Target: DB, FalsePositive: cfg.ComponentMonitorFP},
		},
		PathMonitors: []arch.PathMonitor{
			{Name: "HPathMon", Path: "http", FalsePositive: cfg.PathMonitorFP},
			{Name: "VPathMon", Path: "voice", FalsePositive: cfg.PathMonitorFP},
		},
		MonitorDuration: MonitorSweepDuration,
		MonitorCost:     monitorCost(cfg),
		CrashFaults:     true,
		ZombieFaults:    true,
		HostFaults:      !cfg.DisableHostFaults,
	}
}

func monitorCost(cfg Config) float64 {
	if cfg.FreeMonitors {
		return 0
	}
	if cfg.MonitorCost > 0 {
		return cfg.MonitorCost
	}
	return DefaultMonitorCost
}

// Build compiles the EMN system into a recovery model.
func Build(cfg Config) (*arch.Compiled, error) {
	c, err := System(cfg).Compile()
	if err != nil {
		return nil, fmt.Errorf("emn: %w", err)
	}
	return c, nil
}
