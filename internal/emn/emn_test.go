package emn

import (
	"math"
	"testing"

	"bpomdp/internal/arch"
	"bpomdp/internal/bounds"
	"bpomdp/internal/core"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func build(t *testing.T) *arch.Compiled {
	t.Helper()
	c, err := Build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEMNShapeMatchesPaper(t *testing.T) {
	c := build(t)
	p := c.Recovery.POMDP
	// 14 states: null + 5 crashes + 3 host crashes + 5 zombies.
	if got := p.NumStates(); got != 14 {
		t.Errorf("states = %d, want 14", got)
	}
	// 9 actions: 5 restarts + 3 reboots + observe.
	if got := p.NumActions(); got != 9 {
		t.Errorf("actions = %d, want 9", got)
	}
	if len(c.CrashStates) != 5 || len(c.HostStates) != 3 || len(c.ZombieStates) != 5 {
		t.Errorf("fault classes = %d/%d/%d, want 5/3/5",
			len(c.CrashStates), len(c.HostStates), len(c.ZombieStates))
	}
	if len(c.MonitorNames) != 7 {
		t.Errorf("monitors = %v, want 7", c.MonitorNames)
	}
}

func TestEMNDurations(t *testing.T) {
	c := build(t)
	want := map[string]float64{
		"restart:HG": 60, "restart:VG": 120, "restart:S1": 60,
		"restart:S2": 60, "restart:DB": 240,
		"reboot:HostA": 300, "reboot:HostB": 300, "reboot:HostC": 300,
		"observe": 0,
	}
	for name, d := range want {
		a, ok := c.ActionIndex[name]
		if !ok {
			t.Fatalf("action %q missing", name)
		}
		if got := c.Recovery.Durations[a]; got != d {
			t.Errorf("duration(%s) = %v, want %v", name, got, d)
		}
	}
	if c.MonitorDuration != 5 {
		t.Errorf("monitor duration = %v, want 5", c.MonitorDuration)
	}
}

func TestEMNDropRates(t *testing.T) {
	c := build(t)
	r := c.Recovery.RateRewards
	st := c.StateIndex
	tests := []struct {
		state string
		want  float64
	}{
		{"null", 0},
		// HG down: all HTTP (0.8) dropped.
		{"crash:HG", -0.8},
		{"zombie:HG", -0.8},
		// VG down: all voice (0.2) dropped.
		{"crash:VG", -0.2},
		// One EMN server down: half of both protocols.
		{"crash:S1", -0.5},
		{"zombie:S2", -0.5},
		// DB down: everything dropped.
		{"crash:DB", -1},
		{"zombie:DB", -1},
		// HostA: HG down (0.8) + half the voice traffic via S1 (0.1).
		{"hostdown:HostA", -0.9},
		// HostB: VG down (0.2) + half the HTTP traffic via S2 (0.4).
		{"hostdown:HostB", -0.6},
		// HostC: DB down.
		{"hostdown:HostC", -1},
	}
	for _, tt := range tests {
		if got := r[st[tt.state]]; !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("rate(%s) = %v, want %v", tt.state, got, tt.want)
		}
	}
}

func TestEMNZombieObservationsAreAmbiguous(t *testing.T) {
	// A zombie EMN server is invisible to pings and caught by each path
	// monitor only when the probe routes through it: four equally likely
	// path-monitor patterns, including all-clear — hence no recovery
	// notification (paper, Section 5).
	c := build(t)
	p := c.Recovery.POMDP
	st := c.StateIndex

	obsIdx := func(name string) int {
		for o := 0; o < p.NumObservations(); o++ {
			if p.ObsName(o) == name {
				return o
			}
		}
		t.Fatalf("observation %q missing", name)
		return -1
	}
	zs1 := st["zombie:S1"]
	for _, tt := range []struct {
		obs  string
		want float64
	}{
		{"obs:clear", 0.25},
		{"obs:HPathMon", 0.25},
		{"obs:VPathMon", 0.25},
		{"obs:HPathMon+VPathMon", 0.25},
	} {
		if got := p.Obs[c.ObserveAction].At(zs1, obsIdx(tt.obs)); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("q(%s|zombie:S1) = %v, want %v", tt.obs, got, tt.want)
		}
	}

	hasNotif, err := c.Recovery.HasRecoveryNotification()
	if err != nil {
		t.Fatal(err)
	}
	if hasNotif {
		t.Error("EMN must lack recovery notification (zombies can look all-clear)")
	}
}

func TestEMNCrashObservationsLocalize(t *testing.T) {
	c := build(t)
	p := c.Recovery.POMDP
	st := c.StateIndex
	// crash:HG: HGMon down and every HTTP probe fails; voice unaffected.
	found := false
	for o := 0; o < p.NumObservations(); o++ {
		if q := p.Obs[c.ObserveAction].At(st["crash:HG"], o); q > 0 {
			if p.ObsName(o) != "obs:HGMon+HPathMon" || !almostEqual(q, 1, 1e-12) {
				t.Errorf("crash:HG emits %s w.p. %v", p.ObsName(o), q)
			}
			found = true
		}
	}
	if !found {
		t.Error("crash:HG emits nothing")
	}
}

func TestEMNSelectedRewards(t *testing.T) {
	c := build(t)
	p := c.Recovery.POMDP
	st, ac := c.StateIndex, c.ActionIndex
	// Every reward carries the fixed sweep cost mc on top of rate x time.
	mc := float64(DefaultMonitorCost)
	tests := []struct {
		state, action string
		want          float64
	}{
		// Observe prices one 5s monitor sweep at the state's drop rate.
		{"null", "observe", -mc},
		{"zombie:S1", "observe", -2.5 - mc},
		{"crash:DB", "observe", -5 - mc},
		// Matching restart: down during the restart, clean sweep after.
		{"crash:HG", "restart:HG", -0.8*60 - mc},
		{"zombie:S1", "restart:S1", -0.5*60 - mc},
		{"crash:DB", "restart:DB", -240 - mc},
		// Wrong restart: S2 down while S1 is a zombie kills the whole
		// middle tier for 60s, and the zombie persists through the sweep.
		{"zombie:S1", "restart:S2", -(1.0*60 + 0.5*5) - mc},
		// Restarting a healthy component in the null state still costs.
		{"null", "restart:DB", -240 - mc},
		// Reboot of HostA fixes zombie:S1 but drops 0.9 for 300s.
		{"zombie:S1", "reboot:HostA", -0.9*300 - mc},
	}
	for _, tt := range tests {
		got := p.M.Reward[ac[tt.action]][st[tt.state]]
		if !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("r(%s, %s) = %v, want %v", tt.state, tt.action, got, tt.want)
		}
	}
}

func TestEMNPreparesAndBoundsConverge(t *testing.T) {
	c := build(t)
	prep, err := core.Prepare(c.Recovery, core.PrepareOptions{
		OperatorResponseTime: OperatorResponseTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prep.Regime != core.RegimeTermination {
		t.Errorf("regime = %v, want termination", prep.Regime)
	}
	// RA values must be finite, non-positive, and zero only at s_T.
	for s, v := range prep.RA {
		if v > 1e-9 {
			t.Errorf("RA[%d] = %v > 0", s, v)
		}
		if s == prep.Terminate.State && !almostEqual(v, 0, 1e-9) {
			t.Errorf("RA[s_T] = %v, want 0", v)
		}
	}
	// QMDP upper bound must dominate the RA-Bound.
	up, err := bounds.QMDP(prep.Model, bounds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := range up {
		if up[s] < prep.RA[s]-1e-6 {
			t.Errorf("state %d: QMDP %v < RA %v", s, up[s], prep.RA[s])
		}
	}
}

func TestEMNDisableHostFaults(t *testing.T) {
	c, err := Build(Config{DisableHostFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Recovery.POMDP.NumStates(); got != 11 {
		t.Errorf("states = %d, want 11 (no host faults)", got)
	}
	if len(c.HostStates) != 0 {
		t.Errorf("host states = %v", c.HostStates)
	}
}
