package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorKnownValues(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if a.CI95() <= 0 {
		t.Errorf("CI95 = %v", a.CI95())
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.CI95() != 0 {
		t.Error("empty accumulator not zero")
	}
	a.Add(3)
	if a.Mean() != 3 || a.Variance() != 0 || a.Min() != 3 || a.Max() != 3 {
		t.Errorf("single-sample stats wrong: %+v", a)
	}
}

func TestAccumulatorMatchesDirectComputation(t *testing.T) {
	f := func(xs []float64) bool {
		var a Accumulator
		var sum float64
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e8 {
				return true
			}
		}
		for _, x := range xs {
			a.Add(x)
			sum += x
		}
		if len(xs) == 0 {
			return true
		}
		mean := sum / float64(len(xs))
		scale := 1.0
		if m := math.Abs(mean); m > 1 {
			scale = m
		}
		if math.Abs(a.Mean()-mean) > 1e-9*scale {
			ok = false
		}
		if len(xs) >= 2 {
			var ss float64
			for _, x := range xs {
				ss += (x - mean) * (x - mean)
			}
			v := ss / float64(len(xs)-1)
			vscale := 1.0
			if v > 1 {
				vscale = v
			}
			if math.Abs(a.Variance()-v) > 1e-6*vscale {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Name", "Value")
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-name", "12345")
	tb.AddRow("padded") // short row
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator: %q", lines[1])
	}
	// All lines align: the "Value" column starts at the same offset.
	off := strings.Index(lines[0], "Value")
	if !strings.HasPrefix(lines[3][off:], "12345") {
		t.Errorf("misaligned row: %q", lines[3])
	}
}
