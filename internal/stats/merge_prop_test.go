package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// The unified campaign engine's exact-merge claim rests on Accumulator.Merge
// being equivalent to having folded every sample into one accumulator. These
// property tests enforce that over random sample sets and random partitions,
// including the empty/single-sample edges whose handling (the early b.n == 0
// return) is what keeps min/max correct.

func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*math.Max(scale, 1)
}

func checkMergeEquivalence(t *testing.T, samples []float64, splits [][]float64) {
	t.Helper()
	var seq Accumulator
	for _, x := range samples {
		seq.Add(x)
	}
	var merged Accumulator
	for _, part := range splits {
		var a Accumulator
		for _, x := range part {
			a.Add(x)
		}
		merged.Merge(&a)
	}
	if merged.N() != seq.N() {
		t.Fatalf("merged n = %d, sequential %d", merged.N(), seq.N())
	}
	if seq.N() == 0 {
		return
	}
	if !approxEq(merged.Mean(), seq.Mean()) {
		t.Errorf("merged mean %v != sequential %v", merged.Mean(), seq.Mean())
	}
	if !approxEq(merged.Variance(), seq.Variance()) {
		t.Errorf("merged variance %v != sequential %v", merged.Variance(), seq.Variance())
	}
	// Extrema must be exact — they are order statistics, not floating sums.
	if merged.Min() != seq.Min() {
		t.Errorf("merged min %v != sequential %v", merged.Min(), seq.Min())
	}
	if merged.Max() != seq.Max() {
		t.Errorf("merged max %v != sequential %v", merged.Max(), seq.Max())
	}
}

// TestMergeRandomSplitsMatchesSequentialAdd: merging accumulators over any
// partition of a sample set must agree with adding all samples to one
// accumulator.
func TestMergeRandomSplitsMatchesSequentialAdd(t *testing.T) {
	r := rand.New(rand.NewPCG(1234, 5678))
	for trial := 0; trial < 200; trial++ {
		n := r.IntN(60)
		samples := make([]float64, n)
		for i := range samples {
			// Mixed-sign, mixed-magnitude samples, with occasional repeats so
			// min == max ties get exercised.
			samples[i] = math.Round((r.Float64()*2-1)*1e3) / 8
		}
		// Random partition into k (possibly empty) parts, preserving order
		// within parts; the campaign engine's worker stripes are exactly such
		// a partition.
		k := 1 + r.IntN(6)
		splits := make([][]float64, k)
		for _, x := range samples {
			w := r.IntN(k)
			splits[w] = append(splits[w], x)
		}
		checkMergeEquivalence(t, samples, splits)
	}
}

// TestMergeEdgeCases pins the empty/single-sample boundary behavior.
func TestMergeEdgeCases(t *testing.T) {
	t.Run("both-empty", func(t *testing.T) {
		var a, b Accumulator
		a.Merge(&b)
		if a.N() != 0 || a.Min() != 0 || a.Max() != 0 {
			t.Errorf("merge of empties not zero: %+v", a)
		}
	})
	t.Run("empty-into-nonempty", func(t *testing.T) {
		var a, b Accumulator
		a.Add(-3)
		a.Merge(&b)
		if a.N() != 1 || a.Min() != -3 || a.Max() != -3 || a.Mean() != -3 {
			t.Errorf("merging empty changed accumulator: %+v", a)
		}
	})
	t.Run("nonempty-into-empty", func(t *testing.T) {
		var a, b Accumulator
		b.Add(7)
		b.Add(-2)
		a.Merge(&b)
		if a.N() != 2 || a.Min() != -2 || a.Max() != 7 {
			t.Errorf("merge into empty lost state: %+v", a)
		}
	})
	t.Run("single-samples", func(t *testing.T) {
		checkMergeEquivalence(t, []float64{5}, [][]float64{{5}, {}})
		checkMergeEquivalence(t, []float64{5, -5}, [][]float64{{5}, {-5}})
	})
	t.Run("negative-extrema", func(t *testing.T) {
		// A part whose samples are all negative must still pull min down when
		// merged into a part with higher min — the case the early-return
		// structure could silently break if reordered.
		checkMergeEquivalence(t, []float64{-10, -20, 1}, [][]float64{{1}, {-10, -20}})
	})
	t.Run("merge-self-snapshot", func(t *testing.T) {
		var a Accumulator
		a.Add(1)
		a.Add(2)
		snap := a
		a.Merge(&snap)
		if a.N() != 4 || !approxEq(a.Mean(), 1.5) {
			t.Errorf("self-snapshot merge wrong: n=%d mean=%v", a.N(), a.Mean())
		}
	})
}
