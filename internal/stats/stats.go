// Package stats provides the small statistical toolkit used by the
// fault-injection campaigns: streaming mean/variance accumulators
// (Welford's algorithm), normal-approximation confidence intervals, and
// plain-text table rendering for the Table 1 reports.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Accumulator computes streaming count, mean, variance and extrema without
// storing samples. The zero value is ready to use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds a sample into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the sample count.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample (0 for an empty accumulator).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 for an empty accumulator).
func (a *Accumulator) Max() float64 { return a.max }

// Merge folds another accumulator into a (Chan et al.'s parallel variance
// combination), so per-worker statistics can be combined exactly.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	na, nb := float64(a.n), float64(b.n)
	delta := b.mean - a.mean
	total := na + nb
	a.mean += delta * nb / total
	a.m2 += b.m2 + delta*delta*na*nb/total
	a.n += b.n
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean (0 for n < 2).
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.StdDev() / math.Sqrt(float64(a.n))
}

// Table renders aligned plain-text tables.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with space-aligned columns and a separator under
// the header.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
