package mdp

import (
	"errors"
	"fmt"

	"bpomdp/internal/linalg"
)

// PolicyIterationOptions configures PolicyIteration.
type PolicyIterationOptions struct {
	// SolveOptions tune the evaluation solves and the discount factor.
	SolveOptions
	// InitialPolicy seeds the iteration. For undiscounted (β = 1) negative
	// models the initial policy must be proper (reach a zero-reward
	// absorbing set from every state with probability 1), or its evaluation
	// diverges; ValueIteration has no such requirement. Nil starts from the
	// policy that greedily maximizes the immediate reward.
	InitialPolicy []int
	// MaxPolicyIterations bounds the outer improvement loop. Zero means 1000.
	MaxPolicyIterations int
}

// PolicyIteration solves the MDP by Howard's policy iteration: evaluate the
// current policy exactly (a linear solve on its induced Markov chain), then
// improve greedily; termination is reached when the policy is stable. On
// finite MDPs with proper policies this converges in finitely many
// improvements and typically far fewer sweeps than value iteration.
//
// If an intermediate policy's evaluation diverges (possible only for β = 1
// with an improper policy), the error wraps linalg.ErrNoConvergence;
// callers can fall back to ValueIteration.
func PolicyIteration(m *MDP, opts PolicyIterationOptions) (Result, error) {
	o := opts.SolveOptions.withDefaults()
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	maxOuter := opts.MaxPolicyIterations
	if maxOuter == 0 {
		maxOuter = 1000
	}
	n := m.NumStates()
	policy := make([]int, n)
	switch {
	case opts.InitialPolicy != nil:
		if len(opts.InitialPolicy) != n {
			return Result{}, fmt.Errorf("mdp: initial policy length %d, want %d", len(opts.InitialPolicy), n)
		}
		copy(policy, opts.InitialPolicy)
	default:
		for s := 0; s < n; s++ {
			best, arg := m.Reward[0][s], 0
			for a := 1; a < m.NumActions(); a++ {
				if r := m.Reward[a][s]; r > best {
					best, arg = r, a
				}
			}
			policy[s] = arg
		}
	}

	res := Result{}
	for iter := 0; iter < maxOuter; iter++ {
		v, err := EvaluatePolicy(m, policy, o)
		if err != nil {
			if errors.Is(err, linalg.ErrNoConvergence) {
				return res, fmt.Errorf("mdp: policy iteration: improper policy at iteration %d: %w", iter, err)
			}
			return res, err
		}
		q, err := QValues(m, v, o.Beta)
		if err != nil {
			return res, err
		}
		stable := true
		for s := 0; s < n; s++ {
			best, arg := q[policy[s]][s], policy[s]
			for a := 0; a < m.NumActions(); a++ {
				if q[a][s] > best+o.Tol {
					best, arg = q[a][s], a
				}
			}
			if arg != policy[s] {
				policy[s] = arg
				stable = false
			}
		}
		res.Iterations = iter + 1
		if stable {
			res.Values = v
			res.Policy = policy
			return res, nil
		}
	}
	return res, fmt.Errorf("mdp: policy iteration did not stabilize in %d improvements: %w",
		maxOuter, linalg.ErrNoConvergence)
}
