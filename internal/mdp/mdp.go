// Package mdp implements finite Markov decision processes and their
// solution: value iteration for discounted and undiscounted (negative-model)
// optimality criteria, policy evaluation by linear solve, greedy policy
// extraction, and the derived Markov chains (uniform random action, fixed
// action) that the paper's POMDP bounds are built from.
//
// An MDP is the tuple (S, A, p(·|s,a), r(s,a)) of Section 2 of the paper.
// States and actions are dense integer indices; names are carried alongside
// purely for diagnostics.
package mdp

import (
	"errors"
	"fmt"
	"math"

	"bpomdp/internal/linalg"
)

// ErrInvalidModel is wrapped by all validation failures.
var ErrInvalidModel = errors.New("mdp: invalid model")

// stochasticTol is the tolerance used when checking that transition rows
// sum to one.
const stochasticTol = 1e-9

// MDP is a finite Markov decision process. Build one with a Builder (or
// populate the fields directly and call Validate). After Validate succeeds
// the model must be treated as immutable.
type MDP struct {
	// Trans[a] is the |S|×|S| transition-probability matrix for action a:
	// Trans[a].At(s, s') = p(s'|s, a).
	Trans []*linalg.CSR
	// Reward[a][s] = r(s, a), the single-step reward for choosing action a
	// in state s.
	Reward []linalg.Vector
	// StateNames and ActionNames are optional human-readable labels used in
	// diagnostics; when present their lengths must match |S| and |A|.
	StateNames  []string
	ActionNames []string
}

// NumStates returns |S|.
func (m *MDP) NumStates() int {
	if len(m.Trans) == 0 {
		return 0
	}
	return m.Trans[0].Rows()
}

// NumActions returns |A|.
func (m *MDP) NumActions() int { return len(m.Trans) }

// StateName returns the label of state s, falling back to "s<idx>".
func (m *MDP) StateName(s int) string {
	if s >= 0 && s < len(m.StateNames) && m.StateNames[s] != "" {
		return m.StateNames[s]
	}
	return fmt.Sprintf("s%d", s)
}

// ActionName returns the label of action a, falling back to "a<idx>".
func (m *MDP) ActionName(a int) string {
	if a >= 0 && a < len(m.ActionNames) && m.ActionNames[a] != "" {
		return m.ActionNames[a]
	}
	return fmt.Sprintf("a%d", a)
}

// Validate checks structural well-formedness: at least one action, square
// matching-shape transition matrices with stochastic rows, reward vectors of
// length |S|, and name slices (when present) of matching length.
func (m *MDP) Validate() error {
	if len(m.Trans) == 0 {
		return fmt.Errorf("%w: no actions", ErrInvalidModel)
	}
	if len(m.Reward) != len(m.Trans) {
		return fmt.Errorf("%w: %d reward vectors for %d actions", ErrInvalidModel, len(m.Reward), len(m.Trans))
	}
	n := m.Trans[0].Rows()
	for a, tr := range m.Trans {
		if tr.Rows() != n || tr.Cols() != n {
			return fmt.Errorf("%w: action %s transition matrix is %dx%d, want %dx%d",
				ErrInvalidModel, m.ActionName(a), tr.Rows(), tr.Cols(), n, n)
		}
		sums := tr.RowSums()
		for s, sum := range sums {
			if math.Abs(sum-1) > stochasticTol {
				return fmt.Errorf("%w: action %s row %s sums to %v, want 1",
					ErrInvalidModel, m.ActionName(a), m.StateName(s), sum)
			}
		}
		neg := false
		for s := 0; s < n; s++ {
			tr.Row(s, func(_ int, v float64) {
				if v < 0 {
					neg = true
				}
			})
		}
		if neg {
			return fmt.Errorf("%w: action %s has negative transition probability", ErrInvalidModel, m.ActionName(a))
		}
		if len(m.Reward[a]) != n {
			return fmt.Errorf("%w: action %s reward vector length %d, want %d",
				ErrInvalidModel, m.ActionName(a), len(m.Reward[a]), n)
		}
		if !m.Reward[a].IsFinite() {
			return fmt.Errorf("%w: action %s has non-finite reward", ErrInvalidModel, m.ActionName(a))
		}
	}
	if len(m.StateNames) != 0 && len(m.StateNames) != n {
		return fmt.Errorf("%w: %d state names for %d states", ErrInvalidModel, len(m.StateNames), n)
	}
	if len(m.ActionNames) != 0 && len(m.ActionNames) != len(m.Trans) {
		return fmt.Errorf("%w: %d action names for %d actions", ErrInvalidModel, len(m.ActionNames), len(m.Trans))
	}
	return nil
}

// AllRewardsNonPositive reports whether every single-step reward satisfies
// r(s,a) <= 0 — Condition 2 of the paper, which makes the induced
// belief-state MDP a negative model with values upper-bounded by zero.
func (m *MDP) AllRewardsNonPositive() bool {
	for _, r := range m.Reward {
		for _, x := range r {
			if x > 0 {
				return false
			}
		}
	}
	return true
}

// UniformChain collapses the MDP into the Markov chain obtained by choosing
// an action uniformly at random in every state, together with its reward
// vector — the construction underlying the RA-Bound (Equation 5):
//
//	P_ra(s'|s) = (1/|A|) Σ_a p(s'|s,a),  r_ra(s) = (1/|A|) Σ_a r(s,a).
func (m *MDP) UniformChain() (*linalg.CSR, linalg.Vector, error) {
	n, na := m.NumStates(), m.NumActions()
	if na == 0 {
		return nil, nil, fmt.Errorf("%w: no actions", ErrInvalidModel)
	}
	inv := 1 / float64(na)
	b := linalg.NewBuilder(n, n)
	r := linalg.NewVector(n)
	for a := 0; a < na; a++ {
		for s := 0; s < n; s++ {
			m.Trans[a].Row(s, func(c int, v float64) {
				b.Add(s, c, v*inv)
			})
		}
		r.AddScaled(inv, m.Reward[a])
	}
	p, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("mdp: uniform chain: %w", err)
	}
	return p, r, nil
}

// ActionChain returns the Markov chain induced by blindly following action a
// in every state, with its reward vector — the basis of the blind-policy
// bound of Hauskrecht (1997).
func (m *MDP) ActionChain(a int) (*linalg.CSR, linalg.Vector, error) {
	if a < 0 || a >= m.NumActions() {
		return nil, nil, fmt.Errorf("mdp: action %d out of range [0,%d)", a, m.NumActions())
	}
	return m.Trans[a], m.Reward[a].Clone(), nil
}

// PolicyChain returns the Markov chain induced by a stationary deterministic
// policy (policy[s] is the action chosen in state s).
func (m *MDP) PolicyChain(policy []int) (*linalg.CSR, linalg.Vector, error) {
	n := m.NumStates()
	if len(policy) != n {
		return nil, nil, fmt.Errorf("mdp: policy length %d, want %d", len(policy), n)
	}
	b := linalg.NewBuilder(n, n)
	r := linalg.NewVector(n)
	for s := 0; s < n; s++ {
		a := policy[s]
		if a < 0 || a >= m.NumActions() {
			return nil, nil, fmt.Errorf("mdp: policy[%d]=%d out of range [0,%d)", s, a, m.NumActions())
		}
		m.Trans[a].Row(s, func(c int, v float64) { b.Add(s, c, v) })
		r[s] = m.Reward[a][s]
	}
	p, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("mdp: policy chain: %w", err)
	}
	return p, r, nil
}

// CanReach reports, for every state, whether some sequence of actions can
// reach the target set with positive probability — the reachability half of
// the paper's Condition 1. It runs a reverse breadth-first search over the
// union of all action transition graphs.
func (m *MDP) CanReach(targets []int) []bool {
	n := m.NumStates()
	reach := make([]bool, n)
	queue := make([]int, 0, n)
	for _, t := range targets {
		if t >= 0 && t < n && !reach[t] {
			reach[t] = true
			queue = append(queue, t)
		}
	}
	// Predecessor adjacency over the action-union graph.
	preds := make([][]int32, n)
	for a := 0; a < m.NumActions(); a++ {
		for s := 0; s < n; s++ {
			m.Trans[a].Row(s, func(c int, v float64) {
				if v > 0 && c != s {
					preds[c] = append(preds[c], int32(s))
				}
			})
		}
	}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		for _, p := range preds[t] {
			if !reach[p] {
				reach[p] = true
				queue = append(queue, int(p))
			}
		}
	}
	return reach
}
