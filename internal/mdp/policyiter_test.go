package mdp

import (
	"errors"
	"testing"

	"bpomdp/internal/linalg"
)

func TestPolicyIterationMatchesValueIteration(t *testing.T) {
	m := twoState(t)
	for _, beta := range []float64{1, 0.9, 0.5} {
		vi, err := ValueIteration(m, SolveOptions{Beta: beta})
		if err != nil {
			t.Fatal(err)
		}
		pi, err := PolicyIteration(m, PolicyIterationOptions{
			SolveOptions: SolveOptions{Beta: beta},
			// "fix" everywhere is proper; needed for beta = 1.
			InitialPolicy: []int{0, 0},
		})
		if err != nil {
			t.Fatalf("beta=%v: %v", beta, err)
		}
		if d := vi.Values.InfNormDiff(pi.Values); d > 1e-6 {
			t.Errorf("beta=%v: VI and PI differ by %g", beta, d)
		}
		if pi.Policy[0] != vi.Policy[0] {
			t.Errorf("beta=%v: policies differ: %v vs %v", beta, pi.Policy, vi.Policy)
		}
	}
}

func TestPolicyIterationImproperInitialPolicyDiverges(t *testing.T) {
	// "wait" forever from the bad state accumulates -2 per step: improper
	// at beta = 1, and the default greedy-immediate initialization picks
	// "fix" (-1 beats -2), so force the improper policy explicitly.
	m := twoState(t)
	_, err := PolicyIteration(m, PolicyIterationOptions{
		SolveOptions:  SolveOptions{MaxIter: 5000},
		InitialPolicy: []int{1, 0},
	})
	if !errors.Is(err, linalg.ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestPolicyIterationDefaultInitialization(t *testing.T) {
	// The greedy-immediate default start ("fix": -1 > "wait": -2) is proper
	// here and converges without an explicit initial policy.
	m := twoState(t)
	res, err := PolicyIteration(m, PolicyIterationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Values[0], -1, 1e-8) {
		t.Errorf("V(bad) = %v, want -1", res.Values[0])
	}
	if res.Iterations < 1 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestPolicyIterationValidation(t *testing.T) {
	m := twoState(t)
	if _, err := PolicyIteration(m, PolicyIterationOptions{InitialPolicy: []int{0}}); err == nil {
		t.Error("short initial policy accepted")
	}
	if _, err := PolicyIteration(&MDP{}, PolicyIterationOptions{}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestPolicyIterationConvergesFasterThanVIOnChain(t *testing.T) {
	// A 30-state chain where VI needs ~30 sweeps but PI stabilizes in a
	// couple of improvements — the classic argument for policy iteration.
	b := NewBuilder()
	const n = 30
	name := func(i int) string {
		if i == 0 {
			return "goal"
		}
		return "s" + string(rune('A'+i-1))
	}
	b.Transition(name(0), "go", name(0), 1)
	b.Transition(name(0), "stay", name(0), 1)
	for i := 1; i < n; i++ {
		b.Transition(name(i), "go", name(i-1), 1)
		b.Reward(name(i), "go", -1)
		b.Transition(name(i), "stay", name(i), 1)
		b.Reward(name(i), "stay", -2)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	goEverywhere := make([]int, n)
	res, err := PolicyIteration(m, PolicyIterationOptions{InitialPolicy: goEverywhere})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 3 {
		t.Errorf("policy iteration took %d improvements on a chain", res.Iterations)
	}
	// V(s_i) = -i under the optimal all-"go" policy.
	if !almostEqual(res.Values[n-1], -(float64(n) - 1), 1e-6) {
		t.Errorf("V(farthest) = %v, want %v", res.Values[n-1], -(float64(n) - 1))
	}
}
