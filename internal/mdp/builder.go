package mdp

import (
	"fmt"

	"bpomdp/internal/linalg"
)

// Builder assembles an MDP incrementally by naming states and actions and
// adding transitions. It is the ergonomic front end used by the model
// compiler in internal/arch and by tests; the resulting MDP is validated on
// Build.
type Builder struct {
	stateIdx  map[string]int
	actionIdx map[string]int
	states    []string
	actions   []string

	trans   map[int][]linalg.Entry // action -> entries
	rewards map[int]map[int]float64
	errs    []error
}

// NewBuilder returns an empty MDP builder.
func NewBuilder() *Builder {
	return &Builder{
		stateIdx:  make(map[string]int),
		actionIdx: make(map[string]int),
		trans:     make(map[int][]linalg.Entry),
		rewards:   make(map[int]map[int]float64),
	}
}

// State interns a state name and returns its index.
func (b *Builder) State(name string) int {
	if i, ok := b.stateIdx[name]; ok {
		return i
	}
	i := len(b.states)
	b.stateIdx[name] = i
	b.states = append(b.states, name)
	return i
}

// Action interns an action name and returns its index.
func (b *Builder) Action(name string) int {
	if i, ok := b.actionIdx[name]; ok {
		return i
	}
	i := len(b.actions)
	b.actionIdx[name] = i
	b.actions = append(b.actions, name)
	return i
}

// HasState reports whether a state with this name was interned.
func (b *Builder) HasState(name string) bool {
	_, ok := b.stateIdx[name]
	return ok
}

// NumStates returns the number of states interned so far.
func (b *Builder) NumStates() int { return len(b.states) }

// NumActions returns the number of actions interned so far.
func (b *Builder) NumActions() int { return len(b.actions) }

// Transition adds p(to|from, action) += prob.
func (b *Builder) Transition(from string, action string, to string, prob float64) {
	if prob < 0 {
		b.errs = append(b.errs, fmt.Errorf("mdp: negative probability %v for %s --%s--> %s", prob, from, action, to))
		return
	}
	a := b.Action(action)
	b.trans[a] = append(b.trans[a], linalg.Entry{Row: b.State(from), Col: b.State(to), Val: prob})
}

// Reward sets r(state, action) = r (overwriting any prior value).
func (b *Builder) Reward(state, action string, r float64) {
	a := b.Action(action)
	if b.rewards[a] == nil {
		b.rewards[a] = make(map[int]float64)
	}
	b.rewards[a][b.State(state)] = r
}

// Build finalizes and validates the MDP. Missing (state, action) transition
// rows are an error — every action must be defined in every state (a
// "disabled" action should instead be modeled as a self-loop with an
// appropriately harsh reward, keeping the action set uniform as the POMDP
// framework of the paper requires).
func (b *Builder) Build() (*MDP, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	n, na := len(b.states), len(b.actions)
	if n == 0 || na == 0 {
		return nil, fmt.Errorf("%w: %d states, %d actions", ErrInvalidModel, n, na)
	}
	m := &MDP{
		Trans:       make([]*linalg.CSR, na),
		Reward:      make([]linalg.Vector, na),
		StateNames:  append([]string(nil), b.states...),
		ActionNames: append([]string(nil), b.actions...),
	}
	for a := 0; a < na; a++ {
		rows := make([]bool, n)
		for _, e := range b.trans[a] {
			rows[e.Row] = true
		}
		for s, ok := range rows {
			if !ok {
				return nil, fmt.Errorf("%w: action %q has no transitions from state %q",
					ErrInvalidModel, b.actions[a], b.states[s])
			}
		}
		tr, err := linalg.NewCSR(n, n, b.trans[a])
		if err != nil {
			return nil, fmt.Errorf("mdp: build action %q: %w", b.actions[a], err)
		}
		m.Trans[a] = tr
		r := linalg.NewVector(n)
		for s, v := range b.rewards[a] {
			r[s] = v
		}
		m.Reward[a] = r
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
