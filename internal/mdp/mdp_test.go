package mdp

import (
	"errors"
	"testing"

	"bpomdp/internal/linalg"
)

// twoState builds the canonical test MDP:
//
//	state bad(0):  fix  -> good w.p. 1, r = -1
//	               wait -> bad  w.p. 1, r = -2
//	state good(1): fix/wait self-loop, r = 0
func twoState(t *testing.T) *MDP {
	t.Helper()
	b := NewBuilder()
	b.Transition("bad", "fix", "good", 1)
	b.Transition("bad", "wait", "bad", 1)
	b.Transition("good", "fix", "good", 1)
	b.Transition("good", "wait", "good", 1)
	b.Reward("bad", "fix", -1)
	b.Reward("bad", "wait", -2)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuilderInterning(t *testing.T) {
	b := NewBuilder()
	s1 := b.State("x")
	s2 := b.State("x")
	if s1 != s2 {
		t.Errorf("State(\"x\") interned twice: %d, %d", s1, s2)
	}
	a1 := b.Action("go")
	a2 := b.Action("go")
	if a1 != a2 {
		t.Errorf("Action(\"go\") interned twice: %d, %d", a1, a2)
	}
	if !b.HasState("x") || b.HasState("y") {
		t.Error("HasState wrong")
	}
	if b.NumStates() != 1 || b.NumActions() != 1 {
		t.Errorf("counts = %d states, %d actions", b.NumStates(), b.NumActions())
	}
}

func TestBuilderRejectsMissingRow(t *testing.T) {
	b := NewBuilder()
	b.Transition("a", "go", "b", 1)
	// state "b" has no transitions under "go".
	if _, err := b.Build(); err == nil {
		t.Error("missing transition row accepted")
	}
}

func TestBuilderRejectsNegativeProb(t *testing.T) {
	b := NewBuilder()
	b.Transition("a", "go", "a", -0.5)
	b.Transition("a", "go", "a", 1.5)
	if _, err := b.Build(); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestBuilderRejectsEmpty(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Error("empty builder accepted")
	}
}

func TestValidateNonStochastic(t *testing.T) {
	m := twoState(t)
	// Corrupt: replace a transition matrix with a non-stochastic one.
	bad, err := linalg.NewCSR(2, 2, []linalg.Entry{{Row: 0, Col: 0, Val: 0.5}, {Row: 1, Col: 1, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	m.Trans[0] = bad
	if err := m.Validate(); !errors.Is(err, ErrInvalidModel) {
		t.Errorf("Validate = %v, want ErrInvalidModel", err)
	}
}

func TestValidateShapeErrors(t *testing.T) {
	m := twoState(t)
	m.Reward[0] = linalg.Vector{0}
	if err := m.Validate(); !errors.Is(err, ErrInvalidModel) {
		t.Errorf("short reward: %v", err)
	}

	m2 := twoState(t)
	m2.StateNames = []string{"only-one"}
	if err := m2.Validate(); !errors.Is(err, ErrInvalidModel) {
		t.Errorf("bad state names: %v", err)
	}

	m3 := &MDP{}
	if err := m3.Validate(); !errors.Is(err, ErrInvalidModel) {
		t.Errorf("empty model: %v", err)
	}
}

func TestNames(t *testing.T) {
	m := twoState(t)
	if m.StateName(0) != "bad" || m.ActionName(0) != "fix" {
		t.Errorf("names: %q %q", m.StateName(0), m.ActionName(0))
	}
	if m.StateName(99) != "s99" || m.ActionName(99) != "a99" {
		t.Errorf("fallback names: %q %q", m.StateName(99), m.ActionName(99))
	}
}

func TestAllRewardsNonPositive(t *testing.T) {
	m := twoState(t)
	if !m.AllRewardsNonPositive() {
		t.Error("non-positive rewards reported positive")
	}
	m.Reward[0][1] = 0.5
	if m.AllRewardsNonPositive() {
		t.Error("positive reward not detected")
	}
}

func TestValueIterationUndiscounted(t *testing.T) {
	m := twoState(t)
	res, err := ValueIteration(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Values[0], -1, 1e-8) || !almostEqual(res.Values[1], 0, 1e-8) {
		t.Errorf("V = %v, want [-1 0]", res.Values)
	}
	if res.Policy[0] != 0 { // fix
		t.Errorf("policy[bad] = %s, want fix", m.ActionName(res.Policy[0]))
	}
}

func TestValueIterationDiscounted(t *testing.T) {
	m := twoState(t)
	beta := 0.5
	res, err := ValueIteration(m, SolveOptions{Beta: beta})
	if err != nil {
		t.Fatal(err)
	}
	// fix: -1 + 0.5*0 = -1; wait: -2 + 0.5*V(bad). V(bad) = max(-1, ...) = -1.
	if !almostEqual(res.Values[0], -1, 1e-8) {
		t.Errorf("V(bad) = %v, want -1", res.Values[0])
	}
}

func TestValueIterationRejectsBadBeta(t *testing.T) {
	m := twoState(t)
	if _, err := ValueIteration(m, SolveOptions{Beta: 1.5}); err == nil {
		t.Error("beta=1.5 accepted")
	}
	if _, err := ValueIteration(m, SolveOptions{Beta: -1}); err == nil {
		t.Error("beta=-1 accepted")
	}
}

func TestMinValueIterationDivergesUndiscounted(t *testing.T) {
	// The worst action ("wait", cost -2 forever) never recovers, so the
	// pessimal value is -inf — the BI-POMDP failure the paper describes.
	m := twoState(t)
	_, err := MinValueIteration(m, SolveOptions{MaxIter: 20000})
	if !errors.Is(err, linalg.ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestMinValueIterationConvergesDiscounted(t *testing.T) {
	m := twoState(t)
	beta := 0.9
	res, err := MinValueIteration(m, SolveOptions{Beta: beta, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	want := -2 / (1 - beta)
	if !almostEqual(res.Values[0], want, 1e-6) {
		t.Errorf("min V(bad) = %v, want %v", res.Values[0], want)
	}
}

func TestEvaluatePolicy(t *testing.T) {
	m := twoState(t)
	v, err := EvaluatePolicy(m, []int{0, 0}, SolveOptions{}) // always fix
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v[0], -1, 1e-8) {
		t.Errorf("policy value = %v, want -1", v[0])
	}
	if _, err := EvaluatePolicy(m, []int{0}, SolveOptions{}); err == nil {
		t.Error("short policy accepted")
	}
	if _, err := EvaluatePolicy(m, []int{0, 9}, SolveOptions{}); err == nil {
		t.Error("out-of-range action accepted")
	}
}

func TestUniformChain(t *testing.T) {
	m := twoState(t)
	p, r, err := m.UniformChain()
	if err != nil {
		t.Fatal(err)
	}
	// From bad: fix (0.5 -> good), wait (0.5 -> bad); avg reward -1.5.
	if !almostEqual(p.At(0, 1), 0.5, 1e-12) || !almostEqual(p.At(0, 0), 0.5, 1e-12) {
		t.Errorf("uniform chain row 0 = [%v %v]", p.At(0, 0), p.At(0, 1))
	}
	if !almostEqual(r[0], -1.5, 1e-12) {
		t.Errorf("uniform reward(bad) = %v, want -1.5", r[0])
	}
	sums := p.RowSums()
	for s, sum := range sums {
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("row %d sums to %v", s, sum)
		}
	}
}

func TestActionAndPolicyChains(t *testing.T) {
	m := twoState(t)
	p, r, err := m.ActionChain(1) // wait
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0, 0) != 1 || r[0] != -2 {
		t.Errorf("wait chain: p=%v r=%v", p.At(0, 0), r[0])
	}
	if _, _, err := m.ActionChain(5); err == nil {
		t.Error("out-of-range action accepted")
	}

	pc, rc, err := m.PolicyChain([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pc.At(0, 1) != 1 || rc[0] != -1 {
		t.Errorf("policy chain: p=%v r=%v", pc.At(0, 1), rc[0])
	}
}

func TestCanReach(t *testing.T) {
	// Three states: 0 -> 1 -> 2 (absorbing), and an isolated trap 3.
	b := NewBuilder()
	b.Transition("s0", "go", "s1", 1)
	b.Transition("s1", "go", "s2", 1)
	b.Transition("s2", "go", "s2", 1)
	b.Transition("trap", "go", "trap", 1)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	reach := m.CanReach([]int{2})
	want := []bool{true, true, true, false}
	for i := range want {
		if reach[i] != want[i] {
			t.Errorf("reach[%d] = %v, want %v", i, reach[i], want[i])
		}
	}
	// Out-of-range targets are ignored.
	if got := m.CanReach([]int{-1, 99}); got[0] || got[1] || got[2] || got[3] {
		t.Errorf("bogus targets reached: %v", got)
	}
}

func TestQValues(t *testing.T) {
	m := twoState(t)
	v := linalg.Vector{-1, 0}
	q, err := QValues(m, v, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Q(bad, fix) = -1 + 0 = -1; Q(bad, wait) = -2 + (-1) = -3.
	if !almostEqual(q[0][0], -1, 1e-12) || !almostEqual(q[1][0], -3, 1e-12) {
		t.Errorf("Q = [%v %v]", q[0][0], q[1][0])
	}
	if _, err := QValues(m, linalg.Vector{0}, 1); err == nil {
		t.Error("short value vector accepted")
	}
}

func almostEqual(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
