package mdp

import (
	"fmt"
	"math"

	"bpomdp/internal/linalg"
)

// SolveOptions configures the MDP solvers.
type SolveOptions struct {
	// Beta is the discount factor in (0, 1]. Zero means 1 (the undiscounted
	// criterion the paper argues is the right one for recovery).
	Beta float64
	// Tol is the sup-norm convergence tolerance. Zero means 1e-9.
	Tol float64
	// MaxIter bounds the number of value-iteration sweeps. Zero means 100000.
	MaxIter int
	// DivergeAbove aborts with linalg.ErrNoConvergence when the value
	// iterate's sup-norm exceeds it. Zero means 1e12.
	DivergeAbove float64
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.Beta == 0 {
		o.Beta = 1
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100000
	}
	if o.DivergeAbove == 0 {
		o.DivergeAbove = 1e12
	}
	return o
}

// Result is the outcome of an MDP solve.
type Result struct {
	// Values[s] is the (approximate) value function at state s.
	Values linalg.Vector
	// Policy[s] is the greedy action at state s with respect to Values.
	Policy []int
	// Iterations is the number of sweeps performed.
	Iterations int
	// Residual is the final sup-norm change between iterates.
	Residual float64
}

// ValueIteration solves the dynamic-programming equation (Equation 1 of the
// paper) starting from v = 0:
//
//	V(s) = max_a [ r(s,a) + β Σ_s' p(s'|s,a) V(s') ]
//
// For β = 1 this is exact for negative models (all rewards ≤ 0) by Puterman
// Theorem 7.3.10, the result the paper's Theorem 3.1 leans on; models whose
// optimal value is -∞ in some state are reported as non-convergent.
func ValueIteration(m *MDP, opts SolveOptions) (Result, error) {
	return extremeValueIteration(m, opts, false)
}

// MinValueIteration solves the pessimal variant with min in place of max —
// the MDP core of the BI-POMDP bound of Washington (1997). On undiscounted
// recovery models this typically diverges (the worst action makes no
// progress while accruing cost), which is exactly the failure mode the paper
// demonstrates; divergence is reported via linalg.ErrNoConvergence.
func MinValueIteration(m *MDP, opts SolveOptions) (Result, error) {
	return extremeValueIteration(m, opts, true)
}

func extremeValueIteration(m *MDP, opts SolveOptions, minimize bool) (Result, error) {
	o := opts.withDefaults()
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if o.Beta <= 0 || o.Beta > 1 {
		return Result{}, fmt.Errorf("mdp: discount beta=%v outside (0,1]", o.Beta)
	}
	n, na := m.NumStates(), m.NumActions()
	v := linalg.NewVector(n)
	next := linalg.NewVector(n)
	q := linalg.NewVector(n) // per-action backup scratch
	policy := make([]int, n)
	res := Result{}

	for it := 0; it < o.MaxIter; it++ {
		for s := range next {
			if minimize {
				next[s] = math.Inf(1)
			} else {
				next[s] = math.Inf(-1)
			}
		}
		for a := 0; a < na; a++ {
			m.Trans[a].MulVec(q, v)
			r := m.Reward[a]
			for s := 0; s < n; s++ {
				val := r[s] + o.Beta*q[s]
				if minimize {
					if val < next[s] {
						next[s], policy[s] = val, a
					}
				} else if val > next[s] {
					next[s], policy[s] = val, a
				}
			}
		}
		delta := next.InfNormDiff(v)
		copy(v, next)
		res.Iterations, res.Residual = it+1, delta
		if delta < o.Tol {
			res.Values = v
			res.Policy = policy
			return res, nil
		}
		if v.InfNorm() > o.DivergeAbove {
			return res, fmt.Errorf("mdp: value iterate norm %g exceeded %g after %d sweeps: %w",
				v.InfNorm(), o.DivergeAbove, it+1, linalg.ErrNoConvergence)
		}
	}
	return res, fmt.Errorf("mdp: residual %g > tol %g after %d sweeps: %w",
		res.Residual, o.Tol, o.MaxIter, linalg.ErrNoConvergence)
}

// EvaluatePolicy computes the expected total (β-discounted) reward of a
// stationary deterministic policy by solving the induced Markov chain's
// fixed-point equation.
func EvaluatePolicy(m *MDP, policy []int, opts SolveOptions) (linalg.Vector, error) {
	o := opts.withDefaults()
	p, r, err := m.PolicyChain(policy)
	if err != nil {
		return nil, err
	}
	v, _, err := linalg.SolveFixedPoint(p, o.Beta, r, linalg.FixedPointOptions{
		Tol: o.Tol, MaxIter: o.MaxIter, DivergeAbove: o.DivergeAbove,
	})
	return v, err
}

// QValues computes the one-step backup Q(s,a) = r(s,a) + β Σ p(s'|s,a) v(s')
// for every action, reusing the provided value function. The result is
// indexed [a][s].
func QValues(m *MDP, v linalg.Vector, beta float64) ([]linalg.Vector, error) {
	if len(v) != m.NumStates() {
		return nil, fmt.Errorf("mdp: value length %d, want %d", len(v), m.NumStates())
	}
	out := make([]linalg.Vector, m.NumActions())
	for a := range out {
		q := linalg.NewVector(m.NumStates())
		m.Trans[a].MulVec(q, v)
		q.Scale(beta)
		q.AddScaled(1, m.Reward[a])
		out[a] = q
	}
	return out, nil
}
