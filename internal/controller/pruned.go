package controller

import (
	"fmt"
	"math"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
)

// PrunedEngine is the branch-and-bound variant of the Max-Avg tree engine —
// the extension the paper's conclusion proposes ("generation of upper
// bounds in addition to the lower bounds to facilitate branch and bound
// techniques"). A hyperplane upper bound (typically bounds.QMDP) gives each
// action an optimistic value that is linear in the belief and therefore
// computable without enumerating observation successors:
//
//	opt(a) = π·r(a) + β·(P(a)ᵀπ)·upper
//
// Actions whose optimistic value cannot beat the best exactly-evaluated
// action so far are skipped. Because the upper bound is valid, the engine
// returns the same root value as the exhaustive expansion (up to ties) at a
// fraction of the node count — the deeper the tree, the bigger the saving.
type PrunedEngine struct {
	p     *pomdp.POMDP
	beta  float64
	depth int
	lower pomdp.ValueFn
	upper linalg.Vector
	sc    *pomdp.Scratch
	pred  linalg.Vector

	nodes, pruned int64
}

// NewPrunedEngine builds a branch-and-bound engine. lower evaluates leaf
// beliefs (a valid lower bound); upper is a hyperplane upper bound on the
// value function (e.g. the QMDP bound).
func NewPrunedEngine(p *pomdp.POMDP, depth int, beta float64, lower pomdp.ValueFn, upper linalg.Vector) (*PrunedEngine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if depth < 1 {
		return nil, fmt.Errorf("controller: tree depth %d < 1", depth)
	}
	if beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("controller: beta %v outside (0,1]", beta)
	}
	if lower == nil {
		return nil, fmt.Errorf("controller: nil lower bound")
	}
	if len(upper) != p.NumStates() {
		return nil, fmt.Errorf("controller: upper bound length %d, want %d", len(upper), p.NumStates())
	}
	return &PrunedEngine{
		p:     p,
		beta:  beta,
		depth: depth,
		lower: lower,
		upper: upper.Clone(),
		sc:    pomdp.NewScratch(p),
		pred:  linalg.NewVector(p.NumStates()),
	}, nil
}

// Stats reports how many action nodes were evaluated and how many the
// upper bound pruned since construction.
func (e *PrunedEngine) Stats() (nodes, pruned int64) { return e.nodes, e.pruned }

// Choose expands the tree at π with pruning and returns the maximizing
// action and its exact (lower-bound-leaf) value. QValues contains the exact
// backup for evaluated actions and the optimistic bound for pruned ones
// (marked in Pruned).
func (e *PrunedEngine) Choose(pi pomdp.Belief) (pomdp.BackupResult, []bool, error) {
	if len(pi) != e.p.NumStates() {
		return pomdp.BackupResult{}, nil, fmt.Errorf("controller: belief length %d, want %d", len(pi), e.p.NumStates())
	}
	value, action, q, prunedMask := e.expand(pi, e.depth)
	return pomdp.BackupResult{Value: value, Action: action, QValues: q}, prunedMask, nil
}

// Value evaluates the pruned depth-limited estimate at π.
func (e *PrunedEngine) Value(pi pomdp.Belief) (float64, error) {
	res, _, err := e.Choose(pi)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

func (e *PrunedEngine) expand(pi pomdp.Belief, depth int) (best float64, bestAction int, q []float64, prunedMask []bool) {
	na := e.p.NumActions()
	q = make([]float64, na)
	prunedMask = make([]bool, na)

	// Optimistic value per action, linear in the pushed-forward belief.
	type cand struct {
		a   int
		opt float64
	}
	cands := make([]cand, na)
	for a := 0; a < na; a++ {
		e.p.Predict(e.pred, pi, a)
		opt := e.p.ExpectedReward(pi, a) + e.beta*e.pred.Dot(e.upper)
		cands[a] = cand{a: a, opt: opt}
		q[a] = opt
	}
	// Sort by optimism, descending (insertion sort: na is small).
	for i := 1; i < na; i++ {
		for j := i; j > 0 && cands[j].opt > cands[j-1].opt; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}

	best, bestAction = math.Inf(-1), -1
	for _, c := range cands {
		if c.opt <= best+1e-12 && bestAction >= 0 {
			// No action with a lower optimistic value can beat the best
			// exact value found; everything from here on is pruned.
			e.pruned++
			prunedMask[c.a] = true
			continue
		}
		e.nodes++
		exact := e.p.ExpectedReward(pi, c.a)
		for _, succ := range e.p.Successors(e.sc, pi, c.a) {
			var leafVal float64
			if depth == 1 {
				leafVal = e.lower.Value(succ.Belief)
			} else {
				leafVal, _, _, _ = e.expand(succ.Belief, depth-1)
			}
			exact += e.beta * succ.Prob * leafVal
		}
		q[c.a] = exact
		if exact > best {
			best, bestAction = exact, c.a
		}
	}
	return best, bestAction, q, prunedMask
}
