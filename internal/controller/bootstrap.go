package controller

import (
	"errors"
	"fmt"

	"bpomdp/internal/bounds"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// BootstrapVariant selects how the bootstrapping phase generates the
// initial belief of each simulated recovery episode (Section 5, Figure 5).
type BootstrapVariant int

const (
	// VariantRandom injects a random fault, samples a monitor output for
	// it, and starts from the posterior belief given that output — the
	// "Random" series of Figure 5.
	VariantRandom BootstrapVariant = iota + 1
	// VariantAverage starts every episode from the belief in which all
	// faults are equally likely — the "Average" series of Figure 5.
	VariantAverage
)

// String implements fmt.Stringer.
func (v BootstrapVariant) String() string {
	switch v {
	case VariantRandom:
		return "random"
	case VariantAverage:
		return "average"
	default:
		return fmt.Sprintf("BootstrapVariant(%d)", int(v))
	}
}

// BootstrapConfig configures the bootstrapping phase.
type BootstrapConfig struct {
	// Variant is the initial-belief generation scheme.
	Variant BootstrapVariant
	// Depth is the Max-Avg expansion depth used for action selection during
	// bootstrap episodes.
	Depth int
	// Beta is the discount factor; zero means 1.
	Beta float64
	// FaultStates are the states faults are injected from (sampled
	// uniformly each episode).
	FaultStates []int
	// NullStates is Sφ.
	NullStates []int
	// TerminateAction is a_T's index, or -1 for recovery-notification
	// models.
	TerminateAction int
	// InitialObservationAction is the action whose observation function is
	// used to sample the episode's first monitor output (the passive
	// observe action in recovery models). Only used by VariantRandom.
	InitialObservationAction int
	// MaxSteps caps each simulated episode; zero means 100.
	MaxSteps int
}

// IterationStats reports one bootstrap episode, providing the two series of
// Figure 5: the bound value at the uniform belief (5a, negated it is the
// upper bound on cost) and the number of bound vectors (5b).
type IterationStats struct {
	// Iteration counts episodes from 1.
	Iteration int
	// BoundAtUniform is V_B⁻ evaluated at the belief {1/|S|} over the
	// original states (s_T excluded).
	BoundAtUniform float64
	// Vectors is the number of hyperplanes in the bound set.
	Vectors int
	// Steps is the number of decision steps the episode took.
	Steps int
}

// Bootstrapper improves a bound set by simulating recovery episodes: faults
// are injected, monitor outputs are sampled from the observation function,
// and the bound is incrementally updated at every belief the controller
// visits ("bootstrapping phase", Section 4.1).
type Bootstrapper struct {
	p       *pomdp.POMDP
	set     *bounds.Set
	updater *bounds.Updater
	engine  *Engine
	cfg     BootstrapConfig
	stream  *rng.Stream
	sc      *pomdp.Scratch
	uniform pomdp.Belief
	iter    int
}

// NewBootstrapper builds a bootstrapper improving set in place on the
// (already transformed) model p.
func NewBootstrapper(p *pomdp.POMDP, set *bounds.Set, cfg BootstrapConfig, stream *rng.Stream) (*Bootstrapper, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Variant != VariantRandom && cfg.Variant != VariantAverage {
		return nil, fmt.Errorf("controller: unknown bootstrap variant %v", cfg.Variant)
	}
	if cfg.Depth == 0 {
		cfg.Depth = 1
	}
	if cfg.Beta == 0 {
		cfg.Beta = 1
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 100
	}
	if len(cfg.FaultStates) == 0 {
		return nil, fmt.Errorf("controller: bootstrap needs FaultStates to inject")
	}
	n := p.NumStates()
	for _, s := range append(append([]int(nil), cfg.FaultStates...), cfg.NullStates...) {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("controller: state %d out of range [0,%d)", s, n)
		}
	}
	if cfg.TerminateAction >= p.NumActions() {
		return nil, fmt.Errorf("controller: terminate action %d out of range", cfg.TerminateAction)
	}
	if cfg.InitialObservationAction < 0 || cfg.InitialObservationAction >= p.NumActions() {
		return nil, fmt.Errorf("controller: initial observation action %d out of range", cfg.InitialObservationAction)
	}
	if stream == nil {
		return nil, fmt.Errorf("controller: nil rng stream")
	}
	updater, err := bounds.NewUpdater(p, set, bounds.Options{Beta: cfg.Beta})
	if err != nil {
		return nil, err
	}
	engine, err := NewEngine(p, cfg.Depth, cfg.Beta, set.AsValueFn())
	if err != nil {
		return nil, err
	}
	// The reference belief of Figure 5(a): uniform over the original
	// states, excluding the synthetic s_T when present.
	var uniform pomdp.Belief
	if cfg.TerminateAction >= 0 {
		orig := make([]int, 0, n-1)
		for s := 0; s < n; s++ {
			if p.M.StateName(s) != pomdp.TerminatedStateName {
				orig = append(orig, s)
			}
		}
		uniform, err = pomdp.UniformOver(n, orig)
		if err != nil {
			return nil, err
		}
	} else {
		uniform = pomdp.UniformBelief(n)
	}
	return &Bootstrapper{
		p:       p,
		set:     set,
		updater: updater,
		engine:  engine,
		cfg:     cfg,
		stream:  stream,
		sc:      pomdp.NewScratch(p),
		uniform: uniform,
	}, nil
}

// Set returns the bound set being improved.
func (b *Bootstrapper) Set() *bounds.Set { return b.set }

// ReferenceBelief returns the belief at which BoundAtUniform is evaluated.
func (b *Bootstrapper) ReferenceBelief() pomdp.Belief { return b.uniform.Clone() }

// Run performs n bootstrap episodes and returns their per-iteration stats.
func (b *Bootstrapper) Run(n int) ([]IterationStats, error) {
	out := make([]IterationStats, 0, n)
	for i := 0; i < n; i++ {
		st, err := b.Iterate()
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}

// Iterate runs one simulated recovery episode, updating the bound at every
// visited belief, and reports the Figure 5 series values afterwards.
func (b *Bootstrapper) Iterate() (IterationStats, error) {
	b.iter++
	episode := b.stream.SplitN("bootstrap-episode", b.iter)

	trueState := b.cfg.FaultStates[episode.IntN(len(b.cfg.FaultStates))]
	belief := b.uniform.Clone()
	if b.cfg.Variant == VariantRandom {
		aInit := b.cfg.InitialObservationAction
		// Sample the monitor output the injected fault would produce and
		// condition the uniform prior on it.
		obs, err := b.sampleObservation(episode, trueState, aInit)
		if err != nil {
			return IterationStats{}, err
		}
		if next, err := b.p.Update(b.sc, belief, aInit, obs); err == nil {
			belief = next
		} else if !errors.Is(err, pomdp.ErrImpossibleObservation) {
			return IterationStats{}, err
		}
	}

	steps := 0
	for ; steps < b.cfg.MaxSteps; steps++ {
		if _, err := b.updater.UpdateAt(belief); err != nil {
			return IterationStats{}, err
		}
		res, err := b.engine.Choose(belief)
		if err != nil {
			return IterationStats{}, err
		}
		if b.cfg.TerminateAction >= 0 && res.Action == b.cfg.TerminateAction {
			break
		}
		if b.cfg.TerminateAction < 0 && belief.Mass(b.cfg.NullStates) >= 1-1e-9 {
			break
		}
		next, err := b.sampleTransition(episode, trueState, res.Action)
		if err != nil {
			return IterationStats{}, err
		}
		obs, err := b.sampleObservation(episode, next, res.Action)
		if err != nil {
			return IterationStats{}, err
		}
		nb, err := b.p.Update(b.sc, belief, res.Action, obs)
		if err != nil {
			return IterationStats{}, err
		}
		trueState, belief = next, nb
	}
	return IterationStats{
		Iteration:      b.iter,
		BoundAtUniform: b.set.Value(b.uniform),
		Vectors:        b.set.Size(),
		Steps:          steps,
	}, nil
}

func (b *Bootstrapper) sampleTransition(stream *rng.Stream, s, a int) (int, error) {
	weights := make([]float64, b.p.NumStates())
	b.p.M.Trans[a].Row(s, func(c int, v float64) { weights[c] = v })
	next, err := stream.Categorical(weights)
	if err != nil {
		return 0, fmt.Errorf("controller: sample transition from %s under %s: %w",
			b.p.M.StateName(s), b.p.M.ActionName(a), err)
	}
	return next, nil
}

func (b *Bootstrapper) sampleObservation(stream *rng.Stream, s, a int) (int, error) {
	weights := make([]float64, b.p.NumObservations())
	b.p.Obs[a].Row(s, func(o int, v float64) { weights[o] = v })
	obs, err := stream.Categorical(weights)
	if err != nil {
		return 0, fmt.Errorf("controller: sample observation in %s under %s: %w",
			b.p.M.StateName(s), b.p.M.ActionName(a), err)
	}
	return obs, nil
}
