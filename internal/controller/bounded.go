package controller

import (
	"fmt"

	"bpomdp/internal/bounds"
	"bpomdp/internal/pomdp"
)

// BoundedConfig configures a bounded controller.
type BoundedConfig struct {
	// Depth is the Max-Avg tree expansion depth (≥ 1). The paper's
	// evaluation uses depth 1 for the bounded controller.
	Depth int
	// Beta is the discount factor; zero means 1 (undiscounted).
	Beta float64
	// TerminateAction is the index of a_T in the model, or -1 when the
	// system has recovery notification and the model has no terminate
	// action.
	TerminateAction int
	// NullStates is Sφ. With recovery notification (TerminateAction < 0)
	// the controller terminates once the belief is certain the system is in
	// Sφ; it is also used for diagnostics.
	NullStates []int
	// ImproveOnline, when true, runs one incremental bound update at every
	// belief the controller visits during real recovery ("those
	// belief-states that are naturally generated during the course of
	// system recovery", §4.1).
	ImproveOnline bool
	// CheckConsistency, when true, verifies Property 1(b) (V_B ≤ L_p V_B)
	// at every visited belief and fails loudly on violation. Intended for
	// tests and audits; adds one extra backup per step.
	CheckConsistency bool
}

// Bounded is the paper's bounded recovery controller: a finite-depth
// Max-Avg expansion with a lower-bound hyperplane set at the leaves. With
// Property 1's preconditions (no free actions; V_B ≤ L_p V_B) it terminates
// with probability 1 and its expected cost is bounded by the bound itself.
type Bounded struct {
	beliefTracker
	cfg     BoundedConfig
	engine  *Engine
	set     *bounds.Set
	updater *bounds.Updater
	nullSet []int
}

var _ Controller = (*Bounded)(nil)

// NewBounded builds a bounded controller over the (already transformed)
// model p using the hyperplane set as the leaf bound. The set is used (and,
// with ImproveOnline, refined) in place — share it with a Bootstrapper to
// reuse bootstrap improvements.
func NewBounded(p *pomdp.POMDP, set *bounds.Set, cfg BoundedConfig) (*Bounded, error) {
	if cfg.Depth == 0 {
		cfg.Depth = 1
	}
	if cfg.Beta == 0 {
		cfg.Beta = 1
	}
	if set == nil || set.Size() == 0 {
		return nil, fmt.Errorf("controller: bounded controller needs a non-empty bound set (compute the RA-Bound first)")
	}
	if set.NumStates() != p.NumStates() {
		return nil, fmt.Errorf("controller: bound set over %d states, model has %d", set.NumStates(), p.NumStates())
	}
	if cfg.TerminateAction >= p.NumActions() {
		return nil, fmt.Errorf("controller: terminate action %d out of range", cfg.TerminateAction)
	}
	if cfg.TerminateAction < 0 && len(cfg.NullStates) == 0 {
		return nil, fmt.Errorf("controller: recovery-notification regime needs NullStates to detect completion")
	}
	engine, err := NewEngine(p, cfg.Depth, cfg.Beta, set.AsValueFn())
	if err != nil {
		return nil, err
	}
	b := &Bounded{
		beliefTracker: newBeliefTracker(p),
		cfg:           cfg,
		engine:        engine,
		set:           set,
		nullSet:       pomdp.SortedStates(cfg.NullStates),
	}
	if cfg.ImproveOnline {
		u, err := bounds.NewUpdater(p, set, bounds.Options{Beta: cfg.Beta})
		if err != nil {
			return nil, err
		}
		b.updater = u
	}
	return b, nil
}

// Name implements Controller.
func (b *Bounded) Name() string {
	return fmt.Sprintf("bounded(depth=%d)", b.cfg.Depth)
}

// Set returns the hyperplane set used at the leaves.
func (b *Bounded) Set() *bounds.Set { return b.set }

// Decide implements Controller. It expands the Max-Avg tree at the current
// belief and returns the maximizing action; choosing a_T (or, with recovery
// notification, certainty of Sφ) terminates the episode.
func (b *Bounded) Decide() (Decision, error) {
	if b.belief == nil {
		return Decision{}, ErrNotReset
	}
	if b.cfg.CheckConsistency {
		rep, err := bounds.CheckConsistency(b.p, b.sc, b.set, b.belief, bounds.Options{Beta: b.cfg.Beta})
		if err != nil {
			return Decision{}, err
		}
		if !rep.OK {
			return Decision{}, fmt.Errorf("controller: Property 1(b) violated at belief %v: V_B=%v > L_pV_B=%v",
				b.belief, rep.Bound, rep.Backup)
		}
	}
	if b.updater != nil {
		if _, err := b.updater.UpdateAt(b.belief); err != nil {
			return Decision{}, fmt.Errorf("controller: online bound update: %w", err)
		}
	}
	// Recovery-notification regime: stop as soon as the belief certifies Sφ.
	const certainty = 1 - 1e-9
	if b.cfg.TerminateAction < 0 && b.belief.Mass(b.nullSet) >= certainty {
		return Decision{Terminate: true, Value: 0}, nil
	}
	res, err := b.engine.Choose(b.belief)
	if err != nil {
		return Decision{}, err
	}
	d := Decision{Action: res.Action, Value: res.Value}
	// Tie-break toward a_T: Property 1(a) demands no free actions outside
	// s_T, but real models often have a zero-cost passive action at the Sφ
	// vertex (monitoring a healthy system drops no requests). At that vertex
	// Q(a_T) ties the maximum and a plain argmax can loop on the free action
	// forever; terminating on a tie costs nothing by the controller's own
	// estimate and restores the termination guarantee.
	if b.cfg.TerminateAction >= 0 &&
		(res.Action == b.cfg.TerminateAction || res.QValues[b.cfg.TerminateAction] >= res.Value-1e-9) {
		d.Action = b.cfg.TerminateAction
		d.Terminate = true
	}
	return d, nil
}
