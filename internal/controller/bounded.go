package controller

import (
	"fmt"

	"bpomdp/internal/bounds"
	"bpomdp/internal/pomdp"
)

// BoundedConfig configures a bounded controller.
type BoundedConfig struct {
	// Depth is the Max-Avg tree expansion depth (≥ 1). The paper's
	// evaluation uses depth 1 for the bounded controller.
	Depth int
	// Beta is the discount factor; zero means 1 (undiscounted).
	Beta float64
	// TerminateAction is the index of a_T in the model, or -1 when the
	// system has recovery notification and the model has no terminate
	// action.
	TerminateAction int
	// NullStates is Sφ. With recovery notification (TerminateAction < 0)
	// the controller terminates once the belief is certain the system is in
	// Sφ; it is also used for diagnostics.
	NullStates []int
	// ImproveOnline, when true, runs one incremental bound update at every
	// belief the controller visits during real recovery ("those
	// belief-states that are naturally generated during the course of
	// system recovery", §4.1).
	ImproveOnline bool
	// CheckConsistency, when true, verifies Property 1(b) (V_B ≤ L_p V_B)
	// at every visited belief and fails loudly on violation. Intended for
	// tests and audits; adds one extra backup per step.
	CheckConsistency bool
	// CollectStats, when true, makes the controller record DecisionStats for
	// every decision (exposed through the StatsSource / BatchStatsSource
	// interfaces). Off by default: the stats path costs one extra bound
	// evaluation (Set.Peek) plus an entropy pass per decision, and the
	// controller guarantees the decision path is unchanged when it is off.
	CollectStats bool
}

// Bounded is the paper's bounded recovery controller: a finite-depth
// Max-Avg expansion with a lower-bound hyperplane set at the leaves. With
// Property 1's preconditions (no free actions; V_B ≤ L_p V_B) it terminates
// with probability 1 and its expected cost is bounded by the bound itself.
type Bounded struct {
	beliefTracker
	cfg     BoundedConfig
	engine  *Engine
	set     *bounds.Set
	updater *bounds.Updater
	nullSet []int

	// DecideBatch scratch, reused across calls.
	batchIdx []int
	batchPis []pomdp.Belief
	batchRes []pomdp.BackupResult

	// Stats scratch, populated only with cfg.CollectStats.
	lastStats   DecisionStats
	statsQ      []float64       // QValues buffer behind lastStats
	batchStats  []DecisionStats // per-belief stats of the last DecideBatch
	batchStatsQ []float64       // flat QValues slab behind batchStats
}

var (
	_ Controller       = (*Bounded)(nil)
	_ BatchDecider     = (*Bounded)(nil)
	_ TierSource       = (*Bounded)(nil)
	_ BatchStatsSource = (*Bounded)(nil)
)

// NewBounded builds a bounded controller over the (already transformed)
// model p using the hyperplane set as the leaf bound. The set is used (and,
// with ImproveOnline, refined) in place — share it with a Bootstrapper to
// reuse bootstrap improvements.
func NewBounded(p *pomdp.POMDP, set *bounds.Set, cfg BoundedConfig) (*Bounded, error) {
	if cfg.Depth == 0 {
		cfg.Depth = 1
	}
	if cfg.Beta == 0 {
		cfg.Beta = 1
	}
	if set == nil || set.Size() == 0 {
		return nil, fmt.Errorf("controller: bounded controller needs a non-empty bound set (compute the RA-Bound first)")
	}
	if set.NumStates() != p.NumStates() {
		return nil, fmt.Errorf("controller: bound set over %d states, model has %d", set.NumStates(), p.NumStates())
	}
	if cfg.TerminateAction >= p.NumActions() {
		return nil, fmt.Errorf("controller: terminate action %d out of range", cfg.TerminateAction)
	}
	if cfg.TerminateAction < 0 && len(cfg.NullStates) == 0 {
		return nil, fmt.Errorf("controller: recovery-notification regime needs NullStates to detect completion")
	}
	// The set is passed directly (it implements pomdp.BatchValueFn), so the
	// engine's batched expansion can evaluate whole leaf frontiers with one
	// pass over the hyperplane slab.
	engine, err := NewEngine(p, cfg.Depth, cfg.Beta, set)
	if err != nil {
		return nil, err
	}
	b := &Bounded{
		beliefTracker: newBeliefTracker(p),
		cfg:           cfg,
		engine:        engine,
		set:           set,
		nullSet:       pomdp.SortedStates(cfg.NullStates),
	}
	if cfg.ImproveOnline {
		u, err := bounds.NewUpdater(p, set, bounds.Options{Beta: cfg.Beta})
		if err != nil {
			return nil, err
		}
		b.updater = u
	}
	return b, nil
}

// Name implements Controller.
func (b *Bounded) Name() string {
	return fmt.Sprintf("bounded(depth=%d)", b.cfg.Depth)
}

// Set returns the hyperplane set used at the leaves.
func (b *Bounded) Set() *bounds.Set { return b.set }

// Model returns the (transformed) POMDP the controller decides over. The
// campaign engine's batched stepping mode uses it to track per-episode
// beliefs over the same state space the decider expects — which is larger
// than the simulated base model whenever the Section 3.1 transforms appended
// termination states.
func (b *Bounded) Model() *pomdp.POMDP { return b.p }

// Decide implements Controller. It expands the Max-Avg tree at the current
// belief and returns the maximizing action; choosing a_T (or, with recovery
// notification, certainty of Sφ) terminates the episode.
func (b *Bounded) Decide() (Decision, error) {
	if b.belief == nil {
		return Decision{}, ErrNotReset
	}
	return b.decideAt(b.belief)
}

// certainty is the belief mass at which the recovery-notification regime
// considers the system certainly recovered.
const certainty = 1 - 1e-9

// decideAt is Decide for an explicit belief (which need not be the tracked
// one — DecideBatch and the batch server endpoint decide for foreign
// beliefs).
func (b *Bounded) decideAt(pi pomdp.Belief) (Decision, error) {
	if b.cfg.CheckConsistency {
		rep, err := bounds.CheckConsistency(b.p, b.sc, b.set, pi, bounds.Options{Beta: b.cfg.Beta})
		if err != nil {
			return Decision{}, err
		}
		if !rep.OK {
			return Decision{}, fmt.Errorf("controller: Property 1(b) violated at belief %v: V_B=%v > L_pV_B=%v",
				pi, rep.Bound, rep.Backup)
		}
	}
	if b.updater != nil {
		if _, err := b.updater.UpdateAt(pi); err != nil {
			return Decision{}, fmt.Errorf("controller: online bound update: %w", err)
		}
	}
	// Recovery-notification regime: stop as soon as the belief certifies Sφ.
	if b.cfg.TerminateAction < 0 && pi.Mass(b.nullSet) >= certainty {
		d := Decision{Terminate: true, Value: 0}
		if b.cfg.CollectStats {
			b.lastStats = b.statsFor(pi, d, nil)
		}
		return d, nil
	}
	var before EngineCounters
	if b.cfg.CollectStats {
		before = b.engine.Counters()
	}
	res, err := b.engine.Choose(pi)
	if err != nil {
		return Decision{}, err
	}
	d := b.toDecision(&res)
	if b.cfg.CollectStats {
		after := b.engine.Counters()
		b.statsQ = append(b.statsQ[:0], res.QValues...)
		st := b.statsFor(pi, d, b.statsQ)
		st.TreeNodes = after.Nodes - before.Nodes
		st.LeafEvals = after.LeafEvals - before.LeafEvals
		st.SlabPasses = after.SlabPasses - before.SlabPasses
		b.lastStats = st
	}
	return d, nil
}

// statsFor builds the engine-counter-independent part of a DecisionStats:
// the bound explanation (LeafBound via Set.Peek so reading it cannot perturb
// least-used eviction, and the Property 1(b) slack BoundGap), the belief
// entropy, and the bound-set snapshot. q, when non-nil, is aliased directly.
func (b *Bounded) statsFor(pi pomdp.Belief, d Decision, q []float64) DecisionStats {
	leaf := b.set.Peek(pi)
	st := DecisionStats{
		Action:        d.Action,
		Terminate:     d.Terminate,
		Value:         d.Value,
		QValues:       q,
		LeafBound:     leaf,
		BoundGap:      d.Value - leaf,
		BeliefEntropy: pi.Entropy(),
		SetSize:       b.set.Size(),
		SetEvictions:  b.set.Evictions(),
		Tier:          TierTree,
	}
	if d.Terminate && b.cfg.TerminateAction < 0 {
		// Certainty termination has no model action behind it.
		st.Action = -1
	}
	return st
}

// StatsEnabled implements StatsSource.
func (b *Bounded) StatsEnabled() bool { return b.cfg.CollectStats }

// LastTier implements TierSource: every Bounded decision is a Max-Avg tree
// expansion.
func (b *Bounded) LastTier() string { return TierTree }

// DecisionStats implements StatsSource: the stats of the most recent Decide
// (or of the last belief decided by a sequential-fallback DecideBatch).
// Valid until the next decision call; only meaningful with CollectStats.
func (b *Bounded) DecisionStats() DecisionStats { return b.lastStats }

// BatchDecisionStats implements BatchStatsSource: per-belief stats of the
// most recent DecideBatch, indexed like its pis argument. Valid until the
// next decision call; only meaningful with CollectStats.
func (b *Bounded) BatchDecisionStats() []DecisionStats { return b.batchStats }

// toDecision converts a root backup into a Decision, applying the a_T
// tie-break shared with the FSC compiler.
func (b *Bounded) toDecision(res *pomdp.BackupResult) Decision {
	return decisionFromBackup(res, b.cfg.TerminateAction)
}

// decisionFromBackup converts a root backup into a Decision, applying the
// a_T tie-break: Property 1(a) demands no free actions outside s_T, but real
// models often have a zero-cost passive action at the Sφ vertex (monitoring
// a healthy system drops no requests). At that vertex Q(a_T) ties the
// maximum and a plain argmax can loop on the free action forever;
// terminating on a tie costs nothing by the controller's own estimate and
// restores the termination guarantee. It is shared by the online controller
// and the FSC compiler so compiled nodes replay exactly the decision the
// tree would make.
func decisionFromBackup(res *pomdp.BackupResult, terminateAction int) Decision {
	d := Decision{Action: res.Action, Value: res.Value}
	if terminateAction >= 0 &&
		(res.Action == terminateAction || res.QValues[terminateAction] >= res.Value-1e-9) {
		d.Action = terminateAction
		d.Terminate = true
	}
	return d
}

// DecideBatch implements BatchDecider: it decides for every belief in pis
// independently of the tracked episode belief, writing Decision j into
// out[j]. Certainty-terminated beliefs (recovery notification) are answered
// directly; the rest share one batched tree expansion, with results
// bit-identical to per-belief Decide calls.
//
// With ImproveOnline or CheckConsistency configured the controller falls
// back to sequential per-belief decisions, because both mutate or audit the
// shared bound set between decisions and a batched expansion would observe
// a different set than the sequential order does.
func (b *Bounded) DecideBatch(pis []pomdp.Belief, out []Decision) error {
	if len(out) < len(pis) {
		return fmt.Errorf("controller: batch decision buffer length %d < %d beliefs", len(out), len(pis))
	}
	collect := b.cfg.CollectStats
	if collect {
		b.growBatchStats(len(pis))
	}
	if b.updater != nil || b.cfg.CheckConsistency {
		for j, pi := range pis {
			d, err := b.decideAt(pi)
			if err != nil {
				return fmt.Errorf("controller: batch belief %d: %w", j, err)
			}
			out[j] = d
			if collect {
				st := b.lastStats
				st.QValues = b.retainQ(st.QValues)
				b.batchStats[j] = st
			}
		}
		return nil
	}
	n := b.p.NumStates()
	b.batchIdx = b.batchIdx[:0]
	b.batchPis = b.batchPis[:0]
	var before EngineCounters
	if collect {
		before = b.engine.Counters()
	}
	for j, pi := range pis {
		if len(pi) != n {
			return fmt.Errorf("controller: batch belief %d length %d, want %d", j, len(pi), n)
		}
		if b.cfg.TerminateAction < 0 && pi.Mass(b.nullSet) >= certainty {
			out[j] = Decision{Terminate: true, Value: 0}
			if collect {
				b.batchStats[j] = b.statsFor(pi, out[j], nil)
			}
			continue
		}
		b.batchIdx = append(b.batchIdx, j)
		b.batchPis = append(b.batchPis, pi)
	}
	if len(b.batchIdx) == 0 {
		return nil
	}
	// Grow the result buffer while keeping the QValues slices already
	// allocated in earlier calls, so the steady state allocates nothing.
	if cap(b.batchRes) < len(b.batchIdx) {
		grown := make([]pomdp.BackupResult, len(b.batchIdx))
		copy(grown, b.batchRes[:cap(b.batchRes)])
		b.batchRes = grown
	}
	b.batchRes = b.batchRes[:len(b.batchIdx)]
	if err := b.engine.ChooseBatch(b.batchPis, b.batchRes); err != nil {
		return err
	}
	for k, j := range b.batchIdx {
		out[j] = b.toDecision(&b.batchRes[k])
	}
	if collect {
		// One shared expansion served the whole batch: attribute the engine-
		// counter deltas evenly across its members (remainder to the first),
		// so summing the per-decision stats reproduces the true totals.
		after := b.engine.Counters()
		m := uint64(len(b.batchIdx))
		dn, dl, ds := after.Nodes-before.Nodes, after.LeafEvals-before.LeafEvals, after.SlabPasses-before.SlabPasses
		for k, j := range b.batchIdx {
			st := b.statsFor(b.batchPis[k], out[j], b.batchRes[k].QValues)
			st.TreeNodes = dn / m
			st.LeafEvals = dl / m
			st.SlabPasses = ds / m
			if k == 0 {
				st.TreeNodes += dn % m
				st.LeafEvals += dl % m
				st.SlabPasses += ds % m
			}
			b.batchStats[j] = st
		}
	}
	return nil
}

// growBatchStats sizes the per-belief stats buffer and its QValues slab for
// a DecideBatch over m beliefs. The slab is sized upfront so mid-loop
// appends cannot reallocate it out from under earlier entries' aliases.
func (b *Bounded) growBatchStats(m int) {
	if cap(b.batchStats) < m {
		b.batchStats = make([]DecisionStats, m)
	}
	b.batchStats = b.batchStats[:m]
	need := m * b.p.NumActions()
	if cap(b.batchStatsQ) < need {
		b.batchStatsQ = make([]float64, 0, need)
	}
	b.batchStatsQ = b.batchStatsQ[:0]
}

// retainQ copies q into the batch QValues slab and returns the stable view.
func (b *Bounded) retainQ(q []float64) []float64 {
	if q == nil {
		return nil
	}
	start := len(b.batchStatsQ)
	b.batchStatsQ = append(b.batchStatsQ, q...)
	return b.batchStatsQ[start:len(b.batchStatsQ):len(b.batchStatsQ)]
}
