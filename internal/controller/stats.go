package controller

// Decider tiers, recorded in DecisionStats.Tier and carried through
// decision traces so every record attributes the serving tier.
const (
	// TierTree marks a decision produced by the Max-Avg tree expansion
	// (Bounded), whether invoked directly or as an FSC fallback.
	TierTree = "tree"
	// TierFSC marks a decision served from a compiled finite-state
	// controller node table without expanding the tree.
	TierFSC = "fsc"
)

// TierSource reports which tier served a controller's most recent Decide.
// Unlike StatsSource it is always live — recording the tier is one constant
// store per decision — so per-tier latency metrics and span labels work
// even when full stats collection is off. Meaningful only from the single
// goroutine driving the controller, like Decide itself.
type TierSource interface {
	LastTier() string
}

// EngineCounters are the Engine's monotone work counters. The counters are
// plain (non-atomic) fields bumped unconditionally on the expansion paths —
// an increment per Backup is noise next to the backup itself — and are read
// by differencing snapshots around a decision, so they are meaningful only
// from the single goroutine driving the engine.
type EngineCounters struct {
	// Nodes counts belief nodes expanded (Backup applications).
	Nodes uint64
	// LeafEvals counts leaf-bound evaluations at the tree frontier.
	LeafEvals uint64
	// SlabPasses counts batched ValueBatch passes over the hyperplane slab.
	SlabPasses uint64
}

// DecisionStats explains one recovery decision: the chosen action and its
// bound-backed value, the per-action Q-values behind the argmax, the gap
// between the tree-backed value and the stored hyperplane bound (Property
// 1(b)'s slack — zero means the stored bound is already tight at this
// belief, so deeper expansion bought nothing), the belief entropy at
// decision time, and the work the Max-Avg expansion performed.
//
// QValues, when present, aliases a buffer owned by the controller that is
// reused by the next Decide/DecideBatch call; copy it to retain it.
type DecisionStats struct {
	Action    int
	Terminate bool
	Value     float64
	QValues   []float64

	// LeafBound is V_B⁻(π) at the decision belief (via Set.Peek, so reading
	// it does not perturb least-used eviction); BoundGap = Value − LeafBound.
	LeafBound float64
	BoundGap  float64
	// BeliefEntropy is the Shannon entropy (nats) of the decision belief.
	BeliefEntropy float64

	// TreeNodes, LeafEvals and SlabPasses are the engine-counter deltas
	// attributable to this decision. For a batched decision the batch's
	// totals are attributed evenly across its expanded members (remainder to
	// the first), so summing over the batch is exact.
	TreeNodes  uint64
	LeafEvals  uint64
	SlabPasses uint64

	// SetSize and SetEvictions snapshot the bound set at decision time.
	SetSize      int
	SetEvictions uint64

	// Tier identifies which decider tier served the decision (TierTree or
	// TierFSC). Every stats-producing path sets it, so trace records never
	// silently drop tier attribution — in particular the FSC fallback path
	// reports TierTree with the tree's own bound gap.
	Tier string
}

// StatsSource is implemented by controllers that can explain their
// decisions. StatsEnabled reports whether collection is configured —
// callers (campaign runners, trace recorders) check it once per episode and
// skip the stats path entirely when it is off, which is what keeps
// instrumented builds free on the hot path. DecisionStats returns the stats
// of the most recent Decide; it is only meaningful when StatsEnabled.
type StatsSource interface {
	StatsEnabled() bool
	DecisionStats() DecisionStats
}

// BatchStatsSource extends StatsSource for batch deciders:
// BatchDecisionStats returns per-belief stats of the most recent
// DecideBatch, indexed like its pis/out arguments and valid until the next
// decision call.
type BatchStatsSource interface {
	StatsSource
	BatchDecisionStats() []DecisionStats
}
