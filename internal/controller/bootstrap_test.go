package controller

import (
	"testing"

	"bpomdp/internal/bounds"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

func newBootstrapper(t *testing.T, f *fixture, variant BootstrapVariant, seed uint64) *Bootstrapper {
	t.Helper()
	set, err := bounds.RASet(f.term, bounds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBootstrapper(f.term, set, BootstrapConfig{
		Variant:                  variant,
		Depth:                    1,
		FaultStates:              []int{1, 2},
		NullStates:               []int{0},
		TerminateAction:          f.idx.Action,
		InitialObservationAction: 2, // observe
	}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBootstrapperValidation(t *testing.T) {
	f := newFixture(t)
	set, err := bounds.RASet(f.term, bounds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := BootstrapConfig{
		Variant: VariantRandom, FaultStates: []int{1, 2}, NullStates: []int{0},
		TerminateAction: f.idx.Action, InitialObservationAction: 2,
	}
	bad := base
	bad.Variant = 0
	if _, err := NewBootstrapper(f.term, set, bad, rng.New(1)); err == nil {
		t.Error("unknown variant accepted")
	}
	bad = base
	bad.FaultStates = nil
	if _, err := NewBootstrapper(f.term, set, bad, rng.New(1)); err == nil {
		t.Error("empty fault states accepted")
	}
	bad = base
	bad.FaultStates = []int{99}
	if _, err := NewBootstrapper(f.term, set, bad, rng.New(1)); err == nil {
		t.Error("out-of-range fault state accepted")
	}
	bad = base
	bad.InitialObservationAction = 99
	if _, err := NewBootstrapper(f.term, set, bad, rng.New(1)); err == nil {
		t.Error("out-of-range initial observation action accepted")
	}
	if _, err := NewBootstrapper(f.term, set, base, nil); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestBootstrapImprovesBoundMonotonically(t *testing.T) {
	for _, variant := range []BootstrapVariant{VariantRandom, VariantAverage} {
		t.Run(variant.String(), func(t *testing.T) {
			f := newFixture(t)
			b := newBootstrapper(t, f, variant, 42)
			stats, err := b.Run(20)
			if err != nil {
				t.Fatal(err)
			}
			if len(stats) != 20 {
				t.Fatalf("got %d iterations", len(stats))
			}
			prev := -1e18
			totalSteps := 0
			for i, st := range stats {
				if st.Iteration != i+1 {
					t.Errorf("iteration numbering: %d at index %d", st.Iteration, i)
				}
				if st.BoundAtUniform < prev-1e-9 {
					t.Errorf("iteration %d: bound decreased %v -> %v", st.Iteration, prev, st.BoundAtUniform)
				}
				prev = st.BoundAtUniform
				totalSteps += st.Steps
				// Each update step adds at most one hyperplane (linear
				// growth at worst, as in Figure 5(b)); an extra update may
				// run on the step the terminate decision was made.
				if st.Vectors < 1 || st.Vectors > 1+totalSteps+st.Iteration {
					t.Errorf("iteration %d: %d vectors for %d cumulative steps", st.Iteration, st.Vectors, totalSteps)
				}
			}
			// Figure 5(a): the bound must actually tighten vs the plain RA
			// value.
			if !(stats[len(stats)-1].BoundAtUniform > stats[0].BoundAtUniform-1e-12) {
				t.Errorf("no improvement: first %v last %v", stats[0].BoundAtUniform, stats[len(stats)-1].BoundAtUniform)
			}
		})
	}
}

func TestBootstrapVectorsGrowAtMostLinearly(t *testing.T) {
	// Each update adds at most one hyperplane, so after k episodes of at
	// most MaxSteps updates the set holds at most 1 + k·MaxSteps planes;
	// per-iteration growth must be bounded by the steps taken.
	f := newFixture(t)
	b := newBootstrapper(t, f, VariantRandom, 7)
	prevVectors := b.Set().Size()
	for i := 0; i < 10; i++ {
		st, err := b.Iterate()
		if err != nil {
			t.Fatal(err)
		}
		if growth := st.Vectors - prevVectors; growth > st.Steps+1 {
			t.Errorf("iteration %d: vector growth %d exceeds steps+1 %d", st.Iteration, growth, st.Steps+1)
		}
		prevVectors = st.Vectors
	}
}

func TestBootstrapImprovedSetStillValid(t *testing.T) {
	// After bootstrapping, the improved set must still satisfy Property
	// 1(b) at random beliefs and stay below the trivial upper bound.
	f := newFixture(t)
	b := newBootstrapper(t, f, VariantAverage, 11)
	if _, err := b.Run(15); err != nil {
		t.Fatal(err)
	}
	set := b.Set()
	sc := pomdp.NewScratch(f.term)
	r := rng.New(13)
	for trial := 0; trial < 10; trial++ {
		pi := make(pomdp.Belief, f.term.NumStates())
		for i := range pi {
			pi[i] = r.Float64()
		}
		if !pi.Vec().Normalize() {
			continue
		}
		rep, err := bounds.CheckConsistency(f.term, sc, set, pi, bounds.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Errorf("trial %d: Property 1(b) violated after bootstrap", trial)
		}
		if v := set.Value(pi); v > 1e-9 {
			t.Errorf("trial %d: bound %v above trivial upper bound 0", trial, v)
		}
	}
}

func TestBootstrapReferenceBeliefExcludesTerminatedState(t *testing.T) {
	f := newFixture(t)
	b := newBootstrapper(t, f, VariantAverage, 3)
	ref := b.ReferenceBelief()
	if len(ref) != f.term.NumStates() {
		t.Fatalf("reference belief length %d", len(ref))
	}
	if ref[f.idx.State] != 0 {
		t.Errorf("reference belief assigns %v to s_T", ref[f.idx.State])
	}
	if !ref.IsDistribution() {
		t.Errorf("reference belief not a distribution: %v", ref)
	}
}
