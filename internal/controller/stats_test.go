package controller

import (
	"math"
	"reflect"
	"testing"

	"bpomdp/internal/bounds"
	"bpomdp/internal/rng"
)

// TestDecisionStatsSequential checks the per-decision explanation produced
// by a CollectStats controller: the stats echo the decision, the bound gap
// is the Property 1(b) slack Value − V_B⁻(π) and never negative, and the
// engine work counters are live.
func TestDecisionStatsSequential(t *testing.T) {
	f := newFixture(t)
	ctrl, err := NewBounded(f.term, f.set, BoundedConfig{
		Depth: 1, TerminateAction: f.idx.Action, NullStates: []int{0}, CollectStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ctrl.StatsEnabled() {
		t.Fatal("CollectStats controller reports StatsEnabled() == false")
	}
	for _, pi := range batchBeliefs(rng.New(23), 10, f.term.NumStates()) {
		d, err := ctrl.decideAt(pi)
		if err != nil {
			t.Fatal(err)
		}
		st := ctrl.DecisionStats()
		if st.Action != d.Action || st.Terminate != d.Terminate || st.Value != d.Value {
			t.Errorf("stats echo decision badly: stats %+v, decision %+v", st, d)
		}
		if want := f.set.Peek(pi); st.LeafBound != want {
			t.Errorf("LeafBound = %v, want Peek = %v", st.LeafBound, want)
		}
		if st.BoundGap != st.Value-st.LeafBound {
			t.Errorf("BoundGap = %v, want Value-LeafBound = %v", st.BoundGap, st.Value-st.LeafBound)
		}
		if st.BoundGap < -1e-9 {
			t.Errorf("negative bound gap %v violates Property 1(b)", st.BoundGap)
		}
		if want := pi.Entropy(); st.BeliefEntropy != want {
			t.Errorf("BeliefEntropy = %v, want %v", st.BeliefEntropy, want)
		}
		if st.TreeNodes == 0 || st.LeafEvals == 0 {
			t.Errorf("work counters dead: %+v", st)
		}
		if len(st.QValues) != f.term.NumActions() {
			t.Errorf("QValues length %d, want %d", len(st.QValues), f.term.NumActions())
		}
		if st.SetSize != f.set.Size() {
			t.Errorf("SetSize = %d, want %d", st.SetSize, f.set.Size())
		}
	}
}

// TestStatsDisabledByDefault: without CollectStats the controller must say
// so, so callers skip the stats path entirely.
func TestStatsDisabledByDefault(t *testing.T) {
	f := newFixture(t)
	ctrl, err := NewBounded(f.term, f.set, BoundedConfig{Depth: 1, TerminateAction: f.idx.Action})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.StatsEnabled() {
		t.Error("StatsEnabled() true without CollectStats")
	}
}

// TestBatchDecisionStatsMatchSequential: DecideBatch must attribute stats
// per belief such that the explanation fields agree with sequential Decide
// exactly and the work-counter attribution sums to the batch's true engine
// totals.
func TestBatchDecisionStatsMatchSequential(t *testing.T) {
	f := newFixture(t)
	mk := func() *Bounded {
		ctrl, err := NewBounded(f.term, f.set, BoundedConfig{
			Depth: 1, TerminateAction: f.idx.Action, NullStates: []int{0}, CollectStats: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	seqCtrl, batCtrl := mk(), mk()
	pis := batchBeliefs(rng.New(29), 9, f.term.NumStates())

	want := make([]DecisionStats, len(pis))
	for j, pi := range pis {
		if _, err := seqCtrl.decideAt(pi); err != nil {
			t.Fatal(err)
		}
		st := seqCtrl.DecisionStats()
		st.QValues = append([]float64(nil), st.QValues...)
		want[j] = st
	}

	before := batCtrl.engine.Counters()
	out := make([]Decision, len(pis))
	if err := batCtrl.DecideBatch(pis, out); err != nil {
		t.Fatal(err)
	}
	after := batCtrl.engine.Counters()
	got := batCtrl.BatchDecisionStats()
	if len(got) != len(pis) {
		t.Fatalf("batch stats length %d, want %d", len(got), len(pis))
	}

	var nodes, leaves, passes uint64
	for j := range got {
		nodes += got[j].TreeNodes
		leaves += got[j].LeafEvals
		passes += got[j].SlabPasses
		g, w := got[j], want[j]
		// The work counters are attributed differently (shared expansion);
		// everything else must agree exactly.
		g.TreeNodes, g.LeafEvals, g.SlabPasses = 0, 0, 0
		w.TreeNodes, w.LeafEvals, w.SlabPasses = 0, 0, 0
		if !reflect.DeepEqual(g, w) {
			t.Errorf("belief %d stats diverge:\nbatch: %+v\nseq:   %+v", j, g, w)
		}
	}
	if nodes != after.Nodes-before.Nodes {
		t.Errorf("TreeNodes attribution sums to %d, engine did %d", nodes, after.Nodes-before.Nodes)
	}
	if leaves != after.LeafEvals-before.LeafEvals {
		t.Errorf("LeafEvals attribution sums to %d, engine did %d", leaves, after.LeafEvals-before.LeafEvals)
	}
	if passes != after.SlabPasses-before.SlabPasses {
		t.Errorf("SlabPasses attribution sums to %d, engine did %d", passes, after.SlabPasses-before.SlabPasses)
	}
}

// TestBatchStatsSequentialFallback: the ImproveOnline fallback path must
// still fill per-belief batch stats, with QValues stable across the whole
// batch (not aliased to a buffer the next decision overwrites).
func TestBatchStatsSequentialFallback(t *testing.T) {
	f := newFixture(t)
	set, err := bounds.RASet(f.term, bounds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewBounded(f.term, set, BoundedConfig{
		Depth: 1, TerminateAction: f.idx.Action, NullStates: []int{0},
		ImproveOnline: true, CollectStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pis := batchBeliefs(rng.New(31), 7, f.term.NumStates())
	out := make([]Decision, len(pis))
	if err := ctrl.DecideBatch(pis, out); err != nil {
		t.Fatal(err)
	}
	got := ctrl.BatchDecisionStats()
	for j := range pis {
		if got[j].Action != out[j].Action || got[j].Value != out[j].Value {
			t.Errorf("belief %d: stats %+v do not echo decision %+v", j, got[j], out[j])
		}
		if len(got[j].QValues) != f.term.NumActions() {
			t.Errorf("belief %d: QValues length %d", j, len(got[j].QValues))
		}
		if qa := got[j].QValues[out[j].Action]; math.Abs(qa-got[j].Value) > 1e-12 {
			t.Errorf("belief %d: QValues[action] = %v but Value = %v (stale alias?)", j, qa, got[j].Value)
		}
	}
}

// TestCollectStatsLeavesDecisionsUnchanged is the "observation does not
// perturb the experiment" guarantee: twin online-improving controllers over
// capacity-limited twin sets, one instrumented and one not, must make
// identical decisions and end with plane-identical bound sets — i.e. the
// stats path (Set.Peek, entropy, counters) must not touch usage counters or
// eviction order.
func TestCollectStatsLeavesDecisionsUnchanged(t *testing.T) {
	f := newFixture(t)
	mk := func(collect bool) *Bounded {
		set, err := bounds.RASet(f.term, bounds.Options{})
		if err != nil {
			t.Fatal(err)
		}
		set.SetCapacity(4)
		ctrl, err := NewBounded(f.term, set, BoundedConfig{
			Depth: 1, TerminateAction: f.idx.Action, NullStates: []int{0},
			ImproveOnline: true, CollectStats: collect,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	plain, instrumented := mk(false), mk(true)
	for _, pi := range batchBeliefs(rng.New(37), 40, f.term.NumStates()) {
		dp, err := plain.decideAt(pi)
		if err != nil {
			t.Fatal(err)
		}
		di, err := instrumented.decideAt(pi)
		if err != nil {
			t.Fatal(err)
		}
		if dp != di {
			t.Fatalf("instrumented decision %+v diverges from plain %+v", di, dp)
		}
	}
	a, b := plain.Set(), instrumented.Set()
	if a.Size() != b.Size() {
		t.Fatalf("set sizes diverged: plain %d, instrumented %d", a.Size(), b.Size())
	}
	for i := 0; i < a.Size(); i++ {
		if !reflect.DeepEqual(a.Plane(i), b.Plane(i)) {
			t.Errorf("plane %d diverged between plain and instrumented runs", i)
		}
	}
	if a.Evictions() != b.Evictions() {
		t.Errorf("eviction counts diverged: plain %d, instrumented %d", a.Evictions(), b.Evictions())
	}
}
