package controller_test

import (
	"fmt"
	"log"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/modelload"
	"bpomdp/internal/rng"
)

// ExampleFSCDecider compiles the bounded controller's policy over a frozen
// bound set into a finite-state controller and serves a decision from the
// table tier. At gap threshold 0 only nodes whose bound was already tight at
// compile time are served, so every table hit is bit-identical to the
// Max-Avg tree's decision; everything else — off-graph beliefs, wide-gap
// nodes — falls back to the tree over the same bounds.
func ExampleFSCDecider() {
	rm, err := modelload.Load("emn")
	if err != nil {
		log.Fatal(err)
	}
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 21600})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 2, rng.New(7)); err != nil {
		log.Fatal(err)
	}
	// HSVI refinement collapses compile-time gaps to rounding noise, so at
	// the near-zero threshold below every node becomes servable from the
	// table.
	if _, err := prep.RefineBounds(core.RefineConfig{}); err != nil {
		log.Fatal(err)
	}

	fsc, err := prep.CompileFSC(core.FSCConfig{Depth: 1})
	if err != nil {
		log.Fatal(err)
	}
	dec, err := prep.NewFSCDecider(fsc, core.ControllerConfig{Depth: 1}, 1e-9)
	if err != nil {
		log.Fatal(err)
	}

	initial, err := prep.InitialBelief()
	if err != nil {
		log.Fatal(err)
	}
	if err := dec.Reset(initial); err != nil {
		log.Fatal(err)
	}
	d, err := dec.Decide()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("action: %s\n", prep.Model.M.ActionName(d.Action))
	fmt.Printf("table hits: %d, tree fallbacks: %d\n", fsc.Hits(), fsc.Fallbacks())

	// Output:
	// action: observe
	// table hits: 1, tree fallbacks: 0
}
