package controller

import (
	"errors"
	"math"
	"testing"

	"bpomdp/internal/bounds"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// fixtures ------------------------------------------------------------------

type fixture struct {
	ts   *models.TwoServer
	base *pomdp.POMDP // untransformed (for heuristic/most-likely/oracle)
	term *pomdp.POMDP // with terminate action (for bounded)
	idx  pomdp.TerminationIndices
	set  *bounds.Set
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	term, idx, err := pomdp.WithTermination(ts.Model, pomdp.TerminationConfig{
		NullStates:           ts.NullStates,
		OperatorResponseTime: 10,
		RateReward:           ts.RateRewards,
	})
	if err != nil {
		t.Fatal(err)
	}
	set, err := bounds.RASet(term, bounds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{ts: ts, base: ts.Model, term: term, idx: idx, set: set}
}

// episode drives a controller against a simulated true system drawn from
// the given model until it terminates, returning whether the system was
// actually recovered at termination and the number of steps taken.
func episode(t *testing.T, model *pomdp.POMDP, ctrl Controller, initialBelief pomdp.Belief, trueState int, stream *rng.Stream, maxSteps int) (recovered bool, steps int) {
	t.Helper()
	if err := ctrl.Reset(initialBelief); err != nil {
		t.Fatal(err)
	}
	nullState := 0 // "null" is state 0 in the two-server fixtures
	for steps = 0; steps < maxSteps; steps++ {
		if sa, ok := ctrl.(StateAware); ok {
			sa.ObserveTrueState(trueState)
		}
		d, err := ctrl.Decide()
		if err != nil {
			t.Fatal(err)
		}
		if d.Terminate {
			return trueState == nullState, steps
		}
		// Execute the action on the true system.
		weights := make([]float64, model.NumStates())
		model.M.Trans[d.Action].Row(trueState, func(c int, v float64) { weights[c] = v })
		next, err := stream.Categorical(weights)
		if err != nil {
			t.Fatal(err)
		}
		ow := make([]float64, model.NumObservations())
		model.Obs[d.Action].Row(next, func(o int, v float64) { ow[o] = v })
		obs, err := stream.Categorical(ow)
		if err != nil {
			t.Fatal(err)
		}
		trueState = next
		if err := ctrl.Observe(d.Action, obs); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatalf("%s did not terminate within %d steps", ctrl.Name(), maxSteps)
	return false, steps
}

// engine --------------------------------------------------------------------

func TestNewEngineValidation(t *testing.T) {
	f := newFixture(t)
	zero := pomdp.ValueFunc(func(pomdp.Belief) float64 { return 0 })
	if _, err := NewEngine(f.term, 0, 1, zero); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := NewEngine(f.term, 1, 1.5, zero); err == nil {
		t.Error("beta 1.5 accepted")
	}
	if _, err := NewEngine(f.term, 1, 1, nil); err == nil {
		t.Error("nil leaf accepted")
	}
}

func TestEngineChooseDepth1ClosedForm(t *testing.T) {
	// At the point belief on fault-a with the RA-Bound leaf
	// V_ra = [-1, -4, -4, 0]:
	//   Q(restart-a) = -0.5 + V_ra(null)    = -1.5   <- max
	//   Q(restart-b) = -1   + V_ra(fault-a) = -5
	//   Q(observe)   = -0.5 + V_ra(fault-a) = -4.5
	//   Q(a_T)       = -5   + V_ra(s_T)     = -5
	// (the expectation over observations of a linear leaf collapses to the
	// pushed-forward belief dotted with the hyperplane).
	f := newFixture(t)
	engine, err := NewEngine(f.term, 1, 1, f.set.AsValueFn())
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Choose(pomdp.PointBelief(f.term.NumStates(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 0 {
		t.Errorf("action = %s, want restart-a", f.term.M.ActionName(res.Action))
	}
	want := []float64{-1.5, -5, -4.5, -5}
	for a, w := range want {
		if !almostEqual(res.QValues[a], w, 1e-6) {
			t.Errorf("Q[%s] = %v, want %v", f.term.M.ActionName(a), res.QValues[a], w)
		}
	}
	if engine.Depth() != 1 {
		t.Errorf("Depth = %d", engine.Depth())
	}
}

func TestEngineDeeperSearchNotWorse(t *testing.T) {
	// With non-positive rewards, L_p is monotone and L_p^k 0 decreases with
	// k, but the *root value with a fixed lower-bound leaf* must not
	// decrease with depth: one more backup of a consistent bound can only
	// tighten it upward (V_B ≤ L_p V_B).
	f := newFixture(t)
	pi := pomdp.UniformBelief(f.term.NumStates())
	var prev float64
	for depth := 1; depth <= 3; depth++ {
		engine, err := NewEngine(f.term, depth, 1, f.set.AsValueFn())
		if err != nil {
			t.Fatal(err)
		}
		v, err := engine.Value(pi)
		if err != nil {
			t.Fatal(err)
		}
		if depth > 1 && v < prev-1e-9 {
			t.Errorf("depth %d value %v < depth %d value %v", depth, v, depth-1, prev)
		}
		prev = v
	}
}

// bounded -------------------------------------------------------------------

func TestNewBoundedValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := NewBounded(f.term, nil, BoundedConfig{TerminateAction: f.idx.Action}); err == nil {
		t.Error("nil set accepted")
	}
	empty, err := bounds.NewSet(f.term.NumStates())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBounded(f.term, empty, BoundedConfig{TerminateAction: f.idx.Action}); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewBounded(f.term, f.set, BoundedConfig{TerminateAction: 99}); err == nil {
		t.Error("out-of-range terminate action accepted")
	}
	if _, err := NewBounded(f.term, f.set, BoundedConfig{TerminateAction: -1}); err == nil {
		t.Error("notification regime without NullStates accepted")
	}
}

func TestBoundedRequiresReset(t *testing.T) {
	f := newFixture(t)
	ctrl, err := NewBounded(f.term, f.set, BoundedConfig{TerminateAction: f.idx.Action})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Decide(); !errors.Is(err, ErrNotReset) {
		t.Errorf("Decide before Reset: %v", err)
	}
	if err := ctrl.Observe(0, 0); !errors.Is(err, ErrNotReset) {
		t.Errorf("Observe before Reset: %v", err)
	}
	if ctrl.Belief() != nil {
		t.Error("Belief before Reset should be nil")
	}
}

func TestBoundedRejectsBadInitialBelief(t *testing.T) {
	f := newFixture(t)
	ctrl, err := NewBounded(f.term, f.set, BoundedConfig{TerminateAction: f.idx.Action})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Reset(pomdp.Belief{0.5, 0.5}); err == nil {
		t.Error("short belief accepted")
	}
	if err := ctrl.Reset(pomdp.Belief{2, -1, 0, 0}); err == nil {
		t.Error("non-distribution accepted")
	}
}

func TestBoundedRecoversAndTerminates(t *testing.T) {
	f := newFixture(t)
	ctrl, err := NewBounded(f.term, f.set, BoundedConfig{
		Depth:            1,
		TerminateAction:  f.idx.Action,
		NullStates:       []int{0},
		ImproveOnline:    true,
		CheckConsistency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(1234)
	initial, err := pomdp.UniformOver(f.term.NumStates(), []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	recoveredAll := true
	for ep := 0; ep < 50; ep++ {
		stream := root.SplitN("ep", ep)
		trueState := 1 + stream.IntN(2) // fault-a or fault-b
		rec, _ := episode(t, f.term, ctrl, initial, trueState, stream, 200)
		if !rec {
			recoveredAll = false
		}
	}
	if !recoveredAll {
		t.Error("bounded controller terminated before recovery in some episode (paper: never happened in 10,000 injections)")
	}
	if ctrl.Set() != f.set {
		t.Error("Set accessor mismatch")
	}
}

func TestBoundedNotificationRegime(t *testing.T) {
	// Perfect monitor: recovery notification; the controller stops on
	// certainty of Sφ without any terminate action.
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := pomdp.AbsorbNullStates(ts.Model, ts.NullStates)
	if err != nil {
		t.Fatal(err)
	}
	set, err := bounds.RASet(mod, bounds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewBounded(mod, set, BoundedConfig{
		Depth:           1,
		TerminateAction: -1,
		NullStates:      ts.NullStates,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(77)
	for ep := 0; ep < 20; ep++ {
		stream := root.SplitN("ep", ep)
		trueState := 1 + stream.IntN(2)
		rec, _ := episode(t, ts.Model, ctrl, pomdp.UniformBelief(3), trueState, stream, 100)
		if !rec {
			t.Fatalf("episode %d: terminated unrecovered under recovery notification", ep)
		}
	}
}

// heuristic -----------------------------------------------------------------

func TestNewHeuristicValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := NewHeuristic(f.base, HeuristicConfig{TerminationProbability: 0.999}); err == nil {
		t.Error("missing NullStates accepted")
	}
	if _, err := NewHeuristic(f.base, HeuristicConfig{NullStates: []int{0}}); err == nil {
		t.Error("zero termination probability accepted")
	}
	if _, err := NewHeuristic(f.base, HeuristicConfig{NullStates: []int{0}, TerminationProbability: 2}); err == nil {
		t.Error("termination probability 2 accepted")
	}
}

func TestHeuristicRecoversAndTerminates(t *testing.T) {
	f := newFixture(t)
	for _, depth := range []int{1, 2} {
		ctrl, err := NewHeuristic(f.base, HeuristicConfig{
			Depth:                  depth,
			NullStates:             []int{0},
			TerminationProbability: 0.999,
		})
		if err != nil {
			t.Fatal(err)
		}
		root := rng.New(uint64(100 + depth))
		for ep := 0; ep < 20; ep++ {
			stream := root.SplitN("ep", ep)
			trueState := 1 + stream.IntN(2)
			rec, _ := episode(t, f.base, ctrl, pomdp.UniformBelief(3), trueState, stream, 300)
			if !rec {
				t.Errorf("depth %d episode %d: terminated unrecovered", depth, ep)
			}
		}
	}
}

// most likely ---------------------------------------------------------------

func TestNewMostLikelyValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := NewMostLikely(f.base, MostLikelyConfig{TerminationProbability: 0.99}); err == nil {
		t.Error("missing NullStates accepted")
	}
	if _, err := NewMostLikely(f.base, MostLikelyConfig{NullStates: []int{0}}); err == nil {
		t.Error("zero termination probability accepted")
	}
	if _, err := NewMostLikely(f.base, MostLikelyConfig{NullStates: []int{42}, TerminationProbability: 0.99}); err == nil {
		t.Error("out-of-range null state accepted")
	}
}

func TestMostLikelyPicksMatchingRestart(t *testing.T) {
	f := newFixture(t)
	ctrl, err := NewMostLikely(f.base, MostLikelyConfig{
		NullStates:             []int{0},
		TerminationProbability: 0.999,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Reset(pomdp.Belief{0.1, 0.7, 0.2}); err != nil {
		t.Fatal(err)
	}
	d, err := ctrl.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if d.Terminate || d.Action != 0 {
		t.Errorf("decision = %+v, want restart-a", d)
	}
}

func TestMostLikelyRecoversAndTerminates(t *testing.T) {
	f := newFixture(t)
	ctrl, err := NewMostLikely(f.base, MostLikelyConfig{
		NullStates:             []int{0},
		TerminationProbability: 0.999,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(55)
	for ep := 0; ep < 20; ep++ {
		stream := root.SplitN("ep", ep)
		trueState := 1 + stream.IntN(2)
		rec, _ := episode(t, f.base, ctrl, pomdp.UniformBelief(3), trueState, stream, 300)
		if !rec {
			t.Errorf("episode %d: terminated unrecovered", ep)
		}
	}
}

// oracle --------------------------------------------------------------------

func TestOracleSingleActionRecovery(t *testing.T) {
	f := newFixture(t)
	ctrl, err := NewOracle(f.base, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(9)
	for ep := 0; ep < 10; ep++ {
		stream := root.SplitN("ep", ep)
		trueState := 1 + stream.IntN(2)
		rec, steps := episode(t, f.base, ctrl, pomdp.UniformBelief(3), trueState, stream, 10)
		if !rec {
			t.Fatalf("oracle failed to recover")
		}
		if steps != 1 {
			t.Errorf("oracle took %d actions, want exactly 1", steps)
		}
	}
}

func TestOracleErrors(t *testing.T) {
	f := newFixture(t)
	ctrl, err := NewOracle(f.base, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Decide(); !errors.Is(err, ErrNotReset) {
		t.Errorf("Decide before Reset: %v", err)
	}
	if err := ctrl.Reset(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Decide(); err == nil {
		t.Error("Decide without true state accepted")
	}
	ctrl.ObserveTrueState(0)
	d, err := ctrl.Decide()
	if err != nil || !d.Terminate {
		t.Errorf("oracle in null state: %+v, %v", d, err)
	}
	if b := ctrl.Belief(); b == nil || b[0] != 1 {
		t.Errorf("oracle belief = %v", b)
	}
	if _, err := NewOracle(f.base, []int{99}); err == nil {
		t.Error("out-of-range null state accepted")
	}
}

func TestOracleRejectsUnrecoverableModels(t *testing.T) {
	// A model where some fault needs two steps has no single-action oracle.
	b := pomdp.NewBuilder()
	b.Transition("null", "step", "null", 1)
	b.Transition("half", "step", "null", 1)
	b.Transition("bad", "step", "half", 1)
	b.Reward("half", "step", -1)
	b.Reward("bad", "step", -1)
	for _, s := range []string{"null", "half", "bad"} {
		b.Observe(s, "step", "o", 1)
	}
	model, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOracle(model, []int{0}); err == nil {
		t.Error("two-step fault model accepted by oracle")
	}
}

// random --------------------------------------------------------------------

func TestRandomControllerTerminates(t *testing.T) {
	f := newFixture(t)
	ctrl, err := NewRandom(f.base, []int{0}, 0.99, rng.New(2).Split("ctrl"))
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(31)
	for ep := 0; ep < 10; ep++ {
		stream := root.SplitN("ep", ep)
		trueState := 1 + stream.IntN(2)
		episode(t, f.base, ctrl, pomdp.UniformBelief(3), trueState, stream, 2000)
	}
}

func TestNewRandomValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := NewRandom(f.base, nil, 0.99, rng.New(1)); err == nil {
		t.Error("missing null states accepted")
	}
	if _, err := NewRandom(f.base, []int{0}, 0, rng.New(1)); err == nil {
		t.Error("zero termination probability accepted")
	}
	if _, err := NewRandom(f.base, []int{0}, 0.9, nil); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestHeuristicLeafOverride(t *testing.T) {
	f := newFixture(t)
	// A zero leaf makes the depth-1 controller purely myopic.
	ctrl, err := NewHeuristic(f.base, HeuristicConfig{
		Depth:                  1,
		NullStates:             []int{0},
		TerminationProbability: 0.9999,
		Leaf:                   pomdp.ValueFunc(func(pomdp.Belief) float64 { return 0 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Reset(pomdp.UniformBelief(3)); err != nil {
		t.Fatal(err)
	}
	d, err := ctrl.Decide()
	if err != nil {
		t.Fatal(err)
	}
	// Assert the leaf is actually consulted by comparing root values at a
	// belief whose successors keep fault mass: the zero leaf roots at the
	// best immediate reward, the SRDS leaf roots strictly lower (it charges
	// the residual fault probability).
	srds, err := NewHeuristic(f.base, HeuristicConfig{
		Depth: 1, NullStates: []int{0}, TerminationProbability: 0.9999,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srds.Reset(pomdp.UniformBelief(3)); err != nil {
		t.Fatal(err)
	}
	d2, err := srds.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if !(d.Value > d2.Value) {
		t.Errorf("zero-leaf root %v should exceed SRDS-leaf root %v", d.Value, d2.Value)
	}
}
