package controller

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"bpomdp/internal/pomdp"
)

// FSCSchema identifies the compiled-controller artifact format.
const FSCSchema = "bpomdp.fsc/v1"

// maxFSCFrameBytes bounds a single artifact frame, mirroring the log
// store's record guard: a corrupt length prefix must not trigger a giant
// allocation.
const maxFSCFrameBytes = 16 << 20

// fscHeaderJSON is frame 0 of the artifact.
type fscHeaderJSON struct {
	Schema          string  `json:"schema"`
	States          int     `json:"states"`
	Actions         int     `json:"actions"`
	Observations    int     `json:"observations"`
	Depth           int     `json:"depth"`
	Beta            float64 `json:"beta"`
	TerminateAction int     `json:"terminate_action"`
	Nodes           int     `json:"nodes"`
}

// fscNodeJSON is one node frame. Belief coordinates survive the JSON round
// trip bit-exactly (Go emits the shortest representation that parses back
// to the same float64), so a decoded table reproduces the compiler's
// belief-key index verbatim.
type fscNodeJSON struct {
	Belief     []float64 `json:"belief"`
	Action     int       `json:"action"`
	Terminate  bool      `json:"terminate,omitempty"`
	Value      float64   `json:"value"`
	Gap        float64   `json:"gap"`
	EdgeAction int       `json:"edge_action"`
	Edges      []int32   `json:"edges,omitempty"`
}

// writeFSCFrame writes one length-prefixed CRC-framed payload, the same
// wire shape as the checkpoint log store: u32 length, u32 CRC-32 (IEEE) of
// the payload, payload bytes, all little-endian.
func writeFSCFrame(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFSCFrame reads the next frame. io.EOF is returned cleanly at a frame
// boundary; a torn or corrupt frame is an error — unlike the append-only
// log, a compiled artifact is written atomically and has no valid prefix.
func readFSCFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("controller: fsc artifact: torn frame header")
		}
		return nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length > maxFSCFrameBytes {
		return nil, fmt.Errorf("controller: fsc artifact: frame of %d bytes exceeds %d-byte limit", length, maxFSCFrameBytes)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("controller: fsc artifact: torn frame payload: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return nil, fmt.Errorf("controller: fsc artifact: frame CRC mismatch (got %08x, want %08x)", got, want)
	}
	return payload, nil
}

// Encode writes the compiled table as a bpomdp.fsc/v1 artifact: a header
// frame followed by one frame per node, each length-prefixed and
// CRC-framed like the checkpoint log store. Runtime hit/fallback counters
// are not part of the artifact.
func (f *FSC) Encode(w io.Writer) error {
	hdr, err := json.Marshal(fscHeaderJSON{
		Schema:          FSCSchema,
		States:          f.states,
		Actions:         f.actions,
		Observations:    f.observations,
		Depth:           f.depth,
		Beta:            f.beta,
		TerminateAction: f.terminateAction,
		Nodes:           len(f.nodes),
	})
	if err != nil {
		return err
	}
	if err := writeFSCFrame(w, hdr); err != nil {
		return err
	}
	for i := range f.nodes {
		n := &f.nodes[i]
		payload, err := json.Marshal(fscNodeJSON{
			Belief:     n.Belief,
			Action:     n.Action,
			Terminate:  n.Terminate,
			Value:      n.Value,
			Gap:        n.Gap,
			EdgeAction: n.EdgeAction,
			Edges:      n.Edges,
		})
		if err != nil {
			return err
		}
		if err := writeFSCFrame(w, payload); err != nil {
			return err
		}
	}
	return nil
}

// DecodeFSC reads and validates a bpomdp.fsc/v1 artifact. Every structural
// invariant the runtime relies on is checked here — dimensions, belief
// well-formedness, action/edge ranges, finite values, unique beliefs — so
// a decider can trust a decoded table without re-verifying per decision.
func DecodeFSC(r io.Reader) (*FSC, error) {
	payload, err := readFSCFrame(r)
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("controller: fsc artifact: empty input")
		}
		return nil, err
	}
	var hdr fscHeaderJSON
	if err := json.Unmarshal(payload, &hdr); err != nil {
		return nil, fmt.Errorf("controller: fsc artifact: header: %w", err)
	}
	if hdr.Schema != FSCSchema {
		return nil, fmt.Errorf("controller: fsc artifact: schema %q, want %q", hdr.Schema, FSCSchema)
	}
	if hdr.States < 1 || hdr.Actions < 1 || hdr.Observations < 1 {
		return nil, fmt.Errorf("controller: fsc artifact: invalid dimensions %d/%d/%d", hdr.States, hdr.Actions, hdr.Observations)
	}
	if hdr.Depth < 1 {
		return nil, fmt.Errorf("controller: fsc artifact: invalid depth %d", hdr.Depth)
	}
	if !(hdr.Beta > 0 && hdr.Beta <= 1) {
		return nil, fmt.Errorf("controller: fsc artifact: invalid beta %v", hdr.Beta)
	}
	if hdr.TerminateAction < -1 || hdr.TerminateAction >= hdr.Actions {
		return nil, fmt.Errorf("controller: fsc artifact: terminate action %d out of range", hdr.TerminateAction)
	}
	if hdr.Nodes < 1 {
		return nil, fmt.Errorf("controller: fsc artifact: no nodes")
	}
	f := &FSC{
		states:          hdr.States,
		actions:         hdr.Actions,
		observations:    hdr.Observations,
		depth:           hdr.Depth,
		beta:            hdr.Beta,
		terminateAction: hdr.TerminateAction,
		nodes:           make([]FSCNode, 0, hdr.Nodes),
	}
	for i := 0; i < hdr.Nodes; i++ {
		payload, err := readFSCFrame(r)
		if err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("controller: fsc artifact: %d nodes declared, input ends after %d", hdr.Nodes, i)
			}
			return nil, err
		}
		var nj fscNodeJSON
		if err := json.Unmarshal(payload, &nj); err != nil {
			return nil, fmt.Errorf("controller: fsc artifact: node %d: %w", i, err)
		}
		n, err := validateFSCNode(&nj, &hdr)
		if err != nil {
			return nil, fmt.Errorf("controller: fsc artifact: node %d: %w", i, err)
		}
		f.nodes = append(f.nodes, n)
	}
	if _, err := readFSCFrame(r); err != io.EOF {
		if err == nil {
			return nil, fmt.Errorf("controller: fsc artifact: trailing data after %d nodes", hdr.Nodes)
		}
		return nil, fmt.Errorf("controller: fsc artifact: trailing data after %d nodes: %w", hdr.Nodes, err)
	}
	if err := f.buildIndex(); err != nil {
		return nil, err
	}
	return f, nil
}

// validateFSCNode checks one decoded node against the header's dimensions.
func validateFSCNode(nj *fscNodeJSON, hdr *fscHeaderJSON) (FSCNode, error) {
	if len(nj.Belief) != hdr.States {
		return FSCNode{}, fmt.Errorf("belief length %d, want %d", len(nj.Belief), hdr.States)
	}
	pi := pomdp.Belief(nj.Belief)
	for _, x := range pi {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return FSCNode{}, fmt.Errorf("non-finite belief coordinate %v", x)
		}
	}
	if !pi.IsDistribution() {
		return FSCNode{}, fmt.Errorf("belief is not a distribution")
	}
	// Certainty terminations carry the Decision zero value (Action 0), so
	// the action range check is uniform across regimes.
	if nj.Action < 0 || nj.Action >= hdr.Actions {
		return FSCNode{}, fmt.Errorf("action %d out of range [0,%d)", nj.Action, hdr.Actions)
	}
	if math.IsNaN(nj.Value) || math.IsInf(nj.Value, 0) {
		return FSCNode{}, fmt.Errorf("non-finite value %v", nj.Value)
	}
	if math.IsNaN(nj.Gap) || math.IsInf(nj.Gap, 0) {
		return FSCNode{}, fmt.Errorf("non-finite gap %v", nj.Gap)
	}
	if nj.Edges != nil {
		if len(nj.Edges) != hdr.Observations {
			return FSCNode{}, fmt.Errorf("%d edges, want %d", len(nj.Edges), hdr.Observations)
		}
		if nj.EdgeAction < 0 || nj.EdgeAction >= hdr.Actions {
			return FSCNode{}, fmt.Errorf("edge action %d out of range [0,%d)", nj.EdgeAction, hdr.Actions)
		}
		for o, e := range nj.Edges {
			if e < -1 || int(e) >= hdr.Nodes {
				return FSCNode{}, fmt.Errorf("edge %d under obs %d out of range [-1,%d)", e, o, hdr.Nodes)
			}
		}
	}
	return FSCNode{
		Belief:     pi,
		Action:     nj.Action,
		Terminate:  nj.Terminate,
		Value:      nj.Value,
		Gap:        nj.Gap,
		EdgeAction: nj.EdgeAction,
		Edges:      nj.Edges,
	}, nil
}
