package controller

import (
	"fmt"
	"math"

	"bpomdp/internal/pomdp"
)

// HeuristicConfig configures a heuristic-leaf POMDP controller — the
// controller family the paper's Section 5 compares against (depths 1–3).
type HeuristicConfig struct {
	// Depth is the Max-Avg tree expansion depth (≥ 1).
	Depth int
	// Beta is the discount factor; zero means 1.
	Beta float64
	// NullStates is Sφ; P[Sφ] drives the termination test and the leaf
	// heuristic.
	NullStates []int
	// TerminationProbability is the belief mass on Sφ above which the
	// controller declares recovery complete. The paper sets it to 0.9999
	// for its 10,000-injection campaigns and notes how hard it is to pick.
	TerminationProbability float64
	// Leaf overrides the leaf evaluator. Nil uses the SRDS'05 heuristic
	// (1 − P[Sφ])·min r(s,a); ablations pass alternatives (e.g. the zero
	// leaf for a purely myopic controller).
	Leaf pomdp.ValueFn
}

// Heuristic is a finite-depth Max-Avg controller whose leaves are valued by
// the heuristic the paper's earlier work (SRDS'05) found best for the EMN
// system: value(π) = (1 − P[Sφ])·min_{s,a} r(s,a) — the probability the
// system has not recovered times the cost of the most expensive action.
// Unlike a bound, this provides no termination or performance guarantee.
type Heuristic struct {
	beliefTracker
	cfg       HeuristicConfig
	engine    *Engine
	nullSet   []int
	worstCost float64
}

var _ Controller = (*Heuristic)(nil)

// NewHeuristic builds a heuristic controller over the untransformed
// recovery model p (no terminate action; termination is by probability
// threshold).
func NewHeuristic(p *pomdp.POMDP, cfg HeuristicConfig) (*Heuristic, error) {
	if cfg.Depth == 0 {
		cfg.Depth = 1
	}
	if cfg.Beta == 0 {
		cfg.Beta = 1
	}
	if len(cfg.NullStates) == 0 {
		return nil, fmt.Errorf("controller: heuristic controller needs NullStates")
	}
	if cfg.TerminationProbability <= 0 || cfg.TerminationProbability > 1 {
		return nil, fmt.Errorf("controller: termination probability %v outside (0,1]", cfg.TerminationProbability)
	}
	h := &Heuristic{
		beliefTracker: newBeliefTracker(p),
		cfg:           cfg,
		nullSet:       pomdp.SortedStates(cfg.NullStates),
	}
	worst := math.Inf(1)
	for _, r := range p.M.Reward {
		if m, _ := r.Min(); m < worst {
			worst = m
		}
	}
	h.worstCost = worst
	leaf := cfg.Leaf
	if leaf == nil {
		leaf = pomdp.ValueFunc(func(pi pomdp.Belief) float64 {
			return (1 - pi.Mass(h.nullSet)) * h.worstCost
		})
	}
	engine, err := NewEngine(p, cfg.Depth, cfg.Beta, leaf)
	if err != nil {
		return nil, err
	}
	h.engine = engine
	return h, nil
}

// Name implements Controller.
func (h *Heuristic) Name() string {
	return fmt.Sprintf("heuristic(depth=%d)", h.cfg.Depth)
}

// Decide implements Controller.
func (h *Heuristic) Decide() (Decision, error) {
	if h.belief == nil {
		return Decision{}, ErrNotReset
	}
	if h.belief.Mass(h.nullSet) >= h.cfg.TerminationProbability {
		return Decision{Terminate: true}, nil
	}
	res, err := h.engine.Choose(h.belief)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Action: res.Action, Value: res.Value}, nil
}
