package controller

import (
	"fmt"

	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// Random chooses actions uniformly at random — the policy whose value IS
// the RA-Bound. It is included as an ablation baseline: the bounded
// controller must outperform it by construction (the bound is the random
// policy's value, and the controller maximizes against it).
type Random struct {
	beliefTracker
	nullSet  []int
	termProb float64
	stream   *rng.Stream
}

var _ Controller = (*Random)(nil)

// NewRandom builds the random controller over the untransformed model.
func NewRandom(p *pomdp.POMDP, nullStates []int, terminationProbability float64, stream *rng.Stream) (*Random, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(nullStates) == 0 {
		return nil, fmt.Errorf("controller: random controller needs NullStates")
	}
	if terminationProbability <= 0 || terminationProbability > 1 {
		return nil, fmt.Errorf("controller: termination probability %v outside (0,1]", terminationProbability)
	}
	if stream == nil {
		return nil, fmt.Errorf("controller: nil rng stream")
	}
	return &Random{
		beliefTracker: newBeliefTracker(p),
		nullSet:       pomdp.SortedStates(nullStates),
		termProb:      terminationProbability,
		stream:        stream,
	}, nil
}

// Name implements Controller.
func (r *Random) Name() string { return "random" }

// Decide implements Controller.
func (r *Random) Decide() (Decision, error) {
	if r.belief == nil {
		return Decision{}, ErrNotReset
	}
	if r.belief.Mass(r.nullSet) >= r.termProb {
		return Decision{Terminate: true}, nil
	}
	return Decision{Action: r.stream.IntN(r.p.NumActions())}, nil
}
