package controller

import (
	"fmt"
	"math"

	"bpomdp/internal/pomdp"
)

// Oracle is the paper's hypothetical ideal controller: it knows the fault
// in the system and always recovers from it with a single (cheapest
// successful) action. It represents the unattainable lower envelope in
// Table 1 and requires the simulator to feed it the true state via
// ObserveTrueState.
type Oracle struct {
	p         *pomdp.POMDP
	nullSet   []bool
	actionFor []int
	trueState int
	ready     bool
}

var (
	_ Controller = (*Oracle)(nil)
	_ StateAware = (*Oracle)(nil)
)

// NewOracle builds the oracle over the untransformed recovery model. For
// every fault state it precomputes the cheapest action that reaches Sφ with
// probability 1; models in which some fault has no such action are rejected
// (the oracle's single-action guarantee would not hold).
func NewOracle(p *pomdp.POMDP, nullStates []int) (*Oracle, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.NumStates()
	o := &Oracle{p: p, nullSet: make([]bool, n), trueState: -1}
	for _, s := range nullStates {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("controller: null state %d out of range [0,%d)", s, n)
		}
		o.nullSet[s] = true
	}
	o.actionFor = make([]int, n)
	for s := 0; s < n; s++ {
		if o.nullSet[s] {
			o.actionFor[s] = -1
			continue
		}
		bestA, bestCost := -1, math.Inf(-1)
		for a := 0; a < p.NumActions(); a++ {
			var pNull float64
			p.M.Trans[a].Row(s, func(c int, v float64) {
				if o.nullSet[c] {
					pNull += v
				}
			})
			if pNull >= 1-1e-12 {
				if cost := p.M.Reward[a][s]; cost > bestCost {
					bestA, bestCost = a, cost
				}
			}
		}
		if bestA < 0 {
			return nil, fmt.Errorf("controller: oracle: no action recovers state %s in one step", p.M.StateName(s))
		}
		o.actionFor[s] = bestA
	}
	return o, nil
}

// Name implements Controller.
func (o *Oracle) Name() string { return "oracle" }

// Reset implements Controller. The oracle ignores the belief.
func (o *Oracle) Reset(pomdp.Belief) error {
	o.ready = true
	o.trueState = -1
	return nil
}

// ObserveTrueState implements StateAware.
func (o *Oracle) ObserveTrueState(s int) { o.trueState = s }

// Decide implements Controller.
func (o *Oracle) Decide() (Decision, error) {
	if !o.ready {
		return Decision{}, ErrNotReset
	}
	if o.trueState < 0 {
		return Decision{}, fmt.Errorf("controller: oracle was not fed the true state")
	}
	if o.nullSet[o.trueState] {
		return Decision{Terminate: true}, nil
	}
	return Decision{Action: o.actionFor[o.trueState]}, nil
}

// Observe implements Controller; the oracle has nothing to learn from
// monitor outputs.
func (o *Oracle) Observe(int, int) error {
	if !o.ready {
		return ErrNotReset
	}
	return nil
}

// Belief implements Controller; the oracle holds no belief and returns a
// point mass on the true state when known.
func (o *Oracle) Belief() pomdp.Belief {
	if o.trueState < 0 {
		return nil
	}
	return pomdp.PointBelief(o.p.NumStates(), o.trueState)
}
