package controller

import (
	"fmt"
	"time"

	"bpomdp/internal/bounds"
	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
)

// AnytimeConfig configures an anytime bounded controller.
type AnytimeConfig struct {
	// Budget is the per-decision wall-clock budget. The controller always
	// completes depth 1 (so a decision is always produced) and deepens the
	// search while it projects the next depth to fit in the budget.
	Budget time.Duration
	// MaxDepth caps the expansion depth regardless of budget (0 means 4).
	MaxDepth int
	// Beta is the discount factor; zero means 1.
	Beta float64
	// TerminateAction is a_T's index, or -1 with recovery notification.
	TerminateAction int
	// NullStates is Sφ.
	NullStates []int
}

// Anytime is a bounded controller that spends a wall-clock budget instead
// of a fixed depth: it expands the branch-and-bound Max-Avg tree at
// increasing depths until the next depth no longer fits, then acts on the
// deepest completed expansion. Because the leaves are lower bounds, deeper
// expansions only tighten the root value (never regress), so acting on the
// deepest completed result is always safe — the classic anytime property,
// here inherited from the paper's bound machinery.
type Anytime struct {
	beliefTracker
	cfg     AnytimeConfig
	engines []*PrunedEngine
	nullSet []int
	now     func() time.Time
	// lastDepth records the deepest completed expansion of the most recent
	// Decide (observability hook).
	lastDepth int
}

var _ Controller = (*Anytime)(nil)

// NewAnytime builds an anytime controller over the transformed model p,
// using set for leaf lower bounds and upper as the branch-and-bound pruning
// bound (typically bounds.QMDP).
func NewAnytime(p *pomdp.POMDP, set *bounds.Set, upper linalg.Vector, cfg AnytimeConfig) (*Anytime, error) {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 4
	}
	if cfg.MaxDepth < 1 {
		return nil, fmt.Errorf("controller: max depth %d < 1", cfg.MaxDepth)
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("controller: non-positive budget %v", cfg.Budget)
	}
	if cfg.Beta == 0 {
		cfg.Beta = 1
	}
	if set == nil || set.Size() == 0 {
		return nil, fmt.Errorf("controller: anytime controller needs a non-empty bound set")
	}
	if cfg.TerminateAction >= p.NumActions() {
		return nil, fmt.Errorf("controller: terminate action %d out of range", cfg.TerminateAction)
	}
	if cfg.TerminateAction < 0 && len(cfg.NullStates) == 0 {
		return nil, fmt.Errorf("controller: recovery-notification regime needs NullStates")
	}
	a := &Anytime{
		beliefTracker: newBeliefTracker(p),
		cfg:           cfg,
		nullSet:       pomdp.SortedStates(cfg.NullStates),
		now:           time.Now,
	}
	for d := 1; d <= cfg.MaxDepth; d++ {
		e, err := NewPrunedEngine(p, d, cfg.Beta, set.AsValueFn(), upper)
		if err != nil {
			return nil, err
		}
		a.engines = append(a.engines, e)
	}
	return a, nil
}

// Name implements Controller.
func (a *Anytime) Name() string {
	return fmt.Sprintf("anytime(budget=%v,maxDepth=%d)", a.cfg.Budget, a.cfg.MaxDepth)
}

// Decide implements Controller: iterative deepening under the budget.
func (a *Anytime) Decide() (Decision, error) {
	if a.belief == nil {
		return Decision{}, ErrNotReset
	}
	const certainty = 1 - 1e-9
	if a.cfg.TerminateAction < 0 && a.belief.Mass(a.nullSet) >= certainty {
		return Decision{Terminate: true}, nil
	}
	start := a.now()
	var (
		best      pomdp.BackupResult
		lastCost  time.Duration
		completed int
	)
	for i, engine := range a.engines {
		depthStart := a.now()
		res, _, err := engine.Choose(a.belief)
		if err != nil {
			return Decision{}, err
		}
		best = res
		completed = i + 1
		lastCost = a.now().Sub(depthStart)
		elapsed := a.now().Sub(start)
		// Project the next depth at the observed growth factor; stop when
		// it would blow the budget. Branching multiplies cost by roughly
		// |A|·|O_reachable| per extra level; 8× is a conservative floor for
		// the models here.
		const growth = 8
		if elapsed+growth*lastCost > a.cfg.Budget {
			break
		}
	}
	a.lastDepth = completed
	d := Decision{Action: best.Action, Value: best.Value}
	if a.cfg.TerminateAction >= 0 &&
		(best.Action == a.cfg.TerminateAction || best.QValues[a.cfg.TerminateAction] >= best.Value-1e-9) {
		d.Action = a.cfg.TerminateAction
		d.Terminate = true
	}
	return d, nil
}

// LastDepth reports how deep the most recent Decide expanded (test hook).
func (a *Anytime) LastDepth() int { return a.lastDepth }
