package controller

import (
	"errors"
	"fmt"

	"bpomdp/internal/bounds"
	"bpomdp/internal/pomdp"
)

// FSCCompileConfig configures the offline FSC compiler.
type FSCCompileConfig struct {
	// Depth is the Max-Avg expansion depth decisions are compiled with
	// (default 1, as in the paper's evaluation). It must match the depth of
	// the tree controller the table will stand in for, or parity is lost.
	Depth int
	// Beta is the discount factor; zero means 1 (undiscounted).
	Beta float64
	// TerminateAction is a_T's index, or −1 for recovery-notification
	// models.
	TerminateAction int
	// NullStates is Sφ; required in the recovery-notification regime, where
	// compiled nodes terminate on belief certainty exactly like the online
	// controller.
	NullStates []int
	// InitialObservationAction is the action whose observation function
	// generates an episode's first monitor output (the passive observe
	// action). Root nodes compile their edges under it, because the runtime
	// observes one monitor sweep before the first decision.
	InitialObservationAction int
	// MaxNodes caps the table size; zero means 4096. The breadth-first
	// expansion compiles the shallowest reachable beliefs first, so a cap
	// trims the deep tail of long episodes — exactly the beliefs the
	// fallback tier exists for.
	MaxNodes int
	// Improve, when true, runs one incremental bound update at every
	// compiled belief before deciding (the bootstrapping backup of §4.1),
	// which drives compiled gaps toward zero but mutates the set — decisions
	// are then only guaranteed to match a tree running over the final set
	// where the recorded gap is still within threshold. Leave false to
	// compile against a frozen set with exact decision parity.
	Improve bool
}

// CompileFSC extracts a sparse finite-state controller from the bounded
// controller: starting from the given root beliefs (typically the episode
// initial belief, optionally augmented with Bootstrapper-sampled posteriors)
// it breadth-first enumerates the reachable belief graph, records at every
// belief the exact Decision the Max-Avg tree makes over the set, annotates
// it with the observed bound gap, and links per-observation successor
// edges.
//
// The compiler shares the belief-update kernel, engine construction, and
// a_T tie-break with Bounded, so a compiled node replays bit-identically
// what Bounded.Decide would return at the same belief over the same set.
func CompileFSC(p *pomdp.POMDP, set *bounds.Set, roots []pomdp.Belief, cfg FSCCompileConfig) (*FSC, error) {
	if cfg.Depth == 0 {
		cfg.Depth = 1
	}
	if cfg.Beta == 0 {
		cfg.Beta = 1
	}
	if cfg.MaxNodes == 0 {
		cfg.MaxNodes = 4096
	}
	if cfg.MaxNodes < 0 {
		return nil, fmt.Errorf("controller: fsc compile with negative node budget %d", cfg.MaxNodes)
	}
	if set == nil || set.Size() == 0 {
		return nil, fmt.Errorf("controller: fsc compile needs a non-empty bound set (compute the RA-Bound first)")
	}
	if set.NumStates() != p.NumStates() {
		return nil, fmt.Errorf("controller: bound set over %d states, model has %d", set.NumStates(), p.NumStates())
	}
	if cfg.TerminateAction >= p.NumActions() {
		return nil, fmt.Errorf("controller: terminate action %d out of range", cfg.TerminateAction)
	}
	if cfg.TerminateAction < 0 && len(cfg.NullStates) == 0 {
		return nil, fmt.Errorf("controller: recovery-notification regime needs NullStates to detect completion")
	}
	if cfg.InitialObservationAction < 0 || cfg.InitialObservationAction >= p.NumActions() {
		return nil, fmt.Errorf("controller: initial observation action %d out of range", cfg.InitialObservationAction)
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("controller: fsc compile needs at least one root belief")
	}
	engine, err := NewEngine(p, cfg.Depth, cfg.Beta, set)
	if err != nil {
		return nil, err
	}
	var updater *bounds.Updater
	if cfg.Improve {
		updater, err = bounds.NewUpdater(p, set, bounds.Options{Beta: cfg.Beta})
		if err != nil {
			return nil, err
		}
	}

	f := &FSC{
		states:          p.NumStates(),
		actions:         p.NumActions(),
		observations:    p.NumObservations(),
		depth:           cfg.Depth,
		beta:            cfg.Beta,
		terminateAction: cfg.TerminateAction,
		index:           make(map[string]int32),
	}
	var keyBuf []byte
	for r, root := range roots {
		if len(root) != f.states {
			return nil, fmt.Errorf("controller: root belief %d length %d, want %d", r, len(root), f.states)
		}
		if !root.IsDistribution() {
			return nil, fmt.Errorf("controller: root belief %d is not a distribution", r)
		}
		keyBuf = appendBeliefKey(keyBuf[:0], root)
		if _, ok := f.index[string(keyBuf)]; ok {
			continue
		}
		if len(f.nodes) >= cfg.MaxNodes {
			break
		}
		f.index[string(keyBuf)] = int32(len(f.nodes))
		f.nodes = append(f.nodes, FSCNode{
			Belief: root.Clone(),
			Action: -1,
			// Episodes observe one monitor sweep before the first decision,
			// so root edges condition on the monitor action.
			EdgeAction: cfg.InitialObservationAction,
		})
	}

	sc := pomdp.NewScratch(p)
	nullSet := pomdp.SortedStates(cfg.NullStates)
	// The node slice doubles as the BFS queue: nodes are appended as their
	// beliefs are discovered and expanded in index order, so the cheapest
	// (shallowest) beliefs win the budget.
	for i := 0; i < len(f.nodes); i++ {
		pi := f.nodes[i].Belief
		if updater != nil {
			if _, err := updater.UpdateAt(pi); err != nil {
				return nil, fmt.Errorf("controller: fsc compile bound update at node %d: %w", i, err)
			}
		}
		// Decide exactly like Bounded.decideAt: certainty check first, then
		// one tree expansion with the a_T tie-break, and the bound gap read
		// through Peek so compiling cannot perturb least-used eviction.
		var d Decision
		var gap float64
		if cfg.TerminateAction < 0 && pi.Mass(nullSet) >= certainty {
			d = Decision{Terminate: true, Value: 0}
			gap = d.Value - set.Peek(pi)
		} else {
			res, err := engine.Choose(pi)
			if err != nil {
				return nil, fmt.Errorf("controller: fsc compile decide at node %d: %w", i, err)
			}
			d = decisionFromBackup(&res, cfg.TerminateAction)
			gap = d.Value - set.Peek(pi)
		}
		f.nodes[i].Action = d.Action
		f.nodes[i].Terminate = d.Terminate
		f.nodes[i].Value = d.Value
		f.nodes[i].Gap = gap
		ea := f.nodes[i].EdgeAction
		if ea < 0 {
			ea = d.Action
			f.nodes[i].EdgeAction = ea
		}
		if d.Terminate && ea == d.Action {
			// The decision ends the episode; there is no next observation.
			continue
		}
		edges := make([]int32, f.observations)
		for o := range edges {
			edges[o] = -1
			next, err := p.Update(sc, pi, ea, o)
			if errors.Is(err, pomdp.ErrImpossibleObservation) {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("controller: fsc compile successor of node %d under obs %d: %w", i, o, err)
			}
			keyBuf = appendBeliefKey(keyBuf[:0], next)
			if j, ok := f.index[string(keyBuf)]; ok {
				edges[o] = j
				continue
			}
			if len(f.nodes) >= cfg.MaxNodes {
				continue
			}
			j := int32(len(f.nodes))
			f.index[string(keyBuf)] = j
			f.nodes = append(f.nodes, FSCNode{Belief: next, Action: -1, EdgeAction: -1})
			edges[o] = j
		}
		f.nodes[i].Edges = edges
	}
	return f, nil
}
