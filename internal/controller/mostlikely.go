package controller

import (
	"fmt"
	"math"

	"bpomdp/internal/pomdp"
)

// MostLikelyConfig configures the "most likely" baseline controller.
type MostLikelyConfig struct {
	// NullStates is Sφ.
	NullStates []int
	// TerminationProbability is the belief mass on Sφ above which recovery
	// is declared complete (0.9999 in the paper's campaigns).
	TerminationProbability float64
}

// MostLikely is the paper's simplest baseline: it performs probabilistic
// diagnosis with the Bayes rule and chooses the cheapest recovery action
// that recovers from the most likely fault, with no lookahead at all.
type MostLikely struct {
	beliefTracker
	cfg     MostLikelyConfig
	nullSet []int
	// actionFor[s] is the precomputed cheapest action maximizing the
	// one-step probability of reaching Sφ from state s.
	actionFor []int
}

var _ Controller = (*MostLikely)(nil)

// NewMostLikely builds the most-likely controller over the untransformed
// recovery model p. For every fault state it precomputes the action with
// the highest one-step probability of landing in Sφ, breaking ties by
// cheaper immediate cost.
func NewMostLikely(p *pomdp.POMDP, cfg MostLikelyConfig) (*MostLikely, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.NullStates) == 0 {
		return nil, fmt.Errorf("controller: most-likely controller needs NullStates")
	}
	if cfg.TerminationProbability <= 0 || cfg.TerminationProbability > 1 {
		return nil, fmt.Errorf("controller: termination probability %v outside (0,1]", cfg.TerminationProbability)
	}
	m := &MostLikely{
		beliefTracker: newBeliefTracker(p),
		cfg:           cfg,
		nullSet:       pomdp.SortedStates(cfg.NullStates),
	}
	n := p.NumStates()
	isNull := make([]bool, n)
	for _, s := range m.nullSet {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("controller: null state %d out of range [0,%d)", s, n)
		}
		isNull[s] = true
	}
	m.actionFor = make([]int, n)
	for s := 0; s < n; s++ {
		bestA, bestP, bestCost := 0, -1.0, math.Inf(-1)
		for a := 0; a < p.NumActions(); a++ {
			var pNull float64
			p.M.Trans[a].Row(s, func(c int, v float64) {
				if isNull[c] {
					pNull += v
				}
			})
			cost := p.M.Reward[a][s] // ≤ 0; larger is cheaper
			if pNull > bestP+1e-12 || (math.Abs(pNull-bestP) <= 1e-12 && cost > bestCost) {
				bestA, bestP, bestCost = a, pNull, cost
			}
		}
		m.actionFor[s] = bestA
	}
	return m, nil
}

// Name implements Controller.
func (m *MostLikely) Name() string { return "most-likely" }

// Decide implements Controller.
func (m *MostLikely) Decide() (Decision, error) {
	if m.belief == nil {
		return Decision{}, ErrNotReset
	}
	if m.belief.Mass(m.nullSet) >= m.cfg.TerminationProbability {
		return Decision{Terminate: true}, nil
	}
	// Diagnose the most likely FAULT (Sφ states are excluded: the cheapest
	// "recovery" from a null state would be doing nothing, and the
	// controller would rather address the likeliest remaining fault).
	bestS, bestP := -1, -1.0
	for s, prob := range m.belief {
		if prob > bestP && !containsInt(m.nullSet, s) {
			bestS, bestP = s, prob
		}
	}
	if bestS < 0 {
		return Decision{Terminate: true}, nil
	}
	return Decision{Action: m.actionFor[bestS]}, nil
}

func containsInt(sorted []int, x int) bool {
	for _, v := range sorted {
		if v == x {
			return true
		}
		if v > x {
			return false
		}
	}
	return false
}
